package pimnw_test

// One benchmark per table and figure of the paper's evaluation (§5), each
// regenerating the corresponding experiment at Quick scale, plus
// micro-benchmarks of the load-bearing kernels. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the end-to-end cost of rebuilding a
// table; the kernel benchmarks report cell throughput.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"pimnw/internal/baseline"
	"pimnw/internal/cache"
	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
	"pimnw/internal/xp"
)

func benchTable(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := xp.NewRunner(xp.Options{Quick: true})
		if _, err := r.Table(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: accuracy of static vs adaptive bands.
func BenchmarkTable1Accuracy(b *testing.B) { benchTable(b, "1") }

// Tables 2-4: synthetic dataset runtimes (calibrate + project).
func BenchmarkTable2S1000(b *testing.B)  { benchTable(b, "2") }
func BenchmarkTable3S10000(b *testing.B) { benchTable(b, "3") }
func BenchmarkTable4S30000(b *testing.B) { benchTable(b, "4") }

// Table 5: 16S all-against-all broadcast mode.
func BenchmarkTable5RRNA16S(b *testing.B) { benchTable(b, "5") }

// Table 6: PacBio consensus sets.
func BenchmarkTable6PacBio(b *testing.B) { benchTable(b, "6") }

// Table 7: asm vs pure-C kernel cost tables.
func BenchmarkTable7AsmVsC(b *testing.B) { benchTable(b, "7") }

// Table 8: energy model.
func BenchmarkTable8Energy(b *testing.B) { benchTable(b, "8") }

// §5 text: pipeline utilisation / host overhead.
func BenchmarkUtilizationTable(b *testing.B) { benchTable(b, "utilization") }

// §4.2.3 ablation: pool geometry sweep.
func BenchmarkAblationGeometry(b *testing.B) { benchTable(b, "ablation") }

// Figure 1: a short exact alignment with traceback.
func BenchmarkFig1ExactAlign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := seq.Random(rng, 500)
	q := seq.UniformErrors(0.08).Apply(rng, a)
	p := core.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.GotohAlign(a, q, p)
	}
}

// Figure 3: the adaptive window trajectory.
func BenchmarkFig3AdaptivePath(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := seq.Random(rng, 5000)
	q := seq.UniformErrors(0.08).Apply(rng, a)
	p := core.DefaultParams()
	for i := 0; i < b.N; i++ {
		core.AdaptiveBandPath(a, q, p, 128)
	}
}

// --- kernel micro-benchmarks ---

func benchPair(n int) (seq.Seq, seq.Seq) {
	rng := rand.New(rand.NewSource(int64(n)))
	a := seq.Random(rng, n)
	return a, seq.UniformErrors(0.05).Apply(rng, a)
}

func BenchmarkAdaptiveBandScore10k(b *testing.B) {
	a, q := benchPair(10_000)
	p := core.DefaultParams()
	b.SetBytes(int64(len(a) + len(q)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.AdaptiveBandScore(a, q, p, 128)
	}
}

// The two score engines pinned individually: AdaptiveBandScore10k above
// measures whatever the lane-width dispatch picks, so a regression in one
// engine could hide behind the other. These two keep the 16-bit
// saturating kernel and the full-width word-packed kernel separately in
// the baseline, and their ratio is the measured narrow-lane speedup.
func BenchmarkAdaptiveBandScoreNarrow10k(b *testing.B) {
	a, q := benchPair(10_000)
	p := core.DefaultParams()
	b.SetBytes(int64(len(a) + len(q)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := core.AdaptiveBandScoreNarrow(a, q, p, 128); res.Overflowed {
			b.Fatal("narrow engine overflowed on the benchmark pair")
		}
	}
}

func BenchmarkAdaptiveBandScoreWide10k(b *testing.B) {
	a, q := benchPair(10_000)
	p := core.DefaultParams()
	b.SetBytes(int64(len(a) + len(q)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.AdaptiveBandScoreWide(a, q, p, 128)
	}
}

func BenchmarkAdaptiveBandAlign10k(b *testing.B) {
	a, q := benchPair(10_000)
	p := core.DefaultParams()
	b.SetBytes(int64(len(a) + len(q)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.AdaptiveBandAlign(a, q, p, 128)
	}
}

// Band sweep of the word-packed engine (ISSUE 4): per-band cell throughput
// and the zero-allocation steady state, on a held scratch arena as the
// kernel and baseline workers use it. ns/op scales ~linearly with w; the
// allocs/op column is the regression tripwire ci.sh gates on.
func benchAdaptiveSweep(b *testing.B, traceback bool) {
	a, q := benchPair(4000)
	p := core.DefaultParams()
	for _, w := range []int{32, 64, 128, 256, 512} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			s := core.NewScratch()
			if traceback {
				s.AdaptiveBandAlign(a, q, p, w) // warm the arena
			} else {
				s.AdaptiveBandScore(a, q, p, w)
			}
			b.SetBytes(int64(len(a) + len(q)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if traceback {
					s.AdaptiveBandAlign(a, q, p, w)
				} else {
					s.AdaptiveBandScore(a, q, p, w)
				}
			}
		})
	}
}

func BenchmarkAdaptiveBandScore(b *testing.B) { benchAdaptiveSweep(b, false) }
func BenchmarkAdaptiveBandAlign(b *testing.B) { benchAdaptiveSweep(b, true) }

func BenchmarkStaticBandScore10k(b *testing.B) {
	a, q := benchPair(10_000)
	p := core.DefaultParams()
	b.SetBytes(int64(len(a) + len(q)))
	for i := 0; i < b.N; i++ {
		core.StaticBandScore(a, q, p, 256)
	}
}

func BenchmarkGotohFullScore2k(b *testing.B) {
	a, q := benchPair(2000)
	p := core.DefaultParams()
	for i := 0; i < b.N; i++ {
		core.GotohScore(a, q, p)
	}
}

func BenchmarkCPUBaselineBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pairs := make([]baseline.Pair, 32)
	for i := range pairs {
		a := seq.Random(rng, 2000)
		pairs[i] = baseline.Pair{ID: i, A: a, B: seq.UniformErrors(0.05).Apply(rng, a)}
	}
	opts := baseline.Options{Params: core.DefaultParams(), Band: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Run(opts, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPUKernelBatch(b *testing.B) {
	kcfg := kernel.Config{
		Geometry:  kernel.DefaultGeometry(),
		Band:      128,
		Params:    core.DefaultParams(),
		Costs:     pim.Asm,
		Traceback: true,
		PIM:       pim.DefaultConfig(),
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := kcfg.PIM.NewDPU(0)
		pairs := make([]kernel.Pair, 12)
		for j := range pairs {
			a := seq.Random(rng, 1000)
			q := seq.UniformErrors(0.05).Apply(rng, a)
			sp, err := kernel.StagePair(d, j, a, q)
			if err != nil {
				b.Fatal(err)
			}
			pairs[j] = sp
		}
		b.StartTimer()
		if _, err := kernel.Run(d, kcfg, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostAlignPairs(b *testing.B) {
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 2
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      64,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
	}
	rng := rand.New(rand.NewSource(5))
	pairs := make([]host.Pair, 64)
	for i := range pairs {
		a := seq.Random(rng, 500)
		pairs[i] = host.Pair{ID: i, A: a, B: seq.UniformErrors(0.05).Apply(rng, a)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := host.AlignPairs(cfg, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostEscalation prices the result-integrity fallback loop: an
// indel-heavy pair set at a deliberately narrow initial band, so the run
// exercises clip detection, several ladder rounds and host-side CIGAR
// validation rather than the happy path.
func BenchmarkHostEscalation(b *testing.B) {
	// go test folds the binary's stderr into the bench output stream; the
	// ladder's per-round progress lines would split the result line that
	// cmd/benchgate parses.
	obs.SetLogOutput(io.Discard)
	defer obs.SetLogOutput(os.Stderr)
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 2
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      16,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
		Escalate: true,
		MaxBand:  256,
		Verify:   true,
	}
	rng := rand.New(rand.NewSource(8))
	mut := seq.Mutator{
		SubRate: 0.02, InsRate: 0.03, DelRate: 0.03, IndelExt: 0.6,
		BigGapRate: 0.004, BigGapMin: 16, BigGapMax: 48,
	}
	pairs := make([]host.Pair, 32)
	for i := range pairs {
		a := seq.Random(rng, 500)
		pairs[i] = host.Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _, err := host.AlignPairs(cfg, pairs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.EscalationRounds == 0 {
			b.Fatal("escalation benchmark never escalated")
		}
	}
}

// BenchmarkLPT prices the per-batch assignment step on a full serving
// micro-batch spread over a rank's 64 DPUs: the heap-based min-scan
// (ISSUE 5) runs in O(n log d) against the old O(n·d) linear scan.
func BenchmarkLPT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	loads := make([]int64, 4096)
	for i := range loads {
		loads[i] = 1 + rng.Int63n(1_000_000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.LPTAssign(loads, 64)
	}
}

// BenchmarkPlacement prices the cost-model-driven backend placement step
// on a full micro-batch spread over a heterogeneous fleet: weighted LPT
// over per-backend seconds-per-unit rates, run once per micro-batch on
// the serving path. Alloc-gated — the bucket slices are the only
// allowed allocations.
func BenchmarkPlacement(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	loads := make([]int64, 4096)
	for i := range loads {
		loads[i] = 1 + rng.Int63n(1_000_000)
	}
	// A heterogeneous 4-backend fleet: two full-rate PiM servers, one at
	// a slower clock, one CPU pool an order of magnitude behind.
	secPerUnit := []float64{1.0, 1.0, 1.5, 12.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.PlacementAssign(loads, secPerUnit)
	}
}

func BenchmarkFluidSimulator(b *testing.B) {
	run, _ := pim.NewDPURun(24)
	for _, tr := range run.Traces {
		for s := 0; s < 100; s++ {
			tr.Exec(5000)
			tr.DMARead(1024)
			tr.Barrier(1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pim.FluidSimulate(run); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSimulator(b *testing.B) {
	run, _ := pim.NewDPURun(16)
	for _, tr := range run.Traces {
		tr.Exec(2000)
		tr.DMARead(512)
		tr.Exec(2000)
		tr.Barrier(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pim.ExactSimulate(run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit10k measures the full serving-path cache hit: digest
// both operands, derive the content-addressed key, and look it up in the
// hot tier — the work a duplicate submission costs instead of a kernel
// dispatch. The lookup is alloc-gated: a hit must not allocate.
func BenchmarkCacheHit10k(b *testing.B) {
	c, err := cache.Open(cache.Options{
		Dir: b.TempDir(), Fsync: cache.FsyncNever, HotEntries: 1 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(99))
	const n = 10_000
	type pair struct{ a, bs seq.Seq }
	pairs := make([]pair, n)
	params := core.DefaultParams()
	for i := range pairs {
		a := seq.Random(rng, 200)
		bs := seq.UniformErrors(0.05).Apply(rng, a)
		pairs[i] = pair{a, bs}
		k := cache.Key{
			A: seq.DigestSeq(a), B: seq.DigestSeq(bs),
			Params: params, Band: 128, Lanes: 64,
		}
		v := cache.Value{Score: int32(i), InBand: true, Status: "ok", Provenance: "pim"}
		if err := c.Insert(k, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%n]
		k := cache.Key{
			A: seq.DigestSeq(p.a), B: seq.DigestSeq(p.bs),
			Params: params, Band: 128, Lanes: 64,
		}
		if _, ok := c.Lookup(k); !ok {
			b.Fatal("miss on an inserted key")
		}
	}
}

// BenchmarkWALAppend measures one cache insert — frame encode, checksum,
// WAL append, index update — with fsync off, so the number is the CPU
// cost of the durable path, not the disk's.
func BenchmarkWALAppend(b *testing.B) {
	c, err := cache.Open(cache.Options{
		Dir: b.TempDir(), Fsync: cache.FsyncNever,
		MaxEntries: 1 << 30, HotEntries: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	k := cache.Key{
		A:      seq.Digest{Hi: 0x1111, Lo: 0},
		B:      seq.Digest{Hi: 0x2222, Lo: 0x3333},
		Params: core.DefaultParams(), Band: 128, Lanes: 64,
	}
	v := cache.Value{Score: 1234, InBand: true, Status: "ok", Provenance: "pim", Cigar: []byte("120M1D79M")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.A.Lo = uint64(i) // every record unique: appends, never overwrites
		if err := c.Insert(k, v); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2BitPacking(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	s := seq.Random(rng, 100_000)
	dst := make([]byte, seq.PackedSize(len(s)))
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.PackInto(dst, s)
	}
}
