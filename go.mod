module pimnw

go 1.22
