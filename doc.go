// Package pimnw is a from-scratch Go reproduction of "Parallelization of
// the Banded Needleman & Wunsch Algorithm on UPMEM PiM Architecture for
// Long DNA Sequence Alignment" (Mognol, Lavenier, Legriel — ICPP 2024).
//
// The library implements the paper's adaptive banded affine-gap aligner
// (internal/core), a model of the UPMEM PiM system it runs on
// (internal/pim), the DPU kernel (internal/kernel), the host orchestration
// runtime (internal/host), the minimap2-like CPU baseline
// (internal/baseline), the five evaluation datasets (internal/datasets),
// the §5.6 power/cost model (internal/power), and an experiment harness
// regenerating every table of the paper's evaluation (internal/xp).
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package pimnw
