package pimnw_test

// Structural lint for the GitHub Actions workflow: the repository has no
// actionlint binary, so this test enforces the subset of the schema that
// catches the usual breakages (tab indentation, a job without runs-on or
// steps, a step that neither runs nor uses, a malformed action ref, a
// referenced script that does not exist) before a push finds out.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const workflowDir = ".github/workflows"

// actionRef is the owner/repo@ref (optionally owner/repo/path@ref) form
// every remote `uses:` must take; local actions start with "./".
var actionRef = regexp.MustCompile(`^([\w.-]+/[\w.-]+(/[\w./-]+)?@[\w./-]+|\./\S+)$`)

func workflowFiles(t *testing.T) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(workflowDir, "*.yml"))
	if err != nil {
		t.Fatal(err)
	}
	more, err := filepath.Glob(filepath.Join(workflowDir, "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	matches = append(matches, more...)
	if len(matches) == 0 {
		t.Fatalf("no workflow files under %s", workflowDir)
	}
	return matches
}

func TestWorkflowStructure(t *testing.T) {
	for _, path := range workflowFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		lines := strings.Split(text, "\n")

		for i, line := range lines {
			if strings.Contains(line, "\t") {
				t.Errorf("%s:%d: tab character (YAML indentation must be spaces)", path, i+1)
			}
		}
		for _, key := range []string{"name:", "on:", "jobs:"} {
			if !hasTopLevel(lines, key) {
				t.Errorf("%s: missing top-level %q", path, key)
			}
		}
		if !strings.Contains(text, "push:") || !strings.Contains(text, "pull_request:") {
			t.Errorf("%s: must trigger on both push and pull_request", path)
		}

		jobs := parseJobs(lines)
		if len(jobs) == 0 {
			t.Fatalf("%s: no jobs parsed", path)
		}
		for name, body := range jobs {
			if !strings.Contains(body, "runs-on:") {
				t.Errorf("%s: job %q has no runs-on", path, name)
			}
			if !strings.Contains(body, "steps:") {
				t.Errorf("%s: job %q has no steps", path, name)
				continue
			}
			steps := parseSteps(body)
			if len(steps) == 0 {
				t.Errorf("%s: job %q has empty steps", path, name)
			}
			for si, step := range steps {
				hasRun := strings.Contains(step, "run:")
				uses := regexp.MustCompile(`uses:\s*(\S+)`).FindStringSubmatch(step)
				if !hasRun && uses == nil {
					t.Errorf("%s: job %q step %d has neither run: nor uses:", path, name, si+1)
				}
				if uses != nil && !actionRef.MatchString(uses[1]) {
					t.Errorf("%s: job %q step %d: malformed action ref %q", path, name, si+1, uses[1])
				}
			}
		}
	}
}

// TestWorkflowReferencedScripts checks that every repository script the
// workflow invokes exists and is executable — a renamed ci script is a
// broken pipeline.
func TestWorkflowReferencedScripts(t *testing.T) {
	script := regexp.MustCompile(`run:.*?(\./[\w./-]+\.sh)`)
	for _, path := range workflowFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		refs := script.FindAllStringSubmatch(string(raw), -1)
		if len(refs) == 0 {
			continue
		}
		for _, m := range refs {
			info, err := os.Stat(m[1])
			if err != nil {
				t.Errorf("%s references %s: %v", path, m[1], err)
				continue
			}
			if info.Mode()&0o111 == 0 {
				t.Errorf("%s references %s, which is not executable", path, m[1])
			}
		}
	}
}

// TestWorkflowCoversGates pins the pipeline's contract: the tier-1 gate,
// the benchmark gate (with its committed baseline), and the fuzz smoke
// must all be wired into the workflow.
func TestWorkflowCoversGates(t *testing.T) {
	var all strings.Builder
	for _, path := range workflowFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(raw)
	}
	text := all.String()
	for _, want := range []string{"./ci.sh", "cmd/benchgate", "fuzz_smoke.sh", "staticcheck"} {
		if !strings.Contains(text, want) {
			t.Errorf("workflow does not invoke %s", want)
		}
	}
	if _, err := os.Stat("ci/bench_baseline.json"); err != nil {
		t.Errorf("benchmark gate has no committed baseline: %v", err)
	}
}

// TestWorkflowCachingAndToolPins lints the pipeline's dependency hygiene:
// every setup-go step must enable the Go build/module cache and key it on
// a dependency file that actually exists in the repository (go.sum, or
// go.mod for this zero-dependency module — a key pointing at a missing
// file silently degrades to no caching), and every `go install`ed tool
// must pin an exact version — "@latest" makes CI drift with upstream
// releases, so a new staticcheck diagnostic could break every open PR
// overnight.
func TestWorkflowCachingAndToolPins(t *testing.T) {
	goInstall := regexp.MustCompile(`go install\s+(\S+)`)
	cacheKey := regexp.MustCompile(`cache-dependency-path:\s*(\S+)`)
	for _, path := range workflowFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		if n := strings.Count(text, "actions/setup-go@"); n > 0 {
			if c := strings.Count(text, "cache: true"); c != n {
				t.Errorf("%s: %d setup-go steps but %d enable cache: true", path, n, c)
			}
			keys := cacheKey.FindAllStringSubmatch(text, -1)
			if len(keys) != n {
				t.Errorf("%s: %d setup-go steps but %d set cache-dependency-path", path, n, len(keys))
			}
			for _, m := range keys {
				if _, err := os.Stat(m[1]); err != nil {
					t.Errorf("%s: cache keyed on %s, which does not exist: %v", path, m[1], err)
				}
			}
		}
		for _, m := range goInstall.FindAllStringSubmatch(text, -1) {
			mod := m[1]
			at := strings.LastIndex(mod, "@")
			if at < 0 || mod[at+1:] == "" || mod[at+1:] == "latest" {
				t.Errorf("%s: go install %s is not pinned to an exact version", path, mod)
			}
		}
	}
}

// hasTopLevel reports whether a zero-indent line starts with the key.
func hasTopLevel(lines []string, key string) bool {
	for _, line := range lines {
		if strings.HasPrefix(line, key) {
			return true
		}
	}
	return false
}

// parseJobs splits the jobs: block into name -> body using indentation:
// job names sit at indent 2 under the zero-indent "jobs:" line.
func parseJobs(lines []string) map[string]string {
	jobs := map[string]string{}
	inJobs := false
	jobName := ""
	var body []string
	flush := func() {
		if jobName != "" {
			jobs[jobName] = strings.Join(body, "\n")
		}
		body = nil
	}
	jobKey := regexp.MustCompile(`^  ([\w-]+):\s*$`)
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "jobs:"):
			inJobs = true
		case inJobs && len(line) > 0 && line[0] != ' ' && line[0] != '#':
			flush()
			inJobs = false
		case inJobs && jobKey.MatchString(line):
			flush()
			jobName = jobKey.FindStringSubmatch(line)[1]
		case inJobs && jobName != "":
			body = append(body, line)
		}
	}
	flush()
	return jobs
}

// parseSteps splits a job body into its "- " list items under steps:.
func parseSteps(body string) []string {
	lines := strings.Split(body, "\n")
	var steps []string
	var cur []string
	inSteps := false
	itemIndent := -1
	flush := func() {
		if len(cur) > 0 {
			steps = append(steps, strings.Join(cur, "\n"))
		}
		cur = nil
	}
	for _, line := range lines {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, "steps:") {
			inSteps = true
			continue
		}
		if !inSteps || trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "- ") {
			if itemIndent == -1 {
				itemIndent = indent
			}
			if indent == itemIndent {
				flush()
				cur = []string{trimmed[2:]}
				continue
			}
		}
		if itemIndent != -1 && indent <= itemIndent && !strings.HasPrefix(trimmed, "- ") {
			// Left the steps list (a sibling key of steps:).
			flush()
			inSteps = false
			continue
		}
		if cur != nil {
			cur = append(cur, trimmed)
		}
	}
	flush()
	return steps
}

// TestWorkflowLintCatchesBreakage feeds the parsers a deliberately broken
// workflow to prove the lint is not vacuous.
func TestWorkflowLintCatchesBreakage(t *testing.T) {
	broken := strings.Split(`name: x
on:
  push:
jobs:
  good:
    runs-on: ubuntu-latest
    steps:
      - run: echo ok
  bad:
    steps:
      - name: does nothing
`, "\n")
	jobs := parseJobs(broken)
	if len(jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2: %v", len(jobs), jobs)
	}
	if !strings.Contains(jobs["good"], "runs-on:") {
		t.Error("good job lost its runs-on")
	}
	if strings.Contains(jobs["bad"], "runs-on:") {
		t.Error("bad job gained a runs-on")
	}
	steps := parseSteps(jobs["bad"])
	if len(steps) != 1 {
		t.Fatalf("parsed %d steps in bad job, want 1", len(steps))
	}
	if strings.Contains(steps[0], "run:") || strings.Contains(steps[0], "uses:") {
		t.Error("the do-nothing step looks valid to the lint")
	}
	for _, ref := range []string{"actions/checkout@v4", "./local/action", "owner/repo/sub@v1.2.3"} {
		if !actionRef.MatchString(ref) {
			t.Errorf("valid action ref %q rejected", ref)
		}
	}
	for _, ref := range []string{"actions/checkout", "checkout@v4", "just-words"} {
		if actionRef.MatchString(ref) {
			t.Errorf("malformed action ref %q accepted", ref)
		}
	}
}
