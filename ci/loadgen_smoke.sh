#!/bin/sh
# ci/loadgen_smoke.sh — overload smoke test of the admission stack:
# start alignd from a config file with tiny queues and a fast shed
# ladder, drive it with loadgen's closed-loop interactive + bulk workers
# for a few seconds, and require that (a) the ladder engages under
# overload and releases once the load stops, (b) zero results are
# degraded without a typed label, and (c) the daemon still drains
# cleanly on SIGTERM afterwards.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/loadgen_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$WORK/alignd" ./cmd/alignd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== config =="
# One slot and tiny queues so a handful of closed-loop workers saturate
# the gate instantly; a millisecond-scale sampler so the ladder climbs
# and releases within the test window.
cat > "$WORK/align.yaml" <<'EOF'
server:
  addr: "127.0.0.1:0"
  drain_wait: 200ms
align:
  ranks: 1
  verify: true
queues:
  slots: 1
  interactive: 2
  bulk: 2
shed:
  sample_interval: 10ms
  high_water: 0.7
  low_water: 0.3
  raise_after: 3
  release_after: 5
EOF

"$WORK/alignd" -config "$WORK/align.yaml" -check-config > "$WORK/canonical.yaml"
grep -q '^queues:' "$WORK/canonical.yaml" || {
    echo "-check-config output missing the queues section" >&2; exit 1; }
grep -q '  slots: 1' "$WORK/canonical.yaml" || {
    echo "-check-config did not reflect the config file's slots" >&2
    cat "$WORK/canonical.yaml" >&2; exit 1; }

echo "== daemon =="
"$WORK/alignd" -config "$WORK/align.yaml" -addr-file "$WORK/addr" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "alignd died during startup" >&2; exit 1; }
    [ -s "$WORK/addr" ] && break
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "alignd never wrote its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"
for _ in $(seq 1 100); do
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done

echo "== overload ($ADDR) =="
"$WORK/loadgen" -url "http://$ADDR" -duration 5s \
    -interactive 2 -bulk 8 -pairs 6 -len 120 \
    -expect-cigar -assert-shed -release-wait 20s

echo "== shed telemetry =="
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q '^alignd_shed_transitions_total' "$WORK/metrics.txt" || {
    echo "metrics missing shed transitions" >&2; exit 1; }
grep -q 'alignd_degraded_requests_total' "$WORK/metrics.txt" || {
    echo "metrics missing the degraded-request counters" >&2; exit 1; }

echo "== clean drain =="
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "alignd exited $STATUS on SIGTERM after overload, want 0" >&2
    exit 1
fi

echo "== cache config =="
# Phase two: the result-cache latency contract. A fresh daemon with a
# cache directory and no admission pressure (plenty of slots, shed
# watermarks out of reach) serves two runs of the same closed-loop
# workload: a cold one with all-unique pairs (every request computes)
# and a warm one drawing every pair from loadgen's fixed duplicate pool
# (after the first few requests, every pair is a cache hit). The hit
# path must keep the interactive p99 below the cold-path p99, with zero
# unlabelled degradations in either run. Escalation is on so the long
# noisy pairs certify via the band ladder — clipped results are
# uncacheable by design, so without it the warm run would never hit.
cat > "$WORK/cache.yaml" <<'EOF'
server:
  addr: "127.0.0.1:0"
  drain_wait: 200ms
align:
  ranks: 1
  escalation: true
  max_band: 2048
queues:
  slots: 8
  interactive: 16
  bulk: 16
shed:
  sample_interval: 50ms
  high_water: 0.99
  low_water: 0.98
cache:
  fsync: interval
EOF

echo "== cache daemon =="
"$WORK/alignd" -config "$WORK/cache.yaml" -cache-dir "$WORK/cache" \
    -addr-file "$WORK/addr2" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "cache-enabled alignd died during startup" >&2; exit 1; }
    [ -s "$WORK/addr2" ] && break
    sleep 0.05
done
[ -s "$WORK/addr2" ] || { echo "cache-enabled alignd never wrote its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr2")"
for _ in $(seq 1 100); do
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done

echo "== cold run ($ADDR) =="
# Interactive-weighted and compute-heavy (12 long pairs per request), so
# the cold path's kernel time dominates the HTTP/session overhead both
# runs share — the p99 comparison below then measures the hit path, not
# scheduling noise.
"$WORK/loadgen" -url "http://$ADDR" -duration 4s \
    -interactive 4 -bulk 1 -pairs 12 -len 2000 \
    -dup-fraction 0 -expect-cigar | tee "$WORK/cold.txt"

echo "== warm run ($ADDR) =="
"$WORK/loadgen" -url "http://$ADDR" -duration 4s \
    -interactive 4 -bulk 1 -pairs 12 -len 2000 \
    -dup-fraction 1 -expect-cigar | tee "$WORK/warm.txt"

echo "== cache latency contract =="
p99() { awk -v c="$2" '$1 == c { for (i = 1; i <= NF; i++) if ($i ~ /^p99=/) { sub(/^p99=/, "", $i); sub(/ms$/, "", $i); print $i } }' "$1"; }
COLD_P99="$(p99 "$WORK/cold.txt" interactive)"
WARM_P99="$(p99 "$WORK/warm.txt" interactive)"
[ -n "$COLD_P99" ] && [ -n "$WARM_P99" ] || {
    echo "could not extract interactive p99 from loadgen output" >&2; exit 1; }
awk -v warm="$WARM_P99" -v cold="$COLD_P99" 'BEGIN { exit !(warm < cold) }' || {
    echo "cache-hit interactive p99 (${WARM_P99}ms) not below cold-path p99 (${COLD_P99}ms)" >&2
    exit 1; }
echo "interactive p99: cold ${COLD_P99}ms, warm ${WARM_P99}ms"

curl -fsS "http://$ADDR/metrics" > "$WORK/cache_metrics.txt"
awk '$1 == "host_cache_hits_total" { hits = $2 } END { exit !(hits > 0) }' "$WORK/cache_metrics.txt" || {
    echo "warm run recorded no cache hits" >&2; exit 1; }

kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "cache-enabled alignd exited $STATUS on SIGTERM, want 0" >&2
    exit 1
fi

echo "LOADGEN SMOKE PASS"
