#!/bin/sh
# ci/alignd_smoke.sh — end-to-end smoke test of the serving path: build
# alignd and pimalign, start the daemon on a random port, align a small
# generated dataset over HTTP, diff the streamed output against the
# one-shot CLI's (they must match line for line), then SIGTERM the
# daemon and require a graceful exit 0.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/alignd_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$WORK/alignd" ./cmd/alignd
go build -o "$WORK/pimalign" ./cmd/pimalign
go build -o "$WORK/datagen" ./cmd/datagen

echo "== dataset =="
"$WORK/datagen" -dataset s1000 -scale 0.00002 -seed 7 -out "$WORK"
A="$WORK/s1000_a.fa"
B="$WORK/s1000_b.fa"

echo "== daemon on a random port =="
"$WORK/alignd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -ranks 2 -band 128 -drain-wait 2s &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "alignd died during startup" >&2; exit 1; }
    [ -s "$WORK/addr" ] && break
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "alignd never wrote its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "   bound to $ADDR"

# Bounded readiness poll: the address file appears when the listener is
# bound, but only /healthz answering marks the serving loop live. A daemon
# that dies mid-boot must fail the poll immediately, not hang it out.
READY=0
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "alignd died before becoming healthy" >&2; exit 1; }
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        READY=1
        break
    fi
    sleep 0.05
done
[ "$READY" -eq 1 ] || { echo "alignd never became healthy at $ADDR" >&2; exit 1; }

echo "== align over HTTP vs one-shot CLI =="
"$WORK/alignd" -post "http://$ADDR/align" -a "$A" -b "$B" > "$WORK/served.out"
"$WORK/pimalign" -a "$A" -b "$B" -ranks 2 -band 128 > "$WORK/oneshot.out" 2>/dev/null
diff -u "$WORK/oneshot.out" "$WORK/served.out"
[ -s "$WORK/served.out" ] || { echo "served output is empty" >&2; exit 1; }

curl -fsS "http://$ADDR/metrics" -D "$WORK/metrics.hdr" > "$WORK/metrics.txt"
grep -q '^session_pairs_total' "$WORK/metrics.txt" || {
    echo "metrics endpoint missing session counters" >&2; exit 1; }
grep -qi '^Content-Type: text/plain; version=0.0.4; charset=utf-8' "$WORK/metrics.hdr" || {
    echo "metrics endpoint missing the Prometheus content type" >&2
    cat "$WORK/metrics.hdr" >&2; exit 1; }

echo "== trace-ID propagation =="
printf '{"id":0,"a":"ACGTACGTACGT","b":"ACGTACGAACGT"}\n' \
    | curl -fsS -X POST -H 'X-Trace-Id: t-123' --data-binary @- \
        "http://$ADDR/align" > "$WORK/traced.ndjson"
grep -q '"trace_id":"t-123"' "$WORK/traced.ndjson" || {
    echo "NDJSON results missing the posted trace ID" >&2
    cat "$WORK/traced.ndjson" >&2; exit 1; }

echo "== /debug surface =="
curl -fsS "http://$ADDR/debug/vars" > "$WORK/vars.json"
grep -q '"alignd_requests_total"' "$WORK/vars.json" || {
    echo "/debug/vars missing the request counter" >&2; exit 1; }
grep -q '"goroutines"' "$WORK/vars.json" || {
    echo "/debug/vars missing runtime stats" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/flight" > "$WORK/flight.json"
grep -q '"trace_id": "t-123"' "$WORK/flight.json" || {
    echo "/debug/flight missing the traced request's admission" >&2
    cat "$WORK/flight.json" >&2; exit 1; }

echo "== graceful SIGTERM drain =="
kill -TERM "$DAEMON_PID"
# During the -drain-wait window the listener is still up but /healthz
# must advertise draining with 503, so load balancers route away before
# the socket closes.
sleep 0.3
DRAIN_CODE="$(curl -s -o "$WORK/drain.body" -w '%{http_code}' --max-time 2 "http://$ADDR/healthz" || true)"
if [ "$DRAIN_CODE" != "503" ] || ! grep -q 'draining' "$WORK/drain.body"; then
    echo "/healthz during drain = $DRAIN_CODE '$(cat "$WORK/drain.body" 2>/dev/null)', want 503 draining" >&2
    exit 1
fi
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "alignd exited $STATUS on SIGTERM, want 0" >&2
    exit 1
fi

echo "== cache-enabled daemon =="
# Result-cache replay contract: the same FASTA batch served twice by a
# cache-enabled daemon must render byte-identically (hits keep the
# original score, status and provenance — the cache never relabels), the
# raw NDJSON of a replayed pair must carry the cached marker, and after
# a kill -9 the daemon must reopen the WAL and keep serving the same
# answers.
"$WORK/alignd" -addr 127.0.0.1:0 -addr-file "$WORK/addr3" -ranks 2 -band 128 \
    -drain-wait 1s -cache-dir "$WORK/rcache" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "cache-enabled alignd died during startup" >&2; exit 1; }
    [ -s "$WORK/addr3" ] && break
    sleep 0.05
done
[ -s "$WORK/addr3" ] || { echo "cache-enabled alignd never wrote its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr3")"
for _ in $(seq 1 100); do
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done

echo "== replay the batch twice ($ADDR) =="
"$WORK/alignd" -post "http://$ADDR/align" -a "$A" -b "$B" > "$WORK/run1.out"
"$WORK/alignd" -post "http://$ADDR/align" -a "$A" -b "$B" > "$WORK/run2.out"
diff -u "$WORK/run1.out" "$WORK/run2.out" || {
    echo "cached replay diverged from the first serving" >&2; exit 1; }
[ -s "$WORK/run1.out" ] || { echo "cached run output is empty" >&2; exit 1; }

echo "== cached marker on the wire =="
BODY='{"id":0,"a":"ACGTACGTACGTACGTACGT","b":"ACGTACGAACGTACGTACGT"}'
printf '%s\n' "$BODY" | curl -fsS -X POST -H 'X-Trace-Id: t-cache' \
    --data-binary @- "http://$ADDR/align" > "$WORK/miss.ndjson"
printf '%s\n' "$BODY" | curl -fsS -X POST -H 'X-Trace-Id: t-cache' \
    --data-binary @- "http://$ADDR/align" > "$WORK/hit.ndjson"
grep -q '"cached":true' "$WORK/hit.ndjson" || {
    echo "replayed pair missing the cached marker" >&2
    cat "$WORK/hit.ndjson" >&2; exit 1; }
grep -q '"cached"' "$WORK/miss.ndjson" && {
    echo "first serving of a pair unexpectedly marked cached" >&2; exit 1; }
# Apart from the marker, a hit line is the miss line: same score, same
# status, same provenance.
sed 's/,"cached":true//' "$WORK/hit.ndjson" > "$WORK/hit.stripped"
diff -u "$WORK/miss.ndjson" "$WORK/hit.stripped" || {
    echo "cache hit relabelled the result" >&2; exit 1; }

curl -fsS "http://$ADDR/debug/vars" > "$WORK/cache_vars.json"
grep -q '"cache_hits_total"' "$WORK/cache_vars.json" || {
    echo "/debug/vars missing the cache hit counter" >&2; exit 1; }

echo "== kill -9 and WAL reopen =="
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
rm -f "$WORK/addr3"
"$WORK/alignd" -addr 127.0.0.1:0 -addr-file "$WORK/addr3" -ranks 2 -band 128 \
    -drain-wait 1s -cache-dir "$WORK/rcache" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "alignd died reopening the crashed cache" >&2; exit 1; }
    [ -s "$WORK/addr3" ] && break
    sleep 0.05
done
ADDR="$(cat "$WORK/addr3")"
for _ in $(seq 1 100); do
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done
"$WORK/alignd" -post "http://$ADDR/align" -a "$A" -b "$B" > "$WORK/run3.out"
diff -u "$WORK/run1.out" "$WORK/run3.out" || {
    echo "post-crash serving diverged from the pre-crash answers" >&2; exit 1; }

kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "cache-enabled alignd exited $STATUS on SIGTERM, want 0" >&2
    exit 1
fi

echo "== multi-backend fleet daemon =="
# Fleet serving contract: a daemon sharding micro-batches across two
# heterogeneous simulated PiM servers must render byte-identically to
# the single-fabric one-shot CLI (placement moves the modelled timeline,
# never the answers), match a fleet-mode pimalign run, and stamp each
# raw NDJSON result with the backend that served it.
FLEET="pim:2,pim:3@450"
"$WORK/alignd" -addr 127.0.0.1:0 -addr-file "$WORK/addr4" -band 128 \
    -drain-wait 1s -fleet "$FLEET" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "fleet alignd died during startup" >&2; exit 1; }
    [ -s "$WORK/addr4" ] && break
    sleep 0.05
done
[ -s "$WORK/addr4" ] || { echo "fleet alignd never wrote its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr4")"
for _ in $(seq 1 100); do
    if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done

echo "== fleet vs one-shot vs fleet CLI ($ADDR) =="
"$WORK/alignd" -post "http://$ADDR/align" -a "$A" -b "$B" > "$WORK/fleet.out"
diff -u "$WORK/oneshot.out" "$WORK/fleet.out" || {
    echo "fleet serving diverged from the single-fabric answers" >&2; exit 1; }
"$WORK/pimalign" -a "$A" -b "$B" -band 128 -fleet "$FLEET" > "$WORK/fleetcli.out" 2>/dev/null
diff -u "$WORK/fleetcli.out" "$WORK/fleet.out" || {
    echo "fleet serving diverged from fleet-mode pimalign" >&2; exit 1; }

echo "== backend provenance on the wire =="
printf '{"id":0,"a":"ACGTACGTACGTACGTACGT","b":"ACGTACGAACGTACGTACGT"}\n' \
    | curl -fsS -X POST --data-binary @- "http://$ADDR/align" > "$WORK/fleet.ndjson"
grep -q '"backend":"pim[01]"' "$WORK/fleet.ndjson" || {
    echo "fleet NDJSON results missing the serving backend" >&2
    cat "$WORK/fleet.ndjson" >&2; exit 1; }

kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "fleet alignd exited $STATUS on SIGTERM, want 0" >&2
    exit 1
fi

echo "ALIGND SMOKE PASS"
