#!/bin/sh
# ci/fuzz_smoke.sh — short fuzzing pass over every fuzz target in the
# repository, run by the CI fuzz job. Each target fuzzes for FUZZTIME
# (default 30s); any crasher fails the script and leaves its input under
# the package's testdata/fuzz/ corpus directory for reproduction.
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-30s}"

fuzz() {
    pkg="$1"
    target="$2"
    # A listed target that no longer exists must fail the script, not
    # no-op: `go test -fuzz` with an unmatched pattern exits 0, which
    # would silently drop the target from coverage on a rename.
    if ! go test "$pkg" -run='^$' -list "^${target}\$" | grep -qx "$target"; then
        echo "fuzz target $target not found in $pkg (renamed or deleted?)" >&2
        exit 1
    fi
    echo "== fuzz $pkg $target ($FUZZTIME) =="
    go test "$pkg" -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME"
}

fuzz ./internal/cigar FuzzParseRoundTrip
fuzz ./internal/cigar FuzzValidate
fuzz ./internal/seq FuzzFromStringPackRoundTrip
fuzz ./internal/core FuzzLinearVsQuadratic
fuzz ./internal/core FuzzBandedNeverBeatsOptimal
fuzz ./internal/core FuzzEngineEquivalence
fuzz ./internal/core FuzzNarrowWideEquivalence
fuzz ./internal/admission/config FuzzAdmissionConfig
fuzz ./internal/cache FuzzWALRecordRoundTrip

echo "FUZZ SMOKE PASS"
