// Command datagen materialises the paper's evaluation datasets (synthetic
// stand-ins; see DESIGN.md) as FASTA files.
//
// Usage:
//
//	datagen -dataset s1000|s10000|s30000|16s|pacbio [-scale 0.001]
//	        [-seed 0] [-out DIR]
//
// Pair datasets produce <name>_a.fa / <name>_b.fa (record i of _a aligns
// against record i of _b); 16s produces one FASTA; pacbio produces one
// FASTA per set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pimnw/internal/datasets"
	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

func main() {
	obs.SetLogPrefix("datagen")
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name    = flag.String("dataset", "s1000", "dataset: s1000, s10000, s30000, 16s, pacbio")
		scale   = flag.Float64("scale", 0.0001, "fraction of the paper-scale dataset to generate")
		seed    = flag.Int64("seed", 0, "seed offset")
		out     = flag.String("out", ".", "output directory")
		verbose = flag.Bool("v", false, "verbose (debug) logging")
		logJSON = flag.Bool("log-json", false, "structured JSON log lines instead of text")
	)
	flag.Parse()
	if *verbose {
		obs.SetVerbosity(1)
	}
	obs.SetLogJSON(*logJSON)
	obs.Debugf("dataset=%s scale=%g seed=%d out=%s", *name, *scale, *seed, *out)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	switch *name {
	case "s1000", "s10000", "s30000":
		spec := map[string]datasets.SyntheticSpec{
			"s1000": datasets.S1000, "s10000": datasets.S10000, "s30000": datasets.S30000,
		}[*name].Scaled(*scale)
		spec.Seed += *seed
		pairs := spec.Generate()
		return writePairs(*out, *name, pairs)
	case "16s":
		spec := datasets.RRNA16S.Scaled(*scale)
		spec.Seed += *seed
		seqs := spec.Generate()
		recs := make([]seq.Record, len(seqs))
		for i, s := range seqs {
			recs[i] = seq.Record{Name: fmt.Sprintf("16s_%05d", i), Seq: s}
		}
		return writeFasta(filepath.Join(*out, "16s.fa"), recs)
	case "pacbio":
		spec := datasets.PacBio.Scaled(*scale)
		spec.Seed += *seed
		for si, set := range spec.Generate() {
			recs := make([]seq.Record, len(set.Reads))
			for ri, r := range set.Reads {
				recs[ri] = seq.Record{Name: fmt.Sprintf("set%05d_read%02d", si, ri), Seq: r}
			}
			if err := writeFasta(filepath.Join(*out, fmt.Sprintf("pacbio_set%05d.fa", si)), recs); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown dataset %q", *name)
	}
}

func writePairs(dir, name string, pairs []datasets.Pair) error {
	as := make([]seq.Record, len(pairs))
	bs := make([]seq.Record, len(pairs))
	for i, p := range pairs {
		as[i] = seq.Record{Name: fmt.Sprintf("%s_%07d/a", name, p.ID), Seq: p.A}
		bs[i] = seq.Record{Name: fmt.Sprintf("%s_%07d/b", name, p.ID), Seq: p.B}
	}
	if err := writeFasta(filepath.Join(dir, name+"_a.fa"), as); err != nil {
		return err
	}
	return writeFasta(filepath.Join(dir, name+"_b.fa"), bs)
}

func writeFasta(path string, recs []seq.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := seq.WriteFASTA(f, recs, 0); err != nil {
		return err
	}
	obs.Logf("wrote %s (%d records)", path, len(recs))
	return f.Close()
}
