// Command dpuvm assembles and executes a DPU assembly file on the
// interpreter of internal/dpuasm — the tool for experimenting with the
// fused-jump/cmpb4 idioms of the paper's §4.2.4 outside the kernel.
//
// Usage:
//
//	dpuvm [-wram 4096] [-regs "r0=5,r11=10"] [-dump off:len] prog.s
//
// After the run it prints the executed-instruction count, every non-zero
// register, and optionally a WRAM hex dump.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimnw/internal/dpuasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpuvm:", err)
		os.Exit(1)
	}
}

func run() error {
	wram := flag.Int("wram", 4096, "WRAM bytes")
	regs := flag.String("regs", "", "initial registers, e.g. r0=5,r11=10")
	dump := flag.String("dump", "", "WRAM range to hex-dump after the run, off:len")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one assembly file expected")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	prog, err := dpuasm.Assemble(string(src))
	if err != nil {
		return err
	}
	vm := dpuasm.NewVM(*wram)
	if *regs != "" {
		for _, kv := range strings.Split(*regs, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 || !strings.HasPrefix(parts[0], "r") {
				return fmt.Errorf("bad register assignment %q", kv)
			}
			idx, err := strconv.Atoi(parts[0][1:])
			if err != nil || idx < 0 || idx >= dpuasm.NumRegs {
				return fmt.Errorf("bad register %q", parts[0])
			}
			v, err := strconv.ParseInt(parts[1], 0, 32)
			if err != nil {
				return fmt.Errorf("bad value %q", parts[1])
			}
			vm.Regs[idx] = int32(v)
		}
	}

	if err := vm.Run(prog); err != nil {
		return err
	}
	fmt.Printf("executed %d instructions (%d assembled)\n", vm.Executed, len(prog.Instrs))
	for i, v := range vm.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %d (%#x)\n", i, v, uint32(v))
		}
	}
	if *dump != "" {
		parts := strings.SplitN(*dump, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -dump %q, want off:len", *dump)
		}
		off, err1 := strconv.Atoi(parts[0])
		n, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || off < 0 || n < 0 || off+n > len(vm.WRAM) {
			return fmt.Errorf("bad -dump range %q", *dump)
		}
		for i := off; i < off+n; i += 16 {
			end := i + 16
			if end > off+n {
				end = off + n
			}
			fmt.Printf("  %04x: % x\n", i, vm.WRAM[i:end])
		}
	}
	return nil
}
