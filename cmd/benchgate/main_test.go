package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pimnw
BenchmarkHostAlignPairs-8   	      12	  98765432 ns/op	 1234 B/op	      21 allocs/op
BenchmarkHostAlignPairs-8   	      14	  87654321 ns/op	 1200 B/op	      18 allocs/op
BenchmarkFluidSimulator-8   	    1000	      1234.5 ns/op
BenchmarkDPUKernelBatch     	       5	 200000000 ns/op
BenchmarkAdaptiveBandScore/w64-8 	     100	   1000000 ns/op	   8.00 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	pimnw	12.3s
`
	got, allocs := parseBench(out)
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	// Repeated runs collapse to the fastest ns/op and smallest allocs/op.
	if got["HostAlignPairs"] != 87654321 {
		t.Errorf("HostAlignPairs = %v, want fastest run 87654321", got["HostAlignPairs"])
	}
	if allocs["HostAlignPairs"] != 18 {
		t.Errorf("HostAlignPairs allocs = %v, want smallest run 18", allocs["HostAlignPairs"])
	}
	// Fractional ns/op and missing -N suffix both parse.
	if got["FluidSimulator"] != 1234.5 {
		t.Errorf("FluidSimulator = %v", got["FluidSimulator"])
	}
	if got["DPUKernelBatch"] != 200000000 {
		t.Errorf("DPUKernelBatch = %v", got["DPUKernelBatch"])
	}
	// Lines without memory columns record no allocs entry.
	if _, ok := allocs["FluidSimulator"]; ok {
		t.Error("FluidSimulator has an allocs entry despite no -benchmem columns")
	}
	// Sub-benchmark names keep their slash, and the MB/s column is skipped.
	if got["AdaptiveBandScore/w64"] != 1000000 {
		t.Errorf("AdaptiveBandScore/w64 = %v", got["AdaptiveBandScore/w64"])
	}
	if a, ok := allocs["AdaptiveBandScore/w64"]; !ok || a != 0 {
		t.Errorf("AdaptiveBandScore/w64 allocs = %v (present=%v), want 0", a, ok)
	}
}

func TestBenchPattern(t *testing.T) {
	// Sub-benchmark names collapse to their unique first segments: "/" is a
	// level separator in -bench patterns, so the full name must not appear.
	got := benchPattern([]string{"A10k", "A/w64", "A/w256", "B"})
	want := "^Benchmark(A10k|A|B)$"
	if got != want {
		t.Errorf("benchPattern = %q, want %q", got, want)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "c": 100}
	measured := map[string]float64{
		"a": 110, // +10%: within tolerance
		"b": 130, // +30%: regression
		"d": 50,  // not in baseline: reported, never fails
	}
	report, failed := compare(base, measured, 0.20)
	if !failed {
		t.Error("30% regression passed the gate")
	}
	for _, want := range []string{"OK    a", "FAIL  b", "NEW   d"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// "c" produced no measurement: a deleted or renamed benchmark must fail
	// the gate, not silently un-gate itself.
	if !strings.Contains(report, "MISS  c") {
		t.Errorf("report missing MISS verdict for c:\n%s", report)
	}

	report, failed = compare(base, map[string]float64{"a": 119, "b": 90, "c": 100}, 0.20)
	if failed {
		t.Errorf("all within tolerance but gate failed:\n%s", report)
	}
	// Improvements show a negative delta.
	if !strings.Contains(report, "-10.0%") {
		t.Errorf("improvement not reported:\n%s", report)
	}

	// A missing benchmark alone fails the gate even with every measured
	// benchmark inside tolerance.
	report, failed = compare(base, map[string]float64{"a": 100, "b": 100}, 0.20)
	if !failed {
		t.Errorf("missing benchmark passed the gate:\n%s", report)
	}
}

func TestCompareAllocs(t *testing.T) {
	name := allocGated[0]
	base := map[string]float64{name: 0}

	// At the baseline: passes.
	report, failed := compareAllocs(base, map[string]float64{name: 0})
	if failed {
		t.Errorf("matching allocs failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "OK") {
		t.Errorf("report missing OK verdict:\n%s", report)
	}

	// One allocation above the baseline: fails — no tolerance band.
	report, failed = compareAllocs(base, map[string]float64{name: 1})
	if !failed {
		t.Errorf("alloc regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("report missing FAIL verdict:\n%s", report)
	}

	// Missing from the baseline: reported as NEW, never fails.
	report, failed = compareAllocs(map[string]float64{}, map[string]float64{name: 5})
	if failed {
		t.Errorf("benchmark absent from baseline failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "NEW") {
		t.Errorf("report missing NEW verdict:\n%s", report)
	}
}
