package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: pimnw
BenchmarkHostAlignPairs-8   	      12	  98765432 ns/op	 1234 B/op
BenchmarkHostAlignPairs-8   	      14	  87654321 ns/op	 1200 B/op
BenchmarkFluidSimulator-8   	    1000	      1234.5 ns/op
BenchmarkDPUKernelBatch     	       5	 200000000 ns/op
PASS
ok  	pimnw	12.3s
`
	got := parseBench(out)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	// Repeated runs collapse to the fastest.
	if got["HostAlignPairs"] != 87654321 {
		t.Errorf("HostAlignPairs = %v, want fastest run 87654321", got["HostAlignPairs"])
	}
	// Fractional ns/op and missing -N suffix both parse.
	if got["FluidSimulator"] != 1234.5 {
		t.Errorf("FluidSimulator = %v", got["FluidSimulator"])
	}
	if got["DPUKernelBatch"] != 200000000 {
		t.Errorf("DPUKernelBatch = %v", got["DPUKernelBatch"])
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "c": 100}
	measured := map[string]float64{
		"a": 110, // +10%: within tolerance
		"b": 130, // +30%: regression
		"d": 50,  // not in baseline: reported, never fails
	}
	report, failed := compare(base, measured, 0.20)
	if !failed {
		t.Error("30% regression passed the gate")
	}
	for _, want := range []string{"OK    a", "FAIL  b", "NEW   d"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	report, failed = compare(base, map[string]float64{"a": 119, "b": 90, "c": 100}, 0.20)
	if failed {
		t.Errorf("all within tolerance but gate failed:\n%s", report)
	}
	// Improvements show a negative delta.
	if !strings.Contains(report, "-10.0%") {
		t.Errorf("improvement not reported:\n%s", report)
	}
}
