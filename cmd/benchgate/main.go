// Command benchgate is the benchmark-regression gate of the CI pipeline:
// it runs the repository's key hot-path benchmarks (kernel, host, core,
// simulator), records the measured ns/op under BENCH_<sha>.json, and
// fails when any gated benchmark regresses more than -tolerance against
// the committed baseline (ci/bench_baseline.json).
//
// Usage:
//
//	benchgate [-baseline ci/bench_baseline.json] [-tolerance 0.20]
//	          [-count 3] [-benchtime 1s] [-out FILE] [-update]
//
// Each benchmark runs -count times and the fastest run is compared, which
// filters scheduler noise; -update rewrites the baseline from the current
// measurements (run it on the reference machine after intentional
// performance changes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// gated lists the benchmarks the gate watches: the kernel/host hot paths
// whose regressions matter most to the simulated pipeline (the full suite
// still smoke-runs in ci.sh).
var gated = []string{
	"AdaptiveBandScore10k",
	"AdaptiveBandAlign10k",
	"DPUKernelBatch",
	"HostAlignPairs",
	"HostEscalation",
	"FluidSimulator",
}

// baselineFile is the committed reference measurement set.
type baselineFile struct {
	SHA        string             `json:"sha"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op (best of -count)
}

func main() {
	var (
		baseline  = flag.String("baseline", "ci/bench_baseline.json", "committed baseline to gate against")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing (0.20 = +20%)")
		count     = flag.Int("count", 3, "runs per benchmark; the fastest is kept")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime per run")
		out       = flag.String("out", "", "result file (default BENCH_<sha>.json)")
		update    = flag.Bool("update", false, "rewrite the baseline from this run's measurements")
	)
	flag.Parse()
	if err := run(*baseline, *tolerance, *count, *benchtime, *out, *update); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, tolerance float64, count int, benchtime, outPath string, update bool) error {
	sha := headSHA()
	pattern := "^Benchmark(" + strings.Join(gated, "|") + ")$"
	args := []string{"test", "-run=^$", "-bench=" + pattern,
		"-benchtime=" + benchtime, "-count=" + strconv.Itoa(count), "."}
	fmt.Fprintf(os.Stderr, "benchgate: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("benchmarks failed: %w", err)
	}
	measured := parseBench(string(raw))
	for _, name := range gated {
		if _, ok := measured[name]; !ok {
			return fmt.Errorf("gated benchmark %s produced no measurement", name)
		}
	}

	result := baselineFile{
		SHA: sha, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Benchmarks: measured,
	}
	if outPath == "" {
		outPath = "BENCH_" + sha + ".json"
	}
	if err := writeJSON(outPath, result); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgate: results written to %s\n", outPath)

	if update {
		if err := writeJSON(baselinePath, result); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s updated\n", baselinePath)
		return nil
	}

	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	report, failed := compare(base.Benchmarks, measured, tolerance)
	fmt.Print(report)
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%% tolerance (baseline %s@%s; "+
			"if intentional, regenerate with -update on the reference machine)",
			100*tolerance, base.SHA, base.GOARCH)
	}
	return nil
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkHostAlignPairs-8   12   98765432 ns/op   ...".
var benchLine = regexp.MustCompile(`(?m)^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts the fastest ns/op per benchmark name from go test
// -bench output (repeated -count runs collapse to their minimum).
func parseBench(out string) map[string]float64 {
	best := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(out, -1) {
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := best[name]; !ok || ns < prev {
			best[name] = ns
		}
	}
	return best
}

// compare renders the gate table and reports whether any gated benchmark
// regressed beyond the tolerance. Benchmarks missing from the baseline
// are reported but never fail the gate (they gate once committed).
func compare(base, measured map[string]float64, tolerance float64) (string, bool) {
	var sb strings.Builder
	failed := false
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := measured[name]
		ref, ok := base[name]
		if !ok || ref <= 0 {
			fmt.Fprintf(&sb, "NEW   %-24s %14.0f ns/op (no baseline)\n", name, ns)
			continue
		}
		delta := ns/ref - 1
		verdict := "OK   "
		if delta > tolerance {
			verdict = "FAIL "
			failed = true
		}
		fmt.Fprintf(&sb, "%s %-24s %14.0f ns/op  baseline %14.0f  (%+.1f%%)\n",
			verdict, name, ns, ref, 100*delta)
	}
	return sb.String(), failed
}

func readBaseline(path string) (baselineFile, error) {
	var b baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("reading baseline (generate with -update): %w", err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return b, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// headSHA resolves the commit being measured: GITHUB_SHA in CI, git
// locally, "unknown" as the last resort.
func headSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
