// Command benchgate is the benchmark-regression gate of the CI pipeline:
// it runs the repository's key hot-path benchmarks (kernel, host, core,
// simulator), records the measured ns/op and allocs/op under
// BENCH_<sha>.json, and fails when any gated benchmark regresses more than
// -tolerance against the committed baseline (ci/bench_baseline.json) — or,
// for the deterministic core-engine benchmarks, when allocs/op exceeds the
// baseline at all (the zero-allocation steady state of the scratch-arena
// engine is a hard property, not a tolerance band). A baseline benchmark
// that produces no measurement also fails: deleting a benchmark must not
// silently delete its gate.
//
// Usage:
//
//	benchgate [-baseline ci/bench_baseline.json] [-tolerance 0.20]
//	          [-count 3] [-benchtime 1s] [-out FILE] [-update]
//	          [-allocs-only]
//
// Each benchmark runs -count times; the fastest ns/op and smallest
// allocs/op are compared, which filters scheduler noise and sync.Pool
// warm-up. -update rewrites the baseline from the current measurements
// (run it on the reference machine after intentional performance changes).
// -allocs-only runs just the alloc-gated benchmarks and checks only the
// allocation columns — a cheap CI step that needs no timing stability.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// gated lists the benchmarks the gate watches: the kernel/host hot paths
// whose regressions matter most to the simulated pipeline (the full suite
// still smoke-runs in ci.sh). Names may be sub-benchmarks ("parent/sub").
var gated = []string{
	"AdaptiveBandScore10k",
	"AdaptiveBandScoreNarrow10k",
	"AdaptiveBandScoreWide10k",
	"AdaptiveBandAlign10k",
	"AdaptiveBandScore/w64",
	"AdaptiveBandScore/w256",
	"AdaptiveBandAlign/w128",
	"DPUKernelBatch",
	"HostAlignPairs",
	"HostEscalation",
	"LPT",
	"Placement",
	"FluidSimulator",
	"CacheHit10k",
	"WALAppend",
}

// allocGated is the subset whose allocs/op must never exceed the baseline:
// the deterministic single-goroutine core-engine benchmarks. Host/kernel
// benchmarks are excluded — goroutine scheduling and GC timing make their
// counts noisy by a few objects either way.
var allocGated = []string{
	"AdaptiveBandScore10k",
	"AdaptiveBandScoreNarrow10k",
	"AdaptiveBandScoreWide10k",
	"AdaptiveBandAlign10k",
	"AdaptiveBandScore/w64",
	"AdaptiveBandScore/w256",
	"AdaptiveBandAlign/w128",
	"CacheHit10k",
	"Placement",
}

// baselineFile is the committed reference measurement set.
type baselineFile struct {
	SHA        string             `json:"sha"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op (best of -count)
	// AllocsPerOp records allocs/op (smallest of -count) for every
	// measured benchmark; the allocGated subset is gated on it.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	var (
		baseline   = flag.String("baseline", "ci/bench_baseline.json", "committed baseline to gate against")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing (0.20 = +20%)")
		count      = flag.Int("count", 3, "runs per benchmark; the fastest is kept")
		benchtime  = flag.String("benchtime", "1s", "go test -benchtime per run")
		out        = flag.String("out", "", "result file (default BENCH_<sha>.json)")
		update     = flag.Bool("update", false, "rewrite the baseline from this run's measurements")
		allocsOnly = flag.Bool("allocs-only", false, "run only the alloc-gated benchmarks and check only allocs/op")
	)
	flag.Parse()
	if err := run(*baseline, *tolerance, *count, *benchtime, *out, *update, *allocsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// benchPattern builds the -bench regex for a gated-name list. go test
// treats "/" in the pattern as a sub-benchmark level separator, so the
// pattern is built from the unique first segments; every sub-benchmark of
// a matched parent runs (and is recorded), which is what we want for the
// band sweeps.
func benchPattern(names []string) string {
	seen := map[string]bool{}
	var firsts []string
	for _, g := range names {
		f, _, _ := strings.Cut(g, "/")
		if !seen[f] {
			seen[f] = true
			firsts = append(firsts, f)
		}
	}
	return "^Benchmark(" + strings.Join(firsts, "|") + ")$"
}

func run(baselinePath string, tolerance float64, count int, benchtime, outPath string, update, allocsOnly bool) error {
	sha := headSHA()
	watch := gated
	if allocsOnly {
		watch = allocGated
	}
	args := []string{"test", "-run=^$", "-bench=" + benchPattern(watch), "-benchmem",
		"-benchtime=" + benchtime, "-count=" + strconv.Itoa(count), "."}
	fmt.Fprintf(os.Stderr, "benchgate: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("benchmarks failed: %w", err)
	}
	measured, allocs := parseBench(string(raw))
	for _, name := range watch {
		if _, ok := measured[name]; !ok {
			return fmt.Errorf("gated benchmark %s produced no measurement", name)
		}
	}

	result := baselineFile{
		SHA: sha, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Benchmarks: measured, AllocsPerOp: allocs,
	}
	if outPath == "" {
		outPath = "BENCH_" + sha + ".json"
	}
	if err := writeJSON(outPath, result); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgate: results written to %s\n", outPath)

	if update {
		if allocsOnly {
			return fmt.Errorf("-update needs the full benchmark set; drop -allocs-only")
		}
		if err := writeJSON(baselinePath, result); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s updated\n", baselinePath)
		return nil
	}

	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	failed := false
	if !allocsOnly {
		report, nsFailed := compare(base.Benchmarks, measured, tolerance)
		fmt.Print(report)
		failed = nsFailed
	}
	allocReport, allocFailed := compareAllocs(base.AllocsPerOp, allocs)
	fmt.Print(allocReport)
	if failed || allocFailed {
		return fmt.Errorf("benchmark regression (baseline %s@%s; "+
			"if intentional, regenerate with -update on the reference machine)",
			base.SHA, base.GOARCH)
	}
	return nil
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// "BenchmarkHostAlignPairs-8  12  98765432 ns/op  1.2 MB/s  80 B/op  2 allocs/op".
// The MB/s and memory columns are optional.
var benchLine = regexp.MustCompile(`(?m)^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+[0-9]+ B/op\s+([0-9]+) allocs/op)?`)

// parseBench extracts the fastest ns/op and the smallest allocs/op per
// benchmark name from go test -bench output (repeated -count runs collapse
// to their minimum; the allocs minimum discards sync.Pool warm-up misses).
func parseBench(out string) (best, allocs map[string]float64) {
	best = map[string]float64{}
	allocs = map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(out, -1) {
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := best[name]; !ok || ns < prev {
			best[name] = ns
		}
		if m[3] != "" {
			a, err := strconv.ParseFloat(m[3], 64)
			if err == nil {
				if prev, ok := allocs[name]; !ok || a < prev {
					allocs[name] = a
				}
			}
		}
	}
	return best, allocs
}

// compare renders the per-benchmark old/new/Δ% gate table and reports
// whether any gated benchmark regressed beyond the tolerance. Benchmarks
// missing from the baseline are reported but never fail the gate (they
// gate once committed); a baseline benchmark that produced no measurement
// FAILS the gate — a deleted or renamed benchmark silently un-gating
// itself is exactly the regression hole this gate exists to close.
func compare(base, measured map[string]float64, tolerance float64) (string, bool) {
	var sb strings.Builder
	failed := false
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := measured[name]
		ref, ok := base[name]
		if !ok || ref <= 0 {
			fmt.Fprintf(&sb, "NEW   %-26s %14.0f ns/op (no baseline)\n", name, ns)
			continue
		}
		delta := ns/ref - 1
		verdict := "OK   "
		if delta > tolerance {
			verdict = "FAIL "
			failed = true
		}
		fmt.Fprintf(&sb, "%s %-26s %14.0f ns/op  baseline %14.0f  (%+.1f%%)\n",
			verdict, name, ns, ref, 100*delta)
	}
	missing := make([]string, 0)
	for name := range base {
		if _, ok := measured[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&sb, "MISS  %-26s baseline %14.0f ns/op, no measurement (benchmark deleted or renamed?)\n",
			name, base[name])
		failed = true
	}
	return sb.String(), failed
}

// compareAllocs gates the allocGated benchmarks on allocs/op: any count
// above the committed baseline fails (no tolerance — the engine's
// steady-state allocation profile is deterministic). Benchmarks absent
// from either side are skipped; they gate once the baseline records them.
func compareAllocs(base, measured map[string]float64) (string, bool) {
	var sb strings.Builder
	failed := false
	for _, name := range allocGated {
		a, ok := measured[name]
		if !ok {
			continue
		}
		ref, ok := base[name]
		if !ok {
			fmt.Fprintf(&sb, "NEW   %-24s %14.0f allocs/op (no baseline)\n", name, a)
			continue
		}
		verdict := "OK   "
		if a > ref {
			verdict = "FAIL "
			failed = true
		}
		fmt.Fprintf(&sb, "%s %-24s %14.0f allocs/op  baseline %14.0f\n", verdict, name, a, ref)
	}
	return sb.String(), failed
}

func readBaseline(path string) (baselineFile, error) {
	var b baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("reading baseline (generate with -update): %w", err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return b, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// headSHA resolves the commit being measured: GITHUB_SHA in CI, git
// locally, "unknown" as the last resort.
func headSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
