package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pimnw/internal/admission"
	"pimnw/internal/admission/config"
	"pimnw/internal/host"
	"pimnw/internal/obs"
)

func post(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainResults(t *testing.T, resp *http.Response) []wireResult {
	t.Helper()
	defer resp.Body.Close()
	var results []wireResult
	dec := json.NewDecoder(resp.Body)
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if r.Err != "" {
			t.Fatalf("server error mid-stream: %s", r.Err)
		}
		results = append(results, r)
	}
	return results
}

// TestServerDrainingHealthz: once draining is flagged, /healthz answers
// 503 "draining" (so load balancers route away) and new align requests
// are refused with 503, while the flag down means business as usual.
func TestServerDrainingHealthz(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	sv := newTestServer(t, testSessionConfig(t), 2)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	sv.draining.Store(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Fatalf("/healthz while draining = %d %q, want 503 draining", resp.StatusCode, body)
	}
	_, wires := testWorkload(t, 1)
	wbody, _ := json.Marshal(wires)
	resp = post(t, ts.URL+"/align", wbody, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /align while draining = %d, want 503", resp.StatusCode)
	}

	sv.draining.Store(false)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz after drain flag cleared = %d %q", resp.StatusCode, body)
	}
}

// TestServerRateLimit429 exercises the client and global tiers over
// HTTP: a client key that exhausts its burst gets 429 naming the tier,
// an unrelated key is still admitted, and the reject shows up on the
// per-tier metric.
func TestServerRateLimit429(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	cfg := config.Default()
	cfg.Limits.ClientQPS = 0.001 // effectively: burst only, no refill within the test
	cfg.Limits.ClientBurst = 1
	sv, err := newServer(cfg, testSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()
	_, wires := testWorkload(t, 1)
	body, _ := json.Marshal(wires)

	key := map[string]string{"X-Api-Key": "tenant-a"}
	resp := post(t, ts.URL+"/align", body, key)
	if got := drainResults(t, resp); len(got) != 1 {
		t.Fatalf("first request: %d results, want 1", len(got))
	}
	resp = post(t, ts.URL+"/align", body, key)
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request on an exhausted client bucket = %d, want 429", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "client") {
		t.Errorf("429 body %q does not name the violated tier", msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 without Retry-After")
	}

	// A different tenant is unaffected (its own bucket).
	resp = post(t, ts.URL+"/align", body, map[string]string{"X-Api-Key": "tenant-b"})
	if got := drainResults(t, resp); len(got) != 1 {
		t.Fatalf("other tenant refused alongside the limited one (%d results)", len(got))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `alignd_ratelimit_rejected_total{tier="client"} 1`) {
		t.Errorf("metrics missing the per-tier reject counter:\n%s", metrics)
	}
}

func TestServerPriorityClassValidation(t *testing.T) {
	sv := newTestServer(t, testSessionConfig(t), 1)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()
	resp := post(t, ts.URL+"/align", []byte("[]"), map[string]string{"X-Priority": "urgent"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown X-Priority = %d, want 400", resp.StatusCode)
	}
}

// TestServerShedDegradation walks the ladder's serving behavior: under
// ShedScoreOnly a bulk request that asked for CIGARs is served
// score-only with typed labels on the header and every result line;
// interactive requests are untouched (score-only is their contract, not
// a degradation); under ShedRejectBulk bulk bounces with 429 while
// interactive is still served. No rung ever degrades silently.
func TestServerShedDegradation(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	scfg := testSessionConfig(t)
	scfg.Host.Verify = true // so no-verify has something to take away
	sv := newTestServer(t, scfg, 4)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()
	_, wires := testWorkload(t, 3)
	body, _ := json.Marshal(wires)

	// Full service: bulk results carry CIGARs and no degradation labels.
	resp := post(t, ts.URL+"/align", body, nil)
	if lvl := resp.Header.Get("X-Shed-Level"); lvl != "none" {
		t.Fatalf("X-Shed-Level = %q at full service, want none", lvl)
	}
	for _, r := range drainResults(t, resp) {
		if r.Cigar == "" || len(r.Degraded) != 0 {
			t.Fatalf("full-service result %+v, want a CIGAR and no degradation labels", r)
		}
	}

	// ShedScoreOnly: bulk is served without CIGARs, labelled on the
	// response header and on every line.
	if err := sv.pressure.SetOverride(admission.ShedScoreOnly); err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/align", body, nil)
	if lvl := resp.Header.Get("X-Shed-Level"); lvl != "score-only" {
		t.Fatalf("X-Shed-Level = %q under override, want score-only", lvl)
	}
	if deg := resp.Header.Get("X-Degraded"); deg != "score-only" {
		t.Fatalf("X-Degraded = %q, want score-only", deg)
	}
	results := drainResults(t, resp)
	if len(results) != len(wires) {
		t.Fatalf("%d degraded results for %d pairs", len(results), len(wires))
	}
	for _, r := range results {
		if r.Cigar != "" {
			t.Fatalf("pair %d still carries a CIGAR under score-only shedding", r.ID)
		}
		if len(r.Degraded) != 1 || r.Degraded[0] != "score-only" {
			t.Fatalf("pair %d degradation labels %v, want [score-only]", r.ID, r.Degraded)
		}
	}

	// Interactive requests pass through undegraded — score-only is what
	// they asked for.
	resp = post(t, ts.URL+"/align", body, map[string]string{"X-Priority": "interactive"})
	if deg := resp.Header.Get("X-Degraded"); deg != "" {
		t.Fatalf("interactive request labelled degraded (%q)", deg)
	}
	for _, r := range drainResults(t, resp) {
		if r.Cigar != "" || len(r.Degraded) != 0 {
			t.Fatalf("interactive result %+v, want score-only with no labels", r)
		}
	}

	// ShedNoVerify on a score-only template degrades only verify; with
	// traceback still wanted, score-only subsumes it (covered above), so
	// exercise the verify-only label via an interactive-like template:
	// skip — the admission package pins Degradations(); here we check the
	// reject rung instead.
	if err := sv.pressure.SetOverride(admission.ShedRejectBulk); err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/align", body, nil)
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk under reject-bulk = %d, want 429 (%s)", resp.StatusCode, msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 without Retry-After")
	}
	resp = post(t, ts.URL+"/align", body, map[string]string{"X-Priority": "interactive"})
	if got := drainResults(t, resp); len(got) != len(wires) {
		t.Fatalf("interactive refused under reject-bulk (%d results)", len(got))
	}

	sv.pressure.ClearOverride()
	resp = post(t, ts.URL+"/align", body, nil)
	for _, r := range drainResults(t, resp) {
		if r.Cigar == "" || len(r.Degraded) != 0 {
			t.Fatalf("post-release result %+v, want full service restored", r)
		}
	}
}

// TestAdminConfigReload: GET returns the canonical config, POSTing it
// back unchanged is accepted, a dynamic change (queue slots, rates)
// takes effect on the live gate/limiter, and a static-section change is
// refused with 400 without touching anything.
func TestAdminConfigReload(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	sv := newTestServer(t, testSessionConfig(t), 4)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/admin/config")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /admin/config = %d", resp.StatusCode)
	}
	parsed, err := config.Parse(live)
	if err != nil {
		t.Fatalf("live config does not re-parse: %v\n%s", err, live)
	}
	if parsed.Queues.Slots != 4 {
		t.Fatalf("live config slots = %d, want 4", parsed.Queues.Slots)
	}

	// Identity reload: accepted, nothing changes.
	resp = post(t, ts.URL+"/admin/config", live, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("identity reload = %d, want 200", resp.StatusCode)
	}

	// Dynamic change: slots 4 -> 9 and a client rate limit.
	next := *parsed
	next.Queues.Slots = 9
	next.Limits.ClientQPS = 50
	next.Limits.ClientBurst = 10
	var buf bytes.Buffer
	next.WriteTo(&buf)
	resp = post(t, ts.URL+"/admin/config", buf.Bytes(), nil)
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dynamic reload = %d: %s", resp.StatusCode, msg)
	}
	if got := sv.gate.Config().Slots; got != 9 {
		t.Fatalf("gate slots after reload = %d, want 9", got)
	}
	if got := sv.rl.Limits().ClientQPS; got != 50 {
		t.Fatalf("limiter client QPS after reload = %v, want 50", got)
	}

	// Static change: refused, live state untouched.
	bad := next
	bad.Align.Band = 256
	buf.Reset()
	bad.WriteTo(&buf)
	resp = post(t, ts.URL+"/admin/config", buf.Bytes(), nil)
	msg, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("static-section reload = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "align") {
		t.Errorf("400 body %q does not name the offending section", msg)
	}
	if got := sv.cfg.Load().Align.Band; got != 64 && got != parsed.Align.Band {
		t.Fatalf("static reload leaked: band = %d", got)
	}

	// The fleet is static too: a backend-spec change must be refused,
	// not silently stored while the old backends keep serving.
	badFleet := next
	badFleet.Fleet.Backends = "pim:2,cpu:4"
	buf.Reset()
	badFleet.WriteTo(&buf)
	resp = post(t, ts.URL+"/admin/config", buf.Bytes(), nil)
	msg, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fleet reload = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "fleet") {
		t.Errorf("400 body %q does not name the fleet section", msg)
	}
	if got := sv.cfg.Load().Fleet.Backends; got != parsed.Fleet.Backends {
		t.Fatalf("fleet reload leaked: backends = %q", got)
	}

	// Malformed config: 400 with the line number.
	resp = post(t, ts.URL+"/admin/config", []byte("limits:\n  bogus_key: 1\n"), nil)
	msg, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(msg), "bogus_key") {
		t.Fatalf("malformed reload = %d %q, want 400 naming the key", resp.StatusCode, msg)
	}
}

// TestAdminShedEndpoint drives the manual override: pin reject-bulk,
// observe it on GET and on the serving path, then return to auto.
func TestAdminShedEndpoint(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	sv := newTestServer(t, testSessionConfig(t), 2)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	var st shedStatus
	resp := post(t, ts.URL+"/admin/shed", []byte(`{"level":"reject-bulk"}`), nil)
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Level != "reject-bulk" || st.Override != "reject-bulk" || st.Auto != "none" {
		t.Fatalf("shed status after override = %+v", st)
	}
	if sv.pressure.Level() != admission.ShedRejectBulk {
		t.Fatalf("pressure level %v, want reject-bulk", sv.pressure.Level())
	}

	resp = post(t, ts.URL+"/admin/shed", []byte(`{"level":"auto"}`), nil)
	st = shedStatus{} // omitempty would leave the stale override in place
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Level != "none" || st.Override != "" {
		t.Fatalf("shed status after auto = %+v", st)
	}

	resp = post(t, ts.URL+"/admin/shed", []byte(`{"level":"sideways"}`), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus shed level = %d, want 400", resp.StatusCode)
	}

	// /admin/limits reports all three surfaces.
	lresp, err := http.Get(ts.URL + "/admin/limits")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Limits json.RawMessage `json:"limits"`
		Gate   struct {
			Slots int `json:"slots"`
		} `json:"gate"`
		Shed shedStatus `json:"shed"`
	}
	err = json.NewDecoder(lresp.Body).Decode(&stats)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gate.Slots != 2 || len(stats.Limits) == 0 || stats.Shed.Level != "none" {
		t.Fatalf("/admin/limits = %+v", stats)
	}
}

// TestAdminTokenAuth: with server.admin_token configured every /admin
// request must present it; both header forms work.
func TestAdminTokenAuth(t *testing.T) {
	cfg := config.Default()
	cfg.Server.AdminToken = "s3cret"
	sv, err := newServer(cfg, testSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/admin/shed")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /admin/shed = %d, want 401", resp.StatusCode)
	}
	for _, hdr := range []map[string]string{
		{"X-Admin-Token": "s3cret"},
		{"Authorization": "Bearer s3cret"},
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/admin/shed", nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("authenticated /admin/shed with %v = %d, want 200", hdr, resp.StatusCode)
		}
	}
}

// TestServerSamplerDrivesLadder wires the real background sampler at a
// fast cadence and holds the gate saturated: the ladder must climb
// without any manual override, then release once the load vanishes.
func TestServerSamplerDrivesLadder(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	cfg := config.Default()
	cfg.Queues.Slots = 1
	cfg.Shed.SampleInterval = time.Millisecond
	cfg.Shed.HighWater = 0.9
	cfg.Shed.LowWater = 0.5
	cfg.Shed.RaiseAfter = 3
	cfg.Shed.ReleaseAfter = 3
	sv, err := newServer(cfg, testSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sv.start()
	defer sv.Close()

	sv.gate.Acquire(context.Background(), host.ClassBulk) // load = 1.0
	deadline := time.Now().Add(5 * time.Second)
	for sv.pressure.Level() < admission.ShedScoreOnly {
		if time.Now().After(deadline) {
			t.Fatal("sampler never climbed the ladder under a saturated gate")
		}
		time.Sleep(time.Millisecond)
	}
	sv.gate.Release() // load = 0
	for sv.pressure.Level() != admission.ShedNone {
		if time.Now().After(deadline) {
			t.Fatalf("sampler never released (level %v)", sv.pressure.Level())
		}
		time.Sleep(time.Millisecond)
	}
}
