package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"pimnw/internal/seq"
)

// runClient posts the -a/-b FASTA pairs to a running daemon and prints
// results in pimalign's output format, so the serving path can be
// diffed line-for-line against the one-shot CLI.
func runClient(url, aPath, bPath string) error {
	if aPath == "" || bPath == "" {
		return fmt.Errorf("-post needs -a and -b FASTA files")
	}
	queries, err := readFasta(aPath)
	if err != nil {
		return err
	}
	targets, err := readFasta(bPath)
	if err != nil {
		return err
	}
	if len(queries) != len(targets) {
		return fmt.Errorf("%d queries vs %d targets", len(queries), len(targets))
	}
	pairs := make([]wirePair, len(queries))
	for i := range queries {
		pairs[i] = wirePair{ID: i, A: queries[i].Seq.String(), B: targets[i].Seq.String()}
	}
	body, err := json.Marshal(pairs)
	if err != nil {
		return err
	}
	if !strings.Contains(url, "/align") {
		url = strings.TrimSuffix(url, "/") + "/align"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("server at capacity (HTTP 429, Retry-After %s)", resp.Header.Get("Retry-After"))
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	dec := json.NewDecoder(resp.Body)
	got := 0
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding results: %w", err)
		}
		if r.Err != "" {
			return fmt.Errorf("server: %s", r.Err)
		}
		if r.ID < 0 || r.ID >= len(queries) {
			return fmt.Errorf("result for unknown pair %d", r.ID)
		}
		printWireResult(out, queries[r.ID].Name, targets[r.ID].Name, r)
		got++
	}
	if got != len(pairs) {
		return fmt.Errorf("%d results for %d pairs", got, len(pairs))
	}
	return nil
}

func readFasta(path string) ([]seq.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seq.ReadFASTA(f, nil)
}

// printWireResult mirrors pimalign's printResult rendering so outputs
// diff cleanly: FAIL lines for pairs with no usable score, a trailing
// status/provenance column for untrusted or rescued pairs, and the
// plain score[+CIGAR] line otherwise.
func printWireResult(w io.Writer, qName, tName string, r wireResult) {
	switch r.Status {
	case "out-of-band", "abandoned":
		fmt.Fprintf(w, "%s\t%s\tFAIL\t%s\n", qName, tName, r.Status)
		return
	}
	cols := []string{qName, tName, fmt.Sprint(r.Score)}
	if r.Cigar != "" {
		cols = append(cols, r.Cigar)
	}
	if r.Status != "ok" {
		note := r.Status
		if r.Trusted && r.Provenance != "" {
			note = r.Provenance
		}
		cols = append(cols, note)
	}
	fmt.Fprintln(w, strings.Join(cols, "\t"))
}
