package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"pimnw/internal/obs"
)

// registerDebug wires the ops surface under /debug/: the standard pprof
// handlers, a /debug/vars snapshot (metrics registry + Go runtime stats),
// the flight-recorder dump, and an on-demand live Perfetto trace window.
func registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", handleVars)
	mux.HandleFunc("/debug/flight", handleFlight)
	mux.HandleFunc("/debug/trace", handleTraceCapture)
}

// handleVars is the expvar-style snapshot: every registered metric plus a
// slice of Go runtime state, as one indented JSON object.
func handleVars(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The +Inf overflow bound marshals as the largest finite float64
	// (HistogramBucket.MarshalJSON); no hand-clamping needed here.
	out := map[string]any{
		"metrics": obs.Default().Snapshot(),
		"runtime": map[string]any{
			"go_version":     runtime.Version(),
			"goroutines":     runtime.NumGoroutine(),
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"num_cpu":        runtime.NumCPU(),
			"heap_alloc":     ms.HeapAlloc,
			"heap_sys":       ms.HeapSys,
			"total_alloc":    ms.TotalAlloc,
			"mallocs":        ms.Mallocs,
			"frees":          ms.Frees,
			"num_gc":         ms.NumGC,
			"pause_total_ns": ms.PauseTotalNs,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleFlight dumps the flight recorder's retained events, oldest first.
// With no recorder installed the dump is empty, not an error.
func handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.Flight().WriteJSON(w)
}

// handleTraceCapture collects the host's wall-clock spans for a live
// window (?sec=N, default 1, max 60) and returns them as Chrome
// trace-event JSON — point Perfetto at a running daemon without
// restarting it. One window at a time; concurrent captures get 409.
func handleTraceCapture(w http.ResponseWriter, r *http.Request) {
	sec := 1
	if q := r.URL.Query().Get("sec"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > 60 {
			http.Error(w, "sec must be an integer in [1,60]", http.StatusBadRequest)
			return
		}
		sec = n
	}
	events, err := obs.CaptureTrace(r.Context(), time.Duration(sec)*time.Second)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, obs.ErrCaptureBusy) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteTraceEvents(w, events)
}
