package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"pimnw/internal/host"
	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

// wirePair is one alignment request item.
type wirePair struct {
	ID int    `json:"id"`
	A  string `json:"a"`
	B  string `json:"b"`
}

// wireResult is one streamed response line, stamped with the request's
// trace ID so any line can be correlated with server logs, flight-recorder
// entries and Perfetto slices. Err is set only on the trailing line of a
// request that failed mid-stream.
type wireResult struct {
	ID         int    `json:"id"`
	Score      int32  `json:"score"`
	InBand     bool   `json:"in_band"`
	Cigar      string `json:"cigar,omitempty"`
	Status     string `json:"status,omitempty"`
	Trusted    bool   `json:"trusted"`
	Provenance string `json:"provenance,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
	Err        string `json:"error,omitempty"`
}

func toWireResult(r host.Result, traceID string) wireResult {
	return wireResult{
		ID:         r.ID,
		Score:      r.Score,
		InBand:     r.InBand,
		Cigar:      string(r.Cigar),
		Status:     r.Status.String(),
		Trusted:    r.Status.Trusted(),
		Provenance: r.Provenance,
		TraceID:    traceID,
	}
}

func toHostPair(p wirePair) (host.Pair, error) {
	a, err := seq.FromString(p.A, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence a: %w", p.ID, err)
	}
	b, err := seq.FromString(p.B, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence b: %w", p.ID, err)
	}
	return host.Pair{ID: p.ID, A: a, B: b}, nil
}

// server owns the session template and the request-level admission gate.
// Every align request runs its own streaming session (micro-batching
// within the request); maxRequests bounds how many run at once, and
// beyond it admission answers 429 + Retry-After — the HTTP face of the
// session layer's backpressure.
type server struct {
	scfg        host.SessionConfig
	maxRequests int64
	slow        time.Duration // log a stage breakdown for requests at/over this; negative disables
	active      atomic.Int64
}

func newServer(scfg host.SessionConfig, maxRequests int, slow time.Duration) *server {
	if maxRequests < 1 {
		maxRequests = 1
	}
	return &server{scfg: scfg, maxRequests: int64(maxRequests), slow: slow}
}

func (sv *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/align", sv.handleAlign)
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	registerDebug(mux)
	return mux
}

func (sv *server) acquire() bool {
	if sv.active.Add(1) > sv.maxRequests {
		sv.active.Add(-1)
		return false
	}
	return true
}

func (sv *server) release() { sv.active.Add(-1) }

func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

func (sv *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Every request gets a trace ID — the caller's X-Trace-Id if given,
	// minted otherwise — echoed on the response, stamped on every result
	// line, and threaded through the session into spans, flight-recorder
	// entries and structured logs.
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" {
		tid = obs.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", tid)
	if !sv.acquire() {
		obs.Default().Counter("alignd_requests_rejected_total").Add(1)
		obs.Flight().Record("reject", tid, "align request rejected: server at capacity")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		return
	}
	defer sv.release()
	reg := obs.Default()
	reg.Counter("alignd_requests_total").Add(1)
	reg.Gauge("alignd_inflight_requests").Add(1)
	defer reg.Gauge("alignd_inflight_requests").Add(-1)
	obs.Flight().Record("admit", tid, "align request admitted")
	start := time.Now()

	// The response streams while the request body is still being read;
	// HTTP/1 needs full-duplex opted in (no-op where unsupported).
	http.NewResponseController(w).EnableFullDuplex()

	dec := newPairDecoder(r.Body)
	first, err := dec.next()
	if err == io.EOF { // empty request: empty result stream
		w.Header().Set("Content-Type", "application/x-ndjson")
		return
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("decoding pairs: %v", err), http.StatusBadRequest)
		return
	}
	fp, err := toHostPair(first)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s, err := host.NewSession(obs.WithTraceID(r.Context(), tid), sv.scfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.Submit(fp); err != nil {
		s.Close()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	// Admit the remaining pairs while results stream below. A full
	// session queue here is flow control, not a reject: the client is
	// already receiving results, so admission just waits for the stream
	// to drain a slot.
	submitErr := make(chan error, 1)
	go func() {
		defer s.Close()
		submitErr <- sv.submitRest(r, s, dec)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	for res := range s.Results() {
		if enc.Encode(toWireResult(res, tid)) != nil {
			break // client went away; session cleanup follows via r.Context()
		}
		if fl != nil {
			fl.Flush()
		}
	}
	err = <-submitErr
	if err == nil {
		err = s.Err()
	}
	if err != nil {
		// Too late for a status code; the trailing line carries the error.
		enc.Encode(wireResult{TraceID: tid, Err: err.Error()})
	}
	sv.observeRequest(tid, start, s)
}

// stageBuckets spans the serving stages' range: sub-millisecond linger
// and queue waits up to multi-second escalation timelines.
var stageBuckets = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// observeRequest records the drained session's stage latency decomposition
// into the alignd_stage_seconds{stage=...} histograms and, when the
// request's wall time reaches the slow threshold, logs the full breakdown
// and flight-records the event. Stages() blocks until the session has
// drained, which the streaming loop above guarantees terminates (client
// disconnects cancel r.Context(), which aborts the session).
func (sv *server) observeRequest(tid string, start time.Time, s *host.Session) {
	st := s.Stages()
	rep := s.Report()
	elapsed := time.Since(start).Seconds()
	reg := obs.Default()
	observe := func(stage string, v float64) {
		reg.Histogram(`alignd_stage_seconds{stage="`+stage+`"}`, stageBuckets).Observe(v)
	}
	observe("queue_wait", st.QueueWaitSec)
	observe("linger", st.LingerSec)
	observe("kernel", st.KernelSec)
	observe("wait_retry", st.WaitRetrySec)
	observe("escalation", st.EscalationSec)
	observe("verify", st.VerifySec)
	reg.Histogram("alignd_request_seconds", stageBuckets).Observe(elapsed)
	if sv.slow >= 0 && elapsed >= sv.slow.Seconds() {
		obs.Info("slow request", "trace_id", tid,
			"elapsed_sec", elapsed,
			"pairs", rep.Alignments,
			"queue_wait_sec", st.QueueWaitSec,
			"linger_sec", st.LingerSec,
			"kernel_sec", st.KernelSec,
			"wait_retry_sec", st.WaitRetrySec,
			"escalation_sec", st.EscalationSec,
			"verify_sec", st.VerifySec)
		obs.Flight().Recordf("slow", tid, "request took %.3fs (%d pairs)", elapsed, rep.Alignments)
	}
}

func (sv *server) submitRest(r *http.Request, s *host.Session, dec *pairDecoder) error {
	for {
		wp, err := dec.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("decoding pairs: %w", err)
		}
		p, err := toHostPair(wp)
		if err != nil {
			return err
		}
		for {
			err := s.Submit(p)
			if err == nil {
				break
			}
			if !errors.Is(err, host.ErrQueueFull) {
				return err
			}
			select {
			case <-r.Context().Done():
				return r.Context().Err()
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// pairDecoder reads request pairs from either a JSON array or an NDJSON
// stream, decided by the first non-space byte.
type pairDecoder struct {
	dec   *json.Decoder
	array bool
	err   error
}

func newPairDecoder(r io.Reader) *pairDecoder {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return &pairDecoder{err: io.EOF}
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			br.Discard(1)
			continue
		}
		d := &pairDecoder{dec: json.NewDecoder(br), array: b[0] == '['}
		if d.array {
			if _, err := d.dec.Token(); err != nil { // consume '['
				d.err = err
			}
		}
		return d
	}
}

func (d *pairDecoder) next() (wirePair, error) {
	if d.err != nil {
		return wirePair{}, d.err
	}
	if d.array && !d.dec.More() {
		return wirePair{}, io.EOF
	}
	var p wirePair
	if err := d.dec.Decode(&p); err != nil {
		d.err = err
		return wirePair{}, err
	}
	return p, nil
}
