package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"pimnw/internal/host"
	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

// wirePair is one alignment request item.
type wirePair struct {
	ID int    `json:"id"`
	A  string `json:"a"`
	B  string `json:"b"`
}

// wireResult is one streamed response line. Err is set only on the
// trailing line of a request that failed mid-stream.
type wireResult struct {
	ID         int    `json:"id"`
	Score      int32  `json:"score"`
	InBand     bool   `json:"in_band"`
	Cigar      string `json:"cigar,omitempty"`
	Status     string `json:"status,omitempty"`
	Trusted    bool   `json:"trusted"`
	Provenance string `json:"provenance,omitempty"`
	Err        string `json:"error,omitempty"`
}

func toWireResult(r host.Result) wireResult {
	return wireResult{
		ID:         r.ID,
		Score:      r.Score,
		InBand:     r.InBand,
		Cigar:      string(r.Cigar),
		Status:     r.Status.String(),
		Trusted:    r.Status.Trusted(),
		Provenance: r.Provenance,
	}
}

func toHostPair(p wirePair) (host.Pair, error) {
	a, err := seq.FromString(p.A, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence a: %w", p.ID, err)
	}
	b, err := seq.FromString(p.B, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence b: %w", p.ID, err)
	}
	return host.Pair{ID: p.ID, A: a, B: b}, nil
}

// server owns the session template and the request-level admission gate.
// Every align request runs its own streaming session (micro-batching
// within the request); maxRequests bounds how many run at once, and
// beyond it admission answers 429 + Retry-After — the HTTP face of the
// session layer's backpressure.
type server struct {
	scfg        host.SessionConfig
	maxRequests int64
	active      atomic.Int64
}

func newServer(scfg host.SessionConfig, maxRequests int) *server {
	if maxRequests < 1 {
		maxRequests = 1
	}
	return &server{scfg: scfg, maxRequests: int64(maxRequests)}
}

func (sv *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/align", sv.handleAlign)
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (sv *server) acquire() bool {
	if sv.active.Add(1) > sv.maxRequests {
		sv.active.Add(-1)
		return false
	}
	return true
}

func (sv *server) release() { sv.active.Add(-1) }

func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.Default().WritePrometheus(w)
}

func (sv *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !sv.acquire() {
		obs.Default().Counter("alignd_requests_rejected_total").Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		return
	}
	defer sv.release()
	obs.Default().Counter("alignd_requests_total").Add(1)

	// The response streams while the request body is still being read;
	// HTTP/1 needs full-duplex opted in (no-op where unsupported).
	http.NewResponseController(w).EnableFullDuplex()

	dec := newPairDecoder(r.Body)
	first, err := dec.next()
	if err == io.EOF { // empty request: empty result stream
		w.Header().Set("Content-Type", "application/x-ndjson")
		return
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("decoding pairs: %v", err), http.StatusBadRequest)
		return
	}
	fp, err := toHostPair(first)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s, err := host.NewSession(r.Context(), sv.scfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.Submit(fp); err != nil {
		s.Close()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	// Admit the remaining pairs while results stream below. A full
	// session queue here is flow control, not a reject: the client is
	// already receiving results, so admission just waits for the stream
	// to drain a slot.
	submitErr := make(chan error, 1)
	go func() {
		defer s.Close()
		submitErr <- sv.submitRest(r, s, dec)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	for res := range s.Results() {
		if enc.Encode(toWireResult(res)) != nil {
			break // client went away; session cleanup follows via r.Context()
		}
		if fl != nil {
			fl.Flush()
		}
	}
	err = <-submitErr
	if err == nil {
		err = s.Err()
	}
	if err != nil {
		// Too late for a status code; the trailing line carries the error.
		enc.Encode(wireResult{Err: err.Error()})
	}
}

func (sv *server) submitRest(r *http.Request, s *host.Session, dec *pairDecoder) error {
	for {
		wp, err := dec.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("decoding pairs: %w", err)
		}
		p, err := toHostPair(wp)
		if err != nil {
			return err
		}
		for {
			err := s.Submit(p)
			if err == nil {
				break
			}
			if !errors.Is(err, host.ErrQueueFull) {
				return err
			}
			select {
			case <-r.Context().Done():
				return r.Context().Err()
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// pairDecoder reads request pairs from either a JSON array or an NDJSON
// stream, decided by the first non-space byte.
type pairDecoder struct {
	dec   *json.Decoder
	array bool
	err   error
}

func newPairDecoder(r io.Reader) *pairDecoder {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return &pairDecoder{err: io.EOF}
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			br.Discard(1)
			continue
		}
		d := &pairDecoder{dec: json.NewDecoder(br), array: b[0] == '['}
		if d.array {
			if _, err := d.dec.Token(); err != nil { // consume '['
				d.err = err
			}
		}
		return d
	}
}

func (d *pairDecoder) next() (wirePair, error) {
	if d.err != nil {
		return wirePair{}, d.err
	}
	if d.array && !d.dec.More() {
		return wirePair{}, io.EOF
	}
	var p wirePair
	if err := d.dec.Decode(&p); err != nil {
		d.err = err
		return wirePair{}, err
	}
	return p, nil
}
