package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimnw/internal/admission"
	"pimnw/internal/admission/config"
	"pimnw/internal/host"
	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

// wirePair is one alignment request item.
type wirePair struct {
	ID int    `json:"id"`
	A  string `json:"a"`
	B  string `json:"b"`
}

// wireResult is one streamed response line, stamped with the request's
// trace ID so any line can be correlated with server logs, flight-recorder
// entries and Perfetto slices. Degraded lists the typed downgrades the
// shed ladder applied to this request (empty when served at full
// fidelity) — a degraded result is always labelled, never silent. Err is
// set only on the trailing line of a request that failed mid-stream.
type wireResult struct {
	ID         int      `json:"id"`
	Score      int32    `json:"score"`
	InBand     bool     `json:"in_band"`
	Cigar      string   `json:"cigar,omitempty"`
	Status     string   `json:"status,omitempty"`
	Trusted    bool     `json:"trusted"`
	Provenance string   `json:"provenance,omitempty"`
	Backend    string   `json:"backend,omitempty"`
	TraceID    string   `json:"trace_id,omitempty"`
	Cached     bool     `json:"cached,omitempty"`
	Degraded   []string `json:"degraded,omitempty"`
	Err        string   `json:"error,omitempty"`
}

func toWireResult(r host.Result, traceID string) wireResult {
	return wireResult{
		ID:         r.ID,
		Score:      r.Score,
		InBand:     r.InBand,
		Cigar:      string(r.Cigar),
		Status:     r.Status.String(),
		Trusted:    r.Status.Trusted(),
		Provenance: r.Provenance,
		Backend:    r.Backend,
		TraceID:    traceID,
		Cached:     r.Cached,
	}
}

func toHostPair(p wirePair) (host.Pair, error) {
	a, err := seq.FromString(p.A, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence a: %w", p.ID, err)
	}
	b, err := seq.FromString(p.B, nil)
	if err != nil {
		return host.Pair{}, fmt.Errorf("pair %d, sequence b: %w", p.ID, err)
	}
	return host.Pair{ID: p.ID, A: a, B: b}, nil
}

// server owns the session template and the admission stack. A request
// passes, in order: the rate-limit tiers (global, then per-client key,
// then per-IP), the shed ladder's reject rung (bulk only), and the
// two-class priority gate whose slots bound concurrent sessions. Every
// refusal is a 429 with a Retry-After computed from the gate's drain
// rate (or the violated bucket's refill time); every downgrade the shed
// ladder applies on the way through is surfaced as a typed label on the
// results. The dynamic sections of the config (limits, queues, shed)
// are hot-reloadable through the /admin API.
type server struct {
	cfg  atomic.Pointer[config.Config]
	scfg host.SessionConfig // session template from the align/session sections

	gate     *host.Gate
	rl       *admission.Controller
	pressure *admission.Pressure

	draining atomic.Bool

	reloadMu sync.Mutex // serializes admin config reloads

	stop chan struct{} // pressure sampler lifecycle (start/Close)
	done chan struct{}
}

func newServer(cfg *config.Config, scfg host.SessionConfig) (*server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sv := &server{scfg: scfg}
	sv.cfg.Store(cfg)
	sv.gate = host.NewGate(gateConfig(cfg))
	rl, err := admission.NewController(cfg.AdmissionLimits())
	if err != nil {
		return nil, err
	}
	sv.rl = rl
	sv.pressure, err = admission.NewPressure(cfg.PressureConfig(), func(from, to admission.ShedLevel, reason string) {
		reg := obs.Default()
		reg.Gauge("alignd_shed_level").Set(float64(to))
		reg.Counter("alignd_shed_transitions_total").Add(1)
		obs.Flight().Recordf("shed", "", "shed level %s -> %s (%s)", from, to, reason)
		obs.Info("shed level change", "from", from.String(), "to", to.String(), "reason", reason)
	})
	if err != nil {
		return nil, err
	}
	return sv, nil
}

func gateConfig(cfg *config.Config) host.GateConfig {
	return host.GateConfig{
		Slots:            cfg.Queues.Slots,
		InteractiveQueue: cfg.Queues.Interactive,
		BulkQueue:        cfg.Queues.Bulk,
		MaxRetryAfter:    cfg.Queues.MaxRetryAfter,
	}
}

// start launches the background loops: the limiter's idle-entry sweep
// and the pressure sampler feeding gate load into the shed ladder.
// Close undoes it. Tests that never start the loops need no Close.
func (sv *server) start() {
	cfg := sv.cfg.Load()
	sv.rl.Start(cfg.Limits.CleanupInterval)
	sv.stop = make(chan struct{})
	sv.done = make(chan struct{})
	go func() {
		defer close(sv.done)
		t := time.NewTicker(cfg.Shed.SampleInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				st := sv.gate.Stats()
				reg := obs.Default()
				reg.Gauge("alignd_gate_load").Set(st.Load)
				reg.Gauge("alignd_gate_queued").Set(float64(st.QueuedInteractive + st.QueuedBulk))
				reg.Gauge("alignd_shed_level").Set(float64(sv.pressure.Sample(st.Load)))
			case <-sv.stop:
				return
			}
		}
	}()
}

func (sv *server) Close() {
	if sv.stop != nil {
		close(sv.stop)
		<-sv.done
		sv.stop = nil
	}
	sv.rl.Close()
}

func (sv *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/align", sv.handleAlign)
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	sv.registerAdmin(mux)
	registerDebug(mux)
	return mux
}

// handleHealthz flips to 503 "draining" the moment shutdown begins, so
// load balancers stop routing here during the drain window while
// in-flight requests finish.
func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if sv.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// retryAfterSecs renders a Retry-After duration as whole seconds, never
// below 1 (a "0" invites an immediate, pointless retry).
func retryAfterSecs(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// reject answers 429 with the computed Retry-After, counts the refusal
// under its reason, and flight-records it.
func (sv *server) reject(w http.ResponseWriter, tid, reason, body string, retryAfter time.Duration) {
	reg := obs.Default()
	reg.Counter("alignd_requests_rejected_total").Add(1)
	reg.Counter(`alignd_rejects_total{reason="` + reason + `"}`).Add(1)
	obs.Flight().Recordf("reject", tid, "align request rejected: %s", reason)
	w.Header().Set("Retry-After", retryAfterSecs(retryAfter))
	http.Error(w, body, http.StatusTooManyRequests)
}

// clientIP is the per-IP tier key: the host part of RemoteAddr.
func clientIP(r *http.Request) string {
	if ip, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return ip
	}
	return r.RemoteAddr
}

// requestPlan is the admitted request's serving parameters: its session
// config after the shed ladder's downgrades, with each downgrade named.
type requestPlan struct {
	scfg     host.SessionConfig
	degraded []string
}

// plan applies the class and shed level to the session template.
// Interactive requests are score-only by definition (no CIGAR, no
// verify) — that is their contract, not a degradation. Bulk requests
// get the template, minus whatever the current shed rung takes away:
// ShedScoreOnly forces the 16-bit narrow score-only kernel (scores stay
// exact; the result just has no CIGAR), ShedNoVerify skips host-side
// re-derivation. Each removal is recorded as a typed label.
func (sv *server) plan(cls host.Class, level admission.ShedLevel) requestPlan {
	p := requestPlan{scfg: sv.scfg}
	k := &p.scfg.Host.Kernel
	if cls == host.ClassInteractive {
		k.Traceback = false
		p.scfg.Host.Verify = false
		return p
	}
	for _, d := range level.Degradations(k.Traceback, p.scfg.Host.Verify) {
		p.degraded = append(p.degraded, string(d))
		switch d {
		case admission.DegradedScoreOnly:
			k.Traceback = false
			k.LaneWidth = 16
			p.scfg.Host.Verify = false
		case admission.DegradedNoVerify:
			p.scfg.Host.Verify = false
		}
	}
	// A shed-degraded plan may still read the cache (hits are full-fidelity
	// answers certified under better conditions) but must never write it:
	// results produced with verification or traceback stripped would
	// otherwise be replayed to future well-resourced requests.
	if len(p.degraded) > 0 {
		p.scfg.CacheNoStore = true
	}
	return p
}

func (sv *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Every request gets a trace ID — the caller's X-Trace-Id if given,
	// minted otherwise — echoed on the response, stamped on every result
	// line, and threaded through the session into spans, flight-recorder
	// entries and structured logs.
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" {
		tid = obs.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", tid)
	if sv.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	cls, err := host.ParseClass(r.Header.Get("X-Priority"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reg := obs.Default()
	cfg := sv.cfg.Load()

	// Tiered rate limiting: global, then per-client key, then per-IP.
	if d := sv.rl.Allow(r.Header.Get(cfg.Server.ClientHeader), clientIP(r)); !d.OK {
		reg.Counter(`alignd_ratelimit_rejected_total{tier="` + string(d.Tier) + `"}`).Add(1)
		sv.reject(w, tid, "ratelimit-"+string(d.Tier),
			fmt.Sprintf("rate limited (%s tier), retry later", d.Tier), d.RetryAfter)
		return
	}

	// The shed ladder's top rung refuses bulk work outright; interactive
	// requests are still served.
	level := sv.pressure.Level()
	if level >= admission.ShedRejectBulk && cls == host.ClassBulk {
		reg.Counter("alignd_shed_rejected_total").Add(1)
		sv.reject(w, tid, "shed-bulk", "shedding bulk load, retry later", sv.gate.RetryAfter())
		return
	}

	// The priority gate: slots bound concurrent sessions, each class
	// waits in its own bounded queue, interactive is granted first.
	if err := sv.gate.Acquire(r.Context(), cls); err != nil {
		if errors.Is(err, host.ErrGateQueueFull) {
			reg.Counter(`alignd_gate_rejected_total{class="` + cls.String() + `"}`).Add(1)
			sv.reject(w, tid, "gate-"+cls.String(), "server at capacity, retry later", sv.gate.RetryAfter())
			return
		}
		return // client gave up while queued; nothing to answer
	}
	defer sv.gate.Release()

	plan := sv.plan(cls, level)
	w.Header().Set("X-Shed-Level", level.String())
	if len(plan.degraded) > 0 {
		w.Header().Set("X-Degraded", strings.Join(plan.degraded, ","))
		for _, d := range plan.degraded {
			reg.Counter(`alignd_degraded_requests_total{mode="` + d + `"}`).Add(1)
		}
		obs.Flight().Recordf("degrade", tid, "request degraded under shed level %s: %s",
			level, strings.Join(plan.degraded, ","))
	}

	reg.Counter("alignd_requests_total").Add(1)
	reg.Counter(`alignd_class_requests_total{class="` + cls.String() + `"}`).Add(1)
	reg.Gauge("alignd_inflight_requests").Add(1)
	defer reg.Gauge("alignd_inflight_requests").Add(-1)
	obs.Flight().Record("admit", tid, "align request admitted ("+cls.String()+")")
	start := time.Now()

	// The response streams while the request body is still being read;
	// HTTP/1 needs full-duplex opted in (no-op where unsupported).
	http.NewResponseController(w).EnableFullDuplex()

	dec := newPairDecoder(r.Body)
	first, err := dec.next()
	if err == io.EOF { // empty request: empty result stream
		w.Header().Set("Content-Type", "application/x-ndjson")
		return
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("decoding pairs: %v", err), http.StatusBadRequest)
		return
	}
	fp, err := toHostPair(first)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s, err := host.NewSession(obs.WithTraceID(r.Context(), tid), plan.scfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.Submit(fp); err != nil {
		s.Close()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	// Admit the remaining pairs while results stream below. A full
	// session queue here is flow control, not a reject: the client is
	// already receiving results, so admission just waits for the stream
	// to drain a slot.
	submitErr := make(chan error, 1)
	go func() {
		defer s.Close()
		submitErr <- sv.submitRest(r, s, dec)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	for res := range s.Results() {
		wr := toWireResult(res, tid)
		wr.Degraded = plan.degraded
		if enc.Encode(wr) != nil {
			break // client went away; session cleanup follows via r.Context()
		}
		if fl != nil {
			fl.Flush()
		}
	}
	err = <-submitErr
	if err == nil {
		err = s.Err()
	}
	if err != nil {
		// Too late for a status code; the trailing line carries the error.
		enc.Encode(wireResult{TraceID: tid, Err: err.Error()})
	}
	sv.observeRequest(tid, start, s)
}

// stageBuckets spans the serving stages' range: sub-millisecond linger
// and queue waits up to multi-second escalation timelines.
var stageBuckets = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// observeRequest records the drained session's stage latency decomposition
// into the alignd_stage_seconds{stage=...} histograms and, when the
// request's wall time reaches the slow threshold, logs the full breakdown
// and flight-records the event. Stages() blocks until the session has
// drained, which the streaming loop above guarantees terminates (client
// disconnects cancel r.Context(), which aborts the session).
func (sv *server) observeRequest(tid string, start time.Time, s *host.Session) {
	st := s.Stages()
	rep := s.Report()
	elapsed := time.Since(start).Seconds()
	reg := obs.Default()
	observe := func(stage string, v float64) {
		reg.Histogram(`alignd_stage_seconds{stage="`+stage+`"}`, stageBuckets).Observe(v)
	}
	observe("queue_wait", st.QueueWaitSec)
	observe("linger", st.LingerSec)
	observe("kernel", st.KernelSec)
	observe("wait_retry", st.WaitRetrySec)
	observe("escalation", st.EscalationSec)
	observe("verify", st.VerifySec)
	reg.Histogram("alignd_request_seconds", stageBuckets).Observe(elapsed)
	slow := sv.cfg.Load().Server.SlowRequest
	if slow >= 0 && elapsed >= slow.Seconds() {
		obs.Info("slow request", "trace_id", tid,
			"elapsed_sec", elapsed,
			"pairs", rep.Alignments,
			"queue_wait_sec", st.QueueWaitSec,
			"linger_sec", st.LingerSec,
			"kernel_sec", st.KernelSec,
			"wait_retry_sec", st.WaitRetrySec,
			"escalation_sec", st.EscalationSec,
			"verify_sec", st.VerifySec)
		obs.Flight().Recordf("slow", tid, "request took %.3fs (%d pairs)", elapsed, rep.Alignments)
	}
}

func (sv *server) submitRest(r *http.Request, s *host.Session, dec *pairDecoder) error {
	for {
		wp, err := dec.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("decoding pairs: %w", err)
		}
		p, err := toHostPair(wp)
		if err != nil {
			return err
		}
		for {
			err := s.Submit(p)
			if err == nil {
				break
			}
			if !errors.Is(err, host.ErrQueueFull) {
				return err
			}
			select {
			case <-r.Context().Done():
				return r.Context().Err()
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// pairDecoder reads request pairs from either a JSON array or an NDJSON
// stream, decided by the first non-space byte.
type pairDecoder struct {
	dec   *json.Decoder
	array bool
	err   error
}

func newPairDecoder(r io.Reader) *pairDecoder {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return &pairDecoder{err: io.EOF}
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			br.Discard(1)
			continue
		}
		d := &pairDecoder{dec: json.NewDecoder(br), array: b[0] == '['}
		if d.array {
			if _, err := d.dec.Token(); err != nil { // consume '['
				d.err = err
			}
		}
		return d
	}
}

func (d *pairDecoder) next() (wirePair, error) {
	if d.err != nil {
		return wirePair{}, d.err
	}
	if d.array && !d.dec.More() {
		return wirePair{}, io.EOF
	}
	var p wirePair
	if err := d.dec.Decode(&p); err != nil {
		d.err = err
		return wirePair{}, err
	}
	return p, nil
}
