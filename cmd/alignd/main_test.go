package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"pimnw/internal/admission/config"
	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// newTestServer builds a server on the default config with the given
// slot count, without starting the background loops (tests drive the
// pressure controller and limiter directly).
func newTestServer(t *testing.T, scfg host.SessionConfig, slots int) *server {
	t.Helper()
	cfg := config.Default()
	cfg.Queues.Slots = slots
	sv, err := newServer(cfg, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func testSessionConfig(t *testing.T) host.SessionConfig {
	t.Helper()
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	return host.SessionConfig{
		Host: host.Config{
			PIM: pimCfg,
			Kernel: kernel.Config{
				Geometry:  kernel.DefaultGeometry(),
				Band:      64,
				Params:    core.DefaultParams(),
				Costs:     pim.Asm,
				Traceback: true,
				PIM:       pimCfg,
			},
			RetryBackoffSec: 1e-3,
		},
	}
}

func testWorkload(t *testing.T, n int) ([]host.Pair, []wirePair) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	hostPairs := make([]host.Pair, n)
	wires := make([]wirePair, n)
	for i := 0; i < n; i++ {
		a := seq.Random(rng, 120+rng.Intn(60))
		b := seq.UniformErrors(0.08).Apply(rng, a)
		hostPairs[i] = host.Pair{ID: i, A: a, B: b}
		wires[i] = wirePair{ID: i, A: a.String(), B: b.String()}
	}
	return hostPairs, wires
}

func postAlign(t *testing.T, ts *httptest.Server, body []byte, contentType string) []wireResult {
	t.Helper()
	resp, err := http.Post(ts.URL+"/align", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /align = %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var results []wireResult
	dec := json.NewDecoder(resp.Body)
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if r.Err != "" {
			t.Fatalf("server error mid-stream: %s", r.Err)
		}
		results = append(results, r)
	}
	return results
}

// TestServerBitIdenticalToAlignPairs is the serving acceptance check: the
// daemon's streamed results must match one-shot host.AlignPairs exactly —
// scores, CIGARs, statuses, provenance — including under fault injection
// with recovery, for both request encodings.
func TestServerBitIdenticalToAlignPairs(t *testing.T) {
	scfg := testSessionConfig(t)
	scfg.Host.Faults = pim.FaultConfig{Rate: 0.05, Seed: 1234}
	scfg.Host.MaxRetries = 8
	scfg.MaxBatchPairs = 64 // whole workload in one micro-batch: exact AlignPairs replay
	hostPairs, wires := testWorkload(t, 40)

	rep, want, err := host.AlignPairs(scfg.Host, hostPairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected == 0 {
		t.Fatal("fault injection inert; the test is not exercising recovery")
	}
	wantByID := make(map[int]wireResult, len(want))
	for _, r := range want {
		wantByID[r.ID] = toWireResult(r, "")
	}

	ts := httptest.NewServer(newTestServer(t, scfg, 2).mux())
	defer ts.Close()

	arrayBody, _ := json.Marshal(wires)
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for _, p := range wires {
		enc.Encode(p)
	}
	for _, tc := range []struct {
		name, ct string
		body     []byte
	}{
		{"json array", "application/json", arrayBody},
		{"ndjson", "application/x-ndjson", ndjson.Bytes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := postAlign(t, ts, tc.body, tc.ct)
			if len(results) != len(wires) {
				t.Fatalf("%d results for %d pairs", len(results), len(wires))
			}
			for i, r := range results {
				if r.ID != i {
					t.Fatalf("result %d carries ID %d; stream must follow submission order", i, r.ID)
				}
				if r.TraceID == "" {
					t.Fatalf("pair %d: streamed result missing a trace ID", r.ID)
				}
				r.TraceID = "" // minted per request; everything else must match exactly
				if !reflect.DeepEqual(r, wantByID[r.ID]) {
					t.Fatalf("pair %d diverges from one-shot AlignPairs:\n got %+v\nwant %+v", r.ID, r, wantByID[r.ID])
				}
			}
		})
	}
}

// TestServerBackpressure429: with the admission gate pre-filled and the
// waiting queues sized to zero, the next align request must bounce with
// 429 + a computed Retry-After within [1, max_retry_after] seconds, and
// succeed again once capacity frees up.
func TestServerBackpressure429(t *testing.T) {
	obs.SetDefault(obs.NewRegistry()) // the daemon's run() does this; mirror it for /metrics
	cfg := config.Default()
	cfg.Queues.Slots = 2
	cfg.Queues.Interactive = 0
	cfg.Queues.Bulk = 0
	sv, err := newServer(cfg, testSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()
	_, wires := testWorkload(t, 2)
	body, _ := json.Marshal(wires)

	// Both slots deterministically busy.
	ctx := context.Background()
	sv.gate.Acquire(ctx, host.ClassBulk)
	sv.gate.Acquire(ctx, host.ClassBulk)
	resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST at capacity = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After %q is not integer seconds: %v", resp.Header.Get("Retry-After"), err)
	}
	if maxRA := int(cfg.Queues.MaxRetryAfter / time.Second); ra < 1 || ra > maxRA {
		t.Fatalf("computed Retry-After %ds outside [1, %d]", ra, maxRA)
	}

	sv.gate.Release()
	sv.gate.Release()
	if got := postAlign(t, ts, body, "application/json"); len(got) != len(wires) {
		t.Fatalf("%d results after capacity freed, want %d", len(got), len(wires))
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "alignd_requests_rejected_total 1") {
		t.Errorf("metrics missing the admission reject:\n%s", metrics)
	}
}

func TestServerEndpoints(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, testSessionConfig(t), 1).mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	// /metrics must carry the Prometheus exposition content type.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}

	// The /debug surface answers even with no registry or recorder wired.
	for _, path := range []string{"/debug/flight", "/debug/vars", "/debug/pprof/"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/trace?sec=99")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /debug/trace?sec=99 = %d, want 400", resp.StatusCode)
	}

	// GET on /align is not allowed.
	resp, err = http.Get(ts.URL + "/align")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /align = %d, want 405", resp.StatusCode)
	}

	// An empty body is an empty result stream, not an error.
	resp, err = http.Post(ts.URL+"/align", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("empty POST = %d %q, want 200 with no results", resp.StatusCode, body)
	}

	// A malformed first pair is a 400, not a hung stream.
	resp, err = http.Post(ts.URL+"/align", "application/json", strings.NewReader(`{"id":0,"a":"XYZ","b":"ACGT"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid sequence POST = %d, want 400", resp.StatusCode)
	}
}

// TestServerTraceIDPropagation is the observability acceptance check: a
// request posted with X-Trace-Id must come back with every NDJSON result
// line stamped with that ID, the ID echoed on the response header, a
// flight-recorder entry carrying it, and — with the slow threshold at
// zero — a structured slow-request log line with the full stage
// breakdown.
func TestServerTraceIDPropagation(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	fr := obs.NewFlightRecorder(64)
	obs.SetFlight(fr)
	defer obs.SetFlight(nil)
	var logBuf bytes.Buffer
	obs.SetLogOutput(&logBuf)
	obs.SetLogJSON(true)
	defer obs.SetLogOutput(os.Stderr)
	defer obs.SetLogJSON(false)

	cfg := config.Default()
	cfg.Queues.Slots = 1
	cfg.Server.SlowRequest = 0 // threshold 0: every request logs its breakdown
	sv, err := newServer(cfg, testSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	_, wires := testWorkload(t, 4)
	body, _ := json.Marshal(wires)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/align", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "t-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /align = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "t-123" {
		t.Fatalf("response X-Trace-Id = %q, want the request's t-123", got)
	}
	dec := json.NewDecoder(resp.Body)
	n := 0
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if r.Err != "" {
			t.Fatalf("server error mid-stream: %s", r.Err)
		}
		if r.TraceID != "t-123" {
			t.Fatalf("result %d carries trace ID %q, want t-123", r.ID, r.TraceID)
		}
		n++
	}
	if n != len(wires) {
		t.Fatalf("%d results for %d pairs", n, len(wires))
	}

	kinds := map[string]bool{}
	for _, ev := range fr.Snapshot() {
		if ev.TraceID == "t-123" {
			kinds[ev.Kind] = true
		}
	}
	for _, want := range []string{"admit", "slow"} {
		if !kinds[want] {
			t.Errorf("flight recorder missing a %q event for t-123 (have %v)", want, kinds)
		}
	}

	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var m map[string]any
		if json.Unmarshal([]byte(line), &m) == nil &&
			m["msg"] == "slow request" && m["trace_id"] == "t-123" {
			slow = m
		}
	}
	if slow == nil {
		t.Fatalf("no structured slow-request line for t-123 in:\n%s", logBuf.String())
	}
	for _, key := range []string{"elapsed_sec", "pairs", "queue_wait_sec", "linger_sec",
		"kernel_sec", "wait_retry_sec", "escalation_sec", "verify_sec"} {
		if _, ok := slow[key]; !ok {
			t.Errorf("slow-request line missing %q: %v", key, slow)
		}
	}

	// The ops surface sees the same request: the flight dump carries the
	// trace ID and /debug/vars reflects the served request.
	dresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != 200 || !strings.Contains(string(dump), "t-123") {
		t.Fatalf("/debug/flight = %d, missing t-123:\n%s", dresp.StatusCode, dump)
	}
	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Metrics obs.Snapshot   `json:"metrics"`
		Runtime map[string]any `json:"runtime"`
	}
	err = json.NewDecoder(vresp.Body).Decode(&vars)
	vresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if vars.Metrics.Counters["alignd_requests_total"] < 1 {
		t.Errorf("/debug/vars counters = %v, want alignd_requests_total >= 1", vars.Metrics.Counters)
	}
	if _, ok := vars.Metrics.Histograms[`alignd_stage_seconds{stage="kernel"}`]; !ok {
		t.Errorf("/debug/vars missing the kernel stage histogram (have %d histograms)", len(vars.Metrics.Histograms))
	}
	if vars.Runtime["goroutines"] == nil {
		t.Error("/debug/vars missing runtime stats")
	}
}

// TestServerStreamsManyMicroBatches drives enough pairs through a small
// micro-batch size to require several flushes, checking order and count.
func TestServerStreamsManyMicroBatches(t *testing.T) {
	scfg := testSessionConfig(t)
	scfg.MaxBatchPairs = 4
	scfg.MaxConcurrentBatches = 3
	ts := httptest.NewServer(newTestServer(t, scfg, 1).mux())
	defer ts.Close()
	_, wires := testWorkload(t, 30)
	body, _ := json.Marshal(wires)
	results := postAlign(t, ts, body, "application/json")
	if len(results) != len(wires) {
		t.Fatalf("%d results for %d pairs", len(results), len(wires))
	}
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("result %d carries ID %d; stream must follow submission order", i, r.ID)
		}
		if r.Status != "ok" || !r.Trusted {
			t.Fatalf("pair %d: status %q trusted=%v on a perfect fabric", i, r.Status, r.Trusted)
		}
	}
}
