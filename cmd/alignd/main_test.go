package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func testSessionConfig(t *testing.T) host.SessionConfig {
	t.Helper()
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	return host.SessionConfig{
		Host: host.Config{
			PIM: pimCfg,
			Kernel: kernel.Config{
				Geometry:  kernel.DefaultGeometry(),
				Band:      64,
				Params:    core.DefaultParams(),
				Costs:     pim.Asm,
				Traceback: true,
				PIM:       pimCfg,
			},
			RetryBackoffSec: 1e-3,
		},
	}
}

func testWorkload(t *testing.T, n int) ([]host.Pair, []wirePair) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	hostPairs := make([]host.Pair, n)
	wires := make([]wirePair, n)
	for i := 0; i < n; i++ {
		a := seq.Random(rng, 120+rng.Intn(60))
		b := seq.UniformErrors(0.08).Apply(rng, a)
		hostPairs[i] = host.Pair{ID: i, A: a, B: b}
		wires[i] = wirePair{ID: i, A: a.String(), B: b.String()}
	}
	return hostPairs, wires
}

func postAlign(t *testing.T, ts *httptest.Server, body []byte, contentType string) []wireResult {
	t.Helper()
	resp, err := http.Post(ts.URL+"/align", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /align = %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var results []wireResult
	dec := json.NewDecoder(resp.Body)
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if r.Err != "" {
			t.Fatalf("server error mid-stream: %s", r.Err)
		}
		results = append(results, r)
	}
	return results
}

// TestServerBitIdenticalToAlignPairs is the serving acceptance check: the
// daemon's streamed results must match one-shot host.AlignPairs exactly —
// scores, CIGARs, statuses, provenance — including under fault injection
// with recovery, for both request encodings.
func TestServerBitIdenticalToAlignPairs(t *testing.T) {
	scfg := testSessionConfig(t)
	scfg.Host.Faults = pim.FaultConfig{Rate: 0.05, Seed: 1234}
	scfg.Host.MaxRetries = 8
	scfg.MaxBatchPairs = 64 // whole workload in one micro-batch: exact AlignPairs replay
	hostPairs, wires := testWorkload(t, 40)

	rep, want, err := host.AlignPairs(scfg.Host, hostPairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected == 0 {
		t.Fatal("fault injection inert; the test is not exercising recovery")
	}
	wantByID := make(map[int]wireResult, len(want))
	for _, r := range want {
		wantByID[r.ID] = toWireResult(r)
	}

	ts := httptest.NewServer(newServer(scfg, 2).mux())
	defer ts.Close()

	arrayBody, _ := json.Marshal(wires)
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for _, p := range wires {
		enc.Encode(p)
	}
	for _, tc := range []struct {
		name, ct string
		body     []byte
	}{
		{"json array", "application/json", arrayBody},
		{"ndjson", "application/x-ndjson", ndjson.Bytes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := postAlign(t, ts, tc.body, tc.ct)
			if len(results) != len(wires) {
				t.Fatalf("%d results for %d pairs", len(results), len(wires))
			}
			for i, r := range results {
				if r.ID != i {
					t.Fatalf("result %d carries ID %d; stream must follow submission order", i, r.ID)
				}
				if r != wantByID[r.ID] {
					t.Fatalf("pair %d diverges from one-shot AlignPairs:\n got %+v\nwant %+v", r.ID, r, wantByID[r.ID])
				}
			}
		})
	}
}

// TestServerBackpressure429: with the admission gate pre-filled the next
// align request must bounce with 429 + Retry-After, and succeed again
// once capacity frees up.
func TestServerBackpressure429(t *testing.T) {
	obs.SetDefault(obs.NewRegistry()) // the daemon's run() does this; mirror it for /metrics
	sv := newServer(testSessionConfig(t), 2)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()
	_, wires := testWorkload(t, 2)
	body, _ := json.Marshal(wires)

	sv.active.Add(2) // both slots deterministically busy
	resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST at capacity = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	sv.active.Add(-2)
	if got := postAlign(t, ts, body, "application/json"); len(got) != len(wires) {
		t.Fatalf("%d results after capacity freed, want %d", len(got), len(wires))
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "alignd_requests_rejected_total 1") {
		t.Errorf("metrics missing the admission reject:\n%s", metrics)
	}
}

func TestServerEndpoints(t *testing.T) {
	ts := httptest.NewServer(newServer(testSessionConfig(t), 1).mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	// GET on /align is not allowed.
	resp, err = http.Get(ts.URL + "/align")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /align = %d, want 405", resp.StatusCode)
	}

	// An empty body is an empty result stream, not an error.
	resp, err = http.Post(ts.URL+"/align", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("empty POST = %d %q, want 200 with no results", resp.StatusCode, body)
	}

	// A malformed first pair is a 400, not a hung stream.
	resp, err = http.Post(ts.URL+"/align", "application/json", strings.NewReader(`{"id":0,"a":"XYZ","b":"ACGT"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid sequence POST = %d, want 400", resp.StatusCode)
	}
}

// TestServerStreamsManyMicroBatches drives enough pairs through a small
// micro-batch size to require several flushes, checking order and count.
func TestServerStreamsManyMicroBatches(t *testing.T) {
	scfg := testSessionConfig(t)
	scfg.MaxBatchPairs = 4
	scfg.MaxConcurrentBatches = 3
	ts := httptest.NewServer(newServer(scfg, 1).mux())
	defer ts.Close()
	_, wires := testWorkload(t, 30)
	body, _ := json.Marshal(wires)
	results := postAlign(t, ts, body, "application/json")
	if len(results) != len(wires) {
		t.Fatalf("%d results for %d pairs", len(results), len(wires))
	}
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("result %d carries ID %d; stream must follow submission order", i, r.ID)
		}
		if r.Status != "ok" || !r.Trusted {
			t.Fatalf("pair %d: status %q trusted=%v on a perfect fabric", i, r.Status, r.Trusted)
		}
	}
}
