package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pimnw/internal/admission"
	"pimnw/internal/admission/config"
	"pimnw/internal/host"
	"pimnw/internal/obs"
)

// The /admin surface: live configuration and manual control over the
// admission stack.
//
//	GET  /admin/config  the live config in its canonical file form —
//	                    exactly what POST accepts back.
//	POST /admin/config  hot-reload the dynamic sections (limits, queues,
//	                    shed). Changes to the static sections (server,
//	                    align, session, fleet) are rejected with 400:
//	                    those require a restart, and silently ignoring an
//	                    attempted change would be worse than refusing it.
//	GET  /admin/limits  rate-limiter, gate and shed statistics as JSON.
//	GET  /admin/shed    current shed level, the automatic level tracking
//	                    underneath, and any manual override.
//	POST /admin/shed    pin the shed level ({"level":"reject-bulk"}) or
//	                    return it to automatic control ({"level":"auto"}).
//
// When server.admin_token is configured, every /admin request must
// carry it (X-Admin-Token or Authorization: Bearer).
func (sv *server) registerAdmin(mux *http.ServeMux) {
	mux.HandleFunc("/admin/config", sv.adminAuth(sv.handleAdminConfig))
	mux.HandleFunc("/admin/limits", sv.adminAuth(sv.handleAdminLimits))
	mux.HandleFunc("/admin/shed", sv.adminAuth(sv.handleAdminShed))
}

func (sv *server) adminAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := sv.cfg.Load().Server.AdminToken
		if token != "" {
			got := r.Header.Get("X-Admin-Token")
			if got == "" {
				got = strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			}
			if got != token {
				http.Error(w, "admin token required", http.StatusUnauthorized)
				return
			}
		}
		h(w, r)
	}
}

func (sv *server) handleAdminConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		sv.cfg.Load().WriteTo(w)
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := sv.reloadConfig(body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		io.WriteString(w, "ok\n")
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// reloadConfig parses and validates a full config file and applies its
// dynamic sections atomically-enough: reloads are serialized, and each
// component (limiter rates, gate sizing, shed thresholds) swaps its
// parameters race-free. The static sections must match the running
// config exactly.
func (sv *server) reloadConfig(body []byte) error {
	next, err := config.Parse(body)
	if err != nil {
		return err
	}
	if err := next.Validate(); err != nil {
		return err
	}
	sv.reloadMu.Lock()
	defer sv.reloadMu.Unlock()
	cur := sv.cfg.Load()
	if next.Server != cur.Server {
		return fmt.Errorf("config reload: the server section is static; restart to change it")
	}
	if next.Align != cur.Align {
		return fmt.Errorf("config reload: the align section is static; restart to change it")
	}
	if next.Session != cur.Session {
		return fmt.Errorf("config reload: the session section is static; restart to change it")
	}
	// The fleet is static too: backends hold placement state shared
	// across every live session.
	if next.Fleet != cur.Fleet {
		return fmt.Errorf("config reload: the fleet section is static; restart to change it")
	}
	// Entry caps and background intervals are fixed at startup too; the
	// rates, queue sizing and shed thresholds are the live knobs.
	if next.Limits.MaxClientEntries != cur.Limits.MaxClientEntries ||
		next.Limits.MaxIPEntries != cur.Limits.MaxIPEntries ||
		next.Limits.CleanupInterval != cur.Limits.CleanupInterval {
		return fmt.Errorf("config reload: limiter entry caps and cleanup_interval are static; restart to change them")
	}
	if next.Shed.SampleInterval != cur.Shed.SampleInterval {
		return fmt.Errorf("config reload: shed.sample_interval is static; restart to change it")
	}
	// Cache placement and durability are static (the WAL handle and the
	// background loops bind at Open); the size limits are live.
	if next.Cache.Dir != cur.Cache.Dir ||
		next.Cache.Fsync != cur.Cache.Fsync ||
		next.Cache.FsyncInterval != cur.Cache.FsyncInterval ||
		next.Cache.CompactInterval != cur.Cache.CompactInterval {
		return fmt.Errorf("config reload: the cache placement and durability fields are static; restart to change them")
	}
	if err := sv.rl.SetLimits(next.AdmissionLimits()); err != nil {
		return err
	}
	if err := sv.pressure.SetConfig(next.PressureConfig()); err != nil {
		return err
	}
	sv.gate.SetConfig(gateConfig(next))
	if c := sv.scfg.Cache; c != nil {
		c.SetLimits(next.Cache.MaxEntries, next.Cache.HotEntries)
	}
	sv.cfg.Store(next)
	obs.Default().Counter("alignd_config_reloads_total").Add(1)
	obs.Flight().Record("reload", "", "admin config reload applied")
	obs.Info("config reloaded",
		"slots", next.Queues.Slots,
		"global_qps", next.Limits.GlobalQPS,
		"client_qps", next.Limits.ClientQPS,
		"ip_qps", next.Limits.IPQPS)
	return nil
}

// shedStatus is the /admin/shed wire form.
type shedStatus struct {
	// Level is the effective level; Auto is what the pressure tracker
	// would apply absent an override.
	Level    string `json:"level"`
	Auto     string `json:"auto"`
	Override string `json:"override,omitempty"`
	// Transitions counts effective-level changes since startup.
	Transitions uint64 `json:"transitions"`
}

func (sv *server) shedStatus() shedStatus {
	st := shedStatus{
		Level:       sv.pressure.Level().String(),
		Auto:        sv.pressure.AutoLevel().String(),
		Transitions: sv.pressure.Transitions(),
	}
	if o, ok := sv.pressure.Override(); ok {
		st.Override = o.String()
	}
	return st
}

func (sv *server) handleAdminShed(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var req struct {
			Level string `json:"level"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("decoding shed request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Level == "auto" {
			sv.pressure.ClearOverride()
		} else {
			l, err := admission.ParseShedLevel(req.Level)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := sv.pressure.SetOverride(l); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sv.shedStatus())
}

func (sv *server) handleAdminLimits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		Limits admission.Stats `json:"limits"`
		Gate   host.GateStats  `json:"gate"`
		Shed   shedStatus      `json:"shed"`
	}{sv.rl.Stats(), sv.gate.Stats(), sv.shedStatus()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
