package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pimnw/internal/admission/config"
	"pimnw/internal/cache"
	"pimnw/internal/obs"
)

// TestServerCachedReplay: the same body served twice by a cache-enabled
// server must answer identically, with every replayed line carrying the
// cached marker and the original status/provenance.
func TestServerCachedReplay(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	c, err := cache.Open(cache.Options{Dir: t.TempDir(), Fsync: cache.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	scfg := testSessionConfig(t)
	scfg.Cache = c
	ts := httptest.NewServer(newTestServer(t, scfg, 2).mux())
	defer ts.Close()

	_, wires := testWorkload(t, 12)
	var body bytes.Buffer
	body.WriteByte('[')
	for i, w := range wires {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteString(`{"id":` + strconv.Itoa(w.ID) + `,"a":"` + w.A + `","b":"` + w.B + `"}`)
	}
	body.WriteByte(']')

	first := postAlign(t, ts, body.Bytes(), "application/json")
	second := postAlign(t, ts, body.Bytes(), "application/json")
	if len(first) != len(wires) || len(second) != len(wires) {
		t.Fatalf("%d then %d results for %d pairs", len(first), len(second), len(wires))
	}
	for i := range first {
		f, s := first[i], second[i]
		if f.Cached {
			t.Errorf("pair %d marked cached on first serving", f.ID)
		}
		if !s.Cached {
			t.Errorf("pair %d not marked cached on replay (status %s)", s.ID, s.Status)
		}
		if f.Score != s.Score || f.Cigar != s.Cigar || f.Status != s.Status ||
			f.Provenance != s.Provenance || f.Trusted != s.Trusted {
			t.Errorf("pair %d replay diverged:\n first %+v\nsecond %+v", f.ID, f, s)
		}
	}
}

// TestAdminCacheReload: the cache placement/durability fields are static
// (refused with 400 naming the section); the size limits hot-reload.
func TestAdminCacheReload(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	c, err := cache.Open(cache.Options{Dir: t.TempDir(), Fsync: cache.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	scfg := testSessionConfig(t)
	scfg.Cache = c
	sv := newTestServer(t, scfg, 4)
	ts := httptest.NewServer(sv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/admin/config")
	if err != nil {
		t.Fatal(err)
	}
	live, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	parsed, err := config.Parse(live)
	if err != nil {
		t.Fatalf("live config does not re-parse: %v\n%s", err, live)
	}

	// Static change: a new fsync policy is refused and names the section.
	bad := *parsed
	bad.Cache.Fsync = "never"
	var buf bytes.Buffer
	bad.WriteTo(&buf)
	resp = post(t, ts.URL+"/admin/config", buf.Bytes(), nil)
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cache static reload = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "cache") {
		t.Errorf("400 body %q does not name the cache section", msg)
	}

	// Dynamic change: size limits apply.
	next := *parsed
	next.Cache.MaxEntries = 123456
	next.Cache.HotEntries = 77
	buf.Reset()
	next.WriteTo(&buf)
	resp = post(t, ts.URL+"/admin/config", buf.Bytes(), nil)
	msg, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache limits reload = %d: %s", resp.StatusCode, msg)
	}
	if got := sv.cfg.Load().Cache.MaxEntries; got != 123456 {
		t.Fatalf("live max_entries after reload = %d, want 123456", got)
	}
}
