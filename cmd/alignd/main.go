// Command alignd serves the simulated PiM aligner over HTTP, backed by
// the host package's streaming dispatch sessions: each POST /align
// request admits its pairs incrementally into a session, which
// accumulates rank-sized micro-batches (flushing on size or on the
// linger deadline) and streams results back in submission order as
// NDJSON while later pairs are still being admitted.
//
// Every request carries a trace ID — the caller's X-Trace-Id header if
// given, minted otherwise — echoed on the response, stamped on each
// NDJSON result line, and threaded through logs, flight-recorder entries
// and Perfetto slices for end-to-end correlation.
//
// Endpoints:
//
//	POST /align         body: JSON array of pairs, or NDJSON (one pair
//	                    object per line): {"id":0,"a":"ACGT...","b":"..."}.
//	                    Response: NDJSON, one result per pair in submission
//	                    order. 429 + Retry-After when at capacity.
//	GET  /metrics       Prometheus-text serving metrics (queue depth,
//	                    micro-batch occupancy, admission rejects, latency,
//	                    per-stage alignd_stage_seconds histograms).
//	GET  /healthz       liveness probe.
//	GET  /debug/vars    metrics snapshot + Go runtime stats as JSON.
//	GET  /debug/flight  flight-recorder dump: the last -flight-events
//	                    notable events (admissions, rejections, faults,
//	                    escalations, abandonments, slow requests) as JSON.
//	GET  /debug/trace   live Perfetto capture of the next ?sec=N seconds
//	                    of host wall-clock spans (default 1, max 60).
//	GET  /debug/pprof/  standard Go profiling endpoints.
//
// SIGTERM/SIGINT drains in-flight requests, logs the latency summary
// and exits 0.
//
// Usage:
//
//	alignd [-addr 127.0.0.1:7433] [-addr-file FILE] [-max-requests N]
//	       [-band 128] [-ranks 40] [-score-only]
//	       [-batch-pairs N] [-linger DUR] [-queue-limit N] [-max-concurrent N]
//	       [-escalation] [-max-band W] [-verify]
//	       [-fault-rate P] [-fault-seed N] [-max-retries N] [-batch-deadline SEC]
//	       [-log-json] [-slow-request DUR] [-flight-events N] [-v]
//
// Client mode: alignd -post URL -a queries.fa -b targets.fa sends the
// FASTA pairs to a running daemon and prints results in pimalign's
// output format (for diffing the serving path against the one-shot CLI).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

func main() {
	obs.SetLogPrefix("alignd")
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7433", "listen address (host:port; port 0 picks a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to FILE once listening (for scripts using port 0)")
		maxRequests = flag.Int("max-requests", 4, "align requests served concurrently; beyond this POST /align returns 429")

		band      = flag.Int("band", 128, "band size (cells per anti-diagonal / row)")
		ranks     = flag.Int("ranks", 40, "PiM ranks")
		scoreOnly = flag.Bool("score-only", false, "skip traceback/CIGAR")
		lanesFlag = flag.String("lanes", "auto", "DP lane width: auto, 16 (saturating narrow lanes, score-only) or 64")

		batchPairs    = flag.Int("batch-pairs", 0, "micro-batch size in pairs (0 = 4 per DPU of a rank)")
		linger        = flag.Duration("linger", 0, "max time a pair may wait for its micro-batch to fill (0 = 2ms)")
		queueLimit    = flag.Int("queue-limit", 0, "per-request cap on admitted-but-undelivered pairs (0 = 8 micro-batches)")
		maxConcurrent = flag.Int("max-concurrent", 0, "micro-batches in flight per request (0 = 2)")

		escalation = flag.Bool("escalation", false, "re-dispatch clipped/out-of-band pairs at wider bands, degrading to score-only then the exact CPU baseline")
		maxBand    = flag.Int("max-band", 0, "widest band the escalation ladder may try (0 = default cap)")
		verify     = flag.Bool("verify", false, "re-derive traceback scores from CIGARs on the host; mismatches are treated as corruption")

		faultRate     = flag.Float64("fault-rate", 0, "per-DPU fault injection probability in [0,1] (0 = perfect fabric)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault injection seed")
		maxRetries    = flag.Int("max-retries", 3, "recovery attempts per batch beyond the first launch")
		batchDeadline = flag.Float64("batch-deadline", 0, "modelled per-attempt deadline in seconds (0 = none)")

		logJSON      = flag.Bool("log-json", false, "structured JSON log lines instead of text")
		slowRequest  = flag.Duration("slow-request", time.Second, "log a stage breakdown for align requests at/over this duration (0 = every request, negative = never)")
		flightEvents = flag.Int("flight-events", obs.DefaultFlightEvents, "flight-recorder ring capacity (notable events retained for /debug/flight)")

		post    = flag.String("post", "", "client mode: POST the -a/-b FASTA pairs to this daemon URL and print pimalign-style results")
		aPath   = flag.String("a", "", "FASTA file of query sequences (client mode)")
		bPath   = flag.String("b", "", "FASTA file of target sequences (client mode)")
		verbose = flag.Bool("v", false, "verbose (debug) logging")
	)
	flag.Parse()
	if *verbose {
		obs.SetVerbosity(1)
	}
	obs.SetLogJSON(*logJSON)
	if *post != "" {
		return runClient(*post, *aPath, *bPath)
	}

	laneWidth, err := kernel.ParseLaneWidth(*lanesFlag)
	if err != nil {
		return err
	}
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = *ranks
	scfg := host.SessionConfig{
		Host: host.Config{
			PIM: pimCfg,
			Kernel: kernel.Config{
				Geometry:  kernel.DefaultGeometry(),
				Band:      *band,
				Params:    core.DefaultParams(),
				Costs:     pim.Asm,
				Traceback: !*scoreOnly,
				LaneWidth: laneWidth,
				PIM:       pimCfg,
			},
			Faults:           pim.FaultConfig{Rate: *faultRate, Seed: *faultSeed},
			MaxRetries:       *maxRetries,
			BatchDeadlineSec: *batchDeadline,
			RetryBackoffSec:  1e-3,
			Escalate:         *escalation,
			MaxBand:          *maxBand,
			Verify:           *verify && !*scoreOnly,
		},
		MaxBatchPairs:        *batchPairs,
		MaxLinger:            *linger,
		QueueLimit:           *queueLimit,
		MaxConcurrentBatches: *maxConcurrent,
	}
	if err := scfg.Host.Validate(); err != nil {
		return err
	}
	obs.SetDefault(obs.NewRegistry())
	obs.SetFlight(obs.NewFlightRecorder(*flightEvents))

	sv := newServer(scfg, *maxRequests, *slowRequest)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	srv := &http.Server{Handler: sv.mux()}
	effBatch := scfg.MaxBatchPairs
	if effBatch == 0 {
		effBatch = 4 * pim.DPUsPerRank
	}
	obs.Logf("serving on http://%s (%d ranks, band %d, micro-batches of %d pairs)",
		bound, *ranks, *band, effBatch)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		obs.Logf("%s: draining in-flight requests", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logServingSummary()
	return nil
}

// logServingSummary reports the session-layer latency distribution at
// shutdown (p50/p99 via the histogram quantile estimator).
func logServingSummary() {
	snap := obs.Default().Snapshot()
	h, ok := snap.Histograms["session_pair_latency_seconds"]
	if !ok || h.Count == 0 {
		obs.Logf("served 0 pairs")
		return
	}
	obs.Logf("served %d pairs: latency p50 %.1fms, p99 %.1fms",
		h.Count, h.Quantile(0.5)*1e3, h.Quantile(0.99)*1e3)
}
