// Command alignd serves the simulated PiM aligner over HTTP, backed by
// the host package's streaming dispatch sessions: each POST /align
// request admits its pairs incrementally into a session, which
// accumulates rank-sized micro-batches (flushing on size or on the
// linger deadline) and streams results back in submission order as
// NDJSON while later pairs are still being admitted.
//
// Requests pass a layered admission stack before a session is built:
// token-bucket rate limiting (global, per-client key, per-IP), then the
// pressure-driven shed ladder, then a two-class priority gate.
// Interactive requests (X-Priority: interactive; score-only) are
// granted capacity before bulk (CIGAR) work; under sustained overload
// the daemon degrades bulk service in explicit rungs — narrow
// score-only kernel, then no host verify, then 429 for bulk — with
// every downgrade labelled on the results and every 429 carrying a
// Retry-After computed from the observed drain rate.
//
// Every request carries a trace ID — the caller's X-Trace-Id header if
// given, minted otherwise — echoed on the response, stamped on each
// NDJSON result line, and threaded through logs, flight-recorder entries
// and Perfetto slices for end-to-end correlation.
//
// Endpoints:
//
//	POST /align         body: JSON array of pairs, or NDJSON (one pair
//	                    object per line): {"id":0,"a":"ACGT...","b":"..."}.
//	                    Response: NDJSON, one result per pair in submission
//	                    order. 429 + Retry-After when refused by admission.
//	GET  /metrics       Prometheus-text serving metrics (queue depth,
//	                    micro-batch occupancy, admission rejects, shed
//	                    level, latency, per-stage histograms).
//	GET  /healthz       liveness probe; 503 "draining" during shutdown.
//	GET  /admin/config  live config in canonical file form.
//	POST /admin/config  hot-reload the dynamic sections (limits, queues,
//	                    shed).
//	GET  /admin/limits  limiter/gate/shed statistics as JSON.
//	GET  /admin/shed    shed ladder state; POST pins or releases it.
//	GET  /debug/vars    metrics snapshot + Go runtime stats as JSON.
//	GET  /debug/flight  flight-recorder dump: the last notable events
//	                    (admissions, rejections, shed transitions,
//	                    faults, escalations, slow requests) as JSON.
//	GET  /debug/trace   live Perfetto capture of the next ?sec=N seconds
//	                    of host wall-clock spans (default 1, max 60).
//	GET  /debug/pprof/  standard Go profiling endpoints.
//
// SIGTERM/SIGINT advertises draining on /healthz for -drain-wait, then
// drains in-flight requests, logs the latency summary and exits 0.
//
// Usage:
//
//	alignd [-config align.yaml] [-check-config] [flags...]
//
// Configuration comes from -config (see internal/admission/config for
// the format); every flag overrides its config field when set
// explicitly. -check-config validates and prints the effective config
// in canonical form, then exits without serving.
//
// Client mode: alignd -post URL -a queries.fa -b targets.fa sends the
// FASTA pairs to a running daemon and prints results in pimalign's
// output format (for diffing the serving path against the one-shot CLI).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pimnw/internal/admission/config"
	"pimnw/internal/cache"
	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

func main() {
	obs.SetLogPrefix("alignd")
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath  = flag.String("config", "", "configuration file (strict YAML subset; flags override its fields)")
		checkConfig = flag.Bool("check-config", false, "validate the effective config, print its canonical form, and exit")

		addr        = flag.String("addr", "127.0.0.1:7433", "listen address (host:port; port 0 picks a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to FILE once listening (for scripts using port 0)")
		maxRequests = flag.Int("max-requests", 4, "align requests served concurrently (queues.slots); beyond this requests queue, then 429")
		drainWait   = flag.Duration("drain-wait", 500*time.Millisecond, "how long /healthz advertises draining (503) after SIGTERM before the listener closes")

		band      = flag.Int("band", 128, "band size (cells per anti-diagonal / row)")
		ranks     = flag.Int("ranks", 40, "PiM ranks")
		scoreOnly = flag.Bool("score-only", false, "skip traceback/CIGAR")
		lanesFlag = flag.String("lanes", "auto", "DP lane width: auto, 16 (saturating narrow lanes, score-only) or 64")

		batchPairs    = flag.Int("batch-pairs", 0, "micro-batch size in pairs (0 = 4 per DPU of a rank)")
		linger        = flag.Duration("linger", 0, "max time a pair may wait for its micro-batch to fill (0 = 2ms)")
		queueLimit    = flag.Int("queue-limit", 0, "per-request cap on admitted-but-undelivered pairs (0 = 8 micro-batches)")
		maxConcurrent = flag.Int("max-concurrent", 0, "micro-batches in flight per request (0 = 2)")

		cacheDir = flag.String("cache-dir", "", "directory for the persistent result cache (empty = caching disabled)")

		fleet = flag.String("fleet", "", "serve from a multi-backend fleet: comma-separated pim[:RANKS[@FREQMHZ]][~FAULTRATE] / cpu[:THREADS] entries (empty = single fabric)")

		escalation = flag.Bool("escalation", false, "re-dispatch clipped/out-of-band pairs at wider bands, degrading to score-only then the exact CPU baseline")
		maxBand    = flag.Int("max-band", 0, "widest band the escalation ladder may try (0 = default cap)")
		verify     = flag.Bool("verify", false, "re-derive traceback scores from CIGARs on the host; mismatches are treated as corruption")

		faultRate     = flag.Float64("fault-rate", 0, "per-DPU fault injection probability in [0,1] (0 = perfect fabric)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault injection seed")
		maxRetries    = flag.Int("max-retries", 3, "recovery attempts per batch beyond the first launch")
		batchDeadline = flag.Float64("batch-deadline", 0, "modelled per-attempt deadline in seconds (0 = none)")

		logJSON      = flag.Bool("log-json", false, "structured JSON log lines instead of text")
		slowRequest  = flag.Duration("slow-request", time.Second, "log a stage breakdown for align requests at/over this duration (0 = every request, negative = never)")
		flightEvents = flag.Int("flight-events", obs.DefaultFlightEvents, "flight-recorder ring capacity (notable events retained for /debug/flight)")

		post    = flag.String("post", "", "client mode: POST the -a/-b FASTA pairs to this daemon URL and print pimalign-style results")
		aPath   = flag.String("a", "", "FASTA file of query sequences (client mode)")
		bPath   = flag.String("b", "", "FASTA file of target sequences (client mode)")
		verbose = flag.Bool("v", false, "verbose (debug) logging")
	)
	flag.Parse()
	if *verbose {
		obs.SetVerbosity(1)
	}
	if *post != "" {
		return runClient(*post, *aPath, *bPath)
	}

	cfg := config.Default()
	if *configPath != "" {
		var err error
		if cfg, err = config.Load(*configPath); err != nil {
			return err
		}
	}
	// Explicitly set flags override their config fields — the flag
	// surface predates the config file and stays authoritative when used.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			cfg.Server.Addr = *addr
		case "drain-wait":
			cfg.Server.DrainWait = *drainWait
		case "slow-request":
			cfg.Server.SlowRequest = *slowRequest
		case "flight-events":
			cfg.Server.FlightEvents = *flightEvents
		case "log-json":
			cfg.Server.LogJSON = *logJSON
		case "max-requests":
			cfg.Queues.Slots = *maxRequests
		case "band":
			cfg.Align.Band = *band
		case "ranks":
			cfg.Align.Ranks = *ranks
		case "score-only":
			cfg.Align.ScoreOnly = *scoreOnly
		case "lanes":
			cfg.Align.Lanes = *lanesFlag
		case "escalation":
			cfg.Align.Escalation = *escalation
		case "max-band":
			cfg.Align.MaxBand = *maxBand
		case "verify":
			cfg.Align.Verify = *verify
		case "fault-rate":
			cfg.Align.FaultRate = *faultRate
		case "fault-seed":
			cfg.Align.FaultSeed = *faultSeed
		case "max-retries":
			cfg.Align.MaxRetries = *maxRetries
		case "batch-deadline":
			cfg.Align.BatchDeadline = *batchDeadline
		case "cache-dir":
			cfg.Cache.Dir = *cacheDir
		case "fleet":
			cfg.Fleet.Backends = *fleet
		case "batch-pairs":
			cfg.Session.BatchPairs = *batchPairs
		case "linger":
			cfg.Session.Linger = *linger
		case "queue-limit":
			cfg.Session.QueueLimit = *queueLimit
		case "max-concurrent":
			cfg.Session.MaxConcurrent = *maxConcurrent
		}
	})
	if err := cfg.Validate(); err != nil {
		return err
	}
	scfg, err := sessionConfig(cfg)
	if err != nil {
		return err
	}
	if err := scfg.Host.Validate(); err != nil {
		return err
	}
	if *checkConfig {
		_, err := cfg.WriteTo(os.Stdout)
		return err
	}
	obs.SetLogJSON(cfg.Server.LogJSON)
	obs.SetDefault(obs.NewRegistry())
	obs.SetFlight(obs.NewFlightRecorder(cfg.Server.FlightEvents))

	// The cache opens after the metrics registry exists (its counters bind
	// at Open) and attaches to the session template, so every request's
	// plan inherits the shared handle.
	if cfg.Cache.Dir != "" {
		c, err := openCache(cfg)
		if err != nil {
			return err
		}
		defer c.Close()
		scfg.Cache = c
		st := c.Stats()
		obs.Logf("result cache at %s: %d entries, %d WAL bytes, %d repairs (fsync %s)",
			cfg.Cache.Dir, st.Entries, st.WALBytes, st.Repairs, cfg.Cache.Fsync)
	}

	sv, err := newServer(cfg, scfg)
	if err != nil {
		return err
	}
	sv.start()
	defer sv.Close()
	ln, err := net.Listen("tcp", cfg.Server.Addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	srv := &http.Server{Handler: sv.mux()}
	effBatch := scfg.MaxBatchPairs
	if effBatch == 0 {
		effBatch = 4 * pim.DPUsPerRank
	}
	// In fleet mode the align-section rank count is overridden by the
	// per-backend spec, so the banner counts the ranks that actually serve.
	servingRanks := cfg.Align.Ranks
	if bes := scfg.Host.Backends; len(bes) > 0 {
		servingRanks = 0
		for _, be := range bes {
			servingRanks += be.Ranks()
		}
	}
	obs.Logf("serving on http://%s (%d ranks, band %d, micro-batches of %d pairs, %d request slots)",
		bound, servingRanks, cfg.Align.Band, effBatch, cfg.Queues.Slots)
	if bes := scfg.Host.Backends; len(bes) > 0 {
		parts := make([]string, len(bes))
		for i, be := range bes {
			parts[i] = fmt.Sprintf("%s (%d ranks)", be.Name(), be.Ranks())
		}
		obs.Logf("fleet placement across %d backends: %s", len(bes), strings.Join(parts, ", "))
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		// Advertise draining first so load balancers stop routing here,
		// hold the listener open for the drain window, then shut down.
		sv.draining.Store(true)
		obs.Logf("%s: draining (healthz 503 for %s), then stopping", s, cfg.Server.DrainWait)
		time.Sleep(cfg.Server.DrainWait)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logServingSummary()
	return nil
}

// openCache builds the result cache from the config's cache section.
func openCache(cfg *config.Config) (*cache.Cache, error) {
	pol, err := cache.ParseFsyncPolicy(cfg.Cache.Fsync)
	if err != nil {
		return nil, err
	}
	return cache.Open(cache.Options{
		Dir:             cfg.Cache.Dir,
		Fsync:           pol,
		FsyncInterval:   cfg.Cache.FsyncInterval,
		MaxEntries:      cfg.Cache.MaxEntries,
		HotEntries:      cfg.Cache.HotEntries,
		CompactInterval: cfg.Cache.CompactInterval,
	})
}

// sessionConfig assembles the per-request session template from the
// align and session sections.
func sessionConfig(cfg *config.Config) (host.SessionConfig, error) {
	laneWidth, err := kernel.ParseLaneWidth(cfg.Align.Lanes)
	if err != nil {
		return host.SessionConfig{}, err
	}
	backends, err := host.ParseFleet(cfg.Fleet.Backends)
	if err != nil {
		return host.SessionConfig{}, err
	}
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = cfg.Align.Ranks
	return host.SessionConfig{
		Host: host.Config{
			PIM: pimCfg,
			Kernel: kernel.Config{
				Geometry:  kernel.DefaultGeometry(),
				Band:      cfg.Align.Band,
				Params:    core.DefaultParams(),
				Costs:     pim.Asm,
				Traceback: !cfg.Align.ScoreOnly,
				LaneWidth: laneWidth,
				PIM:       pimCfg,
			},
			Faults:           pim.FaultConfig{Rate: cfg.Align.FaultRate, Seed: cfg.Align.FaultSeed},
			MaxRetries:       cfg.Align.MaxRetries,
			BatchDeadlineSec: cfg.Align.BatchDeadline,
			RetryBackoffSec:  1e-3,
			Escalate:         cfg.Align.Escalation,
			MaxBand:          cfg.Align.MaxBand,
			Verify:           cfg.Align.Verify && !cfg.Align.ScoreOnly,
			Backends:         backends,
		},
		MaxBatchPairs:        cfg.Session.BatchPairs,
		MaxLinger:            cfg.Session.Linger,
		QueueLimit:           cfg.Session.QueueLimit,
		MaxConcurrentBatches: cfg.Session.MaxConcurrent,
	}, nil
}

// logServingSummary reports the session-layer latency distribution at
// shutdown (p50/p99 via the histogram quantile estimator).
func logServingSummary() {
	snap := obs.Default().Snapshot()
	h, ok := snap.Histograms["session_pair_latency_seconds"]
	if !ok || h.Count == 0 {
		obs.Logf("served 0 pairs")
		return
	}
	obs.Logf("served %d pairs: latency p50 %.1fms, p99 %.1fms",
		h.Count, h.Quantile(0.5)*1e3, h.Quantile(0.99)*1e3)
}
