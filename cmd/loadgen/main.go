// Command loadgen is a closed-loop load-test client for alignd: a pool
// of interactive and bulk workers each posts an align request, waits
// for the full result stream, and immediately posts the next. It
// accounts per class — completions, 429s, latency percentiles — plus
// every typed degradation label the daemon attached, and (with
// -assert-shed) verifies the shed ladder's contract end to end:
//
//   - under sustained overload the ladder engages (observed via
//     /admin/shed polling),
//   - every result served without a requested CIGAR carries a typed
//     degradation label — zero silent downgrades,
//   - once the load stops, the ladder releases back to none.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:7433 [-duration 10s]
//	        [-interactive 2] [-bulk 8] [-pairs 8] [-len 150]
//	        [-dup-fraction 0.5] [-api-key KEY] [-expect-cigar]
//	        [-assert-shed] [-release-wait 30s] [-v]
//
// Exit status 0 when the run (and any assertions) passed, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pimnw/internal/seq"
)

type wirePair struct {
	ID int    `json:"id"`
	A  string `json:"a"`
	B  string `json:"b"`
}

type wireResult struct {
	ID       int      `json:"id"`
	Score    int32    `json:"score"`
	Cigar    string   `json:"cigar,omitempty"`
	Status   string   `json:"status,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
	Err      string   `json:"error,omitempty"`
}

// classStats is one priority class's tally, owned by the aggregator.
type classStats struct {
	requests   int
	ok         int
	rejected   int // 429
	errors     int // transport errors, non-2xx other than 429, mid-stream errors
	latencies  []float64
	degraded   map[string]int
	unlabelled int // results missing a requested CIGAR with no degradation label
}

func (s *classStats) percentile(p float64) float64 {
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.latencies...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// oneRequest posts a workload and drains the stream, returning what the
// aggregator needs. expectCigar marks bulk requests whose results must
// either carry CIGARs or typed degradation labels.
type outcome struct {
	class      string
	latency    float64
	status     int // HTTP status; 200 with streamErr set counts as an error
	streamErr  bool
	degraded   []string
	unlabelled int
}

type worker struct {
	client      *http.Client
	url         string
	class       string
	apiKey      string
	pairs       int
	seqLen      int
	expectCigar bool
	rng         *rand.Rand
	// dupFraction of each request's pairs are drawn from dupPool, a small
	// deterministic pool shared by every worker — the duplicates recur
	// across requests and workers, which is what makes them hit a
	// result cache on the daemon side.
	dupFraction float64
	dupPool     []wirePair
}

func (w *worker) body() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < w.pairs; i++ {
		if len(w.dupPool) > 0 && w.rng.Float64() < w.dupFraction {
			p := w.dupPool[w.rng.Intn(len(w.dupPool))]
			p.ID = i
			enc.Encode(p)
			continue
		}
		a := seq.Random(w.rng, w.seqLen+w.rng.Intn(w.seqLen/4+1))
		b := seq.UniformErrors(0.08).Apply(w.rng, a)
		enc.Encode(wirePair{ID: i, A: a.String(), B: b.String()})
	}
	return buf.Bytes()
}

// dupPool builds the shared duplicate pool: n fixed pairs derived from the
// workload seed alone, so every worker (and every loadgen invocation with
// the same seed) re-submits the same sequences.
func dupPool(seed int64, n, seqLen int) []wirePair {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed0001))
	pool := make([]wirePair, n)
	for i := range pool {
		a := seq.Random(rng, seqLen+rng.Intn(seqLen/4+1))
		b := seq.UniformErrors(0.08).Apply(rng, a)
		pool[i] = wirePair{A: a.String(), B: b.String()}
	}
	return pool
}

func (w *worker) run(ctx context.Context, out chan<- outcome) {
	for ctx.Err() == nil {
		o := w.once(ctx)
		select {
		case out <- o:
		case <-ctx.Done():
			return
		}
	}
}

func (w *worker) once(ctx context.Context) outcome {
	o := outcome{class: w.class}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/align", bytes.NewReader(w.body()))
	if err != nil {
		o.status = -1
		return o
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Priority", w.class)
	if w.apiKey != "" {
		req.Header.Set("X-Api-Key", w.apiKey)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		o.status = -1
		return o
	}
	defer resp.Body.Close()
	o.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return o
	}
	if deg := resp.Header.Get("X-Degraded"); deg != "" {
		o.degraded = strings.Split(deg, ",")
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var r wireResult
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			o.streamErr = true
			break
		}
		if r.Err != "" {
			o.streamErr = true
			break
		}
		// The silent-downgrade check: a bulk result that should carry a
		// CIGAR but doesn't must be labelled, on the line itself.
		if w.expectCigar && w.class == "bulk" && r.Cigar == "" && len(r.Degraded) == 0 {
			o.unlabelled++
		}
	}
	o.latency = time.Since(start).Seconds()
	return o
}

// shedWatcher polls /admin/shed, tracking the highest level seen and
// the current one.
type shedWatcher struct {
	mu      sync.Mutex
	max     string
	current string
}

var shedRank = map[string]int{"none": 0, "score-only": 1, "no-verify": 2, "reject-bulk": 3}

func (sw *shedWatcher) poll(client *http.Client, url string) {
	resp, err := client.Get(url + "/admin/shed")
	if err != nil {
		return
	}
	var st struct {
		Level string `json:"level"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return
	}
	sw.mu.Lock()
	sw.current = st.Level
	if shedRank[st.Level] > shedRank[sw.max] {
		sw.max = st.Level
	}
	sw.mu.Unlock()
}

func (sw *shedWatcher) snapshot() (max, current string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.max, sw.current
}

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:7433", "alignd base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		interactive = flag.Int("interactive", 2, "closed-loop interactive workers")
		bulk        = flag.Int("bulk", 8, "closed-loop bulk workers")
		pairs       = flag.Int("pairs", 8, "pairs per request")
		seqLen      = flag.Int("len", 150, "base sequence length")
		apiKey      = flag.String("api-key", "", "X-Api-Key sent with every request")
		dupFraction = flag.Float64("dup-fraction", 0, "fraction of each request's pairs drawn from a fixed shared pool (recurring duplicates exercise the daemon's result cache)")
		expectCigar = flag.Bool("expect-cigar", false, "bulk results must carry a CIGAR or a typed degradation label")
		assertShed  = flag.Bool("assert-shed", false, "require the shed ladder to engage under load and release after it")
		releaseWait = flag.Duration("release-wait", 30*time.Second, "how long to wait for the ladder to release after load stops")
		seed        = flag.Int64("seed", 1, "workload seed")
		verbose     = flag.Bool("v", false, "log each worker outcome")
	)
	flag.Parse()
	if *dupFraction < 0 || *dupFraction > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -dup-fraction must be in [0,1]")
		os.Exit(1)
	}
	if err := run(*url, *duration, *interactive, *bulk, *pairs, *seqLen, *dupFraction,
		*apiKey, *expectCigar, *assertShed, *releaseWait, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(url string, duration time.Duration, interactive, bulk, pairs, seqLen int,
	dupFraction float64, apiKey string, expectCigar, assertShed bool,
	releaseWait time.Duration, seed int64, verbose bool) error {
	client := &http.Client{Timeout: 2 * time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	var pool []wirePair
	if dupFraction > 0 {
		pool = dupPool(seed, 16, seqLen)
	}
	out := make(chan outcome, 256)
	var wg sync.WaitGroup
	spawn := func(n int, class string) {
		for i := 0; i < n; i++ {
			w := &worker{
				client: client, url: url, class: class, apiKey: apiKey,
				pairs: pairs, seqLen: seqLen, expectCigar: expectCigar,
				rng:         rand.New(rand.NewSource(seed + int64(len(class))*1000 + int64(i))),
				dupFraction: dupFraction, dupPool: pool,
			}
			wg.Add(1)
			go func() { defer wg.Done(); w.run(ctx, out) }()
		}
	}
	spawn(interactive, "interactive")
	spawn(bulk, "bulk")

	watch := &shedWatcher{max: "none", current: "none"}
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				watch.poll(client, url)
			case <-ctx.Done():
				return
			}
		}
	}()

	stats := map[string]*classStats{
		"interactive": {degraded: map[string]int{}},
		"bulk":        {degraded: map[string]int{}},
	}
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for o := range out {
			s := stats[o.class]
			s.requests++
			switch {
			case o.status == http.StatusOK && !o.streamErr:
				s.ok++
				s.latencies = append(s.latencies, o.latency)
			case o.status == http.StatusTooManyRequests:
				s.rejected++
			default:
				s.errors++
			}
			for _, d := range o.degraded {
				s.degraded[d]++
			}
			s.unlabelled += o.unlabelled
			if verbose {
				fmt.Printf("%-11s status=%d latency=%.1fms degraded=%v\n",
					o.class, o.status, o.latency*1e3, o.degraded)
			}
		}
	}()

	wg.Wait()
	close(out)
	<-collectDone
	<-watchDone

	maxLevel, _ := watch.snapshot()
	for _, class := range []string{"interactive", "bulk"} {
		s := stats[class]
		fmt.Printf("%-11s requests=%d ok=%d rejected=%d errors=%d p50=%.1fms p99=%.1fms",
			class, s.requests, s.ok, s.rejected, s.errors,
			s.percentile(0.50)*1e3, s.percentile(0.99)*1e3)
		for mode, n := range s.degraded {
			fmt.Printf(" degraded[%s]=%d", mode, n)
		}
		if s.unlabelled > 0 {
			fmt.Printf(" UNLABELLED=%d", s.unlabelled)
		}
		fmt.Println()
	}
	fmt.Printf("shed: max level seen %s\n", maxLevel)

	total := stats["interactive"].requests + stats["bulk"].requests
	if total == 0 {
		return fmt.Errorf("no requests completed; is alignd up at %s?", url)
	}
	if n := stats["interactive"].unlabelled + stats["bulk"].unlabelled; n > 0 {
		return fmt.Errorf("%d results were degraded without a typed label", n)
	}
	if !assertShed {
		return nil
	}

	// The ladder must have engaged under load...
	if shedRank[maxLevel] == 0 {
		return fmt.Errorf("shed ladder never engaged under %d workers (max level %q)",
			interactive+bulk, maxLevel)
	}
	// ...and release once the load is gone.
	deadline := time.Now().Add(releaseWait)
	for {
		watch.poll(client, url)
		_, cur := watch.snapshot()
		if cur == "none" {
			fmt.Println("shed: released to none after load stopped")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shed ladder stuck at %q %s after load stopped", cur, releaseWait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
