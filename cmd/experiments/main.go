// Command experiments regenerates the paper's evaluation tables
// side-by-side with the reproduction's numbers.
//
// Usage:
//
//	experiments [-table 1|2|...|8|utilization|ablation|all] [-quick] [-samples N] [-seed S]
//
// Accuracy numbers come from running the real aligners on sampled pairs;
// runtime numbers come from scaled simulated runs calibrated and projected
// to the paper's dataset sizes (see EXPERIMENTS.md for the methodology).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pimnw/internal/xp"
)

func main() {
	table := flag.String("table", "all", "table to regenerate (1-8, utilization, ablation, hybrid, wfa, all)")
	quick := flag.Bool("quick", false, "shrink samples and read lengths for a fast smoke run")
	samples := flag.Int("samples", 0, "override the per-dataset accuracy sample count")
	seed := flag.Int64("seed", 0, "offset every generator seed")
	format := flag.String("format", "text", "output format: text or markdown")
	flag.Parse()

	runner := xp.NewRunner(xp.Options{Quick: *quick, Samples: *samples, Seed: *seed})
	ids := []string{*table}
	if *table == "all" {
		ids = xp.TableIDs()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := runner.Table(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "markdown" {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}
