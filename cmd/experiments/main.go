// Command experiments regenerates the paper's evaluation tables
// side-by-side with the reproduction's numbers.
//
// Usage:
//
//	experiments [-table 1|2|...|8|utilization|ablation|all] [-quick]
//	            [-samples N] [-seed S] [-format text|markdown] [-v]
//	            [-metrics FILE] [-trace-out FILE] [-report-json FILE]
//	            [-fault-rate P] [-fault-seed N] [-max-retries N]
//	            [-batch-deadline SEC] [-escalation] [-max-band W] [-verify]
//	            [-cache-dir DIR] [-fleet SPEC]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Accuracy numbers come from running the real aligners on sampled pairs;
// runtime numbers come from scaled simulated runs calibrated and projected
// to the paper's dataset sizes (see EXPERIMENTS.md for the methodology).
//
// Observability: -metrics snapshots the run's metric registry (kernel
// cells, simulator cycle breakdowns, utilization histograms) as Prometheus
// text, -trace-out writes the harness's wall-clock spans (per table, per
// calibration, per batch) as Chrome trace-event JSON for Perfetto, and
// -report-json writes every generated table as a JSON array. "-" writes
// to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/xp"
)

func main() {
	obs.SetLogPrefix("experiments")
	table := flag.String("table", "all", "table to regenerate (1-8, utilization, ablation, hybrid, wfa, all)")
	quick := flag.Bool("quick", false, "shrink samples and read lengths for a fast smoke run")
	samples := flag.Int("samples", 0, "override the per-dataset accuracy sample count")
	seed := flag.Int64("seed", 0, "offset every generator seed")
	format := flag.String("format", "text", "output format: text or markdown")
	verbose := flag.Bool("v", false, "verbose (debug) logging")
	logJSON := flag.Bool("log-json", false, "structured JSON log lines instead of text")
	metrics := flag.String("metrics", "", "write a Prometheus-text metrics snapshot to FILE (\"-\" = stdout)")
	traceOut := flag.String("trace-out", "", "write the harness spans as Chrome trace-event JSON to FILE")
	reportJSON := flag.String("report-json", "", "write the generated tables as JSON to FILE")
	faultRate := flag.Float64("fault-rate", 0, "inject per-DPU faults at this probability into the simulated batch runs (0 = perfect fabric)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection seed")
	maxRetries := flag.Int("max-retries", 3, "recovery attempts per batch beyond the first launch")
	batchDeadline := flag.Float64("batch-deadline", 0, "modelled per-attempt deadline in seconds (0 = none)")
	escalation := flag.Bool("escalation", false, "enable the result-integrity band-escalation ladder in the simulated batch runs")
	maxBand := flag.Int("max-band", 0, "widest band the escalation ladder may try (0 = default cap)")
	verify := flag.Bool("verify", false, "re-derive traceback results' scores from their CIGARs in the simulated batch runs")
	lanesFlag := flag.String("lanes", "auto", "DP lane width for the simulated DPU kernels: auto, 16 or 64")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache used by the batch experiments (empty = caching disabled)")
	fleet := flag.String("fleet", "", "shard the batch experiments across a multi-backend fleet: comma-separated pim[:RANKS[@FREQMHZ]][~FAULTRATE] / cpu[:THREADS] entries (empty = single fabric)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC snapshot at exit) to FILE")
	flag.Parse()
	if *verbose {
		obs.SetVerbosity(1)
	}
	obs.SetLogJSON(*logJSON)
	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProfiles()
	if *metrics != "" {
		obs.SetDefault(obs.NewRegistry())
	}
	if *traceOut != "" {
		obs.SetDefaultTracer(obs.NewTracer())
	}

	laneWidth, err := kernel.ParseLaneWidth(*lanesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runner := xp.NewRunner(xp.Options{
		Quick: *quick, Samples: *samples, Seed: *seed,
		FaultRate: *faultRate, FaultSeed: *faultSeed,
		MaxRetries: *maxRetries, BatchDeadlineSec: *batchDeadline,
		Escalate: *escalation, MaxBand: *maxBand, Verify: *verify,
		LaneWidth: laneWidth, CacheDir: *cacheDir, Fleet: *fleet,
	})
	defer runner.Close()
	ids := []string{*table}
	if *table == "all" {
		ids = xp.TableIDs()
	}
	var tables []xp.Table
	for _, id := range ids {
		start := time.Now()
		t, err := runner.Table(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table %s: %v\n", id, err)
			runner.Close() // deferred calls do not survive os.Exit
			stopProfiles()
			os.Exit(1)
		}
		tables = append(tables, t)
		if *format == "markdown" {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
		obs.Logf("table %s generated in %.1fs", id, time.Since(start).Seconds())
	}
	if err := writeArtifacts(tables, *metrics, *traceOut, *reportJSON); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		runner.Close()
		stopProfiles()
		os.Exit(1)
	}
}

// writeArtifacts dumps the enabled observability outputs after the run.
func writeArtifacts(tables []xp.Table, metrics, traceOut, reportJSON string) error {
	if metrics != "" {
		if err := toFile(metrics, func(w io.Writer) error {
			return obs.Default().WritePrometheus(w)
		}); err != nil {
			return fmt.Errorf("writing -metrics: %w", err)
		}
	}
	if traceOut != "" {
		if err := toFile(traceOut, func(w io.Writer) error {
			tr := obs.DefaultTracer()
			events := append([]obs.TraceEvent{obs.ProcessName(0, "experiments (wall clock)")}, tr.Events(0)...)
			return obs.WriteTraceEvents(w, events)
		}); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
		obs.Logf("trace written to %s (open in Perfetto or chrome://tracing)", traceOut)
	}
	if reportJSON != "" {
		if err := toFile(reportJSON, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(tables)
		}); err != nil {
			return fmt.Errorf("writing -report-json: %w", err)
		}
	}
	return nil
}

// toFile runs write against the named file, or stdout for "-".
func toFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
