// Command pimalign aligns pairs of DNA sequences with the paper's
// adaptive banded Needleman & Wunsch, either on the simulated UPMEM PiM
// system (host + DPU kernel, with a timing report) or on the CPU baseline.
//
// Input: two FASTA files of equal record counts; record i of the first is
// aligned against record i of the second. Output: one line per pair with
// the score and (unless -score-only) the CIGAR.
//
// Usage:
//
//	pimalign -a queries.fa -b targets.fa [-engine pim|cpu] [-band 128]
//	         [-static] [-ranks 40] [-score-only] [-threads N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pimnw/internal/baseline"
	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pimalign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		aPath     = flag.String("a", "", "FASTA file of query sequences")
		bPath     = flag.String("b", "", "FASTA file of target sequences (omit with -mode allpairs)")
		mode      = flag.String("mode", "pairs", "pairs (record i of -a vs record i of -b) or allpairs (-a against itself, score-only broadcast, as in §5.3)")
		engine    = flag.String("engine", "pim", "alignment engine: pim (simulated UPMEM server) or cpu (baseline)")
		band      = flag.Int("band", 128, "band size (cells per anti-diagonal / row)")
		static    = flag.Bool("static", false, "use the static band instead of the adaptive one (cpu engine)")
		ranks     = flag.Int("ranks", 40, "PiM ranks (pim engine)")
		scoreOnly = flag.Bool("score-only", false, "skip traceback/CIGAR")
		threads   = flag.Int("threads", 0, "CPU threads (cpu engine; 0 = all)")
		timeline  = flag.Bool("timeline", false, "print the simulated rank timeline (pim engine)")
	)
	flag.Parse()
	if *aPath == "" {
		flag.Usage()
		return fmt.Errorf("-a is required")
	}
	queries, err := readFasta(*aPath)
	if err != nil {
		return err
	}

	if *mode == "allpairs" {
		return runAllPairs(queries, *band, *ranks)
	}
	if *bPath == "" {
		flag.Usage()
		return fmt.Errorf("-b is required in pairs mode")
	}
	targets, err := readFasta(*bPath)
	if err != nil {
		return err
	}
	if len(queries) != len(targets) {
		return fmt.Errorf("%d queries vs %d targets", len(queries), len(targets))
	}

	switch *engine {
	case "pim":
		return runPiM(queries, targets, *band, *ranks, !*scoreOnly, *timeline)
	case "cpu":
		return runCPU(queries, targets, *band, *static, *threads, !*scoreOnly)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
}

// runAllPairs is the §5.3 workflow: the dataset is broadcast to every DPU
// and all n(n-1)/2 scores are computed without traceback.
func runAllPairs(recs []seq.Record, band, ranks int) error {
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = ranks
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry: kernel.DefaultGeometry(),
			Band:     band,
			Params:   core.DefaultParams(),
			Costs:    pim.Asm,
			PIM:      pimCfg,
		},
	}
	seqs := make([]seq.Seq, len(recs))
	for i, r := range recs {
		seqs[i] = r.Seq
	}
	rep, results, err := host.AlignAllPairs(cfg, seqs)
	if err != nil {
		return err
	}
	indices := host.AllPairIndices(len(seqs))
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, r := range results {
		pi := indices[r.ID]
		printResult(recs[pi.I].Name, recs[pi.J].Name, r.Score, r.InBand, "")
	}
	fmt.Fprintf(os.Stderr,
		"pimalign: %d all-against-all scores on %d simulated ranks: %.3fs modelled (broadcast %.3fs)\n",
		rep.Alignments, ranks, rep.MakespanSec, rep.TransferInSec)
	return nil
}

func readFasta(path string) ([]seq.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seq.ReadFASTA(f, nil)
}

func runPiM(queries, targets []seq.Record, band, ranks int, traceback, timeline bool) error {
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = ranks
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      band,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: traceback,
			PIM:       pimCfg,
		},
	}
	pairs := make([]host.Pair, len(queries))
	for i := range queries {
		pairs[i] = host.Pair{ID: i, A: queries[i].Seq, B: targets[i].Seq}
	}
	rep, results, err := host.AlignPairs(cfg, pairs)
	if err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, r := range results {
		printResult(queries[r.ID].Name, targets[r.ID].Name, r.Score, r.InBand, string(r.Cigar))
	}
	fmt.Fprintf(os.Stderr,
		"pimalign: %d alignments on %d simulated ranks: %.3fs modelled (%.1f%% host overhead, %.0f%% min pipeline util)\n",
		rep.Alignments, ranks, rep.MakespanSec, 100*rep.HostOverheadFraction(), 100*rep.UtilizationMin)
	if timeline {
		fmt.Fprint(os.Stderr, rep.Timeline(72))
	}
	return nil
}

func runCPU(queries, targets []seq.Record, band int, static bool, threads int, traceback bool) error {
	if !static {
		// The adaptive aligner is not the baseline's engine; run it
		// directly through the core API on a worker pool-free loop.
		p := core.DefaultParams()
		for i := range queries {
			var res core.Result
			if traceback {
				res = core.AdaptiveBandAlign(queries[i].Seq, targets[i].Seq, p, band)
			} else {
				res = core.AdaptiveBandScore(queries[i].Seq, targets[i].Seq, p, band)
			}
			printResult(queries[i].Name, targets[i].Name, res.Score, res.InBand, res.Cigar.String())
		}
		return nil
	}
	opts := baseline.Options{Params: core.DefaultParams(), Band: band, Threads: threads, Traceback: traceback}
	pairs := make([]baseline.Pair, len(queries))
	for i := range queries {
		pairs[i] = baseline.Pair{ID: i, A: queries[i].Seq, B: targets[i].Seq}
	}
	out, err := baseline.Run(opts, pairs)
	if err != nil {
		return err
	}
	for _, r := range out.Results {
		printResult(queries[r.ID].Name, targets[r.ID].Name, r.Score, r.InBand, r.Cigar.String())
	}
	fmt.Fprintf(os.Stderr, "pimalign: cpu baseline: %.3fs wall, %d cells\n", out.WallSeconds, out.Cells)
	return nil
}

func printResult(qName, tName string, score int32, inBand bool, cig string) {
	if !inBand {
		fmt.Printf("%s\t%s\tFAIL\tout-of-band\n", qName, tName)
		return
	}
	if cig == "" {
		fmt.Printf("%s\t%s\t%d\n", qName, tName, score)
		return
	}
	fmt.Printf("%s\t%s\t%d\t%s\n", qName, tName, score, cig)
}
