// Command pimalign aligns pairs of DNA sequences with the paper's
// adaptive banded Needleman & Wunsch, either on the simulated UPMEM PiM
// system (host + DPU kernel, with a timing report) or on the CPU baseline.
//
// Input: two FASTA files of equal record counts; record i of the first is
// aligned against record i of the second. Output: one line per pair with
// the score and (unless -score-only) the CIGAR.
//
// Usage:
//
//	pimalign -a queries.fa -b targets.fa [-engine pim|cpu] [-band 128]
//	         [-static] [-ranks 40] [-score-only] [-threads N] [-v]
//	         [-escalation] [-max-band W] [-verify] [-cache-dir DIR]
//	         [-metrics FILE] [-trace-out FILE] [-report-json FILE]
//	         [-fault-rate P] [-fault-seed N] [-max-retries N]
//	         [-batch-deadline SEC] [-cpuprofile FILE] [-memprofile FILE]
//
// Profiling: -cpuprofile writes a pprof CPU profile covering the whole
// run; -memprofile writes a heap profile snapshotted (post-GC) at exit.
// Inspect with `go tool pprof`.
//
// Observability (pim engine): -metrics dumps a Prometheus-text snapshot
// of the run's counters/histograms, -trace-out writes a Chrome
// trace-event JSON file (open in Perfetto or chrome://tracing) combining
// the modelled rank timeline with the host's wall-clock pipeline spans,
// and -report-json writes the machine-readable run report. "-" writes to
// stdout.
//
// Result integrity (pim engine, pairs mode): -escalation re-dispatches
// clipped or out-of-band pairs at doubled band widths up to -max-band,
// degrading to score-only kernels and finally the exact CPU baseline, so
// every pair returns a trusted score with a provenance label. -verify
// re-derives each traceback result's score from its CIGAR on the host and
// treats mismatches as detected corruption (redispatched like a transfer
// fault).
//
// Fault injection (pim engine, pairs mode): -fault-rate injects
// deterministic per-DPU faults (stalls, slowdowns, crashes, transfer
// corruptions) at the given probability, seeded by -fault-seed; the host
// recovers by redispatching failed DPUs' pairs onto survivors, up to
// -max-retries attempts per batch. -batch-deadline bounds each attempt in
// modelled seconds so stalled DPUs are detected rather than waited out.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pimnw/internal/baseline"
	"pimnw/internal/cache"
	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func main() {
	obs.SetLogPrefix("pimalign")
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pimalign:", err)
		os.Exit(1)
	}
}

// artifacts collects the observability output paths ("" = off).
type artifacts struct {
	metrics, traceOut, reportJSON string
}

func (a artifacts) any() bool { return a.metrics != "" || a.traceOut != "" || a.reportJSON != "" }

func run() error {
	var (
		aPath      = flag.String("a", "", "FASTA file of query sequences")
		bPath      = flag.String("b", "", "FASTA file of target sequences (omit with -mode allpairs)")
		mode       = flag.String("mode", "pairs", "pairs (record i of -a vs record i of -b) or allpairs (-a against itself, score-only broadcast, as in §5.3)")
		engine     = flag.String("engine", "pim", "alignment engine: pim (simulated UPMEM server) or cpu (baseline)")
		band       = flag.Int("band", 128, "band size (cells per anti-diagonal / row)")
		static     = flag.Bool("static", false, "use the static band instead of the adaptive one (cpu engine)")
		ranks      = flag.Int("ranks", 40, "PiM ranks (pim engine)")
		scoreOnly  = flag.Bool("score-only", false, "skip traceback/CIGAR")
		lanesFlag  = flag.String("lanes", "auto", "DP lane width: auto, 16 (saturating narrow lanes, score-only) or 64 (pim engine)")
		threads    = flag.Int("threads", 0, "CPU threads (cpu engine; 0 = all)")
		timeline   = flag.Bool("timeline", false, "print the simulated rank timeline (pim engine)")
		verbose    = flag.Bool("v", false, "verbose (debug) logging")
		logJSON    = flag.Bool("log-json", false, "structured JSON log lines instead of text")
		metrics    = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to FILE (\"-\" = stdout; pim engine)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file to FILE for Perfetto (pim engine)")
		reportJSON = flag.String("report-json", "", "write the machine-readable run report to FILE (pim engine)")

		cacheDir = flag.String("cache-dir", "", "directory for the persistent result cache (pim engine, pairs mode; empty = caching disabled)")

		fleet = flag.String("fleet", "", "shard across a multi-backend fleet (pim engine, pairs mode): comma-separated pim[:RANKS[@FREQMHZ]][~FAULTRATE] / cpu[:THREADS] entries")

		escalation = flag.Bool("escalation", false, "re-dispatch clipped/out-of-band pairs at wider bands, degrading to score-only then the exact CPU baseline (pim engine, pairs mode)")
		maxBand    = flag.Int("max-band", 0, "widest band the escalation ladder may try (0 = default cap)")
		verify     = flag.Bool("verify", false, "re-derive every traceback result's score from its CIGAR on the host; mismatches are treated as corruption (pim engine, pairs mode)")

		faultRate     = flag.Float64("fault-rate", 0, "per-DPU fault injection probability in [0,1] (pim engine, pairs mode; 0 = perfect fabric)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault injection seed (deterministic per seed)")
		maxRetries    = flag.Int("max-retries", 3, "recovery attempts per batch beyond the first launch")
		batchDeadline = flag.Float64("batch-deadline", 0, "modelled per-attempt deadline in seconds; 0 = none (stalled DPUs are waited out)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-GC snapshot at exit) to FILE")
	)
	flag.Parse()
	if *verbose {
		obs.SetVerbosity(1)
	}
	obs.SetLogJSON(*logJSON)
	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	art := artifacts{metrics: *metrics, traceOut: *traceOut, reportJSON: *reportJSON}
	if art.metrics != "" {
		obs.SetDefault(obs.NewRegistry())
	}
	if art.traceOut != "" {
		obs.SetDefaultTracer(obs.NewTracer())
	}
	if *aPath == "" {
		flag.Usage()
		return fmt.Errorf("-a is required")
	}
	queries, err := readFasta(*aPath)
	if err != nil {
		return err
	}
	obs.Debugf("read %d query records from %s", len(queries), *aPath)

	laneWidth, err := kernel.ParseLaneWidth(*lanesFlag)
	if err != nil {
		return err
	}
	faults := faultOpts{rate: *faultRate, seed: *faultSeed,
		retries: *maxRetries, deadline: *batchDeadline}
	integrity := integrityOpts{escalate: *escalation, maxBand: *maxBand, verify: *verify}
	if *mode == "allpairs" {
		if faults.rate > 0 {
			obs.Logf("note: -fault-rate applies to the batch pipeline (pairs mode) only")
		}
		if integrity.escalate || integrity.verify {
			obs.Logf("note: -escalation/-verify apply to the batch pipeline (pairs mode) only")
		}
		if *fleet != "" {
			obs.Logf("note: -fleet applies to the batch pipeline (pairs mode) only")
		}
		return runAllPairs(queries, *band, *ranks, laneWidth, art)
	}
	if *bPath == "" {
		flag.Usage()
		return fmt.Errorf("-b is required in pairs mode")
	}
	targets, err := readFasta(*bPath)
	if err != nil {
		return err
	}
	obs.Debugf("read %d target records from %s", len(targets), *bPath)
	if len(queries) != len(targets) {
		return fmt.Errorf("%d queries vs %d targets", len(queries), len(targets))
	}

	switch *engine {
	case "pim":
		return runPiM(queries, targets, *band, *ranks, laneWidth, !*scoreOnly, *timeline, art, faults, integrity, *cacheDir, *fleet)
	case "cpu":
		if art.any() {
			obs.Logf("note: -metrics/-trace-out/-report-json apply to the pim engine only")
		}
		if *cacheDir != "" {
			obs.Logf("note: -cache-dir applies to the pim engine only")
		}
		if *fleet != "" {
			obs.Logf("note: -fleet applies to the pim engine only")
		}
		if faults.rate > 0 {
			obs.Logf("note: -fault-rate applies to the pim engine only")
		}
		if integrity.escalate || integrity.verify {
			obs.Logf("note: -escalation/-verify apply to the pim engine only")
		}
		return runCPU(queries, targets, *band, *static, *threads, !*scoreOnly)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
}

// writeArtifacts dumps the enabled observability outputs for a pim run.
func writeArtifacts(rep *host.Report, art artifacts) error {
	if art.metrics != "" {
		if err := toFile(art.metrics, func(w io.Writer) error {
			return obs.Default().WritePrometheus(w)
		}); err != nil {
			return fmt.Errorf("writing -metrics: %w", err)
		}
	}
	if art.traceOut != "" {
		events := rep.ChromeTraceEvents()
		if tr := obs.DefaultTracer(); tr != nil {
			events = append(events, obs.ProcessName(0, "host (wall clock)"))
			events = append(events, tr.Events(0)...)
		}
		if err := toFile(art.traceOut, func(w io.Writer) error {
			return obs.WriteTraceEvents(w, events)
		}); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
		obs.Logf("trace written to %s (open in Perfetto or chrome://tracing)", art.traceOut)
	}
	if art.reportJSON != "" {
		if err := toFile(art.reportJSON, rep.WriteJSON); err != nil {
			return fmt.Errorf("writing -report-json: %w", err)
		}
	}
	return nil
}

// toFile runs write against the named file, or stdout for "-".
func toFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAllPairs is the §5.3 workflow: the dataset is broadcast to every DPU
// and all n(n-1)/2 scores are computed without traceback.
func runAllPairs(recs []seq.Record, band, ranks, laneWidth int, art artifacts) error {
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = ranks
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      band,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			LaneWidth: laneWidth,
			PIM:       pimCfg,
		},
	}
	seqs := make([]seq.Seq, len(recs))
	for i, r := range recs {
		seqs[i] = r.Seq
	}
	rep, results, err := host.AlignAllPairs(cfg, seqs)
	if err != nil {
		return err
	}
	indices := host.AllPairIndices(len(seqs))
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, r := range results {
		pi := indices[r.ID]
		printResult(recs[pi.I].Name, recs[pi.J].Name, r)
	}
	obs.Logf("%d all-against-all scores on %d simulated ranks: %.3fs modelled (broadcast %.3fs)",
		rep.Alignments, ranks, rep.MakespanSec, rep.TransferInSec)
	return writeArtifacts(rep, art)
}

func readFasta(path string) ([]seq.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seq.ReadFASTA(f, nil)
}

// faultOpts carries the fault-injection flags into the pim pipeline.
type faultOpts struct {
	rate     float64
	seed     int64
	retries  int
	deadline float64
}

// integrityOpts carries the result-integrity flags into the pim pipeline.
type integrityOpts struct {
	escalate bool
	maxBand  int
	verify   bool
}

func runPiM(queries, targets []seq.Record, band, ranks, laneWidth int, traceback, timeline bool, art artifacts, faults faultOpts, integrity integrityOpts, cacheDir, fleetSpec string) error {
	backends, err := host.ParseFleet(fleetSpec)
	if err != nil {
		return err
	}
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = ranks
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      band,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: traceback,
			LaneWidth: laneWidth,
			PIM:       pimCfg,
		},
		Faults:           pim.FaultConfig{Rate: faults.rate, Seed: faults.seed},
		MaxRetries:       faults.retries,
		BatchDeadlineSec: faults.deadline,
		RetryBackoffSec:  1e-3,
		Escalate:         integrity.escalate,
		MaxBand:          integrity.maxBand,
		Verify:           integrity.verify && traceback,
		Backends:         backends,
	}
	if len(backends) > 0 {
		parts := make([]string, len(backends))
		for i, be := range backends {
			parts[i] = fmt.Sprintf("%s (%d ranks)", be.Name(), be.Ranks())
		}
		obs.Logf("fleet placement across %d backends: %s", len(backends), strings.Join(parts, ", "))
	}
	if integrity.verify && !traceback {
		obs.Logf("note: -verify needs CIGARs; ignored with -score-only")
	}
	pairs := make([]host.Pair, len(queries))
	for i := range queries {
		pairs[i] = host.Pair{ID: i, A: queries[i].Seq, B: targets[i].Seq}
	}
	var rep *host.Report
	var results []host.Result
	if cacheDir != "" {
		// With a cache attached, the run goes through the streaming
		// session (cache lookups happen at admission); MaxBatchPairs =
		// len(pairs) keeps the whole workload one micro-batch, so a cold
		// cache run is bit-identical to the plain AlignPairs path.
		c, err := cache.Open(cache.Options{Dir: cacheDir})
		if err != nil {
			return err
		}
		defer c.Close()
		rep, results, err = host.AlignPairsStream(context.Background(), host.SessionConfig{
			Host:          cfg,
			MaxBatchPairs: len(pairs),
			Cache:         c,
		}, pairs)
		if err != nil {
			return err
		}
	} else {
		var err error
		rep, results, err = host.AlignPairs(cfg, pairs)
		if err != nil {
			return err
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, r := range results {
		printResult(queries[r.ID].Name, targets[r.ID].Name, r)
	}
	// In fleet mode -ranks is overridden by the per-backend spec, so the
	// summary counts the ranks that actually served.
	servedRanks := ranks
	if len(backends) > 0 {
		servedRanks = 0
		for _, be := range backends {
			servedRanks += be.Ranks()
		}
	}
	obs.Logf("%d alignments on %d simulated ranks: %.3fs modelled (%.1f%% host overhead, %.0f%% min pipeline util)",
		rep.Alignments, servedRanks, rep.MakespanSec, 100*rep.HostOverheadFraction(), 100*rep.UtilizationMin)
	for _, bs := range rep.Backends {
		note := ""
		if bs.Down {
			note = " [went down; work redispatched]"
		}
		obs.Logf("backend %s: %d pairs in %d batches, %.3fs modelled window, %d redispatched%s",
			bs.Name, bs.Pairs, bs.Batches, bs.MakespanSec, bs.Redispatched, note)
	}
	obs.Debugf("%d batches, %d cells, %d instructions, %d B in / %d B out",
		rep.Batches, rep.TotalCells, rep.TotalInstr, rep.BytesIn, rep.BytesOut)
	if cfg.Faults.Enabled() {
		obs.Logf("fault recovery: %d detected, %d retries, %d redispatches, %d pairs abandoned (%.3fs retry time)",
			rep.FaultsDetected, rep.Retries, rep.Redispatches, rep.AbandonedPairs, rep.RetrySec)
	}
	if cfg.Escalate {
		obs.Logf("escalation: %d out-of-band + %d clipped pairs, %d re-dispatches over %d rounds, %d degraded to score-only, %d to cpu-exact (%.3fs cpu fallback)",
			rep.OutOfBandPairs, rep.ClippedPairs, rep.Escalations, rep.EscalationRounds,
			rep.DegradedScoreOnly, rep.DegradedCPU, rep.CPUFallbackSec)
	}
	if cfg.Verify {
		obs.Logf("verify: %d results checked, %d mismatches", rep.VerifyChecked, rep.VerifyFailures)
	}
	if cacheDir != "" {
		obs.Logf("result cache: %d hits, %d misses, %d in-batch duplicates deduped",
			rep.CacheHits, rep.CacheMisses, rep.DedupedPairs)
	}
	if timeline {
		fmt.Fprint(os.Stderr, rep.Timeline(72))
	}
	return writeArtifacts(rep, art)
}

func runCPU(queries, targets []seq.Record, band int, static bool, threads int, traceback bool) error {
	if !static {
		// The adaptive aligner is not the baseline's engine; run it
		// directly through the core API on a worker pool-free loop.
		p := core.DefaultParams()
		for i := range queries {
			var res core.Result
			if traceback {
				res = core.AdaptiveBandAlign(queries[i].Seq, targets[i].Seq, p, band)
			} else {
				res = core.AdaptiveBandScore(queries[i].Seq, targets[i].Seq, p, band)
			}
			printCPUResult(queries[i].Name, targets[i].Name, res.Score, res.InBand, res.Cigar.String())
		}
		return nil
	}
	opts := baseline.Options{Params: core.DefaultParams(), Band: band, Threads: threads, Traceback: traceback}
	pairs := make([]baseline.Pair, len(queries))
	for i := range queries {
		pairs[i] = baseline.Pair{ID: i, A: queries[i].Seq, B: targets[i].Seq}
	}
	out, err := baseline.Run(opts, pairs)
	if err != nil {
		return err
	}
	for _, r := range out.Results {
		printCPUResult(queries[r.ID].Name, targets[r.ID].Name, r.Score, r.InBand, r.Cigar.String())
	}
	obs.Logf("cpu baseline: %.3fs wall, %d cells", out.WallSeconds, out.Cells)
	return nil
}

// printResult renders one pim-engine result with its typed status: pairs
// with no usable score print FAIL plus the status name, untrusted or
// rescued pairs carry a trailing status/provenance column, and the common
// ok case stays the plain score[+CIGAR] line.
func printResult(qName, tName string, r host.Result) {
	switch r.Status {
	case host.StatusOutOfBand, host.StatusAbandoned:
		fmt.Printf("%s\t%s\tFAIL\t%s\n", qName, tName, r.Status)
		return
	}
	cols := []string{qName, tName, fmt.Sprint(r.Score)}
	if len(r.Cigar) > 0 {
		cols = append(cols, string(r.Cigar))
	}
	if r.Status != host.StatusOK {
		note := r.Status.String()
		if r.Status.Trusted() && r.Provenance != "" {
			note = r.Provenance
		}
		cols = append(cols, note)
	}
	fmt.Println(strings.Join(cols, "\t"))
}

// printCPUResult renders one cpu-engine result (no typed status there).
func printCPUResult(qName, tName string, score int32, inBand bool, cig string) {
	if !inBand {
		fmt.Printf("%s\t%s\tFAIL\tout-of-band\n", qName, tName)
		return
	}
	if cig == "" {
		fmt.Printf("%s\t%s\t%d\n", qName, tName, score)
		return
	}
	fmt.Printf("%s\t%s\t%d\t%s\n", qName, tName, score, cig)
}
