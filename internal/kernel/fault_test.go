package kernel

import (
	"errors"
	"math/rand"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func faultTestSetup(t *testing.T, n int) (*pim.DPU, Config, []Pair) {
	t.Helper()
	cfg := Config{
		Geometry:  DefaultGeometry(),
		Band:      64,
		Params:    core.DefaultParams(),
		Costs:     pim.Asm,
		Traceback: true,
		PIM:       pim.DefaultConfig(),
	}
	d := cfg.PIM.NewDPU(0)
	rng := rand.New(rand.NewSource(11))
	pairs := make([]Pair, n)
	for i := range pairs {
		a := seq.Random(rng, 300)
		b := seq.UniformErrors(0.08).Apply(rng, a)
		sp, err := StagePair(d, i, a, b)
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = sp
	}
	return d, cfg, pairs
}

func TestRunCrashFault(t *testing.T) {
	d, cfg, pairs := faultTestSetup(t, 4)
	d.Fault = pim.Fault{Kind: pim.FaultCrash}
	_, err := Run(d, cfg, pairs)
	var fe *pim.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("crash fault returned %v, want FaultError", err)
	}
	if fe.Kind != pim.FaultCrash {
		t.Errorf("fault kind %v", fe.Kind)
	}
}

func TestRunSlowdownFaults(t *testing.T) {
	d, cfg, pairs := faultTestSetup(t, 4)
	healthy, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []pim.Fault{
		{Kind: pim.FaultSlow, Factor: 8},
		{Kind: pim.FaultStall, Factor: 512},
	} {
		d2, cfg2, pairs2 := faultTestSetup(t, 4)
		d2.Fault = f
		out, err := Run(d2, cfg2, pairs2)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(float64(healthy.Stats.Cycles) * f.Factor)
		if out.Stats.Cycles != want {
			t.Errorf("%v: cycles %d, want %d", f.Kind, out.Stats.Cycles, want)
		}
		// Slowness must not change the results.
		if ChecksumResults(out.Results) != out.Checksum {
			t.Errorf("%v: checksum mismatch on an uncorrupted run", f.Kind)
		}
		if out.Checksum != healthy.Checksum {
			t.Errorf("%v: results differ from the healthy run", f.Kind)
		}
	}
}

func TestRunCorruptFaultDetectedByChecksum(t *testing.T) {
	d, cfg, pairs := faultTestSetup(t, 4)
	d.Fault = pim.Fault{Kind: pim.FaultCorrupt}
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if ChecksumResults(out.Results) == out.Checksum {
		t.Fatal("corrupted transfer passed checksum verification")
	}
}

func TestRunHealthyChecksumVerifies(t *testing.T) {
	d, cfg, pairs := faultTestSetup(t, 6)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if ChecksumResults(out.Results) != out.Checksum {
		t.Fatal("healthy run failed checksum verification")
	}
}

func TestChecksumResultsSensitivity(t *testing.T) {
	rs := []PairResult{
		{ID: 1, Score: 10, InBand: true, Cigar: []byte("5M"), Cells: 50, Steps: 9},
		{ID: 2, Score: -3, InBand: true, Cigar: []byte("2M1I2M"), Cells: 40, Steps: 8},
	}
	base := ChecksumResults(rs)
	mutations := []func([]PairResult){
		func(rs []PairResult) { rs[0].Score++ },
		func(rs []PairResult) { rs[1].ID = 7 },
		func(rs []PairResult) { rs[0].InBand = false },
		func(rs []PairResult) { rs[1].Clipped = true },
		func(rs []PairResult) { rs[1].Cigar[0] ^= 1 },
		func(rs []PairResult) { rs[0].Cells++ },
		func(rs []PairResult) { rs[1].Steps-- },
	}
	for i, mut := range mutations {
		cp := make([]PairResult, len(rs))
		for j := range rs {
			cp[j] = rs[j]
			cp[j].Cigar = append([]byte(nil), rs[j].Cigar...)
		}
		mut(cp)
		if ChecksumResults(cp) == base {
			t.Errorf("mutation %d not detected", i)
		}
	}
	if ChecksumResults(nil) != ChecksumResults([]PairResult{}) {
		t.Error("nil vs empty result lists hash differently")
	}
}
