package kernel

import (
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/pim"
)

func TestParseLaneWidth(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true}, {"auto", 0, true}, {"16", 16, true}, {"64", 64, true},
		{"32", 0, false}, {"narrow", 0, false},
	} {
		got, err := ParseLaneWidth(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseLaneWidth(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestLanesResolution: auto resolves to the narrow kernel exactly when the
// run is score-only and the scoring model has 16-bit headroom at the band;
// explicit widths pass through untouched.
func TestLanesResolution(t *testing.T) {
	c := Config{Params: core.DefaultParams()}
	if got := c.Lanes(128, false); got != 16 {
		t.Errorf("auto score-only default params: lanes %d, want 16", got)
	}
	if got := c.Lanes(128, true); got != 64 {
		t.Errorf("auto traceback: lanes %d, want 64", got)
	}
	hot := Config{Params: core.Params{Match: 127, Mismatch: -4, GapOpen: 4, GapExt: 2}}
	if core.NarrowFits(hot.Params, 128) {
		t.Fatal("test params unexpectedly fit the narrow engine")
	}
	if got := hot.Lanes(128, false); got != 64 {
		t.Errorf("auto without headroom: lanes %d, want 64", got)
	}
	hot.LaneWidth = 16
	if got := hot.Lanes(128, false); got != 16 {
		t.Errorf("explicit 16 must pass through, got %d", got)
	}
}

// TestValidateLaneWidth: unknown widths and the 16-bit/traceback
// combination (the narrow kernel is score-only) are rejected.
func TestValidateLaneWidth(t *testing.T) {
	base := Config{
		Geometry: DefaultGeometry(), Band: 64,
		Params: core.DefaultParams(), Costs: pim.Asm, PIM: pim.DefaultConfig(),
	}
	for _, lw := range []int{0, 16, 64} {
		c := base
		c.LaneWidth = lw
		if err := c.Validate(); err != nil {
			t.Errorf("LaneWidth=%d: %v", lw, err)
		}
	}
	c := base
	c.LaneWidth = 32
	if c.Validate() == nil {
		t.Error("LaneWidth=32 accepted")
	}
	c = base
	c.LaneWidth = 16
	c.Traceback = true
	if c.Validate() == nil {
		t.Error("narrow traceback kernel accepted")
	}
}

// TestNarrowLanesWidenFitGeometry: halving the cell width halves the
// anti-diagonal working set, so at a fixed geometry the narrow kernel must
// admit strictly wider bands than the full-width kernel — the WRAM
// trade the lane-width knob exists to buy.
func TestNarrowLanesWidenFitGeometry(t *testing.T) {
	base := Config{
		Geometry: DefaultGeometry(), Band: 64,
		Params: core.DefaultParams(), Costs: pim.Asm, PIM: pim.DefaultConfig(),
	}
	widest := func(c Config) int {
		last := 0
		for b := 64; b <= 1<<20; b *= 2 {
			if _, ok := FitGeometry(c, b, false); !ok {
				break
			}
			last = b
		}
		return last
	}
	wide := base
	wide.LaneWidth = 64
	narrow := base
	narrow.LaneWidth = 16
	ww, nw := widest(wide), widest(narrow)
	if nw <= ww {
		t.Fatalf("narrow kernel fits band %d, wide fits %d; want narrow strictly wider", nw, ww)
	}
}
