// Package kernel is the DPU program of the paper's §4.2: the adaptive
// banded Needleman & Wunsch compute kernel that runs on every DPU of the
// (simulated) PiM system. It owns everything that is device-side in the
// paper: the pool-of-tasklets execution geometry (P pools of T tasklets,
// §4.2.3), the WRAM working-set budget (four w-sized anti-diagonal arrays,
// §4.2.1), the MRAM-resident traceback structure streamed row by row
// (§4.2.2), 2-bit nucleotide extraction (§4.1.1), and the per-phase
// instruction/DMA cost accounting under one of the two ISA cost tables
// (pure C vs hand-written assembly, §4.2.4).
//
// The cell recurrence itself is shared with internal/core — the DPU
// kernel and the host reference implementation compute bit-identical
// alignments by construction, which is what lets the experiment harness
// attribute every accuracy difference to band geometry rather than to
// implementation divergence.
package kernel

import (
	"fmt"

	"pimnw/internal/core"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// Geometry is the tasklet execution shape: P pools of T tasklets each.
type Geometry struct {
	Pools           int // P: alignments in flight per DPU
	TaskletsPerPool int // T: tasklets cooperating on one anti-diagonal
}

// DefaultGeometry is the paper's evaluated configuration (P=6, T=4, 24
// tasklets, 95–99 % pipeline utilisation).
func DefaultGeometry() Geometry { return Geometry{Pools: 6, TaskletsPerPool: 4} }

// Tasklets is the number of booted tasklets.
func (g Geometry) Tasklets() int { return g.Pools * g.TaskletsPerPool }

// Config assembles one kernel build: geometry, band, scoring, cost table.
type Config struct {
	Geometry Geometry
	Band     int         // adaptive band size w (cells per anti-diagonal)
	Params   core.Params // scoring model
	Costs    pim.CostTable
	// Traceback selects the CIGAR-producing kernel; false is the
	// score-only kernel used by the 16S experiment.
	Traceback bool
	// LaneWidth selects the DP cell width in bits: 64 is the full-width
	// word-packed kernel, 16 the saturating narrow-lane kernel (score-only;
	// overflowed pairs come back flagged for the host ladder), and 0 is
	// auto — narrow whenever the mode and scoring model admit it. Narrow
	// lanes halve the per-pool WRAM working set, so wider bands fit
	// on-DPU at the same geometry.
	LaneWidth int
	// PIM provides the WRAM/MRAM capacities the kernel must fit in.
	PIM pim.Config
}

// ParseLaneWidth parses the -lanes command-line value shared by pimalign,
// experiments and alignd: "auto" (or "") is 0, else "16" or "64".
func ParseLaneWidth(s string) (int, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "16":
		return 16, nil
	case "64":
		return 64, nil
	default:
		return 0, fmt.Errorf("kernel: -lanes=%q not supported (want auto, 16 or 64)", s)
	}
}

// Lanes resolves LaneWidth for a band/traceback mode: auto picks the
// 16-bit kernel when the run is score-only and core.NarrowFits admits the
// scoring model at that band, else the 64-bit kernel.
func (c Config) Lanes(band int, traceback bool) int {
	switch c.LaneWidth {
	case 16, 64:
		return c.LaneWidth
	default:
		if !traceback && core.NarrowFits(c.Params, band) {
			return 16
		}
		return 64
	}
}

// WRAM working-set constants (bytes), documented in DESIGN.md §5. The real
// kernel's figures differ in detail; what matters is that the budget is
// enforced, producing the paper's §4.2.3 trade-off: alignment-level
// parallelism alone cannot boot enough tasklets to fill the pipeline.
const (
	seqWindowBytes = 2 * 512  // streaming windows into the two packed sequences
	btBufferBytes  = 2 * 1024 // double-buffered BT rows awaiting MRAM flush
	poolSharedVars = 128      // master/worker shared state per pool
)

// poolWRAM returns the per-pool WRAM working set for band w: the four
// w-sized anti-diagonal arrays of §4.2.1 (two H generations kept by
// in-place update, plus I and D) at the kernel's lane width — int32 cells
// for the 64-bit kernel, int16 for the narrow kernel, which is how narrow
// lanes buy band width — the sequence windows, the BT flush buffers
// (traceback kernels only) and the shared variables.
func poolWRAM(w int, traceback bool, lanes int) int {
	cell := 4
	if lanes == 16 {
		cell = 2
	}
	n := 4*cell*w + seqWindowBytes + poolSharedVars
	if traceback {
		n += btBufferBytes
	}
	return n
}

// Validate checks the geometry against the device: tasklet count, and the
// full WRAM budget (stacks + per-pool working sets) via a real allocation
// pass against the scratchpad model.
func (c Config) Validate() error {
	g := c.Geometry
	if g.Pools < 1 || g.TaskletsPerPool < 1 {
		return fmt.Errorf("kernel: geometry %+v must be at least 1x1", g)
	}
	if g.Tasklets() > pim.MaxTasklets {
		return fmt.Errorf("kernel: %d tasklets exceed the DPU's %d hardware threads",
			g.Tasklets(), pim.MaxTasklets)
	}
	if c.Band < 2 {
		return fmt.Errorf("kernel: band %d too small", c.Band)
	}
	if c.Band%2 != 0 {
		return fmt.Errorf("kernel: band %d must be even (paired nibble rows)", c.Band)
	}
	switch c.LaneWidth {
	case 0, 16, 64:
	default:
		return fmt.Errorf("kernel: lane width %d not supported (want 0, 16 or 64)", c.LaneWidth)
	}
	if c.LaneWidth == 16 && c.Traceback {
		return fmt.Errorf("kernel: the 16-bit narrow-lane kernel is score-only (traceback needs the full-width kernel)")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.PIM.Validate(); err != nil {
		return err
	}
	if c.Costs.CellScore <= 0 {
		return fmt.Errorf("kernel: cost table %q has no per-cell cost", c.Costs.Name)
	}
	_, err := c.allocWRAM()
	return err
}

// allocWRAM performs the boot-time scratchpad layout and returns it, or an
// overflow error identifying the geometry as infeasible.
func (c Config) allocWRAM() (*pim.WRAM, error) {
	w, err := pim.NewWRAM(c.PIM.WRAM, c.Geometry.Tasklets()*c.PIM.StackBytes)
	if err != nil {
		return nil, fmt.Errorf("kernel: %v", err)
	}
	lanes := c.Lanes(c.Band, c.Traceback)
	for pool := 0; pool < c.Geometry.Pools; pool++ {
		if _, err := w.Alloc(poolWRAM(c.Band, c.Traceback, lanes)); err != nil {
			return nil, fmt.Errorf("kernel: pool %d working set does not fit: %v", pool, err)
		}
	}
	return w, nil
}

// Pair describes one alignment staged in a DPU's MRAM: 2-bit packed
// sequences at the given offsets.
type Pair struct {
	ID         int // caller-chosen identifier, returned with the result
	AOff, ALen int // packed offset (bytes) and length (bases) of the query
	BOff, BLen int // same for the target
}

// Workload is the paper's equation (6) load estimate for a pair:
// (m+n)·w, the quantity the host's balancer uses.
func (p Pair) Workload(band int) int64 {
	return int64(p.ALen+p.BLen) * int64(band)
}

// PairResult is one alignment outcome returned to the host.
type PairResult struct {
	ID     int
	Score  int32
	InBand bool
	// Clipped reports that the band may have cut the optimal path off
	// (see core.Result.Clipped); the host's escalation ladder re-dispatches
	// clipped pairs at a wider band rather than trusting the score.
	Clipped bool
	// Overflowed reports that the 16-bit narrow-lane kernel hit a
	// saturation sticky bit on this pair; Score is meaningless and the
	// host re-dispatches the pair on the full-width kernel.
	Overflowed bool
	Cigar      []byte // serialized CIGAR text, nil for score-only kernels
	Cells      int64
	Steps      int
}

// FitGeometry shrinks the pool count of cfg's geometry until a kernel at
// the given band (and traceback mode) passes the WRAM admission check of
// Config.Validate, trading alignment-level parallelism for band width —
// the escalation ladder's way of booting wider-band kernels on the same
// device. The tasklets-per-pool shape is preserved. ok=false means even a
// single pool cannot hold the band's working set.
func FitGeometry(cfg Config, band int, traceback bool) (Geometry, bool) {
	for pools := cfg.Geometry.Pools; pools >= 1; pools-- {
		c := cfg
		c.Geometry.Pools = pools
		c.Band = band
		c.Traceback = traceback
		if c.Validate() == nil {
			return c.Geometry, true
		}
	}
	return Geometry{}, false
}

// FitsMRAM reports whether a single pair of the given base lengths can run
// at the given band on one DPU: packed sequences plus (for traceback
// kernels) the full BT scratch must fit the MRAM bank. It is the per-pair
// admission check the escalation ladder applies before re-dispatching a
// pair at a wider band; pairs that fail it skip straight to the next
// degradation rung.
func FitsMRAM(p pim.Config, alen, blen, band int, traceback bool) bool {
	need := seq.PackedSize(alen) + seq.PackedSize(blen)
	if traceback {
		need += (alen + blen + 1) * core.NibbleRowSize(band)
	}
	return need <= p.MRAM
}

// StagePair packs two sequences into the DPU's MRAM and returns the pair
// descriptor, the host-side encode step of §4.1.1. It is used by the host
// runtime and directly by tests.
func StagePair(d *pim.DPU, id int, a, b seq.Seq) (Pair, error) {
	pa, err := stageSeq(d, a)
	if err != nil {
		return Pair{}, err
	}
	pb, err := stageSeq(d, b)
	if err != nil {
		return Pair{}, err
	}
	return Pair{ID: id, AOff: pa, ALen: len(a), BOff: pb, BLen: len(b)}, nil
}

func stageSeq(d *pim.DPU, s seq.Seq) (int, error) {
	n := seq.PackedSize(len(s))
	off, err := d.MRAM.Alloc(n)
	if err != nil {
		return 0, err
	}
	seq.PackInto(d.MRAM.Bytes(off, n), s)
	return off, nil
}

// loadSeq re-expands a staged sequence from MRAM (the DPU-side 2-bit
// extraction; its instruction cost is part of the per-cell budget).
func loadSeq(d *pim.DPU, off, bases int) seq.Seq {
	p := seq.Packed{Bytes: d.MRAM.Bytes(off, seq.PackedSize(bases)), N: bases}
	return p.Unpack()
}
