package kernel

import (
	"math/rand"
	"sort"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func testConfig(traceback bool) Config {
	return Config{
		Geometry:  DefaultGeometry(),
		Band:      128,
		Params:    core.DefaultParams(),
		Costs:     pim.Asm,
		Traceback: traceback,
		PIM:       pim.DefaultConfig(),
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.Pools != 6 || g.TaskletsPerPool != 4 || g.Tasklets() != 24 {
		t.Errorf("default geometry %+v", g)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(true).Validate(); err != nil {
		t.Fatalf("paper geometry rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Geometry.Pools = 0 },
		func(c *Config) { c.Geometry = Geometry{13, 2} }, // 26 > 24 tasklets
		func(c *Config) { c.Band = 1 },
		func(c *Config) { c.Band = 127 },
		func(c *Config) { c.Params.Match = 0 },
		func(c *Config) { c.Costs.CellScore = 0 },
		func(c *Config) { c.PIM.Ranks = 0 },
	}
	for i, mutate := range bad {
		c := testConfig(true)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAlignmentLevelParallelismCannotFillPipeline(t *testing.T) {
	// §4.2.3: strategy (1) — one alignment per tasklet — runs out of WRAM
	// before reaching the ≥11 tasklets needed for full pipeline usage,
	// which is why the paper uses pooled tasklets.
	feasible := 0
	for tasklets := 1; tasklets <= pim.MaxTasklets; tasklets++ {
		c := testConfig(true)
		c.Geometry = Geometry{Pools: tasklets, TaskletsPerPool: 1}
		if c.Validate() == nil {
			feasible = tasklets
		}
	}
	if feasible >= pim.PipelineReentry {
		t.Errorf("strategy-1 fits %d tasklets; the WRAM budget should cap it below %d",
			feasible, pim.PipelineReentry)
	}
	if feasible < 6 {
		t.Errorf("strategy-1 caps at %d tasklets; expected ~8-10 per the paper", feasible)
	}
	// The hybrid 6x4 geometry must fit.
	if err := testConfig(true).Validate(); err != nil {
		t.Errorf("hybrid geometry rejected: %v", err)
	}
}

func TestStagePairRoundTrip(t *testing.T) {
	cfg := testConfig(false)
	d := cfg.PIM.NewDPU(0)
	rng := rand.New(rand.NewSource(1))
	a, b := seq.Random(rng, 1001), seq.Random(rng, 997)
	pair, err := StagePair(d, 7, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pair.ID != 7 || pair.ALen != 1001 || pair.BLen != 997 {
		t.Errorf("pair = %+v", pair)
	}
	if !loadSeq(d, pair.AOff, pair.ALen).Equal(a) {
		t.Error("query corrupted through MRAM staging")
	}
	if !loadSeq(d, pair.BOff, pair.BLen).Equal(b) {
		t.Error("target corrupted through MRAM staging")
	}
}

func TestPairWorkload(t *testing.T) {
	p := Pair{ALen: 1000, BLen: 500}
	if got := p.Workload(128); got != 1500*128 {
		t.Errorf("workload = %d", got)
	}
}

func stageBatch(t *testing.T, d *pim.DPU, n, length int, err float64, seed int64) []Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		a := seq.Random(rng, length+rng.Intn(length/4+1))
		b := seq.UniformErrors(err).Apply(rng, a)
		p, errS := StagePair(d, i, a, b)
		if errS != nil {
			t.Fatal(errS)
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func TestRunMatchesReferenceAligner(t *testing.T) {
	cfg := testConfig(true)
	d := cfg.PIM.NewDPU(0)
	pairs := stageBatch(t, d, 13, 400, 0.1, 2)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(out.Results), len(pairs))
	}
	byID := map[int]PairResult{}
	for _, r := range out.Results {
		byID[r.ID] = r
	}
	for _, p := range pairs {
		r, ok := byID[p.ID]
		if !ok {
			t.Fatalf("pair %d missing from results", p.ID)
		}
		a := loadSeq(d, p.AOff, p.ALen)
		b := loadSeq(d, p.BOff, p.BLen)
		want := core.AdaptiveBandAlign(a, b, cfg.Params, cfg.Band)
		if r.Score != want.Score || r.InBand != want.InBand {
			t.Errorf("pair %d: kernel %d/%v, reference %d/%v", p.ID, r.Score, r.InBand, want.Score, want.InBand)
		}
		if string(r.Cigar) != want.Cigar.String() {
			t.Errorf("pair %d: cigar mismatch", p.ID)
		}
	}
}

func TestRunScoreOnlyOmitsCigar(t *testing.T) {
	cfg := testConfig(false)
	d := cfg.PIM.NewDPU(0)
	pairs := stageBatch(t, d, 6, 300, 0.08, 3)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Results {
		if r.Cigar != nil {
			t.Errorf("pair %d: score-only kernel produced a cigar", r.ID)
		}
		if r.Score <= core.NegInf/2 {
			t.Errorf("pair %d: unexpected band failure", r.ID)
		}
	}
}

func TestRunPipelineUtilization(t *testing.T) {
	// The paper reports 95-99% utilisation at 6x4 across datasets.
	cfg := testConfig(true)
	d := cfg.PIM.NewDPU(0)
	pairs := stageBatch(t, d, 12, 800, 0.1, 4)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if u := out.Stats.Utilization(); u < 0.90 || u > 1.0 {
		t.Errorf("6x4 utilization = %.3f, want ~0.95-0.99", u)
	}

	// A single 4-tasklet pool cannot exceed 4/11.
	cfg.Geometry = Geometry{Pools: 1, TaskletsPerPool: 4}
	d2 := cfg.PIM.NewDPU(1)
	pairs2 := stageBatch(t, d2, 12, 800, 0.1, 4)
	out2, err := Run(d2, cfg, pairs2)
	if err != nil {
		t.Fatal(err)
	}
	if u := out2.Stats.Utilization(); u > 4.0/11+0.02 {
		t.Errorf("1x4 utilization = %.3f, cannot exceed %v", u, 4.0/11)
	}
	if out2.Stats.Cycles <= out.Stats.Cycles {
		t.Error("under-threaded geometry should be slower")
	}
}

func TestRunAsmFasterThanPureC(t *testing.T) {
	base := testConfig(true)
	dAsm := base.PIM.NewDPU(0)
	pairsAsm := stageBatch(t, dAsm, 8, 600, 0.1, 5)
	outAsm, err := Run(dAsm, base, pairsAsm)
	if err != nil {
		t.Fatal(err)
	}
	cfgC := base
	cfgC.Costs = pim.PureC
	dC := cfgC.PIM.NewDPU(1)
	pairsC := stageBatch(t, dC, 8, 600, 0.1, 5)
	outC, err := Run(dC, cfgC, pairsC)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(outC.Stats.Cycles) / float64(outAsm.Stats.Cycles)
	if speedup < 1.3 || speedup > 1.8 {
		t.Errorf("asm speedup = %.2f, want in the Table 7 range (1.36-1.69)", speedup)
	}
}

func TestRunMRAMOverflowDetected(t *testing.T) {
	cfg := testConfig(true)
	cfg.PIM.MRAM = 1 << 16 // a 64 KB bank cannot hold the BT structure
	d := cfg.PIM.NewDPU(0)
	rng := rand.New(rand.NewSource(6))
	a := seq.Random(rng, 2000)
	b := seq.UniformErrors(0.05).Apply(rng, a)
	pair, err := StagePair(d, 0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, cfg, []Pair{pair}); err == nil {
		t.Error("BT structure larger than MRAM accepted")
	}
}

func TestRunEmptyBatch(t *testing.T) {
	cfg := testConfig(true)
	d := cfg.PIM.NewDPU(0)
	out, err := Run(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 {
		t.Error("results from empty batch")
	}
}

func TestRunLoadBalancesPools(t *testing.T) {
	// With many equal pairs, LPT should spread them evenly: the DPU time
	// should be far below P times a single pool's share.
	cfg := testConfig(false)
	cfg.Geometry = Geometry{Pools: 4, TaskletsPerPool: 4}
	d := cfg.PIM.NewDPU(0)
	pairs := stageBatch(t, d, 16, 500, 0.05, 7)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	// All pools busy: utilization close to min(16/11,1).
	if u := out.Stats.Utilization(); u < 0.85 {
		t.Errorf("utilization %.3f suggests pools were starved", u)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(true)
	run := func() (int64, []PairResult) {
		d := cfg.PIM.NewDPU(0)
		pairs := stageBatch(t, d, 5, 300, 0.1, 8)
		out, err := Run(d, cfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].ID < out.Results[j].ID })
		return out.Stats.Cycles, out.Results
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Errorf("cycles differ: %d vs %d", c1, c2)
	}
	for i := range r1 {
		if r1[i].Score != r2[i].Score || string(r1[i].Cigar) != string(r2[i].Cigar) {
			t.Errorf("result %d differs between runs", i)
		}
	}
}

func TestPoolWRAMBudgetShape(t *testing.T) {
	// Traceback kernels need the BT flush buffers; score-only kernels can
	// fit the same geometry in less WRAM.
	if poolWRAM(128, true, 64) <= poolWRAM(128, false, 64) {
		t.Error("traceback pool should cost more WRAM")
	}
	// Budget grows linearly with the band.
	if poolWRAM(256, true, 64)-poolWRAM(128, true, 64) != 4*4*128 {
		t.Error("band scaling of the pool working set is wrong")
	}
	// Narrow lanes halve the per-cell cost of the working set, which is
	// what lets FitGeometry admit wider bands at the same pool count.
	if poolWRAM(256, false, 64)-poolWRAM(256, false, 16) != 4*2*256 {
		t.Error("narrow lanes should halve the lane bytes")
	}
}

func TestWideBandRejectedAtPaperGeometry(t *testing.T) {
	// §3.3/§4.2.1: the WRAM working set scales with the band; at the 6x4
	// geometry a 512-cell traceback band no longer fits the 64 KB
	// scratchpad, while the score-only kernel still does at 256.
	cfg := testConfig(true)
	cfg.Band = 512
	if err := cfg.Validate(); err == nil {
		t.Error("6x4 traceback kernel at band 512 should overflow WRAM")
	}
	cfg = testConfig(false)
	cfg.Band = 256
	if err := cfg.Validate(); err != nil {
		t.Errorf("6x4 score-only kernel at band 256 rejected: %v", err)
	}
}

func TestMRAMPeakReported(t *testing.T) {
	cfg := testConfig(true)
	d := cfg.PIM.NewDPU(0)
	pairs := stageBatch(t, d, 6, 400, 0.08, 11)
	out, err := Run(d, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if out.MRAMPeak <= d.MRAM.Used() {
		t.Errorf("peak %d should exceed staged bytes %d (BT scratch)", out.MRAMPeak, d.MRAM.Used())
	}
	if out.MRAMPeak > cfg.PIM.MRAM {
		t.Errorf("peak %d beyond capacity yet Run succeeded", out.MRAMPeak)
	}
}

func TestScoreOnlyCheaperThanTraceback(t *testing.T) {
	run := func(tb bool) int64 {
		cfg := testConfig(tb)
		d := cfg.PIM.NewDPU(0)
		pairs := stageBatch(t, d, 8, 500, 0.08, 12)
		out, err := Run(d, cfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		return out.Stats.Cycles
	}
	score, tb := run(false), run(true)
	if score >= tb {
		t.Errorf("score-only %d cycles not cheaper than traceback %d", score, tb)
	}
	// The gap is the Table 7 16S-vs-others mechanism: roughly the
	// CellTB/CellScore ratio plus the traceback walk.
	if ratio := float64(tb) / float64(score); ratio < 1.1 || ratio > 2.5 {
		t.Errorf("traceback/score cycle ratio %.2f implausible", ratio)
	}
}

func TestFitGeometryTradesPoolsForBand(t *testing.T) {
	cfg := testConfig(true)
	// The paper geometry admits the default band as-is.
	if g, ok := FitGeometry(cfg, cfg.Band, true); !ok || g != cfg.Geometry {
		t.Fatalf("FitGeometry(%d) = %+v, %v; want unchanged %+v", cfg.Band, g, ok, cfg.Geometry)
	}
	// Wider bands must shrink the pool count, never the pool shape, and the
	// result must pass the WRAM admission check it claims to satisfy.
	prevPools := cfg.Geometry.Pools + 1
	grew := false
	for band := cfg.Band * 2; band <= 2048; band *= 2 {
		g, ok := FitGeometry(cfg, band, true)
		if !ok {
			break
		}
		grew = true
		if g.TaskletsPerPool != cfg.Geometry.TaskletsPerPool {
			t.Fatalf("band %d: pool shape changed to %+v", band, g)
		}
		if g.Pools > prevPools {
			t.Fatalf("band %d: pools grew from %d to %d", band, prevPools, g.Pools)
		}
		prevPools = g.Pools
		c := cfg
		c.Geometry, c.Band = g, band
		if err := c.Validate(); err != nil {
			t.Fatalf("band %d: admitted geometry %+v fails validation: %v", band, g, err)
		}
	}
	if !grew {
		t.Fatal("no band beyond the default was admissible; ladder would be empty")
	}
	// Some band is too wide for even one pool.
	if _, ok := FitGeometry(cfg, 1<<20, true); ok {
		t.Fatal("absurd band admitted")
	}
}

func TestFitsMRAM(t *testing.T) {
	p := pim.DefaultConfig()
	if !FitsMRAM(p, 10000, 10000, 1024, true) {
		t.Error("routine long-read pair rejected")
	}
	// BT scratch dominates: (m+n+1)*band/2 bytes must exceed 64 MB here.
	if FitsMRAM(p, 80_000_000, 80_000_000, 1024, true) {
		t.Error("BT scratch beyond the MRAM bank accepted")
	}
	// The same monster pair is fine score-only (no BT).
	if !FitsMRAM(p, 80_000_000, 80_000_000, 1024, false) {
		t.Error("score-only admission should ignore BT scratch")
	}
}
