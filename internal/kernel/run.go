package kernel

import (
	"fmt"
	"sort"

	"pimnw/internal/core"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// Histogram boundaries for the kernel's registry metrics: effective band
// width (cells per computed anti-diagonal, which dips below the configured
// w near the DP corners) and per-DPU pipeline utilization.
var (
	bandWidthBuckets   = []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	utilizationBuckets = []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
)

// DPUOutcome is everything one DPU produces for a batch: the alignment
// results and the simulated execution statistics.
type DPUOutcome struct {
	Results []PairResult
	Stats   pim.DPUStats
	// MRAMPeak is the modelled peak MRAM consumption: staged sequences
	// plus the concurrent per-pool BT scratch regions.
	MRAMPeak int
	// Checksum covers the result payload as it left the DPU. The host
	// recomputes it with ChecksumResults over the results it received; a
	// mismatch means the MRAM->host transfer was corrupted and the
	// batch's pairs must be redispatched.
	Checksum uint64
}

// ChecksumResults hashes a result list (FNV-1a over every field of every
// result) — the per-batch transfer checksum of the host's recovery
// protocol. Both sides of the simulated bus call it: the kernel to stamp
// DPUOutcome.Checksum, the host to verify what it collected.
func ChecksumResults(rs []PairResult) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte8 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, r := range rs {
		byte8(uint64(r.ID))
		byte8(uint64(uint32(r.Score)))
		flags := uint64(0)
		if r.InBand {
			flags |= 1
		}
		if r.Clipped {
			flags |= 2
		}
		if r.Overflowed {
			flags |= 4
		}
		byte8(flags)
		byte8(uint64(r.Cells))
		byte8(uint64(r.Steps))
		byte8(uint64(len(r.Cigar)))
		for _, b := range r.Cigar {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

// Run executes the kernel on one DPU: the pairs staged in the DPU's MRAM
// are distributed over the P pools (LPT, mirroring the host's balancing
// heuristic at pool granularity), each pool's tasklets compute the
// adaptive-banded DP anti-diagonal by anti-diagonal, the master tasklet
// streams BT rows to MRAM and performs the sequential traceback, and the
// whole schedule is priced by the fluid pipeline/DMA simulator.
func Run(d *pim.DPU, cfg Config, pairs []Pair) (DPUOutcome, error) {
	var out DPUOutcome
	if err := cfg.Validate(); err != nil {
		return out, err
	}
	// An injected crash aborts the launch before any work: the host's SDK
	// call returns an error instead of results.
	if d.Fault.Kind == pim.FaultCrash {
		return out, &pim.FaultError{DPU: d.ID, Kind: pim.FaultCrash}
	}
	g := cfg.Geometry
	run, err := pim.NewDPURun(g.Tasklets())
	if err != nil {
		return out, err
	}

	// LPT assignment of pairs to pools.
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return pairs[order[x]].Workload(cfg.Band) > pairs[order[y]].Workload(cfg.Band)
	})
	poolPairs := make([][]int, g.Pools)
	poolLoad := make([]int64, g.Pools)
	for _, idx := range order {
		best := 0
		for p := 1; p < g.Pools; p++ {
			if poolLoad[p] < poolLoad[best] {
				best = p
			}
		}
		poolPairs[best] = append(poolPairs[best], idx)
		poolLoad[best] += pairs[idx].Workload(cfg.Band)
	}

	out.Results = make([]PairResult, 0, len(pairs))
	rowBytes := core.NibbleRowSize(cfg.Band)
	seqBytesStaged := d.MRAM.Used()
	btPeakPerPool := make([]int, g.Pools)

	// One scratch arena serves the whole launch: pools run sequentially in
	// the simulation, and the arena (the "four integer arrays of size w" in
	// each pool's WRAM, §4.2.1) makes repeated alignments allocation-free.
	scratch := core.GetScratch()
	defer core.PutScratch(scratch)

	for pool := 0; pool < g.Pools; pool++ {
		base := pool * g.TaskletsPerPool
		master := run.Traces[base]
		workers := run.Traces[base : base+g.TaskletsPerPool]
		group := int64(pool)
		for _, idx := range poolPairs[pool] {
			pr, btBytes, err := alignOne(d, cfg, scratch, pairs[idx], rowBytes, master, workers, group)
			if err != nil {
				return out, err
			}
			if btBytes > btPeakPerPool[pool] {
				btPeakPerPool[pool] = btBytes
			}
			out.Results = append(out.Results, pr)
		}
	}

	// MRAM pressure: in the real device the P pools hold their BT scratch
	// regions concurrently; model the peak as the sum of per-pool maxima.
	peak := seqBytesStaged
	for _, b := range btPeakPerPool {
		peak += b
	}
	out.MRAMPeak = peak
	if peak > d.MRAM.Capacity() {
		return out, fmt.Errorf("kernel: modelled MRAM peak %d exceeds the %d-byte bank (band %d too large for this batch)",
			peak, d.MRAM.Capacity(), cfg.Band)
	}

	stats, err := pim.FluidSimulate(run)
	if err != nil {
		return out, err
	}
	// Stall/slowdown faults inflate the modelled execution time: the DPU
	// still produces correct results, just (much) later — it is the host's
	// batch deadline that turns a stall into a failure.
	if k := d.Fault.Kind; (k == pim.FaultStall || k == pim.FaultSlow) && d.Fault.Factor > 1 {
		stats.Cycles = int64(float64(stats.Cycles) * d.Fault.Factor)
	}
	out.Stats = stats
	// Stamp the transfer checksum over the true results, then apply any
	// injected transfer corruption so the host's verification catches it.
	out.Checksum = ChecksumResults(out.Results)
	if d.Fault.Kind == pim.FaultCorrupt && len(out.Results) > 0 {
		r := &out.Results[len(out.Results)/2]
		r.Score ^= 1 << 30
		if len(r.Cigar) > 0 {
			r.Cigar[len(r.Cigar)/2] ^= 0xff
		}
	}
	if reg := obs.Default(); reg != nil {
		reg.Counter("pim_dpu_runs_total").Add(1)
		reg.Histogram("pim_dpu_utilization", utilizationBuckets).Observe(stats.Utilization())
	}
	return out, nil
}

// alignOne computes one pair on a pool and appends its execution trace.
func alignOne(d *pim.DPU, cfg Config, scratch *core.Scratch, pair Pair, rowBytes int,
	master *pim.TaskletTrace, workers []*pim.TaskletTrace, group int64) (PairResult, int, error) {

	a := loadSeq(d, pair.AOff, pair.ALen)
	b := loadSeq(d, pair.BOff, pair.BLen)

	// Lane-width dispatch: the traceback kernel is always full-width; the
	// score-only kernel pins the engine the resolved lane width names, so
	// a narrow overflow surfaces as a flagged result for the host ladder
	// instead of silently falling back on-device.
	var res core.Result
	switch {
	case cfg.Traceback:
		res = scratch.AdaptiveBandAlign(a, b, cfg.Params, cfg.Band)
	case cfg.Lanes(cfg.Band, cfg.Traceback) == 16:
		res = scratch.AdaptiveBandScoreNarrow(a, b, cfg.Params, cfg.Band)
	default:
		res = scratch.AdaptiveBandScoreWide(a, b, cfg.Params, cfg.Band)
	}

	pr := PairResult{ID: pair.ID, Score: res.Score, InBand: res.InBand,
		Clipped: res.Clipped, Overflowed: res.Overflowed, Cells: res.Cells, Steps: res.Steps}
	if cfg.Traceback && res.Cigar != nil {
		pr.Cigar = []byte(res.Cigar.String())
	}

	// BT scratch in MRAM: (steps+1) nibble rows. Allocated for real so the
	// capacity constraint of §3.3 is enforced, released after traceback.
	btBytes := 0
	if cfg.Traceback {
		btBytes = (res.Steps + 1) * rowBytes
		mark := d.MRAM.Mark()
		if _, err := d.MRAM.Alloc(btBytes); err != nil {
			return pr, 0, fmt.Errorf("kernel: BT scratch for pair %d: %v", pair.ID, err)
		}
		d.MRAM.Release(mark)
	}

	emitTrace(cfg, pair, res, len(pr.Cigar), rowBytes, master, workers, group)

	// Per-alignment metrics. The nil-registry path is the no-op fast path:
	// one pointer load and a branch, zero allocations (asserted in
	// internal/obs's overhead tests), so the simulation hot loop is
	// unaffected when metrics are off.
	if reg := obs.Default(); reg != nil {
		reg.Counter("pim_alignments_total").Add(1)
		reg.Counter("pim_cells_total").Add(res.Cells)
		reg.Counter("pim_steps_total").Add(int64(res.Steps))
		if res.Steps > 0 {
			reg.Histogram("pim_band_width_cells", bandWidthBuckets).
				Observe(float64(res.Cells) / float64(res.Steps))
		}
	}
	return pr, btBytes, nil
}

// emitTrace prices the alignment: the DP phase in BT-flush intervals, then
// the master-only traceback, with pool barriers fencing the phases.
func emitTrace(cfg Config, pair Pair, res core.Result, cigarLen, rowBytes int,
	master *pim.TaskletTrace, workers []*pim.TaskletTrace, group int64) {

	t := int64(len(workers))
	costs := cfg.Costs
	cellCost := costs.CellScore
	if cfg.Traceback {
		cellCost = costs.CellTB
	}
	master.Exec(costs.AlignSetup)

	// Rows flushed per interval: half of the double buffer.
	flushSteps := (btBufferBytes / 2) / rowBytes
	if flushSteps < 1 {
		flushSteps = 1
	}
	seqBytes := int64((pair.ALen+3)/4 + (pair.BLen+3)/4)
	steps := int64(res.Steps)
	cells := res.Cells
	seqLeft := seqBytes
	stepsLeft := steps
	cellsLeft := cells
	for stepsLeft > 0 {
		h := int64(flushSteps)
		if h > stepsLeft {
			h = stepsLeft
		}
		cellsHere := cellsLeft * h / stepsLeft
		seqHere := seqLeft * h / stepsLeft
		stepsLeft -= h
		cellsLeft -= cellsHere
		seqLeft -= seqHere

		share := cellsHere / t
		for i, w := range workers {
			own := share
			if i == 0 {
				own += cellsHere % t // master absorbs the remainder
			}
			w.Exec(own*cellCost + h*costs.StepTasklet)
		}
		master.Exec(h * costs.StepMaster)
		master.DMARead(seqHere)
		if cfg.Traceback {
			master.DMAWrite(h * int64(rowBytes))
		}
		if t > 1 {
			for _, w := range workers {
				w.Barrier(group)
			}
		}
	}

	// Sequential traceback on the master (§4.2.2), streaming BT rows back
	// from MRAM in engine-sized chunks.
	if cfg.Traceback {
		btBytes := (steps + 1) * int64(rowBytes)
		cols := int64(cigarLen) // proportional to alignment columns
		for btBytes > 0 {
			chunk := int64(pim.DMAMaxBytes)
			if chunk > btBytes {
				chunk = btBytes
			}
			master.DMARead(chunk)
			colsHere := cols * chunk / ((steps+1)*int64(rowBytes) + 1)
			master.Exec(colsHere * costs.TracebackCol)
			btBytes -= chunk
		}
	}
	master.DMAWrite(int64(16 + cigarLen))
	if t > 1 {
		for _, w := range workers {
			w.Barrier(group)
		}
	}
}
