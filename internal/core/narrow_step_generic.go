//go:build !amd64

package core

// narrowStepWords runs the narrow engine's interior word loop; on
// platforms without an assembly kernel it is the portable SWAR loop.
func narrowStepWords(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub []uint64,
	gA, gB, d, dd int, eV, oeV, nmV, gbV uint64) uint64 {
	return narrowStepWordsGo(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub,
		gA, gB, d, dd, eV, oeV, nmV, gbV)
}
