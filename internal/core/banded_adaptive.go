package core

import (
	"pimnw/internal/seq"
)

// Adaptive banded Gotoh (§3.4, after Suzuki & Kasahara): a window of w
// cells slides along the anti-diagonals; after each anti-diagonal the
// window shifts right or down depending on the scores at its extremities,
// following the most promising path. This is the formulation the paper
// implements on the DPU: the same accuracy is reached with a band 2–4×
// smaller than the static band (Table 1), and the extra branch in the
// critical loop is free on the DPU (no speculative execution).
//
// Window bookkeeping: on anti-diagonal t the window covers matrix rows
// i ∈ [off[t], off[t]+w), cell index p ↔ i = off[t]+p, j = t−i. The shift
// decision d = off[t+1]−off[t] ∈ {0 (right), 1 (down)} gives the
// predecessor index mapping used below:
//
//	vertical   (i−1, j)   → anti-diagonal t,   index p+d−1
//	horizontal (i,   j−1) → anti-diagonal t,   index p+d
//	diagonal   (i−1, j−1) → anti-diagonal t−1, index p+d+d′−1
//
// where d′ is the previous step's shift.
//
// The engine below is the word-packed, zero-allocation formulation of that
// recurrence — the Go analogue of the paper's hand-tuned §4.2.4 kernel.
// Three mechanics carry the speedup:
//
//  1. Sentinel-padded lanes. The DP lanes live in a Scratch arena as
//     (w+2)-sized arrays with cell p at index p+1 and permanent NegInf
//     sentinels at indices 0 and w+1. All predecessor indices above land
//     in [0, w+1] for d, d′ ∈ {0,1}, so the window-edge guards of the
//     scalar loop become unconditional loads that read the sentinel —
//     bit-identical, since a guarded out-of-window load also produced
//     NegInf.
//
//  2. A word-packed comparator. Per anti-diagonal, fillSub consumes 32
//     bases per uint64 from the 2-bit packed operands (query forward,
//     target reversed so both advance with stride +1 along the
//     anti-diagonal) via seq.MatchMask — XOR + fold + mask, the cmpb4
//     idea of §4.2.4 — and expands the mask into precomputed substitution
//     scores, so the cell loop is a branchless select with no base loads.
//
//  3. Loop specialisation. The interior cell loop exists twice,
//     adaptiveStepScore and adaptiveStepTB, so the score-only path
//     carries no per-cell traceback branch and the matrix-boundary cases
//     (i == 0, j == 0) are peeled out of the loop entirely: the interior
//     range [pLo, pHi] is computed per anti-diagonal in O(1).
//
// adaptiveBandRef (engine_ref.go) preserves the original scalar loop; the
// differential tests and FuzzEngineEquivalence pin this engine to it bit
// for bit.

// AdaptiveVariant exposes the heuristic's knobs for the ablation study;
// the zero value disables everything, DefaultVariant is what the paper's
// kernel (and every other entry point here) uses.
type AdaptiveVariant struct {
	// SteerTies breaks shift-decision ties by steering the window centre
	// toward the (m,n) corner diagonal. Without it, ties default to a
	// right shift and length-skewed pairs rely entirely on the window
	// clamps, typically crossing the skew too late for the optimal path.
	SteerTies bool
}

// DefaultVariant is the production heuristic.
func DefaultVariant() AdaptiveVariant { return AdaptiveVariant{SteerTies: true} }

// AdaptiveBandScore computes the adaptive-banded affine score with O(w)
// working memory — the "four integer arrays of size w" of §4.2.1. This
// convenience entry point borrows a Scratch from the package pool; hot
// callers aligning many pairs should hold their own (see Scratch).
func AdaptiveBandScore(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res := s.AdaptiveBandScore(a, b, p, w)
	PutScratch(s)
	return res
}

// AdaptiveBandAlign additionally records the 4-bit/cell traceback structure
// ((m+n+1)·w/2 bytes, the BT array of §4.2.2) and emits the CIGAR.
func AdaptiveBandAlign(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res, _ := s.adaptiveBand(a, b, p, w, true, DefaultVariant())
	PutScratch(s)
	return res
}

// AdaptiveBandScoreVariant is AdaptiveBandScore under an explicit heuristic
// variant (ablation studies).
func AdaptiveBandScoreVariant(a, b seq.Seq, p Params, w int, v AdaptiveVariant) Result {
	s := GetScratch()
	res, _ := s.adaptiveBand(a, b, p, w, false, v)
	PutScratch(s)
	return res
}

// AdaptiveBandPath is AdaptiveBandScore exposing the window offset of every
// anti-diagonal, used by the band-geometry visualisation (Figure 3) and the
// ablation experiments. The returned slice is the caller's to keep.
func AdaptiveBandPath(a, b seq.Seq, p Params, w int) (Result, []int32) {
	s := GetScratch()
	res, off := s.adaptiveBand(a, b, p, w, false, DefaultVariant())
	out := append([]int32(nil), off...) // off aliases the pooled arena
	PutScratch(s)
	return res, out
}

// AdaptiveBandScore is the explicit-scratch form of the package-level
// function: zero engine allocations once s has warmed to the problem size.
// When the 16-bit narrow-lane engine has headroom for (p, w) it runs
// first, falling back to the full-width engine on a saturation sticky bit;
// a non-overflowed narrow result is bit-identical to the wide one, so the
// fast path is invisible to callers. Use AdaptiveBandScoreWide or
// AdaptiveBandScoreNarrow to pin an engine (the DPU kernel model does, so
// that overflow escalates through the host ladder instead of silently
// re-running here).
func (s *Scratch) AdaptiveBandScore(a, b seq.Seq, p Params, w int) Result {
	if NarrowFits(p, w) {
		if res, ok := s.adaptiveBandNarrow(a, b, p, w, DefaultVariant()); ok {
			return res
		}
	}
	res, _ := s.adaptiveBand(a, b, p, w, false, DefaultVariant())
	return res
}

// AdaptiveBandAlign is the explicit-scratch form of AdaptiveBandAlign; only
// the returned CIGAR is allocated.
func (s *Scratch) AdaptiveBandAlign(a, b seq.Seq, p Params, w int) Result {
	res, _ := s.adaptiveBand(a, b, p, w, true, DefaultVariant())
	return res
}

// AdaptiveBandScoreVariant is the explicit-scratch form of the variant
// entry point.
func (s *Scratch) AdaptiveBandScoreVariant(a, b seq.Seq, p Params, w int, v AdaptiveVariant) Result {
	res, _ := s.adaptiveBand(a, b, p, w, false, v)
	return res
}

// adaptiveBand runs the packed engine inside the arena. The returned
// offset slice aliases s and is only valid until the next call on s.
func (s *Scratch) adaptiveBand(a, b seq.Seq, p Params, w int, traceback bool, variant AdaptiveVariant) (Result, []int32) {
	m, n := len(a), len(b)
	if w < 2 {
		w = 2
	}
	res := Result{Steps: m + n}
	if m == 0 && n == 0 {
		res.InBand = true
		s.off = growI32(s.off, 1)
		s.off[0] = 0
		return res, s.off
	}

	nDiag := m + n + 1
	s.off = growI32(s.off, nDiag)
	off := s.off
	off[0] = 0

	// Sentinel-padded lanes: cell p at index p+1, NegInf at 0 and w+1.
	lanes := w + 2
	s.h0 = growI32(s.h0, lanes)
	s.h1 = growI32(s.h1, lanes)
	s.h2 = growI32(s.h2, lanes)
	s.i0 = growI32(s.i0, lanes)
	s.i1 = growI32(s.i1, lanes)
	s.d0 = growI32(s.d0, lanes)
	s.d1 = growI32(s.d1, lanes)
	hPrev, hCur, hNext := s.h0, s.h1, s.h2
	iCur, iNext := s.i0, s.i1
	dCur, dNext := s.d0, s.d1
	for q := 0; q < lanes; q++ {
		hPrev[q], hCur[q], hNext[q] = NegInf, NegInf, NegInf
		iCur[q], iNext[q] = NegInf, NegInf
		dCur[q], dNext[q] = NegInf, NegInf
	}
	hCur[1] = 0 // cell (0,0): off[0] = 0
	res.Cells = 1

	s.sub = growI32(s.sub, w)
	s.org = growU8(s.org, w)
	pa, pb := s.packOperands(a, b)

	var bt []byte
	rowBytes := NibbleRowSize(w)
	if traceback {
		// Strictly lazy: only traceback calls size (and zero) the arena.
		bt = s.btBuf(nDiag * rowBytes)
	}

	openCost := p.GapOpen + p.GapExt
	gapExt := p.GapExt
	dPrevShift := 0  // d′: shift taken from t-1 to t
	maxPot := NegInf // best escaping-path bound seen (clip certificate)

	for t := 0; t < m+n; t++ {
		// Decide the shift from the extremities of the current window.
		d := int(chooseShift(hCur[1], hCur[w], off[t], t, m, n, w, variant))
		// Clamp so the window keeps intersecting the valid cell range of
		// anti-diagonal t+1: i ∈ [loI, hiI].
		loI := t + 1 - n
		if loI < 0 {
			loI = 0
		}
		hiI := t + 1
		if hiI > m {
			hiI = m
		}
		if int(off[t])+d+w-1 < loI {
			d = 1
		}
		if int(off[t])+d > hiI {
			d = 0
		}
		// Clip certificate: any path that leaves the window does so through
		// the edge cell the shift abandons (a window cell's in-window
		// neighbours stay in-window except at the moving edge). Bound every
		// such path by that cell's score plus the best it could still
		// collect outside; if no abandoned-edge potential ever beats the
		// final score, the banded result is provably optimal.
		{
			o := int(off[t])
			if d == 1 {
				// The top cell (o, t-o) drops out of the window: a path can
				// leave through it while column t-o+1 ≤ n exists.
				if j := t - o; j >= 0 && j < n && o <= m && hCur[1] > NegInf/2 {
					if pot := hCur[1] + escapeBound(p, m-o, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			} else {
				// The bottom cell (o+w-1, t-o-w+1) drops out: a path can
				// leave through it while row o+w ≤ m exists.
				i := o + w - 1
				if j := t - i; i >= 0 && i < m && j >= 0 && j <= n && hCur[w] > NegInf/2 {
					if pot := hCur[w] + escapeBound(p, m-i, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			}
		}

		o := int(off[t]) + d
		off[t+1] = int32(o)

		var btRow NibbleRow
		if traceback {
			btRow = bt[(t+1)*rowBytes : (t+2)*rowBytes]
		}

		// Interior range: window cells of anti-diagonal t+1 with i ≥ 1 and
		// j ≥ 1 that lie inside the matrix. The clamps above guarantee
		// pLo ≤ w-1 and pHi ≥ -1, so the flank fills below stay in bounds.
		pLo := 0
		if v := 1 - o; v > pLo {
			pLo = v
		}
		if v := t + 1 - n - o; v > pLo {
			pLo = v
		}
		pHi := w - 1
		if v := m - o; v < pHi {
			pHi = v
		}
		if v := t - o; v < pHi {
			pHi = v
		}

		// Out-of-matrix flanks of the window become NegInf, exactly as the
		// scalar loop's bounds guard produced.
		for q := 0; q < pLo; q++ {
			hNext[q+1], iNext[q+1], dNext[q+1] = NegInf, NegInf, NegInf
		}
		for q := pHi + 1; q < w; q++ {
			hNext[q+1], iNext[q+1], dNext[q+1] = NegInf, NegInf, NegInf
		}

		// Cells metric: every in-matrix window cell, boundaries included.
		cLo := 0
		if v := t + 1 - n - o; v > cLo {
			cLo = v
		}
		cHi := w - 1
		if v := m - o; v < cHi {
			cHi = v
		}
		if v := t + 1 - o; v < cHi {
			cHi = v
		}
		if cHi >= cLo {
			res.Cells += int64(cHi - cLo + 1)
		}

		// Matrix boundaries (equations 3–5, base cases), peeled out of the
		// interior loop. i == 0 can only be window cell 0 (o == 0); j == 0
		// is cell t+1-o. Both always lie outside [pLo, pHi].
		if o == 0 && t+1 <= n {
			v := -p.GapCost(t + 1)
			hNext[1], dNext[1], iNext[1] = v, v, NegInf
			if traceback {
				btRow.Set(0, MakeBTNibble(btFromD, false, t+1 > 1))
			}
		}
		if q := t + 1 - o; q >= 0 && q < w && t+1 <= m {
			v := -p.GapCost(t + 1)
			hNext[q+1], iNext[q+1], dNext[q+1] = v, v, NegInf
			if traceback {
				btRow.Set(q, MakeBTNibble(btFromI, t+1 > 1, false))
			}
		}

		if pLo <= pHi {
			// Substitution scores for the whole interior span in one pass:
			// a index o+p-1 and reversed-b index (n-1-t)+o+p both advance
			// with stride +1 as p does.
			fillSub(s.sub, s.org, pa, pb, o+pLo-1, n-1-t+o+pLo, pHi-pLo+1, p.Match, p.Mismatch, traceback)
			dd := d + dPrevShift
			if traceback {
				adaptiveStepTB(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, s.sub, s.org, btRow, pLo, pHi, d, dd, openCost, gapExt)
			} else {
				adaptiveStepScore(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, s.sub, pLo, pHi, d, dd, openCost, gapExt)
			}
		}

		hPrev, hCur, hNext = hCur, hNext, hPrev
		iCur, iNext = iNext, iCur
		dCur, dNext = dNext, dCur
		dPrevShift = d
	}

	pFinal := m - int(off[m+n])
	if pFinal < 0 || pFinal >= w || hCur[pFinal+1] <= NegInf/2 {
		res.Score = NegInf
		return res, off
	}
	res.InBand = true
	res.Score = hCur[pFinal+1]
	res.Clipped = maxPot > res.Score
	if traceback {
		res.Cigar = walkBT(m, n, func(i, j int) uint8 {
			t := i + j
			return NibbleRow(bt[t*rowBytes : (t+1)*rowBytes]).Get(i - int(off[t]))
		})
	}
	return res, off
}

// subTab maps a match bit to its substitution score; orgTab maps it to the
// H-origin nibble (bit 1 → btDiagMatch = 0, bit 0 → btDiagMismatch = 1).
type subTab [2]int32

// fillSub expands seq.MatchMask words into per-cell substitution scores
// (and, for traceback, diagonal-origin codes) for count interior cells
// starting at packed indices ai into a and bi into the reversed b.
func fillSub(sub []int32, org []uint8, a, b seq.Packed, ai, bi, count int, match, mismatch int32, wantOrg bool) {
	tab := subTab{mismatch, match}
	k := 0
	for k < count {
		mask := seq.MatchMask(a, b, ai+k, bi+k)
		lim := count - k
		if lim > 32 {
			lim = 32
		}
		if wantOrg {
			for e := 0; e < lim; e++ {
				bit := (mask >> uint(2*e)) & 1
				sub[k+e] = tab[bit]
				org[k+e] = uint8(bit ^ 1)
			}
		} else {
			for e := 0; e < lim; e++ {
				sub[k+e] = tab[(mask>>uint(2*e))&1]
			}
		}
		k += lim
	}
}

// adaptiveStepScore is the score-only interior cell loop: sentinel-indexed
// unconditional loads, precomputed substitution scores, no traceback
// bookkeeping. Lanes hold cell p at index p+1.
func adaptiveStepScore(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, sub []int32, pLo, pHi, d, dd int, openCost, gapExt int32) {
	// Re-slice so every access below is against index p-pLo with a known
	// bound, letting the compiler drop the per-access bounds checks.
	span := pHi - pLo + 1
	hUpL := hCur[pLo+d:]
	iUpL := iCur[pLo+d:]
	hLtL := hCur[pLo+d+1:]
	dLtL := dCur[pLo+d+1:]
	hDgL := hPrev[pLo+dd:]
	subL := sub[:span]
	hOut := hNext[pLo+1:]
	iOut := iNext[pLo+1:]
	dOut := dNext[pLo+1:]
	for k := 0; k < span; k++ {
		iv := iUpL[k] - gapExt
		if v := hUpL[k] - openCost; v > iv {
			iv = v
		}
		dv := dLtL[k] - gapExt
		if v := hLtL[k] - openCost; v > dv {
			dv = v
		}
		best := hDgL[k] + subL[k]
		if iv > best {
			best = iv
		}
		if dv > best {
			best = dv
		}
		hOut[k] = best
		iOut[k] = iv
		dOut[k] = dv
	}
}

// adaptiveStepTB is the traceback twin of adaptiveStepScore: same loads,
// plus origin selection and gap-extension flags packed into BT nibbles.
func adaptiveStepTB(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, sub []int32, org []uint8, btRow NibbleRow, pLo, pHi, d, dd int, openCost, gapExt int32) {
	span := pHi - pLo + 1
	hUpL := hCur[pLo+d:]
	iUpL := iCur[pLo+d:]
	hLtL := hCur[pLo+d+1:]
	dLtL := dCur[pLo+d+1:]
	hDgL := hPrev[pLo+dd:]
	subL := sub[:span]
	orgL := org[:span]
	hOut := hNext[pLo+1:]
	iOut := iNext[pLo+1:]
	dOut := dNext[pLo+1:]
	for k := 0; k < span; k++ {
		iOpen := hUpL[k] - openCost
		iv := iUpL[k] - gapExt
		nb := orgL[k]
		if iv >= iOpen { // ties extend
			nb |= btIExtend
		} else {
			iv = iOpen
		}
		dOpen := hLtL[k] - openCost
		dv := dLtL[k] - gapExt
		if dv >= dOpen {
			nb |= btDExtend
		} else {
			dv = dOpen
		}
		best := hDgL[k] + subL[k]
		if iv > best {
			best = iv
			nb = nb&^btOriginMask | btFromI
		}
		if dv > best {
			best = dv
			nb = nb&^btOriginMask | btFromD
		}
		hOut[k] = best
		iOut[k] = iv
		dOut[k] = dv
		btRow.Set(pLo+k, nb)
	}
}

// chooseShift implements the §3.4 heuristic: compare the scores at the two
// window extremities of the just-computed anti-diagonal; a higher bottom
// score pulls the window down, a higher top score pulls it right. Ties (and
// double-invalid extremities) steer the window centre toward the (m,n)
// corner diagonal so that length-skewed pairs still terminate in band.
// topH and botH are the lane values at window cells 0 and w-1.
func chooseShift(topH, botH int32, off int32, t, m, n, w int, v AdaptiveVariant) int32 {
	top, bot := NegInf, NegInf
	iTop := int(off)
	if jTop := t - iTop; iTop >= 0 && iTop <= m && jTop >= 0 && jTop <= n {
		top = topH
	}
	iBot := int(off) + w - 1
	if jBot := t - iBot; iBot >= 0 && iBot <= m && jBot >= 0 && jBot <= n {
		bot = botH
	}
	switch {
	case bot > top:
		return 1
	case top > bot:
		return 0
	case !v.SteerTies:
		return 0
	default:
		iC := int(off) + w/2
		jC := t - iC
		if iC-jC < m-n {
			return 1
		}
		return 0
	}
}
