package core

import (
	"pimnw/internal/seq"
)

// Adaptive banded Gotoh (§3.4, after Suzuki & Kasahara): a window of w
// cells slides along the anti-diagonals; after each anti-diagonal the
// window shifts right or down depending on the scores at its extremities,
// following the most promising path. This is the formulation the paper
// implements on the DPU: the same accuracy is reached with a band 2–4×
// smaller than the static band (Table 1), and the extra branch in the
// critical loop is free on the DPU (no speculative execution).
//
// Window bookkeeping: on anti-diagonal t the window covers matrix rows
// i ∈ [off[t], off[t]+w), cell index p ↔ i = off[t]+p, j = t−i. The shift
// decision d = off[t+1]−off[t] ∈ {0 (right), 1 (down)} gives the
// predecessor index mapping used below:
//
//	vertical   (i−1, j)   → anti-diagonal t,   index p+d−1
//	horizontal (i,   j−1) → anti-diagonal t,   index p+d
//	diagonal   (i−1, j−1) → anti-diagonal t−1, index p+d+d′−1
//
// where d′ is the previous step's shift.

// AdaptiveVariant exposes the heuristic's knobs for the ablation study;
// the zero value disables everything, DefaultVariant is what the paper's
// kernel (and every other entry point here) uses.
type AdaptiveVariant struct {
	// SteerTies breaks shift-decision ties by steering the window centre
	// toward the (m,n) corner diagonal. Without it, ties default to a
	// right shift and length-skewed pairs rely entirely on the window
	// clamps, typically crossing the skew too late for the optimal path.
	SteerTies bool
}

// DefaultVariant is the production heuristic.
func DefaultVariant() AdaptiveVariant { return AdaptiveVariant{SteerTies: true} }

// AdaptiveBandScore computes the adaptive-banded affine score with O(w)
// working memory — the "four integer arrays of size w" of §4.2.1.
func AdaptiveBandScore(a, b seq.Seq, p Params, w int) Result {
	res, _ := adaptiveBand(a, b, p, w, false, DefaultVariant())
	return res
}

// AdaptiveBandAlign additionally records the 4-bit/cell traceback structure
// ((m+n+1)·w/2 bytes, the BT array of §4.2.2) and emits the CIGAR.
func AdaptiveBandAlign(a, b seq.Seq, p Params, w int) Result {
	res, _ := adaptiveBand(a, b, p, w, true, DefaultVariant())
	return res
}

// AdaptiveBandScoreVariant is AdaptiveBandScore under an explicit heuristic
// variant (ablation studies).
func AdaptiveBandScoreVariant(a, b seq.Seq, p Params, w int, v AdaptiveVariant) Result {
	res, _ := adaptiveBand(a, b, p, w, false, v)
	return res
}

// AdaptiveBandPath is AdaptiveBandScore exposing the window offset of every
// anti-diagonal, used by the band-geometry visualisation (Figure 3) and the
// ablation experiments.
func AdaptiveBandPath(a, b seq.Seq, p Params, w int) (Result, []int32) {
	return adaptiveBand(a, b, p, w, false, DefaultVariant())
}

func adaptiveBand(a, b seq.Seq, p Params, w int, traceback bool, variant AdaptiveVariant) (Result, []int32) {
	m, n := len(a), len(b)
	if w < 2 {
		w = 2
	}
	res := Result{Steps: m + n}
	if m == 0 && n == 0 {
		res.InBand = true
		return res, []int32{0}
	}

	nDiag := m + n + 1
	off := make([]int32, nDiag)
	hPrev := make([]int32, w) // anti-diagonal t-1
	hCur := make([]int32, w)  // anti-diagonal t
	hNext := make([]int32, w) // anti-diagonal t+1 under construction
	iCur := make([]int32, w)
	dCur := make([]int32, w)
	iNext := make([]int32, w)
	dNext := make([]int32, w)
	for p := 0; p < w; p++ {
		hPrev[p], hCur[p], iCur[p], dCur[p] = NegInf, NegInf, NegInf, NegInf
	}
	hCur[0] = 0 // cell (0,0): off[0] = 0
	res.Cells = 1

	var bt []byte
	rowBytes := NibbleRowSize(w)
	if traceback {
		bt = make([]byte, nDiag*rowBytes)
	}

	openCost := p.GapOpen + p.GapExt
	dPrevShift := int32(0) // d′: shift taken from t-1 to t
	maxPot := NegInf       // best escaping-path bound seen (clip certificate)

	for t := 0; t < m+n; t++ {
		// Decide the shift from the extremities of the current window.
		d := chooseShift(hCur, off[t], t, m, n, w, variant)
		// Clamp so the window keeps intersecting the valid cell range of
		// anti-diagonal t+1: i ∈ [loI, hiI].
		loI := t + 1 - n
		if loI < 0 {
			loI = 0
		}
		hiI := t + 1
		if hiI > m {
			hiI = m
		}
		if int(off[t])+int(d)+w-1 < loI {
			d = 1
		}
		if int(off[t])+int(d) > hiI {
			d = 0
		}
		// Clip certificate: any path that leaves the window does so through
		// the edge cell the shift abandons (a window cell's in-window
		// neighbours stay in-window except at the moving edge). Bound every
		// such path by that cell's score plus the best it could still
		// collect outside; if no abandoned-edge potential ever beats the
		// final score, the banded result is provably optimal.
		{
			o := int(off[t])
			if d == 1 {
				// The top cell (o, t-o) drops out of the window: a path can
				// leave through it while column t-o+1 ≤ n exists.
				if j := t - o; j >= 0 && j < n && o <= m && hCur[0] > NegInf/2 {
					if pot := hCur[0] + escapeBound(p, m-o, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			} else {
				// The bottom cell (o+w-1, t-o-w+1) drops out: a path can
				// leave through it while row o+w ≤ m exists.
				i := o + w - 1
				if j := t - i; i >= 0 && i < m && j >= 0 && j <= n && hCur[w-1] > NegInf/2 {
					if pot := hCur[w-1] + escapeBound(p, m-i, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			}
		}

		newOff := off[t] + d
		off[t+1] = newOff

		var btRow NibbleRow
		if traceback {
			btRow = bt[(t+1)*rowBytes : (t+2)*rowBytes]
		}

		for pIdx := 0; pIdx < w; pIdx++ {
			i := int(newOff) + pIdx
			j := t + 1 - i
			if i < 0 || i > m || j < 0 || j > n {
				hNext[pIdx], iNext[pIdx], dNext[pIdx] = NegInf, NegInf, NegInf
				continue
			}
			res.Cells++
			// Matrix boundaries (equations 3–5, base cases).
			if i == 0 {
				hNext[pIdx] = -p.GapCost(j)
				dNext[pIdx] = hNext[pIdx]
				iNext[pIdx] = NegInf
				if traceback {
					btRow.Set(pIdx, MakeBTNibble(btFromD, false, j > 1))
				}
				continue
			}
			if j == 0 {
				hNext[pIdx] = -p.GapCost(i)
				iNext[pIdx] = hNext[pIdx]
				dNext[pIdx] = NegInf
				if traceback {
					btRow.Set(pIdx, MakeBTNibble(btFromI, i > 1, false))
				}
				continue
			}

			up := pIdx + int(d) - 1 // (i-1, j) on anti-diagonal t
			left := pIdx + int(d)   // (i, j-1) on anti-diagonal t
			dg := pIdx + int(d+dPrevShift) - 1

			hUp, iUp := NegInf, NegInf
			if up >= 0 && up < w {
				hUp, iUp = hCur[up], iCur[up]
			}
			hLeft, dLeft := NegInf, NegInf
			if left < w { // left = p+d ≥ 0 always
				hLeft, dLeft = hCur[left], dCur[left]
			}
			hDiag := NegInf
			if dg >= 0 && dg < w {
				hDiag = hPrev[dg]
			}

			iOpen := hUp - openCost
			iExt := iUp-p.GapExt >= iOpen
			iv := max2(iUp-p.GapExt, iOpen)

			dOpen := hLeft - openCost
			dExt := dLeft-p.GapExt >= dOpen
			dv := max2(dLeft-p.GapExt, dOpen)

			sub := p.Sub(a[i-1], b[j-1])
			origin := btDiagMismatch
			if sub == p.Match {
				origin = btDiagMatch
			}
			best := hDiag + sub
			if iv > best {
				best = iv
				origin = btFromI
			}
			if dv > best {
				best = dv
				origin = btFromD
			}
			hNext[pIdx] = best
			iNext[pIdx] = iv
			dNext[pIdx] = dv
			if traceback {
				btRow.Set(pIdx, MakeBTNibble(origin, iExt, dExt))
			}
		}

		hPrev, hCur, hNext = hCur, hNext, hPrev
		iCur, iNext = iNext, iCur
		dCur, dNext = dNext, dCur
		dPrevShift = d
	}

	pFinal := m - int(off[m+n])
	if pFinal < 0 || pFinal >= w || hCur[pFinal] <= NegInf/2 {
		res.Score = NegInf
		return res, off
	}
	res.InBand = true
	res.Score = hCur[pFinal]
	res.Clipped = maxPot > res.Score
	if traceback {
		res.Cigar = walkBT(m, n, func(i, j int) uint8 {
			t := i + j
			return NibbleRow(bt[t*rowBytes : (t+1)*rowBytes]).Get(i - int(off[t]))
		})
	}
	return res, off
}

// chooseShift implements the §3.4 heuristic: compare the scores at the two
// window extremities of the just-computed anti-diagonal; a higher bottom
// score pulls the window down, a higher top score pulls it right. Ties (and
// double-invalid extremities) steer the window centre toward the (m,n)
// corner diagonal so that length-skewed pairs still terminate in band.
func chooseShift(hCur []int32, off int32, t, m, n, w int, v AdaptiveVariant) int32 {
	top, bot := NegInf, NegInf
	iTop := int(off)
	if jTop := t - iTop; iTop >= 0 && iTop <= m && jTop >= 0 && jTop <= n {
		top = hCur[0]
	}
	iBot := int(off) + w - 1
	if jBot := t - iBot; iBot >= 0 && iBot <= m && jBot >= 0 && jBot <= n {
		bot = hCur[w-1]
	}
	switch {
	case bot > top:
		return 1
	case top > bot:
		return 0
	case !v.SteerTies:
		return 0
	default:
		iC := int(off) + w/2
		jC := t - iC
		if iC-jC < m-n {
			return 1
		}
		return 0
	}
}
