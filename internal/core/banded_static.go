package core

import (
	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// Static banded Gotoh (§3.3): only cells with |i−j| ≤ w/2 are evaluated,
// the formulation minimap2's KSW2 kernel implements and the heuristic the
// paper's Table 1 compares the adaptive band against. Complexity is
// O(w·(m+n)) time; the optimal alignment is found only when the optimal
// path stays within the band.

// staticHalf returns the half-width and validates the band size.
func staticHalf(w int) int {
	if w < 2 {
		w = 2
	}
	return w / 2
}

// StaticBandScore computes the static-banded affine score. If the terminal
// cell lies outside the band (||m|−|n|| > w/2) the alignment fails:
// InBand=false and Score=NegInf.
func StaticBandScore(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res := s.staticBand(a, b, p, w, false)
	PutScratch(s)
	return res
}

// StaticBandAlign additionally performs the traceback; memory is
// O(m·w) traceback bytes.
func StaticBandAlign(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res := s.staticBand(a, b, p, w, true)
	PutScratch(s)
	return res
}

// StaticBandScore is the explicit-scratch form: zero engine allocations
// once s has warmed to the row width.
func (s *Scratch) StaticBandScore(a, b seq.Seq, p Params, w int) Result {
	return s.staticBand(a, b, p, w, false)
}

// StaticBandAlign is the explicit-scratch traceback form; only the
// returned CIGAR is allocated.
func (s *Scratch) StaticBandAlign(a, b seq.Seq, p Params, w int) Result {
	return s.staticBand(a, b, p, w, true)
}

func (s *Scratch) staticBand(a, b seq.Seq, p Params, w int, traceback bool) Result {
	m, n := len(a), len(b)
	h := staticHalf(w)
	res := Result{Steps: m}
	if m-n > h || n-m > h {
		res.Score = NegInf
		return res
	}
	res.InBand = true
	if m == 0 && n == 0 {
		return res
	}
	if m == 0 || n == 0 {
		res.Score = -p.GapCost(m + n)
		if traceback {
			var c cigar.Cigar
			c = c.Append(cigar.Ins, m)
			c = c.Append(cigar.Del, n)
			res.Cigar = c
		}
		return res
	}

	width := 2*h + 1 // traceback row width: band index k = j - i + h
	var bt []uint8
	if traceback {
		bt = s.btBuf((m + 1) * width)
		for j := 1; j <= h && j <= n; j++ {
			bt[j+h] = MakeBTNibble(btFromD, false, j > 1)
		}
		for i := 1; i <= h && i <= m; i++ {
			bt[i*width+h-i] = MakeBTNibble(btFromI, i > 1, false)
		}
	}

	s.hrow = growI32(s.hrow, n+1)
	s.icol = growI32(s.icol, n+1)
	hrow := s.hrow
	icol := s.icol
	for j := range hrow {
		hrow[j] = NegInf
		icol[j] = NegInf
	}
	hrow[0] = 0
	for j := 1; j <= h && j <= n; j++ {
		hrow[j] = -p.GapCost(j)
	}
	openCost := p.GapOpen + p.GapExt

	// Clip certificate: paths leave the |i−j| ≤ h corridor only through an
	// edge cell — horizontally off the upper edge (i, i+h), vertically (or
	// diagonally) off the lower edge (i, i−h). Bound every such path by
	// the edge cell's score plus the best it could still collect outside;
	// if no edge potential ever beats the final score, the banded result
	// is provably optimal.
	maxPot := NegInf
	if h+1 <= n {
		// Row 0's upper edge (0, h) is exit-capable too.
		if pot := hrow[h] + escapeBound(p, m, n-h); pot > maxPot {
			maxPot = pot
		}
	}

	for i := 1; i <= m; i++ {
		jlo := i - h
		if jlo < 1 {
			jlo = 1
		}
		jhi := i + h
		if jhi > n {
			jhi = n
		}
		diag := hrow[jlo-1]
		hleft := NegInf
		if i <= h {
			hrow[0] = -p.GapCost(i)
			icol[0] = hrow[0]
			hleft = hrow[0]
		}
		d := NegInf
		ai := a[i-1]
		var btRow []uint8
		if traceback {
			btRow = bt[i*width:]
		}
		for j := jlo; j <= jhi; j++ {
			iUp := hrow[j] - openCost // hrow[j] still holds H(i-1,j)
			iExt := icol[j]-p.GapExt >= iUp
			iv := max2(icol[j]-p.GapExt, iUp)

			dLeft := hleft - openCost
			dExt := d-p.GapExt >= dLeft
			d = max2(d-p.GapExt, dLeft)

			sub := p.Sub(ai, b[j-1])
			origin := btDiagMismatch
			if sub == p.Match {
				origin = btDiagMatch
			}
			best := diag + sub
			if iv > best {
				best = iv
				origin = btFromI
			}
			if d > best {
				best = d
				origin = btFromD
			}
			if traceback {
				btRow[j-i+h] = MakeBTNibble(origin, iExt, dExt)
			}
			diag = hrow[j]
			hrow[j] = best
			icol[j] = iv
			hleft = best
		}
		res.Cells += int64(jhi - jlo + 1)
		// Edge potentials of row i (see the certificate above).
		if j := i + h; j+1 <= n && hrow[j] > NegInf/2 {
			if pot := hrow[j] + escapeBound(p, m-i, n-j); pot > maxPot {
				maxPot = pot
			}
		}
		if j := i - h; j >= 0 && i+1 <= m && hrow[j] > NegInf/2 {
			if pot := hrow[j] + escapeBound(p, m-i, n-j); pot > maxPot {
				maxPot = pot
			}
		}
	}
	res.Score = hrow[n]
	if res.Score <= NegInf/2 {
		// The corner is inside the band geometrically but no path reached it.
		res.InBand = false
		res.Score = NegInf
		return res
	}
	res.Clipped = maxPot > res.Score
	if traceback {
		res.Cigar = walkBT(m, n, func(i, j int) uint8 {
			return bt[i*width+j-i+h]
		})
	}
	return res
}
