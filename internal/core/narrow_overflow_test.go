package core

import (
	"fmt"
	"testing"

	"pimnw/internal/seq"
)

// identicalSeq builds a length-n sequence of a fixed repeating motif, so
// aligning it against itself scores exactly n·Match with no gaps.
func identicalSeq(n int) seq.Seq {
	s := make(seq.Seq, n)
	for i := range s {
		s[i] = seq.Base(i & 3)
	}
	return s
}

// TestNarrowPositiveSaturationBoundary walks the stored value up to the
// +(2^15 − narrowCenter) representability boundary with Match=127 on
// identical pairs: score L·127 per pair, no rebase (m+n < rebase cadence).
// Below the boundary the narrow result must be bit-identical to the wide
// engine; at the boundary the saturating add must trip the sticky bit and
// report Overflowed — never a silently wrapped score. The detection is
// conservative by |Mismatch| (the sticky fires on the pre-fold sum), so
// the largest certified score is 2^15 − narrowCenter + Mismatch.
func TestNarrowPositiveSaturationBoundary(t *testing.T) {
	p := Params{Match: 127, Mismatch: -4, GapOpen: 4, GapExt: 2}
	s := NewScratch()
	for _, tc := range []struct {
		length       int
		w            int
		wantOverflow bool
	}{
		// 127·127 = 16129 < 16383: every intermediate sum stays ≤ 2^15−1.
		{127, 32, false},
		// 128·127 = 16256: final diag sum is 32513+131 = 32644, still in range.
		{128, 32, false},
		// 129·127 = 16383 = 2^15−narrowCenter−1: the last representable
		// value, but the pre-fold sum 32640+131 crosses 2^15 → sticky.
		{129, 32, true},
		{200, 32, true},
		// w=2 keeps every lane in the scalar edge loop: the scalar
		// saturation twin must agree with the word path lane for lane.
		{128, 2, false},
		{129, 2, true},
	} {
		a := identicalSeq(tc.length)
		label := fmt.Sprintf("L=%d w=%d", tc.length, tc.w)
		narrow, ok := s.adaptiveBandNarrow(a, a, p, tc.w, DefaultVariant())
		if tc.wantOverflow {
			if ok || !narrow.Overflowed {
				t.Fatalf("%s: want Overflowed at the +2^15 boundary, got ok=%v %+v", label, ok, narrow)
			}
			if narrow.Score != NegInf {
				t.Fatalf("%s: overflowed result leaked a score %d", label, narrow.Score)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: spurious overflow below the boundary", label)
		}
		wide, _ := s.adaptiveBand(a, a, p, tc.w, false, DefaultVariant())
		requireNarrowEqual(t, label, narrow, wide)
		if want := int32(tc.length) * p.Match; narrow.Score != want {
			t.Fatalf("%s: score %d, want %d", label, narrow.Score, want)
		}
	}
}

// TestNarrowNegativeSaturationBoundary drives the matrix-boundary gap row
// down to the −(2^15 − narrowCenter) boundary: aligning an empty query
// against b costs GapOpen + n·GapExt, and the stored boundary value
// narrowCenter − GapCost(n) hits the dead-sentinel encoding (stored ≤ 0)
// exactly when the gap cost reaches narrowCenter. GapExt=32 makes that
// happen inside one rebase window, so the periodic rebase cannot rescue
// the drift first. Below the guard floor the engine may conservatively
// overflow; at the boundary it must.
func TestNarrowNegativeSaturationBoundary(t *testing.T) {
	p := Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 32}
	s := NewScratch()
	for _, tc := range []struct {
		n            int
		wantOverflow bool
	}{
		// GapCost(400) = 12804: stored 3580, far above the guard floor.
		{400, false},
		// GapCost(500) = 16004: stored 380, still live and certified.
		{500, false},
		// GapCost(512) = 16388 ≥ narrowCenter: the boundary write leaves
		// the representable range → sticky.
		{512, true},
		{600, true},
	} {
		b := identicalSeq(tc.n)
		label := fmt.Sprintf("n=%d", tc.n)
		narrow, ok := s.adaptiveBandNarrow(nil, b, p, 4, DefaultVariant())
		if tc.wantOverflow {
			if ok || !narrow.Overflowed {
				t.Fatalf("%s: want Overflowed at the −2^15 boundary, got ok=%v %+v", label, ok, narrow)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: spurious overflow below the boundary", label)
		}
		wide, _ := s.adaptiveBand(nil, b, p, 4, false, DefaultVariant())
		requireNarrowEqual(t, label, narrow, wide)
		if want := -p.GapCost(tc.n); narrow.Score != want {
			t.Fatalf("%s: score %d, want %d", label, narrow.Score, want)
		}
	}
}

// TestNarrowStickyPropagatesAcrossDiagonals pins the sticky-bit contract:
// saturation in the middle of the matrix must surface as Overflowed even
// though every later anti-diagonal is representable again. The pair climbs
// past the boundary on an identical prefix, then falls back on an
// all-mismatch tail; the final score is small, but the engine must not
// forget the transient.
func TestNarrowStickyPropagatesAcrossDiagonals(t *testing.T) {
	p := Params{Match: 127, Mismatch: -4, GapOpen: 4, GapExt: 2}
	prefix := identicalSeq(160) // climbs to 160·127 = 20320 > 16383 mid-run
	tail := make(seq.Seq, 120)
	a := append(append(seq.Seq{}, prefix...), tail...)
	b := append(append(seq.Seq{}, prefix...), tail...)
	for i := range tail {
		a[len(prefix)+i] = seq.Base(0)
		b[len(prefix)+i] = seq.Base(1) // mismatch wall: score only falls
	}
	s := NewScratch()
	for _, w := range []int{2, 32} { // scalar-edge-only and word-loop shapes
		narrow, ok := s.adaptiveBandNarrow(a, b, p, w, DefaultVariant())
		if ok || !narrow.Overflowed {
			t.Fatalf("w=%d: transient saturation was forgotten: ok=%v %+v", w, ok, narrow)
		}
	}
	// Sanity: the wide engine handles the same pair without complaint, so
	// the sticky really is a narrow-lane artefact, not a scoring anomaly.
	wide, _ := s.adaptiveBand(a, b, p, 32, false, DefaultVariant())
	if wide.Score >= 20000 || !wide.InBand {
		t.Fatalf("wide result implausible: %+v", wide)
	}
}

// TestNarrowRebaseBoundary exercises the rebase path on both sides: a
// monotonically climbing score (rebase shifts the window down) and a
// monotonically falling one (rebase shifts it back up), both crossing
// several rebase cadences, must stay bit-identical to the wide engine.
func TestNarrowRebaseBoundary(t *testing.T) {
	s := NewScratch()

	// Climb: 2000 identical bases at Match=31 drift up 31/2 per step —
	// 7936 per rebase window, inside the representable range — and reach
	// 62000, far past 2^15, rebasing several times without saturating.
	up := Params{Match: 31, Mismatch: -4, GapOpen: 4, GapExt: 2}
	a := identicalSeq(2000)
	narrow, ok := s.adaptiveBandNarrow(a, a, up, 8, DefaultVariant())
	if !ok {
		t.Fatal("climbing rebase overflowed")
	}
	wide, _ := s.adaptiveBand(a, a, up, 8, false, DefaultVariant())
	requireNarrowEqual(t, "climb", narrow, wide)
	if narrow.Score != 2000*31 {
		t.Fatalf("climb score %d, want %d", narrow.Score, 2000*31)
	}

	// Fall: an empty query against 3000 bases at GapExt=2 drifts down
	// ~2 per step; the rebase must lift the window before the boundary
	// writes leave the representable range.
	down := DefaultParams()
	b := identicalSeq(3000)
	narrow, ok = s.adaptiveBandNarrow(nil, b, down, 8, DefaultVariant())
	if !ok {
		t.Fatal("falling rebase overflowed")
	}
	wide, _ = s.adaptiveBand(nil, b, down, 8, false, DefaultVariant())
	requireNarrowEqual(t, "fall", narrow, wide)
	if want := -down.GapCost(3000); narrow.Score != want {
		t.Fatalf("fall score %d, want %d", narrow.Score, want)
	}
}
