package core

import (
	"sync"

	"pimnw/internal/seq"
)

// Scratch is the reusable working-memory arena of the hot-path engines: the
// four w-sized anti-diagonal lanes of §4.2.1 (held as sentinel-padded
// double buffers), the window-offset vector, the per-anti-diagonal
// substitution scores fed by the word-packed comparator, the traceback
// arena, the packed operand buffers, and the row-major lanes of the static
// and full aligners. Every buffer grows monotonically and is reused across
// calls, so a worker that threads one Scratch through repeated alignments
// performs zero engine allocations in steady state (a property the tests
// assert with testing.AllocsPerRun).
//
// A Scratch is not safe for concurrent use; give each worker its own, via
// NewScratch or the package's GetScratch/PutScratch pool.
type Scratch struct {
	// Adaptive-band state. The seven lanes are sized w+2: cell p lives at
	// index p+1, and indices 0 and w+1 hold permanent NegInf sentinels so
	// the inner loop's window-edge neighbour loads need no branches.
	off                        []int32
	h0, h1, h2, i0, i1, d0, d1 []int32
	sub                        []int32 // substitution scores of one anti-diagonal
	org                        []uint8 // matching diagonal-origin nibbles

	// Narrow-lane (16-bit) engine state: the same seven lanes, packed four
	// cells per uint64 word plus one zero pad word for the funnel-shifted
	// neighbour loads, and the lane-aligned packed substitution words.
	nh0, nh1, nh2, ni0, ni1, nd0, nd1 []uint64
	nsub                              []uint64

	// Packed operands of the word comparator: the query as-is, the target
	// reversed (see seq.PackReversed), both with WordAt's zero tail.
	pa, pb []byte

	// Traceback arena, lazily sized on the first traceback call — the
	// score-only paths never touch it.
	bt []byte

	// Row-major lanes shared by the static-band and Gotoh engines.
	hrow, icol []int32
}

// NewScratch returns an empty arena; buffers are grown on first use.
func NewScratch() *Scratch { return new(Scratch) }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes an arena from the package pool. Callers on a hot path
// (the DPU kernel's pool loop, the CPU baseline's workers) hold one across
// a whole batch and return it with PutScratch when done; the convenience
// entry points (AdaptiveBandScore and friends) get and put around a single
// call, which still allocates nothing once the pool is warm.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns an arena to the pool. The arena must no longer be
// used by the caller; results never alias scratch memory, so returning it
// immediately after an Align call is always safe.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// growI32 resizes buf to n int32s, reusing its backing array when it fits.
// Contents are unspecified — callers initialise what they read.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growU64 is growI32 for uint64 word buffers.
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// growU8 is growI32 for byte buffers.
func growU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

// btBuf returns the n-byte traceback arena, zeroed: nibble rows are written
// sparsely (only in-matrix cells), and a zeroed backing keeps the unwritten
// cells bit-identical to the freshly-allocated buffers of the scalar
// reference engine.
func (s *Scratch) btBuf(n int) []byte {
	if cap(s.bt) < n {
		s.bt = make([]byte, n)
		return s.bt
	}
	s.bt = s.bt[:n]
	clear(s.bt)
	return s.bt
}

// packOperands 2-bit packs the engine's comparator operands into the
// arena: a forward, b reversed (both stride +1 along an anti-diagonal).
func (s *Scratch) packOperands(a, b seq.Seq) (pa, pb seq.Packed) {
	s.pa, pa = seq.PackPadded(s.pa, a)
	s.pb, pb = seq.PackReversed(s.pb, b)
	return pa, pb
}
