package core

import (
	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// NWScore computes the classic linear-gap Needleman & Wunsch score
// (equations 1–2 of the paper): every inserted or deleted base costs gap,
// with no open/extend distinction. It runs in O(m·n) time and O(n) space.
func NWScore(a, b seq.Seq, match, mismatch, gap int32) int32 {
	m, n := len(a), len(b)
	row := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		row[j] = -int32(j) * gap
	}
	for i := 1; i <= m; i++ {
		diag := row[0]
		row[0] = -int32(i) * gap
		for j := 1; j <= n; j++ {
			sub := mismatch
			if a[i-1] == b[j-1] {
				sub = match
			}
			best := max3(diag+sub, row[j]-gap, row[j-1]-gap)
			diag = row[j]
			row[j] = best
		}
	}
	return row[n]
}

// NWAlign computes the linear-gap alignment with a full traceback matrix.
// Intended for short sequences (tests, examples); memory is O(m·n).
func NWAlign(a, b seq.Seq, match, mismatch, gap int32) (int32, cigar.Cigar) {
	m, n := len(a), len(b)
	// dir: 0 = diag match, 1 = diag mismatch, 2 = up (consume a), 3 = left.
	dir := make([]uint8, (m+1)*(n+1))
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = -int32(j) * gap
		if j > 0 {
			dir[j] = 3
		}
	}
	for i := 1; i <= m; i++ {
		cur[0] = -int32(i) * gap
		dir[i*(n+1)] = 2
		for j := 1; j <= n; j++ {
			sub := mismatch
			d := uint8(1)
			if a[i-1] == b[j-1] {
				sub = match
				d = 0
			}
			best := prev[j-1] + sub
			// Tie-break preferring the diagonal keeps gaps minimal.
			if up := prev[j] - gap; up > best {
				best = up
				d = 2
			}
			if left := cur[j-1] - gap; left > best {
				best = left
				d = 3
			}
			cur[j] = best
			dir[i*(n+1)+j] = d
		}
		prev, cur = cur, prev
	}
	score := prev[n]

	var c cigar.Cigar
	for i, j := m, n; i > 0 || j > 0; {
		switch dir[i*(n+1)+j] {
		case 0:
			c = c.Append(cigar.Match, 1)
			i, j = i-1, j-1
		case 1:
			c = c.Append(cigar.Mismatch, 1)
			i, j = i-1, j-1
		case 2:
			c = c.Append(cigar.Ins, 1)
			i--
		default:
			c = c.Append(cigar.Del, 1)
			j--
		}
	}
	return score, c.Reverse()
}

// EditDistance is the unit-cost Levenshtein distance, a convenience built on
// the same recurrence (match=0, mismatch/gap = -1, negated).
func EditDistance(a, b seq.Seq) int {
	return int(-NWScore(a, b, 0, -1, 1))
}
