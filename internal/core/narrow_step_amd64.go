//go:build amd64

package core

// narrowSSEArgs is the argument block of narrowStepSSE; one pointer keeps
// the assembly ABI trivial. The stream pointers address a word at or just
// before the first processed word, and the three byte deltas place each
// neighbour stream on its lane offset — the packed []uint64 lanes are
// contiguous little-endian uint16s in memory, so an unaligned 16-byte load
// at lane offset s is exactly the funnel-shifted read of lanes s..s+7.
// The field order is frozen: narrow_step_amd64.s addresses it by offset.
type narrowSSEArgs struct {
	hNext, iNext, dNext *uint64 // output words, from word gA
	hCur1, iCur1        *uint64 // up/diag-up streams, based at word gA−1
	hCur0, dCur0        *uint64 // left streams, based at word gA
	hPrev1              *uint64 // diagonal stream, based at word gA−1
	sub                 *uint64 // packed substitution words, from word gA
	pairs               int64   // number of 2-word (8-lane) iterations
	dUp, dLt, dDg       int64   // byte deltas of the three neighbour streams
	eV, oeV, nmV, gbV   uint64  // broadcast constants (asm widens 4→8 lanes)
	hV                  uint64  // nH — bit 15 of every lane
}

// narrowStepSSE is the SSE2 kernel: PSUBUSW is the per-lane saturating
// subtract, PMAXSW the lane max (sound because live lanes keep bit 15
// clear), and the sticky accumulator collects saturating-add carries and
// below-guard outputs. Implemented in narrow_step_amd64.s.
//
//go:noescape
func narrowStepSSE(a *narrowSSEArgs) uint64

// narrowStepWords runs the interior word loop [gA, gB] of one
// anti-diagonal: full 2-word pairs through the SSE2 kernel (8 lanes per
// iteration), at most one trailing word through the portable SWAR loop.
func narrowStepWords(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub []uint64,
	gA, gB, d, dd int, eV, oeV, nmV, gbV uint64) uint64 {
	var ov uint64
	if pairs := (gB - gA + 1) / 2; pairs > 0 {
		args := narrowSSEArgs{
			hNext: &hNext[gA], iNext: &iNext[gA], dNext: &dNext[gA],
			hCur1: &hCur[gA-1], iCur1: &iCur[gA-1],
			hCur0: &hCur[gA], dCur0: &dCur[gA],
			hPrev1: &hPrev[gA-1],
			sub:    &nsub[gA],
			pairs:  int64(pairs),
			dUp:    int64(6 + 2*d),
			dLt:    int64(2 * d),
			dDg:    int64(6 + 2*dd),
			eV:     eV, oeV: oeV, nmV: nmV, gbV: gbV,
			hV: nH,
		}
		ov = narrowStepSSE(&args)
		gA += 2 * pairs
	}
	if gA <= gB {
		ov |= narrowStepWordsGo(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub,
			gA, gB, d, dd, eV, oeV, nmV, gbV)
	}
	return ov
}
