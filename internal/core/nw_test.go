package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

func TestNWScoreKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"", "", 0},
		{"ACGT", "", -4}, // 4 deletions at gap=1
		{"", "ACGT", -4},
		{"ACGT", "ACGT", 8}, // 4 matches at +2
		{"ACGT", "ACGA", 4}, // 3 matches + del/ins pair (-2) beats the -4 mismatch
		{"ACGT", "AGT", 5},  // 3 matches, 1 unit gap
		{"A", "T", -2},      // two unit gaps (-2) beat the -4 mismatch
	}
	for _, tc := range cases {
		a, b := seq.MustFromString(tc.a), seq.MustFromString(tc.b)
		got := NWScore(a, b, 2, -4, 1)
		if got != tc.want {
			t.Errorf("NWScore(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNWScoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := seq.Random(rng, rng.Intn(20))
		b := seq.Random(rng, rng.Intn(20))
		got := NWScore(a, b, 2, -3, 2)
		want := refLinearScore(a, b, 2, -3, 2)
		if got != want {
			t.Fatalf("trial %d: NWScore=%d ref=%d (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

func TestNWScoreSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		a := seq.Random(rng, rng.Intn(50))
		b := seq.Random(rng, rng.Intn(50))
		if NWScore(a, b, 2, -4, 2) != NWScore(b, a, 2, -4, 2) {
			t.Fatalf("asymmetric score for a=%v b=%v", a, b)
		}
	}
}

// linearScoreFromCigar recomputes the linear-gap score a CIGAR implies.
func linearScoreFromCigar(c cigar.Cigar, match, mismatch, gap int32) int32 {
	var s int32
	for _, op := range c {
		switch op.Kind {
		case cigar.Match:
			s += int32(op.Len) * match
		case cigar.Mismatch:
			s += int32(op.Len) * mismatch
		default:
			s -= int32(op.Len) * gap
		}
	}
	return s
}

func TestNWAlignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		a := seq.Random(rng, rng.Intn(40))
		b := seq.Random(rng, rng.Intn(40))
		score, c := NWAlign(a, b, 2, -4, 2)
		if want := NWScore(a, b, 2, -4, 2); score != want {
			t.Fatalf("NWAlign score %d != NWScore %d", score, want)
		}
		if err := c.Validate(a, b); err != nil {
			t.Fatalf("cigar invalid: %v (a=%v b=%v cigar=%v)", err, a, b, c)
		}
		if got := linearScoreFromCigar(c, 2, -4, 2); got != score {
			t.Fatalf("cigar implies score %d, reported %d", got, score)
		}
	}
}

func TestNWAlignIdentical(t *testing.T) {
	a := seq.MustFromString("ACGTACGTAC")
	score, c := NWAlign(a, a, 2, -4, 1)
	if score != 20 {
		t.Errorf("score = %d, want 20", score)
	}
	if c.String() != "10=" {
		t.Errorf("cigar = %v, want 10=", c)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACGA", 1},
		{"ACGT", "AGT", 1},
		{"ACGT", "TGCA", 4}, // full reversal: every column is an edit
		{"AAAA", "", 4},
	}
	for _, tc := range cases {
		a, b := seq.MustFromString(tc.a), seq.MustFromString(tc.b)
		if got := EditDistance(a, b); got != tc.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		a := seq.Random(rng, 10+rng.Intn(20))
		b := seq.Random(rng, 10+rng.Intn(20))
		c := seq.Random(rng, 10+rng.Intn(20))
		ab, bc, ac := EditDistance(a, b), EditDistance(b, c), EditDistance(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle inequality violated: d(a,c)=%d > %d+%d", ac, ab, bc)
		}
	}
}
