package core_test

import (
	"fmt"

	"pimnw/internal/core"
	"pimnw/internal/seq"
)

func ExampleAdaptiveBandAlign() {
	a := seq.MustFromString("ACGTTAGCTAGCCTA")
	b := seq.MustFromString("ACCTTAGCTAGCTAG")
	res := core.AdaptiveBandAlign(a, b, core.DefaultParams(), 8)
	fmt.Println(res.Score, res.Cigar)
	// Output: 10 2=1X8=1I3=1D
}

func ExampleGotohScore() {
	a := seq.MustFromString("ACGTACGT")
	b := seq.MustFromString("ACGACGT") // one base deleted
	res := core.GotohScore(a, b, core.DefaultParams())
	fmt.Println(res.Score) // 7 matches x2 - (open 4 + 1x ext 2)
	// Output: 8
}

func ExampleStaticBandScore_outOfBand() {
	a := seq.MustFromString("ACGTACGTACGTACGT")
	b := seq.MustFromString("ACGT")
	res := core.StaticBandScore(a, b, core.DefaultParams(), 8)
	fmt.Println(res.InBand) // |16-4| exceeds half the band
	// Output: false
}

func ExampleGotohAlignLinear() {
	a := seq.MustFromString("AAAACCCCGGGG")
	b := seq.MustFromString("AAAAGGGG") // CCCC deleted, one affine gap
	res := core.GotohAlignLinear(a, b, core.DefaultParams())
	fmt.Println(res.Score, res.Cigar)
	// Output: 4 4=4I4=
}

func ExampleParams_GapCost() {
	p := core.DefaultParams()
	fmt.Println(p.GapCost(1), p.GapCost(10))
	// Output: 6 24
}
