// Package core implements the paper's primary contribution: global pairwise
// DNA alignment by dynamic programming with affine gap costs (Gotoh), in
// four formulations — full-matrix Needleman & Wunsch (linear and affine
// gaps, equations 1–5 of the paper), static banded, and the adaptive banded
// heuristic (anti-diagonal window, Suzuki & Kasahara style) that the UPMEM
// DPU kernel runs. All aligners share one scoring model, one traceback
// encoding (4 bits per cell, §4.2.2) and one Result type, so the accuracy
// experiments can compare them cell for cell.
package core

import (
	"fmt"
	"math"

	"pimnw/internal/seq"
)

// NegInf is the "minus infinity" sentinel for unreachable DP states. It is
// MinInt32/4 so that subtracting gap penalties from it can never underflow
// an int32 even after repeated propagation within one anti-diagonal step.
const NegInf int32 = math.MinInt32 / 4

// Params is the alignment scoring model. Scores are maximised. A gap of
// length k costs GapOpen + k·GapExt, exactly as in the paper's equations
// 3–5 (the first gapped base pays both the open and the extend penalty).
type Params struct {
	Match    int32 // added for an identical base pair (positive)
	Mismatch int32 // added for a substitution (negative)
	GapOpen  int32 // penalty for opening a gap (positive, subtracted)
	GapExt   int32 // penalty per gapped base (positive, subtracted)
}

// DefaultParams are minimap2's map-ont presets, the configuration the paper
// benchmarks against.
func DefaultParams() Params {
	return Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2}
}

// Validate rejects parameter combinations for which global alignment is
// ill-defined or the banded recurrences lose their meaning.
func (p Params) Validate() error {
	if p.Match <= 0 {
		return fmt.Errorf("core: Match must be positive, got %d", p.Match)
	}
	if p.Mismatch >= 0 {
		return fmt.Errorf("core: Mismatch must be negative, got %d", p.Mismatch)
	}
	if p.GapOpen < 0 {
		return fmt.Errorf("core: GapOpen must be non-negative, got %d", p.GapOpen)
	}
	if p.GapExt <= 0 {
		return fmt.Errorf("core: GapExt must be positive, got %d", p.GapExt)
	}
	return nil
}

// Sub returns the substitution score for aligning bases a and b.
func (p Params) Sub(a, b seq.Base) int32 {
	if a == b {
		return p.Match
	}
	return p.Mismatch
}

// GapCost returns the cost of a gap of length k (k ≥ 1), as a positive
// number to subtract.
func (p Params) GapCost(k int) int32 {
	return p.GapOpen + int32(k)*p.GapExt
}

// escapeBound is an admissible upper bound on the score any alignment
// path can still collect between a cell with ri×rj remaining bases and
// the terminal corner: every paired base a match, charged only the one
// unavoidable gap for the length difference. The banded aligners add it
// to the band-edge cell scores to bound every path that escapes the band
// — if no escaping path can beat the banded score, the result is
// certified optimal and Clipped stays false.
func escapeBound(p Params, ri, rj int) int32 {
	mn, d := ri, ri-rj
	if rj < ri {
		mn = rj
	}
	if d < 0 {
		d = -d
	}
	var gap int32
	if d > 0 {
		gap = p.GapCost(d)
	}
	return int32(mn)*p.Match - gap
}

// max2 and max3 are branch-simple helpers kept out of the hot loops' way.
func max2(a, b int32) int32 {
	if a >= b {
		return a
	}
	return b
}

func max3(a, b, c int32) int32 {
	return max2(max2(a, b), c)
}
