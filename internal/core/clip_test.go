package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

// indelHeavyPairs generates pairs whose optimal paths wander far off the
// main diagonal: frequent short indels plus structural gaps. Under a small
// band these always stress the clip detector.
func indelHeavyPairs(seed int64, count, length int) [][2]seq.Seq {
	rng := rand.New(rand.NewSource(seed))
	mut := seq.Mutator{
		SubRate: 0.02, InsRate: 0.03, DelRate: 0.03, IndelExt: 0.6,
		BigGapRate: 0.004, BigGapMin: 16, BigGapMax: 48,
	}
	out := make([][2]seq.Seq, count)
	for i := range out {
		a := seq.Random(rng, length)
		out[i] = [2]seq.Seq{a, mut.Apply(rng, a)}
	}
	return out
}

// TestClippedSoundness is the property the escalation ladder relies on:
// whenever a banded aligner returns an in-band score that differs from the
// exact optimum, the result must carry the Clipped flag (otherwise the
// ladder would trust a silently wrong score). It also checks the detector
// actually fires on the adversarial set (no vacuous pass).
func TestClippedSoundness(t *testing.T) {
	p := DefaultParams()
	const w = 8
	aligners := []struct {
		name string
		run  func(a, b seq.Seq) Result
	}{
		{"adaptive-align", func(a, b seq.Seq) Result { return AdaptiveBandAlign(a, b, p, w) }},
		{"adaptive-score", func(a, b seq.Seq) Result { return AdaptiveBandScore(a, b, p, w) }},
		{"static-align", func(a, b seq.Seq) Result { return StaticBandAlign(a, b, p, w) }},
		{"static-score", func(a, b seq.Seq) Result { return StaticBandScore(a, b, p, w) }},
	}
	pairs := indelHeavyPairs(7, 40, 300)
	for _, al := range aligners {
		t.Run(al.name, func(t *testing.T) {
			flagged := 0
			for i, pr := range pairs {
				exact := GotohScore(pr[0], pr[1], p)
				got := al.run(pr[0], pr[1])
				if got.Clipped {
					flagged++
				}
				if got.InBand && got.Score != exact.Score && !got.Clipped {
					t.Errorf("pair %d: banded score %d != exact %d but Clipped=false",
						i, got.Score, exact.Score)
				}
			}
			if flagged == 0 {
				t.Error("no pair flagged Clipped on the adversarial set")
			}
		})
	}
}

// TestNotClippedOnEasyPairs checks the detector does not fire spuriously:
// low-divergence pairs under a generous band align exactly and unclipped.
func TestNotClippedOnEasyPairs(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(11))
	mut := seq.UniformErrors(0.01)
	const w = 128
	for i := 0; i < 20; i++ {
		a := seq.Random(rng, 600)
		b := mut.Apply(rng, a)
		exact := GotohScore(a, b, p)
		for _, got := range []Result{
			AdaptiveBandAlign(a, b, p, w),
			AdaptiveBandScore(a, b, p, w),
			StaticBandAlign(a, b, p, w),
			StaticBandScore(a, b, p, w),
		} {
			if !got.InBand {
				t.Fatalf("pair %d: easy pair out of band", i)
			}
			if got.Score != exact.Score {
				t.Fatalf("pair %d: easy pair score %d != exact %d", i, got.Score, exact.Score)
			}
			if got.Clipped {
				t.Errorf("pair %d: easy pair spuriously Clipped", i)
			}
		}
	}
}

// TestFullNeverClipped: the exact aligners have no band to clip against.
func TestFullNeverClipped(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		a := seq.Random(rng, 200)
		b := seq.Random(rng, 180)
		if res := GotohAlign(a, b, p); res.Clipped || !res.InBand {
			t.Fatalf("pair %d: full alignment reported Clipped=%v InBand=%v", i, res.Clipped, res.InBand)
		}
		if res := GotohScore(a, b, p); res.Clipped {
			t.Fatalf("pair %d: full score reported Clipped", i)
		}
	}
}
