package core

import (
	"testing"
	"testing/quick"

	"pimnw/internal/seq"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	base := DefaultParams()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero match", func(p *Params) { p.Match = 0 }},
		{"negative match", func(p *Params) { p.Match = -1 }},
		{"positive mismatch", func(p *Params) { p.Mismatch = 1 }},
		{"zero mismatch", func(p *Params) { p.Mismatch = 0 }},
		{"negative open", func(p *Params) { p.GapOpen = -1 }},
		{"zero ext", func(p *Params) { p.GapExt = 0 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	// Zero GapOpen is legal: it degenerates to the linear model.
	p := base
	p.GapOpen = 0
	if err := p.Validate(); err != nil {
		t.Errorf("zero GapOpen should be valid: %v", err)
	}
}

func TestSub(t *testing.T) {
	p := DefaultParams()
	if got := p.Sub(seq.A, seq.A); got != p.Match {
		t.Errorf("Sub(A,A) = %d, want %d", got, p.Match)
	}
	if got := p.Sub(seq.A, seq.T); got != p.Mismatch {
		t.Errorf("Sub(A,T) = %d, want %d", got, p.Mismatch)
	}
}

func TestGapCost(t *testing.T) {
	p := Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2}
	cases := []struct {
		k    int
		want int32
	}{{1, 6}, {2, 8}, {10, 24}}
	for _, tc := range cases {
		if got := p.GapCost(tc.k); got != tc.want {
			t.Errorf("GapCost(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestNegInfHeadroom(t *testing.T) {
	// NegInf must survive a long chain of penalty subtractions without
	// wrapping, the property the banded kernels rely on.
	v := NegInf
	for i := 0; i < 100000; i++ {
		v -= 6
		if v > 0 {
			t.Fatal("NegInf arithmetic wrapped around")
		}
	}
}

func TestBTNibbleRoundTrip(t *testing.T) {
	for origin := uint8(0); origin < 4; origin++ {
		for _, iExt := range []bool{false, true} {
			for _, dExt := range []bool{false, true} {
				nb := MakeBTNibble(origin, iExt, dExt)
				if BTOrigin(nb) != origin || BTIExtend(nb) != iExt || BTDExtend(nb) != dExt {
					t.Errorf("round trip failed for origin=%d i=%v d=%v", origin, iExt, dExt)
				}
			}
		}
	}
}

func TestNibbleRowSetGet(t *testing.T) {
	const w = 17
	row := make(NibbleRow, NibbleRowSize(w))
	vals := make([]uint8, w)
	for p := 0; p < w; p++ {
		vals[p] = uint8((p * 7) % 16)
		row.Set(p, vals[p])
	}
	for p := 0; p < w; p++ {
		if got := row.Get(p); got != vals[p] {
			t.Errorf("cell %d = %d, want %d", p, got, vals[p])
		}
	}
	// Overwrite a cell and check the neighbours survive.
	row.Set(3, 0xF)
	if row.Get(2) != vals[2] || row.Get(4) != vals[4] {
		t.Error("Set clobbered a neighbouring nibble")
	}
	if row.Get(3) != 0xF {
		t.Error("overwrite lost")
	}
}

func TestNibbleRowProperty(t *testing.T) {
	f := func(raw []byte) bool {
		w := len(raw)
		row := make(NibbleRow, NibbleRowSize(w))
		for p, v := range raw {
			row.Set(p, v&0x0F)
		}
		for p, v := range raw {
			if row.Get(p) != v&0x0F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNibbleRowSize(t *testing.T) {
	cases := []struct{ w, want int }{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {128, 64}}
	for _, tc := range cases {
		if got := NibbleRowSize(tc.w); got != tc.want {
			t.Errorf("NibbleRowSize(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
}
