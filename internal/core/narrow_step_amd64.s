// SSE2 inner loop of the 16-bit narrow-lane adaptive-band engine.
// See banded_narrow.go for the value encoding and narrow_step.go for the
// portable SWAR reference this must match lane for lane: PSUBUSW is the
// per-lane saturating-at-zero subtract, PMAXSW the lane max (sound because
// live lanes keep bit 15 clear), PADDW the substitution add whose bit-15
// carry is trapped into the sticky accumulator, and a final PSUBUSW
// against the guard floor flags any below-guard H output. On a sticky the
// in-flight lane values may diverge from the reference — the caller
// discards the whole step — so no clamp reconstruction is done here.

#include "textflag.h"

// func narrowStepSSE(a *narrowSSEArgs) uint64
TEXT ·narrowStepSSE(SB), NOSPLIT, $0-16
	MOVQ a+0(FP), AX

	MOVQ 0(AX), R8    // hNext
	MOVQ 8(AX), R9    // iNext
	MOVQ 16(AX), R10  // dNext
	MOVQ 24(AX), R11  // hCur1: up stream
	MOVQ 32(AX), R12  // iCur1: up stream
	MOVQ 40(AX), R13  // hCur0: left stream
	MOVQ 48(AX), R14  // dCur0: left stream
	MOVQ 56(AX), DX   // hPrev1: diagonal stream
	MOVQ 64(AX), DI   // sub
	MOVQ 72(AX), SI   // pairs

	MOVQ 80(AX), BX   // dUp
	ADDQ BX, R11
	ADDQ BX, R12
	MOVQ 88(AX), BX   // dLt
	ADDQ BX, R13
	ADDQ BX, R14
	MOVQ 96(AX), BX   // dDg
	ADDQ BX, DX

	MOVQ       104(AX), X9  // eV
	PUNPCKLQDQ X9, X9
	MOVQ       112(AX), X10 // oeV
	PUNPCKLQDQ X10, X10
	MOVQ       120(AX), X11 // nmV
	PUNPCKLQDQ X11, X11
	MOVQ       128(AX), X12 // gbV
	PUNPCKLQDQ X12, X12
	MOVQ       136(AX), X13 // nH: bit 15 of every lane
	PUNPCKLQDQ X13, X13

	PXOR X14, X14 // sticky accumulator
	XORQ CX, CX   // byte index

loop:
	// iv = max(iUp ⊖ e, hUp ⊖ oe)
	MOVOU   (R12)(CX*1), X0
	PSUBUSW X9, X0
	MOVOU   (R11)(CX*1), X1
	PSUBUSW X10, X1
	PMAXSW  X1, X0

	// dv = max(dLt ⊖ e, hLt ⊖ oe)
	MOVOU   (R14)(CX*1), X3
	PSUBUSW X9, X3
	MOVOU   (R13)(CX*1), X4
	PSUBUSW X10, X4
	PMAXSW  X4, X3

	// diag = (hDg + sub) ⊖ nm, bit-15 carry → sticky
	MOVOU (DX)(CX*1), X5
	MOVOU (DI)(CX*1), X8
	PADDW X8, X5
	MOVOA X5, X6
	PAND  X13, X6
	POR   X6, X14
	PSUBUSW X11, X5

	// best = max(diag, iv, dv); below-guard output → sticky
	PMAXSW  X0, X5
	PMAXSW  X3, X5
	MOVOA   X12, X7
	PSUBUSW X5, X7
	POR     X7, X14

	MOVOU X5, (R8)(CX*1)
	MOVOU X0, (R9)(CX*1)
	MOVOU X3, (R10)(CX*1)

	ADDQ $16, CX
	DECQ SI
	JNZ  loop

	MOVQ  X14, BX
	PSRLO $8, X14
	MOVQ  X14, AX
	ORQ   BX, AX
	MOVQ  AX, ret+8(FP)
	RET
