package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

func TestGotohScoreKnown(t *testing.T) {
	p := Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2}
	cases := []struct {
		a, b string
		want int32
	}{
		{"", "", 0},
		{"ACGT", "", -(4 + 4*2)}, // one gap of length 4
		{"", "ACGTA", -(4 + 5*2)},
		{"ACGT", "ACGT", 8},
		{"ACGTACGT", "ACGT", 8 - (4 + 4*2)}, // 4 matches + one 4-gap
		{"ACGT", "ACTT", 2},                 // 3 matches + mismatch: 6-4
	}
	for _, tc := range cases {
		a, b := seq.MustFromString(tc.a), seq.MustFromString(tc.b)
		got := GotohScore(a, b, p)
		if got.Score != tc.want {
			t.Errorf("GotohScore(%q,%q) = %d, want %d", tc.a, tc.b, got.Score, tc.want)
		}
		if !got.InBand {
			t.Errorf("GotohScore(%q,%q): InBand=false", tc.a, tc.b)
		}
	}
}

func TestGotohAffinePreference(t *testing.T) {
	// One long gap must beat several short ones under affine costs: the
	// test sequence pair differs by a single 6-base deletion.
	p := Params{Match: 1, Mismatch: -4, GapOpen: 6, GapExt: 1}
	a := seq.MustFromString("ACGTACGTACGTACGTACGT")
	b := append(a[:8:8], a[14:]...) // remove 6 bases
	res := GotohAlign(a, b, p)
	want := int32(len(b))*p.Match - p.GapCost(6)
	if res.Score != want {
		t.Errorf("score = %d, want %d", res.Score, want)
	}
	st := res.Cigar.Stats()
	if st.GapOpens != 1 || st.Insertions != 6 {
		t.Errorf("expected a single 6-base insertion run, got %v", res.Cigar)
	}
}

func TestGotohScoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		a := seq.Random(rng, rng.Intn(25))
		b := seq.Random(rng, rng.Intn(25))
		got := GotohScore(a, b, p).Score
		want := refAffineScore(a, b, p)
		if got != want {
			t.Fatalf("trial %d: GotohScore=%d ref=%d (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

func TestGotohScoreSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		a, b := mutatedPair(rng, 60, 0.1)
		if GotohScore(a, b, p).Score != GotohScore(b, a, p).Score {
			t.Fatalf("asymmetric affine score")
		}
	}
}

func TestGotohReducesToLinearWhenOpenZero(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := Params{Match: 2, Mismatch: -4, GapOpen: 0, GapExt: 3}
	for trial := 0; trial < 30; trial++ {
		a := seq.Random(rng, rng.Intn(30))
		b := seq.Random(rng, rng.Intn(30))
		affine := GotohScore(a, b, p).Score
		linear := NWScore(a, b, p.Match, p.Mismatch, p.GapExt)
		if affine != linear {
			t.Fatalf("open=0 affine %d != linear %d (a=%v b=%v)", affine, linear, a, b)
		}
	}
}

func TestGotohAlignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := DefaultParams()
	for trial := 0; trial < 50; trial++ {
		var a, b seq.Seq
		if trial%3 == 0 {
			a = seq.Random(rng, rng.Intn(40))
			b = seq.Random(rng, rng.Intn(40))
		} else {
			a, b = mutatedPair(rng, 10+rng.Intn(60), 0.15)
		}
		res := GotohAlign(a, b, p)
		score := GotohScore(a, b, p)
		if res.Score != score.Score {
			t.Fatalf("align score %d != score-only %d", res.Score, score.Score)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Fatalf("cigar invalid: %v", err)
		}
		if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
			t.Fatalf("cigar implies %d, reported %d (cigar=%v)", got, res.Score, res.Cigar)
		}
	}
}

func TestGotohAlignEmptyEdges(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("ACG")
	res := GotohAlign(a, nil, p)
	if res.Cigar.String() != "3I" {
		t.Errorf("cigar vs empty target = %v, want 3I", res.Cigar)
	}
	res = GotohAlign(nil, a, p)
	if res.Cigar.String() != "3D" {
		t.Errorf("cigar vs empty query = %v, want 3D", res.Cigar)
	}
	res = GotohAlign(nil, nil, p)
	if len(res.Cigar) != 0 || res.Score != 0 {
		t.Errorf("empty alignment: %+v", res)
	}
}

func TestGotohIdentical(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("ACGTACGTACGTACGTACGT")
	res := GotohAlign(a, a, p)
	if res.Score != int32(len(a))*p.Match {
		t.Errorf("score = %d", res.Score)
	}
	if res.Cigar.String() != "20=" {
		t.Errorf("cigar = %v", res.Cigar)
	}
}

func TestScoreFromCigarKnown(t *testing.T) {
	p := Params{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2}
	res := GotohAlign(seq.MustFromString("AACCGGTT"), seq.MustFromString("AACCGGTT"), p)
	if got := ScoreFromCigar(res.Cigar, p); got != 16 {
		t.Errorf("ScoreFromCigar = %d, want 16", got)
	}
}

func TestGotohCellsReported(t *testing.T) {
	a := seq.MustFromString("ACGTACGT")
	b := seq.MustFromString("ACGTAC")
	res := GotohScore(a, b, DefaultParams())
	if res.Cells != int64(len(a))*int64(len(b)) {
		t.Errorf("Cells = %d, want %d", res.Cells, len(a)*len(b))
	}
}
