package core

import (
	"testing"

	"pimnw/internal/seq"
)

// Native fuzz targets. The seed corpus runs on every `go test`; under
// `go test -fuzz` they explore adversarial byte patterns. Each target
// cross-checks two independent implementations, so any discrepancy the
// fuzzer finds is a real bug, not a flaky oracle.

func bytesToSeq(raw []byte, maxLen int) seq.Seq {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	s := make(seq.Seq, len(raw))
	for i, b := range raw {
		s[i] = seq.Base(b & 3)
	}
	return s
}

func FuzzLinearVsQuadratic(f *testing.F) {
	f.Add([]byte("ACGT"), []byte("AGT"))
	f.Add([]byte(""), []byte("TTTT"))
	f.Add([]byte("AAAAAAAA"), []byte("AAAA"))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, []byte{3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := bytesToSeq(rawA, 64)
		b := bytesToSeq(rawB, 64)
		p := DefaultParams()
		want := GotohScore(a, b, p).Score
		res := GotohAlignLinear(a, b, p)
		if res.Score != want {
			t.Fatalf("linear %d != quadratic %d (a=%v b=%v)", res.Score, want, a, b)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Fatalf("invalid cigar: %v", err)
		}
	})
}

func FuzzBandedNeverBeatsOptimal(f *testing.F) {
	f.Add([]byte("ACGTACGT"), []byte("ACGAACGT"), uint8(8))
	f.Add([]byte("AAAA"), []byte("TTTTTTTT"), uint8(4))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, wRaw uint8) {
		a := bytesToSeq(rawA, 48)
		b := bytesToSeq(rawB, 48)
		w := 2 + int(wRaw)%64
		p := DefaultParams()
		opt := GotohScore(a, b, p).Score
		if st := StaticBandScore(a, b, p, w); st.InBand && st.Score > opt {
			t.Fatalf("static band w=%d beats optimal: %d > %d", w, st.Score, opt)
		}
		ad := AdaptiveBandScore(a, b, p, w)
		if ad.InBand && ad.Score > opt {
			t.Fatalf("adaptive band w=%d beats optimal: %d > %d", w, ad.Score, opt)
		}
		if ad.InBand {
			res := AdaptiveBandAlign(a, b, p, w)
			if res.Cigar != nil {
				if err := res.Cigar.Validate(a, b); err != nil {
					t.Fatalf("adaptive cigar invalid: %v", err)
				}
				if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
					t.Fatalf("cigar implies %d, scored %d", got, res.Score)
				}
			}
		}
	})
}
