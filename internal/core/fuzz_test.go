package core

import (
	"testing"

	"pimnw/internal/seq"
)

// Native fuzz targets. The seed corpus runs on every `go test`; under
// `go test -fuzz` they explore adversarial byte patterns. Each target
// cross-checks two independent implementations, so any discrepancy the
// fuzzer finds is a real bug, not a flaky oracle.

func bytesToSeq(raw []byte, maxLen int) seq.Seq {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	s := make(seq.Seq, len(raw))
	for i, b := range raw {
		s[i] = seq.Base(b & 3)
	}
	return s
}

func FuzzLinearVsQuadratic(f *testing.F) {
	f.Add([]byte("ACGT"), []byte("AGT"))
	f.Add([]byte(""), []byte("TTTT"))
	f.Add([]byte("AAAAAAAA"), []byte("AAAA"))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, []byte{3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := bytesToSeq(rawA, 64)
		b := bytesToSeq(rawB, 64)
		p := DefaultParams()
		want := GotohScore(a, b, p).Score
		res := GotohAlignLinear(a, b, p)
		if res.Score != want {
			t.Fatalf("linear %d != quadratic %d (a=%v b=%v)", res.Score, want, a, b)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Fatalf("invalid cigar: %v", err)
		}
	})
}

// FuzzEngineEquivalence pins the word-packed engine to the preserved
// scalar reference (engine_ref.go) bit for bit: score, in-band flag, clip
// certificate, cell count, window trajectory and CIGAR must all agree on
// arbitrary pairs, bands and heuristic variants, in both score-only and
// traceback modes.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte("ACGTACGTACGT"), []byte("ACGAACGT"), uint8(8), true, true)
	f.Add([]byte(""), []byte("TTTT"), uint8(2), false, false)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), []byte("AAAA"), uint8(3), true, false)
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 3, 2, 1, 0}, []byte{3, 2, 1, 0}, uint8(63), false, true)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, wRaw uint8, traceback, steer bool) {
		a := bytesToSeq(rawA, 96)
		b := bytesToSeq(rawB, 96)
		w := 2 + int(wRaw)%96
		p := DefaultParams()
		v := AdaptiveVariant{SteerTies: steer}
		s := NewScratch()
		got, gotOff := s.adaptiveBand(a, b, p, w, traceback, v)
		want, wantOff := adaptiveBandRef(a, b, p, w, traceback, v)
		if got.Score != want.Score || got.InBand != want.InBand || got.Clipped != want.Clipped ||
			got.Cells != want.Cells || got.Steps != want.Steps {
			t.Fatalf("packed engine diverged (w=%d tb=%v steer=%v):\n got  %+v\n want %+v\n a=%v\n b=%v",
				w, traceback, steer, got, want, a, b)
		}
		if got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("cigar diverged (w=%d steer=%v): %q != %q (a=%v b=%v)", w, steer, got.Cigar, want.Cigar, a, b)
		}
		if len(gotOff) != len(wantOff) {
			t.Fatalf("offset vector length %d != %d", len(gotOff), len(wantOff))
		}
		for i := range gotOff {
			if gotOff[i] != wantOff[i] {
				t.Fatalf("window trajectory diverged at t=%d: %d != %d (w=%d a=%v b=%v)",
					i, gotOff[i], wantOff[i], w, a, b)
			}
		}
	})
}

func FuzzBandedNeverBeatsOptimal(f *testing.F) {
	f.Add([]byte("ACGTACGT"), []byte("ACGAACGT"), uint8(8))
	f.Add([]byte("AAAA"), []byte("TTTTTTTT"), uint8(4))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, wRaw uint8) {
		a := bytesToSeq(rawA, 48)
		b := bytesToSeq(rawB, 48)
		w := 2 + int(wRaw)%64
		p := DefaultParams()
		opt := GotohScore(a, b, p).Score
		if st := StaticBandScore(a, b, p, w); st.InBand && st.Score > opt {
			t.Fatalf("static band w=%d beats optimal: %d > %d", w, st.Score, opt)
		}
		ad := AdaptiveBandScore(a, b, p, w)
		if ad.InBand && ad.Score > opt {
			t.Fatalf("adaptive band w=%d beats optimal: %d > %d", w, ad.Score, opt)
		}
		if ad.InBand {
			res := AdaptiveBandAlign(a, b, p, w)
			if res.Cigar != nil {
				if err := res.Cigar.Validate(a, b); err != nil {
					t.Fatalf("adaptive cigar invalid: %v", err)
				}
				if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
					t.Fatalf("cigar implies %d, scored %d", got, res.Score)
				}
			}
		}
	})
}
