package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

func TestDefaultVariantMatchesDefaultEntryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		a, b := mutatedPair(rng, 100+rng.Intn(200), 0.1)
		want := AdaptiveBandScore(a, b, p, 32)
		got := AdaptiveBandScoreVariant(a, b, p, 32, DefaultVariant())
		if got.Score != want.Score || got.InBand != want.InBand {
			t.Fatalf("variant default diverges from entry point")
		}
	}
}

// TestTieSteeringAblation reproduces the DESIGN.md ablation: without the
// tie-break steering, length-skewed pairs depend on the window clamps
// alone and lose the optimal path more often.
func TestTieSteeringAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p := DefaultParams()
	steered, unsteered := 0, 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		// Identical-content pairs whose lengths differ by ~3x the band:
		// the optimal path needs a long tail gap.
		n := 300 + rng.Intn(300)
		skew := 80 + rng.Intn(60)
		a := seq.Random(rng, n)
		b := a[:n-skew].Clone()
		full := GotohScore(a, b, p).Score
		if r := AdaptiveBandScoreVariant(a, b, p, 32, DefaultVariant()); r.InBand && r.Score == full {
			steered++
		}
		if r := AdaptiveBandScoreVariant(a, b, p, 32, AdaptiveVariant{}); r.InBand && r.Score == full {
			unsteered++
		}
	}
	if steered < unsteered {
		t.Errorf("steering hurt: %d/%d vs %d/%d without", steered, trials, unsteered, trials)
	}
	if steered == unsteered {
		t.Logf("no separation on this sample (steered %d, unsteered %d)", steered, unsteered)
	}
	if steered < trials*3/4 {
		t.Errorf("steered variant only optimal on %d/%d skewed pairs", steered, trials)
	}
}

func TestUnsteeredStillTerminates(t *testing.T) {
	// Even without steering, the clamps must keep the window legal and
	// the result well-formed (InBand may legitimately be false).
	rng := rand.New(rand.NewSource(63))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		a := seq.Random(rng, 50+rng.Intn(400))
		b := seq.Random(rng, 50+rng.Intn(400))
		r := AdaptiveBandScoreVariant(a, b, p, 16, AdaptiveVariant{})
		if r.InBand && r.Score < NegInf/2 {
			t.Fatalf("in-band result with sentinel score: %+v", r)
		}
	}
}
