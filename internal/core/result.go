package core

import (
	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// Result is the outcome of one pairwise global alignment.
type Result struct {
	// Score is the global alignment score H(m,n). When InBand is false the
	// band never reached cell (m,n) and Score is NegInf.
	Score int32
	// Cigar is the optimal path, nil for score-only alignments.
	Cigar cigar.Cigar
	// Cells is the number of DP cells evaluated; the experiments use it as
	// the work metric (the paper's Workload = (m+n)·w estimate is checked
	// against it).
	Cells int64
	// Steps is the number of band steps: anti-diagonals for the adaptive
	// aligner, rows for the static/full ones.
	Steps int
	// InBand reports whether the terminal cell (m,n) was inside the band.
	// Full-matrix alignments always set it.
	InBand bool
	// Clipped reports that the banded result is not certified optimal.
	// The banded aligners bound every path that could escape the band
	// (band-edge cell score plus an admissible estimate of what remains,
	// escapeBound); Clipped is set when some escaping path could in
	// principle outscore the result. The certificate is sound — a banded
	// score below the exact optimum is always flagged — but conservative:
	// a near-miss potential may flag a result that is in fact optimal.
	// A clipped result is still self-consistent (its CIGAR reproduces its
	// score); the host's escalation ladder re-aligns clipped pairs at
	// wider bands until the flag clears. Full-matrix alignments never
	// set it.
	Clipped bool
	// Overflowed reports that the 16-bit narrow-lane engine hit a
	// saturation sticky bit and can no longer certify exactness; Score and
	// the other fields are meaningless. Only the narrow engine sets it —
	// the host escalates overflowed pairs to the full-width kernel, which
	// recomputes them exactly. The flag is sound in the same sense as
	// Clipped: a narrow result without it is bit-identical to the wide
	// engine's.
	Overflowed bool
}

// Aligner is the common interface over the four DP formulations; the CPU
// baseline and the experiment harness are written against it.
type Aligner interface {
	// Align computes the global alignment of query a against target b.
	// When traceback is false only the score is produced (the 16S
	// experiment's mode); implementations skip building the BT structure.
	Align(a, b seq.Seq, traceback bool) Result
	// Name identifies the formulation in experiment tables.
	Name() string
}

// Full is the exact O(m·n) affine-gap aligner (equations 3–5).
type Full struct{ P Params }

// Name implements Aligner.
func (f Full) Name() string { return "full-gotoh" }

// Align implements Aligner.
func (f Full) Align(a, b seq.Seq, traceback bool) Result {
	if traceback {
		return GotohAlign(a, b, f.P)
	}
	return GotohScore(a, b, f.P)
}

// StaticBand is the fixed-band aligner (§3.3), the formulation minimap2's
// KSW2 kernel implements; it is the CPU baseline's engine.
type StaticBand struct {
	P Params
	// W is the band size: the number of cells computed per row,
	// window |i-j| ≤ W/2.
	W int
}

// Name implements Aligner.
func (s StaticBand) Name() string { return "static-band" }

// Align implements Aligner.
func (s StaticBand) Align(a, b seq.Seq, traceback bool) Result {
	if traceback {
		return StaticBandAlign(a, b, s.P, s.W)
	}
	return StaticBandScore(a, b, s.P, s.W)
}

// AdaptiveBand is the paper's aligner: a W-cell anti-diagonal window that
// shifts right or down to follow the highest-scoring path (§3.4).
type AdaptiveBand struct {
	P Params
	W int
}

// Name implements Aligner.
func (a AdaptiveBand) Name() string { return "adaptive-band" }

// Align implements Aligner.
func (ab AdaptiveBand) Align(a, b seq.Seq, traceback bool) Result {
	if traceback {
		return AdaptiveBandAlign(a, b, ab.P, ab.W)
	}
	return AdaptiveBandScore(a, b, ab.P, ab.W)
}
