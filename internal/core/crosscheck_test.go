package core_test

// Cross-implementation consistency: the repository contains five
// independent routes to the same affine-gap optimum — quadratic Gotoh,
// linear-memory Myers-Miller, wide static band, wide adaptive band, and
// the wavefront algorithm. This suite drives them against each other over
// randomized workloads; any index or recurrence bug in one of them breaks
// the agreement.

import (
	"math/rand"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/seq"
	"pimnw/internal/wfa"
)

func TestAllAlignersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	params := core.DefaultParams()
	for trial := 0; trial < 60; trial++ {
		var a, b seq.Seq
		switch trial % 5 {
		case 0: // unrelated
			a = seq.Random(rng, rng.Intn(120))
			b = seq.Random(rng, rng.Intn(120))
		case 1: // close long-read pair
			a = seq.Random(rng, 100+rng.Intn(400))
			b = seq.UniformErrors(0.05).Apply(rng, a)
		case 2: // highly divergent
			a = seq.Random(rng, 50+rng.Intn(150))
			b = seq.UniformErrors(0.4).Apply(rng, a)
		case 3: // structural gap
			a = seq.Random(rng, 150+rng.Intn(200))
			cut := 20 + rng.Intn(60)
			pos := rng.Intn(len(a) - cut)
			b = append(a[:pos:pos], a[pos+cut:]...)
		default: // homopolymer-rich (tie-heavy recurrences)
			a = make(seq.Seq, 40+rng.Intn(100))
			for i := range a {
				a[i] = seq.Base(rng.Intn(2))
			}
			b = seq.UniformErrors(0.2).Apply(rng, a)
		}

		want := core.GotohScore(a, b, params).Score
		wide := 2 * (len(a) + len(b) + 2)

		if got := core.GotohAlign(a, b, params); got.Score != want {
			t.Fatalf("trial %d: quadratic traceback %d != %d", trial, got.Score, want)
		}
		if got := core.GotohAlignLinear(a, b, params); got.Score != want {
			t.Fatalf("trial %d: linear-memory %d != %d", trial, got.Score, want)
		}
		if got := core.StaticBandScore(a, b, params, wide); !got.InBand || got.Score != want {
			t.Fatalf("trial %d: wide static band %d != %d", trial, got.Score, want)
		}
		if got, err := wfa.ScoreParams(a, b, params); err != nil || got.Score != want {
			t.Fatalf("trial %d: wfa %d != %d (%v)", trial, got.Score, want, err)
		}
		// The adaptive band is a heuristic even when wide, but on every
		// workload class above a window covering min(m,n)+2 diagonals
		// never drops the optimal path.
		if got := core.AdaptiveBandScore(a, b, params, wide); got.InBand && got.Score > want {
			t.Fatalf("trial %d: adaptive beats optimal: %d > %d", trial, got.Score, want)
		}
	}
}

func TestTracebacksAllValidAndOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	params := core.DefaultParams()
	for trial := 0; trial < 40; trial++ {
		a := seq.Random(rng, 30+rng.Intn(150))
		b := seq.UniformErrors(0.15).Apply(rng, a)
		want := core.GotohScore(a, b, params).Score

		type route struct {
			name string
			res  core.Result
		}
		wres, err := wfa.AlignParams(a, b, params)
		if err != nil {
			t.Fatal(err)
		}
		routes := []route{
			{"quadratic", core.GotohAlign(a, b, params)},
			{"linear", core.GotohAlignLinear(a, b, params)},
			{"static-wide", core.StaticBandAlign(a, b, params, 2*(len(a)+len(b)))},
			{"wfa", core.Result{Score: wres.Score, Cigar: wres.Cigar, InBand: true}},
		}
		for _, r := range routes {
			if r.res.Score != want {
				t.Fatalf("trial %d %s: score %d != %d", trial, r.name, r.res.Score, want)
			}
			if err := r.res.Cigar.Validate(a, b); err != nil {
				t.Fatalf("trial %d %s: %v", trial, r.name, err)
			}
			if got := core.ScoreFromCigar(r.res.Cigar, params); got != want {
				t.Fatalf("trial %d %s: cigar implies %d", trial, r.name, got)
			}
		}
	}
}
