package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

func TestLinearMatchesQuadraticScore(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := DefaultParams()
	for trial := 0; trial < 150; trial++ {
		var a, b seq.Seq
		switch trial % 4 {
		case 0:
			a = seq.Random(rng, rng.Intn(40))
			b = seq.Random(rng, rng.Intn(40))
		case 1:
			a, b = mutatedPair(rng, 5+rng.Intn(120), 0.1)
		case 2:
			a, b = mutatedPair(rng, 5+rng.Intn(120), 0.35)
		default: // skew and big gaps
			a = seq.Random(rng, 20+rng.Intn(150))
			cut := rng.Intn(len(a) / 2)
			b = append(a[:cut:cut], a[cut+rng.Intn(len(a)-cut):]...)
		}
		want := GotohScore(a, b, p).Score
		res := GotohAlignLinear(a, b, p)
		if res.Score != want {
			t.Fatalf("trial %d (%d/%d): linear %d != quadratic %d", trial, len(a), len(b), res.Score, want)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Fatalf("trial %d: invalid cigar: %v", trial, err)
		}
	}
}

func TestLinearMatchesQuadraticOnVariedParams(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	paramSets := []Params{
		{Match: 2, Mismatch: -4, GapOpen: 4, GapExt: 2},
		{Match: 1, Mismatch: -1, GapOpen: 0, GapExt: 1}, // linear gaps
		{Match: 4, Mismatch: -2, GapOpen: 10, GapExt: 1},
		{Match: 2, Mismatch: -6, GapOpen: 1, GapExt: 3},
	}
	for _, p := range paramSets {
		for trial := 0; trial < 30; trial++ {
			a := seq.Random(rng, rng.Intn(80))
			b := seq.Random(rng, rng.Intn(80))
			want := GotohScore(a, b, p).Score
			res := GotohAlignLinear(a, b, p)
			if res.Score != want {
				t.Fatalf("params %+v: linear %d != quadratic %d (a=%v b=%v)", p, res.Score, want, a, b)
			}
			if err := res.Cigar.Validate(a, b); err != nil {
				t.Fatalf("params %+v: %v", p, err)
			}
		}
	}
}

func TestLinearEdges(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("ACGT")
	res := GotohAlignLinear(nil, nil, p)
	if res.Score != 0 || len(res.Cigar) != 0 {
		t.Errorf("empty/empty: %+v", res)
	}
	res = GotohAlignLinear(a, nil, p)
	if res.Cigar.String() != "4I" || res.Score != -p.GapCost(4) {
		t.Errorf("vs empty: %+v cigar=%v", res, res.Cigar)
	}
	res = GotohAlignLinear(nil, a, p)
	if res.Cigar.String() != "4D" {
		t.Errorf("empty query: %v", res.Cigar)
	}
	res = GotohAlignLinear(a, a, p)
	if res.Cigar.String() != "4=" || res.Score != 8 {
		t.Errorf("identical: %+v cigar=%v", res, res.Cigar)
	}
}

func TestLinearSingleRow(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("G")
	b := seq.MustFromString("AAGAA")
	res := GotohAlignLinear(a, b, p)
	want := GotohScore(a, b, p).Score
	if res.Score != want {
		t.Errorf("single row: %d, want %d", res.Score, want)
	}
	if err := res.Cigar.Validate(a, b); err != nil {
		t.Error(err)
	}
}

func TestLinearLongGapSingleRun(t *testing.T) {
	// A 60-base deletion crossing many split levels must still come out
	// as exactly one gap run (the tb/te open-waiver machinery).
	rng := rand.New(rand.NewSource(73))
	p := DefaultParams()
	a := seq.Random(rng, 300)
	b := append(a[:120:120], a[180:]...)
	res := GotohAlignLinear(a, b, p)
	want := GotohScore(a, b, p).Score
	if res.Score != want {
		t.Fatalf("score %d, want %d", res.Score, want)
	}
	st := res.Cigar.Stats()
	if st.GapOpens != 1 || st.Insertions != 60 {
		t.Errorf("expected one 60-base run, got %v", res.Cigar)
	}
}

func TestLinearLongPair(t *testing.T) {
	// The use case: exact CIGAR at a length where the quadratic traceback
	// matrix would be 100 MB.
	if testing.Short() {
		t.Skip("long pair in -short mode")
	}
	rng := rand.New(rand.NewSource(74))
	p := DefaultParams()
	a, b := mutatedPair(rng, 10_000, 0.08)
	res := GotohAlignLinear(a, b, p)
	want := GotohScore(a, b, p).Score
	if res.Score != want {
		t.Fatalf("10k pair: linear %d != quadratic %d", res.Score, want)
	}
	if err := res.Cigar.Validate(a, b); err != nil {
		t.Fatal(err)
	}
	if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
		t.Fatalf("cigar implies %d", got)
	}
}
