package core

import (
	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// GotohAlignLinear computes the exact affine-gap alignment with traceback
// in O(m+n) memory (Myers & Miller, CABIOS 1988 — the divide-and-conquer
// refinement of Hirschberg's trick to the Gotoh recurrences). GotohAlign's
// full traceback matrix needs m·n bytes, which at long-read scale (30 kb
// pairs ⇒ ~1 GB) is exactly the wall §3.3 describes; this variant provides
// the exact CIGAR ground truth at any length, at the cost of ~2x the DP
// work.
func GotohAlignLinear(a, b seq.Seq, p Params) Result {
	var c cigar.Cigar
	c = mmAlign(a, b, p, p.GapOpen, p.GapOpen, c)
	res := Result{
		Score:  ScoreFromCigar(c, p),
		Cigar:  c,
		Cells:  2 * int64(len(a)) * int64(len(b)),
		Steps:  len(a),
		InBand: true,
	}
	return res
}

// mmAlign appends the optimal alignment of a against b to c. tb (te) is
// the open penalty of a vertical gap leaving through the top-left
// (bottom-right) corner: the recursion sets it to zero when the parent's
// crossing gap continues through that corner, so the single gap-open of a
// split vertical run is charged exactly once.
func mmAlign(a, b seq.Seq, p Params, tb, te int32, c cigar.Cigar) cigar.Cigar {
	m, n := len(a), len(b)
	switch {
	case m == 0:
		return c.Append(cigar.Del, n)
	case n == 0:
		return c.Append(cigar.Ins, m)
	case m == 1:
		return mmBase(a[0], b, p, tb, te, c)
	}

	mid := m / 2
	g := p.GapOpen

	ccF, ddF := mmForward(a[:mid], b, p, tb)
	ccR, ddR := mmForward(reverse(a[mid:]), reverse(b), p, te)

	// Join: best column j, either through the H state (type 1) or through
	// a vertical gap crossing the split row (type 2, one open refunded).
	bestJ, bestType, bestScore := 0, 1, NegInf
	for j := 0; j <= n; j++ {
		if s := ccF[j] + ccR[n-j]; s > bestScore {
			bestJ, bestType, bestScore = j, 1, s
		}
		// Type 2 deletes a[mid-1] and a[mid]; both exist since m >= 2.
		if s := ddF[j] + ddR[n-j] + g; s > bestScore {
			bestJ, bestType, bestScore = j, 2, s
		}
	}

	if bestType == 1 {
		c = mmAlign(a[:mid], b[:bestJ], p, tb, g, c)
		return mmAlign(a[mid:], b[bestJ:], p, g, te, c)
	}
	// Type 2: the crossing gap deletes a[mid-1] and a[mid] around the
	// split; the halves inherit a waived open on their facing corners.
	c = mmAlign(a[:mid-1], b[:bestJ], p, tb, 0, c)
	c = c.Append(cigar.Ins, 2)
	return mmAlign(a[mid+1:], b[bestJ:], p, 0, te, c)
}

// mmForward runs the linear-memory Gotoh forward pass over all rows of a,
// returning cc (best score ending at (len(a), j) in any state) and dd
// (best score ending with a vertical-gap move into row len(a)). tb is the
// top-left corner's vertical open penalty.
func mmForward(a, b seq.Seq, p Params, tb int32) (cc, dd []int32) {
	m, n := len(a), len(b)
	g, h := p.GapOpen, p.GapExt
	cc = make([]int32, n+1)
	dd = make([]int32, n+1)
	cc[0] = 0
	t := -g
	for j := 1; j <= n; j++ {
		t -= h
		cc[j] = t
		dd[j] = t - g
	}
	dd[0] = NegInf // cannot end with a vertical move before any row
	t = -tb
	for i := 1; i <= m; i++ {
		s := cc[0]
		t -= h
		cVal := t
		cc[0] = cVal
		dd[0] = cVal // the column-0 chain is itself a vertical gap
		e := NegInf
		for j := 1; j <= n; j++ {
			e = max2(e, cVal-g) - h
			dd[j] = max2(dd[j], cc[j]-g) - h
			cVal = max3(dd[j], e, s+p.Sub(a[i-1], b[j-1]))
			s = cc[j]
			cc[j] = cVal
		}
	}
	return cc, dd
}

// mmBase solves the single-query-row case directly: either a[0] pairs with
// some b[j] (horizontal gaps around it), or a[0] sits in a vertical gap
// whose open is waived on the cheaper border.
func mmBase(a0 seq.Base, b seq.Seq, p Params, tb, te int32, c cigar.Cigar) cigar.Cigar {
	n := len(b)
	g, h := p.GapOpen, p.GapExt
	gapP := func(x int) int32 {
		if x <= 0 {
			return 0
		}
		return g + int32(x)*h
	}
	bestJ, bestScore := 0, NegInf
	for j := 1; j <= n; j++ {
		s := p.Sub(a0, b[j-1]) - gapP(j-1) - gapP(n-j)
		if s > bestScore {
			bestJ, bestScore = j, s
		}
	}
	openV := tb
	if te < openV {
		openV = te
	}
	vertical := -(openV + h) - gapP(n)
	if vertical > bestScore {
		if tb <= te {
			c = c.Append(cigar.Ins, 1)
			return c.Append(cigar.Del, n)
		}
		c = c.Append(cigar.Del, n)
		return c.Append(cigar.Ins, 1)
	}
	c = c.Append(cigar.Del, bestJ-1)
	if b[bestJ-1] == a0 {
		c = c.Append(cigar.Match, 1)
	} else {
		c = c.Append(cigar.Mismatch, 1)
	}
	return c.Append(cigar.Del, n-bestJ)
}

func reverse(s seq.Seq) seq.Seq {
	out := make(seq.Seq, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
