package core

import (
	"pimnw/internal/seq"
)

// Narrow-lane adaptive banded Gotoh: the same anti-diagonal window as
// adaptiveBand (banded_adaptive.go), but with four 16-bit DP cells packed
// per uint64 word and per-lane saturating add/max — the adaptive-precision
// trick KSW2 popularised, mapped onto the PR-4 lane layout. Banded scores
// of bounded-length windows fit comfortably in 16 bits once they are
// stored relative to a running base, so the interior cell loop runs four
// lanes per ALU op instead of one.
//
// Value encoding. Lane values are unsigned 15-bit magnitudes under a bias:
//
//	stored = trueScore − base + narrowCenter,  live ⇔ stored ∈ (0, 2^15)
//	stored = 0                                 ⇔ dead (the wide NegInf)
//
// Bit 15 of every lane is kept clear between operations so that it can
// absorb the borrow/carry of the SWAR primitives — a saturating-at-zero
// subtract is (x|H)−y followed by a select on the borrow bit, a saturating
// add traps the carry into the sticky accumulator — with no cross-lane
// propagation. `base` is rebased every narrowRebaseEvery anti-diagonals by
// a scalar pass that re-centres the window maximum, so only the score
// *spread across one window* must fit the lane, not the absolute score.
//
// Exactness discipline. Dead lanes absorb at zero, which *over*-estimates
// the true −∞; the engine therefore guards every interior H output
// against a params-derived floor narrowGuard: any output below it — which
// is where a dead-derived or clamped chain would have to surface before
// it could win a max — sets the sticky flag, as does any saturating add
// carry, any boundary write outside the representable range, and any
// rebase that would push a live lane out of range. The invariant, pinned
// by the differential sweeps and FuzzNarrowWideEquivalence: if the sticky
// flag stays clear, every consulted lane held its exact wide-engine value
// and the final Result is bit-identical to adaptiveBand's. If it sets,
// the engine returns Overflowed and the caller (the host ladder, or the
// auto path in AdaptiveBandScore) escalates to the wide kernel.

const (
	// narrowCenter is the storage bias: a freshly rebased window maximum
	// sits mid-range, leaving symmetric headroom for upward drift and the
	// downward spread across the window.
	narrowCenter = 16384
	// narrowTop is the largest representable live lane value.
	narrowTop = 0x7fff
	// narrowRebaseEvery is the rebase cadence in anti-diagonals; between
	// rebases the window maximum drifts at most ±maxStep per step.
	narrowRebaseEvery = 512
	// narrowSlack is how far the window maximum may sit from narrowCenter
	// before a rebase pass actually shifts the lanes.
	narrowSlack = 2048
	// narrowParamMax bounds each scoring parameter magnitude so that the
	// broadcast SWAR constants are faithful and lane sums cannot carry
	// across lanes.
	narrowParamMax = 4096

	nH       = 0x8000800080008000 // bit 15 of every lane
	nLow     = 0x7fff7fff7fff7fff // low 15 bits of every lane
	lanesOne = 0x0001000100010001 // broadcast multiplier
)

// narrowGuard is the live-lane floor: dead-derived candidates are at most
// Match and live chains decay by at most GapOpen+2·GapExt or −Mismatch per
// step, so anything exact that dips below this floor had to pass through a
// flagged output first.
func narrowGuard(p Params) int32 {
	return 2*(p.Match-p.Mismatch+p.GapOpen+2*p.GapExt) + 8
}

// narrowParamsFit reports whether the scoring parameters are small enough
// for faithful 16-bit broadcast arithmetic.
func narrowParamsFit(p Params) bool {
	return p.Match <= narrowParamMax && -p.Mismatch <= narrowParamMax &&
		p.GapOpen <= narrowParamMax && p.GapExt <= narrowParamMax
}

// NarrowFits reports whether the 16-bit narrow-lane engine has the
// headroom to run band width w under params p without overflowing in the
// common case: guard floor + worst-case score spread across one window +
// worst-case drift between rebases must fit below the storage bias. It is
// an a-priori admission test — the saturation sticky bits remain the
// runtime safety net — and is what `-lanes=auto` and kernel geometry
// planning consult.
func NarrowFits(p Params, w int) bool {
	if w < 2 {
		w = 2
	}
	if !narrowParamsFit(p) {
		return false
	}
	maxStep := max(p.Match, p.GapOpen+2*p.GapExt, -p.Mismatch)
	spread := int64(w)*int64(p.Match+2*p.GapExt) + 2*int64(p.GapOpen) + int64(p.GapExt)
	drift := int64(narrowRebaseEvery)*int64(maxStep) + narrowSlack
	return int64(narrowGuard(p))+spread+drift+256 < narrowCenter
}

// AdaptiveBandScoreNarrow is the explicit narrow-lane entry point: the
// score-only adaptive-band alignment in 16-bit lanes, Result.Overflowed
// set (and nothing else valid) when saturation was detected. The DPU
// kernel model runs this when the lane width is 16; overflowed pairs ride
// the host escalation ladder to the wide kernel.
func AdaptiveBandScoreNarrow(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res, _ := s.adaptiveBandNarrow(a, b, p, w, DefaultVariant())
	PutScratch(s)
	return res
}

// AdaptiveBandScoreNarrow is the explicit-scratch form of the package
// function.
func (s *Scratch) AdaptiveBandScoreNarrow(a, b seq.Seq, p Params, w int) Result {
	res, _ := s.adaptiveBandNarrow(a, b, p, w, DefaultVariant())
	return res
}

// AdaptiveBandScoreWide is the explicit full-width entry point, bypassing
// the narrow-lane fast path of AdaptiveBandScore.
func AdaptiveBandScoreWide(a, b seq.Seq, p Params, w int) Result {
	s := GetScratch()
	res, _ := s.adaptiveBand(a, b, p, w, false, DefaultVariant())
	PutScratch(s)
	return res
}

// AdaptiveBandScoreWide is the explicit-scratch form of the package
// function.
func (s *Scratch) AdaptiveBandScoreWide(a, b seq.Seq, p Params, w int) Result {
	res, _ := s.adaptiveBand(a, b, p, w, false, DefaultVariant())
	return res
}

// getLane16 and setLane16 access one 16-bit lane of a packed word array.
func getLane16(a []uint64, l int) uint16 {
	return uint16(a[l>>2] >> (uint(l&3) * 16))
}

func setLane16(a []uint64, l int, v uint16) {
	sh := uint(l&3) * 16
	g := l >> 2
	a[g] = a[g]&^(uint64(0xffff)<<sh) | uint64(v)<<sh
}

// sub016 is the scalar twin of the SWAR saturating-at-zero subtract.
func sub016(x, c uint16) uint16 {
	if x >= c {
		return x - c
	}
	return 0
}

// narrowRebase shifts every live lane of arr down by shift (up when shift
// is negative), leaving dead lanes dead. It returns false if any live
// lane would leave the representable (0, narrowTop] range — exactness can
// then no longer be certified and the caller must set the sticky flag.
func narrowRebase(arr []uint64, shift int32) bool {
	ok := true
	for g, wd := range arr {
		if wd == 0 {
			continue
		}
		var out uint64
		for k := uint(0); k < 4; k++ {
			v := uint16(wd >> (k * 16))
			if v == 0 {
				continue
			}
			nv := int32(v) - shift
			if nv <= 0 || nv > narrowTop {
				ok = false
				nv = 1
			}
			out |= uint64(uint16(nv)) << (k * 16)
		}
		arr[g] = out
	}
	return ok
}

// adaptiveBandNarrow runs the 16-bit engine. It mirrors adaptiveBand's
// window bookkeeping statement for statement — shift decisions, clamps,
// clip certificate, flank and boundary handling, cell metric — so that a
// non-overflowed run is bit-identical; only the interior cell loop and the
// value encoding differ. Returns ok=false (Result.Overflowed) on any
// saturation sticky bit.
func (s *Scratch) adaptiveBandNarrow(a, b seq.Seq, p Params, w int, variant AdaptiveVariant) (Result, bool) {
	m, n := len(a), len(b)
	if w < 2 {
		w = 2
	}
	res := Result{Steps: m + n}
	if !narrowParamsFit(p) {
		res.Score = NegInf
		res.Overflowed = true
		return res, false
	}
	if m == 0 && n == 0 {
		res.InBand = true
		s.off = growI32(s.off, 1)
		s.off[0] = 0
		return res, true
	}

	nDiag := m + n + 1
	s.off = growI32(s.off, nDiag)
	off := s.off
	off[0] = 0

	// Lane layout as in adaptiveBand — cell p at lane p+1, dead sentinels
	// at lanes 0 and w+1 — packed four lanes per word, plus one permanent
	// zero pad word so the funnel-shifted neighbour loads below never
	// bound-check.
	lanes := w + 2
	words := (lanes+3)/4 + 1
	s.nh0 = growU64(s.nh0, words)
	s.nh1 = growU64(s.nh1, words)
	s.nh2 = growU64(s.nh2, words)
	s.ni0 = growU64(s.ni0, words)
	s.ni1 = growU64(s.ni1, words)
	s.nd0 = growU64(s.nd0, words)
	s.nd1 = growU64(s.nd1, words)
	s.nsub = growU64(s.nsub, words)
	hPrev, hCur, hNext := s.nh0, s.nh1, s.nh2
	iCur, iNext := s.ni0, s.ni1
	dCur, dNext := s.nd0, s.nd1
	nsub := s.nsub
	for g := 0; g < words; g++ {
		hPrev[g], hCur[g], hNext[g] = 0, 0, 0
		iCur[g], iNext[g] = 0, 0
		dCur[g], dNext[g] = 0, 0
	}
	setLane16(hCur, 1, narrowCenter) // cell (0,0): score 0 at bias, base 0
	res.Cells = 1

	pa, pb := s.packOperands(a, b)

	// Broadcast SWAR constants and the 16-entry substitution LUT: index
	// bit k set ⇔ lane k matches, lane value Match−Mismatch (added on top
	// of the unconditional Mismatch fold below).
	e16 := uint16(p.GapExt)
	oe16 := uint16(p.GapOpen + p.GapExt)
	nm16 := uint16(-p.Mismatch)
	gb := narrowGuard(p)
	gb16 := uint16(gb)
	eV := uint64(e16) * lanesOne
	oeV := uint64(oe16) * lanesOne
	nmV := uint64(nm16) * lanesOne
	gbV := uint64(gb16) * lanesOne
	smd := uint64(uint16(p.Match - p.Mismatch))
	var lut [16]uint64
	for i := 1; i < 16; i++ {
		var v uint64
		for k := uint(0); k < 4; k++ {
			if i>>k&1 == 1 {
				v |= smd << (k * 16)
			}
		}
		lut[i] = v
	}

	var base int32 // cumulative rebase: trueScore = stored − narrowCenter + base
	dPrevShift := 0
	maxPot := NegInf
	overflow := false

	// nval converts a stored lane to the wide engine's value domain.
	nval := func(st uint16) int32 {
		if st == 0 {
			return NegInf
		}
		return int32(st) - narrowCenter + base
	}

	for t := 0; t < m+n; t++ {
		d := int(chooseShift(nval(getLane16(hCur, 1)), nval(getLane16(hCur, w)), off[t], t, m, n, w, variant))
		loI := t + 1 - n
		if loI < 0 {
			loI = 0
		}
		hiI := t + 1
		if hiI > m {
			hiI = m
		}
		if int(off[t])+d+w-1 < loI {
			d = 1
		}
		if int(off[t])+d > hiI {
			d = 0
		}
		// Clip certificate, identical to adaptiveBand with dead lanes
		// mapped back to NegInf.
		{
			o := int(off[t])
			if d == 1 {
				if j := t - o; j >= 0 && j < n && o <= m {
					if hv := nval(getLane16(hCur, 1)); hv > NegInf/2 {
						if pot := hv + escapeBound(p, m-o, n-j); pot > maxPot {
							maxPot = pot
						}
					}
				}
			} else {
				i := o + w - 1
				if j := t - i; i >= 0 && i < m && j >= 0 && j <= n {
					if hv := nval(getLane16(hCur, w)); hv > NegInf/2 {
						if pot := hv + escapeBound(p, m-i, n-j); pot > maxPot {
							maxPot = pot
						}
					}
				}
			}
		}

		o := int(off[t]) + d
		off[t+1] = int32(o)

		pLo := 0
		if v := 1 - o; v > pLo {
			pLo = v
		}
		if v := t + 1 - n - o; v > pLo {
			pLo = v
		}
		pHi := w - 1
		if v := m - o; v < pHi {
			pHi = v
		}
		if v := t - o; v < pHi {
			pHi = v
		}

		// Out-of-matrix flanks become dead lanes.
		for q := 0; q < pLo; q++ {
			setLane16(hNext, q+1, 0)
			setLane16(iNext, q+1, 0)
			setLane16(dNext, q+1, 0)
		}
		for q := pHi + 1; q < w; q++ {
			setLane16(hNext, q+1, 0)
			setLane16(iNext, q+1, 0)
			setLane16(dNext, q+1, 0)
		}

		cLo := 0
		if v := t + 1 - n - o; v > cLo {
			cLo = v
		}
		cHi := w - 1
		if v := m - o; v < cHi {
			cHi = v
		}
		if v := t + 1 - o; v < cHi {
			cHi = v
		}
		if cHi >= cLo {
			res.Cells += int64(cHi - cLo + 1)
		}

		// Matrix-boundary cells, peeled exactly as in adaptiveBand; a
		// boundary value outside the representable window is a sticky.
		if o == 0 && t+1 <= n {
			rel := int64(-p.GapCost(t+1)) - int64(base) + narrowCenter
			if rel <= 0 || rel > narrowTop {
				overflow = true
				rel = 1
			}
			setLane16(hNext, 1, uint16(rel))
			setLane16(dNext, 1, uint16(rel))
			setLane16(iNext, 1, 0)
		}
		if q := t + 1 - o; q >= 0 && q < w && t+1 <= m {
			rel := int64(-p.GapCost(t+1)) - int64(base) + narrowCenter
			if rel <= 0 || rel > narrowTop {
				overflow = true
				rel = 1
			}
			setLane16(hNext, q+1, uint16(rel))
			setLane16(iNext, q+1, uint16(rel))
			setLane16(dNext, q+1, 0)
		}

		if pLo <= pHi {
			dd := d + dPrevShift
			loLane := pLo + 1
			hiLane := pHi + 1
			gA := (loLane + 3) >> 2 // first word whose four lanes are all interior
			gB := (hiLane - 3) >> 2 // last such word (arithmetic shift: floor)

			var ovAcc uint64
			aiBase := o - 2         // a index of lane L is aiBase+L
			biBase := n - 2 - t + o // reversed-b index of lane L is biBase+L

			if gA <= gB {
				// Lane-aligned packed substitution words: lane values are
				// Match−Mismatch on a comparator hit, 0 otherwise; the
				// Mismatch part is folded in unconditionally via nmV below.
				for g := gA; g <= gB; {
					c0 := g * 4
					cm := seq.CompressMask(seq.MatchMask(pa, pb, aiBase+c0, biBase+c0))
					gEnd := min(g+8, gB+1)
					for ; g < gEnd; g++ {
						nsub[g] = lut[cm&0xf]
						cm >>= 4
					}
				}

				ovAcc |= narrowStepWords(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub,
					gA, gB, d, dd, eV, oeV, nmV, gbV)
			}

			// Partial words at the span edges, cell by cell with scalar
			// twins of the SWAR primitives (identical saturation and guard
			// semantics).
			edgeLo1, edgeHi1 := loLane, min(gA*4-1, hiLane)
			edgeLo2, edgeHi2 := max(gB*4+4, loLane), hiLane
			if gA > gB {
				edgeLo1, edgeHi1 = loLane, hiLane
				edgeLo2, edgeHi2 = 1, 0
			}
			for r := 0; r < 2; r++ {
				lo, hi := edgeLo1, edgeHi1
				if r == 1 {
					lo, hi = edgeLo2, edgeHi2
				}
				for L := lo; L <= hi; L++ {
					up := L - 1 + d
					dgl := L - 1 + dd
					hu := getLane16(hCur, up)
					iu := getLane16(iCur, up)
					hl := getLane16(hCur, up+1)
					dl := getLane16(dCur, up+1)
					hd := getLane16(hPrev, dgl)
					iv := sub016(iu, e16)
					if v := sub016(hu, oe16); v > iv {
						iv = v
					}
					dv := sub016(dl, e16)
					if v := sub016(hl, oe16); v > dv {
						dv = v
					}
					sum := uint32(hd)
					if seq.MatchMask(pa, pb, aiBase+L, biBase+L)&1 == 1 {
						sum += uint32(smd)
					}
					if sum > narrowTop {
						overflow = true
						sum = narrowTop
					}
					dg := sub016(uint16(sum), nm16)
					best := dg
					if iv > best {
						best = iv
					}
					if dv > best {
						best = dv
					}
					if best < gb16 {
						overflow = true
					}
					setLane16(hNext, L, best)
					setLane16(iNext, L, iv)
					setLane16(dNext, L, dv)
				}
			}
			if ovAcc != 0 {
				overflow = true
			}
		}

		hPrev, hCur, hNext = hCur, hNext, hPrev
		iCur, iNext = iNext, iCur
		dCur, dNext = dNext, dCur
		dPrevShift = d

		if overflow {
			res.Score = NegInf
			res.Overflowed = true
			return res, false
		}

		// Re-centre the window maximum so only the spread across one
		// window must fit the lane, not the absolute score.
		if (t+1)%narrowRebaseEvery == 0 {
			maxSt := uint16(0)
			for l := 1; l <= w; l++ {
				if v := getLane16(hCur, l); v > maxSt {
					maxSt = v
				}
			}
			if maxSt != 0 {
				shift := int32(maxSt) - narrowCenter
				if shift > narrowSlack || shift < -narrowSlack {
					ok := narrowRebase(hPrev, shift)
					ok = narrowRebase(hCur, shift) && ok
					ok = narrowRebase(iCur, shift) && ok
					ok = narrowRebase(dCur, shift) && ok
					base += shift
					if !ok {
						res.Score = NegInf
						res.Overflowed = true
						return res, false
					}
				}
			}
		}
	}

	pFinal := m - int(off[m+n])
	if pFinal < 0 || pFinal >= w {
		res.Score = NegInf
		return res, true
	}
	st := getLane16(hCur, pFinal+1)
	if st == 0 {
		res.Score = NegInf
		return res, true
	}
	res.InBand = true
	res.Score = int32(st) - narrowCenter + base
	res.Clipped = maxPot > res.Score
	return res, true
}
