package core

import (
	"math/rand"

	"pimnw/internal/seq"
)

// refAffineScore is an independent reference implementation of the affine
// gap model (equations 3–5) used by the tests: direct memoised recursion on
// the three matrices, structurally unlike the production code's iterative
// row-major and anti-diagonal formulations.
func refAffineScore(a, b seq.Seq, p Params) int32 {
	type key struct{ i, j int }
	hm := map[key]int32{}
	im := map[key]int32{}
	dm := map[key]int32{}
	var H, I, D func(i, j int) int32
	I = func(i, j int) int32 {
		if i == 0 {
			return NegInf
		}
		if j == 0 {
			return -p.GapCost(i)
		}
		k := key{i, j}
		if v, ok := im[k]; ok {
			return v
		}
		v := max2(I(i-1, j)-p.GapExt, H(i-1, j)-p.GapOpen-p.GapExt)
		im[k] = v
		return v
	}
	D = func(i, j int) int32 {
		if j == 0 {
			return NegInf
		}
		if i == 0 {
			return -p.GapCost(j)
		}
		k := key{i, j}
		if v, ok := dm[k]; ok {
			return v
		}
		v := max2(D(i, j-1)-p.GapExt, H(i, j-1)-p.GapOpen-p.GapExt)
		dm[k] = v
		return v
	}
	H = func(i, j int) int32 {
		if i == 0 && j == 0 {
			return 0
		}
		if i == 0 {
			return D(i, j)
		}
		if j == 0 {
			return I(i, j)
		}
		k := key{i, j}
		if v, ok := hm[k]; ok {
			return v
		}
		v := max3(H(i-1, j-1)+p.Sub(a[i-1], b[j-1]), I(i, j), D(i, j))
		hm[k] = v
		return v
	}
	return H(len(a), len(b))
}

// refLinearScore is an independent reference for the linear-gap model
// (equations 1–2).
func refLinearScore(a, b seq.Seq, match, mismatch, gap int32) int32 {
	type key struct{ i, j int }
	memo := map[key]int32{}
	var rec func(i, j int) int32
	rec = func(i, j int) int32 {
		if i == 0 {
			return -int32(j) * gap
		}
		if j == 0 {
			return -int32(i) * gap
		}
		k := key{i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		sub := mismatch
		if a[i-1] == b[j-1] {
			sub = match
		}
		v := max3(rec(i-1, j-1)+sub, rec(i-1, j)-gap, rec(i, j-1)-gap)
		memo[k] = v
		return v
	}
	return rec(len(a), len(b))
}

// mutatedPair builds a (reference, mutated) pair with the given divergence.
func mutatedPair(rng *rand.Rand, n int, errRate float64) (seq.Seq, seq.Seq) {
	a := seq.Random(rng, n)
	b := seq.UniformErrors(errRate).Apply(rng, a)
	return a, b
}
