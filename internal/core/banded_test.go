package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

func TestStaticBandEqualsFullWhenWide(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		a := seq.Random(rng, rng.Intn(40))
		b := seq.Random(rng, rng.Intn(40))
		full := GotohScore(a, b, p).Score
		banded := StaticBandScore(a, b, p, 2*(len(a)+len(b)+2))
		if !banded.InBand || banded.Score != full {
			t.Fatalf("wide static band %d != full %d (a=%v b=%v)", banded.Score, full, a, b)
		}
	}
}

func TestStaticBandNeverBeatsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := DefaultParams()
	for trial := 0; trial < 40; trial++ {
		a, b := mutatedPair(rng, 20+rng.Intn(60), 0.2)
		full := GotohScore(a, b, p).Score
		for _, w := range []int{4, 8, 16, 64} {
			banded := StaticBandScore(a, b, p, w)
			if banded.InBand && banded.Score > full {
				t.Fatalf("band w=%d score %d beats optimal %d", w, banded.Score, full)
			}
		}
	}
}

func TestStaticBandMonotoneInWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		a, b := mutatedPair(rng, 80, 0.15)
		prev := NegInf
		for _, w := range []int{4, 8, 16, 32, 64, 128, 512} {
			res := StaticBandScore(a, b, p, w)
			s := res.Score
			if !res.InBand {
				s = NegInf
			}
			if s < prev {
				t.Fatalf("score decreased when widening band to %d: %d < %d", w, s, prev)
			}
			prev = s
		}
	}
}

func TestStaticBandFailsOnLengthSkew(t *testing.T) {
	a := seq.MustFromString("ACGTACGTACGTACGTACGT") // 20
	b := seq.MustFromString("ACGT")                 // 4: |m-n| = 16 > 8/2
	res := StaticBandScore(a, b, DefaultParams(), 8)
	if res.InBand {
		t.Error("expected out-of-band failure")
	}
	if res.Score != NegInf {
		t.Errorf("failed alignment score = %d, want NegInf", res.Score)
	}
}

func TestStaticBandAlignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := DefaultParams()
	for trial := 0; trial < 40; trial++ {
		a, b := mutatedPair(rng, 20+rng.Intn(80), 0.1)
		for _, w := range []int{8, 32, 256} {
			res := StaticBandAlign(a, b, p, w)
			if !res.InBand {
				continue
			}
			scoreOnly := StaticBandScore(a, b, p, w)
			if res.Score != scoreOnly.Score {
				t.Fatalf("w=%d: align %d != score %d", w, res.Score, scoreOnly.Score)
			}
			if err := res.Cigar.Validate(a, b); err != nil {
				t.Fatalf("w=%d: invalid cigar: %v", w, err)
			}
			if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
				t.Fatalf("w=%d: cigar implies %d, reported %d", w, got, res.Score)
			}
		}
	}
}

func TestStaticBandEmptyEdges(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("ACG")
	res := StaticBandAlign(a, nil, p, 8)
	if !res.InBand || res.Score != -p.GapCost(3) || res.Cigar.String() != "3I" {
		t.Errorf("vs empty target: %+v cigar=%v", res, res.Cigar)
	}
	res = StaticBandAlign(nil, a, p, 8)
	if !res.InBand || res.Cigar.String() != "3D" {
		t.Errorf("vs empty query: %+v", res)
	}
	res = StaticBandScore(nil, a, p, 4)
	if res.InBand {
		t.Error("3 deletions outside half-band 2 must fail")
	}
	res = StaticBandAlign(nil, nil, p, 8)
	if !res.InBand || res.Score != 0 {
		t.Errorf("empty vs empty: %+v", res)
	}
}

func TestAdaptiveBandEqualsFullOnCleanPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		a, b := mutatedPair(rng, 100+rng.Intn(100), 0.08)
		full := GotohScore(a, b, p).Score
		res := AdaptiveBandScore(a, b, p, 64)
		if !res.InBand {
			t.Fatalf("trial %d: adaptive band lost the corner (lens %d/%d)", trial, len(a), len(b))
		}
		if res.Score != full {
			t.Fatalf("trial %d: adaptive %d != full %d", trial, res.Score, full)
		}
	}
}

func TestAdaptiveBandNeverBeatsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := DefaultParams()
	for trial := 0; trial < 40; trial++ {
		a, b := mutatedPair(rng, 20+rng.Intn(100), 0.25)
		full := GotohScore(a, b, p).Score
		for _, w := range []int{4, 8, 16, 64} {
			res := AdaptiveBandScore(a, b, p, w)
			if res.InBand && res.Score > full {
				t.Fatalf("adaptive w=%d score %d beats optimal %d", w, res.Score, full)
			}
		}
	}
}

func TestAdaptiveBandAlignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := DefaultParams()
	for trial := 0; trial < 40; trial++ {
		a, b := mutatedPair(rng, 20+rng.Intn(120), 0.12)
		for _, w := range []int{8, 32, 128} {
			res := AdaptiveBandAlign(a, b, p, w)
			if !res.InBand {
				continue
			}
			scoreOnly := AdaptiveBandScore(a, b, p, w)
			if res.Score != scoreOnly.Score {
				t.Fatalf("w=%d: align %d != score %d", w, res.Score, scoreOnly.Score)
			}
			if err := res.Cigar.Validate(a, b); err != nil {
				t.Fatalf("w=%d: invalid cigar: %v (a=%v b=%v)", w, err, a, b)
			}
			if got := ScoreFromCigar(res.Cigar, p); got != res.Score {
				t.Fatalf("w=%d: cigar implies %d, reported %d", w, got, res.Score)
			}
		}
	}
}

func TestAdaptiveBandIdentical(t *testing.T) {
	p := DefaultParams()
	a := seq.Random(rand.New(rand.NewSource(44)), 500)
	res := AdaptiveBandAlign(a, a, p, 16)
	if !res.InBand {
		t.Fatal("identical sequences fell out of band")
	}
	if res.Score != int32(len(a))*p.Match {
		t.Errorf("score = %d, want %d", res.Score, int32(len(a))*p.Match)
	}
	if res.Cigar.String() != "500=" {
		t.Errorf("cigar = %v", res.Cigar)
	}
}

func TestAdaptiveBandHandlesLengthSkew(t *testing.T) {
	// A pair whose length difference exceeds the band width: the static
	// band fails outright; the adaptive band must follow the forced
	// down-shifts and still produce a valid (if penalised) alignment.
	rng := rand.New(rand.NewSource(45))
	p := DefaultParams()
	a := seq.Random(rng, 300)
	b := a[:200].Clone()
	if res := StaticBandScore(a, b, p, 32); res.InBand {
		t.Fatal("static band should fail at skew 100 > 16")
	}
	res := AdaptiveBandAlign(a, b, p, 32)
	if !res.InBand {
		t.Fatal("adaptive band failed to reach the corner")
	}
	if err := res.Cigar.Validate(a, b); err != nil {
		t.Fatalf("invalid cigar: %v", err)
	}
	want := int32(200)*p.Match - p.GapCost(100)
	if res.Score != want {
		t.Errorf("score = %d, want %d (one 100-base tail gap)", res.Score, want)
	}
}

func TestAdaptiveBandRecoversBigGap(t *testing.T) {
	// A 60-base internal deletion: a static band of 32 cannot contain the
	// path, the adaptive band of the same size can (Table 1's story).
	rng := rand.New(rand.NewSource(46))
	p := DefaultParams()
	a := seq.Random(rng, 400)
	b := append(a[:170].Clone(), a[230:]...)
	full := GotohScore(a, b, p).Score
	adap := AdaptiveBandScore(a, b, p, 80)
	if !adap.InBand || adap.Score != full {
		t.Fatalf("adaptive w=80: %+v, want optimal %d", adap, full)
	}
	stat := StaticBandScore(a, b, p, 80)
	if stat.InBand && stat.Score >= full {
		t.Fatal("static w=80 unexpectedly found the optimal path across a 60-gap")
	}
}

func TestAdaptiveBandOffsetsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		a, b := mutatedPair(rng, 50+rng.Intn(200), 0.15)
		_, off := AdaptiveBandPath(a, b, p, 32)
		if len(off) != len(a)+len(b)+1 {
			t.Fatalf("offsets length %d, want %d", len(off), len(a)+len(b)+1)
		}
		if off[0] != 0 {
			t.Fatalf("off[0] = %d", off[0])
		}
		for t0 := 1; t0 < len(off); t0++ {
			d := off[t0] - off[t0-1]
			if d != 0 && d != 1 {
				t.Fatalf("offset step %d at t=%d", d, t0)
			}
		}
		last := off[len(off)-1]
		if int(last) > len(a) || int(last)+31 < len(a) {
			// The final window must be clamped into the valid row range.
			t.Fatalf("final offset %d cannot contain row m=%d", last, len(a))
		}
	}
}

func TestAdaptiveBandEmptyEdges(t *testing.T) {
	p := DefaultParams()
	a := seq.MustFromString("ACGTA")
	res := AdaptiveBandAlign(a, nil, p, 8)
	if !res.InBand || res.Cigar.String() != "5I" || res.Score != -p.GapCost(5) {
		t.Errorf("vs empty target: %+v cigar=%v", res, res.Cigar)
	}
	res = AdaptiveBandAlign(nil, a, p, 8)
	if !res.InBand || res.Cigar.String() != "5D" {
		t.Errorf("vs empty query: %+v cigar=%v", res, res.Cigar)
	}
	res = AdaptiveBandScore(nil, nil, p, 8)
	if !res.InBand || res.Score != 0 {
		t.Errorf("empty vs empty: %+v", res)
	}
}

func TestAdaptiveBandDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	p := DefaultParams()
	a, b := mutatedPair(rng, 200, 0.1)
	r1 := AdaptiveBandAlign(a, b, p, 32)
	r2 := AdaptiveBandAlign(a, b, p, 32)
	if r1.Score != r2.Score || r1.Cigar.String() != r2.Cigar.String() {
		t.Error("adaptive alignment is not deterministic")
	}
}

func TestAdaptiveCellsBoundedByWorkloadEstimate(t *testing.T) {
	// The paper's load-balancing workload estimate is (m+n)·w; the real
	// cell count must never exceed it (window cells outside the matrix are
	// skipped, never added).
	rng := rand.New(rand.NewSource(49))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		a, b := mutatedPair(rng, 50+rng.Intn(300), 0.1)
		w := 32
		res := AdaptiveBandScore(a, b, p, w)
		bound := int64(len(a)+len(b)+1) * int64(w)
		if res.Cells > bound {
			t.Fatalf("cells %d exceed workload bound %d", res.Cells, bound)
		}
		if res.Cells < int64(min(len(a), len(b))) {
			t.Fatalf("cells %d implausibly low", res.Cells)
		}
	}
}

func TestAlignerInterface(t *testing.T) {
	p := DefaultParams()
	aligners := []Aligner{Full{P: p}, StaticBand{P: p, W: 64}, AdaptiveBand{P: p, W: 64}}
	rng := rand.New(rand.NewSource(50))
	a, b := mutatedPair(rng, 60, 0.05)
	want := GotohScore(a, b, p).Score
	for _, al := range aligners {
		if al.Name() == "" {
			t.Errorf("%T: empty name", al)
		}
		res := al.Align(a, b, false)
		if res.Score != want {
			t.Errorf("%s score-only = %d, want %d", al.Name(), res.Score, want)
		}
		if res.Cigar != nil {
			t.Errorf("%s: score-only returned a cigar", al.Name())
		}
		res = al.Align(a, b, true)
		if res.Score != want || res.Cigar == nil {
			t.Errorf("%s traceback = %+v", al.Name(), res)
		}
		if err := res.Cigar.Validate(a, b); err != nil {
			t.Errorf("%s: %v", al.Name(), err)
		}
	}
}
