package core

import (
	"fmt"

	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

// GotohScore computes the exact affine-gap global alignment score
// (equations 3–5) in O(m·n) time and O(n) space. It is the ground truth the
// accuracy experiments (Table 1) measure the banded heuristics against.
func GotohScore(a, b seq.Seq, p Params) Result {
	s := GetScratch()
	res := s.GotohScore(a, b, p)
	PutScratch(s)
	return res
}

// GotohScore is the explicit-scratch form of the package-level function:
// the two O(n) rows come from the arena, so a warmed Scratch scores
// full-matrix alignments with zero heap allocations.
func (s *Scratch) GotohScore(a, b seq.Seq, p Params) Result {
	m, n := len(a), len(b)
	res := Result{InBand: true, Steps: m}
	switch {
	case m == 0 && n == 0:
		res.Score = 0
		return res
	case m == 0:
		res.Score = -p.GapCost(n)
		return res
	case n == 0:
		res.Score = -p.GapCost(m)
		return res
	}

	s.hrow = growI32(s.hrow, n+1)
	s.icol = growI32(s.icol, n+1)
	h := s.hrow  // H of the previous row, overwritten in place
	ic := s.icol // I of the previous row, per column
	h[0] = 0
	ic[0] = NegInf
	for j := 1; j <= n; j++ {
		h[j] = -p.GapCost(j) // H(0,j) = D(0,j)
		ic[j] = NegInf       // I(0,j) = -inf
	}
	openCost := p.GapOpen + p.GapExt
	for i := 1; i <= m; i++ {
		diag := h[0]
		h[0] = -p.GapCost(i) // H(i,0) = I(i,0)
		ic[0] = h[0]
		d := NegInf // D(i,0) = -inf
		ai := a[i-1]
		for j := 1; j <= n; j++ {
			iv := max2(ic[j]-p.GapExt, h[j]-openCost) // h[j] still holds H(i-1,j)
			d = max2(d-p.GapExt, h[j-1]-openCost)     // h[j-1] already H(i,j-1)
			best := diag + p.Sub(ai, b[j-1])
			best = max3(best, iv, d)
			diag = h[j]
			h[j] = best
			ic[j] = iv
		}
	}
	res.Score = h[n]
	res.Cells = int64(m) * int64(n)
	return res
}

// GotohAlign computes the exact affine-gap alignment with full traceback.
// It stores one traceback byte per DP cell, so memory is O(m·n); it is meant
// for ground-truth CIGARs on short-to-medium sequences and for validating
// the banded implementations.
func GotohAlign(a, b seq.Seq, p Params) Result {
	s := GetScratch()
	res := s.GotohAlign(a, b, p)
	PutScratch(s)
	return res
}

// GotohAlign is the explicit-scratch form of the package-level function;
// the O(m·n) traceback arena is reused across calls.
func (s *Scratch) GotohAlign(a, b seq.Seq, p Params) Result {
	m, n := len(a), len(b)
	res := s.GotohScore(a, b, p) // cheap second pass keeps this function simple
	if m == 0 || n == 0 {
		var c cigar.Cigar
		c = c.Append(cigar.Ins, m)
		c = c.Append(cigar.Del, n)
		res.Cigar = c
		return res
	}

	bt := s.btBuf((m + 1) * (n + 1))
	stride := n + 1
	for j := 1; j <= n; j++ {
		bt[j] = MakeBTNibble(btFromD, false, j > 1)
	}
	for i := 1; i <= m; i++ {
		bt[i*stride] = MakeBTNibble(btFromI, i > 1, false)
	}

	h := s.hrow // already sized by the GotohScore pass above
	ic := s.icol
	h[0] = 0
	ic[0] = NegInf
	for j := 1; j <= n; j++ {
		h[j] = -p.GapCost(j)
		ic[j] = NegInf
	}
	openCost := p.GapOpen + p.GapExt
	for i := 1; i <= m; i++ {
		diag := h[0]
		h[0] = -p.GapCost(i)
		ic[0] = h[0]
		d := NegInf
		ai := a[i-1]
		row := bt[i*stride:]
		for j := 1; j <= n; j++ {
			iExt := ic[j]-p.GapExt >= h[j]-openCost // ties extend
			iv := max2(ic[j]-p.GapExt, h[j]-openCost)
			dExt := d-p.GapExt >= h[j-1]-openCost
			d = max2(d-p.GapExt, h[j-1]-openCost)

			sub := p.Sub(ai, b[j-1])
			origin := btDiagMismatch
			if sub == p.Match {
				origin = btDiagMatch
			}
			best := diag + sub
			if iv > best { // diagonal wins ties: fewest gaps
				best = iv
				origin = btFromI
			}
			if d > best {
				best = d
				origin = btFromD
			}
			row[j] = MakeBTNibble(origin, iExt, dExt)
			diag = h[j]
			h[j] = best
			ic[j] = iv
		}
	}
	res.Score = h[n]
	res.Cigar = walkBT(m, n, func(i, j int) uint8 { return bt[i*stride+j] })
	return res
}

// walkBT performs the three-state affine traceback over any cell-indexed
// nibble accessor, shared by the full, static-banded and adaptive-banded
// aligners. It panics on a structurally corrupt traceback (an internal
// invariant violation, never a data error).
func walkBT(m, n int, nibbleAt func(i, j int) uint8) cigar.Cigar {
	var c cigar.Cigar
	const (
		stH = iota
		stI
		stD
	)
	state := stH
	guard := 2*(m+n) + 4
	for i, j := m, n; i > 0 || j > 0; {
		if guard--; guard < 0 {
			panic(fmt.Sprintf("core: traceback did not terminate (i=%d j=%d)", i, j))
		}
		nb := nibbleAt(i, j)
		switch state {
		case stH:
			switch BTOrigin(nb) {
			case btDiagMatch:
				c = c.Append(cigar.Match, 1)
				i, j = i-1, j-1
			case btDiagMismatch:
				c = c.Append(cigar.Mismatch, 1)
				i, j = i-1, j-1
			case btFromI:
				state = stI
			default:
				state = stD
			}
		case stI:
			c = c.Append(cigar.Ins, 1)
			if !BTIExtend(nb) {
				state = stH
			}
			i--
		default: // stD
			c = c.Append(cigar.Del, 1)
			if !BTDExtend(nb) {
				state = stH
			}
			j--
		}
	}
	return c.Reverse()
}

// ScoreFromCigar recomputes the affine-gap score a CIGAR implies; it must
// equal the aligner's reported score (a property the tests enforce).
func ScoreFromCigar(c cigar.Cigar, p Params) int32 {
	var s int32
	for _, op := range c {
		switch op.Kind {
		case cigar.Match:
			s += int32(op.Len) * p.Match
		case cigar.Mismatch:
			s += int32(op.Len) * p.Mismatch
		case cigar.Ins, cigar.Del:
			s -= p.GapCost(op.Len)
		}
	}
	return s
}
