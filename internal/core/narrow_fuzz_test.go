package core

import (
	"testing"
)

// narrowFuzzParams are the scoring models the equivalence fuzzer cycles
// through: the default model plus shapes that stress each saturation
// mechanism (high match drift, heavy gap decay, deep mismatch folds). All
// pass narrowParamsFit, so the engine runs rather than rejecting a-priori;
// overflow remains a legal outcome the oracle skips.
var narrowFuzzParams = []Params{
	DefaultParams(),
	{Match: 31, Mismatch: -4, GapOpen: 4, GapExt: 2},
	{Match: 127, Mismatch: -4, GapOpen: 4, GapExt: 2},
	{Match: 2, Mismatch: -4, GapOpen: 64, GapExt: 32},
	{Match: 2, Mismatch: -96, GapOpen: 4, GapExt: 2},
}

// FuzzNarrowWideEquivalence is the narrow-lane twin of
// FuzzEngineEquivalence: on arbitrary pairs, bands and scoring models, a
// narrow-lane run that does not report Overflowed must be bit-identical to
// the wide word-packed engine (itself pinned to the scalar reference) on
// every result field. Overflowed runs must carry the NegInf sentinel and
// never leak a partial score.
func FuzzNarrowWideEquivalence(f *testing.F) {
	f.Add([]byte("ACGTACGTACGT"), []byte("ACGAACGT"), uint8(8), uint8(0), true)
	f.Add([]byte(""), []byte("TTTT"), uint8(2), uint8(1), false)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), []byte("AAAA"), uint8(3), uint8(2), false)
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 3, 2, 1, 0}, []byte{3, 2, 1, 0}, uint8(63), uint8(3), true)
	f.Add([]byte("ACACACACACACACACACACACAC"), []byte("ACACACACACACACACACACACAC"), uint8(16), uint8(4), true)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, wRaw, pRaw uint8, steer bool) {
		a := bytesToSeq(rawA, 96)
		b := bytesToSeq(rawB, 96)
		w := 2 + int(wRaw)%96
		p := narrowFuzzParams[int(pRaw)%len(narrowFuzzParams)]
		v := AdaptiveVariant{SteerTies: steer}
		s := NewScratch()
		narrow, ok := s.adaptiveBandNarrow(a, b, p, w, v)
		if !ok {
			if !narrow.Overflowed {
				t.Fatalf("ok=false without Overflowed (w=%d p=%+v a=%v b=%v)", w, p, a, b)
			}
			if narrow.Score != NegInf {
				t.Fatalf("overflowed run leaked score %d (w=%d p=%+v a=%v b=%v)", narrow.Score, w, p, a, b)
			}
			return
		}
		if narrow.Overflowed {
			t.Fatalf("ok=true with Overflowed set (w=%d p=%+v a=%v b=%v)", w, p, a, b)
		}
		wide, _ := s.adaptiveBand(a, b, p, w, false, v)
		if narrow.Score != wide.Score || narrow.InBand != wide.InBand ||
			narrow.Clipped != wide.Clipped || narrow.Cells != wide.Cells ||
			narrow.Steps != wide.Steps {
			t.Fatalf("narrow engine diverged (w=%d steer=%v p=%+v):\n narrow %+v\n wide   %+v\n a=%v\n b=%v",
				w, steer, p, narrow, wide, a, b)
		}
	})
}
