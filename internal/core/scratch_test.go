package core

import (
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

// The packed engine must be bit-identical to the preserved scalar
// reference: same score, same cell count, same clip certificate, same
// CIGAR, same window trajectory. These tests sweep it differentially and
// pin the zero-allocation property.

func requireEngineIdentical(t *testing.T, a, b seq.Seq, p Params, w int, traceback bool, v AdaptiveVariant) {
	t.Helper()
	s := NewScratch()
	got, gotOff := s.adaptiveBand(a, b, p, w, traceback, v)
	want, wantOff := adaptiveBandRef(a, b, p, w, traceback, v)
	if got.Score != want.Score || got.InBand != want.InBand || got.Clipped != want.Clipped {
		t.Fatalf("m=%d n=%d w=%d tb=%v: packed (score=%d inband=%v clip=%v) != ref (score=%d inband=%v clip=%v)",
			len(a), len(b), w, traceback, got.Score, got.InBand, got.Clipped, want.Score, want.InBand, want.Clipped)
	}
	if got.Cells != want.Cells {
		t.Fatalf("m=%d n=%d w=%d: cells %d != ref %d", len(a), len(b), w, got.Cells, want.Cells)
	}
	if got.Steps != want.Steps {
		t.Fatalf("m=%d n=%d w=%d: steps %d != ref %d", len(a), len(b), w, got.Steps, want.Steps)
	}
	if len(gotOff) != len(wantOff) {
		t.Fatalf("m=%d n=%d w=%d: offset vector length %d != ref %d", len(a), len(b), w, len(gotOff), len(wantOff))
	}
	for i := range gotOff {
		if gotOff[i] != wantOff[i] {
			t.Fatalf("m=%d n=%d w=%d: off[%d] = %d != ref %d", len(a), len(b), w, i, gotOff[i], wantOff[i])
		}
	}
	if got.Cigar.String() != want.Cigar.String() {
		t.Fatalf("m=%d n=%d w=%d: cigar %q != ref %q", len(a), len(b), w, got.Cigar, want.Cigar)
	}
}

// TestEngineMatchesReference sweeps lengths, length skews, error rates,
// bands (odd widths included — nibble rows have a half-byte tail) and both
// heuristic variants.
func TestEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	variants := []AdaptiveVariant{DefaultVariant(), {}}
	for _, n := range []int{1, 2, 3, 7, 31, 64, 130, 500, 1000} {
		for _, errRate := range []float64{0, 0.05, 0.25} {
			a, b := mutatedPair(rng, n, errRate)
			for _, w := range []int{2, 3, 5, 16, 33, 64, 127} {
				for _, tb := range []bool{false, true} {
					v := variants[rng.Intn(len(variants))]
					requireEngineIdentical(t, a, b, DefaultParams(), w, tb, v)
				}
			}
		}
	}
}

// TestEngineMatchesReferenceSkewed drives the window clamps: pairs whose
// length difference exceeds the band, including empty sides.
func TestEngineMatchesReferenceSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := DefaultParams()
	cases := []struct{ m, n int }{
		{0, 1}, {1, 0}, {0, 40}, {40, 0}, {5, 80}, {80, 5},
		{100, 260}, {260, 100}, {33, 32}, {200, 203},
	}
	for _, c := range cases {
		a := seq.Random(rng, c.m)
		b := seq.Random(rng, c.n)
		for _, w := range []int{2, 7, 32, 65} {
			requireEngineIdentical(t, a, b, p, w, true, DefaultVariant())
			requireEngineIdentical(t, a, b, p, w, false, AdaptiveVariant{})
		}
	}
}

// TestEngineScratchReuse runs one Scratch across alternating sizes, widths
// and modes — stale lane contents, a shrunken offset vector or a dirty BT
// arena from the previous call must not leak into the next result.
func TestEngineScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewScratch()
	type job struct {
		n  int
		w  int
		tb bool
	}
	jobs := []job{
		{800, 64, true}, {10, 4, false}, {300, 128, true}, {300, 16, false},
		{0, 8, true}, {50, 8, true}, {800, 64, false}, {10, 128, true},
	}
	for _, j := range jobs {
		a, b := mutatedPair(rng, j.n, 0.1)
		got, _ := s.adaptiveBand(a, b, DefaultParams(), j.w, j.tb, DefaultVariant())
		want, _ := adaptiveBandRef(a, b, DefaultParams(), j.w, j.tb, DefaultVariant())
		if got.Score != want.Score || got.Clipped != want.Clipped || got.Cells != want.Cells ||
			got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("reused scratch diverged at n=%d w=%d tb=%v: got (score=%d clip=%v cells=%d %q), want (score=%d clip=%v cells=%d %q)",
				j.n, j.w, j.tb, got.Score, got.Clipped, got.Cells, got.Cigar,
				want.Score, want.Clipped, want.Cells, want.Cigar)
		}
	}
}

// TestAdaptiveBandPathIsCallerOwned pins the Path contract: the returned
// offsets must survive subsequent engine calls on the pooled scratch.
func TestAdaptiveBandPathIsCallerOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := mutatedPair(rng, 200, 0.05)
	p := DefaultParams()
	_, off := AdaptiveBandPath(a, b, p, 32)
	snapshot := append([]int32(nil), off...)
	for i := 0; i < 4; i++ {
		c, d := mutatedPair(rng, 150+37*i, 0.2)
		AdaptiveBandScore(c, d, p, 16)
	}
	for i := range off {
		if off[i] != snapshot[i] {
			t.Fatalf("AdaptiveBandPath result mutated at index %d after later calls", i)
		}
	}
}

// TestEngineZeroAllocSteadyState asserts the tentpole property: a warmed
// explicit Scratch performs zero heap allocations per score-only call, and
// an Align call allocates only the returned CIGAR machinery.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := mutatedPair(rng, 2000, 0.05)
	p := DefaultParams()
	s := NewScratch()
	s.AdaptiveBandAlign(a, b, p, 64) // warm every buffer, BT included
	var sink Result

	if allocs := testing.AllocsPerRun(20, func() {
		sink = s.AdaptiveBandScore(a, b, p, 64)
	}); allocs != 0 {
		t.Errorf("warmed AdaptiveBandScore allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		sink = s.AdaptiveBandScoreVariant(a, b, p, 64, AdaptiveVariant{})
	}); allocs != 0 {
		t.Errorf("warmed AdaptiveBandScoreVariant allocates %.1f objects/op, want 0", allocs)
	}
	// The align path may allocate only the result CIGAR (and the traceback
	// closure feeding it) — a handful of objects, not O(w) lanes.
	if allocs := testing.AllocsPerRun(20, func() {
		sink = s.AdaptiveBandAlign(a, b, p, 64)
	}); allocs > 12 {
		t.Errorf("warmed AdaptiveBandAlign allocates %.1f objects/op, want only CIGAR machinery (<= 12)", allocs)
	}
	if !sink.InBand {
		t.Fatal("sanity: alignment fell out of band")
	}

	// Static band and Gotoh share the arena.
	s.StaticBandScore(a, b, p, 128)
	if allocs := testing.AllocsPerRun(20, func() {
		sink = s.StaticBandScore(a, b, p, 128)
	}); allocs != 0 {
		t.Errorf("warmed StaticBandScore allocates %.1f objects/op, want 0", allocs)
	}
	s.GotohScore(a[:300], b[:300], p)
	if allocs := testing.AllocsPerRun(20, func() {
		sink = s.GotohScore(a[:300], b[:300], p)
	}); allocs != 0 {
		t.Errorf("warmed GotohScore allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}
