package core

// Traceback cell encoding, shared by every affine aligner in this package
// and by the DPU kernel (paper §4.2.2): 4 bits per cell.
//
//	bits 0..1  origin of H(i,j): diagonal match, diagonal mismatch, the I
//	           matrix (vertical move, consumes a query base), or the D
//	           matrix (horizontal move, consumes a target base)
//	bit  2     I(i,j) extends I(i-1,j) rather than opening from H(i-1,j)
//	bit  3     D(i,j) extends D(i,j-1) rather than opening from H(i,j-1)
const (
	btDiagMatch    uint8 = 0
	btDiagMismatch uint8 = 1
	btFromI        uint8 = 2
	btFromD        uint8 = 3
	btOriginMask   uint8 = 3
	btIExtend      uint8 = 1 << 2
	btDExtend      uint8 = 1 << 3
)

// BTOrigin extracts the 2-bit H-origin code from a traceback nibble.
func BTOrigin(nibble uint8) uint8 { return nibble & btOriginMask }

// BTIExtend reports whether the I state extends at this cell.
func BTIExtend(nibble uint8) bool { return nibble&btIExtend != 0 }

// BTDExtend reports whether the D state extends at this cell.
func BTDExtend(nibble uint8) bool { return nibble&btDExtend != 0 }

// Exported origin codes, used by the DPU kernel which shares the encoding.
const (
	BTDiagMatch    = btDiagMatch
	BTDiagMismatch = btDiagMismatch
	BTFromI        = btFromI
	BTFromD        = btFromD
)

// MakeBTNibble assembles a traceback nibble from its components.
func MakeBTNibble(origin uint8, iExt, dExt bool) uint8 {
	n := origin & btOriginMask
	if iExt {
		n |= btIExtend
	}
	if dExt {
		n |= btDExtend
	}
	return n
}

// NibbleRow is a packed row of 4-bit traceback cells (two per byte), the
// exact layout the DPU kernel streams to MRAM: cell p occupies bits
// [4·(p%2), 4·(p%2)+4) of byte p/2.
type NibbleRow []byte

// NibbleRowSize returns the bytes needed to store w nibbles.
func NibbleRowSize(w int) int { return (w + 1) / 2 }

// Set stores nibble v at cell p.
func (r NibbleRow) Set(p int, v uint8) {
	shift := uint(p&1) * 4
	b := r[p>>1]
	b &^= 0x0F << shift
	b |= (v & 0x0F) << shift
	r[p>>1] = b
}

// Get loads the nibble at cell p.
func (r NibbleRow) Get(p int) uint8 {
	return (r[p>>1] >> (uint(p&1) * 4)) & 0x0F
}
