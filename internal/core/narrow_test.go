package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pimnw/internal/seq"
)

// requireNarrowEqual asserts a non-overflowed narrow result is
// bit-identical to the wide engine's on every field.
func requireNarrowEqual(t *testing.T, label string, narrow, wide Result) {
	t.Helper()
	if narrow.Overflowed {
		t.Fatalf("%s: narrow engine overflowed unexpectedly", label)
	}
	if narrow.Score != wide.Score || narrow.InBand != wide.InBand ||
		narrow.Clipped != wide.Clipped || narrow.Cells != wide.Cells ||
		narrow.Steps != wide.Steps {
		t.Fatalf("%s:\n narrow = %+v\n wide   = %+v", label, narrow, wide)
	}
}

// TestNarrowWideDifferentialSweep extends the PR-4 oracle sweep to the
// narrow path: over error rates, lengths, bands and length skews, a
// non-overflowed narrow score must match the wide engine (itself pinned to
// adaptiveBandRef) bit for bit.
func TestNarrowWideDifferentialSweep(t *testing.T) {
	p := DefaultParams()
	s := NewScratch()
	cases := 0
	for _, nLen := range []int{0, 1, 3, 17, 64, 257, 1000} {
		for _, rate := range []float64{0, 0.02, 0.10, 0.30} {
			for _, w := range []int{2, 8, 32, 128} {
				for rep := 0; rep < 3; rep++ {
					seed := int64(nLen*1000 + int(rate*100)*17 + w + rep)
					rng := rand.New(rand.NewSource(seed))
					a := seq.Random(rng, nLen)
					b := seq.UniformErrors(rate).Apply(rng, a)
					label := fmt.Sprintf("n=%d rate=%.2f w=%d rep=%d", nLen, rate, w, rep)
					narrow, ok := s.adaptiveBandNarrow(a, b, p, w, DefaultVariant())
					wide, _ := s.adaptiveBand(a, b, p, w, false, DefaultVariant())
					if !ok {
						continue // overflow is allowed, silence is not: counted below
					}
					cases++
					requireNarrowEqual(t, label, narrow, wide)
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d non-overflowed sweep cases; narrow path is over-escalating", cases)
	}
}

// TestNarrowSkewedPairs drives the boundary-hugging window shapes (length
// skews) where the base rebase must track monotonically falling scores.
func TestNarrowSkewedPairs(t *testing.T) {
	p := DefaultParams()
	s := NewScratch()
	for _, tc := range []struct{ m, n, w int }{
		{40, 400, 16}, {400, 40, 16}, {0, 300, 8}, {300, 0, 8},
		{1, 900, 32}, {900, 1, 32}, {1200, 2000, 64},
	} {
		rng := rand.New(rand.NewSource(int64(tc.m*7 + tc.n*13 + tc.w)))
		a := seq.Random(rng, tc.m)
		b := seq.Random(rng, tc.n)
		label := fmt.Sprintf("m=%d n=%d w=%d", tc.m, tc.n, tc.w)
		narrow, ok := s.adaptiveBandNarrow(a, b, p, tc.w, DefaultVariant())
		wide, _ := s.adaptiveBand(a, b, p, tc.w, false, DefaultVariant())
		if !ok {
			continue
		}
		requireNarrowEqual(t, label, narrow, wide)
	}
}

// TestNarrowLongSimilar is the benchmark shape: the absolute score climbs
// far past 2^15, so correctness here proves the rebase keeps only the
// window spread in-lane.
func TestNarrowLongSimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("long pair")
	}
	p := DefaultParams()
	s := NewScratch()
	rng := rand.New(rand.NewSource(42))
	a := seq.Random(rng, 30_000)
	b := seq.UniformErrors(0.05).Apply(rng, a)
	narrow, ok := s.adaptiveBandNarrow(a, b, p, 128, DefaultVariant())
	wide, _ := s.adaptiveBand(a, b, p, 128, false, DefaultVariant())
	if !ok {
		t.Fatal("narrow engine overflowed on the benchmark shape")
	}
	requireNarrowEqual(t, "30k 5%", narrow, wide)
	if narrow.Score < narrowTop {
		t.Fatalf("score %d does not exercise the rebase (want > %d)", narrow.Score, narrowTop)
	}
}
