package core

import (
	"pimnw/internal/seq"
)

// This file preserves the original portable scalar formulation of the
// adaptive-banded engine, verbatim, as adaptiveBandRef. It is NOT on any
// production path: the differential tests and FuzzEngineEquivalence run it
// against the word-packed engine in banded_adaptive.go and require
// bit-identical Results (score, cells, clip certificate, CIGAR). Any change
// to the production engine's semantics must be made here too — or, if it is
// a deliberate semantic change, the tests will say so loudly.

// adaptiveBandRef is the pre-optimisation scalar engine: one base
// comparison per cell, guarded neighbour loads, a per-cell traceback
// branch, and fresh allocations per call.
func adaptiveBandRef(a, b seq.Seq, p Params, w int, traceback bool, variant AdaptiveVariant) (Result, []int32) {
	m, n := len(a), len(b)
	if w < 2 {
		w = 2
	}
	res := Result{Steps: m + n}
	if m == 0 && n == 0 {
		res.InBand = true
		return res, []int32{0}
	}

	nDiag := m + n + 1
	off := make([]int32, nDiag)
	hPrev := make([]int32, w) // anti-diagonal t-1
	hCur := make([]int32, w)  // anti-diagonal t
	hNext := make([]int32, w) // anti-diagonal t+1 under construction
	iCur := make([]int32, w)
	dCur := make([]int32, w)
	iNext := make([]int32, w)
	dNext := make([]int32, w)
	for p := 0; p < w; p++ {
		hPrev[p], hCur[p], iCur[p], dCur[p] = NegInf, NegInf, NegInf, NegInf
	}
	hCur[0] = 0 // cell (0,0): off[0] = 0
	res.Cells = 1

	var bt []byte
	rowBytes := NibbleRowSize(w)
	if traceback {
		bt = make([]byte, nDiag*rowBytes)
	}

	openCost := p.GapOpen + p.GapExt
	dPrevShift := int32(0) // d′: shift taken from t-1 to t
	maxPot := NegInf       // best escaping-path bound seen (clip certificate)

	for t := 0; t < m+n; t++ {
		// Decide the shift from the extremities of the current window.
		d := chooseShiftRef(hCur, off[t], t, m, n, w, variant)
		// Clamp so the window keeps intersecting the valid cell range of
		// anti-diagonal t+1: i ∈ [loI, hiI].
		loI := t + 1 - n
		if loI < 0 {
			loI = 0
		}
		hiI := t + 1
		if hiI > m {
			hiI = m
		}
		if int(off[t])+int(d)+w-1 < loI {
			d = 1
		}
		if int(off[t])+int(d) > hiI {
			d = 0
		}
		// Clip certificate: any path that leaves the window does so through
		// the edge cell the shift abandons (a window cell's in-window
		// neighbours stay in-window except at the moving edge). Bound every
		// such path by that cell's score plus the best it could still
		// collect outside; if no abandoned-edge potential ever beats the
		// final score, the banded result is provably optimal.
		{
			o := int(off[t])
			if d == 1 {
				// The top cell (o, t-o) drops out of the window: a path can
				// leave through it while column t-o+1 ≤ n exists.
				if j := t - o; j >= 0 && j < n && o <= m && hCur[0] > NegInf/2 {
					if pot := hCur[0] + escapeBound(p, m-o, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			} else {
				// The bottom cell (o+w-1, t-o-w+1) drops out: a path can
				// leave through it while row o+w ≤ m exists.
				i := o + w - 1
				if j := t - i; i >= 0 && i < m && j >= 0 && j <= n && hCur[w-1] > NegInf/2 {
					if pot := hCur[w-1] + escapeBound(p, m-i, n-j); pot > maxPot {
						maxPot = pot
					}
				}
			}
		}

		newOff := off[t] + d
		off[t+1] = newOff

		var btRow NibbleRow
		if traceback {
			btRow = bt[(t+1)*rowBytes : (t+2)*rowBytes]
		}

		for pIdx := 0; pIdx < w; pIdx++ {
			i := int(newOff) + pIdx
			j := t + 1 - i
			if i < 0 || i > m || j < 0 || j > n {
				hNext[pIdx], iNext[pIdx], dNext[pIdx] = NegInf, NegInf, NegInf
				continue
			}
			res.Cells++
			// Matrix boundaries (equations 3–5, base cases).
			if i == 0 {
				hNext[pIdx] = -p.GapCost(j)
				dNext[pIdx] = hNext[pIdx]
				iNext[pIdx] = NegInf
				if traceback {
					btRow.Set(pIdx, MakeBTNibble(btFromD, false, j > 1))
				}
				continue
			}
			if j == 0 {
				hNext[pIdx] = -p.GapCost(i)
				iNext[pIdx] = hNext[pIdx]
				dNext[pIdx] = NegInf
				if traceback {
					btRow.Set(pIdx, MakeBTNibble(btFromI, i > 1, false))
				}
				continue
			}

			up := pIdx + int(d) - 1 // (i-1, j) on anti-diagonal t
			left := pIdx + int(d)   // (i, j-1) on anti-diagonal t
			dg := pIdx + int(d+dPrevShift) - 1

			hUp, iUp := NegInf, NegInf
			if up >= 0 && up < w {
				hUp, iUp = hCur[up], iCur[up]
			}
			hLeft, dLeft := NegInf, NegInf
			if left < w { // left = p+d ≥ 0 always
				hLeft, dLeft = hCur[left], dCur[left]
			}
			hDiag := NegInf
			if dg >= 0 && dg < w {
				hDiag = hPrev[dg]
			}

			iOpen := hUp - openCost
			iExt := iUp-p.GapExt >= iOpen
			iv := max2(iUp-p.GapExt, iOpen)

			dOpen := hLeft - openCost
			dExt := dLeft-p.GapExt >= dOpen
			dv := max2(dLeft-p.GapExt, dOpen)

			sub := p.Sub(a[i-1], b[j-1])
			origin := btDiagMismatch
			if sub == p.Match {
				origin = btDiagMatch
			}
			best := hDiag + sub
			if iv > best {
				best = iv
				origin = btFromI
			}
			if dv > best {
				best = dv
				origin = btFromD
			}
			hNext[pIdx] = best
			iNext[pIdx] = iv
			dNext[pIdx] = dv
			if traceback {
				btRow.Set(pIdx, MakeBTNibble(origin, iExt, dExt))
			}
		}

		hPrev, hCur, hNext = hCur, hNext, hPrev
		iCur, iNext = iNext, iCur
		dCur, dNext = dNext, dCur
		dPrevShift = d
	}

	pFinal := m - int(off[m+n])
	if pFinal < 0 || pFinal >= w || hCur[pFinal] <= NegInf/2 {
		res.Score = NegInf
		return res, off
	}
	res.InBand = true
	res.Score = hCur[pFinal]
	res.Clipped = maxPot > res.Score
	if traceback {
		res.Cigar = walkBT(m, n, func(i, j int) uint8 {
			t := i + j
			return NibbleRow(bt[t*rowBytes : (t+1)*rowBytes]).Get(i - int(off[t]))
		})
	}
	return res, off
}

// chooseShiftRef is the reference twin of chooseShift, reading the
// unpadded w-sized lane layout of adaptiveBandRef.
func chooseShiftRef(hCur []int32, off int32, t, m, n, w int, v AdaptiveVariant) int32 {
	top, bot := NegInf, NegInf
	iTop := int(off)
	if jTop := t - iTop; iTop >= 0 && iTop <= m && jTop >= 0 && jTop <= n {
		top = hCur[0]
	}
	iBot := int(off) + w - 1
	if jBot := t - iBot; iBot >= 0 && iBot <= m && jBot >= 0 && jBot <= n {
		bot = hCur[w-1]
	}
	switch {
	case bot > top:
		return 1
	case top > bot:
		return 0
	case !v.SteerTies:
		return 0
	default:
		iC := int(off) + w/2
		jC := t - iC
		if iC-jC < m-n {
			return 1
		}
		return 0
	}
}
