package core

// narrowStepWordsGo is the portable SWAR form of the narrow engine's
// interior word loop: for each packed word g in [gA, gB] it computes the
// four H/I/D cells of one anti-diagonal from funnel-shifted neighbour
// loads, with per-lane saturating arithmetic as described in
// banded_narrow.go. The return value is the sticky accumulator — nonzero
// means a saturating-add carry or a below-guard H output was seen and the
// step must be treated as overflowed. narrow_step_amd64.s implements the
// same contract eight lanes at a time; the two are kept in lockstep by the
// differential sweeps and FuzzNarrowWideEquivalence.
func narrowStepWordsGo(hNext, iNext, dNext, hCur, iCur, dCur, hPrev, nsub []uint64,
	gA, gB, d, dd int, eV, oeV, nmV, gbV uint64) uint64 {
	// Funnel-shift bases for the three neighbour streams; the shift
	// amounts are loop-invariant (the lane offset mod 4 never changes
	// within one anti-diagonal).
	upS := gA*4 + d - 1
	ltS := upS + 1
	dgS := gA*4 + dd - 1
	qU, shU := upS>>2, uint(upS&3)*16
	qL, shL := ltS>>2, uint(ltS&3)*16
	qD, shD := dgS>>2, uint(dgS&3)*16
	var ovAcc uint64
	for g := gA; g <= gB; g++ {
		hUp := hCur[qU]>>shU | hCur[qU+1]<<(64-shU)
		iUp := iCur[qU]>>shU | iCur[qU+1]<<(64-shU)
		hLt := hCur[qL]>>shL | hCur[qL+1]<<(64-shL)
		dLt := dCur[qL]>>shL | dCur[qL+1]<<(64-shL)
		hDg := hPrev[qD]>>shD | hPrev[qD+1]<<(64-shD)
		qU++
		qL++
		qD++

		// iv = max(iUp ⊖ e, hUp ⊖ oe), per-lane, ⊖ saturating at 0.
		t1 := (iUp | nH) - eV
		m1 := t1 & nH
		ivA := t1 & (m1 - m1>>15)
		t2 := (hUp | nH) - oeV
		m2 := t2 & nH
		ivB := t2 & (m2 - m2>>15)
		t3 := (ivA | nH) - ivB
		m3 := t3 & nH
		iv := ivB + t3&(m3-m3>>15)

		// dv = max(dLt ⊖ e, hLt ⊖ oe).
		t4 := (dLt | nH) - eV
		m4 := t4 & nH
		dvA := t4 & (m4 - m4>>15)
		t5 := (hLt | nH) - oeV
		m5 := t5 & nH
		dvB := t5 & (m5 - m5>>15)
		t6 := (dvA | nH) - dvB
		m6 := t6 & nH
		dv := dvB + t6&(m6-m6>>15)

		// diag = (hDg ⊕ sub) ⊖ (−Mismatch): a saturating add of the LUT
		// word (carry → sticky), then the fold of the unconditional
		// Mismatch.
		sd := hDg + nsub[g]
		md := sd & nH
		ovAcc |= md
		sd = sd&nLow | (md - md>>15)
		t7 := (sd | nH) - nmV
		m7 := t7 & nH
		dg := t7 & (m7 - m7>>15)

		// best = max(diag, iv, dv).
		t8 := (dg | nH) - iv
		m8 := t8 & nH
		best := iv + t8&(m8-m8>>15)
		t9 := (best | nH) - dv
		m9 := t9 & nH
		best = dv + t9&(m9-m9>>15)

		// Bottom guard: any interior H output below the floor is where an
		// inexact chain would surface — sticky.
		tg := (best | nH) - gbV
		ovAcc |= ^tg & nH

		hNext[g] = best
		iNext[g] = iv
		dNext[g] = dv
	}
	return ovAcc
}
