package baseline

import (
	"math/rand"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/seq"
)

func makePairs(seed int64, n, length int, errRate float64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, n)
	for i := range pairs {
		a := seq.Random(rng, length+rng.Intn(length/4+1))
		b := seq.UniformErrors(errRate).Apply(rng, a)
		pairs[i] = Pair{ID: i, A: a, B: b}
	}
	return pairs
}

func TestOptionsValidate(t *testing.T) {
	good := Options{Params: core.DefaultParams(), Band: 128}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Params: core.DefaultParams(), Band: 1},
		{Params: core.Params{}, Band: 128},
		{Params: core.DefaultParams(), Band: 128, Threads: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFastKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := core.DefaultParams()
	for trial := 0; trial < 60; trial++ {
		var a, b seq.Seq
		switch trial % 3 {
		case 0:
			a, b = seq.Random(rng, rng.Intn(200)), seq.Random(rng, rng.Intn(200))
		case 1:
			a = seq.Random(rng, 50+rng.Intn(300))
			b = seq.UniformErrors(0.15).Apply(rng, a)
		default:
			a = seq.Random(rng, rng.Intn(40))
			b = seq.UniformErrors(0.05).Apply(rng, a)
		}
		for _, w := range []int{4, 16, 64, 256} {
			want := core.StaticBandScore(a, b, p, w)
			score, cells, inBand := fastStaticBandScore(nil, a, b, p, w)
			if inBand != want.InBand {
				t.Fatalf("w=%d len=%d/%d: inBand %v, want %v", w, len(a), len(b), inBand, want.InBand)
			}
			if inBand && score != want.Score {
				t.Fatalf("w=%d len=%d/%d: score %d, want %d", w, len(a), len(b), score, want.Score)
			}
			if inBand && cells != want.Cells {
				t.Fatalf("w=%d: cells %d, want %d", w, cells, want.Cells)
			}
		}
	}
}

func TestFastKernelEdges(t *testing.T) {
	p := core.DefaultParams()
	if s, _, ok := fastStaticBandScore(nil, nil, nil, p, 8); !ok || s != 0 {
		t.Errorf("empty/empty: %d %v", s, ok)
	}
	a := seq.MustFromString("ACG")
	if s, _, ok := fastStaticBandScore(nil, a, nil, p, 8); !ok || s != -p.GapCost(3) {
		t.Errorf("vs empty: %d %v", s, ok)
	}
	long := seq.MustFromString("ACGTACGTACGTACGT")
	if _, _, ok := fastStaticBandScore(nil, long, a, p, 8); ok {
		t.Error("skew 13 > half-band 4 accepted")
	}
}

func TestRunScores(t *testing.T) {
	opts := Options{Params: core.DefaultParams(), Band: 64, Threads: 4}
	pairs := makePairs(12, 25, 150, 0.1)
	out, err := Run(opts, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(pairs) {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.WallSeconds <= 0 || out.Cells <= 0 {
		t.Errorf("outcome: %+v", out)
	}
	for i, r := range out.Results {
		if r.ID != pairs[i].ID {
			t.Fatalf("result %d has ID %d", i, r.ID)
		}
		want := core.StaticBandScore(pairs[i].A, pairs[i].B, opts.Params, opts.Band)
		if r.InBand != want.InBand || (r.InBand && r.Score != want.Score) {
			t.Errorf("pair %d: %d/%v, want %d/%v", r.ID, r.Score, r.InBand, want.Score, want.InBand)
		}
		if r.Cigar != nil {
			t.Errorf("pair %d: score-only run produced a cigar", r.ID)
		}
	}
}

func TestRunTraceback(t *testing.T) {
	opts := Options{Params: core.DefaultParams(), Band: 64, Threads: 2, Traceback: true}
	pairs := makePairs(13, 10, 120, 0.08)
	out, err := Run(opts, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if !r.InBand {
			continue
		}
		if err := r.Cigar.Validate(pairs[i].A, pairs[i].B); err != nil {
			t.Errorf("pair %d: %v", r.ID, err)
		}
		if got := core.ScoreFromCigar(r.Cigar, opts.Params); got != r.Score {
			t.Errorf("pair %d: cigar score %d, reported %d", r.ID, got, r.Score)
		}
	}
}

func TestRunAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	root := seq.Random(rng, 200)
	seqs := make([]seq.Seq, 8)
	for i := range seqs {
		seqs[i] = seq.UniformErrors(0.05).Apply(rng, root)
	}
	opts := Options{Params: core.DefaultParams(), Band: 64, Threads: 4}
	out, err := RunAllPairs(opts, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 8*7/2 {
		t.Fatalf("%d results, want 28", len(out.Results))
	}
	if _, err := RunAllPairs(Options{Params: core.DefaultParams(), Band: 64, Traceback: true}, seqs); err == nil {
		t.Error("traceback all-against-all accepted")
	}
}

func TestServerModels(t *testing.T) {
	if Xeon4216.TBCellsPerSec <= Xeon4215.TBCellsPerSec {
		t.Error("the 64-core server must model faster than the 32-core one")
	}
	// Sanity against the paper's S1000 row: 10M pairs x 1000 rows x band
	// 128 = 1.28e12 cells in ~294 s.
	sec := Xeon4215.Seconds(1_280_000_000_000, true)
	if sec < 250 || sec > 340 {
		t.Errorf("modelled S1000 on 4215 = %.0f s, paper says 294", sec)
	}
	// 16S score-only: 45.66M pairs x 1542 rows x band 512 = 3.6e13 cells
	// in ~5882 s.
	sec = Xeon4215.Seconds(36_000_000_000_000, false)
	if sec < 5200 || sec > 6500 {
		t.Errorf("modelled 16S on 4215 = %.0f s, paper says 5882", sec)
	}
}

func TestStaticBandCells(t *testing.T) {
	if got := StaticBandCells(1000, 1000, 128); got != 128000 {
		t.Errorf("cells = %d", got)
	}
	// Band wider than the target: clipped to the row width.
	if got := StaticBandCells(100, 50, 128); got != 5000 {
		t.Errorf("clipped cells = %d", got)
	}
}

func BenchmarkFastKernelVsReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := seq.Random(rng, 2000)
	bb := seq.UniformErrors(0.1).Apply(rng, a)
	p := core.DefaultParams()
	b.Run("query-profile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fastStaticBandScore(nil, a, bb, p, 128)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.StaticBandScore(a, bb, p, 128)
		}
	})
}

func TestExactModeMatchesCoreFull(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(21))
	mut := seq.UniformErrors(0.15)
	var pairs []Pair
	for i := 0; i < 10; i++ {
		a := seq.Random(rng, 120+rng.Intn(180))
		pairs = append(pairs, Pair{ID: i, A: a, B: mut.Apply(rng, a)})
	}
	out, err := Run(Options{Params: p, Exact: true, Traceback: true, Threads: 2}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Results {
		want := core.GotohAlign(pairs[r.ID].A, pairs[r.ID].B, p)
		if r.Score != want.Score || !r.InBand {
			t.Fatalf("pair %d: exact mode score %d (InBand=%v), core.Full %d", r.ID, r.Score, r.InBand, want.Score)
		}
		if r.Cigar.String() != want.Cigar.String() {
			t.Fatalf("pair %d: exact mode CIGAR diverges from core.Full", r.ID)
		}
	}
	// Band is ignored in exact mode: a zero band must validate.
	if _, err := Run(Options{Params: p, Exact: true}, pairs[:1]); err != nil {
		t.Fatalf("exact mode rejected zero band: %v", err)
	}
}
