// Package baseline is the CPU comparator of the paper's §5: a
// multi-threaded static-banded affine-gap aligner standing in for the
// KSW2/minimap2 OpenMP implementation the paper benchmarks against. The
// worker pool plays OpenMP's role; the query-profile kernel in fast.go
// plays the role of KSW2's branchless SSE inner loop. Calibrated
// throughput models of the paper's two Xeon servers (servers.go) let the
// experiment harness reproduce the tables' CPU columns at full scale.
package baseline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

// Pair is one alignment request.
type Pair struct {
	ID   int
	A, B seq.Seq
}

// Options configures a baseline run.
type Options struct {
	Params core.Params
	// Band is the static band size; the paper's minimap2 runs use 128,
	// 256 or 512 depending on the dataset (Table 1).
	Band int
	// Threads is the worker-pool width; 0 means GOMAXPROCS.
	Threads int
	// Traceback selects CIGAR production.
	Traceback bool
	// Exact switches the engine from the static band to the full-matrix
	// Gotoh aligner (core.Full): O(m·n) work, guaranteed-optimal results.
	// Band is ignored. This is the last rung of the host's degradation
	// ladder — the answer of record when no feasible band fits a pair.
	Exact bool
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// Validate rejects nonsensical options.
func (o Options) Validate() error {
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if !o.Exact && o.Band < 2 {
		return fmt.Errorf("baseline: band %d too small", o.Band)
	}
	if o.Threads < 0 {
		return fmt.Errorf("baseline: negative thread count")
	}
	return nil
}

// Result is one alignment outcome.
type Result struct {
	ID     int
	Score  int32
	InBand bool
	Cigar  cigar.Cigar
	Cells  int64
}

// Outcome is a measured baseline run.
type Outcome struct {
	Results []Result
	// WallSeconds is the measured host wall-clock time of the compute
	// phase (this machine, not the paper's Xeons — use ServerModel to map
	// to the paper's hardware).
	WallSeconds float64
	Cells       int64
}

// Run aligns all pairs on a worker pool and measures the wall time.
func Run(opts Options, pairs []Pair) (Outcome, error) {
	if err := opts.Validate(); err != nil {
		return Outcome{}, err
	}
	results := make([]Result, len(pairs))
	start := time.Now()
	workChan := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.threads(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch, OpenMP thread-private style: every
			// alignment after the first reuses the same buffers.
			ws := &workerScratch{core: core.GetScratch()}
			defer core.PutScratch(ws.core)
			for i := range workChan {
				results[i] = alignOne(opts, ws, pairs[i])
			}
		}()
	}
	for i := range pairs {
		workChan <- i
	}
	close(workChan)
	wg.Wait()

	out := Outcome{Results: results, WallSeconds: time.Since(start).Seconds()}
	for i := range results {
		out.Cells += results[i].Cells
	}
	return out, nil
}

func alignOne(opts Options, ws *workerScratch, p Pair) Result {
	if opts.Exact {
		var res core.Result
		if opts.Traceback {
			res = ws.core.GotohAlign(p.A, p.B, opts.Params)
		} else {
			res = ws.core.GotohScore(p.A, p.B, opts.Params)
		}
		return Result{ID: p.ID, Score: res.Score, InBand: true, Cigar: res.Cigar, Cells: res.Cells}
	}
	if opts.Traceback {
		res := ws.core.StaticBandAlign(p.A, p.B, opts.Params, opts.Band)
		return Result{ID: p.ID, Score: res.Score, InBand: res.InBand, Cigar: res.Cigar, Cells: res.Cells}
	}
	score, cells, inBand := fastStaticBandScore(ws, p.A, p.B, opts.Params, opts.Band)
	return Result{ID: p.ID, Score: score, InBand: inBand, Cells: cells}
}

// RunAllPairs is the all-against-all score-only mode (§5.3's CPU column).
func RunAllPairs(opts Options, seqs []seq.Seq) (Outcome, error) {
	if opts.Traceback {
		return Outcome{}, fmt.Errorf("baseline: all-against-all mode is score-only")
	}
	var pairs []Pair
	id := 0
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			pairs = append(pairs, Pair{ID: id, A: seqs[i], B: seqs[j]})
			id++
		}
	}
	return Run(opts, pairs)
}
