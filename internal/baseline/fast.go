package baseline

import (
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

// workerScratch is one worker goroutine's private reusable state: the
// shared core engine arena plus this kernel's profile and row buffers.
// Buffers grow monotonically, so a worker's steady state allocates nothing.
type workerScratch struct {
	core             *core.Scratch
	prof, hrow, icol []int32
}

// grow resizes buf to n int32s, reusing the backing array when it fits.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// fastStaticBandScore is the optimised CPU inner kernel: static-banded
// Gotoh with a query-sequence profile, the scalar analogue of KSW2's
// branchless SSE formulation (the paper credits minimap2's speed to the
// profile + branchless + vectorised combination, §5.1). Precomputing
// prof[v][j] = sub(v, b[j]) removes the base comparison from the critical
// loop; the row loop then runs branch-free except for the band bounds.
// It returns exactly the scores of core.StaticBandScore (enforced by the
// package tests); only the constant factor differs. ws may be nil (the
// buffers are then allocated per call).
func fastStaticBandScore(ws *workerScratch, a, b seq.Seq, p core.Params, band int) (score int32, cells int64, inBand bool) {
	if ws == nil {
		ws = new(workerScratch)
	}
	m, n := len(a), len(b)
	h := band / 2
	if h < 1 {
		h = 1
	}
	if m-n > h || n-m > h {
		return core.NegInf, 0, false
	}
	if m == 0 && n == 0 {
		return 0, 0, true
	}
	if m == 0 || n == 0 {
		return -p.GapCost(m + n), 0, true
	}

	// Target profile: prof[v][j-1] is the substitution score of aligning
	// base value v against b[j-1].
	var prof [seq.NumBases][]int32
	ws.prof = grow(ws.prof, seq.NumBases*n)
	flat := ws.prof
	for v := 0; v < seq.NumBases; v++ {
		prof[v] = flat[v*n : (v+1)*n]
	}
	for j, bv := range b {
		for v := seq.Base(0); v < seq.NumBases; v++ {
			if v == bv {
				prof[v][j] = p.Match
			} else {
				prof[v][j] = p.Mismatch
			}
		}
	}

	ws.hrow = grow(ws.hrow, n+1)
	ws.icol = grow(ws.icol, n+1)
	hrow := ws.hrow
	icol := ws.icol
	for j := range hrow {
		hrow[j] = core.NegInf
		icol[j] = core.NegInf
	}
	hrow[0] = 0
	for j := 1; j <= h && j <= n; j++ {
		hrow[j] = -p.GapCost(j)
	}
	openCost := p.GapOpen + p.GapExt
	ext := p.GapExt

	for i := 1; i <= m; i++ {
		jlo := i - h
		if jlo < 1 {
			jlo = 1
		}
		jhi := i + h
		if jhi > n {
			jhi = n
		}
		diag := hrow[jlo-1]
		hleft := core.NegInf
		if i <= h {
			hrow[0] = -p.GapCost(i)
			icol[0] = hrow[0]
			hleft = hrow[0]
		}
		d := core.NegInf
		row := prof[a[i-1]]
		for j := jlo; j <= jhi; j++ {
			iv := icol[j] - ext
			if up := hrow[j] - openCost; up > iv {
				iv = up
			}
			d -= ext
			if left := hleft - openCost; left > d {
				d = left
			}
			best := diag + row[j-1]
			if iv > best {
				best = iv
			}
			if d > best {
				best = d
			}
			diag = hrow[j]
			hrow[j] = best
			icol[j] = iv
			hleft = best
		}
		cells += int64(jhi - jlo + 1)
	}
	score = hrow[n]
	if score <= core.NegInf/2 {
		return core.NegInf, cells, false
	}
	return score, cells, true
}
