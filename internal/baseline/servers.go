package baseline

// ServerModel is a calibrated throughput model of one of the paper's CPU
// evaluation servers running the minimap2/KSW2 N&W kernel. The figures are
// back-derived from the paper's own tables with cells = pairs · m · band
// (the paper counts "band size" as cells per row on both architectures:
// Table 3 calls CPU band 256 "twice the cells" of DPU band 128); see
// EXPERIMENTS.md "Cost model calibration". E.g. the Intel 4215 aligns
// S1000 (10M pairs x 1000 rows x 128 = 1.28e12 cells) in 294 s ⇒ ~4.4e9
// cells/s, S30000 at 4.65e9, and the score-only 16S dataset at ~6.1e9
// (no traceback matrix to fill or walk).
type ServerModel struct {
	Name  string
	Cores int
	// TBCellsPerSec is the aggregate DP-cell throughput with traceback
	// (the S-datasets and PacBio columns).
	TBCellsPerSec float64
	// ScoreCellsPerSec is the aggregate throughput score-only (16S).
	ScoreCellsPerSec float64
}

// The paper's two CPU configurations (§5).
var (
	// Xeon4215 is the dual-socket Intel Xeon Silver 4215 server: 32 cores
	// at 2.5 GHz, 11 MB L3 — the same CPUs as in the PiM server, and the
	// baseline all speedups are quoted against.
	Xeon4215 = ServerModel{
		Name:             "Minimap2 Intel 4215 (32c)",
		Cores:            32,
		TBCellsPerSec:    4.4e9,
		ScoreCellsPerSec: 6.1e9,
	}
	// Xeon4216 is the dual-socket Intel Xeon Silver 4216 server: 64 cores
	// at 2.1 GHz, 22 MB L3. Its larger L3 helps the band-sized working
	// sets of S10000 most (the paper's surprising 2x there).
	Xeon4216 = ServerModel{
		Name:             "Minimap2 Intel 4216 (64c)",
		Cores:            64,
		TBCellsPerSec:    6.2e9,
		ScoreCellsPerSec: 1.03e10,
	}
)

// Seconds maps a cell count onto the modelled server.
func (m ServerModel) Seconds(cells int64, traceback bool) float64 {
	rate := m.ScoreCellsPerSec
	if traceback {
		rate = m.TBCellsPerSec
	}
	return float64(cells) / rate
}

// StaticBandCells is the DP work of a static-banded CPU alignment of an
// (aLen, bLen) pair at the given band: the CPU computes min(band, row
// width) cells for each of the aLen rows. It is the cell model behind the
// paper's CPU columns.
func StaticBandCells(aLen, bLen, band int) int64 {
	rows := int64(aLen)
	width := int64(band)
	if w := int64(bLen); w < width {
		width = w
	}
	return rows * width
}
