package pim

import (
	"fmt"
	"math"
)

// FluidSimulate runs the fast performance model: between events, the
// pipeline is a fluid resource serving the k currently-executing tasklets
// at an aggregate rate of min(k/11, 1) instructions per cycle (each tasklet
// progressing at min(1/11, 1/k)), which is the exact behaviour of the
// round-robin issue stage in steady state. DMA transfers are served one at
// a time at 2 B/cycle plus setup. Events are segment completions, so the
// cost is O(segments), letting the experiment harness simulate full-size
// kernels that would take hours under ExactSimulate. The two models are
// cross-validated in the package tests (within a few percent).
func FluidSimulate(run *DPURun) (DPUStats, error) {
	const (
		stExec = iota
		stDMAQueued
		stDMAActive
		stBarrier
		stDone
	)
	n := len(run.Traces)
	if n == 0 {
		return DPUStats{}, fmt.Errorf("pim: empty run")
	}
	type tasklet struct {
		segs      []Segment
		idx       int
		remaining float64 // instructions (Exec) or engine cycles (DMA)
		state     int
	}
	ts := make([]*tasklet, n)
	var stats DPUStats

	groups := run.barrierGroups()
	arrived := map[int64]int{}
	waiting := map[int64][]int{}
	var dmaQueue []int
	dmaActive := -1

	var advance func(i int)
	advance = func(i int) {
		t := ts[i]
		for {
			t.idx++
			if t.idx >= len(t.segs) {
				t.state = stDone
				return
			}
			seg := t.segs[t.idx]
			switch seg.Kind {
			case SegExec:
				t.state = stExec
				t.remaining = float64(seg.Arg)
				return
			case SegDMARead, SegDMAWrite:
				t.state = stDMAQueued
				t.remaining = float64(DMACycles(seg.Arg))
				stats.DMABytes += seg.Arg
				stats.DMATransfers += (seg.Arg + DMAMaxBytes - 1) / DMAMaxBytes
				dmaQueue = append(dmaQueue, i)
				return
			case SegBarrier:
				g := seg.Arg
				arrived[g]++
				if arrived[g] == len(groups[g]) {
					arrived[g] = 0
					released := waiting[g]
					waiting[g] = nil
					for _, j := range released {
						advance(j)
					}
					continue
				}
				t.state = stBarrier
				waiting[g] = append(waiting[g], i)
				return
			}
		}
	}

	for i, tr := range run.Traces {
		ts[i] = &tasklet{segs: tr.Segs, idx: -1}
		advance(i)
	}

	var now float64
	var issueIntegral, dmaIntegral, barrierIntegral float64
	const eps = 1e-9
	for {
		// Activate the DMA engine if idle.
		if dmaActive < 0 && len(dmaQueue) > 0 {
			dmaActive = dmaQueue[0]
			dmaQueue = dmaQueue[1:]
			ts[dmaActive].state = stDMAActive
		}

		// Count executing and barrier-blocked tasklets, find the horizon.
		k, nb := 0, 0
		for _, t := range ts {
			switch t.state {
			case stExec:
				k++
			case stBarrier:
				nb++
			}
		}
		if k == 0 && dmaActive < 0 {
			break // all done, or deadlocked on barriers (checked below)
		}
		perTaskletRate := 0.0
		if k > 0 {
			perTaskletRate = math.Min(1.0/PipelineReentry, 1.0/float64(k))
		}
		dt := math.Inf(1)
		for _, t := range ts {
			if t.state == stExec && perTaskletRate > 0 {
				if d := t.remaining / perTaskletRate; d < dt {
					dt = d
				}
			}
		}
		if dmaActive >= 0 {
			if d := ts[dmaActive].remaining; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			break
		}
		if dt < eps {
			dt = eps
		}

		now += dt
		aggRate := float64(k) * perTaskletRate // = min(k/11, 1)
		issueIntegral += aggRate * dt
		barrierIntegral += float64(nb) * dt
		if dmaActive >= 0 {
			dmaIntegral += dt
		}
		var finishedDMA = -1
		for i, t := range ts {
			switch t.state {
			case stExec:
				t.remaining -= perTaskletRate * dt
				if t.remaining < eps {
					advance(i)
				}
			case stDMAActive:
				t.remaining -= dt
				if t.remaining < eps {
					finishedDMA = i
				}
			}
		}
		if finishedDMA >= 0 {
			dmaActive = -1
			advance(finishedDMA)
		}
	}

	for g, w := range waiting {
		if len(w) > 0 {
			return stats, fmt.Errorf("pim: %d tasklets deadlocked on barrier group %d", len(w), g)
		}
	}
	for i, t := range ts {
		if t.state != stDone {
			return stats, fmt.Errorf("pim: tasklet %d stalled in state %d", i, t.state)
		}
	}
	stats.Cycles = int64(math.Ceil(now))
	stats.IssueCycles = int64(issueIntegral + 0.5)
	stats.Instr, _, _ = run.Totals()
	stats.DMACycles = int64(dmaIntegral + 0.5)
	stats.BarrierCycles = int64(barrierIntegral + 0.5)
	stats.publish()
	return stats, nil
}
