package pim

import "fmt"

// ExactSimulate runs the cycle-stepped round-robin model of the DPU
// pipeline: one instruction issued per cycle at most, a given tasklet
// re-entering at most every PipelineReentry cycles, tasklets blocking on a
// shared single-channel DMA engine and on pool barriers. It is the
// reference model; FluidSimulate is validated against it. Complexity is
// O(total cycles), so use it for small runs (tests, calibration).
func ExactSimulate(run *DPURun) (DPUStats, error) {
	const (
		stReady = iota
		stDMA
		stBarrier
		stDone
	)
	n := len(run.Traces)
	if n == 0 {
		return DPUStats{}, fmt.Errorf("pim: empty run")
	}
	type tasklet struct {
		segs      []Segment
		idx       int   // current segment
		remaining int64 // instructions left in current Exec segment
		state     int
		nextIssue int64 // earliest cycle the pipeline may issue for it
	}
	ts := make([]*tasklet, n)
	var stats DPUStats

	groups := run.barrierGroups()
	arrived := map[int64]int{}
	waiting := map[int64][]int{}

	// dmaQueue holds tasklet indices waiting for the engine, FIFO.
	var dmaQueue []int
	var dmaActive = -1
	var dmaRemaining int64

	var advance func(cycle int64, i int) // start tasklet i's next segment

	startDMA := func(i int, bytes int64) {
		ts[i].state = stDMA
		dmaQueue = append(dmaQueue, i)
		ts[i].remaining = DMACycles(bytes)
		stats.DMABytes += bytes
		stats.DMATransfers += (bytes + DMAMaxBytes - 1) / DMAMaxBytes
	}

	advance = func(cycle int64, i int) {
		t := ts[i]
		for {
			t.idx++
			if t.idx >= len(t.segs) {
				t.state = stDone
				return
			}
			seg := t.segs[t.idx]
			switch seg.Kind {
			case SegExec:
				t.state = stReady
				t.remaining = seg.Arg
				return
			case SegDMARead, SegDMAWrite:
				startDMA(i, seg.Arg)
				return
			case SegBarrier:
				g := seg.Arg
				arrived[g]++
				if arrived[g] == len(groups[g]) {
					arrived[g] = 0
					released := waiting[g]
					waiting[g] = nil
					t.state = stReady // placeholder; loop continues below
					for _, j := range released {
						advance(cycle, j)
					}
					continue // this tasklet proceeds past the barrier too
				}
				t.state = stBarrier
				waiting[g] = append(waiting[g], i)
				return
			}
		}
	}

	for i, tr := range run.Traces {
		ts[i] = &tasklet{segs: tr.Segs, idx: -1}
		advance(0, i)
	}

	rr := 0
	var cycle int64
	for {
		allDone := true
		for _, t := range ts {
			if t.state != stDone {
				allDone = false
			}
			if t.state == stBarrier {
				stats.BarrierCycles++
			}
		}
		if allDone {
			break
		}

		// DMA engine: activate the next queued transfer, progress 1 cycle.
		if dmaActive < 0 && len(dmaQueue) > 0 {
			dmaActive = dmaQueue[0]
			dmaQueue = dmaQueue[1:]
			dmaRemaining = ts[dmaActive].remaining
		}
		if dmaActive >= 0 {
			stats.DMACycles++
			dmaRemaining--
			if dmaRemaining <= 0 {
				done := dmaActive
				dmaActive = -1
				advance(cycle+1, done)
			}
		}

		// Pipeline: issue for the first ready tasklet in round-robin order
		// whose re-entry restriction has elapsed.
		anyReady := false
		for k := 0; k < n; k++ {
			i := (rr + k) % n
			t := ts[i]
			if t.state != stReady || t.remaining <= 0 {
				continue
			}
			anyReady = true
			if cycle < t.nextIssue {
				continue
			}
			t.remaining--
			t.nextIssue = cycle + PipelineReentry
			stats.Instr++
			stats.IssueCycles++
			rr = (i + 1) % n
			if t.remaining == 0 {
				advance(cycle+1, i)
			}
			break
		}
		// Idle system with nothing in flight: any tasklet still parked on a
		// barrier can never be released.
		if !anyReady && dmaActive < 0 && len(dmaQueue) == 0 {
			for _, t := range ts {
				if t.state == stBarrier {
					return stats, fmt.Errorf("pim: deadlock at cycle %d: live tasklets wait on a barrier", cycle)
				}
			}
		}
		cycle++
		// Safety valve against modelling bugs: a run must progress.
		if cycle > 1<<40 {
			return stats, fmt.Errorf("pim: exact simulation exceeded 2^40 cycles")
		}
	}

	// Deadlock check: any tasklet still waiting on a barrier means the
	// kernel's barrier protocol was unbalanced.
	for g, w := range waiting {
		if len(w) > 0 {
			return stats, fmt.Errorf("pim: %d tasklets deadlocked on barrier group %d", len(w), g)
		}
	}
	stats.Cycles = cycle
	stats.publish()
	return stats, nil
}
