package pim

import (
	"fmt"

	"pimnw/internal/obs"
)

// FaultKind enumerates the fabric faults the model can inject. The kinds
// mirror the failure modes production UPMEM deployments report: tasklets
// stuck in MRAM arbitration (stall), thermally throttled DPUs (slow),
// kernels aborting on a hardware fault (crash), host<->MRAM transfers
// corrupted in flight (corrupt), and whole ranks dropping off the DDR bus
// (rank dropout, detected when the launch call errors).
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	// FaultStall makes the DPU orders of magnitude slower than modelled —
	// in a real deployment it looks stuck until the host's batch deadline
	// expires.
	FaultStall
	// FaultSlow inflates the DPU's cycle count by a moderate factor.
	FaultSlow
	// FaultCrash aborts the kernel; the launch returns a FaultError.
	FaultCrash
	// FaultCorrupt flips bits in the DPU's result transfer; the host
	// detects it through the per-batch result checksum.
	FaultCorrupt
	// FaultRankDrop drops the whole rank off the bus for one launch.
	FaultRankDrop
)

// String names the kind for metrics, traces and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultStall:
		return "stall"
	case FaultSlow:
		return "slow"
	case FaultCrash:
		return "crash"
	case FaultCorrupt:
		return "corrupt"
	case FaultRankDrop:
		return "rank_drop"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Fault is one drawn fault. Factor is the cycle multiplier for the
// stall/slow kinds and unused otherwise.
type Fault struct {
	Kind   FaultKind
	Factor float64
}

// FaultError is the error a crashed (or rank-dropped) launch returns. The
// host's recovery loop distinguishes it from genuine configuration or
// capacity errors, which are never retried.
type FaultError struct {
	DPU  int
	Kind FaultKind
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("pim: injected %s fault on DPU %d", e.Kind, e.DPU)
}

// Default fault-kind mix: stalls and slowdowns dominate (they do on real
// fleets), crashes and corruptions are rarer.
const (
	defaultStallWeight   = 0.25
	defaultSlowWeight    = 0.45
	defaultCrashWeight   = 0.15
	defaultCorruptWeight = 0.15
	defaultSlowFactor    = 8
	defaultStallFactor   = 512
)

// FaultConfig parameterises the fault model. The zero value is a perfect
// fabric (no injection).
type FaultConfig struct {
	// Rate is the per-DPU-launch fault probability.
	Rate float64
	// RankDropRate is the per-batch-launch probability that the whole
	// rank drops off the bus (detected at launch time).
	RankDropRate float64
	// Seed makes every draw deterministic: the same seed and the same
	// (batch, attempt, dpu) coordinates always produce the same fault,
	// independent of host scheduling.
	Seed int64
	// Kind weights; all zero selects the default mix.
	StallWeight, SlowWeight, CrashWeight, CorruptWeight float64
	// SlowFactor and StallFactor are the cycle multipliers (defaults 8
	// and 512).
	SlowFactor, StallFactor float64
}

// Enabled reports whether the configuration injects anything.
func (c FaultConfig) Enabled() bool { return c.Rate > 0 || c.RankDropRate > 0 }

// Validate rejects impossible fault configurations.
func (c FaultConfig) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("pim: fault Rate %g outside [0,1]", c.Rate)
	}
	if c.RankDropRate < 0 || c.RankDropRate > 1 {
		return fmt.Errorf("pim: RankDropRate %g outside [0,1]", c.RankDropRate)
	}
	if c.StallWeight < 0 || c.SlowWeight < 0 || c.CrashWeight < 0 || c.CorruptWeight < 0 {
		return fmt.Errorf("pim: negative fault kind weight")
	}
	if c.SlowFactor < 0 || c.StallFactor < 0 {
		return fmt.Errorf("pim: negative fault factor")
	}
	if c.SlowFactor != 0 && c.SlowFactor < 1 || c.StallFactor != 0 && c.StallFactor < 1 {
		return fmt.Errorf("pim: fault factors below 1 would speed the DPU up")
	}
	return nil
}

// FaultModel draws deterministic faults from a FaultConfig. A nil model is
// the disabled state: every draw returns FaultNone.
type FaultModel struct {
	cfg                           FaultConfig
	wStall, wSlow, wCrash, wTotal float64
	slowFactor, stallFactor       float64
}

// NewFaultModel validates the configuration and builds a model; a disabled
// configuration yields a nil model, which is safe to draw from.
func NewFaultModel(c FaultConfig) (*FaultModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.Enabled() {
		return nil, nil
	}
	m := &FaultModel{cfg: c}
	wStall, wSlow, wCrash, wCorrupt := c.StallWeight, c.SlowWeight, c.CrashWeight, c.CorruptWeight
	if wStall+wSlow+wCrash+wCorrupt == 0 {
		wStall, wSlow, wCrash, wCorrupt = defaultStallWeight, defaultSlowWeight, defaultCrashWeight, defaultCorruptWeight
	}
	m.wStall = wStall
	m.wSlow = wStall + wSlow
	m.wCrash = wStall + wSlow + wCrash
	m.wTotal = wStall + wSlow + wCrash + wCorrupt
	m.slowFactor = c.SlowFactor
	if m.slowFactor == 0 {
		m.slowFactor = defaultSlowFactor
	}
	m.stallFactor = c.StallFactor
	if m.stallFactor == 0 {
		m.stallFactor = defaultStallFactor
	}
	return m, nil
}

// splitmix64's finalizer: a strong bijective mixer, the core of every
// deterministic draw.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash chains the draw coordinates through the mixer so that every
// (seed, stream, batch, attempt, unit) tuple lands on an independent
// uniform value.
func (m *FaultModel) hash(stream, batch, attempt, unit int) uint64 {
	h := mix64(uint64(m.cfg.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(stream))
	h = mix64(h ^ uint64(batch))
	h = mix64(h ^ uint64(attempt))
	return mix64(h ^ uint64(unit))
}

// uniform maps a hash to [0,1).
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Draw returns the fault injected into one DPU launch, identified by its
// batch, recovery attempt and DPU index. Deterministic in the seed and the
// coordinates; FaultNone from a nil model.
func (m *FaultModel) Draw(batch, attempt, dpu int) Fault {
	if m == nil || m.cfg.Rate == 0 {
		return Fault{}
	}
	h := m.hash(1, batch, attempt, dpu)
	if uniform(h) >= m.cfg.Rate {
		return Fault{}
	}
	f := Fault{}
	switch pick := uniform(mix64(h^0xd6e8feb86659fd93)) * m.wTotal; {
	case pick < m.wStall:
		f = Fault{Kind: FaultStall, Factor: m.stallFactor}
	case pick < m.wSlow:
		f = Fault{Kind: FaultSlow, Factor: m.slowFactor}
	case pick < m.wCrash:
		f = Fault{Kind: FaultCrash}
	default:
		f = Fault{Kind: FaultCorrupt}
	}
	m.count(f.Kind)
	return f
}

// DrawRankDrop reports whether the whole rank drops off the bus for this
// batch launch attempt.
func (m *FaultModel) DrawRankDrop(batch, attempt int) bool {
	if m == nil || m.cfg.RankDropRate == 0 {
		return false
	}
	if uniform(m.hash(2, batch, attempt, 0)) < m.cfg.RankDropRate {
		m.count(FaultRankDrop)
		return true
	}
	return false
}

// Jitter is a deterministic uniform [0,1) stream for the host's retry
// backoff, keyed like the fault draws so recovery timing is reproducible.
func (m *FaultModel) Jitter(batch, attempt int) float64 {
	if m == nil {
		return 0
	}
	return uniform(m.hash(3, batch, attempt, 0))
}

// count publishes one injected fault to the default metrics registry.
func (m *FaultModel) count(k FaultKind) {
	reg := obs.Default()
	if reg == nil {
		return
	}
	reg.Counter("pim_faults_injected_total").Add(1)
	reg.Counter("pim_faults_injected_" + k.String() + "_total").Add(1)
}
