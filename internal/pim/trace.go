package pim

import (
	"fmt"

	"pimnw/internal/obs"
)

// SegKind is a tasklet trace segment kind.
type SegKind uint8

// Segment kinds.
const (
	// SegExec executes Arg instructions through the shared pipeline.
	SegExec SegKind = iota
	// SegDMARead moves Arg bytes MRAM->WRAM; the tasklet blocks while the
	// shared DMA engine performs the transfer (§2.1).
	SegDMARead
	// SegDMAWrite moves Arg bytes WRAM->MRAM, blocking likewise.
	SegDMAWrite
	// SegBarrier synchronises the tasklet with every other tasklet that
	// uses barrier group Arg (the per-anti-diagonal pool barrier of
	// §4.2.3).
	SegBarrier
)

// Segment is one step of a tasklet's execution, in kernel-trace form.
type Segment struct {
	Kind SegKind
	Arg  int64
}

// TaskletTrace is the sequence of segments one tasklet executes.
type TaskletTrace struct {
	Segs []Segment
}

// Exec appends n instructions, merging with a trailing Exec segment.
func (t *TaskletTrace) Exec(n int64) {
	if n <= 0 {
		return
	}
	if k := len(t.Segs); k > 0 && t.Segs[k-1].Kind == SegExec {
		t.Segs[k-1].Arg += n
		return
	}
	t.Segs = append(t.Segs, Segment{SegExec, n})
}

// DMARead appends an MRAM->WRAM transfer of n bytes.
func (t *TaskletTrace) DMARead(n int64) {
	if n > 0 {
		t.Segs = append(t.Segs, Segment{SegDMARead, n})
	}
}

// DMAWrite appends a WRAM->MRAM transfer of n bytes.
func (t *TaskletTrace) DMAWrite(n int64) {
	if n > 0 {
		t.Segs = append(t.Segs, Segment{SegDMAWrite, n})
	}
}

// Barrier appends a synchronisation against barrier group g.
func (t *TaskletTrace) Barrier(g int64) {
	t.Segs = append(t.Segs, Segment{SegBarrier, g})
}

// DPURun is one DPU's complete workload: one trace per booted tasklet.
type DPURun struct {
	Traces []*TaskletTrace
}

// NewDPURun boots n tasklets.
func NewDPURun(n int) (*DPURun, error) {
	if n < 1 || n > MaxTasklets {
		return nil, fmt.Errorf("pim: %d tasklets outside 1..%d", n, MaxTasklets)
	}
	r := &DPURun{Traces: make([]*TaskletTrace, n)}
	for i := range r.Traces {
		r.Traces[i] = &TaskletTrace{}
	}
	return r, nil
}

// Totals sums the static work of the run.
func (r *DPURun) Totals() (instr, dmaBytes int64, dmaTransfers int64) {
	for _, t := range r.Traces {
		for _, s := range t.Segs {
			switch s.Kind {
			case SegExec:
				instr += s.Arg
			case SegDMARead, SegDMAWrite:
				dmaBytes += s.Arg
				dmaTransfers += (s.Arg + DMAMaxBytes - 1) / DMAMaxBytes
			}
		}
	}
	return instr, dmaBytes, dmaTransfers
}

// barrierGroups derives group membership: tasklet i belongs to group g if
// its trace contains a barrier on g. The kernel guarantees all members hit
// each group the same number of times.
func (r *DPURun) barrierGroups() map[int64][]int {
	groups := map[int64][]int{}
	for i, t := range r.Traces {
		seen := map[int64]bool{}
		for _, s := range t.Segs {
			if s.Kind == SegBarrier && !seen[s.Arg] {
				seen[s.Arg] = true
				groups[s.Arg] = append(groups[s.Arg], i)
			}
		}
	}
	return groups
}

// DPUStats is the outcome of simulating one DPU's run.
type DPUStats struct {
	Cycles        int64 // total execution time in DPU cycles
	Instr         int64 // instructions issued
	DMABytes      int64 // bytes moved MRAM<->WRAM
	DMATransfers  int64 // DMA engine transfers (after max-size splitting)
	DMACycles     int64 // cycles the DMA engine was busy
	IssueCycles   int64 // cycles an instruction was issued (pipeline busy)
	BarrierCycles int64 // tasklet-cycles spent blocked on pool barriers
}

// Utilization is the pipeline issue rate, the metric the paper reports as
// 95–99 % for the 6×4 pool geometry.
func (s DPUStats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssueCycles) / float64(s.Cycles)
}

// Add accumulates another run's stats (batches on the same DPU).
func (s *DPUStats) Add(o DPUStats) {
	s.Cycles += o.Cycles
	s.Instr += o.Instr
	s.DMABytes += o.DMABytes
	s.DMATransfers += o.DMATransfers
	s.DMACycles += o.DMACycles
	s.IssueCycles += o.IssueCycles
	s.BarrierCycles += o.BarrierCycles
}

// publish feeds one simulated run's stats into the default metrics
// registry; a no-op (nil registry) when metrics are disabled. Both
// simulators call it on success, so pim_sim_* counters aggregate every
// DPU execution of the process regardless of which model priced it.
func (s DPUStats) publish() {
	reg := obs.Default()
	if reg == nil {
		return
	}
	reg.Counter("pim_sim_runs_total").Add(1)
	reg.Counter("pim_sim_cycles_total").Add(s.Cycles)
	reg.Counter("pim_sim_instructions_total").Add(s.Instr)
	reg.Counter("pim_sim_dma_bytes_total").Add(s.DMABytes)
	reg.Counter("pim_sim_dma_transfers_total").Add(s.DMATransfers)
	reg.Counter("pim_sim_dma_cycles_total").Add(s.DMACycles)
	reg.Counter("pim_sim_issue_cycles_total").Add(s.IssueCycles)
	reg.Counter("pim_sim_barrier_wait_cycles_total").Add(s.BarrierCycles)
}

// LowerBound is the information-theoretic floor for a run's cycle count:
// the pipeline can issue at most one instruction per cycle (and at most
// T/11 per cycle with T tasklets), the DMA engine moves at most 2 B/cycle,
// and every individual tasklet needs 11 cycles per instruction.
func (r *DPURun) LowerBound() int64 {
	instr, bytes, transfers := r.Totals()
	t := int64(len(r.Traces))
	pipe := instr
	if t < PipelineReentry {
		pipe = instr * PipelineReentry / t
	}
	dma := transfers*DMASetupCycles + bytes/DMABytesPerCycle
	var perTasklet int64
	for _, tr := range r.Traces {
		var own int64
		for _, s := range tr.Segs {
			if s.Kind == SegExec {
				own += s.Arg * PipelineReentry
			}
		}
		if own > perTasklet {
			perTasklet = own
		}
	}
	lb := pipe
	if dma > lb {
		lb = dma
	}
	if perTasklet > lb {
		lb = perTasklet
	}
	return lb
}
