// Package pim models the UPMEM Processing-in-Memory system of the paper's
// §2: DIMMs of two ranks, ranks of 64 DPUs, each DPU owning a 64 MB MRAM
// bank and a 64 KB WRAM scratchpad and executing up to 24 hardware tasklets
// through a 14-stage round-robin pipeline with an 11-cycle re-entry
// restriction. There is no UPMEM hardware in this environment, so the
// package provides the device as a *model*: hard capacity enforcement for
// the memories, an instruction/DMA cost accounting interface for kernels,
// and two cross-validated performance simulators (an exact cycle-stepped
// round-robin simulator and a fast fluid-rate event simulator) that turn a
// kernel's tasklet traces into DPU cycle counts.
package pim

import "fmt"

// Architectural constants of the UPMEM device generation evaluated in the
// paper (DPU-S "v1.4", 350 MHz parts).
const (
	DPUsPerRank     = 64
	RanksPerDIMM    = 2
	DefaultFreqMHz  = 350
	DefaultMRAM     = 64 << 20 // 64 MB bank per DPU
	DefaultWRAM     = 64 << 10 // 64 KB scratchpad per DPU
	MaxTasklets     = 24
	PipelineReentry = 11 // a tasklet may issue at most one instruction per 11 cycles
	PipelineDepth   = 14
	// DMA engine: MRAM<->WRAM transfers at 2 bytes/cycle after a fixed
	// setup latency; transfer sizes are architecturally 8..2048 bytes.
	DMABytesPerCycle = 2
	DMASetupCycles   = 64
	DMAMinBytes      = 8
	DMAMaxBytes      = 2048
)

// Config describes one PiM system instance.
type Config struct {
	Ranks   int // total ranks in the system (paper server: 20 DIMMs = 40 ranks)
	FreqMHz int // DPU clock
	MRAM    int // bytes of MRAM per DPU
	WRAM    int // bytes of WRAM per DPU
	// StackBytes is the per-tasklet stack carved out of WRAM at boot; it
	// is what limits pure alignment-level parallelism (§4.2.3).
	StackBytes int
	// HostBandwidthGBs is the host<->PiM transfer bandwidth over the DDR
	// bus (the paper measures ~60 GB/s aggregated).
	HostBandwidthGBs float64
	// RankLaunchOverheadUS models the per-launch host cost of booting a
	// rank and collecting its completion status, in microseconds.
	RankLaunchOverheadUS float64
}

// DefaultConfig is the paper's evaluation server: 20 PiM DIMMs (40 ranks,
// 2560 DPUs) at 350 MHz.
func DefaultConfig() Config {
	return Config{
		Ranks:                40,
		FreqMHz:              DefaultFreqMHz,
		MRAM:                 DefaultMRAM,
		WRAM:                 DefaultWRAM,
		StackBytes:           1280,
		HostBandwidthGBs:     60,
		RankLaunchOverheadUS: 150,
	}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Ranks <= 0 {
		return fmt.Errorf("pim: Ranks must be positive, got %d", c.Ranks)
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("pim: FreqMHz must be positive, got %d", c.FreqMHz)
	}
	if c.MRAM <= 0 || c.WRAM <= 0 {
		return fmt.Errorf("pim: memory sizes must be positive")
	}
	if c.StackBytes <= 0 || c.StackBytes*MaxTasklets > c.WRAM {
		return fmt.Errorf("pim: %d tasklet stacks of %d bytes exceed WRAM %d",
			MaxTasklets, c.StackBytes, c.WRAM)
	}
	if c.HostBandwidthGBs <= 0 {
		return fmt.Errorf("pim: HostBandwidthGBs must be positive")
	}
	return nil
}

// DPUs returns the total DPU count.
func (c Config) DPUs() int { return c.Ranks * DPUsPerRank }

// CyclesToSeconds converts DPU cycles to wall-clock seconds.
func (c Config) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (float64(c.FreqMHz) * 1e6)
}

// HostTransferSeconds returns the time to move n bytes between host memory
// and PiM MRAMs over the DDR bus.
func (c Config) HostTransferSeconds(n int64) float64 {
	return float64(n) / (c.HostBandwidthGBs * 1e9)
}

// DMACycles returns the DPU cycles a single MRAM<->WRAM DMA transfer of n
// bytes occupies the engine: fixed setup plus 2 bytes per cycle. Transfers
// larger than the architectural maximum are split.
func DMACycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	transfers := (n + DMAMaxBytes - 1) / DMAMaxBytes
	return transfers*DMASetupCycles + (n+DMABytesPerCycle-1)/DMABytesPerCycle
}

// CostTable itemises the instruction budget of the DPU alignment kernel's
// phases. Two instances model the paper's two kernels: the portable C one
// and the hand-optimised assembly one (26 lines of asm: cmpb4 4-byte SIMD
// compare, shift-fused-jump on parity, fused arithmetic-branch
// instructions; §4.2.4 and §5.5). On the DPU every instruction costs one
// issue slot and there is no speculation, so cycle counts are instruction
// counts — which is why the 38 % inner-loop reduction translates directly
// into the Table 7 speedups.
type CostTable struct {
	Name string
	// CellScore: instructions per DP cell on the score-only path
	// (anti-diagonal update of H, I, D, including 2-bit base extraction).
	CellScore int64
	// CellTB: instructions per DP cell when the 4-bit traceback nibble is
	// also assembled and buffered.
	CellTB int64
	// StepTasklet: per anti-diagonal per tasklet loop/index/sync overhead.
	StepTasklet int64
	// StepMaster: per anti-diagonal master-only work (shift decision,
	// window bookkeeping, BT row flush bookkeeping).
	StepMaster int64
	// TracebackCol: instructions per emitted alignment column during the
	// sequential traceback walk.
	TracebackCol int64
	// AlignSetup: per-alignment fixed cost (buffer init, result emission).
	AlignSetup int64
}

// Kernel cost tables. The absolute values are calibrated in EXPERIMENTS.md
// §"Cost model calibration" from the paper's own Tables 5 and 7 (score-only
// ratio 864/632 = 1.37, traceback-heavy ratio up to 1.69); what the
// experiments exercise is their *ratios* and the split between score and
// traceback paths.
var (
	// PureC is the kernel as produced by the LLVM-based DPU compiler.
	PureC = CostTable{
		Name:         "pure-C",
		CellScore:    44,
		CellTB:       70,
		StepTasklet:  24,
		StepMaster:   40,
		TracebackCol: 96,
		AlignSetup:   3000,
	}
	// Asm is the kernel with the hand-written assembly inner loops.
	Asm = CostTable{
		Name:         "asm",
		CellScore:    32,
		CellTB:       44,
		StepTasklet:  18,
		StepMaster:   32,
		TracebackCol: 56,
		AlignSetup:   3000,
	}
)
