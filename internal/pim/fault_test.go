package pim

import (
	"math"
	"testing"
)

func TestFaultModelDisabled(t *testing.T) {
	m, err := NewFaultModel(FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("zero config should yield a nil (disabled) model")
	}
	if f := m.Draw(0, 0, 0); f.Kind != FaultNone {
		t.Errorf("nil model drew %v", f)
	}
	if m.DrawRankDrop(0, 0) {
		t.Error("nil model dropped a rank")
	}
	if m.Jitter(0, 0) != 0 {
		t.Error("nil model jitter not zero")
	}
}

func TestFaultModelDeterministic(t *testing.T) {
	cfg := FaultConfig{Rate: 0.2, RankDropRate: 0.05, Seed: 42}
	m1, err := NewFaultModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewFaultModel(cfg)
	for batch := 0; batch < 10; batch++ {
		for attempt := 0; attempt < 3; attempt++ {
			for dpu := 0; dpu < 64; dpu++ {
				if a, b := m1.Draw(batch, attempt, dpu), m2.Draw(batch, attempt, dpu); a != b {
					t.Fatalf("draw (%d,%d,%d): %v vs %v", batch, attempt, dpu, a, b)
				}
			}
			if a, b := m1.DrawRankDrop(batch, attempt), m2.DrawRankDrop(batch, attempt); a != b {
				t.Fatalf("rank drop (%d,%d): %v vs %v", batch, attempt, a, b)
			}
			if a, b := m1.Jitter(batch, attempt), m2.Jitter(batch, attempt); a != b {
				t.Fatalf("jitter (%d,%d): %v vs %v", batch, attempt, a, b)
			}
		}
	}
	// A different seed must not reproduce the same fault pattern.
	m3, _ := NewFaultModel(FaultConfig{Rate: 0.2, Seed: 43})
	same := true
	for dpu := 0; dpu < 256; dpu++ {
		if m1.Draw(0, 0, dpu) != m3.Draw(0, 0, dpu) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical fault patterns")
	}
}

func TestFaultModelRate(t *testing.T) {
	m, err := NewFaultModel(FaultConfig{Rate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	kinds := map[FaultKind]int{}
	for i := 0; i < n; i++ {
		f := m.Draw(i, 0, i%64)
		kinds[f.Kind]++
	}
	faults := n - kinds[FaultNone]
	got := float64(faults) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("empirical fault rate %.4f, want ~0.10", got)
	}
	// Every kind of the default mix must appear.
	for _, k := range []FaultKind{FaultStall, FaultSlow, FaultCrash, FaultCorrupt} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never drawn in %d draws", k, n)
		}
	}
	// Factors are attached to the slowdown kinds only.
	for i := 0; i < 10_000; i++ {
		f := m.Draw(i, 1, i%64)
		switch f.Kind {
		case FaultStall:
			if f.Factor != defaultStallFactor {
				t.Fatalf("stall factor %g", f.Factor)
			}
		case FaultSlow:
			if f.Factor != defaultSlowFactor {
				t.Fatalf("slow factor %g", f.Factor)
			}
		case FaultCrash, FaultCorrupt, FaultNone:
			if f.Factor != 0 {
				t.Fatalf("kind %v has factor %g", f.Kind, f.Factor)
			}
		}
	}
}

func TestFaultModelRankDropRate(t *testing.T) {
	m, err := NewFaultModel(FaultConfig{RankDropRate: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	drops := 0
	for i := 0; i < n; i++ {
		if m.DrawRankDrop(i, 0) {
			drops++
		}
	}
	if got := float64(drops) / n; math.Abs(got-0.2) > 0.02 {
		t.Errorf("empirical rank drop rate %.4f, want ~0.20", got)
	}
	// DPU-level draws stay off when only RankDropRate is set.
	if f := m.Draw(0, 0, 0); f.Kind != FaultNone {
		t.Errorf("DPU draw %v with Rate=0", f)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{Rate: -0.1},
		{Rate: 1.5},
		{RankDropRate: -1},
		{Rate: 0.1, SlowWeight: -1},
		{Rate: 0.1, SlowFactor: 0.5},
		{Rate: 0.1, StallFactor: 0.2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
		if _, err := NewFaultModel(c); err == nil {
			t.Errorf("model %d built from invalid config", i)
		}
	}
	if err := (FaultConfig{Rate: 0.05, Seed: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultNone: "none", FaultStall: "stall", FaultSlow: "slow",
		FaultCrash: "crash", FaultCorrupt: "corrupt", FaultRankDrop: "rank_drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFaultError(t *testing.T) {
	err := &FaultError{DPU: 7, Kind: FaultCrash}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}
