package pim

import (
	"math"
	"math/rand"
	"testing"

	"pimnw/internal/obs"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.DPUs() != 2560 {
		t.Errorf("DPUs = %d, want 2560 (the paper's 20-DIMM server)", c.DPUs())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.FreqMHz = -1 },
		func(c *Config) { c.MRAM = 0 },
		func(c *Config) { c.WRAM = 0 },
		func(c *Config) { c.StackBytes = 0 },
		func(c *Config) { c.StackBytes = c.WRAM }, // 24 stacks can't fit
		func(c *Config) { c.HostBandwidthGBs = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCyclesToSeconds(t *testing.T) {
	c := DefaultConfig()
	if got := c.CyclesToSeconds(350e6); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("350M cycles at 350MHz = %v s, want 1", got)
	}
}

func TestHostTransferSeconds(t *testing.T) {
	c := DefaultConfig()
	if got := c.HostTransferSeconds(60e9); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("60GB at 60GB/s = %v s, want 1", got)
	}
}

func TestDMACycles(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 0},
		{2, 64 + 1},
		{2048, 64 + 1024},
		{4096, 2*64 + 2048}, // split into two max-size transfers
	}
	for _, tc := range cases {
		if got := DMACycles(tc.bytes); got != tc.want {
			t.Errorf("DMACycles(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestMRAMAllocAndOverflow(t *testing.T) {
	m := NewMRAM(1024)
	off, err := m.Alloc(100)
	if err != nil || off != 0 {
		t.Fatalf("first alloc: off=%d err=%v", off, err)
	}
	off2, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != 104 { // 8-byte aligned bump
		t.Errorf("second alloc at %d, want 104", off2)
	}
	if _, err := m.Alloc(2000); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := m.Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
	buf := m.Bytes(off2, 100)
	buf[0] = 42
	if m.Bytes(104, 1)[0] != 42 {
		t.Error("MRAM bytes not shared")
	}
	m.Reset()
	if m.Used() != 0 {
		t.Error("reset did not free")
	}
	if m.Capacity() != 1024 {
		t.Error("capacity changed")
	}
}

func TestMRAMOutOfRangePanics(t *testing.T) {
	m := NewMRAM(1024)
	m.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Bytes(8, 16)
}

func TestWRAMBudget(t *testing.T) {
	w, err := NewWRAM(DefaultWRAM, 24*1536)
	if err != nil {
		t.Fatal(err)
	}
	if w.Used() != 24*1536 {
		t.Errorf("stacks not charged: used=%d", w.Used())
	}
	if _, err := w.Alloc(w.Free() + 1); err == nil {
		t.Error("overflow accepted")
	}
	buf, err := w.Alloc(100)
	if err != nil || len(buf) != 100 {
		t.Fatalf("alloc: %v", err)
	}
	arr, err := w.AllocInt32(128)
	if err != nil || len(arr) != 128 {
		t.Fatalf("AllocInt32: %v", err)
	}
	if _, err := NewWRAM(1024, 2048); err == nil {
		t.Error("stacks larger than WRAM accepted")
	}
}

func TestDPURank(t *testing.T) {
	c := DefaultConfig()
	d := c.NewDPU(130)
	if d.Rank() != 2 {
		t.Errorf("DPU 130 rank = %d, want 2", d.Rank())
	}
	if d.MRAM.Capacity() != c.MRAM {
		t.Error("MRAM capacity mismatch")
	}
}

func TestNewDPURunBounds(t *testing.T) {
	if _, err := NewDPURun(0); err == nil {
		t.Error("0 tasklets accepted")
	}
	if _, err := NewDPURun(MaxTasklets + 1); err == nil {
		t.Error("25 tasklets accepted")
	}
	r, err := NewDPURun(16)
	if err != nil || len(r.Traces) != 16 {
		t.Fatalf("16 tasklets: %v", err)
	}
}

func TestTraceBuilderMergesExec(t *testing.T) {
	var tr TaskletTrace
	tr.Exec(10)
	tr.Exec(5)
	tr.Exec(0) // ignored
	tr.DMARead(100)
	tr.Exec(3)
	if len(tr.Segs) != 3 {
		t.Fatalf("segments = %v", tr.Segs)
	}
	if tr.Segs[0] != (Segment{SegExec, 15}) {
		t.Errorf("merged exec = %v", tr.Segs[0])
	}
}

func TestTotals(t *testing.T) {
	r, _ := NewDPURun(2)
	r.Traces[0].Exec(100)
	r.Traces[0].DMAWrite(3000)
	r.Traces[1].Exec(50)
	r.Traces[1].DMARead(100)
	instr, bytes, transfers := r.Totals()
	if instr != 150 || bytes != 3100 || transfers != 3 {
		t.Errorf("totals = %d instr, %d bytes, %d transfers", instr, bytes, transfers)
	}
}

// --- Closed-form checks of the exact simulator ---

func TestExactSingleTasklet(t *testing.T) {
	r, _ := NewDPURun(1)
	r.Traces[0].Exec(100)
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	// One tasklet issues every 11 cycles: the 100th instruction issues at
	// cycle 99*11, execution ends one cycle later.
	want := int64(99*PipelineReentry + 1)
	if st.Cycles != want {
		t.Errorf("cycles = %d, want %d", st.Cycles, want)
	}
	if st.Instr != 100 {
		t.Errorf("instr = %d", st.Instr)
	}
	if u := st.Utilization(); math.Abs(u-1.0/11) > 0.01 {
		t.Errorf("utilization = %v, want ~1/11", u)
	}
}

func TestExactElevenTaskletsFillPipeline(t *testing.T) {
	r, _ := NewDPURun(11)
	for _, tr := range r.Traces {
		tr.Exec(100)
	}
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	// 1100 instructions at IPC 1.
	if st.Cycles < 1100 || st.Cycles > 1115 {
		t.Errorf("cycles = %d, want ~1100", st.Cycles)
	}
	if u := st.Utilization(); u < 0.98 {
		t.Errorf("utilization = %v, want ~1", u)
	}
}

func TestExactSixteenTasklets(t *testing.T) {
	r, _ := NewDPURun(16)
	for _, tr := range r.Traces {
		tr.Exec(200)
	}
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 3200 || st.Cycles > 3230 {
		t.Errorf("cycles = %d, want ~3200 (IPC 1)", st.Cycles)
	}
}

func TestExactDMAOnly(t *testing.T) {
	r, _ := NewDPURun(1)
	r.Traces[0].DMARead(2048)
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	want := DMACycles(2048)
	if st.Cycles < want || st.Cycles > want+2 {
		t.Errorf("cycles = %d, want ~%d", st.Cycles, want)
	}
	if st.DMABytes != 2048 || st.DMATransfers != 1 {
		t.Errorf("dma stats: %+v", st)
	}
}

func TestExactDMASerialisation(t *testing.T) {
	// Two tasklets, DMA only: the single engine serialises them.
	r, _ := NewDPURun(2)
	r.Traces[0].DMARead(2048)
	r.Traces[1].DMARead(2048)
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * DMACycles(2048)
	if st.Cycles < want || st.Cycles > want+4 {
		t.Errorf("cycles = %d, want ~%d", st.Cycles, want)
	}
}

func TestExactBarrierSynchronises(t *testing.T) {
	// Tasklet 0 does 10x work before the barrier; tasklet 1 must wait.
	r, _ := NewDPURun(2)
	r.Traces[0].Exec(1000)
	r.Traces[0].Barrier(1)
	r.Traces[1].Exec(100)
	r.Traces[1].Barrier(1)
	r.Traces[1].Exec(100)
	st, err := ExactSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	// Tasklet 0 finishes its 1000 instructions at ~ 1000*11/... with 2
	// runnable tasklets each issues every 11 cycles (pipeline far from
	// full): t0 needs 1000 slots * 11 = ~11000 cycles; then t1 runs its
	// tail alone: +100*11.
	min := int64(11000)
	max := int64(11000 + 1100 + 50)
	if st.Cycles < min || st.Cycles > max {
		t.Errorf("cycles = %d, want in [%d,%d]", st.Cycles, min, max)
	}
}

func TestExactBarrierDeadlock(t *testing.T) {
	r, _ := NewDPURun(2)
	r.Traces[0].Barrier(1)
	r.Traces[0].Barrier(1) // second rendezvous never matched by tasklet 1
	r.Traces[1].Barrier(1)
	if _, err := ExactSimulate(r); err == nil {
		t.Error("unbalanced barrier protocol accepted")
	}
}

// --- Fluid vs exact cross-validation ---

func TestFluidMatchesExactClosedForms(t *testing.T) {
	build := func(n int, instr int64) *DPURun {
		r, _ := NewDPURun(n)
		for _, tr := range r.Traces {
			tr.Exec(instr)
		}
		return r
	}
	for _, n := range []int{1, 2, 8, 11, 16, 24} {
		r := build(n, 500)
		ex, err := ExactSimulate(r)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := FluidSimulate(r)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(ex.Cycles-fl.Cycles)) / float64(ex.Cycles)
		if rel > 0.02 {
			t.Errorf("n=%d: exact %d vs fluid %d (%.1f%% apart)", n, ex.Cycles, fl.Cycles, rel*100)
		}
	}
}

func TestFluidMatchesExactRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(14)
		r, _ := NewDPURun(n)
		for _, tr := range r.Traces {
			steps := 3 + rng.Intn(6)
			for s := 0; s < steps; s++ {
				switch rng.Intn(3) {
				case 0, 1:
					tr.Exec(int64(50 + rng.Intn(500)))
				case 2:
					tr.DMARead(int64(8 + rng.Intn(1024)))
				}
			}
			tr.Barrier(7) // one final rendezvous keeps groups balanced
		}
		ex, err := ExactSimulate(r)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := FluidSimulate(r)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(ex.Cycles-fl.Cycles)) / float64(ex.Cycles)
		if rel > 0.10 {
			t.Errorf("trial %d (n=%d): exact %d vs fluid %d (%.1f%%)", trial, n, ex.Cycles, fl.Cycles, rel*100)
		}
		if fl.Cycles < r.LowerBound() {
			t.Errorf("trial %d: fluid %d below lower bound %d", trial, fl.Cycles, r.LowerBound())
		}
	}
}

func TestFluidUtilizationRegimes(t *testing.T) {
	// 4 tasklets cannot fill the pipeline: utilization ~ 4/11.
	r, _ := NewDPURun(4)
	for _, tr := range r.Traces {
		tr.Exec(1000)
	}
	st, err := FluidSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if u := st.Utilization(); math.Abs(u-4.0/11) > 0.02 {
		t.Errorf("4-tasklet utilization = %v, want ~%v", u, 4.0/11)
	}
	// 16 compute-bound tasklets saturate it.
	r16, _ := NewDPURun(16)
	for _, tr := range r16.Traces {
		tr.Exec(1000)
	}
	st16, err := FluidSimulate(r16)
	if err != nil {
		t.Fatal(err)
	}
	if u := st16.Utilization(); u < 0.97 {
		t.Errorf("16-tasklet utilization = %v, want ~1", u)
	}
}

func TestFluidDeadlockDetected(t *testing.T) {
	r, _ := NewDPURun(2)
	r.Traces[0].Barrier(1)
	r.Traces[0].Barrier(1)
	r.Traces[1].Barrier(1)
	if _, err := FluidSimulate(r); err == nil {
		t.Error("unbalanced barrier accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := DPUStats{Cycles: 10, Instr: 5, DMABytes: 100, DMATransfers: 1, DMACycles: 3, IssueCycles: 5, BarrierCycles: 2}
	a.Add(DPUStats{Cycles: 20, Instr: 10, DMABytes: 200, DMATransfers: 2, DMACycles: 6, IssueCycles: 10, BarrierCycles: 4})
	if a.Cycles != 30 || a.Instr != 15 || a.DMABytes != 300 || a.DMATransfers != 3 || a.BarrierCycles != 6 {
		t.Errorf("Add: %+v", a)
	}
}

func TestBarrierWaitCyclesRecorded(t *testing.T) {
	// Tasklet 1 reaches the rendezvous ~10x earlier than tasklet 0 and
	// must accumulate the wait in BarrierCycles, in both simulators. It
	// waits roughly the issue-time difference: ~900 slots * 11 cycles.
	build := func() *DPURun {
		r, _ := NewDPURun(2)
		r.Traces[0].Exec(1000)
		r.Traces[0].Barrier(1)
		r.Traces[1].Exec(100)
		r.Traces[1].Barrier(1)
		return r
	}
	exact, err := ExactSimulate(build())
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidSimulate(build())
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]DPUStats{"exact": exact, "fluid": fluid} {
		if st.BarrierCycles < 8000 || st.BarrierCycles > 11000 {
			t.Errorf("%s BarrierCycles = %d, want ~9900", name, st.BarrierCycles)
		}
	}
	// The two models must agree on the wait to within a few percent.
	diff := math.Abs(float64(exact.BarrierCycles - fluid.BarrierCycles))
	if diff/float64(exact.BarrierCycles) > 0.05 {
		t.Errorf("barrier wait disagreement: exact %d vs fluid %d",
			exact.BarrierCycles, fluid.BarrierCycles)
	}
}

func TestSimulatorsPublishMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	r, _ := NewDPURun(1)
	r.Traces[0].Exec(10)
	st, err := FluidSimulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pim_sim_runs_total").Value(); got != 1 {
		t.Errorf("pim_sim_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("pim_sim_cycles_total").Value(); got != st.Cycles {
		t.Errorf("pim_sim_cycles_total = %d, want %d", got, st.Cycles)
	}
	if got := reg.Counter("pim_sim_instructions_total").Value(); got != st.Instr {
		t.Errorf("pim_sim_instructions_total = %d, want %d", got, st.Instr)
	}
}

func TestCostTablesOrdering(t *testing.T) {
	// The asm kernel must be cheaper on every itemised phase, and the
	// score-path ratio must sit near the paper's 16S speedup (1.36) while
	// the traceback-path ratio sits near the CIGAR-dataset speedups (~1.6).
	if Asm.CellScore >= PureC.CellScore || Asm.CellTB >= PureC.CellTB ||
		Asm.TracebackCol >= PureC.TracebackCol {
		t.Error("asm table not uniformly cheaper than pure C")
	}
	scoreRatio := float64(PureC.CellScore) / float64(Asm.CellScore)
	if scoreRatio < 1.25 || scoreRatio > 1.5 {
		t.Errorf("score-path ratio %.2f outside the Table 7 16S window", scoreRatio)
	}
	tbRatio := float64(PureC.CellTB) / float64(Asm.CellTB)
	if tbRatio < 1.4 || tbRatio > 1.8 {
		t.Errorf("traceback-path ratio %.2f outside the Table 7 window", tbRatio)
	}
}
