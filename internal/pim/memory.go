package pim

import "fmt"

// align8 rounds n up to the DPU's 8-byte DMA alignment.
func align8(n int) int { return (n + 7) &^ 7 }

// MRAM models one DPU's 64 MB DRAM bank: a bump allocator over real bytes
// with hard capacity enforcement. The backing array grows on demand so a
// 2560-DPU system does not reserve 160 GB of host memory up front.
type MRAM struct {
	capacity int
	used     int
	buf      []byte
}

// NewMRAM creates a bank of the given capacity.
func NewMRAM(capacity int) *MRAM { return &MRAM{capacity: capacity} }

// Alloc reserves n bytes (8-byte aligned) and returns their offset.
func (m *MRAM) Alloc(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("pim: negative MRAM allocation %d", n)
	}
	off := m.used
	need := off + align8(n)
	if need > m.capacity {
		return 0, fmt.Errorf("pim: MRAM overflow: %d used + %d requested > %d bank size",
			m.used, n, m.capacity)
	}
	m.used = need
	if need > len(m.buf) {
		grown := make([]byte, need+need/2)
		copy(grown, m.buf)
		m.buf = grown
	}
	return off, nil
}

// Bytes returns the live window [off, off+n) of the bank.
func (m *MRAM) Bytes(off, n int) []byte {
	if off < 0 || n < 0 || off+n > m.used {
		panic(fmt.Sprintf("pim: MRAM access [%d,%d) outside allocated %d bytes", off, off+n, m.used))
	}
	return m.buf[off : off+n]
}

// Used reports the allocated byte count.
func (m *MRAM) Used() int { return m.used }

// Capacity reports the bank size.
func (m *MRAM) Capacity() int { return m.capacity }

// Reset frees every allocation (the host reuses banks between batches).
// The backing array is kept to avoid re-growing.
func (m *MRAM) Reset() { m.used = 0 }

// Mark returns the current allocation watermark.
func (m *MRAM) Mark() int { return m.used }

// Release rolls the allocator back to a previous Mark, freeing everything
// allocated since (the kernel releases each alignment's BT scratch this
// way once the traceback is done).
func (m *MRAM) Release(mark int) {
	if mark < 0 || mark > m.used {
		panic(fmt.Sprintf("pim: Release(%d) outside [0,%d]", mark, m.used))
	}
	m.used = mark
}

// WRAM models the 64 KB scratchpad. Allocations come from a bump pointer
// after the per-tasklet stacks; exceeding the scratchpad is an error the
// kernel must handle at configuration time — this is the constraint that
// forces the banded formulation and the pool geometry of §4.2.3.
type WRAM struct {
	capacity int
	used     int
	buf      []byte
}

// NewWRAM creates a scratchpad, reserving stacks bytes for tasklet stacks.
func NewWRAM(capacity, stacks int) (*WRAM, error) {
	if stacks > capacity {
		return nil, fmt.Errorf("pim: tasklet stacks (%d B) exceed WRAM (%d B)", stacks, capacity)
	}
	return &WRAM{capacity: capacity, used: stacks, buf: make([]byte, capacity)}, nil
}

// Alloc reserves n bytes (8-byte aligned) and returns the live slice.
func (w *WRAM) Alloc(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("pim: negative WRAM allocation %d", n)
	}
	off := w.used
	need := off + align8(n)
	if need > w.capacity {
		return nil, fmt.Errorf("pim: WRAM overflow: %d used + %d requested > %d scratchpad",
			w.used, n, w.capacity)
	}
	w.used = need
	return w.buf[off : off+n : off+n], nil
}

// AllocInt32 reserves a w-element int32 array (the anti-diagonal score
// arrays of §4.2.1 live in WRAM as int32).
func (w *WRAM) AllocInt32(n int) ([]int32, error) {
	if _, err := w.Alloc(4 * n); err != nil {
		return nil, err
	}
	return make([]int32, n), nil
}

// Used reports the allocated byte count, stacks included.
func (w *WRAM) Used() int { return w.used }

// Free reports the remaining bytes.
func (w *WRAM) Free() int { return w.capacity - w.used }

// DPU bundles the per-DPU state the kernel and host interact with.
type DPU struct {
	ID   int // global DPU index: rank*64 + member
	MRAM *MRAM
	// Fault is the fault injected into this DPU's next kernel launch
	// (FaultNone on a healthy fabric). The host stamps it from a
	// FaultModel before launching; the kernel applies it.
	Fault Fault
}

// NewDPU builds a DPU with an MRAM bank per the configuration.
func (c Config) NewDPU(id int) *DPU {
	return &DPU{ID: id, MRAM: NewMRAM(c.MRAM)}
}

// Rank returns the rank this DPU belongs to.
func (d *DPU) Rank() int { return d.ID / DPUsPerRank }
