package xp

import (
	"context"
	"fmt"

	"pimnw/internal/core"
	"pimnw/internal/datasets"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
)

// alignBatch drives one batch experiment through the streaming session
// (host.AlignPairsStream) rather than calling host.AlignPairs directly:
// the harness exercises the serving path, and because the whole workload
// fits one micro-batch the report is bit-identical to the one-shot run —
// the equivalence xp_stream_test.go pins. With Options.CacheDir set the
// session carries the runner's shared result cache, so re-runs of a suite
// replay certified answers instead of recomputing them.
func (r *Runner) alignBatch(cfg host.Config, pairs []host.Pair) (*host.Report, []host.Result, error) {
	c, err := r.resultCache()
	if err != nil {
		return nil, nil, err
	}
	if err := r.Opts.applyFleet(&cfg); err != nil {
		return nil, nil, err
	}
	return host.AlignPairsStream(context.Background(), host.SessionConfig{
		Host:          cfg,
		MaxBatchPairs: len(pairs),
		Cache:         c,
	}, pairs)
}

// balanceTable quantifies the §4.1.2 claim: because a rank's results can
// only be collected once every one of its 64 DPUs has finished, the
// intra-rank balance policy directly moves the makespan on heterogeneous
// workloads. The experiment runs a PacBio-like batch (16x workload spread)
// through the full simulated stack under three policies.
func (r *Runner) balanceTable() (Table, error) {
	t := Table{
		ID:     "balance",
		Title:  "Extension (§4.1.2): intra-rank load-balancing policies on a heterogeneous batch",
		Header: []string{"Policy", "Makespan", "vs LPT", "Fastest/slowest DPU gap"},
	}
	spec := datasets.PacBio
	spec.Sets = 3
	spec.ReadsMin, spec.ReadsMax = 8, 16
	spec.Seed += r.Opts.Seed
	if r.Opts.Quick {
		spec.RegionMin, spec.RegionMax = 300, 2400
	} else {
		spec.RegionMin, spec.RegionMax = 1000, 8000
	}
	var pairs []host.Pair
	for _, p := range datasets.AllSetPairs(spec.Generate()) {
		pairs = append(pairs, host.Pair{ID: p.ID, A: p.A, B: p.B})
	}

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	policies := []struct {
		name string
		pol  host.BalancePolicy
	}{
		{"LPT (paper)", host.BalanceLPT},
		{"round robin", host.BalanceRoundRobin},
		{"random", host.BalanceRandom},
	}
	var lptMakespan float64
	for _, pc := range policies {
		cfg := host.Config{
			PIM: pimCfg,
			Kernel: kernel.Config{
				Geometry: kernel.DefaultGeometry(),
				Band:     dpuBand,
				Params:   core.DefaultParams(),
				Costs:    pim.Asm,
				PIM:      pimCfg,
			},
			Balance: pc.pol,
			Workers: r.Opts.Workers,
		}
		r.Opts.applyFaults(&cfg)
		r.Opts.applyIntegrity(&cfg)
		rep, _, err := r.alignBatch(cfg, pairs)
		if err != nil {
			return t, err
		}
		if pc.pol == host.BalanceLPT {
			lptMakespan = rep.MakespanSec
		}
		gap := 0.0
		for _, rs := range rep.Ranks {
			if rs.KernelSec > 0 {
				if g := (rs.KernelSec - rs.FastestDPUSec) / rs.KernelSec; g > gap {
					gap = g
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			pc.name,
			fmt.Sprintf("%.1f ms", rep.MakespanSec*1e3),
			fmtX(rep.MakespanSec / lptMakespan),
			fmtPct(gap),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d alignments with ~8x workload spread on one rank; the rank barrier makes the slowest DPU the makespan", len(pairs)))
	return t, nil
}
