package xp

import (
	"fmt"

	"pimnw/internal/cache"
	"pimnw/internal/datasets"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// Runner executes experiments, memoising dataset samples and kernel
// calibrations across tables (Table 7 reuses Tables 2-6's datasets under a
// second cost table; Table 8 reuses Tables 5-6's projections). With
// Options.CacheDir set it also lazily opens the persistent result cache
// for the experiments that run over the serving path; Close flushes it.
type Runner struct {
	Opts    Options
	samples map[string][]datasets.Pair
	cals    map[string]calibration
	cache   *cache.Cache
}

// NewRunner creates a runner.
func NewRunner(opts Options) *Runner {
	return &Runner{
		Opts:    opts,
		samples: map[string][]datasets.Pair{},
		cals:    map[string]calibration{},
	}
}

// resultCache lazily opens the persistent result cache named by
// Options.CacheDir ("" = no cache, returns nil).
func (r *Runner) resultCache() (*cache.Cache, error) {
	if r.Opts.CacheDir == "" || r.cache != nil {
		return r.cache, nil
	}
	c, err := cache.Open(cache.Options{Dir: r.Opts.CacheDir})
	if err != nil {
		return nil, fmt.Errorf("xp: opening result cache: %w", err)
	}
	r.cache = c
	return c, nil
}

// Close flushes and releases the result cache, if one was opened.
func (r *Runner) Close() error {
	if r.cache == nil {
		return nil
	}
	c := r.cache
	r.cache = nil
	return c.Close()
}

// sampleFor returns (and caches) the dataset's calibration sample.
func (r *Runner) sampleFor(d *dsDef) []datasets.Pair {
	if s, ok := r.samples[d.key]; ok {
		return s
	}
	s := d.sample(r.Opts)
	r.samples[d.key] = s
	return s
}

// calibrationFor returns (and caches) the kernel calibration for a dataset
// under a cost table.
func (r *Runner) calibrationFor(d *dsDef, costs pim.CostTable) (calibration, error) {
	key := d.key + "/" + costs.Name
	if c, ok := r.cals[key]; ok {
		return c, nil
	}
	kcfg := kernelConfig(costs, d.traceback, r.Opts.LaneWidth)
	cal, err := calibrate(kcfg, r.sampleFor(d))
	if err != nil {
		return cal, fmt.Errorf("xp: calibrating %s/%s: %w", d.key, costs.Name, err)
	}
	r.cals[key] = cal
	return cal, nil
}

// TableIDs lists every experiment the runner knows, in paper order, with
// the extension studies last.
func TableIDs() []string {
	return []string{"1", "2", "3", "4", "5", "6", "7", "8", "utilization", "ablation", "hybrid", "wfa", "balance"}
}

// Table runs one experiment by ID ("1".."8", "utilization", "ablation").
func (r *Runner) Table(id string) (Table, error) {
	sp := obs.StartSpan("xp.table")
	sp.SetAttr("id", id)
	defer sp.End()
	switch id {
	case "1":
		return r.table1()
	case "2", "3", "4", "5", "6":
		d := findDS(id)
		return r.runtimeTable(d)
	case "7":
		return r.table7()
	case "8":
		return r.table8()
	case "utilization":
		return r.utilizationTable()
	case "ablation":
		return r.ablationTable()
	case "hybrid":
		return r.hybridTable()
	case "wfa":
		return r.wfaTable()
	case "balance":
		return r.balanceTable()
	default:
		return Table{}, fmt.Errorf("xp: unknown table %q (want %v)", id, TableIDs())
	}
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]Table, error) {
	var out []Table
	for _, id := range TableIDs() {
		t, err := r.Table(id)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
