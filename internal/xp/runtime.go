package xp

import (
	"fmt"
	"math/rand"

	"pimnw/internal/baseline"
	"pimnw/internal/datasets"
	"pimnw/internal/pim"
)

// dsDef binds one evaluation dataset to its paper reference numbers.
type dsDef struct {
	key       string
	tableID   string // Table 2..6
	title     string
	cpuBand   int  // minimap2's band at the table's accuracy level
	traceback bool // CIGAR needed (everything except 16S)
	broadcast bool // §5.3 all-against-all mode

	fullPairs    int64   // paper-scale alignment count
	pairBases    float64 // average m+n per alignment at full scale
	datasetBytes int64   // broadcast transfer volume (broadcast mode)

	cpu4215, cpu4216 float64         // paper runtimes (s)
	dpuPaper         map[int]float64 // ranks -> paper runtime (s)
	paperPureC       float64         // Table 7 rows (40 ranks)
	paperAsm         float64

	// sample returns calibration pairs (scaled; Quick shrinks lengths).
	sample func(o Options) []datasets.Pair
}

// sampleSynthetic builds a calibration sample from an S-dataset spec.
func sampleSynthetic(spec datasets.SyntheticSpec) func(Options) []datasets.Pair {
	return func(o Options) []datasets.Pair {
		s := spec
		s.Pairs = 12
		s.Seed += o.Seed
		if o.Quick {
			s.ReadLen /= 10
			if s.ReadLen < 200 {
				s.ReadLen = 200
			}
		}
		return s.Generate()
	}
}

func sample16S(o Options) []datasets.Pair {
	spec := datasets.RRNA16S.Scaled(0.004) // ~38 sequences
	if o.Quick {
		spec = spec.Scaled(0.6)
	}
	spec.Seed += o.Seed
	seqs := spec.Generate()
	rng := rand.New(rand.NewSource(161 + o.Seed))
	pairs := make([]datasets.Pair, 12)
	for i := range pairs {
		a, b := rng.Intn(len(seqs)), rng.Intn(len(seqs)-1)
		if b >= a {
			b++
		}
		pairs[i] = datasets.Pair{ID: i, A: seqs[a], B: seqs[b]}
	}
	return pairs
}

func samplePacBio(o Options) []datasets.Pair {
	spec := datasets.PacBio
	spec.Sets = 1
	spec.ReadsMin, spec.ReadsMax = 6, 6
	spec.Seed += o.Seed
	if o.Quick {
		spec.RegionMin, spec.RegionMax = 400, 900
	}
	pairs := datasets.AllSetPairs(spec.Generate())
	if len(pairs) > 15 {
		pairs = pairs[:15]
	}
	return pairs
}

// full16SPairs is 9557 choose 2.
const full16SPairs = int64(9557) * 9556 / 2

// fullPacBioPairs is 38,512 sets times the expected in-set pair count for
// 10..30 uniformly distributed reads: (E[n^2]-E[n])/2 = 208.3.
const fullPacBioPairs = int64(8_022_050)

var dsDefs = []dsDef{
	{
		key: "S1000", tableID: "2",
		title:   "Runtime on the S1000 dataset at 100% accuracy",
		cpuBand: 128, traceback: true,
		fullPairs: 10_000_000, pairBases: 2000,
		cpu4215: 294, cpu4216: 242,
		dpuPaper:   map[int]float64{10: 560, 20: 283, 40: 146},
		paperPureC: 247, paperAsm: 146,
		sample: sampleSynthetic(datasets.S1000),
	},
	{
		key: "S10000", tableID: "3",
		title:   "Runtime on the S10000 dataset at 100% accuracy",
		cpuBand: 256, traceback: true,
		fullPairs: 1_000_000, pairBases: 20_000,
		cpu4215: 744, cpu4216: 369,
		dpuPaper:   map[int]float64{10: 502, 20: 255, 40: 132},
		paperPureC: 207, paperAsm: 132,
		sample: sampleSynthetic(datasets.S10000),
	},
	{
		key: "S30000", tableID: "4",
		title:   "Runtime on the S30000 dataset at 100% accuracy",
		cpuBand: 512, traceback: true,
		fullPairs: 500_000, pairBases: 60_000,
		cpu4215: 1650, cpu4216: 1265,
		dpuPaper:   map[int]float64{10: 755, 20: 391, 40: 200},
		paperPureC: 316, paperAsm: 200,
		sample: sampleSynthetic(datasets.S30000),
	},
	{
		key: "16S", tableID: "5",
		title:   "16S all-against-all comparison (accuracy > 85%)",
		cpuBand: 512, traceback: false, broadcast: true,
		fullPairs: full16SPairs, pairBases: 2 * 1542,
		datasetBytes: 9557 * (1542/4 + 24),
		cpu4215:      5882, cpu4216: 3538,
		dpuPaper:   map[int]float64{10: 2544, 20: 1257, 40: 632},
		paperPureC: 864, paperAsm: 632,
		sample: sample16S,
	},
	{
		key: "Pacbio", tableID: "6",
		title:   "Pacbio consensus pairwise alignment (accuracy > 85%)",
		cpuBand: 512, traceback: true,
		fullPairs: fullPacBioPairs, pairBases: 2 * 4750,
		cpu4215: 4044, cpu4216: 2788,
		dpuPaper:   map[int]float64{10: 1882, 20: 956, 40: 505},
		paperPureC: 806, paperAsm: 505,
		sample: samplePacBio,
	},
}

func findDS(key string) *dsDef {
	for i := range dsDefs {
		if dsDefs[i].key == key || dsDefs[i].tableID == key {
			return &dsDefs[i]
		}
	}
	return nil
}

// cpuCells is the paper-scale CPU DP work: rows x band per alignment.
func (d *dsDef) cpuCells() int64 {
	return int64(float64(d.fullPairs) * d.pairBases / 2 * float64(d.cpuBand))
}

// cpuSeconds models a server's full-scale runtime.
func (d *dsDef) cpuSeconds(m baseline.ServerModel) float64 {
	return m.Seconds(d.cpuCells(), d.traceback)
}

// dpuSeconds projects the full-scale DPU runtime at the given rank count
// under a cost table.
func (d *dsDef) dpuSeconds(r *Runner, ranks int, costs pim.CostTable) (float64, error) {
	cal, err := r.calibrationFor(d, costs)
	if err != nil {
		return 0, err
	}
	if d.broadcast {
		return projectBroadcast(ranksConfig(ranks), cal, d.fullPairs, d.pairBases, d.datasetBytes), nil
	}
	rep := projectPairs(ranksConfig(ranks), cal, d.fullPairs, d.pairBases)
	return rep.MakespanSec, nil
}

// runtimeTable builds one of Tables 2-6.
func (r *Runner) runtimeTable(d *dsDef) (Table, error) {
	t := Table{
		ID:     d.tableID,
		Title:  d.title,
		Header: []string{"System", "Paper (s)", "Ours (s)", "Paper speedup", "Our speedup"},
	}
	ours4215 := d.cpuSeconds(baseline.Xeon4215)
	ours4216 := d.cpuSeconds(baseline.Xeon4216)
	rows := []struct {
		label       string
		paper, ours float64
	}{
		{baseline.Xeon4215.Name, d.cpu4215, ours4215},
		{baseline.Xeon4216.Name, d.cpu4216, ours4216},
	}
	for _, ranks := range []int{10, 20, 40} {
		ours, err := d.dpuSeconds(r, ranks, pim.Asm)
		if err != nil {
			return t, err
		}
		rows = append(rows, struct {
			label       string
			paper, ours float64
		}{fmt.Sprintf("DPU %d ranks", ranks), d.dpuPaper[ranks], ours})
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.label,
			fmtSecs(row.paper),
			fmtSecs(row.ours),
			fmtX(d.cpu4215 / row.paper),
			fmtX(ours4215 / row.ours),
		})
	}
	cal, err := r.calibrationFor(d, pim.Asm)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("DPU kernel calibrated on a scaled sample: %.1f%% pipeline utilization; CPU columns use the calibrated Xeon throughput models", 100*cal.utilization))
	return t, nil
}
