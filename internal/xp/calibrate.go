package xp

import (
	"fmt"

	"pimnw/internal/core"
	"pimnw/internal/datasets"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// dpuBand is the adaptive band every DPU experiment uses (the paper's
// evaluated configuration).
const dpuBand = 128

// Host orchestration cost model (§4.1, §5): per dispatched pair the host
// reads, encodes and enqueues the sequences (~1.5 µs/pair reproduces the
// paper's 15 % overhead on S1000 vanishing to <1 % on S30000); in
// broadcast mode only the per-result interpretation remains.
const (
	hostPerPairSec   = 1.5e-6
	hostPerResultSec = 1e-7
)

// calibration holds the per-base kernel constants measured on one
// saturated DPU; full-scale projections multiply them by the paper-scale
// sequence volumes. Per-base (rather than per-pair) normalisation makes
// the calibration independent of the scaled read length.
type calibration struct {
	secPerBase      float64 // kernel seconds per (m+n) base of one pair
	bytesOutPerBase float64 // result bytes per (m+n) base
	utilization     float64
}

// kernelConfig builds the paper's DPU kernel configuration.
func kernelConfig(costs pim.CostTable, traceback bool, laneWidth int) kernel.Config {
	return kernel.Config{
		Geometry:  kernel.DefaultGeometry(),
		Band:      dpuBand,
		Params:    core.DefaultParams(),
		Costs:     costs,
		Traceback: traceback,
		LaneWidth: laneWidth,
		PIM:       pim.DefaultConfig(),
	}
}

// calibrate stages the sample pairs on one DPU with all pools saturated
// and measures the length-normalised kernel constants.
func calibrate(kcfg kernel.Config, sample []datasets.Pair) (calibration, error) {
	var cal calibration
	if len(sample) == 0 {
		return cal, fmt.Errorf("xp: empty calibration sample")
	}
	sp := obs.StartSpan("xp.calibrate")
	sp.SetAttr("costs", kcfg.Costs.Name)
	sp.SetAttrInt("sample_pairs", int64(len(sample)))
	defer sp.End()
	d := kcfg.PIM.NewDPU(0)
	kp := make([]kernel.Pair, 0, len(sample))
	var bases int64
	for _, p := range sample {
		sp, err := kernel.StagePair(d, p.ID, p.A, p.B)
		if err != nil {
			return cal, err
		}
		bases += int64(len(p.A) + len(p.B))
		kp = append(kp, sp)
	}
	out, err := kernel.Run(d, kcfg, kp)
	if err != nil {
		return cal, err
	}
	var outBytes int64
	for _, r := range out.Results {
		outBytes += 16 + int64(len(r.Cigar))
	}
	cal.secPerBase = kcfg.PIM.CyclesToSeconds(out.Stats.Cycles) / float64(bases)
	cal.bytesOutPerBase = float64(outBytes) / float64(bases)
	cal.utilization = out.Stats.Utilization()
	return cal, nil
}

// projectPairs lays a paper-scale pair workload onto the discrete-event
// timeline: fullPairs alignments of pairBases total bases each, batched at
// pairsPerDPU alignments per DPU per launch.
func projectPairs(pimCfg pim.Config, cal calibration, fullPairs int64, pairBases float64) *host.Report {
	// Small batches keep the rank FIFO's tail quantisation negligible, as
	// the real host's dynamic queue does.
	const pairsPerDPU = 4
	batchPairs := int64(pairsPerDPU * pim.DPUsPerRank)
	nBatches := (fullPairs + batchPairs - 1) / batchPairs
	if nBatches < 1 {
		nBatches = 1
	}
	bytesInPerPair := pairBases/4 + 24 // 2-bit packed + descriptor
	kernelSecPerPair := cal.secPerBase * pairBases
	bytesOutPerPair := cal.bytesOutPerBase * pairBases

	batches := make([]host.SyntheticBatch, nBatches)
	remaining := fullPairs
	for i := range batches {
		n := batchPairs
		if n > remaining {
			n = remaining
		}
		remaining -= n
		perDPU := float64(n) / pim.DPUsPerRank
		batches[i] = host.SyntheticBatch{
			BytesIn:    int64(float64(n) * bytesInPerPair),
			BytesOut:   int64(float64(n) * bytesOutPerPair),
			KernelSec:  perDPU * kernelSecPerPair,
			LoadedDPUs: pim.DPUsPerRank,
		}
	}
	rep := host.Project(host.Config{PIM: pimCfg}, batches)
	rep.MakespanSec += float64(fullPairs) * hostPerPairSec
	return rep
}

// projectBroadcast prices the §5.3 all-against-all mode at full scale: one
// dataset broadcast, a static equal split of the comparisons, score-only.
func projectBroadcast(pimCfg pim.Config, cal calibration, fullPairs int64, pairBases float64, datasetBytes int64) float64 {
	perDPU := float64(fullPairs) / float64(pimCfg.DPUs())
	kernelSec := perDPU * cal.secPerBase * pairBases
	transfer := pimCfg.HostTransferSeconds(datasetBytes)
	collect := pimCfg.HostTransferSeconds(int64(float64(fullPairs) * 16))
	launch := pimCfg.RankLaunchOverheadUS * 1e-6
	return transfer + launch + kernelSec + collect + float64(fullPairs)*hostPerResultSec
}

// ranksConfig is the default PiM system restricted to a rank count.
func ranksConfig(ranks int) pim.Config {
	c := pim.DefaultConfig()
	c.Ranks = ranks
	return c
}
