// Package xp is the experiment harness: one runner per table of the
// paper's evaluation section (§5), each producing a side-by-side
// paper-versus-reproduction table. Accuracy experiments (Table 1) run the
// real algorithms on sampled pairs; runtime experiments (Tables 2-6) run
// scaled datasets through the full simulated stack, calibrate per-pair
// kernel constants from those runs, and project the paper-scale workloads
// onto the host's discrete-event timeline; Tables 7 and 8 derive from the
// same machinery under the second cost table and the power model.
package xp

import (
	"fmt"
	"math"
	"strings"

	"pimnw/internal/host"
	"pimnw/internal/pim"
)

// Options tunes every experiment runner.
type Options struct {
	// Quick shrinks sample sizes and scales so the whole suite runs in
	// seconds (used by tests and benchmarks); the full defaults target a
	// few minutes on a laptop.
	Quick bool
	// Samples overrides the per-dataset accuracy sample count (0 = auto).
	Samples int
	// Workers bounds host-side parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed offsets every generator seed, for variance studies.
	Seed int64
	// FaultRate injects deterministic per-DPU faults at this probability
	// into the simulated runs that use the batch pipeline, exercising the
	// host's retry/redispatch recovery under the experiment workloads
	// (0 = perfect fabric). FaultSeed seeds the injection; MaxRetries and
	// BatchDeadlineSec bound the recovery (see host.Config).
	FaultRate        float64
	FaultSeed        int64
	MaxRetries       int
	BatchDeadlineSec float64
	// Escalate turns on the host's result-integrity ladder for the
	// simulated batch runs: clipped or out-of-band pairs are re-dispatched
	// at doubled band widths up to MaxBand (0 = host.DefaultMaxBand) and
	// degrade to score-only kernels / the exact CPU baseline, so every
	// experiment pair carries a trusted score with provenance. Verify
	// re-derives each traceback result's score from its CIGAR and treats
	// mismatches as detected corruption.
	Escalate bool
	MaxBand  int
	Verify   bool
	// LaneWidth pins the DPU kernel's DP cell width (kernel.Config.LaneWidth):
	// 0 auto-selects the 16-bit narrow-lane kernel for score-only runs whose
	// scoring model admits it, 16 and 64 force one engine.
	LaneWidth int
	// CacheDir attaches the persistent result cache to the batch
	// experiments that run over the serving path, so repeated suites skip
	// already-certified pairs ("" = no cache). Close the runner to flush it.
	CacheDir string
	// Fleet shards the batch experiments across a multi-backend fleet
	// instead of the single default fabric; see host.ParseFleet for the
	// spec syntax ("" = single fabric). Results stay bit-identical — only
	// the modelled timeline and the per-backend report rows change.
	Fleet string
}

// faultConfig translates the fault options into the host configuration
// fields; a zero FaultRate leaves the fabric perfect.
func (o Options) applyFaults(cfg *host.Config) {
	if o.FaultRate <= 0 {
		return
	}
	cfg.Faults = pim.FaultConfig{Rate: o.FaultRate, Seed: o.FaultSeed}
	cfg.MaxRetries = o.MaxRetries
	cfg.BatchDeadlineSec = o.BatchDeadlineSec
	cfg.RetryBackoffSec = 1e-3
}

// applyIntegrity translates the result-integrity options into the host
// configuration fields; the zero options leave the pipeline as-is.
func (o Options) applyIntegrity(cfg *host.Config) {
	cfg.Escalate = o.Escalate
	cfg.MaxBand = o.MaxBand
	cfg.Verify = o.Verify && cfg.Kernel.Traceback
	cfg.Kernel.LaneWidth = o.LaneWidth
}

// applyFleet translates the fleet spec into host backends; an empty
// spec leaves the single-fabric pipeline untouched.
func (o Options) applyFleet(cfg *host.Config) error {
	backends, err := host.ParseFleet(o.Fleet)
	if err != nil {
		return err
	}
	cfg.Backends = backends
	return nil
}

// Table is a rendered experiment outcome.
type Table struct {
	ID     string // "1".."8", or a named extra ("utilization", ...)
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// RenderMarkdown formats the table as GitHub-flavoured markdown (the
// format EXPERIMENTS.md embeds).
func (t Table) RenderMarkdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Table %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

// fmtSecs renders seconds compactly.
func fmtSecs(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// fmtX renders a speedup factor.
func fmtX(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}

// fmtPct renders a 0..1 fraction as a percentage.
func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*v)
}
