package xp

import (
	"fmt"

	"pimnw/internal/baseline"
	"pimnw/internal/core"
	"pimnw/internal/pim"
	"pimnw/internal/wfa"
)

// hybridTable models the paper's §6 outlook: "during PiM operations, most
// of the cores are free to be working on other tasks... future study could
// explore heterogeneous computation using both PiM and CPU simultaneously."
// With a work-proportional split and full overlap, the combined runtime of
// two engines with times Tc (CPU alone) and Tp (PiM alone) is
// Tc·Tp/(Tc+Tp); the table reports that bound per dataset, against the
// PiM-only and CPU-only columns.
func (r *Runner) hybridTable() (Table, error) {
	t := Table{
		ID:    "hybrid",
		Title: "Extension (§6): heterogeneous CPU+PiM co-execution (modelled, 40 ranks + Intel 4215)",
		Header: []string{"Dataset", "CPU alone (s)", "PiM alone (s)", "Hybrid (s)",
			"CPU share", "Gain over PiM"},
	}
	for i := range dsDefs {
		d := &dsDefs[i]
		cpu := d.cpuSeconds(baseline.Xeon4215)
		dpu, err := d.dpuSeconds(r, 40, pim.Asm)
		if err != nil {
			return t, err
		}
		hybrid := cpu * dpu / (cpu + dpu)
		cpuShare := dpu / (cpu + dpu) // fraction of pairs routed to the CPU
		t.Rows = append(t.Rows, []string{
			d.key, fmtSecs(cpu), fmtSecs(dpu), fmtSecs(hybrid),
			fmtPct(cpuShare), fmtX(dpu / hybrid),
		})
	}
	t.Notes = append(t.Notes,
		"upper bound: work-proportional split with perfect overlap; the host cores that orchestrate the PiM ranks are <5% busy (utilization table), leaving the rest for the CPU share")
	return t, nil
}

// wfaTable compares the adaptive banded kernel against the exact wavefront
// algorithm (the modern comparator the paper cites): work (DP cells vs
// wavefront offsets) and exactness on sampled pairs of each dataset. WFA's
// work scales with divergence, the band's with length — the crossover is
// the reproduction-level insight, and the WFA memory column is why the
// paper's DPU kernel banded instead (§3.3's 64 MB MRAM budget).
func (r *Runner) wfaTable() (Table, error) {
	t := Table{
		ID:    "wfa",
		Title: "Extension: adaptive band (w=128) vs exact WFA on sampled pairs",
		Header: []string{"Dataset", "Band cells/pair", "WFA cells/pair",
			"Band optimal", "WFA optimal", "Work ratio (WFA/band)"},
	}
	params := core.DefaultParams()
	for i := range dsDefs {
		d := &dsDefs[i]
		sample := r.sampleFor(d)
		var bandCells, wfaCells int64
		bandOK, wfaOK := 0, 0
		for _, pr := range sample {
			opt := core.GotohScore(pr.A, pr.B, params).Score
			bres := core.AdaptiveBandScore(pr.A, pr.B, params, dpuBand)
			bandCells += bres.Cells
			if bres.InBand && bres.Score == opt {
				bandOK++
			}
			wres, err := wfa.ScoreParams(pr.A, pr.B, params)
			if err != nil {
				return t, err
			}
			wfaCells += wres.Cells
			if wres.Score == opt {
				wfaOK++
			}
		}
		n := int64(len(sample))
		t.Rows = append(t.Rows, []string{
			d.key,
			fmt.Sprintf("%.2fM", float64(bandCells)/float64(n)/1e6),
			fmt.Sprintf("%.2fM", float64(wfaCells)/float64(n)/1e6),
			fmtPct(float64(bandOK) / float64(n)),
			fmtPct(float64(wfaOK) / float64(n)),
			fmt.Sprintf("%.2f", float64(wfaCells)/float64(bandCells)),
		})
	}
	t.Notes = append(t.Notes,
		"WFA is always optimal by construction; its advantage grows on close pairs and shrinks with divergence, while its O(penalty^2) working set rules it out for the 64KB-WRAM DPU kernel")
	return t, nil
}
