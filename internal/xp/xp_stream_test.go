package xp

import (
	"math/rand"
	"reflect"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// TestAlignBatchMatchesOneShot pins the contract alignBatch relies on:
// routing a whole-workload micro-batch through the streaming session is
// bit-identical to host.AlignPairs — same results AND same report — so
// the xp tables are unchanged by the serving-path rewiring.
func TestAlignBatchMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var pairs []host.Pair
	for i := 0; i < 24; i++ {
		a := seq.Random(rng, 150+rng.Intn(100))
		b := seq.UniformErrors(0.05).Apply(rng, a)
		pairs = append(pairs, host.Pair{ID: i, A: a, B: b})
	}

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := host.Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry: kernel.DefaultGeometry(),
			Band:     dpuBand,
			Params:   core.DefaultParams(),
			Costs:    pim.Asm,
			PIM:      pimCfg,
		},
		Balance: host.BalanceLPT,
	}

	wantRep, wantResults, err := host.AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, gotResults, err := NewRunner(Options{}).alignBatch(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	// The session re-sequences results into submission order while the
	// one-shot API returns dispatch order; compare the sets keyed by ID.
	byID := func(rs []host.Result) map[int]host.Result {
		m := make(map[int]host.Result, len(rs))
		for _, r := range rs {
			m[r.ID] = r
		}
		return m
	}
	if len(gotResults) != len(wantResults) {
		t.Fatalf("%d streamed results, %d one-shot", len(gotResults), len(wantResults))
	}
	if !reflect.DeepEqual(byID(gotResults), byID(wantResults)) {
		t.Fatal("alignBatch results diverge from host.AlignPairs")
	}
	for i := 1; i < len(gotResults); i++ {
		if gotResults[i].ID < gotResults[i-1].ID {
			t.Fatalf("streamed results not in submission order: %d after %d",
				gotResults[i].ID, gotResults[i-1].ID)
		}
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatalf("alignBatch report diverges from host.AlignPairs:\n got %+v\nwant %+v", gotRep, wantRep)
	}
}
