package xp

import (
	"strconv"
	"strings"
	"testing"

	"pimnw/internal/pim"
)

func quickRunner() *Runner {
	return NewRunner(Options{Quick: true})
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID: "x", Title: "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"aaaa", "b"}},
		Notes:  []string{"n"},
	}
	out := tbl.Render()
	for _, want := range []string{"Table x: demo", "A", "Blong", "aaaa", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if fmtSecs(123.4) != "123" || fmtSecs(1.23) != "1.2" || fmtSecs(0.012) != "0.012" {
		t.Error("fmtSecs")
	}
	if fmtX(2.0) != "2.0x" {
		t.Error("fmtX")
	}
	if fmtPct(0.953) != "95%" {
		t.Error("fmtPct")
	}
}

func TestUnknownTable(t *testing.T) {
	if _, err := quickRunner().Table("99"); err == nil {
		t.Error("unknown table accepted")
	}
}

// parse "paper / ours" percentage cell, returning ours.
func oursPct(t *testing.T, cell string) float64 {
	t.Helper()
	parts := strings.Split(cell, "/")
	v, err := strconv.ParseFloat(strings.TrimSpace(parts[len(parts)-1]), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTable1AccuracyLadder(t *testing.T) {
	tbl, err := quickRunner().Table("1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		s128 := oursPct(t, row[1])
		s256 := oursPct(t, row[2])
		s512 := oursPct(t, row[3])
		a128 := oursPct(t, row[4])
		// Static accuracy must not decrease with band size.
		if s256 < s128-1e-9 || s512 < s256-1e-9 {
			t.Errorf("%s: static accuracy not monotone: %v %v %v", row[0], s128, s256, s512)
		}
		// The paper's claim: adaptive at 128 at least matches static at
		// 128 and is competitive with static at much larger bands.
		if a128 < s128-1e-9 {
			t.Errorf("%s: adaptive 128 (%v) below static 128 (%v)", row[0], a128, s128)
		}
	}
	// The gappy dataset must show the static-band failure the paper
	// reports (Pacbio: 29% at static 128 vs 85% adaptive).
	pb := tbl.Rows[4]
	if oursPct(t, pb[1]) >= oursPct(t, pb[4]) {
		t.Errorf("Pacbio: static 128 (%s) should trail adaptive 128 (%s)", pb[1], pb[4])
	}
}

func TestRuntimeTablesShape(t *testing.T) {
	r := quickRunner()
	for _, id := range []string{"2", "3", "4", "5", "6"} {
		tbl, err := r.Table(id)
		if err != nil {
			t.Fatalf("table %s: %v", id, err)
		}
		if len(tbl.Rows) != 5 {
			t.Fatalf("table %s: %d rows", id, len(tbl.Rows))
		}
		// DPU rank scaling: 10 -> 20 -> 40 ranks must speed up ~2x each.
		t10 := parseSecs(t, tbl.Rows[2][2])
		t20 := parseSecs(t, tbl.Rows[3][2])
		t40 := parseSecs(t, tbl.Rows[4][2])
		if !(t10 > t20 && t20 > t40) {
			t.Errorf("table %s: rank scaling broken: %v %v %v", id, t10, t20, t40)
		}
		if ratio := t10 / t40; ratio < 2.5 || ratio > 4.5 {
			t.Errorf("table %s: 10->40 ranks speedup %.2f, want ~4 (near-linear)", id, ratio)
		}
	}
}

func parseSecs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestFullScaleProjectionsNearPaper(t *testing.T) {
	// The headline reproduction: with the calibrated cost model, the
	// projected full-scale DPU runtimes should land within 2x of every
	// paper number, and the 40-rank values within ~40%.
	r := NewRunner(Options{Quick: true})
	for i := range dsDefs {
		d := &dsDefs[i]
		for _, ranks := range []int{10, 20, 40} {
			ours, err := d.dpuSeconds(r, ranks, pim.Asm)
			if err != nil {
				t.Fatal(err)
			}
			paper := d.dpuPaper[ranks]
			ratio := ours / paper
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s DPU %d ranks: ours %.0f vs paper %.0f (ratio %.2f)",
					d.key, ranks, ours, paper, ratio)
			}
		}
	}
}

func TestTable7SpeedupWindow(t *testing.T) {
	tbl, err := quickRunner().Table("7")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ours, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if ours < 1.25 || ours > 1.85 {
			t.Errorf("%s: asm speedup %.2f outside the paper's 1.36-1.69 window", row[0], ours)
		}
	}
	// 16S (score-only) must show the smallest gain, as the paper explains.
	var min float64 = 100
	var minKey string
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(row[4], 64)
		if v < min {
			min, minKey = v, row[0]
		}
	}
	if minKey != "16S" {
		t.Errorf("smallest asm gain on %s, paper says 16S", minKey)
	}
}

func TestTable8EnergyShape(t *testing.T) {
	tbl, err := quickRunner().Table("8")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// The PiM server must consume the least energy on both datasets.
	last := tbl.Rows[2]
	for col := 1; col <= 2; col++ {
		pim := oursPct(t, last[col]) // reuses the "a / b" parser: ours is after '/'
		for rowi := 0; rowi < 2; rowi++ {
			cpu := oursPct(t, tbl.Rows[rowi][col])
			if pim >= cpu {
				t.Errorf("PiM energy %v not below %s's %v", pim, tbl.Rows[rowi][0], cpu)
			}
		}
	}
}

func TestUtilizationTable(t *testing.T) {
	tbl, err := quickRunner().Table("utilization")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		u := pctValue(t, row[1])
		if u < 0.90 || u > 1.0 {
			t.Errorf("%s: utilization %v outside the paper's 95-99%% story", row[0], u)
		}
	}
	// Host overhead: largest on the short-read dataset.
	s1000 := pctValue(t, tbl.Rows[0][2])
	s30000 := pctValue(t, tbl.Rows[2][2])
	if s1000 <= s30000 {
		t.Errorf("overhead S1000 (%v) should exceed S30000 (%v)", s1000, s30000)
	}
}

func pctValue(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v / 100
}

func TestAblationTable(t *testing.T) {
	tbl, err := quickRunner().Table("ablation")
	if err != nil {
		t.Fatal(err)
	}
	overflowSeen := false
	okSeen := 0
	for _, row := range tbl.Rows {
		switch row[2] {
		case "WRAM overflow":
			overflowSeen = true
		case "ok":
			okSeen++
		}
	}
	if !overflowSeen {
		t.Error("no geometry hit the WRAM wall; the §4.2.3 trade-off is not reproduced")
	}
	if okSeen < 4 {
		t.Errorf("only %d feasible geometries", okSeen)
	}
	// The paper geometry must be the (joint) fastest feasible one.
	var paperRel float64
	rels := map[string]float64{}
	for _, row := range tbl.Rows {
		if row[2] != "ok" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		rels[row[0]] = v
		if row[0] == "6x4" {
			paperRel = v
		}
	}
	for g, v := range rels {
		if v < paperRel-0.05 {
			t.Errorf("geometry %s (%.2fx) clearly beats the paper's 6x4", g, v)
		}
	}
}

func TestRunnerAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tables, err := quickRunner().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(TableIDs()) {
		t.Errorf("%d tables", len(tables))
	}
	for _, tbl := range tables {
		if tbl.Render() == "" {
			t.Errorf("table %s renders empty", tbl.ID)
		}
	}
}

func TestHybridTable(t *testing.T) {
	tbl, err := quickRunner().Table("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		cpu := parseSecs(t, row[1])
		pim := parseSecs(t, row[2])
		hyb := parseSecs(t, row[3])
		// The hybrid bound must beat both engines alone.
		if hyb >= cpu || hyb >= pim {
			t.Errorf("%s: hybrid %.0f not below cpu %.0f / pim %.0f", row[0], hyb, cpu, pim)
		}
		// And equal the harmonic combination.
		want := cpu * pim / (cpu + pim)
		if hyb < want*0.98 || hyb > want*1.02 {
			t.Errorf("%s: hybrid %.1f, want %.1f", row[0], hyb, want)
		}
	}
}

func TestWFATable(t *testing.T) {
	tbl, err := quickRunner().Table("wfa")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		// WFA is exact by construction: 100% on every dataset.
		if got := pctValue(t, row[4]); got != 1.0 {
			t.Errorf("%s: WFA optimal fraction %v, want 1", row[0], got)
		}
		// Band accuracy can never exceed the exact aligner's.
		if band := pctValue(t, row[3]); band > 1.0 {
			t.Errorf("%s: band accuracy %v", row[0], band)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := Table{ID: "9", Title: "demo", Header: []string{"A", "B"},
		Rows: [][]string{{"x", "y"}}, Notes: []string{"n"}}
	out := tbl.RenderMarkdown()
	for _, want := range []string{"### Table 9 — demo", "| A | B |", "|---|---|", "| x | y |", "*n*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestBalanceTable(t *testing.T) {
	tbl, err := quickRunner().Table("balance")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// LPT must be the reference (1.0x) and no policy may beat it by more
	// than noise.
	for i, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "x"), 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if i == 0 && v != 1.0 {
			t.Errorf("LPT row shows %vx", v)
		}
		if v < 0.99 {
			t.Errorf("%s beats LPT: %vx", row[0], v)
		}
	}
}
