package xp

import (
	"fmt"
	"math"
	"math/rand"

	"pimnw/internal/core"
	"pimnw/internal/datasets"
)

// accuracyBands are Table 1's columns: three static band sizes and the
// adaptive band.
var accuracyBands = []struct {
	label    string
	adaptive bool
	w        int
}{
	{"Static 128", false, 128},
	{"Static 256", false, 256},
	{"Static 512", false, 512},
	{"Adaptive 128", true, 128},
}

// paperAccuracy holds Table 1's reference percentages (NaN = not reported;
// the paper doubles the static band only until reaching 100 %).
var paperAccuracy = map[string][4]float64{
	"S1000":  {100, math.NaN(), math.NaN(), 100},
	"S10000": {99, 100, math.NaN(), 100},
	"S30000": {89, 99, 100, 100},
	"16S":    {70, 81, 85, 86},
	"Pacbio": {29, 62, 87, 85},
}

// accuracySample draws the pairs Table 1 scores a dataset on. Sizes shrink
// under Quick (and read lengths with them), which moves the absolute
// percentages — the ladder shape is what Quick preserves.
func (r *Runner) accuracySample(key string) []datasets.Pair {
	o := r.Opts
	n := r.accSamples(key)
	switch key {
	case "S1000", "S10000", "S30000":
		spec := *map[string]*datasets.SyntheticSpec{
			"S1000": &datasets.S1000, "S10000": &datasets.S10000, "S30000": &datasets.S30000,
		}[key]
		spec.Pairs = n
		spec.Seed += 7001 + o.Seed
		if o.Quick {
			spec.ReadLen /= 10
		}
		return spec.Generate()
	case "16S":
		spec := datasets.RRNA16S.Scaled(0.02)
		if o.Quick {
			spec = spec.Scaled(0.2)
		}
		spec.Seed += 7002 + o.Seed
		seqs := spec.Generate()
		rng := rand.New(rand.NewSource(7003 + o.Seed))
		pairs := make([]datasets.Pair, n)
		for i := range pairs {
			a, b := rng.Intn(len(seqs)), rng.Intn(len(seqs)-1)
			if b >= a {
				b++
			}
			pairs[i] = datasets.Pair{ID: i, A: seqs[a], B: seqs[b]}
		}
		return pairs
	case "Pacbio":
		spec := datasets.PacBio
		spec.Sets = 4
		spec.Seed += 7004 + o.Seed
		if o.Quick {
			spec.RegionMin, spec.RegionMax = 500, 1200
		}
		pairs := datasets.AllSetPairs(spec.Generate())
		if len(pairs) > n {
			pairs = pairs[:n]
		}
		return pairs
	}
	return nil
}

// accSamples picks the sample size per dataset: the ground truth is the
// full O(m·n) Gotoh score, so long-read datasets get fewer samples.
func (r *Runner) accSamples(key string) int {
	if r.Opts.Samples > 0 {
		return r.Opts.Samples
	}
	full := map[string]int{"S1000": 150, "S10000": 30, "S30000": 8, "16S": 120, "Pacbio": 40}
	quick := map[string]int{"S1000": 40, "S10000": 15, "S30000": 8, "16S": 40, "Pacbio": 25}
	if r.Opts.Quick {
		return quick[key]
	}
	return full[key]
}

// table1 reproduces the accuracy comparison: the percentage of sampled
// pairs whose banded score equals the optimal (full Gotoh) score.
func (r *Runner) table1() (Table, error) {
	t := Table{
		ID:    "1",
		Title: "Accuracy of static vs adaptive band heuristics (% of optimal scores)",
		Header: []string{"Dataset",
			"Static 128 (paper/ours)", "Static 256 (paper/ours)",
			"Static 512 (paper/ours)", "Adaptive 128 (paper/ours)"},
	}
	p := core.DefaultParams()
	for _, key := range []string{"S1000", "S10000", "S30000", "16S", "Pacbio"} {
		pairs := r.accuracySample(key)
		if len(pairs) == 0 {
			return t, fmt.Errorf("xp: no accuracy sample for %s", key)
		}
		hits := [4]int{}
		for _, pr := range pairs {
			opt := core.GotohScore(pr.A, pr.B, p).Score
			for bi, band := range accuracyBands {
				var res core.Result
				if band.adaptive {
					res = core.AdaptiveBandScore(pr.A, pr.B, p, band.w)
				} else {
					res = core.StaticBandScore(pr.A, pr.B, p, band.w)
				}
				if res.InBand && res.Score == opt {
					hits[bi]++
				}
			}
		}
		row := []string{key}
		paper := paperAccuracy[key]
		for bi := range accuracyBands {
			ours := 100 * float64(hits[bi]) / float64(len(pairs))
			ps := "-"
			if !math.IsNaN(paper[bi]) {
				ps = fmt.Sprintf("%.0f", paper[bi])
			}
			row = append(row, fmt.Sprintf("%s / %.0f", ps, ours))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"ours: sampled pairs on synthetic stand-in datasets; the ladder (static needs 2-4x the band of adaptive) is the reproduced claim",
		fmt.Sprintf("samples per dataset: S1000=%d S10000=%d S30000=%d 16S=%d Pacbio=%d",
			r.accSamples("S1000"), r.accSamples("S10000"), r.accSamples("S30000"),
			r.accSamples("16S"), r.accSamples("Pacbio")))
	return t, nil
}
