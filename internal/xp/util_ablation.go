package xp

import (
	"fmt"

	"pimnw/internal/kernel"
	"pimnw/internal/pim"
)

// utilizationTable reproduces the §5 execution-quality claims: 95-99 %
// pipeline utilisation at the 6x4 geometry, and a host orchestration
// overhead that is ~15 % for the short-read dataset and negligible for the
// long-read ones.
func (r *Runner) utilizationTable() (Table, error) {
	t := Table{
		ID:    "utilization",
		Title: "Pipeline utilisation and host overhead (40 ranks, asm kernel)",
		Header: []string{"Dataset", "Pipeline util (paper 95-99%)",
			"Host overhead (ours)", "Paper overhead"},
	}
	paperOverhead := map[string]string{
		"S1000": "15%", "S10000": "-", "S30000": "<0.1%", "16S": "low (broadcast)", "Pacbio": "-",
	}
	for i := range dsDefs {
		d := &dsDefs[i]
		cal, err := r.calibrationFor(d, pim.Asm)
		if err != nil {
			return t, err
		}
		var makespan float64
		if d.broadcast {
			makespan = projectBroadcast(ranksConfig(40), cal, d.fullPairs, d.pairBases, d.datasetBytes)
		} else {
			makespan = projectPairs(ranksConfig(40), cal, d.fullPairs, d.pairBases).MakespanSec
		}
		kernelPar := float64(d.fullPairs) * cal.secPerBase * d.pairBases / float64(ranksConfig(40).DPUs())
		overhead := 1 - kernelPar/makespan
		if overhead < 0 {
			overhead = 0
		}
		t.Rows = append(t.Rows, []string{
			d.key, fmtPct(cal.utilization), fmtPct(overhead), paperOverhead[d.key],
		})
	}
	return t, nil
}

// ablationTable sweeps the tasklet pool geometry (§4.2.3): pure
// alignment-level parallelism runs out of WRAM before filling the
// pipeline, pure anti-diagonal parallelism wastes tasklets on
// synchronisation, and the paper's hybrid 6x4 sits at the sweet spot.
func (r *Runner) ablationTable() (Table, error) {
	t := Table{
		ID:     "ablation",
		Title:  "Pool geometry ablation (P pools x T tasklets, S10000-like sample)",
		Header: []string{"Geometry", "Tasklets", "Status", "Relative time", "Pipeline util"},
	}
	d := findDS("S10000")
	sample := r.sampleFor(d)
	geometries := []kernel.Geometry{
		{Pools: 1, TaskletsPerPool: 16},
		{Pools: 2, TaskletsPerPool: 8},
		{Pools: 4, TaskletsPerPool: 4},
		{Pools: 6, TaskletsPerPool: 4}, // the paper's configuration
		{Pools: 8, TaskletsPerPool: 2},
		{Pools: 8, TaskletsPerPool: 1},
		{Pools: 12, TaskletsPerPool: 1},
		{Pools: 24, TaskletsPerPool: 1},
	}
	var baselineCycles int64
	for _, g := range geometries {
		kcfg := kernelConfig(pim.Asm, true, r.Opts.LaneWidth)
		kcfg.Geometry = g
		label := fmt.Sprintf("%dx%d", g.Pools, g.TaskletsPerPool)
		if err := kcfg.Validate(); err != nil {
			t.Rows = append(t.Rows, []string{label, fmt.Sprint(g.Tasklets()), "WRAM overflow", "-", "-"})
			continue
		}
		d0 := kcfg.PIM.NewDPU(0)
		kp := make([]kernel.Pair, 0, len(sample))
		for _, p := range sample {
			sp, err := kernel.StagePair(d0, p.ID, p.A, p.B)
			if err != nil {
				return t, err
			}
			kp = append(kp, sp)
		}
		out, err := kernel.Run(d0, kcfg, kp)
		if err != nil {
			return t, err
		}
		if g.Pools == 6 && g.TaskletsPerPool == 4 {
			baselineCycles = out.Stats.Cycles
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(g.Tasklets()), "ok",
			fmt.Sprintf("%d", out.Stats.Cycles),
			fmtPct(out.Stats.Utilization()),
		})
	}
	// Second pass: normalise cycle counts against the paper geometry.
	for _, row := range t.Rows {
		if row[3] == "-" {
			continue
		}
		var c int64
		fmt.Sscanf(row[3], "%d", &c)
		row[3] = fmt.Sprintf("%.2fx", float64(c)/float64(baselineCycles))
	}
	t.Notes = append(t.Notes,
		"geometries with more than ~9 single-tasklet pools exceed the WRAM budget (the paper's strategy-1 limit); fewer than 11 total tasklets cannot fill the pipeline")
	return t, nil
}
