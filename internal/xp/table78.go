package xp

import (
	"fmt"

	"pimnw/internal/baseline"
	"pimnw/internal/pim"
	"pimnw/internal/power"
)

// table7 reproduces the manual-assembly study (§5.5): full-server (40
// rank) runtimes under the pure-C and the hand-optimised cost tables.
func (r *Runner) table7() (Table, error) {
	t := Table{
		ID:    "7",
		Title: "Speed up of manually optimised vs pure C DPU kernels (40 ranks)",
		Header: []string{"Dataset", "Pure C paper/ours (s)", "Asm paper/ours (s)",
			"Paper speedup", "Our speedup"},
	}
	for _, d := range dsDefs {
		pure, err := d.dpuSeconds(r, 40, pim.PureC)
		if err != nil {
			return t, err
		}
		asm, err := d.dpuSeconds(r, 40, pim.Asm)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			d.key,
			fmt.Sprintf("%s / %s", fmtSecs(d.paperPureC), fmtSecs(pure)),
			fmt.Sprintf("%s / %s", fmtSecs(d.paperAsm), fmtSecs(asm)),
			fmt.Sprintf("%.2f", d.paperPureC/d.paperAsm),
			fmt.Sprintf("%.2f", pure/asm),
		})
	}
	t.Notes = append(t.Notes,
		"the smaller 16S gain reproduces the paper's explanation: no traceback, so less code for the asm inner loops to optimise")
	return t, nil
}

// table8 reproduces the energy comparison (§5.6): component-level power
// times the real-dataset runtimes, plus the cost argument.
func (r *Runner) table8() (Table, error) {
	t := Table{
		ID:     "8",
		Title:  "Energy per full run on the real datasets (kJ)",
		Header: []string{"System", "16S paper/ours (kJ)", "Pacbio paper/ours (kJ)"},
	}
	d16 := findDS("16S")
	dpb := findDS("Pacbio")
	our16DPU, err := d16.dpuSeconds(r, 40, pim.Asm)
	if err != nil {
		return t, err
	}
	ourPbDPU, err := dpb.dpuSeconds(r, 40, pim.Asm)
	if err != nil {
		return t, err
	}
	rows := []struct {
		sys              power.System
		sec16, secPb     float64
		paper16, paperPb float64
	}{
		{power.Server4215, d16.cpuSeconds(baseline.Xeon4215), dpb.cpuSeconds(baseline.Xeon4215), 1805, 1241},
		{power.Server4216, d16.cpuSeconds(baseline.Xeon4216), dpb.cpuSeconds(baseline.Xeon4216), 1192, 939},
		{power.PiMServer, our16DPU, ourPbDPU, 484, 387},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.sys.Name,
			fmt.Sprintf("%.0f / %.0f", row.paper16, row.sys.EnergyKJ(row.sec16)),
			fmt.Sprintf("%.0f / %.0f", row.paperPb, row.sys.EnergyKJ(row.secPb)),
		})
	}
	speedup := dpb.cpuSeconds(baseline.Xeon4216) / ourPbDPU
	t.Notes = append(t.Notes,
		fmt.Sprintf("cost argument (§5.6): %.1fx speedup over the 4216 for a %.1fx price increase = %.1fx perf/cost",
			speedup, power.PaperCosts.CostRatio(), power.PaperCosts.PerfPerCost(speedup)))
	return t, nil
}
