package cigar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimnw/internal/seq"
)

func TestOpKindChars(t *testing.T) {
	cases := map[OpKind]byte{Match: '=', Mismatch: 'X', Ins: 'I', Del: 'D'}
	for k, c := range cases {
		if k.Char() != c {
			t.Errorf("%d.Char() = %c, want %c", k, k.Char(), c)
		}
	}
}

func TestConsumes(t *testing.T) {
	if !Match.ConsumesQuery() || !Match.ConsumesTarget() {
		t.Error("Match must consume both")
	}
	if !Mismatch.ConsumesQuery() || !Mismatch.ConsumesTarget() {
		t.Error("Mismatch must consume both")
	}
	if !Ins.ConsumesQuery() || Ins.ConsumesTarget() {
		t.Error("Ins must consume query only")
	}
	if Del.ConsumesQuery() || !Del.ConsumesTarget() {
		t.Error("Del must consume target only")
	}
}

func TestAppendMerges(t *testing.T) {
	var c Cigar
	c = c.Append(Match, 3)
	c = c.Append(Match, 2)
	c = c.Append(Ins, 1)
	c = c.Append(Del, 0) // no-op
	if len(c) != 2 {
		t.Fatalf("len = %d, want 2: %v", len(c), c)
	}
	if c[0] != (Op{Match, 5}) || c[1] != (Op{Ins, 1}) {
		t.Errorf("got %v", c)
	}
}

func TestReverse(t *testing.T) {
	c := Cigar{{Match, 1}, {Ins, 2}, {Del, 3}}
	c.Reverse()
	want := Cigar{{Del, 3}, {Ins, 2}, {Match, 1}}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("got %v, want %v", c, want)
		}
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	in := "12=1X3I500=2D"
	c, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"3", "=", "0=", "-1X", "3Z", "3M", "3=4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseLooseM(t *testing.T) {
	c, err := ParseLoose("3M2I")
	if err != nil {
		t.Fatal(err)
	}
	if c[0].Kind != Match || c[0].Len != 3 {
		t.Errorf("got %v", c)
	}
}

func TestLens(t *testing.T) {
	c, _ := Parse("10=2X3I4D")
	if got := c.QueryLen(); got != 15 {
		t.Errorf("QueryLen = %d, want 15", got)
	}
	if got := c.TargetLen(); got != 16 {
		t.Errorf("TargetLen = %d, want 16", got)
	}
}

func TestStats(t *testing.T) {
	c, _ := Parse("10=2X3I4D1I")
	st := c.Stats()
	if st.Matches != 10 || st.Mismatches != 2 || st.Insertions != 4 || st.Deletions != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.GapOpens != 3 {
		t.Errorf("GapOpens = %d, want 3", st.GapOpens)
	}
	if st.Columns != 20 {
		t.Errorf("Columns = %d, want 20", st.Columns)
	}
	if id := st.Identity(); id != 0.5 {
		t.Errorf("Identity = %v, want 0.5", id)
	}
	if (Stats{}).Identity() != 0 {
		t.Error("empty identity should be 0")
	}
}

func TestValidateGood(t *testing.T) {
	q := seq.MustFromString("ACGTA")
	tg := seq.MustFromString("ACCTAA")
	// A C G->C T A, then one deleted A:  2= 1X 2= 1D
	c, _ := Parse("2=1X2=1D")
	if err := c.Validate(q, tg); err != nil {
		t.Errorf("valid cigar rejected: %v", err)
	}
}

func TestValidateBad(t *testing.T) {
	q := seq.MustFromString("ACGT")
	tg := seq.MustFromString("ACGT")
	cases := []string{
		"3=",       // under-consumes
		"5=",       // overruns
		"4X",       // claims mismatch on equal bases
		"2=1I1=",   // target under-consumed
		"2=1D1=1I", // lengths balance but the '=' column is a mismatch
	}
	for _, s := range cases {
		c, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if err := c.Validate(q, tg); err == nil {
			t.Errorf("Validate(%q) accepted", s)
		}
	}
}

func TestReplayReconstructsTarget(t *testing.T) {
	q := seq.MustFromString("ACGTA")
	tg := seq.MustFromString("ACCTAA")
	c, _ := Parse("2=1X2=1D")
	got, err := c.Replay(q, tg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tg) {
		t.Errorf("replay = %v, want %v", got, tg)
	}
}

// randomAlignment builds a random query/target pair together with the exact
// cigar that transforms one into the other.
func randomAlignment(rng *rand.Rand, cols int) (q, tg seq.Seq, c Cigar) {
	for i := 0; i < cols; i++ {
		switch rng.Intn(4) {
		case 0: // match
			b := seq.Base(rng.Intn(4))
			q = append(q, b)
			tg = append(tg, b)
			c = c.Append(Match, 1)
		case 1: // mismatch
			b := seq.Base(rng.Intn(4))
			q = append(q, b)
			tg = append(tg, b^1) // guaranteed different
			c = c.Append(Mismatch, 1)
		case 2: // insertion
			q = append(q, seq.Base(rng.Intn(4)))
			c = c.Append(Ins, 1)
		case 3: // deletion
			tg = append(tg, seq.Base(rng.Intn(4)))
			c = c.Append(Del, 1)
		}
	}
	return q, tg, c
}

func TestValidateReplayProperty(t *testing.T) {
	f := func(seed int64, colsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q, tg, c := randomAlignment(rng, int(colsRaw))
		if err := c.Validate(q, tg); err != nil {
			return false
		}
		got, err := c.Replay(q, tg)
		if err != nil {
			return false
		}
		if !got.Equal(tg) {
			return false
		}
		st := c.Stats()
		return st.Columns == int(colsRaw) &&
			c.QueryLen() == len(q) && c.TargetLen() == len(tg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPretty(t *testing.T) {
	q := seq.MustFromString("ACGTA")
	tg := seq.MustFromString("ACCTAA")
	c, _ := Parse("2=1X2=1D")
	got := c.Pretty(q, tg, 80)
	want := "ACGTA-\n||*|| \nACCTAA\n"
	if got != want {
		t.Errorf("Pretty:\n%q\nwant\n%q", got, want)
	}
}

func TestPrettyWrap(t *testing.T) {
	q := seq.MustFromString("ACGTACGT")
	c, _ := Parse("8=")
	got := c.Pretty(q, q, 4)
	want := "ACGT\n||||\nACGT\n\nACGT\n||||\nACGT\n"
	if got != want {
		t.Errorf("wrapped Pretty:\n%q\nwant\n%q", got, want)
	}
}

func TestValidateLengths(t *testing.T) {
	ok, _ := Parse("3=1X2I4D")
	cases := []struct {
		name    string
		c       Cigar
		q, tg   int
		wantErr bool
	}{
		{"exact", ok, 6, 8, false},
		{"empty", nil, 0, 0, false},
		{"short-query", ok, 7, 8, true},
		{"short-target", ok, 6, 9, true},
		{"overrun", ok, 5, 8, true},
		{"zero-len-op", Cigar{{Kind: Match, Len: 0}}, 0, 0, true},
		{"negative-len-op", Cigar{{Kind: Del, Len: -2}}, 0, 0, true},
		{"unknown-kind", Cigar{{Kind: numKinds, Len: 1}}, 1, 1, true},
		{"non-canonical", Cigar{{Kind: Match, Len: 1}, {Kind: Match, Len: 1}}, 2, 2, true},
	}
	for _, tc := range cases {
		err := Validate(tc.c, tc.q, tc.tg)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}
