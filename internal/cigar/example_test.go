package cigar_test

import (
	"fmt"

	"pimnw/internal/cigar"
	"pimnw/internal/seq"
)

func ExampleParse() {
	c, _ := cigar.Parse("3=1X2I4=")
	st := c.Stats()
	fmt.Println(c.QueryLen(), c.TargetLen(), st.Matches, st.GapOpens)
	// Output: 10 8 7 1
}

func ExampleCigar_Pretty() {
	q := seq.MustFromString("CGTA")
	t := seq.MustFromString("ACGTA")
	c, _ := cigar.Parse("1D4=")
	fmt.Print(c.Pretty(q, t, 60))
	// Output:
	// -CGTA
	//  ||||
	// ACGTA
}

func ExampleStats_Identity() {
	c, _ := cigar.Parse("90=5X5I")
	fmt.Printf("%.2f\n", c.Stats().Identity())
	// Output: 0.90
}
