package cigar

import "testing"

func FuzzParseRoundTrip(f *testing.F) {
	f.Add("12=1X3I500=2D")
	f.Add("1=")
	f.Add("")
	f.Add("999999999999999999=")
	f.Add("3M2I")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return // malformed input rejected: fine
		}
		// Anything accepted must survive a render/parse round trip.
		out := c.String()
		c2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", out, err)
		}
		if c2.String() != out {
			t.Fatalf("unstable round trip: %q -> %q", out, c2.String())
		}
		if c.QueryLen() != c2.QueryLen() || c.TargetLen() != c2.TargetLen() {
			t.Fatal("lengths changed across round trip")
		}
	})
}
