package cigar

import "testing"

func FuzzValidate(f *testing.F) {
	f.Add("12=1X3I500=2D", 516, 515)
	f.Add("1=", 1, 1)
	f.Add("", 0, 0)
	f.Add("3I", 0, 3)
	f.Add("5D2X", 2, 7)
	f.Fuzz(func(t *testing.T, s string, qlen, tlen int) {
		c, err := Parse(s)
		if err != nil {
			return // malformed input rejected: fine
		}
		q, tg := c.QueryLen(), c.TargetLen()
		if q < 0 || tg < 0 || q > 1<<40 || tg > 1<<40 {
			return // absurd totals (overflow territory) are out of scope
		}
		// A parsed cigar is canonical; Validate must accept it against its
		// own consumption counts...
		if err := Validate(c, q, tg); err != nil {
			t.Fatalf("Validate rejected self-consistent cigar %q: %v", s, err)
		}
		// ...and must reject any other claimed lengths.
		if qlen != q || tlen != tg {
			if err := Validate(c, qlen, tlen); err == nil {
				t.Fatalf("Validate accepted %q against wrong lengths (%d,%d) != (%d,%d)",
					s, qlen, tlen, q, tg)
			}
		}
	})
}

func FuzzParseRoundTrip(f *testing.F) {
	f.Add("12=1X3I500=2D")
	f.Add("1=")
	f.Add("")
	f.Add("999999999999999999=")
	f.Add("3M2I")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return // malformed input rejected: fine
		}
		// Anything accepted must survive a render/parse round trip.
		out := c.String()
		c2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", out, err)
		}
		if c2.String() != out {
			t.Fatalf("unstable round trip: %q -> %q", out, c2.String())
		}
		if c.QueryLen() != c2.QueryLen() || c.TargetLen() != c2.TargetLen() {
			t.Fatal("lengths changed across round trip")
		}
	})
}
