// Package cigar implements the Compact Idiosyncratic Gapped Alignment
// Report format that the paper's traceback procedure emits (§4.2.2), plus
// validation and statistics used by the accuracy experiments.
//
// Convention: alignments are between a query A (length m) and a target B
// (length n). An 'I' consumes a query base (insertion relative to the
// target), a 'D' consumes a target base (deletion from the query), '=' is a
// match and 'X' a mismatch; 'M' is accepted on input as "either".
package cigar

import (
	"fmt"
	"strconv"
	"strings"

	"pimnw/internal/seq"
)

// OpKind is one alignment operation kind.
type OpKind uint8

// Operation kinds in SAM extended-CIGAR notation.
const (
	Match    OpKind = iota // '=' : query base equals target base
	Mismatch               // 'X' : substitution
	Ins                    // 'I' : base present in query only
	Del                    // 'D' : base present in target only
	numKinds
)

var kindChar = [numKinds]byte{'=', 'X', 'I', 'D'}

// Char returns the SAM character for k.
func (k OpKind) Char() byte { return kindChar[k] }

// String implements fmt.Stringer.
func (k OpKind) String() string { return string(kindChar[k]) }

// ConsumesQuery reports whether k advances the query cursor.
func (k OpKind) ConsumesQuery() bool { return k != Del }

// ConsumesTarget reports whether k advances the target cursor.
func (k OpKind) ConsumesTarget() bool { return k != Ins }

// Op is a run-length encoded alignment operation.
type Op struct {
	Kind OpKind
	Len  int
}

// Cigar is a sequence of run-length encoded operations.
type Cigar []Op

// Append adds n operations of kind k, merging with the trailing op when the
// kinds are equal. It returns the extended cigar (append semantics).
func (c Cigar) Append(k OpKind, n int) Cigar {
	if n <= 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Kind == k {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, Op{Kind: k, Len: n})
}

// Reverse reverses the operation order in place and returns c. The paper's
// traceback walks from (m,n) back to the origin, so the raw op stream is
// emitted tail-first.
func (c Cigar) Reverse() Cigar {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}

// String renders the cigar in SAM notation, e.g. "120=1X3I500=".
func (c Cigar) String() string {
	var sb strings.Builder
	for _, op := range c {
		sb.WriteString(strconv.Itoa(op.Len))
		sb.WriteByte(op.Kind.Char())
	}
	return sb.String()
}

// Parse parses SAM extended-CIGAR notation. 'M' is rejected because this
// package always distinguishes '=' from 'X'; use ParseLoose to accept it.
func Parse(s string) (Cigar, error) {
	return parse(s, false)
}

// ParseLoose parses like Parse but maps 'M' to Match (the caller loses the
// match/mismatch distinction and Validate will only check lengths).
func ParseLoose(s string) (Cigar, error) {
	return parse(s, true)
}

func parse(s string, loose bool) (Cigar, error) {
	var c Cigar
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i || j == len(s) {
			return nil, fmt.Errorf("cigar: malformed near offset %d in %q", i, s)
		}
		n, err := strconv.Atoi(s[i:j])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("cigar: bad length %q", s[i:j])
		}
		var k OpKind
		switch s[j] {
		case '=':
			k = Match
		case 'X':
			k = Mismatch
		case 'I':
			k = Ins
		case 'D':
			k = Del
		case 'M':
			if !loose {
				return nil, fmt.Errorf("cigar: ambiguous op 'M' (use ParseLoose)")
			}
			k = Match
		default:
			return nil, fmt.Errorf("cigar: unknown op %q", s[j])
		}
		c = c.Append(k, n)
		i = j + 1
	}
	return c, nil
}

// QueryLen returns the number of query bases the cigar consumes.
func (c Cigar) QueryLen() int {
	n := 0
	for _, op := range c {
		if op.Kind.ConsumesQuery() {
			n += op.Len
		}
	}
	return n
}

// TargetLen returns the number of target bases the cigar consumes.
func (c Cigar) TargetLen() int {
	n := 0
	for _, op := range c {
		if op.Kind.ConsumesTarget() {
			n += op.Len
		}
	}
	return n
}

// Validate structurally checks c against the given sequence lengths alone:
// every op must have a positive length and a known kind, adjacent ops must
// have distinct kinds (canonical run-length encoding, what every aligner in
// this repository emits), and the ops must consume exactly qlen query bases
// and tlen target bases. It is the cheap first line of the result-integrity
// pipeline — the method (Cigar).Validate additionally checks '='/'X'
// columns against the concrete sequences.
func Validate(c Cigar, qlen, tlen int) error {
	qi, ti := 0, 0
	for opIdx, op := range c {
		if op.Len <= 0 {
			return fmt.Errorf("cigar: op %d has non-positive length %d", opIdx, op.Len)
		}
		if op.Kind >= numKinds {
			return fmt.Errorf("cigar: op %d has unknown kind %d", opIdx, op.Kind)
		}
		if opIdx > 0 && c[opIdx-1].Kind == op.Kind {
			return fmt.Errorf("cigar: ops %d and %d have the same kind %v (non-canonical RLE)",
				opIdx-1, opIdx, op.Kind)
		}
		if op.Kind.ConsumesQuery() {
			qi += op.Len
		}
		if op.Kind.ConsumesTarget() {
			ti += op.Len
		}
		if qi > qlen || ti > tlen {
			return fmt.Errorf("cigar: op %d overruns the sequences (%d/%d query, %d/%d target)",
				opIdx, qi, qlen, ti, tlen)
		}
	}
	if qi != qlen {
		return fmt.Errorf("cigar: consumed %d of %d query bases", qi, qlen)
	}
	if ti != tlen {
		return fmt.Errorf("cigar: consumed %d of %d target bases", ti, tlen)
	}
	return nil
}

// Stats summarises an alignment.
type Stats struct {
	Matches    int
	Mismatches int
	Insertions int // query bases inserted
	Deletions  int // target bases deleted
	GapOpens   int // number of I/D runs
	Columns    int // total alignment columns
}

// Identity is the BLAST-style identity: matches / alignment columns.
func (s Stats) Identity() float64 {
	if s.Columns == 0 {
		return 0
	}
	return float64(s.Matches) / float64(s.Columns)
}

// Stats computes alignment statistics.
func (c Cigar) Stats() Stats {
	var st Stats
	for _, op := range c {
		st.Columns += op.Len
		switch op.Kind {
		case Match:
			st.Matches += op.Len
		case Mismatch:
			st.Mismatches += op.Len
		case Ins:
			st.Insertions += op.Len
			st.GapOpens++
		case Del:
			st.Deletions += op.Len
			st.GapOpens++
		}
	}
	return st
}

// Validate checks c against the concrete sequences: lengths must be fully
// consumed and every '='/'X' column must match/mismatch accordingly.
func (c Cigar) Validate(query, target seq.Seq) error {
	qi, ti := 0, 0
	for opIdx, op := range c {
		if op.Len <= 0 {
			return fmt.Errorf("cigar: op %d has non-positive length %d", opIdx, op.Len)
		}
		switch op.Kind {
		case Match, Mismatch:
			if qi+op.Len > len(query) || ti+op.Len > len(target) {
				return fmt.Errorf("cigar: op %d overruns sequences", opIdx)
			}
			for k := 0; k < op.Len; k++ {
				same := query[qi+k] == target[ti+k]
				if same != (op.Kind == Match) {
					return fmt.Errorf("cigar: op %d (%v) column %d: query %v vs target %v",
						opIdx, op.Kind, k, query[qi+k], target[ti+k])
				}
			}
			qi += op.Len
			ti += op.Len
		case Ins:
			if qi+op.Len > len(query) {
				return fmt.Errorf("cigar: op %d insertion overruns query", opIdx)
			}
			qi += op.Len
		case Del:
			if ti+op.Len > len(target) {
				return fmt.Errorf("cigar: op %d deletion overruns target", opIdx)
			}
			ti += op.Len
		default:
			return fmt.Errorf("cigar: op %d has unknown kind %d", opIdx, op.Kind)
		}
	}
	if qi != len(query) {
		return fmt.Errorf("cigar: consumed %d of %d query bases", qi, len(query))
	}
	if ti != len(target) {
		return fmt.Errorf("cigar: consumed %d of %d target bases", ti, len(target))
	}
	return nil
}

// Replay applies the cigar to the query and returns the target it encodes:
// matched columns copy the query base, mismatched and deleted columns copy
// the target base. It errors under the same conditions as Validate.
func (c Cigar) Replay(query, target seq.Seq) (seq.Seq, error) {
	if err := c.Validate(query, target); err != nil {
		return nil, err
	}
	out := make(seq.Seq, 0, len(target))
	qi, ti := 0, 0
	for _, op := range c {
		switch op.Kind {
		case Match:
			out = append(out, query[qi:qi+op.Len]...)
			qi += op.Len
			ti += op.Len
		case Mismatch:
			out = append(out, target[ti:ti+op.Len]...)
			qi += op.Len
			ti += op.Len
		case Ins:
			qi += op.Len
		case Del:
			out = append(out, target[ti:ti+op.Len]...)
			ti += op.Len
		}
	}
	return out, nil
}

// Pretty renders a three-line human-readable alignment (query, markup,
// target) wrapped at width columns, in the style of the paper's Figure 1.
func (c Cigar) Pretty(query, target seq.Seq, width int) string {
	if width <= 0 {
		width = 60
	}
	var top, mid, bot []byte
	qi, ti := 0, 0
	for _, op := range c {
		for k := 0; k < op.Len; k++ {
			switch op.Kind {
			case Match:
				top = append(top, query[qi].Char())
				mid = append(mid, '|')
				bot = append(bot, target[ti].Char())
				qi, ti = qi+1, ti+1
			case Mismatch:
				top = append(top, query[qi].Char())
				mid = append(mid, '*')
				bot = append(bot, target[ti].Char())
				qi, ti = qi+1, ti+1
			case Ins:
				top = append(top, query[qi].Char())
				mid = append(mid, ' ')
				bot = append(bot, '-')
				qi++
			case Del:
				top = append(top, '-')
				mid = append(mid, ' ')
				bot = append(bot, target[ti].Char())
				ti++
			}
		}
	}
	var sb strings.Builder
	for off := 0; off < len(top); off += width {
		end := off + width
		if end > len(top) {
			end = len(top)
		}
		sb.Write(top[off:end])
		sb.WriteByte('\n')
		sb.Write(mid[off:end])
		sb.WriteByte('\n')
		sb.Write(bot[off:end])
		sb.WriteByte('\n')
		if end < len(top) {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
