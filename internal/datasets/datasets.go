// Package datasets generates the five evaluation workloads of the paper's
// §5. The real inputs are hardware- or access-gated (the WFA paper's
// generator output, the curated NCBI 16S dump, 38,512 proprietary PacBio
// read sets), so each generator synthesises the closest equivalent with
// the properties the experiments actually exercise: controlled read length
// and divergence for S1000/S10000/S30000, tree-structured similarity for
// the all-against-all 16S run, and high-error reads with >100 bp
// structural gaps for the PacBio consensus sets. All generators are
// deterministic in their seed.
package datasets

import (
	"fmt"
	"math/rand"

	"pimnw/internal/seq"
)

// Pair is one generated alignment input.
type Pair struct {
	ID   int
	A, B seq.Seq
}

// SyntheticSpec configures an S-dataset generator (the stand-in for the
// WFA repository's data generator the paper uses).
type SyntheticSpec struct {
	Name      string
	Pairs     int
	ReadLen   int
	LenJitter float64 // uniform +-fraction applied to ReadLen
	ErrorRate float64 // divergence between the two reads of a pair
	Seed      int64
}

// The paper's three synthetic datasets at full scale. Callers pass the
// result through Scaled to shrink the pair count for simulation.
var (
	S1000  = SyntheticSpec{Name: "S1000", Pairs: 10_000_000, ReadLen: 1000, LenJitter: 0.05, ErrorRate: 0.05, Seed: 1000}
	S10000 = SyntheticSpec{Name: "S10000", Pairs: 1_000_000, ReadLen: 10_000, LenJitter: 0.05, ErrorRate: 0.05, Seed: 10000}
	S30000 = SyntheticSpec{Name: "S30000", Pairs: 500_000, ReadLen: 30_000, LenJitter: 0.05, ErrorRate: 0.05, Seed: 30000}
)

// Scaled returns a copy with the pair count multiplied by f (minimum 1).
func (s SyntheticSpec) Scaled(f float64) SyntheticSpec {
	n := int(float64(s.Pairs) * f)
	if n < 1 {
		n = 1
	}
	out := s
	out.Pairs = n
	out.Name = fmt.Sprintf("%s/%g", s.Name, f)
	return out
}

// Generate materialises the dataset. The error mix is substitution-heavy
// (70/15/15), matching the divergence profile of same-strand sequencing
// reads; indel drift is what eventually defeats a fixed band on the longer
// datasets (Table 1's ladder).
func (s SyntheticSpec) Generate() []Pair {
	rng := rand.New(rand.NewSource(s.Seed))
	mut := seq.Mutator{
		SubRate:  0.7 * s.ErrorRate,
		InsRate:  0.15 * s.ErrorRate,
		DelRate:  0.15 * s.ErrorRate,
		IndelExt: 0.3,
	}
	pairs := make([]Pair, s.Pairs)
	for i := range pairs {
		n := s.ReadLen
		if s.LenJitter > 0 {
			span := int(float64(s.ReadLen) * s.LenJitter)
			if span > 0 {
				n += rng.Intn(2*span+1) - span
			}
		}
		a := seq.Random(rng, n)
		pairs[i] = Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}
	return pairs
}

// RRNASpec configures the 16S-like phylogeny dataset: sequences of 16S
// length evolved along a random tree, giving the all-against-all workload
// realistic clustered similarity.
type RRNASpec struct {
	Sequences  int
	Length     int     // 16S rRNA is ~1542 bases
	BranchRate float64 // divergence applied per tree edge
	// VarRegionRate adds per-branch variable-region indels (the V1-V9
	// hyper-variable regions real 16S alignments wander through), sized
	// VarRegionMin..VarRegionMax.
	VarRegionRate              float64
	VarRegionMin, VarRegionMax int
	Seed                       int64
}

// RRNA16S is the full-scale spec mirroring the curated NCBI dataset the
// paper uses (9557 complete sequences). The divergence knobs are fitted so
// a scaled population reproduces Table 1's 16S accuracy ladder.
var RRNA16S = RRNASpec{
	Sequences: 9557, Length: 1542, BranchRate: 0.035,
	VarRegionRate: 0.04, VarRegionMin: 50, VarRegionMax: 450,
	Seed: 16,
}

// Scaled returns a copy with the sequence count multiplied by f (min 2).
func (s RRNASpec) Scaled(f float64) RRNASpec {
	n := int(float64(s.Sequences) * f)
	if n < 2 {
		n = 2
	}
	out := s
	out.Sequences = n
	return out
}

// Generate evolves the population: starting from one random ancestor, new
// sequences are derived from a uniformly chosen existing member with one
// branch worth of mutations — a Yule-process phylogeny.
func (s RRNASpec) Generate() []seq.Seq {
	rng := rand.New(rand.NewSource(s.Seed))
	mut := seq.Mutator{
		SubRate:  0.8 * s.BranchRate,
		InsRate:  0.1 * s.BranchRate,
		DelRate:  0.1 * s.BranchRate,
		IndelExt: 0.3,
	}
	if s.VarRegionRate > 0 && s.Length > 0 {
		// Expected VarRegionRate variable-region events per branch.
		mut.BigGapRate = s.VarRegionRate / float64(s.Length)
		mut.BigGapMin = s.VarRegionMin
		mut.BigGapMax = s.VarRegionMax
	}
	out := make([]seq.Seq, 0, s.Sequences)
	out = append(out, seq.RandomGC(rng, s.Length, 0.55)) // 16S is GC-rich
	for len(out) < s.Sequences {
		parent := out[rng.Intn(len(out))]
		out = append(out, mut.Apply(rng, parent))
	}
	return out
}

// ReadSet is one PacBio-like set: repeated reads of the same region that
// are pairwise aligned to build a consensus (§5.4).
type ReadSet struct {
	Region seq.Seq
	Reads  []seq.Seq
}

// Pairs enumerates the all-against-all alignments within the set.
func (r ReadSet) Pairs(baseID int) []Pair {
	var out []Pair
	id := baseID
	for i := 0; i < len(r.Reads); i++ {
		for j := i + 1; j < len(r.Reads); j++ {
			out = append(out, Pair{ID: id, A: r.Reads[i], B: r.Reads[j]})
			id++
		}
	}
	return out
}

// PacBioSpec configures the long-read consensus dataset.
type PacBioSpec struct {
	Sets       int
	ReadsMin   int // 10..30 reads per set in the paper
	ReadsMax   int
	RegionMin  int
	RegionMax  int
	ErrorRate  float64 // raw PacBio reads: high error
	BigGapRate float64 // the ">100 bp gaps" the paper highlights
	BigGapMin  int
	BigGapMax  int
	Seed       int64
}

// PacBio is the full-scale spec standing in for the paper's 38,512 sets.
// The region-length range is back-derived from the paper's Table 6 DPU
// runtimes (see EXPERIMENTS.md), giving ~4.7 kb average reads; the
// structural-gap distribution (a bit over one >100 bp gap per pairwise
// alignment, sized just above 100 bp) is fitted to Table 1's PacBio
// accuracy ladder.
var PacBio = PacBioSpec{
	Sets: 38_512, ReadsMin: 10, ReadsMax: 30,
	RegionMin: 2000, RegionMax: 8000,
	ErrorRate: 0.1, BigGapRate: 0.0002, BigGapMin: 100, BigGapMax: 134,
	Seed: 54,
}

// Scaled returns a copy with the set count multiplied by f (min 1).
func (s PacBioSpec) Scaled(f float64) PacBioSpec {
	n := int(float64(s.Sets) * f)
	if n < 1 {
		n = 1
	}
	out := s
	out.Sets = n
	return out
}

// Generate materialises the read sets.
func (s PacBioSpec) Generate() []ReadSet {
	rng := rand.New(rand.NewSource(s.Seed))
	mut := seq.Mutator{
		SubRate:    s.ErrorRate / 3,
		InsRate:    s.ErrorRate / 3,
		DelRate:    s.ErrorRate / 3,
		IndelExt:   0.4,
		BigGapRate: s.BigGapRate,
		BigGapMin:  s.BigGapMin,
		BigGapMax:  s.BigGapMax,
	}
	sets := make([]ReadSet, s.Sets)
	for i := range sets {
		region := seq.Random(rng, s.RegionMin+rng.Intn(s.RegionMax-s.RegionMin+1))
		reads := make([]seq.Seq, s.ReadsMin+rng.Intn(s.ReadsMax-s.ReadsMin+1))
		for r := range reads {
			reads[r] = mut.Apply(rng, region)
		}
		sets[i] = ReadSet{Region: region, Reads: reads}
	}
	return sets
}

// AllSetPairs flattens the quadratic in-set alignments of every set.
func AllSetPairs(sets []ReadSet) []Pair {
	var out []Pair
	for _, s := range sets {
		out = append(out, s.Pairs(len(out))...)
	}
	return out
}
