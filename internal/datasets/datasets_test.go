package datasets

import (
	"testing"

	"pimnw/internal/core"
)

func TestSyntheticScaled(t *testing.T) {
	s := S1000.Scaled(0.0001)
	if s.Pairs != 1000 {
		t.Errorf("scaled pairs = %d, want 1000", s.Pairs)
	}
	if s.ReadLen != 1000 || s.ErrorRate != S1000.ErrorRate {
		t.Error("scaling altered non-count fields")
	}
	if tiny := S1000.Scaled(1e-12); tiny.Pairs != 1 {
		t.Errorf("tiny scale pairs = %d, want 1", tiny.Pairs)
	}
}

func TestSyntheticGenerate(t *testing.T) {
	spec := S10000.Scaled(0.00002) // 20 pairs of ~10k
	pairs := spec.Generate()
	if len(pairs) != spec.Pairs {
		t.Fatalf("%d pairs", len(pairs))
	}
	for _, p := range pairs {
		lo := int(float64(spec.ReadLen) * (1 - spec.LenJitter - 0.01))
		hi := int(float64(spec.ReadLen) * (1 + spec.LenJitter + 0.01))
		if len(p.A) < lo || len(p.A) > hi {
			t.Errorf("pair %d: read length %d outside [%d,%d]", p.ID, len(p.A), lo, hi)
		}
		// The mutated read should be near its template in length.
		ratio := float64(len(p.B)) / float64(len(p.A))
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("pair %d: length ratio %v", p.ID, ratio)
		}
	}
	// Divergence should be near the configured error rate: check identity
	// on one pair via full alignment.
	p := pairs[0]
	res := core.GotohAlign(p.A[:2000], p.B[:2000], core.DefaultParams())
	id := res.Cigar.Stats().Identity()
	if id < 0.90 || id > 0.99 {
		t.Errorf("pair identity = %v, want ~0.95 at 5%% error", id)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := S1000.Scaled(0.000002) // 20 pairs
	a := spec.Generate()
	b := spec.Generate()
	for i := range a {
		if !a[i].A.Equal(b[i].A) || !a[i].B.Equal(b[i].B) {
			t.Fatalf("pair %d differs between runs", i)
		}
	}
}

func TestRRNAGenerate(t *testing.T) {
	spec := RRNA16S.Scaled(0.005) // ~47 sequences
	seqs := spec.Generate()
	if len(seqs) != spec.Sequences {
		t.Fatalf("%d sequences", len(seqs))
	}
	for i, s := range seqs {
		ratio := float64(len(s)) / float64(spec.Length)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("sequence %d length %d drifted too far from %d", i, len(s), spec.Length)
		}
	}
	// GC bias of the root should persist approximately.
	if gc := seqs[0].GC(); gc < 0.5 || gc > 0.6 {
		t.Errorf("root GC = %v, want ~0.55", gc)
	}
	// Tree structure: average pairwise distance must be well below that of
	// unrelated random sequences (~0.75 per-base difference).
	d01 := core.EditDistance(seqs[1], seqs[2])
	if f := float64(d01) / float64(spec.Length); f > 0.5 {
		t.Errorf("sibling distance fraction %v suggests no shared ancestry", f)
	}
}

func TestRRNAScaledMinimum(t *testing.T) {
	if s := RRNA16S.Scaled(0); s.Sequences != 2 {
		t.Errorf("minimum sequences = %d, want 2", s.Sequences)
	}
}

func TestPacBioGenerate(t *testing.T) {
	spec := PacBio.Scaled(0.0001) // ~3 sets
	spec.RegionMin, spec.RegionMax = 2000, 4000
	sets := spec.Generate()
	if len(sets) != spec.Sets {
		t.Fatalf("%d sets", len(sets))
	}
	for si, s := range sets {
		if len(s.Reads) < spec.ReadsMin || len(s.Reads) > spec.ReadsMax {
			t.Errorf("set %d: %d reads outside [%d,%d]", si, len(s.Reads), spec.ReadsMin, spec.ReadsMax)
		}
		if len(s.Region) < spec.RegionMin || len(s.Region) > spec.RegionMax {
			t.Errorf("set %d: region %d outside range", si, len(s.Region))
		}
		for ri, r := range s.Reads {
			ratio := float64(len(r)) / float64(len(s.Region))
			if ratio < 0.6 || ratio > 1.5 {
				t.Errorf("set %d read %d: length ratio %v", si, ri, ratio)
			}
		}
	}
}

func TestPacBioHasBigGaps(t *testing.T) {
	// The paper's PacBio sets contain gaps exceeding 100 bp; with the
	// structural-gap model on, some read should show a >=100 base run of
	// insertions or deletions against its region.
	spec := PacBioSpec{
		Sets: 4, ReadsMin: 3, ReadsMax: 4,
		RegionMin: 1500, RegionMax: 2500,
		ErrorRate: 0.1, BigGapRate: 0.001, BigGapMin: 100, BigGapMax: 400,
		Seed: 9,
	}
	found := false
	p := core.DefaultParams()
	for _, s := range spec.Generate() {
		for _, r := range s.Reads {
			res := core.GotohAlign(r, s.Region, p)
			for _, op := range res.Cigar {
				if (op.Kind.String() == "I" || op.Kind.String() == "D") && op.Len >= 100 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no structural gap >= 100 bp found in any read")
	}
}

func TestReadSetPairs(t *testing.T) {
	spec := PacBio.Scaled(0.00005) // ~1 set
	spec.RegionMin, spec.RegionMax = 500, 800
	sets := spec.Generate()
	n := len(sets[0].Reads)
	pairs := sets[0].Pairs(100)
	if len(pairs) != n*(n-1)/2 {
		t.Fatalf("%d pairs for %d reads", len(pairs), n)
	}
	if pairs[0].ID != 100 {
		t.Errorf("baseID not honoured: %d", pairs[0].ID)
	}
	all := AllSetPairs(sets)
	want := 0
	for _, s := range sets {
		want += len(s.Reads) * (len(s.Reads) - 1) / 2
	}
	if len(all) != want {
		t.Errorf("AllSetPairs = %d, want %d", len(all), want)
	}
	for i, p := range all {
		if p.ID != i {
			t.Fatalf("IDs not dense: %d at %d", p.ID, i)
		}
	}
}
