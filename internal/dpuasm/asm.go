package dpuasm

import (
	"fmt"
	"strconv"
	"strings"
)

// fixup is a forward branch reference awaiting label resolution.
type fixup struct {
	instr int
	label string
	line  int
}

// Assemble parses assembly text into a Program.
//
// Syntax, one instruction per line ('#' or ';' start a comment):
//
//	label:
//	add   rd, ra, rb|imm [, cond, label]   ; ALU ops, optional fused jump
//	move  rd, ra|imm     [, cond, label]
//	cmpb4 rd, ra, rb
//	lw    rd, ra, imm                      ; rd = wram32[ra+imm]
//	lbu   rd, ra, imm
//	sw    rs, ra, imm                      ; wram32[ra+imm] = rs
//	sb    rs, ra, imm
//	jump  label
//	halt
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}, Source: src}
	var fixups []fixup

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := p.Labels[name]; dup {
				return nil, fmt.Errorf("dpuasm: line %d: duplicate label %q", ln+1, name)
			}
			p.Labels[name] = len(p.Instrs)
			continue
		}

		fields := strings.Fields(line)
		mnemonic := fields[0]
		op, ok := opNames[mnemonic]
		if !ok {
			return nil, fmt.Errorf("dpuasm: line %d: unknown mnemonic %q", ln+1, mnemonic)
		}
		args := splitArgs(strings.TrimSpace(line[len(mnemonic):]))
		in := Instr{Op: op, Target: -1}

		parseErr := func(msg string) error {
			return fmt.Errorf("dpuasm: line %d: %s: %q", ln+1, msg, raw)
		}
		switch op {
		case OpHalt:
			if len(args) != 0 {
				return nil, parseErr("halt takes no operands")
			}
		case OpJump:
			if len(args) != 1 {
				return nil, parseErr("jump takes one label")
			}
			fixups = append(fixups, fixup{len(p.Instrs), args[0], ln + 1})
		case OpLw, OpLbu, OpSw, OpSb:
			if len(args) != 3 {
				return nil, parseErr("memory ops take rd/rs, ra, imm")
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			ra, err := parseReg(args[1])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			imm, err := strconv.ParseInt(args[2], 0, 32)
			if err != nil {
				return nil, parseErr("bad displacement")
			}
			in.Rd, in.Ra, in.Imm = rd, ra, int32(imm)
		case OpMove:
			if len(args) != 2 && len(args) != 4 {
				return nil, parseErr("move takes rd, src [, cond, label]")
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			in.Rd = rd
			if ra, err := parseReg(args[1]); err == nil {
				in.Ra = ra
			} else if imm, err := strconv.ParseInt(args[1], 0, 32); err == nil {
				in.Imm, in.UseImm = int32(imm), true
			} else {
				return nil, parseErr("bad move source")
			}
			if len(args) == 4 {
				if err := parseFused(&in, args[2], args[3], &fixups, len(p.Instrs), ln+1); err != nil {
					return nil, err
				}
			}
		case OpCmpB4:
			if len(args) != 3 {
				return nil, parseErr("cmpb4 takes rd, ra, rb")
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			ra, err := parseReg(args[1])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			rb, err := parseReg(args[2])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			in.Rd, in.Ra, in.Rb = rd, ra, rb
		default: // triadic ALU
			if len(args) != 3 && len(args) != 5 {
				return nil, parseErr("ALU ops take rd, ra, rb|imm [, cond, label]")
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			ra, err := parseReg(args[1])
			if err != nil {
				return nil, parseErr(err.Error())
			}
			in.Rd, in.Ra = rd, ra
			if rb, err := parseReg(args[2]); err == nil {
				in.Rb = rb
			} else if imm, err := strconv.ParseInt(args[2], 0, 32); err == nil {
				in.Imm, in.UseImm = int32(imm), true
			} else {
				return nil, parseErr("bad second operand")
			}
			if len(args) == 5 {
				if err := parseFused(&in, args[3], args[4], &fixups, len(p.Instrs), ln+1); err != nil {
					return nil, err
				}
			}
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("dpuasm: line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instr].Target = target
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseFused(in *Instr, condStr, label string, fixups *[]fixup, idx, line int) error {
	cond, ok := condNames[condStr]
	if !ok {
		return fmt.Errorf("dpuasm: line %d: unknown condition %q", line, condStr)
	}
	in.Cond = cond
	*fixups = append(*fixups, fixup{idx, label, line})
	return nil
}
