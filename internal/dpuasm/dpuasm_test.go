package dpuasm

import (
	"math/rand"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/pim"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
; a tiny program
  move r1, 5
  move r2, 7
  add  r3, r1, r2
loop:
  sub  r3, r3, 1, gtz, loop
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("%d instructions", len(p.Instrs))
	}
	if p.Labels["loop"] != 3 {
		t.Errorf("label at %d", p.Labels["loop"])
	}
	vm := NewVM(64)
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	if vm.Regs[3] != 0 {
		t.Errorf("r3 = %d", vm.Regs[3])
	}
	// 3 setup + 12 loop iterations.
	if vm.Executed != 3+12 {
		t.Errorf("executed %d", vm.Executed)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2, r3",
		"add r1, r2",
		"add r99, r1, r2",
		"jump nowhere",
		"add r1, r2, r3, gz, loop",
		"lw r1, r2",
		"dup:\ndup:",
		"move r1, bananas",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled %q", src)
		}
	}
}

func TestVMALUOps(t *testing.T) {
	cases := []struct {
		src  string
		want int32
	}{
		{"move r1, 6\n move r2, 3\n add r0, r1, r2\n halt", 9},
		{"move r1, 6\n move r2, 3\n sub r0, r1, r2\n halt", 3},
		{"move r1, 6\n move r2, 3\n and r0, r1, r2\n halt", 2},
		{"move r1, 6\n move r2, 3\n or  r0, r1, r2\n halt", 7},
		{"move r1, 6\n move r2, 3\n xor r0, r1, r2\n halt", 5},
		{"move r1, 1\n lsl r0, r1, 4\n halt", 16},
		{"move r1, -8\n asr r0, r1, 1\n halt", -4},
		{"move r1, -8\n lsr r0, r1, 28\n halt", 15},
	}
	for _, tc := range cases {
		p, err := Assemble(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		vm := NewVM(16)
		if err := vm.Run(p); err != nil {
			t.Fatal(err)
		}
		if vm.Regs[0] != tc.want {
			t.Errorf("%q: r0 = %d, want %d", tc.src, vm.Regs[0], tc.want)
		}
	}
}

func TestVMCmpB4(t *testing.T) {
	p, err := Assemble("cmpb4 r0, r1, r2\n halt")
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(16)
	vm.Regs[1] = int32(uint32(0x41_43_47_54)) // bytes T G C A (LE)
	vm.Regs[2] = int32(uint32(0x41_00_47_54))
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	if uint32(vm.Regs[0]) != 0xFF_00_FF_FF {
		t.Errorf("mask = %#x", uint32(vm.Regs[0]))
	}
}

func TestVMMemory(t *testing.T) {
	p, err := Assemble(`
  move r1, 8
  move r2, -123456
  sw   r2, r1, 0
  lw   r3, r1, 0
  sb   r2, r1, 4
  lbu  r4, r1, 4
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(32)
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	if vm.Regs[3] != -123456 {
		t.Errorf("word round trip = %d", vm.Regs[3])
	}
	if vm.Regs[4] != int32(byte(-123456&0xFF)) {
		t.Errorf("byte round trip = %d", vm.Regs[4])
	}
}

func TestVMOutOfBounds(t *testing.T) {
	for _, src := range []string{
		"move r1, 1000\n lw r2, r1, 0\n halt",
		"move r1, -4\n sw r1, r1, 0\n halt",
	} {
		p, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := NewVM(64).Run(p); err == nil {
			t.Errorf("%q: out-of-bounds access succeeded", src)
		}
	}
}

func TestVMRunawayGuard(t *testing.T) {
	p, err := Assemble("loop:\n jump loop")
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(16)
	vm.MaxInstructions = 1000
	if err := vm.Run(p); err == nil {
		t.Error("infinite loop not aborted")
	}
}

// randomCellInput builds a realistic anti-diagonal state: mostly finite
// scores with NegInf padding, random shifts, random bases.
func randomCellInput(rng *rand.Rand, w int) CellInput {
	in := CellInput{
		W: w, D: rng.Intn(2), DPrev: rng.Intn(2),
		HPrev:  make([]int32, w+2),
		HCur:   make([]int32, w+2),
		ICur:   make([]int32, w+2),
		DCur:   make([]int32, w+2),
		ABases: make([]byte, w),
		BBases: make([]byte, w),
		Params: core.DefaultParams(),
	}
	fill := func(arr []int32) {
		for i := range arr {
			if i == 0 || i == len(arr)-1 || rng.Intn(10) == 0 {
				arr[i] = core.NegInf
			} else {
				arr[i] = int32(rng.Intn(4000) - 2000)
			}
		}
	}
	fill(in.HPrev)
	fill(in.HCur)
	fill(in.ICur)
	fill(in.DCur)
	for i := range in.ABases {
		in.ABases[i] = byte(rng.Intn(4))
		in.BBases[i] = byte(rng.Intn(4))
	}
	return in
}

func TestKernelsMatchReference(t *testing.T) {
	compiled, err := Assemble(CompiledKernel)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := HandKernel()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		in := randomCellInput(rng, 32)
		want := in.Reference()
		for _, tc := range []struct {
			name string
			prog *Program
		}{{"compiled", compiled}, {"hand", hand}} {
			got, err := in.Run(tc.prog)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, tc.name, err)
			}
			for c := 0; c < in.W; c++ {
				if got.H[c] != want.H[c] || got.I[c] != want.I[c] || got.D[c] != want.D[c] {
					t.Fatalf("trial %d %s cell %d: H/I/D = %d/%d/%d, want %d/%d/%d",
						trial, tc.name, c, got.H[c], got.I[c], got.D[c], want.H[c], want.I[c], want.D[c])
				}
				if got.BT[c] != want.BT[c] {
					t.Fatalf("trial %d %s cell %d: BT %04b, want %04b",
						trial, tc.name, c, got.BT[c], want.BT[c])
				}
			}
		}
	}
}

func TestKernelInstructionCounts(t *testing.T) {
	compiled, err := Assemble(CompiledKernel)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := HandKernel()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var compiledTotal, handTotal, cells int64
	for trial := 0; trial < 20; trial++ {
		in := randomCellInput(rng, 64)
		outC, err := in.Run(compiled)
		if err != nil {
			t.Fatal(err)
		}
		outH, err := in.Run(hand)
		if err != nil {
			t.Fatal(err)
		}
		compiledTotal += outC.Executed
		handTotal += outH.Executed
		cells += int64(in.W)
	}
	perCellC := float64(compiledTotal) / float64(cells)
	perCellH := float64(handTotal) / float64(cells)
	ratio := perCellC / perCellH
	t.Logf("instructions/cell: compiled=%.1f hand=%.1f ratio=%.2f", perCellC, perCellH, ratio)

	// The executable kernels must substantiate the cost-table mechanism:
	// the hand version strictly cheaper, with a ratio in Table 7's range.
	if perCellH >= perCellC {
		t.Fatal("hand kernel not cheaper than compiled kernel")
	}
	if ratio < 1.3 || ratio > 2.0 {
		t.Errorf("compiled/hand ratio %.2f outside the paper's 1.36-1.69 window", ratio)
	}
	// And sit within 2x of the calibrated cost-table figures (the tables
	// additionally charge window bookkeeping the driver does here).
	if perCellH < float64(pim.Asm.CellTB)/2 || perCellH > float64(pim.Asm.CellTB)*2 {
		t.Errorf("hand kernel %.1f instr/cell vs cost table %d", perCellH, pim.Asm.CellTB)
	}
	if perCellC < float64(pim.PureC.CellTB)/2 || perCellC > float64(pim.PureC.CellTB)*2 {
		t.Errorf("compiled kernel %.1f instr/cell vs cost table %d", perCellC, pim.PureC.CellTB)
	}
}

func TestHandKernelRequiresUnrollableWidth(t *testing.T) {
	hand, err := HandKernel()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	in := randomCellInput(rng, 8) // multiple of 4: fine
	if _, err := in.Run(hand); err != nil {
		t.Fatalf("w=8: %v", err)
	}
}

func TestCellInputValidation(t *testing.T) {
	compiled, _ := Assemble(CompiledKernel)
	in := CellInput{W: 8, Params: core.DefaultParams()}
	if _, err := in.Run(compiled); err == nil {
		t.Error("unsized input accepted")
	}
}

func TestScoreKernelsMatchReference(t *testing.T) {
	compiled, err := Assemble(CompiledScoreKernel)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := HandScoreKernel()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		in := randomCellInput(rng, 32)
		want := in.Reference()
		for _, tc := range []struct {
			name string
			prog *Program
		}{{"compiled-score", compiled}, {"hand-score", hand}} {
			got, err := in.Run(tc.prog)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, tc.name, err)
			}
			for c := 0; c < in.W; c++ {
				if got.H[c] != want.H[c] || got.I[c] != want.I[c] || got.D[c] != want.D[c] {
					t.Fatalf("trial %d %s cell %d: H/I/D = %d/%d/%d, want %d/%d/%d",
						trial, tc.name, c, got.H[c], got.I[c], got.D[c], want.H[c], want.I[c], want.D[c])
				}
			}
		}
	}
}

func TestScoreKernelRatioSmallerThanTraceback(t *testing.T) {
	// The Table 7 16S mechanism: with no traceback nibble in the loop,
	// the hand optimisation wins less.
	progs := map[string]*Program{}
	var err error
	if progs["ct"], err = Assemble(CompiledKernel); err != nil {
		t.Fatal(err)
	}
	if progs["ht"], err = HandKernel(); err != nil {
		t.Fatal(err)
	}
	if progs["cs"], err = Assemble(CompiledScoreKernel); err != nil {
		t.Fatal(err)
	}
	if progs["hs"], err = HandScoreKernel(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := map[string]int64{}
	var cells int64
	for trial := 0; trial < 10; trial++ {
		in := randomCellInput(rng, 64)
		for name, prog := range progs {
			out, err := in.Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			counts[name] += out.Executed
		}
		cells += int64(in.W)
	}
	tbRatio := float64(counts["ct"]) / float64(counts["ht"])
	scoreRatio := float64(counts["cs"]) / float64(counts["hs"])
	scoreCompiled := float64(counts["cs"]) / float64(cells)
	t.Logf("instr/cell: tb compiled=%.1f hand=%.1f (%.2fx); score compiled=%.1f hand=%.1f (%.2fx)",
		float64(counts["ct"])/float64(cells), float64(counts["ht"])/float64(cells), tbRatio,
		scoreCompiled, float64(counts["hs"])/float64(cells), scoreRatio)
	// Both cell loops gain from the hand optimisation within a plausible
	// window. Note the measured *cell-loop* ratio is not smaller for the
	// score-only variant — dropping the BT assembly removes cheap
	// straight-line ops, so fusion's relative share grows. Table 7's
	// smaller 16S gain therefore comes from the sequential traceback
	// *walk* that score-only workloads skip (modelled by the cost tables'
	// TracebackCol: 96 vs 56), not from the cell loop; the system-level
	// Table 7 run reproduces the 1.37 with exactly that split.
	for name, r := range map[string]float64{"tb": tbRatio, "score": scoreRatio} {
		if r < 1.3 || r > 2.0 {
			t.Errorf("%s compiled/hand ratio %.2f outside a plausible window", name, r)
		}
	}
	// Score kernels must be cheaper than their traceback counterparts,
	// and the compiled score loop should sit near PureC.CellScore (44).
	if counts["cs"] >= counts["ct"] || counts["hs"] >= counts["ht"] {
		t.Error("score-only kernels not cheaper than traceback kernels")
	}
	if scoreCompiled < float64(pim.PureC.CellScore)*0.7 || scoreCompiled > float64(pim.PureC.CellScore)*1.5 {
		t.Errorf("compiled score loop %.1f instr/cell vs cost table %d", scoreCompiled, pim.PureC.CellScore)
	}
}
