package dpuasm

import (
	"fmt"
	"strings"
)

// Score-only variants of the two cell kernels: no traceback nibble is
// assembled or stored (the 16S workload of §5.3). Comparing their
// instruction counts against the traceback kernels reproduces the
// *mechanism* behind Table 7's 16S row — with less code in the loop, the
// hand optimisation has less to win.

// CompiledScoreKernel is the compiler-style score-only loop.
const CompiledScoreKernel = `
loop:
  ; ---- I ----
  lw   r16, r0, 0
  sub  r16, r16, r12
  lw   r17, r2, 0
  sub  r17, r17, r13
  sub  r18, r17, r16
  move r19, r18
  sub  r19, r19, 0, gez, i_done
  move r17, r16
i_done:
  sw   r17, r6, 0
  ; ---- D ----
  lw   r16, r0, 4
  sub  r16, r16, r12
  lw   r19, r3, 0
  sub  r19, r19, r13
  sub  r18, r19, r16
  move r21, r18
  sub  r21, r21, 0, gez, d_done
  move r19, r16
d_done:
  sw   r19, r7, 0
  ; ---- diagonal ----
  lw   r22, r4, 0
  lbu  r16, r9, 0
  lbu  r18, r10, 0
  sub  r18, r16, r18
  move r21, r18
  sub  r21, r21, 0, z, is_match
  add  r22, r22, r15
  jump diag_done
is_match:
  add  r22, r22, r14
diag_done:
  sub  r18, r17, r22
  move r21, r18
  sub  r21, r21, 0, lez, no_i
  move r22, r17
no_i:
  sub  r18, r19, r22
  move r21, r18
  sub  r21, r21, 0, lez, no_d
  move r22, r19
no_d:
  sw   r22, r5, 0
  add  r0, r0, 4
  add  r2, r2, 4
  add  r3, r3, 4
  add  r4, r4, 4
  add  r5, r5, 4
  add  r6, r6, 4
  add  r7, r7, 4
  add  r9, r9, 1
  add  r10, r10, 1
  sub  r11, r11, 1
  move r21, r11
  sub  r21, r21, 0, gtz, loop
  halt
`

// HandScoreKernel is the hand-optimised score-only loop (fused jumps,
// cmpb4, 4x unroll).
func HandScoreKernel() (*Program, error) {
	var sb strings.Builder
	sb.WriteString(`
loop:
  lw    r21, r9, 0
  lw    r18, r10, 0
  cmpb4 r21, r21, r18
`)
	for k := 0; k < 4; k++ {
		fmt.Fprintf(&sb, `
  ; ---- cell %[1]d ----
  lw   r16, r0, %[2]d
  lw   r17, r2, %[2]d
  sub  r16, r16, r12
  sub  r17, r17, r13
  sub  r18, r17, r16, gez, idone%[1]d
  move r17, r16
idone%[1]d:
  sw   r17, r6, %[2]d
  lw   r16, r0, %[3]d
  lw   r19, r3, %[2]d
  sub  r16, r16, r12
  sub  r19, r19, r13
  sub  r18, r19, r16, gez, ddone%[1]d
  move r19, r16
ddone%[1]d:
  sw   r19, r7, %[2]d
  lw   r22, r4, %[2]d
  lsr  r21, r21, 1, par, ismatch%[1]d
  add  r22, r22, r15
  jump diagdone%[1]d
ismatch%[1]d:
  add  r22, r22, r14
diagdone%[1]d:
  lsr  r21, r21, 7
  sub  r18, r17, r22, lez, noi%[1]d
  move r22, r17
noi%[1]d:
  sub  r18, r19, r22, lez, nod%[1]d
  move r22, r19
nod%[1]d:
  sw   r22, r5, %[2]d
`, k, 4*k, 4*k+4)
	}
	sb.WriteString(`
  add  r0, r0, 16
  add  r2, r2, 16
  add  r3, r3, 16
  add  r4, r4, 16
  add  r5, r5, 16
  add  r6, r6, 16
  add  r7, r7, 16
  add  r9, r9, 4
  add  r10, r10, 4
  sub  r11, r11, 4, gtz, loop
  halt
`)
	return Assemble(sb.String())
}
