package dpuasm

import (
	"fmt"
	"strings"

	"pimnw/internal/core"
)

// This file carries the paper's critical inner loop — the anti-diagonal
// cell update of §4.2.1 with the traceback nibble of §4.2.2 — written
// twice in DPU assembly, mirroring §4.2.4 / §5.5:
//
//   - CompiledKernel: the code shape the DPU's LLVM backend produces —
//     no fused jumps (a comparison is a sub plus a separate branch), no
//     cmpb4 (bases compared one byte pair at a time), and conservative
//     register allocation that reloads operands.
//   - HandKernel: the hand-optimised shape — every branch fused into the
//     producing ALU instruction, the body unrolled four cells deep so one
//     cmpb4 answers four match tests (consumed with the shift-and-
//     jump-on-parity idiom), and pointer arithmetic folded into load/store
//     displacements.
//
// The tests verify both compute exactly the reference recurrence and
// report instructions/cell; the measured ratio is the executable form of
// Table 7's speedup.

// Register conventions shared by both kernels.
//
//	r0  hCur base (window index d-1 start; +4 gives the left neighbour)
//	r2  iCur base (index d-1 start)
//	r3  dCur base (index d start)
//	r4  hPrev base (index d+d'-1 start)
//	r5  hNext out, r6 iNext out, r7 dNext out, r8 BT byte out
//	r9  query bases (byte each), r10 target bases (byte each)
//	r11 cells remaining
//	r12 open+ext penalty, r13 ext penalty, r14 match score, r15 mismatch
//	r16-r23 temporaries
const kernelRegDoc = 0 // (documentation anchor)

// CompiledKernel processes one cell per iteration, compiler-style.
const CompiledKernel = `
loop:
  ; ---- I (vertical gap) ----
  lw   r16, r0, 0          ; hUp
  sub  r16, r16, r12       ; iOpen
  lw   r17, r2, 0          ; iUp
  sub  r17, r17, r13       ; iExt
  move r20, 0              ; nibble
  sub  r18, r17, r16       ; compare (no fusion: separate branch below)
  move r19, r18            ; compiler keeps the flag value alive
  sub  r19, r19, 0, gez, i_ext
  move r17, r16            ; take the open
  jump i_done
i_ext:
  or   r20, r20, 4
i_done:
  sw   r17, r6, 0
  ; ---- D (horizontal gap) ----
  lw   r16, r0, 4          ; hLeft
  sub  r16, r16, r12       ; dOpen
  lw   r19, r3, 0          ; dLeft
  sub  r19, r19, r13       ; dExt
  sub  r18, r19, r16
  move r21, r18
  sub  r21, r21, 0, gez, d_ext
  move r19, r16
  jump d_done
d_ext:
  or   r20, r20, 8
d_done:
  sw   r19, r7, 0
  ; ---- diagonal, byte-at-a-time match test ----
  lw   r22, r4, 0          ; hDiag
  lbu  r16, r9, 0
  lbu  r18, r10, 0
  sub  r18, r16, r18
  move r21, r18
  sub  r21, r21, 0, z, is_match
  add  r22, r22, r15
  or   r20, r20, 1
  jump diag_done
is_match:
  add  r22, r22, r14
diag_done:
  ; ---- best-of-three with origin tracking ----
  sub  r18, r17, r22
  move r21, r18
  sub  r21, r21, 0, lez, no_i
  move r22, r17
  and  r20, r20, 12
  or   r20, r20, 2
no_i:
  sub  r18, r19, r22
  move r21, r18
  sub  r21, r21, 0, lez, no_d
  move r22, r19
  and  r20, r20, 12
  or   r20, r20, 3
no_d:
  sw   r22, r5, 0
  sb   r20, r8, 0
  ; ---- pointer advances ----
  add  r0, r0, 4
  add  r2, r2, 4
  add  r3, r3, 4
  add  r4, r4, 4
  add  r5, r5, 4
  add  r6, r6, 4
  add  r7, r7, 4
  add  r8, r8, 1
  add  r9, r9, 1
  add  r10, r10, 1
  sub  r11, r11, 1
  move r21, r11
  sub  r21, r21, 0, gtz, loop
  halt
`

// HandKernel returns the hand-optimised program: four cells per iteration,
// one cmpb4 per four match tests, fused jumps throughout, displacement
// addressing instead of per-cell pointer bumps. The unrolled body is
// generated mechanically (it is what a hand-unroller produces).
func HandKernel() (*Program, error) {
	var sb strings.Builder
	sb.WriteString(`
loop:
  lw    r21, r9, 0          ; four query bases
  lw    r18, r10, 0         ; four target bases
  cmpb4 r21, r21, r18       ; match mask, consumed low byte first
`)
	for k := 0; k < 4; k++ {
		fmt.Fprintf(&sb, `
  ; ---- cell %[1]d ----
  lw   r16, r0, %[2]d        ; hUp
  lw   r17, r2, %[2]d        ; iUp
  sub  r16, r16, r12
  sub  r17, r17, r13
  move r20, 0
  sub  r18, r17, r16, gez, iext%[1]d
  move r17, r16
  jump idone%[1]d
iext%[1]d:
  or   r20, r20, 4
idone%[1]d:
  sw   r17, r6, %[2]d
  lw   r16, r0, %[3]d        ; hLeft
  lw   r19, r3, %[2]d        ; dLeft
  sub  r16, r16, r12
  sub  r19, r19, r13
  sub  r18, r19, r16, gez, dext%[1]d
  move r19, r16
  jump ddone%[1]d
dext%[1]d:
  or   r20, r20, 8
ddone%[1]d:
  sw   r19, r7, %[2]d
  lw   r22, r4, %[2]d        ; hDiag
  lsr  r21, r21, 1, par, ismatch%[1]d ; shift fused with jump on parity
  add  r22, r22, r15
  or   r20, r20, 1
  jump diagdone%[1]d
ismatch%[1]d:
  add  r22, r22, r14
diagdone%[1]d:
  lsr  r21, r21, 7          ; retire the rest of this mask byte
  sub  r18, r17, r22, lez, noi%[1]d
  move r22, r17
  and  r20, r20, 12
  or   r20, r20, 2
noi%[1]d:
  sub  r18, r19, r22, lez, nod%[1]d
  move r22, r19
  and  r20, r20, 12
  or   r20, r20, 3
nod%[1]d:
  sw   r22, r5, %[2]d
  sb   r20, r8, %[1]d
`, k, 4*k, 4*k+4)
	}
	sb.WriteString(`
  add  r0, r0, 16
  add  r2, r2, 16
  add  r3, r3, 16
  add  r4, r4, 16
  add  r5, r5, 16
  add  r6, r6, 16
  add  r7, r7, 16
  add  r8, r8, 4
  add  r9, r9, 4
  add  r10, r10, 4
  sub  r11, r11, 4, gtz, loop
  halt
`)
	return Assemble(sb.String())
}

// CellInput is one anti-diagonal's worth of microkernel state. The score
// arrays carry one padding slot on each side (window indices -1 and w) so
// the shifted neighbour reads of §4.2.1 never branch in the hot loop —
// exactly how the real kernel lays WRAM out.
type CellInput struct {
	W      int     // cells in the window (HandKernel requires W % 4 == 0)
	D      int     // this step's window shift (0 or 1)
	DPrev  int     // previous step's shift
	HPrev  []int32 // len W+2: H of anti-diagonal t-1, padded
	HCur   []int32 // len W+2: H of t
	ICur   []int32 // len W+2
	DCur   []int32 // len W+2
	ABases []byte  // len W: query base per cell
	BBases []byte  // len W: target base per cell
	Params core.Params
}

// CellOutput is the computed next anti-diagonal.
type CellOutput struct {
	H, I, D  []int32
	BT       []byte
	Executed int64 // instructions issued
}

// wram layout offsets for the driver.
func (in CellInput) layout() (hp, hc, ic, dc, oh, oi, od, bt, ab, bb, total int) {
	padded := 4 * (in.W + 2)
	out := 4 * in.W
	hp = 0
	hc = hp + padded
	ic = hc + padded
	dc = ic + padded
	oh = dc + padded
	oi = oh + out
	od = oi + out
	bt = od + out
	ab = bt + align8(in.W)
	bb = ab + align8(in.W)
	total = bb + align8(in.W) + 8
	return
}

func align8(n int) int { return (n + 7) &^ 7 }

// Run executes a cell kernel over the input and returns the next
// anti-diagonal.
func (in CellInput) Run(prog *Program) (CellOutput, error) {
	var out CellOutput
	if len(in.HPrev) != in.W+2 || len(in.HCur) != in.W+2 ||
		len(in.ICur) != in.W+2 || len(in.DCur) != in.W+2 {
		return out, fmt.Errorf("dpuasm: score arrays must have %d entries (W+2)", in.W+2)
	}
	if len(in.ABases) != in.W || len(in.BBases) != in.W {
		return out, fmt.Errorf("dpuasm: base arrays must have %d entries", in.W)
	}
	hp, hc, ic, dc, oh, oi, od, bt, ab, bb, total := in.layout()
	vm := NewVM(total)
	put := func(base int, arr []int32) {
		for i, v := range arr {
			vm.SetWord32(base+4*i, v)
		}
	}
	put(hp, in.HPrev)
	put(hc, in.HCur)
	put(ic, in.ICur)
	put(dc, in.DCur)
	copy(vm.WRAM[ab:], in.ABases)
	copy(vm.WRAM[bb:], in.BBases)

	// Stream base pointers per the §4.2.1 index mapping (+1 for the pad).
	vm.Regs[0] = int32(hc + 4*in.D)            // hUp at index d-1 (pad +1)
	vm.Regs[2] = int32(ic + 4*in.D)            // iUp
	vm.Regs[3] = int32(dc + 4*(in.D+1))        // dLeft at index d
	vm.Regs[4] = int32(hp + 4*(in.D+in.DPrev)) // diag at index d+d'-1
	vm.Regs[5] = int32(oh)
	vm.Regs[6] = int32(oi)
	vm.Regs[7] = int32(od)
	vm.Regs[8] = int32(bt)
	vm.Regs[9] = int32(ab)
	vm.Regs[10] = int32(bb)
	vm.Regs[11] = int32(in.W)
	vm.Regs[12] = in.Params.GapOpen + in.Params.GapExt
	vm.Regs[13] = in.Params.GapExt
	vm.Regs[14] = in.Params.Match
	vm.Regs[15] = in.Params.Mismatch

	if err := vm.Run(prog); err != nil {
		return out, err
	}
	out.H = make([]int32, in.W)
	out.I = make([]int32, in.W)
	out.D = make([]int32, in.W)
	out.BT = make([]byte, in.W)
	for p := 0; p < in.W; p++ {
		out.H[p] = vm.Word32(oh + 4*p)
		out.I[p] = vm.Word32(oi + 4*p)
		out.D[p] = vm.Word32(od + 4*p)
		out.BT[p] = vm.WRAM[bt+p]
	}
	out.Executed = vm.Executed
	return out, nil
}

// Reference computes the same cell update in plain Go (the semantics both
// assembly kernels must reproduce bit for bit).
func (in CellInput) Reference() CellOutput {
	var out CellOutput
	p := in.Params
	open := p.GapOpen + p.GapExt
	out.H = make([]int32, in.W)
	out.I = make([]int32, in.W)
	out.D = make([]int32, in.W)
	out.BT = make([]byte, in.W)
	for c := 0; c < in.W; c++ {
		hUp := in.HCur[c+in.D]
		iUp := in.ICur[c+in.D]
		hLeft := in.HCur[c+in.D+1]
		dLeft := in.DCur[c+in.D+1]
		hDiag := in.HPrev[c+in.D+in.DPrev]

		var nib byte
		iOpen := hUp - open
		iv := iOpen
		if ext := iUp - p.GapExt; ext >= iOpen {
			iv = ext
			nib |= 4
		}
		dOpen := hLeft - open
		dv := dOpen
		if ext := dLeft - p.GapExt; ext >= dOpen {
			dv = ext
			nib |= 8
		}
		best := hDiag + p.Mismatch
		if in.ABases[c] == in.BBases[c] {
			best = hDiag + p.Match
		} else {
			nib |= 1
		}
		if iv > best {
			best = iv
			nib = nib&12 | 2
		}
		if dv > best {
			best = dv
			nib = nib&12 | 3
		}
		out.H[c] = best
		out.I[c] = iv
		out.D[c] = dv
		out.BT[c] = nib
	}
	return out
}
