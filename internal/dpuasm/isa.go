// Package dpuasm implements a small assembler and interpreter for a
// UPMEM-DPU-style instruction set (§2.1 of the paper): a triadic 32-bit
// RISC with *fused jumps* — every ALU instruction can branch on a
// condition of its own result at zero extra cost — and the one vector
// instruction the paper's hand-optimised kernel leans on, cmpb4 (compare
// four bytes at once). The package exists to make the kernel cost tables
// executable: internal/dpuasm/kernel.go carries the anti-diagonal inner
// loop in two variants (compiler-style and hand-optimised, §4.2.4), the
// tests verify both compute exactly the reference recurrences, and the
// measured instructions-per-cell substantiate the pim.CostTable figures
// and Table 7's speedup mechanism.
package dpuasm

import "fmt"

// NumRegs is the number of general-purpose registers a tasklet context
// holds (the DPU has 24 working registers per thread).
const NumRegs = 24

// Op is an instruction opcode.
type Op uint8

// Opcodes. Loads/stores address WRAM only, as on the real DPU (MRAM is
// reached through the DMA engine, which the kernel issues outside this
// inner loop).
const (
	OpAdd Op = iota
	OpSub
	OpAnd
	OpOr
	OpXor
	OpLsl // logical shift left
	OpLsr // logical shift right
	OpAsr // arithmetic shift right
	OpMove
	OpCmpB4 // rd[byte i] = 0xFF if ra[byte i] == rb[byte i], else 0
	OpLw    // rd = *(int32*)(wram + ra + imm)
	OpLbu   // rd = *(uint8*)(wram + ra + imm)
	OpSw    // *(int32*)(wram + ra + imm) = rb
	OpSb    // *(uint8*)(wram + ra + imm) = rb (low byte)
	OpJump  // unconditional branch
	OpHalt
)

var opNames = map[string]Op{
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"lsl": OpLsl, "lsr": OpLsr, "asr": OpAsr, "move": OpMove,
	"cmpb4": OpCmpB4, "lw": OpLw, "lbu": OpLbu, "sw": OpSw, "sb": OpSb,
	"jump": OpJump, "halt": OpHalt,
}

// Cond is a fused-jump condition evaluated on the instruction's result.
// The DPU pipeline's re-entry restriction makes these branches free
// (§2.1), which is why the hand-optimised kernel prefers them.
type Cond uint8

// Conditions. CondPar/CondNPar test the result's lowest bit — the
// "shift fused with a jump on parity" idiom §5.5 describes for consuming
// cmpb4 masks.
const (
	CondNone Cond = iota
	CondZ         // result == 0
	CondNZ        // result != 0
	CondLTZ       // result < 0
	CondGEZ       // result >= 0
	CondGTZ       // result > 0
	CondLEZ       // result <= 0
	CondPar       // result bit0 == 1
	CondNPar      // result bit0 == 0
)

var condNames = map[string]Cond{
	"z": CondZ, "nz": CondNZ, "ltz": CondLTZ, "gez": CondGEZ,
	"gtz": CondGTZ, "lez": CondLEZ, "par": CondPar, "npar": CondNPar,
}

func (c Cond) holds(v int32) bool {
	switch c {
	case CondNone:
		return false
	case CondZ:
		return v == 0
	case CondNZ:
		return v != 0
	case CondLTZ:
		return v < 0
	case CondGEZ:
		return v >= 0
	case CondGTZ:
		return v > 0
	case CondLEZ:
		return v <= 0
	case CondPar:
		return v&1 == 1
	default: // CondNPar
		return v&1 == 0
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Rd     uint8 // destination (also the stored register for sw/sb)
	Ra     uint8 // first source / address base
	Rb     uint8 // second source
	Imm    int32 // immediate second operand or address displacement
	UseImm bool
	Cond   Cond
	Target int // branch target (instruction index)
}

// Program is an assembled instruction sequence.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	Source string
}

func (p *Program) validate() error {
	for i, in := range p.Instrs {
		if int(in.Rd) >= NumRegs || int(in.Ra) >= NumRegs || int(in.Rb) >= NumRegs {
			return fmt.Errorf("dpuasm: instruction %d uses a register beyond r%d", i, NumRegs-1)
		}
		if (in.Cond != CondNone || in.Op == OpJump) &&
			(in.Target < 0 || in.Target > len(p.Instrs)) {
			return fmt.Errorf("dpuasm: instruction %d branches out of program", i)
		}
	}
	return nil
}
