package dpuasm

import "fmt"

// VM executes a Program against a WRAM image. Each executed instruction
// counts one issue slot — on the DPU every instruction spends exactly one
// pipeline slot and fused jumps are free (§2.1), so Executed is the
// quantity the pim.CostTable encodes.
type VM struct {
	Regs [NumRegs]int32
	WRAM []byte
	// Executed counts instructions issued (halt excluded).
	Executed int64
	// MaxInstructions aborts runaway programs (default 100M).
	MaxInstructions int64
}

// NewVM builds a VM with the given WRAM size.
func NewVM(wramBytes int) *VM {
	return &VM{WRAM: make([]byte, wramBytes), MaxInstructions: 100_000_000}
}

// Run executes p from instruction 0 until halt or the end of the program.
func (vm *VM) Run(p *Program) error {
	pc := 0
	for pc < len(p.Instrs) {
		if vm.Executed >= vm.MaxInstructions {
			return fmt.Errorf("dpuasm: instruction budget exhausted at pc=%d", pc)
		}
		in := &p.Instrs[pc]
		if in.Op == OpHalt {
			return nil
		}
		vm.Executed++

		var result int32
		haveResult := true
		switch in.Op {
		case OpJump:
			pc = in.Target
			continue
		case OpLw:
			v, err := vm.load32(vm.Regs[in.Ra] + in.Imm)
			if err != nil {
				return fmt.Errorf("dpuasm: pc=%d: %v", pc, err)
			}
			vm.Regs[in.Rd] = v
			result = v
		case OpLbu:
			addr := vm.Regs[in.Ra] + in.Imm
			if addr < 0 || int(addr) >= len(vm.WRAM) {
				return fmt.Errorf("dpuasm: pc=%d: byte load at %d outside WRAM", pc, addr)
			}
			vm.Regs[in.Rd] = int32(vm.WRAM[addr])
			result = vm.Regs[in.Rd]
		case OpSw:
			if err := vm.store32(vm.Regs[in.Ra]+in.Imm, vm.Regs[in.Rd]); err != nil {
				return fmt.Errorf("dpuasm: pc=%d: %v", pc, err)
			}
			haveResult = false
		case OpSb:
			addr := vm.Regs[in.Ra] + in.Imm
			if addr < 0 || int(addr) >= len(vm.WRAM) {
				return fmt.Errorf("dpuasm: pc=%d: byte store at %d outside WRAM", pc, addr)
			}
			vm.WRAM[addr] = byte(vm.Regs[in.Rd])
			haveResult = false
		case OpMove:
			if in.UseImm {
				vm.Regs[in.Rd] = in.Imm
			} else {
				vm.Regs[in.Rd] = vm.Regs[in.Ra]
			}
			result = vm.Regs[in.Rd]
		case OpCmpB4:
			a, b := uint32(vm.Regs[in.Ra]), uint32(vm.Regs[in.Rb])
			var mask uint32
			for byteIdx := 0; byteIdx < 4; byteIdx++ {
				sh := uint(8 * byteIdx)
				if (a>>sh)&0xFF == (b>>sh)&0xFF {
					mask |= 0xFF << sh
				}
			}
			vm.Regs[in.Rd] = int32(mask)
			result = vm.Regs[in.Rd]
		default: // triadic ALU
			b := vm.Regs[in.Rb]
			if in.UseImm {
				b = in.Imm
			}
			a := vm.Regs[in.Ra]
			switch in.Op {
			case OpAdd:
				result = a + b
			case OpSub:
				result = a - b
			case OpAnd:
				result = a & b
			case OpOr:
				result = a | b
			case OpXor:
				result = a ^ b
			case OpLsl:
				result = int32(uint32(a) << (uint32(b) & 31))
			case OpLsr:
				result = int32(uint32(a) >> (uint32(b) & 31))
			case OpAsr:
				result = a >> (uint32(b) & 31)
			}
			vm.Regs[in.Rd] = result
		}

		if haveResult && in.Cond != CondNone && in.Cond.holds(result) {
			pc = in.Target
			continue
		}
		pc++
	}
	return nil
}

func (vm *VM) load32(addr int32) (int32, error) {
	if addr < 0 || int(addr)+4 > len(vm.WRAM) {
		return 0, fmt.Errorf("word load at %d outside WRAM", addr)
	}
	b := vm.WRAM[addr:]
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24), nil
}

func (vm *VM) store32(addr, v int32) error {
	if addr < 0 || int(addr)+4 > len(vm.WRAM) {
		return fmt.Errorf("word store at %d outside WRAM", addr)
	}
	b := vm.WRAM[addr:]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	return nil
}

// SetWord32 writes a little-endian int32 into WRAM (test/driver helper).
func (vm *VM) SetWord32(addr int, v int32) {
	if err := vm.store32(int32(addr), v); err != nil {
		panic(err)
	}
}

// Word32 reads a little-endian int32 from WRAM (test/driver helper).
func (vm *VM) Word32(addr int) int32 {
	v, err := vm.load32(int32(addr))
	if err != nil {
		panic(err)
	}
	return v
}
