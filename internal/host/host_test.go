package host

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

func testConfig(ranks int, traceback bool) Config {
	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = ranks
	return Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      64,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: traceback,
			PIM:       pimCfg,
		},
	}
}

func makePairs(seed int64, n, length int, errRate float64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, n)
	for i := range pairs {
		a := seq.Random(rng, length+rng.Intn(length/3+1))
		b := seq.UniformErrors(errRate).Apply(rng, a)
		pairs[i] = Pair{ID: i, A: a, B: b}
	}
	return pairs
}

func TestLPTBalances(t *testing.T) {
	loads := []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	buckets, sums := lpt(loads, 3)
	var total, max int64
	seen := map[int]bool{}
	for b, bucket := range buckets {
		for _, idx := range bucket {
			if seen[idx] {
				t.Fatalf("item %d assigned twice", idx)
			}
			seen[idx] = true
		}
		total += sums[b]
		if sums[b] > max {
			max = sums[b]
		}
	}
	if len(seen) != len(loads) {
		t.Fatalf("assigned %d of %d items", len(seen), len(loads))
	}
	if total != 55 {
		t.Fatalf("loads lost: %d", total)
	}
	// LPT guarantees makespan <= 4/3 OPT; OPT here is ceil(55/3)=19.
	if max > 19*4/3+1 {
		t.Errorf("LPT makespan %d too uneven", max)
	}
}

func TestSplitGroups(t *testing.T) {
	pairs := makePairs(1, 10, 50, 0.1)
	if g := splitGroups(pairs, 0); len(g) != 1 || len(g[0]) != 10 {
		t.Errorf("groupPairs=0: %d groups", len(g))
	}
	g := splitGroups(pairs, 4)
	if len(g) != 3 || len(g[0]) != 4 || len(g[2]) != 2 {
		t.Errorf("groupPairs=4: lens %d,%d,%d", len(g[0]), len(g[1]), len(g[2]))
	}
	if g := splitGroups(nil, 4); g != nil {
		t.Error("empty input should give no groups")
	}
}

func TestAlignPairsMatchesReference(t *testing.T) {
	cfg := testConfig(2, true)
	pairs := makePairs(2, 30, 200, 0.1)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	if rep.Alignments != len(pairs) {
		t.Errorf("report alignments = %d", rep.Alignments)
	}
	byID := map[int]Result{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, p := range pairs {
		r, ok := byID[p.ID]
		if !ok {
			t.Fatalf("pair %d missing", p.ID)
		}
		want := core.AdaptiveBandAlign(p.A, p.B, cfg.Kernel.Params, cfg.Kernel.Band)
		if r.Score != want.Score {
			t.Errorf("pair %d: score %d, want %d", p.ID, r.Score, want.Score)
		}
		if string(r.Cigar) != want.Cigar.String() {
			t.Errorf("pair %d: cigar mismatch", p.ID)
		}
		if r.Rank < 0 || r.Rank >= cfg.PIM.Ranks {
			t.Errorf("pair %d: rank %d out of range", p.ID, r.Rank)
		}
	}
}

func TestAlignPairsTimelineSanity(t *testing.T) {
	cfg := testConfig(2, true)
	pairs := makePairs(3, 40, 150, 0.08)
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanSec <= 0 {
		t.Fatal("zero makespan")
	}
	var maxKernel float64
	for _, rs := range rep.Ranks {
		if rs.KernelSec > maxKernel {
			maxKernel = rs.KernelSec
		}
		if rs.EndSec < rs.StartSec {
			t.Errorf("rank %d batch %d: end before start", rs.Rank, rs.Batch)
		}
		if rs.FastestDPUSec > rs.KernelSec {
			t.Errorf("fastest DPU slower than slowest: %+v", rs)
		}
	}
	if rep.MakespanSec < maxKernel {
		t.Errorf("makespan %.6f below slowest kernel %.6f", rep.MakespanSec, maxKernel)
	}
	if f := rep.HostOverheadFraction(); f < 0 || f >= 1 {
		t.Errorf("host overhead fraction = %v", f)
	}
	if rep.BytesIn <= 0 || rep.BytesOut <= 0 {
		t.Errorf("transfer accounting: in=%d out=%d", rep.BytesIn, rep.BytesOut)
	}
}

func TestAlignPairsStrongScaling(t *testing.T) {
	// Doubling ranks should come close to halving the simulated makespan
	// (the paper's Tables 2-4 show near-linear rank scaling). The system
	// must be saturated for that: with 4 ranks = 256 DPUs x 6 pools,
	// 2048 pairs still queue ~1.3 alignments per pool.
	pairs := makePairs(4, 2048, 100, 0.08)
	rep1, _, err := AlignPairs(testConfig(1, true), pairs)
	if err != nil {
		t.Fatal(err)
	}
	rep4, _, err := AlignPairs(testConfig(4, true), pairs)
	if err != nil {
		t.Fatal(err)
	}
	speedup := rep1.MakespanSec / rep4.MakespanSec
	if speedup < 2.5 || speedup > 4.5 {
		t.Errorf("1->4 ranks speedup = %.2f, want near 4", speedup)
	}
}

func TestAlignPairsEmpty(t *testing.T) {
	rep, results, err := AlignPairs(testConfig(1, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || rep.MakespanSec != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestAlignPairsInvalidConfig(t *testing.T) {
	cfg := testConfig(1, false)
	cfg.Kernel.Band = 3
	if _, _, err := AlignPairs(cfg, makePairs(5, 2, 50, 0.1)); err == nil {
		t.Error("invalid kernel config accepted")
	}
}

func TestAlignAllPairsMatchesReference(t *testing.T) {
	cfg := testConfig(2, false)
	rng := rand.New(rand.NewSource(6))
	root := seq.Random(rng, 300)
	seqs := make([]seq.Seq, 12)
	for i := range seqs {
		seqs[i] = seq.UniformErrors(0.05).Apply(rng, root)
	}
	rep, results, err := AlignAllPairs(cfg, seqs)
	if err != nil {
		t.Fatal(err)
	}
	indices := AllPairIndices(len(seqs))
	if len(results) != len(indices) {
		t.Fatalf("%d results for %d comparisons", len(results), len(indices))
	}
	for _, r := range results {
		pi := indices[r.ID]
		want := core.AdaptiveBandScore(seqs[pi.I], seqs[pi.J], cfg.Kernel.Params, cfg.Kernel.Band)
		if r.Score != want.Score {
			t.Errorf("pair (%d,%d): score %d, want %d", pi.I, pi.J, r.Score, want.Score)
		}
		if r.Cigar != nil {
			t.Error("score-only mode produced a cigar")
		}
	}
	if rep.MakespanSec <= 0 || rep.TransferInSec <= 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestAlignAllPairsRejectsTraceback(t *testing.T) {
	cfg := testConfig(1, true)
	if _, _, err := AlignAllPairs(cfg, make([]seq.Seq, 3)); err == nil {
		t.Error("traceback all-against-all accepted")
	}
}

func TestAlignAllPairsTooBigForMRAM(t *testing.T) {
	cfg := testConfig(1, false)
	cfg.PIM.MRAM = 4096
	cfg.Kernel.PIM.MRAM = 4096
	rng := rand.New(rand.NewSource(7))
	seqs := []seq.Seq{seq.Random(rng, 9000), seq.Random(rng, 9000), seq.Random(rng, 9000)}
	if _, _, err := AlignAllPairs(cfg, seqs); err == nil {
		t.Error("oversized broadcast dataset accepted")
	}
}

func TestAllPairIndices(t *testing.T) {
	idx := AllPairIndices(4)
	if len(idx) != 6 {
		t.Fatalf("len = %d", len(idx))
	}
	if idx[0] != (PairIndex{0, 1}) || idx[5] != (PairIndex{2, 3}) {
		t.Errorf("indices = %v", idx)
	}
	for _, p := range idx {
		if p.I >= p.J {
			t.Errorf("unordered pair %v", p)
		}
	}
	if got := AllPairIndices(1); len(got) != 0 {
		t.Error("n=1 should have no pairs")
	}
}

func TestParallelFor(t *testing.T) {
	var visited [100]int32
	err := parallelFor(8, 100, func(i int) error {
		atomic.AddInt32(&visited[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	wantErr := errors.New("boom")
	var count int32
	err = parallelFor(4, 1000, func(i int) error {
		if atomic.AddInt32(&count, 1) == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestParallelForSequentialFallback(t *testing.T) {
	order := []int{}
	err := parallelFor(1, 5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil || len(order) != 5 {
		t.Fatalf("sequential: %v %v", order, err)
	}
}

func TestParallelForPanicRecovered(t *testing.T) {
	// Parallel path: a panicking worker surfaces as an error, not a crash.
	err := parallelFor(4, 50, func(i int) error {
		if i == 7 {
			panic("kernel bug")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "worker panic") ||
		!strings.Contains(err.Error(), "kernel bug") {
		t.Errorf("parallel panic not converted to an error: %v", err)
	}
	// Sequential path recovers too.
	err = parallelFor(1, 3, func(i int) error {
		if i == 1 {
			panic(42)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Errorf("sequential panic not converted to an error: %v", err)
	}
}

func TestParallelForEarlyCancel(t *testing.T) {
	// After the first error, remaining items must not be dispatched: with
	// every call failing instantly, at most one item per worker runs.
	const workers, n = 4, 10000
	var started int32
	err := parallelFor(workers, n, func(i int) error {
		atomic.AddInt32(&started, 1)
		return errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("no error propagated")
	}
	if got := atomic.LoadInt32(&started); got > workers {
		t.Errorf("%d items ran after cancellation (max %d)", got, workers)
	}
	// Sequential path stops at the first failure.
	var seq int32
	_ = parallelFor(1, 100, func(i int) error {
		seq++
		return errors.New("stop")
	})
	if seq != 1 {
		t.Errorf("sequential ran %d items after an error", seq)
	}
}
