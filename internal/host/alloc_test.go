package host

import (
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// TestAlignPairsSteadyStateAllocs pins the scratch-arena property at the
// top of the stack: once the core.Scratch pool has warmed, repeated
// host.AlignPairs rounds — dispatch, kernel DP, verification and the
// escalation ladder included — must not re-allocate the engine's working
// memory.
//
// Allocation *counts* cannot see this (the simulated fabric makes ~11k
// small allocations per round either way — WRAM banks, tasklet traces,
// staging; testing.AllocsPerRun reads identical before and after the
// scratch arena), so the test meters allocated *bytes*: the engine's O(w)
// lanes, offset vectors and O((m+n)·w) traceback arenas are where the
// megabytes are. On this workload the pre-arena engine allocated ~1.4 MB
// per round on top of the fabric's ~5.6 MB; the budget sits between the
// two regimes.
func TestAlignPairsSteadyStateAllocs(t *testing.T) {
	obs.SetLogOutput(io.Discard)
	defer obs.SetLogOutput(os.Stderr)

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      32,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
		// Single-threaded so goroutine fan-out does not add noise, with the
		// full result-integrity machinery (escalation + verification) on.
		Workers:  1,
		Escalate: true,
		MaxBand:  128,
		Verify:   true,
	}
	rng := rand.New(rand.NewSource(21))
	mut := seq.Mutator{SubRate: 0.03, InsRate: 0.02, DelRate: 0.02, IndelExt: 0.5}
	pairs := make([]Pair, 16)
	for i := range pairs {
		a := seq.Random(rng, 600)
		pairs[i] = Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}

	run := func() {
		if _, _, err := AlignPairs(cfg, pairs); err != nil {
			t.Fatal(err)
		}
	}
	perRound := measureBytesPerRound(t, run)

	// Fabric-only rounds measure ~5.6 MB; with per-call engine buffers the
	// same workload measures ~7.0 MB. Anything above the midpoint means
	// core engine buffers are being re-allocated instead of reused.
	const budget = 6_400_000
	if perRound > budget {
		t.Errorf("steady-state AlignPairs allocates %d bytes/round (budget %d): core engine scratch is not being reused",
			perRound, budget)
	}
}

// measureBytesPerRound warms run, then meters its steady-state allocated
// bytes per invocation.
func measureBytesPerRound(t *testing.T, run func()) uint64 {
	t.Helper()
	for i := 0; i < 3; i++ {
		run() // warm the scratch pool and every per-round buffer
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 5
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / rounds
}

// TestScoreHotPathObservabilityFree pins the request-scoped observability
// plumbing at zero cost on the fault-free score path: installing a flight
// recorder and configuring a trace ID must not change the bytes a
// steady-state round allocates. On a clean run the flight hooks never
// fire (they sit on fault/escalation/abandon paths), the trace ID is a
// string copied by value, and span stamping is gated on a nil tracer —
// so the instrumented rounds must measure the same as the bare ones,
// within a sliver of runtime noise.
func TestScoreHotPathObservabilityFree(t *testing.T) {
	obs.SetLogOutput(io.Discard)
	defer obs.SetLogOutput(os.Stderr)

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      32,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: false, // the score hot path
			PIM:       pimCfg,
		},
		Workers: 1,
	}
	rng := rand.New(rand.NewSource(23))
	mut := seq.Mutator{SubRate: 0.03, InsRate: 0.02, DelRate: 0.02, IndelExt: 0.5}
	pairs := make([]Pair, 16)
	for i := range pairs {
		a := seq.Random(rng, 600)
		pairs[i] = Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}

	run := func() {
		if _, _, err := AlignPairs(cfg, pairs); err != nil {
			t.Fatal(err)
		}
	}
	base := measureBytesPerRound(t, run)

	obs.SetFlight(obs.NewFlightRecorder(64))
	defer obs.SetFlight(nil)
	cfg.TraceID = "t-alloc"
	instrumented := measureBytesPerRound(t, run)

	// Identical work either way; 16 KB of slack absorbs GC bookkeeping
	// noise on multi-MB rounds.
	const slack = 16 * 1024
	if instrumented > base+slack {
		t.Errorf("fault-free score rounds allocate %d bytes with observability plumbing vs %d without: the flight/trace hooks are not free",
			instrumented, base)
	}
	if fr := obs.Flight(); fr.Recorded() != 0 {
		t.Errorf("flight recorder captured %d events on a fault-free run, want 0", fr.Recorded())
	}
}
