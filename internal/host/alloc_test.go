package host

import (
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// TestAlignPairsSteadyStateAllocs pins the scratch-arena property at the
// top of the stack: once the core.Scratch pool has warmed, repeated
// host.AlignPairs rounds — dispatch, kernel DP, verification and the
// escalation ladder included — must not re-allocate the engine's working
// memory.
//
// Allocation *counts* cannot see this (the simulated fabric makes ~11k
// small allocations per round either way — WRAM banks, tasklet traces,
// staging; testing.AllocsPerRun reads identical before and after the
// scratch arena), so the test meters allocated *bytes*: the engine's O(w)
// lanes, offset vectors and O((m+n)·w) traceback arenas are where the
// megabytes are. On this workload the pre-arena engine allocated ~1.4 MB
// per round on top of the fabric's ~5.6 MB; the budget sits between the
// two regimes.
func TestAlignPairsSteadyStateAllocs(t *testing.T) {
	obs.SetLogOutput(io.Discard)
	defer obs.SetLogOutput(os.Stderr)

	pimCfg := pim.DefaultConfig()
	pimCfg.Ranks = 1
	cfg := Config{
		PIM: pimCfg,
		Kernel: kernel.Config{
			Geometry:  kernel.DefaultGeometry(),
			Band:      32,
			Params:    core.DefaultParams(),
			Costs:     pim.Asm,
			Traceback: true,
			PIM:       pimCfg,
		},
		// Single-threaded so goroutine fan-out does not add noise, with the
		// full result-integrity machinery (escalation + verification) on.
		Workers:  1,
		Escalate: true,
		MaxBand:  128,
		Verify:   true,
	}
	rng := rand.New(rand.NewSource(21))
	mut := seq.Mutator{SubRate: 0.03, InsRate: 0.02, DelRate: 0.02, IndelExt: 0.5}
	pairs := make([]Pair, 16)
	for i := range pairs {
		a := seq.Random(rng, 600)
		pairs[i] = Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}

	run := func() {
		if _, _, err := AlignPairs(cfg, pairs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the scratch pool and every per-round buffer
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 5
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perRound := (after.TotalAlloc - before.TotalAlloc) / rounds

	// Fabric-only rounds measure ~5.6 MB; with per-call engine buffers the
	// same workload measures ~7.0 MB. Anything above the midpoint means
	// core engine buffers are being re-allocated instead of reused.
	const budget = 6_400_000
	if perRound > budget {
		t.Errorf("steady-state AlignPairs allocates %d bytes/round (budget %d): core engine scratch is not being reused",
			perRound, budget)
	}
}
