package host

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"pimnw/internal/baseline"
	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// Backend is one place a round of pairs can execute: the simulated PiM
// fabric the paper models, a CPU worker pool, or one server of a
// heterogeneous fleet. The host pipeline (dispatch, recovery, escalation)
// is backend-agnostic — alignOnceOn drives any Backend through the same
// ladder, and the fleet placement layer (fleet.go) shards a workload
// across several of them by estimated makespan.
//
// A Backend is a failure domain: Round returning ErrBackendDown means the
// whole server is gone (not one DPU — per-DPU faults are recovered inside
// Round by the PR-2 retry machinery), and the placement layer redispatches
// the lost shard onto the survivors.
type Backend interface {
	// Name identifies the backend in reports, metrics and flight events.
	// The single-fabric passthrough is the empty string, which keeps
	// single-fabric reports byte-identical to the pre-fleet format.
	Name() string
	// Ranks is the number of rank timeline slots the backend occupies in a
	// merged report; fleet merging offsets each backend's rank IDs by the
	// cumulative rank count of the backends before it.
	Ranks() int
	// EstimateSec prices a workload (Σ Pair.Workload) on this backend —
	// the cost model the placement layer balances on. It must be linear in
	// load and must not depend on placement state.
	EstimateSec(cfg *Config, load int64) float64
	// Round executes one dispatch round — the backend-specific body behind
	// alignPairsRound. Results must be bit-identical to the single-fabric
	// round on the same pairs; only the modelled timeline may differ.
	Round(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error)
	// Healthy reports whether the backend accepts new rounds. A backend
	// that returned ErrBackendDown stays unhealthy for the rest of the
	// session; the placement layer skips it.
	Healthy() bool
}

// ErrBackendDown is the failure-domain error: the whole backend (server)
// is lost, not one DPU. The fleet executor treats it as redispatchable;
// every other error from Round aborts the run.
var ErrBackendDown = errors.New("host: backend down")

// fabricBackend is the single-fabric passthrough: the existing simulated
// PiM pipeline exactly as AlignPairs has always driven it, using the
// caller's Config (fault model included) untouched. It is what alignOnce
// runs on when Config.Backends is empty.
type fabricBackend struct{}

func (fabricBackend) Name() string { return "" }
func (fabricBackend) Ranks() int   { return 0 }
func (fabricBackend) EstimateSec(cfg *Config, load int64) float64 {
	return pimEstimateSec(cfg, cfg.PIM, load)
}
func (fabricBackend) Healthy() bool { return true }
func (fabricBackend) Round(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	return alignPairsRound(cfg, pairs, sp)
}

// pimEstimateSec prices a workload on a PiM configuration: DP cells
// (Pair.Workload is the paper's (m+n)·w cell estimate) times the cost
// table's per-cell instruction count, spread over every DPU of the fabric
// at its clock. It ignores transfers and imbalance — it is a placement
// cost model, not a timeline.
func pimEstimateSec(cfg *Config, p pim.Config, load int64) float64 {
	cellCost := cfg.Kernel.Costs.CellScore
	if cfg.Kernel.Traceback {
		cellCost = cfg.Kernel.Costs.CellTB
	}
	if cellCost <= 0 {
		cellCost = 1
	}
	dpus := p.Ranks * pim.DPUsPerRank
	if dpus <= 0 {
		dpus = 1
	}
	hz := float64(p.FreqMHz) * 1e6
	if hz <= 0 {
		hz = 1
	}
	return float64(load) * float64(cellCost) / (hz * float64(dpus))
}

// PiMBackend is one simulated PiM server of a fleet: the same fabric
// model as the passthrough, but with its own rank count, clock and
// (optionally) fault profile. Results are bit-identical to the
// single-fabric run on the same pairs — geometry limits (MRAM/WRAM) are
// inherited from the parent Config, so the escalation ladder makes
// identical decisions everywhere; only the modelled timeline scales with
// the server's size and clock.
type PiMBackend struct {
	name    string
	ranks   int
	freqMHz int
	// faults optionally replaces the parent Config's fault profile on
	// this server (nil = inherit). Either way the draw seed is salted by
	// seedSalt so a fleet's servers fail independently; salt 0 (the first
	// fleet slot) reproduces the single-fabric draws exactly.
	faults   *pim.FaultConfig
	seedSalt int64

	down       atomic.Bool
	failRounds atomic.Int32
}

// NewPiMBackend builds one fleet PiM server. Zero ranks or frequency
// inherit the paper's defaults (40 ranks at 350 MHz).
func NewPiMBackend(name string, ranks, freqMHz int) *PiMBackend {
	def := pim.DefaultConfig()
	if ranks <= 0 {
		ranks = def.Ranks
	}
	if freqMHz <= 0 {
		freqMHz = def.FreqMHz
	}
	return &PiMBackend{name: name, ranks: ranks, freqMHz: freqMHz}
}

// SetFaults overrides the fault profile for this server only.
func (b *PiMBackend) SetFaults(fc pim.FaultConfig) *PiMBackend { b.faults = &fc; return b }

// SetSeedSalt decorrelates this server's fault draws from its siblings'.
func (b *PiMBackend) SetSeedSalt(s int64) *PiMBackend { b.seedSalt = s; return b }

// FailRounds makes the next n Round calls fail with ErrBackendDown and
// then marks the backend down — the whole-server crash injection the
// fleet recovery tests use.
func (b *PiMBackend) FailRounds(n int) { b.failRounds.Store(int32(n)) }

func (b *PiMBackend) Name() string  { return b.name }
func (b *PiMBackend) Ranks() int    { return b.ranks }
func (b *PiMBackend) Healthy() bool { return !b.down.Load() }

func (b *PiMBackend) EstimateSec(cfg *Config, load int64) float64 {
	p := cfg.PIM
	p.Ranks, p.FreqMHz = b.ranks, b.freqMHz
	return pimEstimateSec(cfg, p, load)
}

func (b *PiMBackend) Round(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	if b.failRounds.Load() > 0 {
		b.failRounds.Add(-1)
		b.down.Store(true)
	}
	if b.down.Load() {
		return nil, nil, fmt.Errorf("%w: %s", ErrBackendDown, b.name)
	}
	// Size the fabric to this server; MRAM/WRAM/stack/bus stay the
	// parent's so kernel geometry — and with it every escalation-ladder
	// decision — is identical across the fleet.
	bcfg := cfg
	bcfg.PIM.Ranks, bcfg.PIM.FreqMHz = b.ranks, b.freqMHz
	bcfg.Kernel.PIM = bcfg.PIM
	if b.faults != nil {
		bcfg.Faults = *b.faults
		bcfg.Faults.Seed += cfg.Faults.Seed // compose with stream/round decorrelation
	}
	bcfg.Faults.Seed += b.seedSalt
	model, err := pim.NewFaultModel(bcfg.Faults)
	if err != nil {
		return nil, nil, err
	}
	bcfg.faults = model
	return alignPairsRound(bcfg, pairs, sp)
}

// CPUBackend is the CPU baseline pool as a fleet member: it computes
// pairs with exactly the engine dispatch the DPU kernel uses (traceback →
// banded align; 16-bit lanes → saturating narrow score; else wide score),
// so scores, CIGARs, clip/overflow flags — and therefore every
// escalation-ladder decision — are bit-identical to the PiM backends. Its
// modelled makespan prices the DP cells on a calibrated aggregate
// throughput; there are no host↔device transfers, so transfer fields stay
// zero and per-DPU fault injection does not apply.
type CPUBackend struct {
	name    string
	threads int
	// cellsPerSecTB / cellsPerSecScore are the modelled aggregate DP-cell
	// throughputs at `threads` workers.
	cellsPerSecTB    float64
	cellsPerSecScore float64

	down       atomic.Bool
	failRounds atomic.Int32
}

// NewCPUBackend builds a CPU pool backend with the given worker count
// (default 8), priced against the paper's Xeon 4215 scaled to the pool
// size.
func NewCPUBackend(name string, threads int) *CPUBackend {
	if threads <= 0 {
		threads = 8
	}
	m := baseline.Xeon4215
	scale := float64(threads) / float64(m.Cores)
	return &CPUBackend{
		name: name, threads: threads,
		cellsPerSecTB:    m.TBCellsPerSec * scale,
		cellsPerSecScore: m.ScoreCellsPerSec * scale,
	}
}

// FailRounds mirrors PiMBackend.FailRounds for the CPU pool.
func (b *CPUBackend) FailRounds(n int) { b.failRounds.Store(int32(n)) }

func (b *CPUBackend) Name() string  { return b.name }
func (b *CPUBackend) Ranks() int    { return 1 } // one timeline lane
func (b *CPUBackend) Healthy() bool { return !b.down.Load() }

func (b *CPUBackend) rate(traceback bool) float64 {
	if traceback {
		return b.cellsPerSecTB
	}
	return b.cellsPerSecScore
}

func (b *CPUBackend) EstimateSec(cfg *Config, load int64) float64 {
	return float64(load) / b.rate(cfg.Kernel.Traceback)
}

func (b *CPUBackend) Round(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	if b.failRounds.Load() > 0 {
		b.failRounds.Add(-1)
		b.down.Store(true)
	}
	if b.down.Load() {
		return nil, nil, fmt.Errorf("%w: %s", ErrBackendDown, b.name)
	}
	rep := &Report{UtilizationMin: 1, TraceID: cfg.TraceID}
	if len(pairs) == 0 {
		return rep, nil, nil
	}
	csp := sp.Child("host.cpu_backend")
	csp.SetAttrInt("pairs", int64(len(pairs)))
	defer csp.End()

	k := cfg.Kernel
	results := make([]Result, len(pairs))
	// Contiguous chunks, one pooled scratch arena per worker — the same
	// thread-private reuse the baseline pool plays.
	chunk := (len(pairs) + b.threads - 1) / b.threads
	nChunks := (len(pairs) + chunk - 1) / chunk
	if err := parallelFor(cfg.workers(), nChunks, func(ci int) error {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		scratch := core.GetScratch()
		defer core.PutScratch(scratch)
		for i := lo; i < hi; i++ {
			p := pairs[i]
			var res core.Result
			switch {
			case k.Traceback:
				res = scratch.AdaptiveBandAlign(p.A, p.B, k.Params, k.Band)
			case k.Lanes(k.Band, k.Traceback) == 16:
				res = scratch.AdaptiveBandScoreNarrow(p.A, p.B, k.Params, k.Band)
			default:
				res = scratch.AdaptiveBandScoreWide(p.A, p.B, k.Params, k.Band)
			}
			pr := kernel.PairResult{ID: p.ID, Score: res.Score, InBand: res.InBand,
				Clipped: res.Clipped, Overflowed: res.Overflowed, Cells: res.Cells, Steps: res.Steps}
			if k.Traceback && res.Cigar != nil {
				pr.Cigar = []byte(res.Cigar.String())
			}
			results[i] = Result{PairResult: pr, Rank: 0, DPU: -1}
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	var cells int64
	for i := range results {
		cells += results[i].Cells
	}
	mk := float64(cells) / b.rate(k.Traceback)
	rep.MakespanSec = mk
	rep.KernelSecSum = mk
	rep.TotalCells = cells
	rep.Alignments = len(results)
	rep.Batches = 1
	rep.UtilizationMean = 1
	rep.Ranks = []RankStats{{
		Rank: 0, Batch: 0, KernelSec: mk, FastestDPUSec: mk, EndSec: mk,
		LoadedDPUs: b.threads, Attempts: 1,
	}}
	return rep, results, nil
}

// ParseFleet parses the -fleet specification shared by alignd, pimalign
// and experiments: a comma-separated backend list where each entry is
//
//	pim[:RANKS[@FREQMHZ]][~FAULTRATE]   a simulated PiM server
//	cpu[:THREADS]                       a CPU worker pool
//
// e.g. "pim:40,pim:20@300,cpu:16". Backends are auto-named by position
// ("pim0", "cpu2", ...) and PiM servers get position-salted fault seeds
// so a fleet's servers fail independently; the first slot keeps the
// unsalted seed, making a one-backend fleet bit-identical to the plain
// single-fabric run, fault draws included. An empty spec returns nil (no
// fleet).
func ParseFleet(spec string) ([]Backend, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var fleet []Backend
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("host: fleet entry %d is empty", i)
		}
		var faultRate float64
		if at := strings.IndexByte(entry, '~'); at >= 0 {
			r, err := strconv.ParseFloat(entry[at+1:], 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("host: fleet entry %q: bad fault rate", entry)
			}
			faultRate = r
			entry = entry[:at]
		}
		kind, args, _ := strings.Cut(entry, ":")
		switch kind {
		case "pim":
			ranks, freq := 0, 0
			if args != "" {
				rs, fs, hasFreq := strings.Cut(args, "@")
				var err error
				if ranks, err = strconv.Atoi(rs); err != nil || ranks <= 0 {
					return nil, fmt.Errorf("host: fleet entry %q: bad rank count", entry)
				}
				if hasFreq {
					if freq, err = strconv.Atoi(fs); err != nil || freq <= 0 {
						return nil, fmt.Errorf("host: fleet entry %q: bad frequency", entry)
					}
				}
			}
			b := NewPiMBackend("pim"+strconv.Itoa(i), ranks, freq)
			b.SetSeedSalt(int64(i) * 1000000007)
			if faultRate > 0 {
				b.SetFaults(pim.FaultConfig{Rate: faultRate})
			}
			fleet = append(fleet, b)
		case "cpu":
			if faultRate > 0 {
				return nil, fmt.Errorf("host: fleet entry %q: cpu pools have no DPU fault injection", entry)
			}
			threads := 0
			if args != "" {
				var err error
				if threads, err = strconv.Atoi(args); err != nil || threads <= 0 {
					return nil, fmt.Errorf("host: fleet entry %q: bad thread count", entry)
				}
			}
			fleet = append(fleet, NewCPUBackend("cpu"+strconv.Itoa(i), threads))
		default:
			return nil, fmt.Errorf("host: fleet entry %q: unknown backend kind (want pim or cpu)", entry)
		}
	}
	return fleet, nil
}
