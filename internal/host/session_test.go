package host

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pimnw/internal/pim"
)

// sessionKey collapses one streamed result to everything a serving client
// consumes: answer, trust classification and provenance.
type sessionKey struct {
	Score      int32
	InBand     bool
	Cigar      string
	Status     PairStatus
	Provenance string
}

func sessionKeys(results []Result) map[int]sessionKey {
	m := make(map[int]sessionKey, len(results))
	for _, r := range results {
		m[r.ID] = sessionKey{
			Score: r.Score, InBand: r.InBand, Cigar: string(r.Cigar),
			Status: r.Status, Provenance: r.Provenance,
		}
	}
	return m
}

// TestSessionSubmissionOrder: results must stream back in the order the
// pairs were submitted, across micro-batch boundaries and regardless of
// which dispatch worker finishes first.
func TestSessionSubmissionOrder(t *testing.T) {
	pairs := makePairs(51, 50, 120, 0.05)
	// Scramble the IDs so delivery order can only come from submission
	// order, never from ID order.
	for i := range pairs {
		pairs[i].ID = 1000 - 7*i
	}
	s, err := NewSession(context.Background(), SessionConfig{
		Host:                 testConfig(1, true),
		MaxBatchPairs:        8,
		MaxConcurrentBatches: 4,
		QueueLimit:           len(pairs),
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range pairs {
			if err := s.Submit(p); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
		}
		s.Close()
	}()
	var gotIDs []int
	for r := range s.Results() {
		gotIDs = append(gotIDs, r.ID)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(pairs) {
		t.Fatalf("%d results for %d submissions", len(gotIDs), len(pairs))
	}
	for i, p := range pairs {
		if gotIDs[i] != p.ID {
			t.Fatalf("result %d has ID %d, submitted ID %d — delivery out of submission order",
				i, gotIDs[i], p.ID)
		}
	}
}

// TestSessionDuplicateIDs: streaming clients may reuse IDs; every
// submission must still yield exactly one result (the dispatch machinery
// runs on internal dense IDs).
func TestSessionDuplicateIDs(t *testing.T) {
	pairs := makePairs(52, 6, 100, 0.05)
	for i := range pairs {
		pairs[i].ID = 7
	}
	_, results, err := AlignPairsStream(context.Background(), SessionConfig{
		Host:          testConfig(1, true),
		MaxBatchPairs: 2,
	}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d duplicate-ID submissions", len(results), len(pairs))
	}
	for i, r := range results {
		if r.ID != 7 {
			t.Fatalf("result %d carries ID %d, want the caller's 7", i, r.ID)
		}
	}
}

// TestSessionBitIdenticalUnderFaults is the serving acceptance test: a
// streamed workload must produce results bit-identical to one-shot
// AlignPairs — scores, CIGARs, statuses and provenance — under a 5 %
// fault rate with recovery, both as a single micro-batch (where even the
// report is identical) and split across many micro-batches.
func TestSessionBitIdenticalUnderFaults(t *testing.T) {
	pairs := makePairs(53, 100, 200, 0.1)
	clean := testConfig(2, true)
	cleanRep, _, err := AlignPairs(clean, pairs)
	if err != nil {
		t.Fatal(err)
	}
	faulty := testConfig(2, true)
	faulty.Faults = pim.FaultConfig{Rate: 0.05, Seed: 1234}
	faulty.MaxRetries = 8
	faulty.BatchDeadlineSec = 1.5 * maxKernelSec(cleanRep)
	faulty.RetryBackoffSec = 1e-4
	oneRep, oneResults, err := AlignPairs(faulty, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if oneRep.FaultsDetected == 0 {
		t.Fatal("fault injection inert; the test is not exercising recovery")
	}
	want := sessionKeys(oneResults)

	t.Run("single micro-batch", func(t *testing.T) {
		rep, results, err := AlignPairsStream(context.Background(), SessionConfig{
			Host:          faulty,
			MaxBatchPairs: len(pairs),
		}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if got := sessionKeys(results); !reflect.DeepEqual(got, want) {
			t.Fatal("streamed results diverge from one-shot AlignPairs")
		}
		if !reflect.DeepEqual(rep, oneRep) {
			t.Errorf("single-micro-batch session report diverges from one-shot:\n got %+v\nwant %+v", rep, oneRep)
		}
	})

	t.Run("many micro-batches", func(t *testing.T) {
		rep, results, err := AlignPairsStream(context.Background(), SessionConfig{
			Host:                 faulty,
			MaxBatchPairs:        16,
			MaxConcurrentBatches: 3,
		}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(pairs) {
			t.Fatalf("%d results for %d pairs", len(results), len(pairs))
		}
		if got := sessionKeys(results); !reflect.DeepEqual(got, want) {
			for id, w := range want {
				if g := got[id]; g != w {
					t.Errorf("pair %d diverged: %+v vs %+v", id, g, w)
				}
			}
			t.Fatal("streamed results diverge from one-shot AlignPairs")
		}
		if rep.Alignments != oneRep.Alignments {
			t.Errorf("merged report counts %d alignments, one-shot %d", rep.Alignments, oneRep.Alignments)
		}
	})
}

// TestSessionBackpressure: the bounded admission queue must reject with
// ErrQueueFull while full and admit again once results drain.
func TestSessionBackpressure(t *testing.T) {
	pairs := makePairs(54, 8, 80, 0.05)
	s, err := NewSession(context.Background(), SessionConfig{
		Host:                 testConfig(1, true),
		MaxBatchPairs:        1,
		MaxConcurrentBatches: 1,
		QueueLimit:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(pairs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(pairs[1]); err != nil {
		t.Fatal(err)
	}
	// Nothing has been consumed from Results, so both pairs are still in
	// flight and the third admission must bounce.
	if err := s.Submit(pairs[2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on a full queue = %v, want ErrQueueFull", err)
	}
	// Drain one result; the freed slot must readmit (the decrement races
	// with this goroutine, so poll briefly).
	<-s.Results()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Submit(pairs[3])
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("Submit after drain = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never freed a slot after a result was consumed")
		}
		time.Sleep(time.Millisecond)
	}
	go s.Close()
	n := 1
	for range s.Results() {
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("delivered %d results, want 3", n)
	}
	if err := s.Submit(pairs[4]); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Submit after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionCancelMidStream: cancelling the context while results are
// streaming must close the Results channel promptly (undelivered batches
// are discarded, not streamed) and surface the cancellation via Err.
func TestSessionCancelMidStream(t *testing.T) {
	pairs := makePairs(55, 40, 120, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewSession(ctx, SessionConfig{
		Host:                 testConfig(1, true),
		MaxBatchPairs:        4,
		MaxConcurrentBatches: 2,
		QueueLimit:           len(pairs),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := s.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	// Consume a couple of results, then cancel mid-stream. The collector
	// is blocked handing over a result nobody will read; delivery must
	// abort instead of deadlocking.
	<-s.Results()
	<-s.Results()
	cancel()
	n := 2
	for range s.Results() {
		n++
	}
	if n >= len(pairs) {
		t.Errorf("all %d results delivered despite mid-stream cancellation", n)
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err after cancel = %v, want context.Canceled", err)
	}
	if err := s.Submit(pairs[0]); err == nil {
		t.Error("Submit accepted after cancellation")
	}
}

// TestSessionAbandonedStillStreams: with escalation off and a hostile
// fabric, abandoned pairs must still produce a streamed Result carrying
// StatusAbandoned — a serving client always gets one answer per
// submission.
func TestSessionAbandonedStillStreams(t *testing.T) {
	cfg := testConfig(1, true)
	cfg.Faults = pim.FaultConfig{RankDropRate: 1, Seed: 3}
	cfg.MaxRetries = 1
	pairs := makePairs(56, 10, 80, 0.05)
	rep, results, err := AlignPairsStream(context.Background(), SessionConfig{
		Host:          cfg,
		MaxBatchPairs: 5,
	}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d submissions", len(results), len(pairs))
	}
	for i, r := range results {
		if r.Status != StatusAbandoned {
			t.Fatalf("result %d status %v, want abandoned on a dead fabric", i, r.Status)
		}
		if r.ID != pairs[i].ID {
			t.Fatalf("result %d carries ID %d, want %d", i, r.ID, pairs[i].ID)
		}
	}
	if rep.AbandonedPairs != len(pairs) {
		t.Errorf("report counts %d abandoned, want %d", rep.AbandonedPairs, len(pairs))
	}
}

// TestSessionLingerFlush: a partial micro-batch must flush on the linger
// deadline without waiting for more traffic or for Close.
func TestSessionLingerFlush(t *testing.T) {
	pairs := makePairs(57, 3, 80, 0.05)
	s, err := NewSession(context.Background(), SessionConfig{
		Host:          testConfig(1, true),
		MaxBatchPairs: 100, // never reached; only the linger can flush
		MaxLinger:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := s.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	timeout := time.After(10 * time.Second)
	for got < len(pairs) {
		select {
		case _, ok := <-s.Results():
			if !ok {
				t.Fatalf("results closed after %d of %d", got, len(pairs))
			}
			got++
		case <-timeout:
			t.Fatalf("linger flush never fired; %d of %d delivered", got, len(pairs))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionReportMergesAcrossBatches: the merged report must account
// every micro-batch (batch numbering, makespan accumulation, alignment
// counts), modelling the batches back-to-back on the shared fabric.
func TestSessionReportMergesAcrossBatches(t *testing.T) {
	pairs := makePairs(58, 48, 120, 0.05)
	rep, _, err := AlignPairsStream(context.Background(), SessionConfig{
		Host:          testConfig(2, true),
		MaxBatchPairs: 12,
	}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alignments != len(pairs) {
		t.Errorf("merged report counts %d alignments, want %d", rep.Alignments, len(pairs))
	}
	if rep.Batches < 4 {
		t.Errorf("merged report counts %d batches; 48 pairs at 12/micro-batch over 2 ranks should give >= 4", rep.Batches)
	}
	var lastEnd float64
	for _, rs := range rep.Ranks {
		if rs.EndSec > lastEnd {
			lastEnd = rs.EndSec
		}
	}
	if rep.MakespanSec != lastEnd {
		t.Errorf("merged makespan %.9f, last rank ends %.9f", rep.MakespanSec, lastEnd)
	}
	f := rep.HostOverheadFraction()
	if f < 0 || f > 1 {
		t.Errorf("merged HostOverheadFraction %.6f outside [0,1]", f)
	}
}
