package host

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// The request-level face of session admission. A Session bounds the
// pairs in flight inside one request; the Gate bounds how many requests
// hold dispatch sessions at once, split into two priority classes with
// separately bounded waiting queues. Interactive requests (score-only,
// latency-sensitive) are granted freed slots before any bulk request
// (CIGAR, throughput-oriented), which is what lets the serving layer
// shed bulk work under pressure while interactive latency stays
// bounded. The gate also measures its recent drain rate so a refusal
// can carry an honest Retry-After — current queue depth over observed
// completions per second — instead of a constant.

// ErrGateQueueFull refuses an Acquire whose class queue is already at
// its cap — the 429 signal, with Gate.RetryAfter as the honest hint.
var ErrGateQueueFull = errors.New("host: admission gate queue full")

// Class is a request priority class.
type Class int

const (
	// ClassInteractive: score-only, latency-sensitive; granted slots
	// first and never shed.
	ClassInteractive Class = iota
	// ClassBulk: full-CIGAR, throughput-oriented; degraded and shed
	// first under pressure.
	ClassBulk
	numClasses
)

var classNames = [numClasses]string{"interactive", "bulk"}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass parses the wire form; the empty string is ClassBulk (a
// plain POST /align is bulk work).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "bulk":
		return ClassBulk, nil
	case "interactive":
		return ClassInteractive, nil
	}
	return 0, fmt.Errorf("host: unknown priority class %q (want interactive or bulk)", s)
}

// GateConfig sizes the gate. All fields are hot-reloadable via the
// setters.
type GateConfig struct {
	// Slots is how many requests may hold the gate concurrently.
	Slots int
	// InteractiveQueue/BulkQueue cap how many requests of each class may
	// wait for a slot; 0 means refuse immediately when slots are full.
	InteractiveQueue int
	BulkQueue        int
	// MaxRetryAfter clamps computed Retry-After values (default 60s).
	MaxRetryAfter time.Duration
}

// GateStats is a point-in-time snapshot for metrics, pressure sampling
// and the admin API.
type GateStats struct {
	Slots             int     `json:"slots"`
	Inflight          int     `json:"inflight"`
	QueuedInteractive int     `json:"queued_interactive"`
	QueuedBulk        int     `json:"queued_bulk"`
	QueueCapacity     int     `json:"queue_capacity"`
	DrainPerSec       float64 `json:"drain_per_sec"`
	// Load is the pressure signal: the max of slot saturation and queue
	// occupancy, in [0,1].
	Load float64 `json:"load"`
}

// gateWaiter is one parked Acquire; grant closes ch with the slot
// already transferred.
type gateWaiter struct {
	ch chan struct{}
}

// Gate is the two-class priority admission gate.
type Gate struct {
	mu       sync.Mutex
	slots    int
	inflight int
	caps     [numClasses]int
	queues   [numClasses][]*gateWaiter
	maxRA    time.Duration

	// Drain-rate estimate: completions counted over two adjacent
	// windows, blended into events/sec.
	now       func() time.Time // injectable for deterministic tests
	winStart  time.Time
	winCount  float64
	prevCount float64
}

const gateDrainWindow = time.Second

// NewGate builds a gate; non-positive Slots means 1.
func NewGate(cfg GateConfig) *Gate {
	g := &Gate{now: time.Now}
	g.applyConfig(cfg)
	g.winStart = g.now()
	return g
}

func (g *Gate) applyConfig(cfg GateConfig) {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.InteractiveQueue < 0 {
		cfg.InteractiveQueue = 0
	}
	if cfg.BulkQueue < 0 {
		cfg.BulkQueue = 0
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 60 * time.Second
	} else if cfg.MaxRetryAfter < time.Second {
		// The computed hint is clamped to [1s, MaxRetryAfter]; a
		// sub-second ceiling would invert that interval and reach the
		// HTTP layer as Retry-After: 0.
		cfg.MaxRetryAfter = time.Second
	}
	g.slots = cfg.Slots
	g.caps[ClassInteractive] = cfg.InteractiveQueue
	g.caps[ClassBulk] = cfg.BulkQueue
	g.maxRA = cfg.MaxRetryAfter
}

// SetConfig hot-swaps the sizing. Growing Slots grants parked waiters
// immediately; shrinking lets inflight requests finish (the gate only
// converges down as they release). A capacity change resets the
// drain-rate windows: completions counted under the old Slots describe
// a throughput the resized gate may not sustain, and a stale rate
// would leak into Retry-After hints until the windows aged out.
func (g *Gate) SetConfig(cfg GateConfig) {
	g.mu.Lock()
	prevSlots := g.slots
	g.applyConfig(cfg)
	if g.slots != prevSlots {
		g.winStart = g.now()
		g.winCount = 0
		g.prevCount = 0
	}
	var grant []*gateWaiter
	for g.inflight < g.slots {
		w := g.popLocked()
		if w == nil {
			break
		}
		g.inflight++
		grant = append(grant, w)
	}
	g.mu.Unlock()
	for _, w := range grant {
		close(w.ch)
	}
}

// Config returns the live sizing.
func (g *Gate) Config() GateConfig {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateConfig{
		Slots:            g.slots,
		InteractiveQueue: g.caps[ClassInteractive],
		BulkQueue:        g.caps[ClassBulk],
		MaxRetryAfter:    g.maxRA,
	}
}

// Acquire takes one slot for class, waiting in the class's bounded
// queue when the gate is full. It returns ErrGateQueueFull when the
// queue is at its cap, or ctx's error if the caller gives up first.
// Every successful Acquire must be paired with Release.
func (g *Gate) Acquire(ctx context.Context, cls Class) error {
	if cls < 0 || cls >= numClasses {
		return fmt.Errorf("host: invalid class %d", cls)
	}
	g.mu.Lock()
	if g.inflight < g.slots {
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	if len(g.queues[cls]) >= g.caps[cls] {
		g.mu.Unlock()
		return ErrGateQueueFull
	}
	w := &gateWaiter{ch: make(chan struct{})}
	g.queues[cls] = append(g.queues[cls], w)
	g.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ch:
			// Granted while we were giving up: hand the slot on.
			g.mu.Unlock()
			g.Release()
		default:
			g.removeLocked(cls, w)
			g.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Release returns a slot, records the completion for the drain-rate
// estimate, and grants the next waiter — interactive first.
func (g *Gate) Release() {
	g.mu.Lock()
	g.rollWindowLocked(g.now())
	g.winCount++
	var grant *gateWaiter
	if g.inflight <= g.slots { // not converging down after a shrink
		grant = g.popLocked()
	}
	if grant == nil {
		g.inflight--
	}
	g.mu.Unlock()
	if grant != nil {
		close(grant.ch)
	}
}

// popLocked dequeues the highest-priority waiter, or nil.
func (g *Gate) popLocked() *gateWaiter {
	for cls := Class(0); cls < numClasses; cls++ {
		if q := g.queues[cls]; len(q) > 0 {
			w := q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			g.queues[cls] = q[:len(q)-1]
			return w
		}
	}
	return nil
}

// removeLocked deletes a cancelled waiter from its queue.
func (g *Gate) removeLocked(cls Class, w *gateWaiter) {
	q := g.queues[cls]
	for i, x := range q {
		if x == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			g.queues[cls] = q[:len(q)-1]
			return
		}
	}
}

// rollWindowLocked advances the two-window completion counter.
func (g *Gate) rollWindowLocked(now time.Time) {
	elapsed := now.Sub(g.winStart)
	switch {
	case elapsed < gateDrainWindow:
	case elapsed < 2*gateDrainWindow:
		g.prevCount = g.winCount
		g.winCount = 0
		g.winStart = g.winStart.Add(gateDrainWindow)
	default: // idle gap: both windows are stale
		g.prevCount = 0
		g.winCount = 0
		g.winStart = now
	}
}

// drainPerSecLocked blends the two windows into events/sec: the
// previous window weighted by how much of it still falls inside the
// trailing one-window horizon.
func (g *Gate) drainPerSecLocked(now time.Time) float64 {
	g.rollWindowLocked(now)
	frac := float64(now.Sub(g.winStart)) / float64(gateDrainWindow)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return (g.prevCount*(1-frac) + g.winCount) / gateDrainWindow.Seconds()
}

// RetryAfter computes the honest backoff hint for a refused request:
// the depth of work ahead of it (queued waiters of both classes plus
// the inflight requests) divided by the recent drain rate, clamped to
// [1s, MaxRetryAfter]. With no drain observed (cold or stalled server)
// it answers the clamp ceiling rather than a fictitious small value.
func (g *Gate) RetryAfter() time.Duration {
	g.mu.Lock()
	now := g.now()
	depth := g.inflight + len(g.queues[ClassInteractive]) + len(g.queues[ClassBulk])
	rate := g.drainPerSecLocked(now)
	maxRA := g.maxRA
	g.mu.Unlock()
	if rate <= 0 {
		return maxRA
	}
	secs := math.Ceil(float64(depth) / rate)
	if secs >= maxRA.Seconds() { // clamp in float space: no Duration overflow
		return maxRA
	}
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GateStats{
		Slots:             g.slots,
		Inflight:          g.inflight,
		QueuedInteractive: len(g.queues[ClassInteractive]),
		QueuedBulk:        len(g.queues[ClassBulk]),
		QueueCapacity:     g.caps[ClassInteractive] + g.caps[ClassBulk],
		DrainPerSec:       g.drainPerSecLocked(g.now()),
	}
	slotLoad := float64(st.Inflight) / float64(st.Slots)
	queueLoad := 0.0
	if st.QueueCapacity > 0 {
		queueLoad = float64(st.QueuedInteractive+st.QueuedBulk) / float64(st.QueueCapacity)
	} else if st.Inflight >= st.Slots {
		queueLoad = slotLoad
	}
	st.Load = math.Min(1, math.Max(slotLoad, queueLoad))
	return st
}
