package host

import (
	"fmt"
	"math"

	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// PairIndex identifies one (i,j) pair of an all-against-all comparison,
// i < j.
type PairIndex struct{ I, J int }

// AllPairIndices enumerates the n·(n-1)/2 comparisons of an n-sequence
// all-against-all run in row-major order.
func AllPairIndices(n int) []PairIndex {
	out := make([]PairIndex, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, PairIndex{i, j})
		}
	}
	return out
}

// AlignAllPairs runs the §5.3 workflow: the whole dataset is small enough
// to reside in a single DPU's MRAM, so it is broadcast once to every DPU
// and each DPU is statically assigned an equal share of the quadratic
// comparison list (no CIGAR — score only). Result IDs index into
// AllPairIndices(len(seqs)).
func AlignAllPairs(cfg Config, seqs []seq.Seq) (*Report, []Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Kernel.Traceback {
		return nil, nil, fmt.Errorf("host: all-against-all mode is score-only (§5.3); disable Traceback")
	}
	if cfg.Faults.Enabled() {
		return nil, nil, fmt.Errorf("host: fault injection applies to the batch pipeline only; disable Faults for all-against-all mode")
	}
	if cfg.Escalate {
		return nil, nil, fmt.Errorf("host: the escalation ladder applies to the batch pipeline only; disable Escalate for all-against-all mode")
	}
	if cfg.Verify {
		return nil, nil, fmt.Errorf("host: result validation needs CIGARs and all-against-all mode is score-only; disable Verify")
	}
	rep := &Report{UtilizationMin: 1}
	if len(seqs) < 2 {
		return rep, nil, nil
	}
	sp := obs.StartSpan("host.align_all_pairs")
	sp.SetAttrInt("seqs", int64(len(seqs)))
	defer sp.End()

	var datasetBytes int64
	for _, s := range seqs {
		datasetBytes += int64((len(s)+3)/4) + pairDescriptorBytes
	}
	indices := AllPairIndices(len(seqs))
	nDPUs := cfg.PIM.DPUs()

	type dpuOut struct {
		out  kernel.DPUOutcome
		used bool
	}
	outs := make([]dpuOut, nDPUs)
	err := parallelFor(cfg.workers(), nDPUs, func(di int) error {
		// Balanced static split: every DPU gets the same number of
		// comparisons give or take one (§5.3's "same number of
		// alignments"), keeping the intra-rank completion spread small.
		lo := di * len(indices) / nDPUs
		hi := (di + 1) * len(indices) / nDPUs
		if lo == hi {
			return nil
		}
		d := cfg.PIM.NewDPU(di)
		// One root span per DPU so concurrent DPUs get their own lanes.
		dsp := obs.StartSpan("host.dpu")
		dsp.SetAttrInt("dpu", int64(di))
		defer dsp.End()
		// Broadcast: every DPU holds the full packed dataset.
		esp := dsp.Child("host.encode")
		offs := make([]int, len(seqs))
		for si, s := range seqs {
			off, err := d.MRAM.Alloc(seq.PackedSize(len(s)))
			if err != nil {
				esp.End()
				return fmt.Errorf("host: dataset does not fit one MRAM bank: %w", err)
			}
			seq.PackInto(d.MRAM.Bytes(off, seq.PackedSize(len(s))), s)
			offs[si] = off
		}
		kp := make([]kernel.Pair, 0, hi-lo)
		for id := lo; id < hi; id++ {
			pi := indices[id]
			kp = append(kp, kernel.Pair{
				ID:   id,
				AOff: offs[pi.I], ALen: len(seqs[pi.I]),
				BOff: offs[pi.J], BLen: len(seqs[pi.J]),
			})
		}
		esp.End()
		ksp := dsp.Child("host.kernel")
		out, err := kernel.Run(d, cfg.Kernel, kp)
		ksp.End()
		if err != nil {
			return fmt.Errorf("host: DPU %d: %w", di, err)
		}
		outs[di] = dpuOut{out: out, used: true}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Timeline: one broadcast transfer, ranks compute concurrently, tiny
	// per-rank result collections serialised on the bus afterwards.
	csp := sp.Child("host.collect")
	defer csp.End()
	inDur := cfg.PIM.HostTransferSeconds(datasetBytes)
	launch := cfg.PIM.RankLaunchOverheadUS * 1e-6
	var results []Result
	rankKernel := make([]float64, cfg.PIM.Ranks)
	rankFastest := make([]float64, cfg.PIM.Ranks)
	rankBytesOut := make([]int64, cfg.PIM.Ranks)
	rankStats := make([]pim.DPUStats, cfg.PIM.Ranks)
	rankLoaded := make([]int, cfg.PIM.Ranks)
	for i := range rankFastest {
		rankFastest[i] = math.Inf(1)
	}
	for di := range outs {
		o := &outs[di]
		if !o.used {
			continue
		}
		r := di / pim.DPUsPerRank
		sec := cfg.PIM.CyclesToSeconds(o.out.Stats.Cycles)
		if sec > rankKernel[r] {
			rankKernel[r] = sec
		}
		if sec < rankFastest[r] {
			rankFastest[r] = sec
		}
		rankLoaded[r]++
		rankStats[r].Add(o.out.Stats)
		u := o.out.Stats.Utilization()
		rep.UtilizationMean += u
		if u < rep.UtilizationMin {
			rep.UtilizationMin = u
		}
		for _, res := range o.out.Results {
			rankBytesOut[r] += resultHeaderBytes
			rep.TotalCells += res.Cells
			results = append(results, Result{PairResult: res, Rank: r, DPU: di})
		}
		rep.TotalInstr += o.out.Stats.Instr
	}

	busFree := inDur
	var makespan float64
	for r := 0; r < cfg.PIM.Ranks; r++ {
		if rankLoaded[r] == 0 {
			continue
		}
		kEnd := inDur + launch + rankKernel[r]
		outStart := math.Max(kEnd, busFree)
		outDur := cfg.PIM.HostTransferSeconds(rankBytesOut[r])
		busFree = outStart + outDur
		end := outStart + outDur
		if end > makespan {
			makespan = end
		}
		fastest := rankFastest[r]
		if math.IsInf(fastest, 1) {
			fastest = 0
		}
		rep.Ranks = append(rep.Ranks, RankStats{
			Rank: r, Batch: 0, StartSec: 0, TransferInSec: inDur,
			KernelSec: rankKernel[r], FastestDPUSec: fastest,
			TransferOutSec: outDur, EndSec: end,
			BytesIn: datasetBytes, BytesOut: rankBytesOut[r],
			DPUStats: rankStats[r], LoadedDPUs: rankLoaded[r],
		})
		rep.KernelSecSum += rankKernel[r]
		rep.TransferOutSec += outDur
		rep.BytesOut += rankBytesOut[r]
	}
	loadedDPUs := 0
	for _, n := range rankLoaded {
		loadedDPUs += n
	}
	if loadedDPUs > 0 {
		rep.UtilizationMean /= float64(loadedDPUs)
	}
	rep.TransferInSec = inDur
	rep.BytesIn = datasetBytes
	rep.MakespanSec = makespan
	rep.Alignments = len(results)
	rep.Batches = 1
	annotateResults(cfg.Kernel, rep, results)
	rep.publishMetrics()
	return rep, results, nil
}
