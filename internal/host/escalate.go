package host

import (
	"fmt"
	"time"

	"pimnw/internal/baseline"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/verify"
)

// rung is one DPU step of the degradation ladder: a band width and the
// geometry that admits it (kernel.FitGeometry trades pools for WRAM as
// the band doubles).
type rung struct {
	band      int
	geom      kernel.Geometry
	traceback bool
	// overflowOnly marks the same-band full-width rung that backs a
	// narrow-lane base kernel: it only receives pairs the narrow kernel
	// saturated on — a clipped or out-of-band pair needs width, and
	// re-running it at the same band would reproduce the same failure.
	overflowOnly bool
}

func (r rung) provenance() string {
	if r.traceback {
		return fmt.Sprintf("dpu-banded@%d", r.band)
	}
	return fmt.Sprintf("dpu-score-only@%d", r.band)
}

// buildLadder enumerates the DPU rungs below the configured kernel:
// doubled bands in the requested mode while any geometry admits them,
// then — for traceback runs — one score-only rung at the widest feasible
// band, strictly wider than the deepest traceback rung (a same-width
// score-only kernel would reproduce the same clip). The exact CPU
// baseline is the implicit final rung and is not listed here.
func buildLadder(cfg Config) []rung {
	var rungs []rung
	maxBand := cfg.maxBand()
	// Ladder rungs always run the full-width kernel: escalation is the
	// correctness path, and a narrow kernel that saturated once would be
	// re-risking the same saturation at every wider band.
	wideK := cfg.Kernel
	wideK.LaneWidth = 64
	// A narrow-lane base kernel gets one extra rung before the band
	// doubles: the full-width kernel at the *same* band, taking exactly the
	// pairs the narrow kernel overflowed on — saturation is a precision
	// failure, not a band failure.
	if cfg.Kernel.Lanes(cfg.Kernel.Band, cfg.Kernel.Traceback) == 16 {
		if g, ok := kernel.FitGeometry(wideK, cfg.Kernel.Band, false); ok {
			rungs = append(rungs, rung{band: cfg.Kernel.Band, geom: g, traceback: false, overflowOnly: true})
		}
	}
	for b := cfg.Kernel.Band * 2; b <= maxBand; b *= 2 {
		g, ok := kernel.FitGeometry(wideK, b, cfg.Kernel.Traceback)
		if !ok {
			break // the working set grows with the band: wider cannot fit either
		}
		rungs = append(rungs, rung{band: b, geom: g, traceback: cfg.Kernel.Traceback})
	}
	if cfg.Kernel.Traceback {
		floor := cfg.Kernel.Band
		if len(rungs) > 0 {
			floor = rungs[len(rungs)-1].band
		}
		for b := maxBand; b > floor; b /= 2 {
			if g, ok := kernel.FitGeometry(wideK, b, false); ok {
				rungs = append(rungs, rung{band: b, geom: g, traceback: false})
				break
			}
		}
	}
	return rungs
}

// escalate walks every out-of-band or clipped pair of the first round
// down the degradation ladder until it has a trusted answer:
//
//	dpu-banded@2w, dpu-banded@4w, ...   (pools traded for WRAM)
//	dpu-score-only@<widest feasible>    (traceback runs only)
//	cpu-exact                           (full-matrix Gotoh, always feasible)
//
// Pairs whose sequences cannot fit a rung's MRAM footprint skip it
// (FitsMRAM); pairs a round abandons under injected faults are rescued by
// the CPU rung, so with escalation on nothing is ever dropped. Escalation
// rounds run sequentially after the first round on the simulated
// timeline; the CPU rung is host-side work and is accounted separately in
// Report.CPUFallbackSec. Results come back in input order, each stamped
// with its Status and the Provenance of the engine that answered it.
// Every DPU rung executes on the backend that ran the first round, so a
// fleet shard escalates on its own server.
func escalate(be Backend, cfg Config, pairs []Pair, rep *Report, first []Result, sp *obs.Span) ([]Result, error) {
	byID := make(map[int]Pair, len(pairs))
	for _, p := range pairs {
		if _, dup := byID[p.ID]; dup {
			return nil, fmt.Errorf("host: escalation requires unique pair IDs; ID %d repeats", p.ID)
		}
		byID[p.ID] = p
	}

	final := make(map[int]Result, len(pairs))
	baseProv := kernelProvenance(cfg.Kernel)
	var pending []int
	overflowed := make(map[int]bool)
	for _, r := range first {
		switch {
		case r.Overflowed:
			rep.OverflowedPairs++
			overflowed[r.ID] = true
			pending = append(pending, r.ID)
		case !r.InBand:
			rep.OutOfBandPairs++
			pending = append(pending, r.ID)
		case r.Clipped:
			rep.ClippedPairs++
			pending = append(pending, r.ID)
		default:
			r.Status = StatusOK
			r.Provenance = baseProv
			final[r.ID] = r
		}
	}
	// Pairs the first round abandoned (retries exhausted under faults) are
	// rescued by the CPU rung rather than dropped: with escalation on,
	// nothing is ever abandoned.
	cpuIDs := append([]int(nil), rep.AbandonedIDs...)
	rep.AbandonedPairs, rep.AbandonedIDs = 0, nil

	round := 0
	for _, rg := range buildLadder(cfg) {
		if len(pending) == 0 {
			break
		}
		// Per-pair MRAM admission: band width only grows down the ladder,
		// so a pair that cannot fit this rung's footprint waits for the
		// score-only rung (no BT scratch) or the CPU.
		var runnable, skipped []int
		for _, id := range pending {
			p := byID[id]
			if rg.overflowOnly && !overflowed[id] {
				skipped = append(skipped, id)
				continue
			}
			if kernel.FitsMRAM(cfg.PIM, len(p.A), len(p.B), rg.band, rg.traceback) {
				runnable = append(runnable, id)
			} else {
				skipped = append(skipped, id)
			}
		}
		if len(runnable) == 0 {
			pending = skipped
			continue
		}
		round++

		roundCfg := cfg
		roundCfg.Kernel.Band = rg.band
		roundCfg.Kernel.Geometry = rg.geom
		roundCfg.Kernel.Traceback = rg.traceback
		roundCfg.Kernel.LaneWidth = 64 // ladder rungs are always full-width
		// Decorrelate this round's injected faults from the earlier
		// rounds': the (batch, attempt, dpu) draw coordinates recur every
		// round, and reusing the seed would make the same fault chase the
		// same pairs all the way down the ladder.
		roundCfg.Faults.Seed = cfg.Faults.Seed + int64(round)*1000003
		model, err := pim.NewFaultModel(roundCfg.Faults)
		if err != nil {
			return nil, err
		}
		roundCfg.faults = model

		rp := make([]Pair, len(runnable))
		for i, id := range runnable {
			rp[i] = byID[id]
		}
		esp := sp.Child("host.escalate")
		esp.SetAttrInt("round", int64(round))
		esp.SetAttrInt("band", int64(rg.band))
		esp.SetAttrInt("pairs", int64(len(rp)))
		sub, subResults, err := be.Round(roundCfg, rp, esp)
		esp.End()
		if err != nil {
			return nil, err
		}
		start := rep.MakespanSec
		cpuIDs = append(cpuIDs, sub.AbandonedIDs...)
		mergeRound(rep, sub)
		rep.EscalationRounds++
		rep.Escalations += len(runnable)
		rep.Escalation = append(rep.Escalation, EscalationRound{
			Round: round, Band: rg.band, Provenance: rg.provenance(),
			Pairs: len(runnable), StartSec: start, EndSec: rep.MakespanSec,
		})
		obs.Info("escalation round", "trace_id", cfg.TraceID,
			"round", round, "pairs", len(runnable), "rung", rg.provenance())
		obs.Flight().Recordf("escalation", cfg.TraceID,
			"round %d: %d pairs redispatched at %s", round, len(runnable), rg.provenance())

		next := skipped
		for _, r := range subResults {
			if r.Overflowed || !r.InBand || r.Clipped {
				next = append(next, r.ID)
				continue
			}
			if rg.traceback == cfg.Kernel.Traceback {
				r.Status = StatusEscalated
			} else {
				r.Status = StatusDegradedScoreOnly
				rep.DegradedScoreOnly++
			}
			r.Provenance = rg.provenance()
			final[r.ID] = r
		}
		pending = next
	}

	// The last rung: everything still unresolved gets the exact
	// full-matrix answer on the host CPU.
	cpuIDs = append(cpuIDs, pending...)
	if len(cpuIDs) > 0 {
		opts := baseline.Options{
			Params:    cfg.Kernel.Params,
			Threads:   cfg.Workers,
			Traceback: cfg.Kernel.Traceback,
			Exact:     true,
		}
		bp := make([]baseline.Pair, len(cpuIDs))
		for i, id := range cpuIDs {
			p := byID[id]
			bp[i] = baseline.Pair{ID: id, A: p.A, B: p.B}
		}
		csp := sp.Child("host.cpu_rescue")
		csp.SetAttrInt("pairs", int64(len(bp)))
		out, err := baseline.Run(opts, bp)
		csp.End()
		if err != nil {
			return nil, err
		}
		rep.CPUFallbackSec += out.WallSeconds
		rep.DegradedCPU += len(cpuIDs)
		obs.Info("cpu rescue", "trace_id", cfg.TraceID,
			"pairs", len(cpuIDs), "host_sec", out.WallSeconds)
		obs.Flight().Recordf("escalation", cfg.TraceID,
			"cpu rescue: %d pairs aligned exactly in %.3fs host time", len(cpuIDs), out.WallSeconds)
		for _, br := range out.Results {
			pr := kernel.PairResult{ID: br.ID, Score: br.Score, InBand: true, Cells: br.Cells}
			if br.Cigar != nil {
				pr.Cigar = []byte(br.Cigar.String())
			}
			if cfg.Verify && cfg.Kernel.Traceback {
				rep.VerifyChecked++
				p := byID[br.ID]
				vStart := time.Now()
				err := verify.CheckPair(p.A, p.B, cfg.Kernel.Params, br.Score, string(pr.Cigar))
				rep.VerifySec += time.Since(vStart).Seconds()
				if err != nil {
					rep.VerifyFailures++
					obs.Logf("verify: cpu-exact pair %d: %v", br.ID, err)
				}
			}
			final[br.ID] = Result{PairResult: pr, Rank: -1, DPU: -1,
				Status: StatusDegradedCPU, Provenance: "cpu-exact"}
		}
	}

	// Emit in input order; every pair must have resolved on some rung.
	results := make([]Result, 0, len(pairs))
	for _, p := range pairs {
		r, ok := final[p.ID]
		if !ok {
			return nil, fmt.Errorf("host: pair %d fell through the degradation ladder", p.ID)
		}
		results = append(results, r)
		rep.countProvenance(r.Provenance)
		switch r.Status {
		case StatusDegradedScoreOnly, StatusDegradedCPU:
			rep.addIssue(PairIssue{ID: r.ID, Status: r.Status, Provenance: r.Provenance})
		}
	}
	rep.Alignments = len(results)
	return results, nil
}

// mergeRound appends one escalation round's report onto the parent
// timeline. The fabric is reused sequentially — the round starts when the
// parent's makespan ends — so every rank slot and fault timestamp is
// rebased by the current makespan, and batch numbers continue past the
// parent's. Abandoned-pair bookkeeping is deliberately not merged: the
// caller rescues those pairs on the CPU rung.
func mergeRound(dst, src *Report) {
	offset := dst.MakespanSec
	batchBase := dst.Batches
	for _, rs := range src.Ranks {
		rs.StartSec += offset
		rs.EndSec += offset
		rs.Batch += batchBase
		for i := range rs.Faults {
			rs.Faults[i].AtSec += offset
			rs.Faults[i].Batch += batchBase
		}
		dst.Ranks = append(dst.Ranks, rs)
	}
	dst.MakespanSec = offset + src.MakespanSec
	dst.TransferInSec += src.TransferInSec
	dst.TransferOutSec += src.TransferOutSec
	dst.KernelSecSum += src.KernelSecSum
	dst.WaitSec += src.WaitSec
	dst.BytesIn += src.BytesIn
	dst.BytesOut += src.BytesOut
	dst.TotalCells += src.TotalCells
	dst.TotalInstr += src.TotalInstr
	dst.Retries += src.Retries
	dst.Redispatches += src.Redispatches
	dst.FaultsDetected += src.FaultsDetected
	dst.RetrySec += src.RetrySec
	dst.VerifyChecked += src.VerifyChecked
	dst.VerifyFailures += src.VerifyFailures
	dst.VerifySec += src.VerifySec
	if src.Batches > 0 {
		total := dst.Batches + src.Batches
		dst.UtilizationMean = (dst.UtilizationMean*float64(dst.Batches) +
			src.UtilizationMean*float64(src.Batches)) / float64(total)
		dst.Batches = total
	}
	if src.UtilizationMin < dst.UtilizationMin {
		dst.UtilizationMin = src.UtilizationMin
	}
}
