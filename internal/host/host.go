// Package host implements the paper's host program (§4.1): it encodes DNA
// 2 bits per base while batching, balances alignment workloads across DPUs
// with the sorted greedy (LPT) heuristic of §4.1.2 using the
// Workload = (m+n)·w estimate, dispatches rank-sized batches through a FIFO
// queue, launches the (simulated) DPUs, and collects scores and CIGARs. A
// discrete-event timeline prices the run: host↔PiM transfers share the DDR
// bus at the measured ~60 GB/s, ranks execute independently, and a rank's
// results cannot be collected before every DPU of the rank has finished —
// the barrier that makes intra-rank balance critical.
package host

import (
	"fmt"
	"runtime"

	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// Pair is one host-side alignment request.
type Pair struct {
	ID   int
	A, B seq.Seq
}

// Workload is the paper's equation (6) estimate for the pair under band w.
func (p Pair) Workload(w int) int64 { return int64(len(p.A)+len(p.B)) * int64(w) }

// Config drives one orchestrated run.
type Config struct {
	PIM    pim.Config
	Kernel kernel.Config
	// GroupPairs is the number of pairs read from input at once (the
	// paper's read-group parameter); each group is split into one batch
	// per rank and queued. Zero means one group for the whole input.
	GroupPairs int
	// Balance selects the intra-rank DPU assignment policy; the zero
	// value is the paper's LPT heuristic.
	Balance BalancePolicy
	// Workers bounds the simulation's host-side parallelism (not part of
	// the modelled timing). Zero means GOMAXPROCS.
	Workers int
}

// Validate checks cross-package consistency.
func (c Config) Validate() error {
	if err := c.PIM.Validate(); err != nil {
		return err
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.GroupPairs < 0 || c.Workers < 0 {
		return fmt.Errorf("host: negative GroupPairs/Workers")
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one completed alignment.
type Result struct {
	kernel.PairResult
	Rank, DPU int // where it executed
}

// RankStats aggregates one rank execution (one batch).
type RankStats struct {
	Rank           int
	Batch          int
	StartSec       float64 // simulated timeline
	TransferInSec  float64
	KernelSec      float64 // slowest DPU of the rank
	FastestDPUSec  float64 // fastest *loaded* DPU: the balance gap metric
	TransferOutSec float64
	EndSec         float64
	BytesIn        int64
	BytesOut       int64
	DPUStats       pim.DPUStats // summed over the rank's DPUs
	LoadedDPUs     int
}

// Report is the run-level outcome the experiments consume.
type Report struct {
	MakespanSec     float64 // simulated wall clock, dispatch to last collection
	TransferInSec   float64 // total bus time spent on input transfers
	TransferOutSec  float64 // total bus time spent on result collection
	KernelSecSum    float64 // Σ rank kernel times (the compute backbone)
	BytesIn         int64
	BytesOut        int64
	TotalCells      int64
	TotalInstr      int64
	Alignments      int
	Batches         int
	Ranks           []RankStats
	UtilizationMin  float64
	UtilizationMean float64
}

// HostOverheadFraction is the share of the makespan not covered by DPU
// kernel execution — the paper reports 15 % on S1000 shrinking to <0.1 %
// on S30000.
func (r *Report) HostOverheadFraction() float64 {
	if r.MakespanSec == 0 {
		return 0
	}
	// Kernel time on the critical path: approximate with the per-batch
	// kernel spans laid over the timeline (ranks overlap, so use the
	// fraction of the makespan the busiest timeline slice spends in
	// kernels). A simple, monotone proxy: 1 - kernel-span coverage.
	var kernelSpan float64
	for _, rs := range r.Ranks {
		kernelSpan += rs.KernelSec
	}
	ranksUsed := map[int]bool{}
	for _, rs := range r.Ranks {
		ranksUsed[rs.Rank] = true
	}
	if len(ranksUsed) == 0 {
		return 0
	}
	perRank := kernelSpan / float64(len(ranksUsed))
	f := 1 - perRank/r.MakespanSec
	if f < 0 {
		return 0
	}
	return f
}
