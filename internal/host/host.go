// Package host implements the paper's host program (§4.1): it encodes DNA
// 2 bits per base while batching, balances alignment workloads across DPUs
// with the sorted greedy (LPT) heuristic of §4.1.2 using the
// Workload = (m+n)·w estimate, dispatches rank-sized batches through a FIFO
// queue, launches the (simulated) DPUs, and collects scores and CIGARs. A
// discrete-event timeline prices the run: host↔PiM transfers share the DDR
// bus at the measured ~60 GB/s, ranks execute independently, and a rank's
// results cannot be collected before every DPU of the rank has finished —
// the barrier that makes intra-rank balance critical.
package host

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// Pair is one host-side alignment request.
type Pair struct {
	ID   int
	A, B seq.Seq
}

// Workload is the paper's equation (6) estimate for the pair under band w.
func (p Pair) Workload(w int) int64 { return int64(len(p.A)+len(p.B)) * int64(w) }

// Config drives one orchestrated run.
type Config struct {
	PIM    pim.Config
	Kernel kernel.Config
	// GroupPairs is the number of pairs read from input at once (the
	// paper's read-group parameter); each group is split into one batch
	// per rank and queued. Zero means one group for the whole input.
	GroupPairs int
	// Balance selects the intra-rank DPU assignment policy; the zero
	// value is the paper's LPT heuristic.
	Balance BalancePolicy
	// Workers bounds the simulation's host-side parallelism (not part of
	// the modelled timing). Zero means GOMAXPROCS.
	Workers int
	// Faults configures the simulated fabric's fault injection; the zero
	// value is a perfect fabric (no stalls, crashes, corruptions or rank
	// dropouts).
	Faults pim.FaultConfig
	// MaxRetries bounds the recovery attempts per batch beyond the first
	// launch. When a batch still has failed pairs after MaxRetries
	// redispatches, those pairs are abandoned and reported, and the run
	// degrades gracefully instead of erroring.
	MaxRetries int
	// BatchDeadlineSec is the modelled per-attempt deadline: a DPU that
	// has not delivered results by then is declared failed (this is how
	// stalled DPUs are detected) and its pairs are redispatched. Zero
	// means no deadline — stalled DPUs are waited out.
	BatchDeadlineSec float64
	// RetryBackoffSec is the modelled base delay before a retry; attempt
	// k waits RetryBackoffSec * 2^k, plus up to 50 % deterministic
	// jitter. Zero means immediate retries.
	RetryBackoffSec float64
	// Escalate turns on the degradation ladder: pairs whose result is
	// out-of-band or band-edge-clipped are re-dispatched at doubled band
	// widths (trading kernel pools for WRAM via kernel.FitGeometry), then
	// degraded to the score-only kernel at the widest feasible band, and
	// finally to the exact CPU baseline — so every pair gets a correct
	// answer, with provenance recording which rung produced it.
	Escalate bool
	// MaxBand caps the ladder's band doubling; zero means DefaultMaxBand.
	// Ignored unless Escalate is set.
	MaxBand int
	// Verify re-derives every in-band traceback result from its CIGAR and
	// the cost table (internal/verify) before accepting it; a DPU launch
	// with any invalid result is treated exactly like a corrupted transfer
	// (results dropped, pairs redispatched, DPU kept in rotation).
	// Score-only results carry no CIGAR to re-derive, so Verify is a
	// no-op for score-only kernels.
	Verify bool
	// TraceID correlates everything this run emits — wall-clock spans,
	// modelled Perfetto slices, flight-recorder events, structured log
	// lines, the report — with the request that triggered it. A serving
	// frontend sets it per request (host.Session fills it from the
	// context's obs.TraceIDFrom when empty); "" means untraced. It never
	// affects results or modelled timing.
	TraceID string
	// Backends is the fleet: when set, every workload is sharded across
	// these backends by estimated makespan (fleet.go), with whole-backend
	// loss redispatched onto the survivors. Empty means the single
	// simulated fabric described by PIM — the pre-fleet pipeline,
	// byte-identical reports included. Backends carry state (health) and
	// are shared across the micro-batches of a session.
	Backends []Backend

	// faults is the model built from Faults by AlignPairs (nil = perfect
	// fabric); carried here so every runBatch shares one instance.
	faults *pim.FaultModel
}

// DefaultMaxBand is the escalation ladder's band cap when Config.MaxBand
// is zero: wide enough that only pathological pairs reach the CPU rung.
const DefaultMaxBand = 2048

func (c Config) maxBand() int {
	if c.MaxBand > 0 {
		return c.MaxBand
	}
	return DefaultMaxBand
}

// Validate checks cross-package consistency.
func (c Config) Validate() error {
	if err := c.PIM.Validate(); err != nil {
		return err
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.GroupPairs < 0 || c.Workers < 0 {
		return fmt.Errorf("host: negative GroupPairs/Workers")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("host: negative MaxRetries")
	}
	if c.BatchDeadlineSec < 0 || c.RetryBackoffSec < 0 {
		return fmt.Errorf("host: negative BatchDeadlineSec/RetryBackoffSec")
	}
	if c.MaxBand < 0 {
		return fmt.Errorf("host: negative MaxBand")
	}
	if c.Escalate && c.MaxBand > 0 && c.MaxBand < c.Kernel.Band {
		return fmt.Errorf("host: MaxBand %d below the kernel band %d", c.MaxBand, c.Kernel.Band)
	}
	seen := make(map[string]bool, len(c.Backends))
	for i, be := range c.Backends {
		if be == nil {
			return fmt.Errorf("host: fleet backend %d is nil", i)
		}
		name := be.Name()
		if name == "" {
			return fmt.Errorf("host: fleet backend %d has an empty name", i)
		}
		if seen[name] {
			return fmt.Errorf("host: fleet backend name %q repeats", name)
		}
		seen[name] = true
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PairStatus is the typed per-pair outcome the report and exports carry —
// the replacement for sniffing the core.NegInf score sentinel to tell a
// failed alignment from a real one.
type PairStatus int

const (
	// StatusOK: the banded result is trusted as-is (in band, no clip).
	StatusOK PairStatus = iota
	// StatusClipped: the traceback touched the band edge; the score is a
	// lower bound, not a certificate. Final only when escalation is off.
	StatusClipped
	// StatusOutOfBand: (m,n) fell outside the band; the score is the
	// sentinel, not an alignment. Final only when escalation is off.
	StatusOutOfBand
	// StatusEscalated: resolved by a wider-band traceback re-dispatch.
	StatusEscalated
	// StatusDegradedScoreOnly: resolved by the score-only kernel at a wide
	// band — the score is trusted but no CIGAR was produced.
	StatusDegradedScoreOnly
	// StatusDegradedCPU: resolved by the exact full-matrix CPU baseline.
	StatusDegradedCPU
	// StatusAbandoned: no answer — retries exhausted with escalation off.
	StatusAbandoned
	// StatusOverflowed: the 16-bit narrow-lane kernel saturated on this
	// pair and its score is meaningless. Final only when escalation is
	// off; the ladder's same-band full-width rung resolves it otherwise.
	StatusOverflowed
)

var pairStatusNames = [...]string{
	StatusOK:                "ok",
	StatusClipped:           "clipped",
	StatusOutOfBand:         "out-of-band",
	StatusEscalated:         "escalated",
	StatusDegradedScoreOnly: "degraded-score-only",
	StatusDegradedCPU:       "degraded-cpu",
	StatusAbandoned:         "abandoned",
	StatusOverflowed:        "overflowed",
}

func (s PairStatus) String() string {
	if s < 0 || int(s) >= len(pairStatusNames) {
		return "unknown"
	}
	return pairStatusNames[s]
}

// MarshalJSON emits the status name, so reports read "clipped" rather
// than an enum ordinal that shifts when a status is added.
func (s PairStatus) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Trusted reports whether the pair's score is an exact answer for its
// provenance engine (everything but clipped/out-of-band/abandoned).
func (s PairStatus) Trusted() bool {
	switch s {
	case StatusOK, StatusEscalated, StatusDegradedScoreOnly, StatusDegradedCPU:
		return true
	}
	return false
}

// ParsePairStatus maps a status name back to its value — the inverse of
// String, used when replaying cached results whose status is persisted
// as the stable name rather than the enum ordinal. Unknown names (from a
// future or corrupted record) report ok=false and must be treated as a
// cache miss, never coerced to a status.
func ParsePairStatus(name string) (PairStatus, bool) {
	for s, n := range pairStatusNames {
		if n == name {
			return PairStatus(s), true
		}
	}
	return 0, false
}

// Result is one completed alignment.
type Result struct {
	kernel.PairResult
	Rank, DPU int // where it executed; -1/-1 for the CPU rung
	// Status classifies the outcome; Provenance names the engine that
	// produced the answer of record: "dpu-banded@<w>", "dpu-score-only@<w>"
	// or "cpu-exact".
	Status     PairStatus
	Provenance string
	// Cached marks a result replayed from the persistent result cache
	// rather than computed this run. Status and Provenance still describe
	// the original computation — a hit never relabels.
	Cached bool
	// Backend names the fleet server that computed the answer ("" on the
	// single fabric). It is placement, not provenance: the same pair lands
	// on the same Provenance engine whichever backend runs it.
	Backend string
}

// PairIssue is one pair that did not resolve cleanly on the first rung:
// degraded, clipped, out-of-band or abandoned, with the provenance of
// whatever answer (if any) it ended up with.
type PairIssue struct {
	ID         int        `json:"id"`
	Status     PairStatus `json:"status"`
	Provenance string     `json:"provenance,omitempty"`
}

// EscalationRound records one executed rung of the degradation ladder on
// the simulated timeline.
type EscalationRound struct {
	Round      int     `json:"round"`
	Band       int     `json:"band"`
	Provenance string  `json:"provenance"`
	Pairs      int     `json:"pairs"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
}

// FaultEvent records one injected fault as the host experienced it.
// AtSec is batch-relative while the batch executes and rebased to the
// absolute simulated timeline when the batch is scheduled.
type FaultEvent struct {
	Batch   int     `json:"batch"`
	Attempt int     `json:"attempt"`
	DPU     int     `json:"dpu"` // rank-relative DPU index; -1 for rank-level faults
	Kind    string  `json:"kind"`
	AtSec   float64 `json:"at_sec"`
}

// RankStats aggregates one rank execution (one batch).
type RankStats struct {
	Rank           int
	Batch          int
	StartSec       float64 // simulated timeline
	TransferInSec  float64
	KernelSec      float64 // kernel compute: every attempt's slowest DPU
	FastestDPUSec  float64 // fastest *loaded* DPU: the balance gap metric
	TransferOutSec float64
	EndSec         float64
	BytesIn        int64
	BytesOut       int64
	DPUStats       pim.DPUStats // summed over the rank's accepted DPU launches
	LoadedDPUs     int
	// Recovery outcome of the batch: launch attempts (1 = clean run),
	// modelled seconds the rank sat waiting rather than computing
	// (backoff intervals, fail-fast fault detection), modelled seconds
	// attributable to recovery overall (failed attempts + waits), and the
	// faults injected while it executed. The rank's busy window is
	// KernelSec + WaitSec; RetrySec ≤ KernelSec + WaitSec.
	Attempts int
	WaitSec  float64
	RetrySec float64
	Faults   []FaultEvent `json:",omitempty"`
	// Backend names the fleet server this rank slot belongs to ("" on the
	// single fabric, where the report format predates fleets).
	Backend string `json:",omitempty"`
}

// Report is the run-level outcome the experiments consume.
type Report struct {
	MakespanSec     float64 // simulated wall clock, dispatch to last collection
	TransferInSec   float64 // total bus time spent on input transfers
	TransferOutSec  float64 // total bus time spent on result collection
	KernelSecSum    float64 // Σ rank kernel times (the compute backbone)
	BytesIn         int64
	BytesOut        int64
	TotalCells      int64
	TotalInstr      int64
	Alignments      int
	Batches         int
	Ranks           []RankStats
	UtilizationMin  float64
	UtilizationMean float64
	// Recovery outcome of the run (all zero on a perfect fabric):
	// Retries counts batch re-launches beyond each batch's first attempt,
	// Redispatches counts pair executions moved onto surviving DPUs,
	// FaultsDetected counts the injected faults the host noticed (crashed
	// launches, checksum mismatches, deadline timeouts, rank dropouts —
	// a slowdown that stays under the deadline is invisible),
	// AbandonedPairs (with their IDs) are the pairs dropped after retries
	// were exhausted, WaitSec is the modelled time ranks sat idle between
	// attempts (backoff intervals and fail-fast fault detection — waiting,
	// never compute, so it is kept out of KernelSecSum), and RetrySec is
	// the modelled time spent beyond each batch's first launch window:
	// retry attempts, backoff waits and failure detection.
	Retries        int
	Redispatches   int
	FaultsDetected int
	AbandonedPairs int
	AbandonedIDs   []int
	WaitSec        float64
	RetrySec       float64
	// Integrity outcome of the run. OutOfBandPairs and ClippedPairs count
	// band failures as first observed (before any escalation resolved
	// them); Escalations counts pair re-dispatches onto wider-band DPU
	// rungs over EscalationRounds executed rungs; DegradedScoreOnly and
	// DegradedCPU count pairs whose answer of record came from a lower
	// rung than requested; VerifyChecked/VerifyFailures count the CIGAR
	// re-derivation checks (Config.Verify); CPUFallbackSec and VerifySec
	// are measured host wall-clock spent on the CPU rung and on CIGAR
	// re-derivation — host-side work, deliberately NOT folded into the
	// modelled MakespanSec.
	// OverflowedPairs counts 16-bit narrow-lane saturations as first
	// observed, alongside the band-failure tallies.
	OutOfBandPairs    int
	ClippedPairs      int
	OverflowedPairs   int
	Escalations       int
	EscalationRounds  int
	DegradedScoreOnly int
	DegradedCPU       int
	VerifyChecked     int
	VerifyFailures    int
	CPUFallbackSec    float64
	VerifySec         float64
	// Provenance counts final answers by producing engine; Escalation
	// records the executed ladder rungs; Issues lists every pair that did
	// not resolve cleanly on the first rung (capped at maxReportIssues).
	Provenance map[string]int
	Escalation []EscalationRound
	Issues     []PairIssue
	// Result-cache outcome of the run: CacheHits counts pairs served from
	// the persistent result cache without reaching the balancer,
	// CacheMisses counts pairs that went on to compute (only counted when
	// a cache is attached), and DedupedPairs counts pairs that shared a
	// computation with an identical in-batch sibling. Cache hits and
	// deduped pairs still count in Alignments — every submission yields
	// exactly one delivered result.
	CacheHits    int
	CacheMisses  int
	DedupedPairs int
	// TraceID is the request trace this run belongs to (Config.TraceID),
	// stamped onto every Perfetto slice the report exports; "" when the
	// run was untraced.
	TraceID string
	// Backends is the per-server breakdown of a fleet run, in fleet
	// order; nil on the single fabric.
	Backends []BackendStats
}

// maxReportIssues caps Report.Issues so a run where every pair degrades
// still produces a bounded report; the counters stay exact.
const maxReportIssues = 10000

func (r *Report) addIssue(is PairIssue) {
	if len(r.Issues) < maxReportIssues {
		r.Issues = append(r.Issues, is)
	}
}

func (r *Report) countProvenance(p string) {
	if r.Provenance == nil {
		r.Provenance = make(map[string]int)
	}
	r.Provenance[p]++
}

// HostOverheadFraction is the share of the makespan during which no DPU
// kernel was computing anywhere — the paper reports 15 % on S1000
// shrinking to <0.1 % on S30000. It is derived from the rank timelines:
// the union of the per-batch kernel windows [kernel start, kernel start +
// KernelSec] is laid over [0, MakespanSec], and the uncovered remainder
// (transfers, launch overhead, backoff waits, collection tails) is the
// overhead. Because KernelSec is pure compute and the union can never
// exceed the makespan, the result is in [0,1] by construction; the clamp
// only guards float rounding, not accounting bugs.
func (r *Report) HostOverheadFraction() float64 {
	if r.MakespanSec <= 0 {
		return 0
	}
	type span struct{ from, to float64 }
	spans := make([]span, 0, len(r.Ranks))
	for _, rs := range r.Ranks {
		from := rs.StartSec + rs.TransferInSec
		to := from + rs.KernelSec
		if to > r.MakespanSec {
			to = r.MakespanSec
		}
		if from < 0 {
			from = 0
		}
		if to > from {
			spans = append(spans, span{from, to})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	var covered, edge float64
	for _, s := range spans {
		if s.from > edge {
			edge = s.from
		}
		if s.to > edge {
			covered += s.to - edge
			edge = s.to
		}
	}
	f := 1 - covered/r.MakespanSec
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
