// Package host implements the paper's host program (§4.1): it encodes DNA
// 2 bits per base while batching, balances alignment workloads across DPUs
// with the sorted greedy (LPT) heuristic of §4.1.2 using the
// Workload = (m+n)·w estimate, dispatches rank-sized batches through a FIFO
// queue, launches the (simulated) DPUs, and collects scores and CIGARs. A
// discrete-event timeline prices the run: host↔PiM transfers share the DDR
// bus at the measured ~60 GB/s, ranks execute independently, and a rank's
// results cannot be collected before every DPU of the rank has finished —
// the barrier that makes intra-rank balance critical.
package host

import (
	"fmt"
	"runtime"

	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// Pair is one host-side alignment request.
type Pair struct {
	ID   int
	A, B seq.Seq
}

// Workload is the paper's equation (6) estimate for the pair under band w.
func (p Pair) Workload(w int) int64 { return int64(len(p.A)+len(p.B)) * int64(w) }

// Config drives one orchestrated run.
type Config struct {
	PIM    pim.Config
	Kernel kernel.Config
	// GroupPairs is the number of pairs read from input at once (the
	// paper's read-group parameter); each group is split into one batch
	// per rank and queued. Zero means one group for the whole input.
	GroupPairs int
	// Balance selects the intra-rank DPU assignment policy; the zero
	// value is the paper's LPT heuristic.
	Balance BalancePolicy
	// Workers bounds the simulation's host-side parallelism (not part of
	// the modelled timing). Zero means GOMAXPROCS.
	Workers int
	// Faults configures the simulated fabric's fault injection; the zero
	// value is a perfect fabric (no stalls, crashes, corruptions or rank
	// dropouts).
	Faults pim.FaultConfig
	// MaxRetries bounds the recovery attempts per batch beyond the first
	// launch. When a batch still has failed pairs after MaxRetries
	// redispatches, those pairs are abandoned and reported, and the run
	// degrades gracefully instead of erroring.
	MaxRetries int
	// BatchDeadlineSec is the modelled per-attempt deadline: a DPU that
	// has not delivered results by then is declared failed (this is how
	// stalled DPUs are detected) and its pairs are redispatched. Zero
	// means no deadline — stalled DPUs are waited out.
	BatchDeadlineSec float64
	// RetryBackoffSec is the modelled base delay before a retry; attempt
	// k waits RetryBackoffSec * 2^k, plus up to 50 % deterministic
	// jitter. Zero means immediate retries.
	RetryBackoffSec float64

	// faults is the model built from Faults by AlignPairs (nil = perfect
	// fabric); carried here so every runBatch shares one instance.
	faults *pim.FaultModel
}

// Validate checks cross-package consistency.
func (c Config) Validate() error {
	if err := c.PIM.Validate(); err != nil {
		return err
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.GroupPairs < 0 || c.Workers < 0 {
		return fmt.Errorf("host: negative GroupPairs/Workers")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("host: negative MaxRetries")
	}
	if c.BatchDeadlineSec < 0 || c.RetryBackoffSec < 0 {
		return fmt.Errorf("host: negative BatchDeadlineSec/RetryBackoffSec")
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one completed alignment.
type Result struct {
	kernel.PairResult
	Rank, DPU int // where it executed
}

// FaultEvent records one injected fault as the host experienced it.
// AtSec is batch-relative while the batch executes and rebased to the
// absolute simulated timeline when the batch is scheduled.
type FaultEvent struct {
	Batch   int     `json:"batch"`
	Attempt int     `json:"attempt"`
	DPU     int     `json:"dpu"` // rank-relative DPU index; -1 for rank-level faults
	Kind    string  `json:"kind"`
	AtSec   float64 `json:"at_sec"`
}

// RankStats aggregates one rank execution (one batch).
type RankStats struct {
	Rank           int
	Batch          int
	StartSec       float64 // simulated timeline
	TransferInSec  float64
	KernelSec      float64 // kernel window: slowest DPU, plus recovery attempts
	FastestDPUSec  float64 // fastest *loaded* DPU: the balance gap metric
	TransferOutSec float64
	EndSec         float64
	BytesIn        int64
	BytesOut       int64
	DPUStats       pim.DPUStats // summed over the rank's accepted DPU launches
	LoadedDPUs     int
	// Recovery outcome of the batch: launch attempts (1 = clean run),
	// modelled seconds spent on failed attempts and backoff waits, and
	// the faults injected while it executed.
	Attempts int
	RetrySec float64
	Faults   []FaultEvent `json:",omitempty"`
}

// Report is the run-level outcome the experiments consume.
type Report struct {
	MakespanSec     float64 // simulated wall clock, dispatch to last collection
	TransferInSec   float64 // total bus time spent on input transfers
	TransferOutSec  float64 // total bus time spent on result collection
	KernelSecSum    float64 // Σ rank kernel times (the compute backbone)
	BytesIn         int64
	BytesOut        int64
	TotalCells      int64
	TotalInstr      int64
	Alignments      int
	Batches         int
	Ranks           []RankStats
	UtilizationMin  float64
	UtilizationMean float64
	// Recovery outcome of the run (all zero on a perfect fabric):
	// Retries counts batch re-launches beyond each batch's first attempt,
	// Redispatches counts pair executions moved onto surviving DPUs,
	// FaultsDetected counts the injected faults the host noticed (crashed
	// launches, checksum mismatches, deadline timeouts, rank dropouts —
	// a slowdown that stays under the deadline is invisible),
	// AbandonedPairs (with their IDs) are the pairs dropped after retries
	// were exhausted, and RetrySec is the modelled time spent beyond each
	// batch's first launch window: retry attempts, backoff waits and
	// failure detection.
	Retries        int
	Redispatches   int
	FaultsDetected int
	AbandonedPairs int
	AbandonedIDs   []int
	RetrySec       float64
}

// HostOverheadFraction is the share of the makespan not covered by DPU
// kernel execution — the paper reports 15 % on S1000 shrinking to <0.1 %
// on S30000.
func (r *Report) HostOverheadFraction() float64 {
	if r.MakespanSec == 0 {
		return 0
	}
	// Kernel time on the critical path: approximate with the per-batch
	// kernel spans laid over the timeline (ranks overlap, so use the
	// fraction of the makespan the busiest timeline slice spends in
	// kernels). A simple, monotone proxy: 1 - kernel-span coverage.
	var kernelSpan float64
	for _, rs := range r.Ranks {
		kernelSpan += rs.KernelSec
	}
	ranksUsed := map[int]bool{}
	for _, rs := range r.Ranks {
		ranksUsed[rs.Rank] = true
	}
	if len(ranksUsed) == 0 {
		return 0
	}
	perRank := kernelSpan / float64(len(ranksUsed))
	f := 1 - perRank/r.MakespanSec
	if f < 0 {
		return 0
	}
	return f
}
