package host

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// lptRef is the pre-heap reference implementation: linear min-scan with
// strict <, so ties go to the lowest bucket index. The heap version must
// reproduce it assignment-for-assignment.
func lptRef(loads []int64, n int) ([][]int, []int64) {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	buckets := make([][]int, n)
	sums := make([]int64, n)
	for _, idx := range order {
		best := 0
		for b := 1; b < n; b++ {
			if sums[b] < sums[best] {
				best = b
			}
		}
		buckets[best] = append(buckets[best], idx)
		sums[best] += loads[idx]
	}
	return buckets, sums
}

// TestLPTHeapMatchesReference drives the heap lpt against the linear-scan
// reference across bucket counts and load shapes — including heavy ties,
// where the (load, index) heap order must reproduce the scan's
// lowest-index preference exactly.
func TestLPTHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct {
		name string
		gen  func(n int) []int64
	}{
		{"uniform", func(n int) []int64 {
			loads := make([]int64, n)
			for i := range loads {
				loads[i] = 1 + rng.Int63n(1_000_000)
			}
			return loads
		}},
		{"heavy ties", func(n int) []int64 {
			loads := make([]int64, n)
			for i := range loads {
				loads[i] = int64(1 + rng.Intn(3))
			}
			return loads
		}},
		{"all equal", func(n int) []int64 {
			loads := make([]int64, n)
			for i := range loads {
				loads[i] = 42
			}
			return loads
		}},
		{"zeros", func(n int) []int64 {
			return make([]int64, n)
		}},
	}
	for _, shape := range shapes {
		for _, buckets := range []int{1, 2, 3, 7, 64} {
			for _, items := range []int{0, 1, 5, 63, 64, 257, 1000} {
				loads := shape.gen(items)
				gotB, gotS := lpt(loads, buckets)
				wantB, wantS := lptRef(loads, buckets)
				if !reflect.DeepEqual(gotB, wantB) {
					t.Fatalf("%s n=%d items=%d: bucket contents diverge\n got %v\nwant %v",
						shape.name, buckets, items, gotB, wantB)
				}
				if !reflect.DeepEqual(gotS, wantS) {
					t.Fatalf("%s n=%d items=%d: bucket sums diverge\n got %v\nwant %v",
						shape.name, buckets, items, gotS, wantS)
				}
			}
		}
	}
}

func TestLPTAssignExportedWrapper(t *testing.T) {
	loads := []int64{5, 3, 8, 1}
	want, _ := lpt(loads, 2)
	if got := LPTAssign(loads, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("LPTAssign = %v, want %v", got, want)
	}
}
