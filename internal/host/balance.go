package host

import (
	"container/heap"
	"math/rand"
	"sort"
)

// BalancePolicy selects how pair workloads are spread over the 64 DPUs of
// a rank. The paper uses LPT (§4.1.2); the alternatives exist for the
// balance ablation, which quantifies how much the policy matters given the
// rank-completion barrier.
type BalancePolicy int

// Policies.
const (
	// BalanceLPT is the paper's heuristic: sort by decreasing workload,
	// always assign to the least-loaded DPU.
	BalanceLPT BalancePolicy = iota
	// BalanceRoundRobin deals pairs out in input order.
	BalanceRoundRobin
	// BalanceRandom assigns each pair to a uniformly random DPU.
	BalanceRandom
)

// assign distributes items (with the given workloads) over n buckets
// according to the policy.
func (p BalancePolicy) assign(loads []int64, n int, seed int64) [][]int {
	switch p {
	case BalanceRoundRobin:
		buckets := make([][]int, n)
		for i := range loads {
			buckets[i%n] = append(buckets[i%n], i)
		}
		return buckets
	case BalanceRandom:
		rng := rand.New(rand.NewSource(seed))
		buckets := make([][]int, n)
		for i := range loads {
			b := rng.Intn(n)
			buckets[b] = append(buckets[b], i)
		}
		return buckets
	default:
		buckets, _ := lpt(loads, n)
		return buckets
	}
}

// lpt distributes items over n buckets with the paper's §4.1.2 heuristic:
// sort by decreasing workload, repeatedly assign the heaviest remaining
// item to the least-loaded bucket. It returns the bucket contents (indices
// into items) and the final loads. LPT is the classic 4/3-approximation to
// makespan scheduling — fast and good enough that the paper measures ≤5 %
// spread between the fastest and slowest DPU of a rank.
//
// The least-loaded bucket comes off a min-heap keyed on (load, bucket
// index) — O(pairs·log n) instead of the linear min-scan's O(pairs·n).
// The index tie-break reproduces the scan's "strict <, so ties go to the
// lowest bucket" choice exactly, keeping the assignment bit-identical
// (the differential test in balance_test.go pins this).
func lpt(loads []int64, n int) ([][]int, []int64) {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	buckets := make([][]int, n)
	sums := make([]int64, n)
	h := &bucketHeap{sums: sums, idx: make([]int, n)}
	for b := range h.idx {
		h.idx[b] = b
	}
	heap.Init(h)
	for _, idx := range order {
		best := h.idx[0]
		buckets[best] = append(buckets[best], idx)
		sums[best] += loads[idx]
		heap.Fix(h, 0)
	}
	return buckets, sums
}

// bucketHeap is a min-heap of bucket indices ordered by (current load,
// bucket index); the root is always the bucket the LPT scan would pick.
type bucketHeap struct {
	sums []int64 // shared with lpt: load per bucket
	idx  []int   // heap of bucket indices
}

func (h *bucketHeap) Len() int { return len(h.idx) }
func (h *bucketHeap) Less(a, b int) bool {
	ia, ib := h.idx[a], h.idx[b]
	if h.sums[ia] != h.sums[ib] {
		return h.sums[ia] < h.sums[ib]
	}
	return ia < ib
}
func (h *bucketHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *bucketHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *bucketHeap) Pop() any {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}

// LPTAssign exposes the LPT heuristic for benchmarking and external
// tooling: it distributes the given workloads over n buckets and returns
// the bucket contents (indices into loads).
func LPTAssign(loads []int64, n int) [][]int {
	buckets, _ := lpt(loads, n)
	return buckets
}

// splitGroups cuts pairs into read-groups of at most groupPairs each
// (one group if groupPairs <= 0), preserving input order as the paper's
// disk reader does.
func splitGroups(pairs []Pair, groupPairs int) [][]Pair {
	if groupPairs <= 0 || groupPairs >= len(pairs) {
		if len(pairs) == 0 {
			return nil
		}
		return [][]Pair{pairs}
	}
	var groups [][]Pair
	for off := 0; off < len(pairs); off += groupPairs {
		end := off + groupPairs
		if end > len(pairs) {
			end = len(pairs)
		}
		groups = append(groups, pairs[off:end])
	}
	return groups
}
