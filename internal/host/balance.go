package host

import (
	"math/rand"
	"sort"
)

// BalancePolicy selects how pair workloads are spread over the 64 DPUs of
// a rank. The paper uses LPT (§4.1.2); the alternatives exist for the
// balance ablation, which quantifies how much the policy matters given the
// rank-completion barrier.
type BalancePolicy int

// Policies.
const (
	// BalanceLPT is the paper's heuristic: sort by decreasing workload,
	// always assign to the least-loaded DPU.
	BalanceLPT BalancePolicy = iota
	// BalanceRoundRobin deals pairs out in input order.
	BalanceRoundRobin
	// BalanceRandom assigns each pair to a uniformly random DPU.
	BalanceRandom
)

// assign distributes items (with the given workloads) over n buckets
// according to the policy.
func (p BalancePolicy) assign(loads []int64, n int, seed int64) [][]int {
	switch p {
	case BalanceRoundRobin:
		buckets := make([][]int, n)
		for i := range loads {
			buckets[i%n] = append(buckets[i%n], i)
		}
		return buckets
	case BalanceRandom:
		rng := rand.New(rand.NewSource(seed))
		buckets := make([][]int, n)
		for i := range loads {
			b := rng.Intn(n)
			buckets[b] = append(buckets[b], i)
		}
		return buckets
	default:
		buckets, _ := lpt(loads, n)
		return buckets
	}
}

// lpt distributes items over n buckets with the paper's §4.1.2 heuristic:
// sort by decreasing workload, repeatedly assign the heaviest remaining
// item to the least-loaded bucket. It returns the bucket contents (indices
// into items) and the final loads. LPT is the classic 4/3-approximation to
// makespan scheduling — fast and good enough that the paper measures ≤5 %
// spread between the fastest and slowest DPU of a rank.
func lpt(loads []int64, n int) ([][]int, []int64) {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	buckets := make([][]int, n)
	sums := make([]int64, n)
	for _, idx := range order {
		best := 0
		for b := 1; b < n; b++ {
			if sums[b] < sums[best] {
				best = b
			}
		}
		buckets[best] = append(buckets[best], idx)
		sums[best] += loads[idx]
	}
	return buckets, sums
}

// splitGroups cuts pairs into read-groups of at most groupPairs each
// (one group if groupPairs <= 0), preserving input order as the paper's
// disk reader does.
func splitGroups(pairs []Pair, groupPairs int) [][]Pair {
	if groupPairs <= 0 || groupPairs >= len(pairs) {
		if len(pairs) == 0 {
			return nil
		}
		return [][]Pair{pairs}
	}
	var groups [][]Pair
	for off := 0; off < len(pairs); off += groupPairs {
		end := off + groupPairs
		if end > len(pairs) {
			end = len(pairs)
		}
		groups = append(groups, pairs[off:end])
	}
	return groups
}
