package host

// SyntheticBatch describes one rank-sized batch for full-scale projection:
// the experiment harness measures per-pair kernel constants on a scaled
// run, then lays the paper-scale batch counts onto the same discrete-event
// timeline used for measured batches. This is how the harness reports
// full-dataset runtimes (Tables 2-6) without simulating ten million
// alignments cell by cell.
type SyntheticBatch struct {
	BytesIn    int64
	BytesOut   int64
	KernelSec  float64 // slowest DPU of the rank
	LoadedDPUs int
}

// Project schedules synthetic batches and returns the timeline report.
// Only the PIM fields of the configuration are used.
func Project(cfg Config, batches []SyntheticBatch) *Report {
	rep := &Report{UtilizationMin: 1}
	execs := make([]batchExec, len(batches))
	for i, b := range batches {
		execs[i] = batchExec{
			bytesIn:    b.BytesIn,
			bytesOut:   b.BytesOut,
			kernelSec:  b.KernelSec,
			minDPUSec:  b.KernelSec,
			loadedDPUs: b.LoadedDPUs,
			utilMin:    1,
			attempts:   1,
		}
	}
	scheduleTimeline(cfg, execs, rep)
	rep.Batches = len(batches)
	return rep
}
