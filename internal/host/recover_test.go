package host

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// resultKey collapses one alignment to the fields that must survive
// recovery bit-identically.
type resultKey struct {
	Score  int32
	InBand bool
	Cigar  string
}

func resultMap(t *testing.T, results []Result) map[int]resultKey {
	t.Helper()
	m := make(map[int]resultKey, len(results))
	for _, r := range results {
		if _, dup := m[r.ID]; dup {
			t.Fatalf("pair %d delivered twice", r.ID)
		}
		m[r.ID] = resultKey{Score: r.Score, InBand: r.InBand, Cigar: string(r.Cigar)}
	}
	return m
}

// maxKernelSec is the slowest healthy rank window, the anchor for batch
// deadlines in these tests.
func maxKernelSec(rep *Report) float64 {
	var m float64
	for _, rs := range rep.Ranks {
		if rs.KernelSec > m {
			m = rs.KernelSec
		}
	}
	return m
}

// TestAlignPairsBitIdenticalUnderFaults is the acceptance test of the
// recovery subsystem: with faults injected at 5 % and retries enabled,
// every score and CIGAR must equal the fault-free run's, because the
// kernel is deterministic and recovery redispatches rather than skips.
func TestAlignPairsBitIdenticalUnderFaults(t *testing.T) {
	pairs := makePairs(21, 100, 200, 0.1)
	clean := testConfig(2, true)
	cleanRep, cleanResults, err := AlignPairs(clean, pairs)
	if err != nil {
		t.Fatal(err)
	}

	faulty := testConfig(2, true)
	faulty.Faults = pim.FaultConfig{Rate: 0.05, Seed: 1234}
	faulty.MaxRetries = 8
	faulty.BatchDeadlineSec = 1.5 * maxKernelSec(cleanRep)
	faulty.RetryBackoffSec = 1e-4
	rep, results, err := AlignPairs(faulty, pairs)
	if err != nil {
		t.Fatal(err)
	}

	if rep.AbandonedPairs != 0 {
		t.Fatalf("recovery abandoned %d pairs (IDs %v)", rep.AbandonedPairs, rep.AbandonedIDs)
	}
	if rep.FaultsDetected == 0 || rep.Retries == 0 {
		t.Fatalf("fault injection inert: %d faults detected, %d retries — the test is not exercising recovery",
			rep.FaultsDetected, rep.Retries)
	}
	want := resultMap(t, cleanResults)
	got := resultMap(t, results)
	if len(got) != len(want) {
		t.Fatalf("%d results under faults, %d fault-free", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("pair %d missing under faults", id)
		}
		if g != w {
			t.Errorf("pair %d diverged under faults: %+v vs %+v", id, g, w)
		}
	}
	if rep.RetrySec <= 0 {
		t.Error("retries happened but RetrySec is zero")
	}
	if rep.MakespanSec <= cleanRep.MakespanSec {
		t.Errorf("faulted makespan %.6f not above clean %.6f", rep.MakespanSec, cleanRep.MakespanSec)
	}
}

// TestAlignPairsCorruptionNeverLeaks hammers the checksum path: with a
// high corruption rate every accepted result must still match the
// reference aligner — a corrupted transfer that slipped through
// verification would surface here as a wrong score or CIGAR.
func TestAlignPairsCorruptionNeverLeaks(t *testing.T) {
	cfg := testConfig(1, true)
	cfg.Faults = pim.FaultConfig{Rate: 0.5, CorruptWeight: 1, Seed: 7}
	cfg.MaxRetries = 10
	pairs := makePairs(22, 60, 150, 0.08)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected == 0 {
		t.Fatal("no corruptions detected at 50% rate")
	}
	if rep.AbandonedPairs != 0 {
		t.Fatalf("corruption is transient; nothing should be abandoned, got %d", rep.AbandonedPairs)
	}
	for _, r := range results {
		p := pairs[r.ID]
		want := core.AdaptiveBandAlign(p.A, p.B, cfg.Kernel.Params, cfg.Kernel.Band)
		if r.Score != want.Score || string(r.Cigar) != want.Cigar.String() {
			t.Fatalf("pair %d: corrupted result leaked through the checksum", r.ID)
		}
	}
}

// TestAlignPairsGracefulDegradation: with retries disabled and crashes
// injected, the run must complete without error, return the surviving
// alignments, and account for every dropped pair.
func TestAlignPairsGracefulDegradation(t *testing.T) {
	cfg := testConfig(1, true)
	cfg.Faults = pim.FaultConfig{Rate: 0.3, CrashWeight: 1, Seed: 99}
	cfg.MaxRetries = 0
	pairs := makePairs(23, 80, 120, 0.08)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AbandonedPairs == 0 {
		t.Fatal("30% crash rate with no retries should abandon pairs")
	}
	if len(results)+rep.AbandonedPairs != len(pairs) {
		t.Fatalf("%d delivered + %d abandoned != %d submitted",
			len(results), rep.AbandonedPairs, len(pairs))
	}
	if len(rep.AbandonedIDs) != rep.AbandonedPairs {
		t.Fatalf("AbandonedIDs has %d entries for %d abandoned pairs",
			len(rep.AbandonedIDs), rep.AbandonedPairs)
	}
	delivered := resultMap(t, results)
	for _, id := range rep.AbandonedIDs {
		if _, ok := delivered[id]; ok {
			t.Errorf("pair %d both delivered and abandoned", id)
		}
	}
	// Survivors are still bit-correct.
	for _, r := range results {
		p := pairs[r.ID]
		want := core.AdaptiveBandAlign(p.A, p.B, cfg.Kernel.Params, cfg.Kernel.Band)
		if r.Score != want.Score {
			t.Errorf("pair %d: surviving score wrong", r.ID)
		}
	}
	if rep.Alignments != len(results) {
		t.Errorf("report alignments %d vs %d results", rep.Alignments, len(results))
	}
}

// TestAlignPairsRankDropRecovery: whole-rank dropouts are detected at
// launch and the batch relaunches until the rank comes back.
func TestAlignPairsRankDropRecovery(t *testing.T) {
	cfg := testConfig(2, true)
	cfg.Faults = pim.FaultConfig{RankDropRate: 0.4, Seed: 5}
	cfg.MaxRetries = 12
	pairs := makePairs(24, 50, 150, 0.08)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AbandonedPairs != 0 {
		t.Fatalf("abandoned %d pairs", rep.AbandonedPairs)
	}
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	if rep.FaultsDetected == 0 || rep.Retries == 0 {
		t.Fatalf("no rank drops fired at 40%% rate (faults=%d retries=%d)",
			rep.FaultsDetected, rep.Retries)
	}
	for _, rs := range rep.Ranks {
		for _, f := range rs.Faults {
			if f.Kind != pim.FaultRankDrop.String() {
				t.Errorf("unexpected fault kind %q", f.Kind)
			}
			if f.DPU != -1 {
				t.Errorf("rank-level fault attributed to DPU %d", f.DPU)
			}
		}
	}
}

// TestAlignPairsStallNeedsDeadline: without a batch deadline a stalled
// DPU is waited out (slow but correct, zero retries); with one it is
// detected and its pairs redispatched.
func TestAlignPairsStallNeedsDeadline(t *testing.T) {
	pairs := makePairs(25, 60, 150, 0.08)
	base := testConfig(1, true)
	cleanRep, _, err := AlignPairs(base, pairs)
	if err != nil {
		t.Fatal(err)
	}

	stalled := testConfig(1, true)
	stalled.Faults = pim.FaultConfig{Rate: 0.1, StallWeight: 1, Seed: 3}
	stalled.MaxRetries = 8
	noDeadlineRep, noDeadlineResults, err := AlignPairs(stalled, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if noDeadlineRep.Retries != 0 {
		t.Errorf("no deadline: stalls should be waited out, got %d retries", noDeadlineRep.Retries)
	}
	if len(noDeadlineResults) != len(pairs) {
		t.Fatalf("no deadline: %d results", len(noDeadlineResults))
	}
	if noDeadlineRep.MakespanSec < 10*cleanRep.MakespanSec {
		t.Errorf("stall factor 512 barely moved the makespan: %.6f vs clean %.6f",
			noDeadlineRep.MakespanSec, cleanRep.MakespanSec)
	}

	stalled.BatchDeadlineSec = 1.5 * maxKernelSec(cleanRep)
	deadlineRep, deadlineResults, err := AlignPairs(stalled, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if deadlineRep.Retries == 0 {
		t.Error("deadline set: stalls should be detected and retried")
	}
	if deadlineRep.AbandonedPairs != 0 || len(deadlineResults) != len(pairs) {
		t.Fatalf("deadline recovery incomplete: %d results, %d abandoned",
			len(deadlineResults), deadlineRep.AbandonedPairs)
	}
	if deadlineRep.MakespanSec >= noDeadlineRep.MakespanSec {
		t.Errorf("deadline recovery (%.6fs) not faster than waiting out the stall (%.6fs)",
			deadlineRep.MakespanSec, noDeadlineRep.MakespanSec)
	}
}

// TestAlignPairsFaultsDeterministic: the same seed reproduces the exact
// recovery trajectory; a different seed changes it.
func TestAlignPairsFaultsDeterministic(t *testing.T) {
	mk := func(seed int64) *Report {
		cfg := testConfig(1, true)
		cfg.Faults = pim.FaultConfig{Rate: 0.15, Seed: seed}
		cfg.MaxRetries = 8
		cfg.RetryBackoffSec = 1e-4
		rep, _, err := AlignPairs(cfg, makePairs(26, 64, 120, 0.08))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(11), mk(11)
	if a.FaultsDetected != b.FaultsDetected || a.Retries != b.Retries ||
		a.Redispatches != b.Redispatches || a.MakespanSec != b.MakespanSec {
		t.Errorf("same seed, different recovery: %+v vs %+v", a, b)
	}
	c := mk(12)
	if a.FaultsDetected == c.FaultsDetected && a.MakespanSec == c.MakespanSec {
		t.Error("different seeds reproduced identical fault trajectories")
	}
}

// TestReportRecoveryInvariants checks the bookkeeping the report carries.
func TestReportRecoveryInvariants(t *testing.T) {
	cfg := testConfig(2, true)
	cfg.Faults = pim.FaultConfig{Rate: 0.1, RankDropRate: 0.05, Seed: 17}
	cfg.MaxRetries = 6
	cfg.RetryBackoffSec = 1e-4
	rep, _, err := AlignPairs(cfg, makePairs(27, 90, 130, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	retries, faults := 0, 0
	for _, rs := range rep.Ranks {
		if rs.Attempts < 1 {
			t.Errorf("batch %d: %d attempts", rs.Batch, rs.Attempts)
		}
		retries += rs.Attempts - 1
		faults += len(rs.Faults)
		if rs.WaitSec < 0 {
			t.Errorf("batch %d: negative WaitSec %.6f", rs.Batch, rs.WaitSec)
		}
		// Recovery time is bounded by the rank's busy window: compute
		// (KernelSec) plus the waits between attempts (WaitSec).
		if rs.RetrySec < 0 || rs.RetrySec > rs.KernelSec+rs.WaitSec+1e-12 {
			t.Errorf("batch %d: RetrySec %.6f outside [0, busy %.6f]",
				rs.Batch, rs.RetrySec, rs.KernelSec+rs.WaitSec)
		}
		for _, f := range rs.Faults {
			if f.Batch != rs.Batch {
				t.Errorf("fault event of batch %d filed under batch %d", f.Batch, rs.Batch)
			}
			if f.AtSec < rs.StartSec || f.AtSec > rep.MakespanSec {
				t.Errorf("fault at %.6fs outside batch window [%.6f, makespan %.6f]",
					f.AtSec, rs.StartSec, rep.MakespanSec)
			}
			if f.Kind == "" || f.Kind == "none" {
				t.Errorf("fault event with kind %q", f.Kind)
			}
		}
	}
	if retries != rep.Retries {
		t.Errorf("Report.Retries %d, per-rank sum %d", rep.Retries, retries)
	}
	if faults != rep.FaultsDetected {
		t.Errorf("Report.FaultsDetected %d, per-rank sum %d", rep.FaultsDetected, faults)
	}
	ids := append([]int(nil), rep.AbandonedIDs...)
	sort.Ints(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			t.Errorf("pair %d abandoned twice", ids[i])
		}
	}
}

// TestAlignAllPairsRejectsFaults: broadcast mode has no recovery loop and
// must refuse an injecting configuration rather than silently ignore it.
func TestAlignAllPairsRejectsFaults(t *testing.T) {
	cfg := testConfig(1, false)
	cfg.Faults = pim.FaultConfig{Rate: 0.01}
	rng := rand.New(rand.NewSource(8))
	seqs := []seq.Seq{seq.Random(rng, 200), seq.Random(rng, 200), seq.Random(rng, 200)}
	if _, _, err := AlignAllPairs(cfg, seqs); err == nil {
		t.Error("broadcast mode accepted fault injection")
	}
}

// TestFaultObservability checks the three run artifacts under fault
// injection: the new recovery metrics, the Chrome trace recovery lane
// (retry slice + ph "i" fault instants), and the JSON report round-trip
// of the retry/fault fields.
func TestFaultObservability(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	cfg := testConfig(2, true)
	cfg.Faults = pim.FaultConfig{Rate: 0.15, Seed: 42}
	cfg.MaxRetries = 8
	cfg.RetryBackoffSec = 1e-4
	rep, _, err := AlignPairs(cfg, makePairs(28, 80, 130, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected == 0 || rep.Retries == 0 {
		t.Fatalf("faults inert (faults=%d retries=%d); test needs a recovering run",
			rep.FaultsDetected, rep.Retries)
	}

	// Metrics mirror the report.
	if got := reg.Counter("host_retries_total").Value(); got != int64(rep.Retries) {
		t.Errorf("host_retries_total = %d, Report.Retries = %d", got, rep.Retries)
	}
	if got := reg.Counter("host_redispatches_total").Value(); got != int64(rep.Redispatches) {
		t.Errorf("host_redispatches_total = %d, Report.Redispatches = %d", got, rep.Redispatches)
	}
	if got := reg.Counter("host_faults_detected_total").Value(); got != int64(rep.FaultsDetected) {
		t.Errorf("host_faults_detected_total = %d, Report.FaultsDetected = %d", got, rep.FaultsDetected)
	}
	if got := reg.Counter("pim_faults_injected_total").Value(); got < int64(rep.FaultsDetected) {
		t.Errorf("pim_faults_injected_total = %d below %d detected", got, rep.FaultsDetected)
	}

	// Trace: a recovery lane with one instant per fault event and a retry
	// slice on every batch that spent recovery time.
	events := rep.ChromeTraceEvents()
	instants, retrySlices, lanes := 0, 0, 0
	for _, ev := range events {
		switch {
		case ev.Ph == "i":
			instants++
			if ev.Tid != tidRecovery || ev.S != "t" {
				t.Errorf("fault instant on tid %d scope %q", ev.Tid, ev.S)
			}
		case ev.Ph == "X" && ev.Name == "recovery":
			retrySlices++
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == tidRecovery:
			lanes++
		}
	}
	if instants != rep.FaultsDetected {
		t.Errorf("%d fault instants for %d detected faults", instants, rep.FaultsDetected)
	}
	wantSlices := 0
	for _, rs := range rep.Ranks {
		if rs.RetrySec > 0 {
			wantSlices++
		}
	}
	if retrySlices != wantSlices {
		t.Errorf("%d recovery slices, want %d", retrySlices, wantSlices)
	}
	if lanes == 0 {
		t.Error("no recovery lane metadata emitted")
	}

	// JSON report round-trips the recovery fields.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rj); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	for key, want := range map[string]int{
		"retries":         rep.Retries,
		"redispatches":    rep.Redispatches,
		"faults_detected": rep.FaultsDetected,
		"abandoned_pairs": rep.AbandonedPairs,
	} {
		got, ok := rj[key].(float64)
		if !ok {
			t.Errorf("report JSON missing %q", key)
			continue
		}
		if int(got) != want {
			t.Errorf("report JSON %s = %v, want %d", key, got, want)
		}
	}
	if got := rj["retry_sec"].(float64); got != rep.RetrySec {
		t.Errorf("report JSON retry_sec = %v, want %v", got, rep.RetrySec)
	}
	// Per-rank fault events serialize with their documented keys.
	ranks := rj["ranks"].([]any)
	foundFault := false
	for _, ri := range ranks {
		rm := ri.(map[string]any)
		fl, ok := rm["Faults"].([]any)
		if !ok {
			continue
		}
		for _, fi := range fl {
			fm := fi.(map[string]any)
			foundFault = true
			for _, key := range []string{"batch", "attempt", "dpu", "kind", "at_sec"} {
				if _, ok := fm[key]; !ok {
					t.Fatalf("fault event missing %q: %v", key, fm)
				}
			}
		}
	}
	if !foundFault {
		t.Error("no fault events in serialized rank stats")
	}
}
