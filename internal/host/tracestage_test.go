package host

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// TestTraceIDThreading runs a faulty workload with a trace ID configured
// and checks the ID reaches every artifact: the Report, the JSON report,
// every Perfetto slice and instant, and the flight-recorder entries the
// recovery path emits.
func TestTraceIDThreading(t *testing.T) {
	fr := obs.NewFlightRecorder(64)
	obs.SetFlight(fr)
	defer obs.SetFlight(nil)

	cfg := testConfig(1, true)
	cfg.TraceID = "t-thread"
	cfg.Faults = pim.FaultConfig{Rate: 0.05, Seed: 1234}
	cfg.MaxRetries = 8
	pairs := makePairs(7, 24, 120, 0.1)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("results = %d, want %d", len(results), len(pairs))
	}
	if rep.FaultsDetected == 0 {
		t.Fatal("fault injection inert; the test is not exercising the flight path")
	}
	if rep.TraceID != "t-thread" {
		t.Fatalf("Report.TraceID = %q, want t-thread", rep.TraceID)
	}

	for _, ev := range rep.ChromeTraceEvents() {
		if ev.Ph == "M" {
			continue // track metadata carries only the name
		}
		if got, _ := ev.Args["trace_id"].(string); got != "t-thread" {
			t.Fatalf("trace event %q (ph %s) args = %v, want trace_id t-thread", ev.Name, ev.Ph, ev.Args)
		}
	}

	var faults int
	for _, ev := range fr.Snapshot() {
		if ev.Kind == "fault" {
			faults++
			if ev.TraceID != "t-thread" {
				t.Fatalf("flight fault event carries trace ID %q, want t-thread", ev.TraceID)
			}
		}
	}
	if faults == 0 {
		t.Fatal("recovery detected faults but recorded none in the flight ring")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj["trace_id"] != "t-thread" {
		t.Fatalf("report JSON trace_id = %v, want t-thread", rj["trace_id"])
	}
	if _, ok := rj["verify_sec"]; !ok {
		t.Error("report JSON missing verify_sec")
	}
}

// TestSessionStages checks the serving-stage decomposition: the session
// fills its trace ID from the context, measures linger wall-clock during
// admission, and mirrors the simulated kernel/wait totals and escalation
// windows from the merged report.
func TestSessionStages(t *testing.T) {
	ctx := obs.WithTraceID(context.Background(), "t-stages")
	scfg := SessionConfig{Host: testConfig(1, true), MaxBatchPairs: 8}
	scfg.Host.Escalate = true
	scfg.Host.MaxBand = 256
	pairs := makePairs(11, 24, 120, 0.2) // error rate high enough to clip some pairs
	rep, results, err := AlignPairsStream(ctx, scfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("results = %d, want %d", len(results), len(pairs))
	}
	if rep.TraceID != "t-stages" {
		t.Fatalf("session did not fill the trace ID from the context: %q", rep.TraceID)
	}

	// Stages() needs the live session; replay the same workload directly.
	s, err := NewSession(ctx, scfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range pairs {
			for s.Submit(p) != nil {
			}
		}
		s.Close()
	}()
	for range s.Results() {
	}
	st := s.Stages()
	rep = s.Report()

	if st.KernelSec != rep.KernelSecSum {
		t.Errorf("Stages.KernelSec = %v, want Report.KernelSecSum %v", st.KernelSec, rep.KernelSecSum)
	}
	if st.WaitRetrySec != rep.WaitSec {
		t.Errorf("Stages.WaitRetrySec = %v, want Report.WaitSec %v", st.WaitRetrySec, rep.WaitSec)
	}
	var esc float64
	for _, er := range rep.Escalation {
		esc += er.EndSec - er.StartSec
	}
	if st.EscalationSec != esc {
		t.Errorf("Stages.EscalationSec = %v, want the summed round windows %v", st.EscalationSec, esc)
	}
	if st.VerifySec != rep.VerifySec {
		t.Errorf("Stages.VerifySec = %v, want Report.VerifySec %v", st.VerifySec, rep.VerifySec)
	}
	if st.LingerSec <= 0 {
		t.Errorf("Stages.LingerSec = %v, want > 0 (pairs waited for their micro-batch)", st.LingerSec)
	}
	if st.QueueWaitSec < 0 {
		t.Errorf("Stages.QueueWaitSec = %v, want >= 0", st.QueueWaitSec)
	}
	if st.KernelSec <= 0 {
		t.Errorf("Stages.KernelSec = %v, want > 0", st.KernelSec)
	}
}
