package host

import (
	"bytes"
	"encoding/json"
	"testing"

	"pimnw/internal/obs"
	"pimnw/internal/seq"
)

// TestObservabilityIntegration runs the full pipeline with metrics and
// tracing enabled and checks the three run artifacts against the Report:
// the Prometheus counters, the Chrome trace events, and the JSON report.
func TestObservabilityIntegration(t *testing.T) {
	reg, tr := obs.NewRegistry(), obs.NewTracer()
	obs.SetDefault(reg)
	obs.SetDefaultTracer(tr)
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)

	cfg := testConfig(2, true)
	cfg.GroupPairs = 6
	pairs := makePairs(7, 16, 120, 0.1)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("results = %d, want %d", len(results), len(pairs))
	}

	// The acceptance criterion: the metric and the report count the same
	// cells, alignments, and batches.
	if got := reg.Counter("pim_cells_total").Value(); got != rep.TotalCells {
		t.Errorf("pim_cells_total = %d, Report.TotalCells = %d", got, rep.TotalCells)
	}
	if got := reg.Counter("pim_alignments_total").Value(); got != int64(rep.Alignments) {
		t.Errorf("pim_alignments_total = %d, Report.Alignments = %d", got, rep.Alignments)
	}
	if got := reg.Counter("host_batches_total").Value(); got != int64(rep.Batches) {
		t.Errorf("host_batches_total = %d, Report.Batches = %d", got, rep.Batches)
	}
	if got := reg.Gauge("host_makespan_seconds").Value(); got != rep.MakespanSec {
		t.Errorf("host_makespan_seconds = %v, Report.MakespanSec = %v", got, rep.MakespanSec)
	}

	// Every rank batch must appear in the Chrome trace as the three
	// pipeline slices (transfer in, kernel, transfer out) on pid rank+1.
	events := rep.ChromeTraceEvents()
	type lane struct{ pid, tid int }
	slices := map[lane]int{}
	for _, ev := range events {
		if ev.Ph == "X" {
			slices[lane{ev.Pid, ev.Tid}]++
		}
	}
	perRankBatches := map[int]int{}
	for _, rs := range rep.Ranks {
		perRankBatches[rs.Rank]++
	}
	if len(rep.Ranks) == 0 {
		t.Fatal("report has no rank batches")
	}
	for rank, batches := range perRankBatches {
		for tid := 0; tid <= 2; tid++ {
			if got := slices[lane{rank + 1, tid}]; got != batches {
				t.Errorf("rank %d tid %d: %d slices, want %d (one per batch)",
					rank, tid, got, batches)
			}
		}
	}

	// The serialized trace must be a JSON array where every event carries
	// the six required trace-event keys.
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("serialized %d events, emitted %d", len(parsed), len(events))
	}
	for i, ev := range parsed {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		if ev["ph"] == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
	}

	// The wall-clock tracer recorded the pipeline span hierarchy.
	names := map[string]bool{}
	for _, ev := range tr.Events(0) {
		names[ev.Name] = true
	}
	for _, want := range []string{
		"host.align_pairs", "host.balance", "host.batch",
		"host.encode", "host.kernel", "host.dispatch", "host.collect",
	} {
		if !names[want] {
			t.Errorf("tracer missing span %q (have %v)", want, names)
		}
	}

	// The JSON report round-trips with the documented fields.
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rj); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	for _, key := range []string{
		"makespan_sec", "host_overhead_fraction", "total_cells",
		"alignments", "batches", "utilization_min", "utilization_mean", "ranks",
	} {
		if _, ok := rj[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	if got := rj["total_cells"].(float64); int64(got) != rep.TotalCells {
		t.Errorf("report JSON total_cells = %v, want %d", got, rep.TotalCells)
	}
	if got := rj["ranks"].([]any); len(got) != len(rep.Ranks) {
		t.Errorf("report JSON ranks = %d entries, want %d", len(got), len(rep.Ranks))
	}
}

// TestObservabilityBroadcastPath covers the all-pairs pipeline too: the
// same metric/report invariants must hold for AlignAllPairs.
func TestObservabilityBroadcastPath(t *testing.T) {
	reg, tr := obs.NewRegistry(), obs.NewTracer()
	obs.SetDefault(reg)
	obs.SetDefaultTracer(tr)
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)

	cfg := testConfig(1, false)
	pairs := makePairs(9, 5, 80, 0.08)
	seqs := make([]seq.Seq, len(pairs))
	for i, p := range pairs {
		seqs[i] = p.A
	}
	rep, results, err := AlignAllPairs(cfg, seqs)
	if err != nil {
		t.Fatal(err)
	}
	wantAlignments := len(seqs) * (len(seqs) - 1) / 2
	if len(results) != wantAlignments {
		t.Fatalf("results = %d, want %d", len(results), wantAlignments)
	}
	if got := reg.Counter("pim_cells_total").Value(); got != rep.TotalCells {
		t.Errorf("pim_cells_total = %d, Report.TotalCells = %d", got, rep.TotalCells)
	}
	names := map[string]bool{}
	for _, ev := range tr.Events(0) {
		names[ev.Name] = true
	}
	for _, want := range []string{"host.align_all_pairs", "host.dpu", "host.collect"} {
		if !names[want] {
			t.Errorf("tracer missing span %q (have %v)", want, names)
		}
	}
}
