package host

import (
	"strings"
	"testing"
)

// timelineRow extracts the painted cells of the named rank's row.
func timelineRow(t *testing.T, out string, rank string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "rank "+rank+" |") || strings.HasPrefix(line, "rank  "+rank+" |") {
			open := strings.IndexByte(line, '|')
			close := strings.LastIndexByte(line, '|')
			if open < 0 || close <= open {
				t.Fatalf("malformed row %q", line)
			}
			return line[open+1 : close]
		}
	}
	t.Fatalf("no row for rank %s in:\n%s", rank, out)
	return ""
}

func TestTimelineEmptyReport(t *testing.T) {
	var r Report
	if got := r.Timeline(72); got != "(empty timeline)\n" {
		t.Fatalf("empty report timeline = %q", got)
	}
	r.MakespanSec = 1 // makespan without rank rows is still empty
	if got := r.Timeline(72); got != "(empty timeline)\n" {
		t.Fatalf("rankless report timeline = %q", got)
	}
}

func TestTimelineWidthClamp(t *testing.T) {
	r := &Report{
		MakespanSec: 1,
		Ranks: []RankStats{{
			Rank: 0, StartSec: 0, TransferInSec: 0.25,
			KernelSec: 0.5, TransferOutSec: 0.25, EndSec: 1,
		}},
	}
	// Any width <= 10 falls back to the default 72 columns.
	for _, w := range []int{-5, 0, 10} {
		row := timelineRow(t, r.Timeline(w), "0")
		if len(row) != 72 {
			t.Fatalf("Timeline(%d) row width = %d, want 72", w, len(row))
		}
	}
	if row := timelineRow(t, r.Timeline(20), "0"); len(row) != 20 {
		t.Fatalf("Timeline(20) row width = %d, want 20", len(row))
	}
}

func TestTimelineSingleRank(t *testing.T) {
	r := &Report{
		MakespanSec: 1,
		Batches:     1,
		Ranks: []RankStats{{
			Rank: 0, StartSec: 0, TransferInSec: 0.25,
			KernelSec: 0.5, TransferOutSec: 0.25, EndSec: 1,
		}},
	}
	const width = 20 // col(t) = int(t * 20); 1s makespan -> 1 col per 50ms
	row := timelineRow(t, r.Timeline(width), "0")
	// '>' paints [0, 0.25] -> cols 0..5, '#' [0.25, 0.75] -> cols 5..15
	// (kernel overwrites the shared boundary), '<' [0.75, 1] -> cols 15..19.
	want := ">>>>>##########<<<<<"
	if row != want {
		t.Fatalf("single-rank row = %q, want %q", row, want)
	}
	if !strings.Contains(r.Timeline(width), "1 batches") {
		t.Fatalf("header missing batch count:\n%s", r.Timeline(width))
	}
}

// TestTimelineZeroWidthPhases pins the half-open painting: a phase of
// zero duration paints nothing (score-only runs used to show a phantom
// full column of '>' or '<'), and a collection phase never overwrites the
// final kernel column.
func TestTimelineZeroWidthPhases(t *testing.T) {
	const width = 20
	cases := []struct {
		name string
		rs   RankStats
		want string
	}{
		{
			name: "zero-width collection paints no phantom '<'",
			rs: RankStats{
				Rank: 0, StartSec: 0, TransferInSec: 0.5,
				KernelSec: 0.5, TransferOutSec: 0, EndSec: 1,
			},
			want: ">>>>>>>>>>##########",
		},
		{
			name: "zero-width transfers leave a pure kernel row",
			rs: RankStats{
				Rank: 0, StartSec: 0, TransferInSec: 0,
				KernelSec: 1, TransferOutSec: 0, EndSec: 1,
			},
			want: "####################",
		},
		{
			name: "sub-column collection keeps the final kernel column",
			rs: RankStats{
				Rank: 0, StartSec: 0, TransferInSec: 0.25,
				KernelSec: 0.74, TransferOutSec: 0.01, EndSec: 1,
			},
			// '<' covers only [0.99, 1.0): it owns col 19's start?  No —
			// col 19 starts at 0.95, inside the kernel. The kernel keeps
			// every column through 19; the tiny collection paints nothing.
			want: ">>>>>###############",
		},
		{
			name: "waits extend the kernel row to the collection start",
			rs: RankStats{
				Rank: 0, StartSec: 0, TransferInSec: 0.25,
				KernelSec: 0.25, WaitSec: 0.25, TransferOutSec: 0.25, EndSec: 1,
			},
			want: ">>>>>##########<<<<<",
		},
	}
	for _, tc := range cases {
		r := &Report{MakespanSec: 1, Batches: 1, Ranks: []RankStats{tc.rs}}
		row := timelineRow(t, r.Timeline(width), "0")
		if row != tc.want {
			t.Errorf("%s: row = %q, want %q", tc.name, row, tc.want)
		}
	}
}

func TestTimelineOverlappingBatches(t *testing.T) {
	// Two batches on rank 0 (the second painted over the first's idle
	// tail) and one on rank 1; idle time must stay '.'.
	r := &Report{
		MakespanSec: 2,
		Batches:     3,
		Ranks: []RankStats{
			{Rank: 0, Batch: 0, StartSec: 0, TransferInSec: 0.2, KernelSec: 0.4, TransferOutSec: 0.2, EndSec: 0.8},
			{Rank: 0, Batch: 1, StartSec: 1.0, TransferInSec: 0.2, KernelSec: 0.4, TransferOutSec: 0.2, EndSec: 1.8},
			{Rank: 1, Batch: 2, StartSec: 0.4, TransferInSec: 0.2, KernelSec: 1.0, TransferOutSec: 0.2, EndSec: 2.0},
		},
	}
	const width = 20 // col(t) = int(t * 10); boundary columns are painted
	// by the later stage, so assert the interior of each region.
	out := r.Timeline(width)
	row0 := timelineRow(t, out, "0")
	checks0 := []struct {
		col  int
		want byte
	}{
		{0, '>'},  // batch 0 transfer-in [0, 0.2]
		{3, '#'},  // batch 0 kernel (0.2, 0.6)
		{7, '<'},  // batch 0 collection (0.6, 0.8)
		{9, '.'},  // rank idle between the batches
		{10, '>'}, // batch 1 transfer-in [1.0, 1.2]
		{13, '#'}, // batch 1 kernel
		{17, '<'}, // batch 1 collection
		{19, '.'}, // idle tail (rank 1 owns the makespan)
	}
	for _, c := range checks0 {
		if row0[c.col] != c.want {
			t.Errorf("rank 0 col %d = %q, want %q (row %q)", c.col, row0[c.col], c.want, row0)
		}
	}
	row1 := timelineRow(t, out, "1")
	checks1 := []struct {
		col  int
		want byte
	}{
		{0, '.'},  // idle before the batch starts at 0.4s
		{4, '>'},  // transfer-in [0.4, 0.6]
		{8, '#'},  // kernel (0.6, 1.6) overlapping rank 0's second batch
		{12, '#'}, //
		{17, '<'}, // collection (1.6, 2.0)
		{19, '<'}, // collection reaches the makespan's last column
	}
	for _, c := range checks1 {
		if row1[c.col] != c.want {
			t.Errorf("rank 1 col %d = %q, want %q (row %q)", c.col, row1[c.col], c.want, row1)
		}
	}
}
