package host

import (
	"errors"
	"fmt"
	"sort"

	"pimnw/internal/obs"
)

// BackendStats is the per-backend slice of a fleet report: which share of
// the workload each server took, how long its concurrent window ran, and
// what the recovery path moved off it.
type BackendStats struct {
	Name         string  `json:"name"`
	Ranks        int     `json:"ranks"`
	Pairs        int     `json:"pairs"`
	Batches      int     `json:"batches"`
	MakespanSec  float64 `json:"makespan_sec"`
	KernelSecSum float64 `json:"kernel_sec_sum"`
	// Redispatched counts pairs moved OFF this backend after it was lost;
	// Down marks a backend that went down during the run.
	Redispatched int  `json:"redispatched,omitempty"`
	Down         bool `json:"down,omitempty"`
}

// PlacementAssign distributes item workloads over heterogeneous machines:
// the LPT heuristic one level up, on modelled seconds instead of raw
// load. Items are taken in decreasing-load order and each goes to the
// machine whose completion time (current assigned load plus the item,
// through the machine's linear cost model secPerUnit[m]) stays smallest,
// ties to the lowest machine index. It returns the per-machine item
// indices; machines may come back empty.
func PlacementAssign(loads []int64, secPerUnit []float64) [][]int {
	n := len(secPerUnit)
	buckets := make([][]int, n)
	if n == 0 || len(loads) == 0 {
		return buckets
	}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	assigned := make([]int64, n)
	for _, idx := range order {
		best, bestSec := 0, 0.0
		for m := 0; m < n; m++ {
			sec := float64(assigned[m]+loads[idx]) * secPerUnit[m]
			if m == 0 || sec < bestSec {
				best, bestSec = m, sec
			}
		}
		buckets[best] = append(buckets[best], idx)
		assigned[best] += loads[idx]
	}
	return buckets
}

// shardOutcome is one backend's finished share of a fleet round.
type shardOutcome struct {
	backend int // index into cfg.Backends
	pairs   []Pair
	rep     *Report
	results []Result
	lost    bool // ErrBackendDown: redispatch the shard
}

// alignFleet shards one workload across Config.Backends by estimated
// makespan, runs every shard through the full per-backend pipeline
// (dispatch, per-DPU recovery, escalation ladder) concurrently, routes
// whole-backend loss back through placement onto the survivors, and
// merges the per-backend timelines into one report whose makespan is the
// union of the concurrent backend windows — never the back-to-back sum.
// Results come back in input order, bit-identical to the single-fabric
// run on the same pairs.
func alignFleet(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	backends := cfg.Backends
	byID := make(map[int]int, len(pairs)) // pair ID -> input position
	for i, p := range pairs {
		if _, dup := byID[p.ID]; dup {
			return nil, nil, fmt.Errorf("host: fleet placement requires unique pair IDs; ID %d repeats", p.ID)
		}
		byID[p.ID] = i
	}

	// Rank-ID offsets are fixed by fleet position (not by which backends
	// happen to be alive), so rank numbering is stable across runs that
	// lose different servers.
	rankOff := make([]int, len(backends))
	off := 0
	for i, be := range backends {
		rankOff[i] = off
		off += be.Ranks()
	}

	fsp := sp.Child("host.fleet")
	fsp.SetAttrInt("backends", int64(len(backends)))
	fsp.SetAttrInt("pairs", int64(len(pairs)))
	defer fsp.End()

	perBackend := make([]*Report, len(backends))
	stats := make([]BackendStats, len(backends))
	for i, be := range backends {
		stats[i] = BackendStats{Name: be.Name(), Ranks: be.Ranks()}
	}
	ordered := make([]Result, len(pairs))
	have := make([]bool, len(pairs))
	redispatched := 0

	remaining := pairs
	for round := 0; len(remaining) > 0; round++ {
		var alive []int
		for i, be := range backends {
			if be.Healthy() {
				alive = append(alive, i)
			}
		}
		if len(alive) == 0 {
			return nil, nil, fmt.Errorf("host: every fleet backend is down with %d pairs unplaced", len(remaining))
		}

		// Cost-model-driven placement: balance estimated seconds, not raw
		// cells, so a 10-rank server takes a proportionally smaller shard
		// than a 40-rank one.
		loads := make([]int64, len(remaining))
		for i, p := range remaining {
			loads[i] = p.Workload(cfg.Kernel.Band)
		}
		secPerUnit := make([]float64, len(alive))
		for i, bi := range alive {
			secPerUnit[i] = backends[bi].EstimateSec(&cfg, placementUnitLoad) / placementUnitLoad
		}
		buckets := PlacementAssign(loads, secPerUnit)

		outs := make([]shardOutcome, len(alive))
		if err := parallelFor(cfg.workers(), len(alive), func(si int) error {
			bi := alive[si]
			bucket := buckets[si]
			outs[si] = shardOutcome{backend: bi}
			if len(bucket) == 0 {
				return nil
			}
			shard := make([]Pair, len(bucket))
			for i, idx := range bucket {
				shard[i] = remaining[idx]
			}
			outs[si].pairs = shard
			ssp := fsp.Child("host.fleet_shard")
			ssp.SetAttr("backend", backends[bi].Name())
			ssp.SetAttrInt("pairs", int64(len(shard)))
			rep, results, err := alignOnceOn(backends[bi], cfg, shard, ssp)
			ssp.End()
			if errors.Is(err, ErrBackendDown) {
				outs[si].lost = true
				return nil
			}
			if err != nil {
				return err
			}
			outs[si].rep, outs[si].results = rep, results
			return nil
		}); err != nil {
			return nil, nil, err
		}

		remaining = nil
		for _, out := range outs {
			bi := out.backend
			if out.lost {
				stats[bi].Down = true
				stats[bi].Redispatched += len(out.pairs)
				redispatched += len(out.pairs)
				remaining = append(remaining, out.pairs...)
				obs.Info("fleet backend lost", "trace_id", cfg.TraceID,
					"backend", backends[bi].Name(), "pairs", len(out.pairs))
				obs.Flight().Recordf("fleet", cfg.TraceID,
					"backend %s down; redispatching %d pairs onto survivors",
					backends[bi].Name(), len(out.pairs))
				continue
			}
			if out.rep == nil {
				continue // empty bucket
			}
			stats[bi].Pairs += len(out.pairs)
			name := backends[bi].Name()
			for i := range out.results {
				out.results[i].Backend = name
				pos, ok := byID[out.results[i].ID]
				if !ok {
					return nil, nil, fmt.Errorf("host: fleet shard returned unknown pair ID %d", out.results[i].ID)
				}
				ordered[pos] = out.results[i]
				have[pos] = true
			}
			for i := range out.rep.Ranks {
				out.rep.Ranks[i].Backend = name
			}
			if perBackend[bi] == nil {
				perBackend[bi] = out.rep
			} else {
				// The same server's redispatch rounds run back-to-back on
				// its own timeline — exactly the sequential reuse
				// mergeStreamReport models.
				mergeStreamReport(perBackend[bi], out.rep)
			}
		}
	}

	for i := range ordered {
		if !have[i] {
			return nil, nil, fmt.Errorf("host: pair %d fell through fleet placement", pairs[i].ID)
		}
	}

	// Cross-backend merge: the servers ran concurrently from t=0, so the
	// fleet makespan is the union (max) of the per-backend windows.
	rep := &Report{UtilizationMin: 1, TraceID: cfg.TraceID}
	merged := 0
	for bi, sub := range perBackend {
		if sub == nil {
			continue
		}
		stats[bi].Batches = sub.Batches
		stats[bi].MakespanSec = sub.MakespanSec
		stats[bi].KernelSecSum = sub.KernelSecSum
		mergeConcurrent(rep, sub, rankOff[bi])
		merged++
	}
	if merged == 0 {
		rep.UtilizationMean = 1
	}
	rep.Redispatches += redispatched
	rep.Backends = stats
	return rep, ordered, nil
}

// placementUnitLoad is the reference workload EstimateSec is probed with;
// cost models are linear in load, so any positive value works.
const placementUnitLoad = 1 << 20

// mergeConcurrent folds one backend's finished report into the fleet
// report as a concurrent window starting at t=0: rank IDs shift into the
// backend's fleet slot, batch numbers continue past the merged report's,
// and the makespan is the union of the windows — the one place the
// pipeline must NOT reuse the back-to-back mergeRound model, which would
// double-count wall time across servers running in parallel.
func mergeConcurrent(dst, src *Report, rankOff int) {
	batchBase := dst.Batches
	for _, rs := range src.Ranks {
		if rs.Rank >= 0 {
			rs.Rank += rankOff
		}
		rs.Batch += batchBase
		if len(rs.Faults) > 0 {
			faults := make([]FaultEvent, len(rs.Faults))
			for i, f := range rs.Faults {
				f.Batch += batchBase
				faults[i] = f
			}
			rs.Faults = faults
		}
		dst.Ranks = append(dst.Ranks, rs)
	}
	if src.MakespanSec > dst.MakespanSec {
		dst.MakespanSec = src.MakespanSec
	}
	dst.TransferInSec += src.TransferInSec
	dst.TransferOutSec += src.TransferOutSec
	dst.KernelSecSum += src.KernelSecSum
	dst.WaitSec += src.WaitSec
	dst.BytesIn += src.BytesIn
	dst.BytesOut += src.BytesOut
	dst.TotalCells += src.TotalCells
	dst.TotalInstr += src.TotalInstr
	dst.Alignments += src.Alignments
	dst.Retries += src.Retries
	dst.Redispatches += src.Redispatches
	dst.FaultsDetected += src.FaultsDetected
	dst.AbandonedPairs += src.AbandonedPairs
	dst.AbandonedIDs = append(dst.AbandonedIDs, src.AbandonedIDs...)
	dst.RetrySec += src.RetrySec
	dst.OutOfBandPairs += src.OutOfBandPairs
	dst.ClippedPairs += src.ClippedPairs
	dst.OverflowedPairs += src.OverflowedPairs
	dst.Escalations += src.Escalations
	dst.EscalationRounds += src.EscalationRounds
	dst.DegradedScoreOnly += src.DegradedScoreOnly
	dst.DegradedCPU += src.DegradedCPU
	dst.VerifyChecked += src.VerifyChecked
	dst.VerifyFailures += src.VerifyFailures
	dst.CPUFallbackSec += src.CPUFallbackSec
	dst.VerifySec += src.VerifySec
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.DedupedPairs += src.DedupedPairs
	// Escalation windows are already absolute within the backend's own
	// t=0-based timeline, which is the fleet timeline: append as-is.
	dst.Escalation = append(dst.Escalation, src.Escalation...)
	for p, n := range src.Provenance {
		if dst.Provenance == nil {
			dst.Provenance = make(map[string]int)
		}
		dst.Provenance[p] += n
	}
	for _, is := range src.Issues {
		dst.addIssue(is)
	}
	if src.Batches > 0 {
		total := dst.Batches + src.Batches
		dst.UtilizationMean = (dst.UtilizationMean*float64(dst.Batches) +
			src.UtilizationMean*float64(src.Batches)) / float64(total)
		dst.Batches = total
	}
	if src.UtilizationMin < dst.UtilizationMin {
		dst.UtilizationMin = src.UtilizationMin
	}
}
