package host

import (
	"context"
	"strings"
	"testing"

	"pimnw/internal/pim"
)

// twoBackendFleet is the heterogeneous test fleet: a big fast PiM server,
// a small slow one, and (optionally) a CPU pool.
func twoBackendFleet() []Backend {
	big := NewPiMBackend("pim0", 3, 350)
	small := NewPiMBackend("pim1", 1, 250)
	small.SetSeedSalt(1000000007)
	return []Backend{big, small}
}

// fleetKey flattens the fields of a Result that must be bit-identical
// across placements. Rank/DPU/Backend are deliberately excluded: they
// describe where the answer was computed, not the answer.
func fleetKey(r Result) [7]any {
	return [7]any{r.ID, r.Score, r.InBand, r.Clipped, r.Overflowed, string(r.Cigar), r.Status.String() + "/" + r.Provenance}
}

func assertSameResults(t *testing.T, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if fleetKey(want[i]) != fleetKey(got[i]) {
			t.Fatalf("result %d differs:\n want %+v\n  got %+v", i, want[i], got[i])
		}
	}
}

// TestFleetBitIdentical pins the tentpole guarantee: a workload sharded
// across heterogeneous backends returns exactly the single-fabric
// answers, in input order, in every pipeline mode.
func TestFleetBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name      string
		traceback bool
		escalate  bool
		verify    bool
		faultRate float64
	}{
		{name: "score_only"},
		{name: "traceback", traceback: true},
		{name: "escalate", traceback: true, escalate: true},
		{name: "verify", traceback: true, escalate: true, verify: true},
		{name: "faults_5pct", traceback: true, escalate: true, faultRate: 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pairs := makePairs(42, 60, 400, 0.12)
			cfg := testConfig(4, tc.traceback)
			cfg.Escalate = tc.escalate
			cfg.Verify = tc.verify
			if tc.faultRate > 0 {
				cfg.Faults = pim.FaultConfig{Rate: tc.faultRate, Seed: 7}
				cfg.MaxRetries = 4
				cfg.BatchDeadlineSec = 1
			}

			_, single, err := AlignPairs(cfg, pairs)
			if err != nil {
				t.Fatal(err)
			}
			// Single-fabric results come back batch-ordered; index by ID so
			// the comparison is order-insensitive on that side (the fleet
			// side must already be input-ordered).
			byID := make(map[int]Result, len(single))
			for _, r := range single {
				byID[r.ID] = r
			}
			want := make([]Result, len(pairs))
			for i, p := range pairs {
				want[i] = byID[p.ID]
			}

			fcfg := cfg
			fcfg.Backends = twoBackendFleet()
			rep, got, err := AlignPairs(fcfg, pairs)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, want, got)
			spread := map[string]int{}
			for _, r := range got {
				spread[r.Backend]++
			}
			if len(spread) < 2 {
				t.Fatalf("expected work on >=2 backends, got %v", spread)
			}
			if len(rep.Backends) != 2 {
				t.Fatalf("Report.Backends = %+v", rep.Backends)
			}
			for _, bs := range rep.Backends {
				if bs.Pairs != spread[bs.Name] {
					t.Fatalf("backend %s reports %d pairs, results carry %d", bs.Name, bs.Pairs, spread[bs.Name])
				}
			}
		})
	}
}

// TestFleetCPUBackendBitIdentical covers the CPU pool as a fleet member:
// the engine dispatch is shared with the DPU kernel, so answers stay
// bit-identical even when a shard lands on the CPU.
func TestFleetCPUBackendBitIdentical(t *testing.T) {
	for _, traceback := range []bool{false, true} {
		pairs := makePairs(43, 40, 300, 0.1)
		cfg := testConfig(2, traceback)
		cfg.Escalate = true

		_, single, err := AlignPairs(cfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[int]Result, len(single))
		for _, r := range single {
			byID[r.ID] = r
		}

		fcfg := cfg
		fcfg.Backends = []Backend{NewPiMBackend("pim0", 2, 350), NewCPUBackend("cpu1", 8)}
		_, got, err := AlignPairs(fcfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		onCPU := 0
		for i, p := range pairs {
			if fleetKey(byID[p.ID]) != fleetKey(got[i]) {
				t.Fatalf("traceback=%v: pair %d differs on fleet:\n want %+v\n  got %+v",
					traceback, p.ID, byID[p.ID], got[i])
			}
			if got[i].Backend == "cpu1" {
				onCPU++
			}
		}
		if onCPU == 0 {
			t.Fatalf("traceback=%v: CPU pool took no pairs", traceback)
		}
	}
}

// TestFleetMakespanUnionNotSum pins the merge model: backends run
// concurrently, so the fleet makespan must be the slowest backend's
// window — strictly less than the back-to-back sum when at least two
// backends did work.
func TestFleetMakespanUnionNotSum(t *testing.T) {
	pairs := makePairs(44, 80, 400, 0.1)
	cfg := testConfig(4, false)
	cfg.Backends = twoBackendFleet()
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var maxBE, sumBE float64
	busy := 0
	for _, bs := range rep.Backends {
		if bs.Pairs == 0 {
			continue
		}
		busy++
		sumBE += bs.MakespanSec
		if bs.MakespanSec > maxBE {
			maxBE = bs.MakespanSec
		}
	}
	if busy < 2 {
		t.Fatalf("need >=2 busy backends, got %d", busy)
	}
	if rep.MakespanSec != maxBE {
		t.Fatalf("fleet makespan %g != max backend window %g (union model broken)", rep.MakespanSec, maxBE)
	}
	if rep.MakespanSec >= sumBE {
		t.Fatalf("fleet makespan %g >= back-to-back sum %g: windows did not overlap", rep.MakespanSec, sumBE)
	}
}

// TestFleetBackendLossRedispatch kills a whole backend mid-session and
// checks the recovery path: the shard moves to the survivors, results
// stay bit-identical and in order, and the report says what happened.
func TestFleetBackendLossRedispatch(t *testing.T) {
	pairs := makePairs(45, 50, 400, 0.1)
	cfg := testConfig(4, true)
	cfg.Escalate = true

	_, single, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]Result, len(single))
	for _, r := range single {
		byID[r.ID] = r
	}

	fleet := twoBackendFleet()
	dying := fleet[1].(*PiMBackend)
	dying.FailRounds(1)
	fcfg := cfg
	fcfg.Backends = fleet
	rep, got, err := AlignPairs(fcfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if fleetKey(byID[p.ID]) != fleetKey(got[i]) {
			t.Fatalf("pair %d differs after backend loss", p.ID)
		}
		if got[i].Backend != "pim0" {
			t.Fatalf("pair %d carries backend %q; only pim0 survived", p.ID, got[i].Backend)
		}
	}
	if rep.Redispatches == 0 {
		t.Fatal("backend loss reported no redispatches")
	}
	if dying.Healthy() {
		t.Fatal("failed backend still reports healthy")
	}
	var lostStats *BackendStats
	for i := range rep.Backends {
		if rep.Backends[i].Name == "pim1" {
			lostStats = &rep.Backends[i]
		}
	}
	if lostStats == nil || !lostStats.Down || lostStats.Redispatched == 0 {
		t.Fatalf("lost backend stats not recorded: %+v", rep.Backends)
	}
}

// TestFleetAllBackendsDown exhausts the fleet: the run must error rather
// than hang or drop pairs.
func TestFleetAllBackendsDown(t *testing.T) {
	pairs := makePairs(46, 10, 300, 0.1)
	cfg := testConfig(2, false)
	fleet := twoBackendFleet()
	fleet[0].(*PiMBackend).FailRounds(1)
	fleet[1].(*PiMBackend).FailRounds(1)
	cfg.Backends = fleet
	_, _, err := AlignPairs(cfg, pairs)
	if err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("want all-backends-down error, got %v", err)
	}
}

// TestFleetStreamingSubmissionOrder drives the fleet through the
// streaming session in small micro-batches: results must arrive in
// submission order and match the single-fabric stream bit for bit.
func TestFleetStreamingSubmissionOrder(t *testing.T) {
	pairs := makePairs(47, 60, 300, 0.1)
	cfg := testConfig(4, true)
	cfg.Escalate = true

	_, single, err := AlignPairsStream(context.Background(),
		SessionConfig{Host: cfg, MaxBatchPairs: 8}, pairs)
	if err != nil {
		t.Fatal(err)
	}

	fcfg := cfg
	fcfg.Backends = twoBackendFleet()
	rep, got, err := AlignPairsStream(context.Background(),
		SessionConfig{Host: fcfg, MaxBatchPairs: 8}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("streamed %d of %d results", len(got), len(pairs))
	}
	for i, p := range pairs {
		if got[i].ID != p.ID {
			t.Fatalf("position %d: streamed ID %d, submitted %d (order broken)", i, got[i].ID, p.ID)
		}
	}
	assertSameResults(t, single, got)
	if len(rep.Backends) != 2 {
		t.Fatalf("merged session report lost the backend breakdown: %+v", rep.Backends)
	}
	total := 0
	for _, bs := range rep.Backends {
		total += bs.Pairs
	}
	if total != len(pairs) {
		t.Fatalf("backend pair tallies sum to %d, want %d", total, len(pairs))
	}
}

// TestFleetStreamingBackendLoss combines streaming with whole-backend
// loss: a server dies between micro-batches and the rest of the stream
// keeps its order and answers.
func TestFleetStreamingBackendLoss(t *testing.T) {
	pairs := makePairs(48, 60, 300, 0.1)
	cfg := testConfig(4, false)

	_, single, err := AlignPairsStream(context.Background(),
		SessionConfig{Host: cfg, MaxBatchPairs: 10}, pairs)
	if err != nil {
		t.Fatal(err)
	}

	fleet := twoBackendFleet()
	fleet[1].(*PiMBackend).FailRounds(1)
	fcfg := cfg
	fcfg.Backends = fleet
	rep, got, err := AlignPairsStream(context.Background(),
		SessionConfig{Host: fcfg, MaxBatchPairs: 10}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if got[i].ID != p.ID {
			t.Fatalf("position %d out of order after backend loss", i)
		}
	}
	assertSameResults(t, single, got)
	if rep.Redispatches == 0 {
		t.Fatal("no redispatches recorded for the lost backend")
	}
}

// TestFleetRankNumbering checks the merged timeline: every backend's
// rank slots land in its own fixed window of the fleet rank space, so
// trace exports never collide.
func TestFleetRankNumbering(t *testing.T) {
	pairs := makePairs(49, 40, 300, 0.1)
	cfg := testConfig(4, false)
	cfg.Backends = twoBackendFleet() // 3 ranks + 1 rank
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range rep.Ranks {
		switch rs.Backend {
		case "pim0":
			if rs.Rank < 0 || rs.Rank > 2 {
				t.Fatalf("pim0 rank %d outside [0,2]", rs.Rank)
			}
		case "pim1":
			if rs.Rank != 3 {
				t.Fatalf("pim1 rank %d, want 3", rs.Rank)
			}
		default:
			t.Fatalf("rank slot without backend name: %+v", rs)
		}
	}
}

func TestPlacementAssign(t *testing.T) {
	loads := []int64{100, 90, 80, 20, 10, 5}
	// Machine 0 is 4x faster than machine 1.
	buckets := PlacementAssign(loads, []float64{1, 4})
	if len(buckets) != 2 {
		t.Fatalf("bucket count %d", len(buckets))
	}
	var fast, slow int64
	seen := map[int]bool{}
	for m, bucket := range buckets {
		for _, idx := range bucket {
			if seen[idx] {
				t.Fatalf("item %d placed twice", idx)
			}
			seen[idx] = true
			if m == 0 {
				fast += loads[idx]
			} else {
				slow += loads[idx]
			}
		}
	}
	if len(seen) != len(loads) {
		t.Fatalf("placed %d of %d items", len(seen), len(loads))
	}
	if fast <= slow {
		t.Fatalf("fast machine got %d, slow got %d — cost model ignored", fast, slow)
	}
	// Degenerate shapes must not panic.
	if got := PlacementAssign(nil, []float64{1}); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty loads: %v", got)
	}
	if got := PlacementAssign(loads, nil); len(got) != 0 {
		t.Fatalf("no machines: %v", got)
	}
}

func TestParseFleet(t *testing.T) {
	fleet, err := ParseFleet("pim:40,pim:20@300~0.05,cpu:16")
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 3 {
		t.Fatalf("parsed %d backends", len(fleet))
	}
	if fleet[0].Name() != "pim0" || fleet[0].Ranks() != 40 {
		t.Fatalf("backend 0: %s/%d", fleet[0].Name(), fleet[0].Ranks())
	}
	p1 := fleet[1].(*PiMBackend)
	if p1.Name() != "pim1" || p1.ranks != 20 || p1.freqMHz != 300 {
		t.Fatalf("backend 1: %+v", p1)
	}
	if p1.faults == nil || p1.faults.Rate != 0.05 {
		t.Fatalf("backend 1 fault override missing: %+v", p1.faults)
	}
	if p1.seedSalt == 0 {
		t.Fatal("backend 1 seed not salted")
	}
	c2 := fleet[2].(*CPUBackend)
	if c2.Name() != "cpu2" || c2.threads != 16 {
		t.Fatalf("backend 2: %+v", c2)
	}
	if f, err := ParseFleet(""); err != nil || f != nil {
		t.Fatalf("empty spec: %v %v", f, err)
	}
	for _, bad := range []string{"gpu:2", "pim:0", "pim:2@", "pim:2~1.5", "cpu:2~0.1", ",", "cpu:x"} {
		if _, err := ParseFleet(bad); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
}

// TestFleetValidate covers the Config-level fleet checks.
func TestFleetValidate(t *testing.T) {
	cfg := testConfig(2, false)
	cfg.Backends = []Backend{NewPiMBackend("a", 1, 350), NewPiMBackend("a", 1, 350)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("duplicate backend names passed Validate")
	}
	cfg.Backends = []Backend{nil}
	if err := cfg.Validate(); err == nil {
		t.Fatal("nil backend passed Validate")
	}
	cfg.Backends = []Backend{NewPiMBackend("", 1, 350)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("empty backend name passed Validate")
	}
}
