package host

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pimnw/internal/cache"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// The streaming dispatch layer. The paper's host (§4.1) is a FIFO
// dispatcher that keeps 40 ranks fed while results stream back;
// AlignPairs is its one-shot form, requiring the full pair list up
// front. A Session is the serving form of the same loop: pairs are
// admitted incrementally, accumulated into rank-sized micro-batches
// under a dynamic batching policy (flush on size, or on a max-linger
// deadline so a trickle of traffic is never parked indefinitely), and
// each micro-batch runs the existing LPT→launch→recover→escalate
// machinery concurrently with continued admission. Results stream back
// in submission order, each carrying the same Status/Provenance a
// one-shot run would produce; a session that receives its whole workload
// as one micro-batch is bit-identical to AlignPairs, reports included.

// Session errors.
var (
	// ErrQueueFull rejects a Submit when admitted-but-undelivered pairs
	// already fill the queue — the backpressure signal serving frontends
	// translate into 429 + Retry-After.
	ErrQueueFull = errors.New("host: session admission queue full")
	// ErrSessionClosed rejects a Submit after Close (or cancellation).
	ErrSessionClosed = errors.New("host: session closed")
)

// SessionConfig configures a streaming dispatch session.
type SessionConfig struct {
	// Host is the per-micro-batch run configuration — the same Config
	// AlignPairs takes, faults, escalation ladder and all.
	Host Config
	// MaxBatchPairs flushes the accumulating micro-batch when it reaches
	// this many pairs. Zero means 4 pairs per DPU of a rank (256): enough
	// to keep every DPU of a rank loaded with the LPT spread.
	MaxBatchPairs int
	// MaxLinger bounds how long an admitted pair may wait for its
	// micro-batch to fill before the partial batch is flushed anyway.
	// Zero means 2ms.
	MaxLinger time.Duration
	// QueueLimit bounds admitted-but-undelivered pairs; beyond it Submit
	// returns ErrQueueFull. Zero means 8 micro-batches' worth.
	QueueLimit int
	// MaxConcurrentBatches bounds micro-batches dispatched concurrently
	// (admission continues while they run). Zero means 2.
	MaxConcurrentBatches int
	// Cache, when non-nil, is the persistent result cache consulted at
	// admission: a hit streams the stored result in submission order
	// without the pair ever reaching the balancer, and certified-optimal
	// non-degraded results (StatusOK / StatusEscalated) are inserted
	// after compute. Within one micro-batch, distinct submissions of the
	// same cache key share a single computation. The cache may be shared
	// across concurrent sessions.
	Cache *cache.Cache
	// CacheNoStore serves hits but suppresses inserts — set by serving
	// frontends when load shedding has degraded the request plan, so a
	// shed-quality answer can never poison the cache.
	CacheNoStore bool
}

func (c SessionConfig) maxBatchPairs() int {
	if c.MaxBatchPairs > 0 {
		return c.MaxBatchPairs
	}
	return 4 * pim.DPUsPerRank
}

func (c SessionConfig) maxLinger() time.Duration {
	if c.MaxLinger > 0 {
		return c.MaxLinger
	}
	return 2 * time.Millisecond
}

func (c SessionConfig) queueLimit() int {
	if c.QueueLimit > 0 {
		return c.QueueLimit
	}
	return 8 * c.maxBatchPairs()
}

func (c SessionConfig) maxConcurrent() int {
	if c.MaxConcurrentBatches > 0 {
		return c.MaxConcurrentBatches
	}
	return 2
}

// submission is one admitted pair, stamped for latency accounting. With
// a cache attached, key is the pair's content-addressed identity and hit
// carries the replayed result when the lookup succeeded at admission
// (the submission still occupies its queue and batch slot, so ordering
// and backpressure behave identically either way).
type submission struct {
	pair Pair
	at   time.Time
	key  cache.Key
	hit  *Result
}

// microBatch is one flushed accumulation, sequenced for ordered delivery.
type microBatch struct {
	seq       int
	subs      []submission
	flushedAt time.Time // when the batch was sealed; anchors queue-wait
}

// StageBreakdown decomposes a session's request latency into serving
// stages. The stages are not disjoint and do not sum to wall-clock time:
// QueueWaitSec and LingerSec are measured host wall-clock sums over
// pairs/batches; KernelSec, WaitRetrySec and EscalationSec are simulated
// fabric time (KernelSec already includes the compute of retries and
// escalation rounds, and EscalationSec's round windows overlap it —
// they answer "where did the time go" per lens, not as a partition);
// VerifySec is measured host wall-clock spent re-scoring CIGARs.
type StageBreakdown struct {
	// QueueWaitSec sums, over micro-batches, the wall-clock gap between a
	// batch being sealed and a dispatch worker picking it up, weighted by
	// the batch's pair count.
	QueueWaitSec float64 `json:"queue_wait_sec"`
	// LingerSec sums each pair's wall-clock wait from admission until its
	// micro-batch was sealed (the dynamic-batching linger).
	LingerSec float64 `json:"linger_sec"`
	// KernelSec is the simulated DPU compute total (Report.KernelSecSum),
	// retries and escalation rounds included.
	KernelSec float64 `json:"kernel_sec"`
	// WaitRetrySec is the simulated launch-barrier wait (Report.WaitSec):
	// DPUs idling for the slowest sibling, original round and retries.
	WaitRetrySec float64 `json:"wait_retry_sec"`
	// EscalationSec sums the simulated timeline windows of escalation
	// rounds (overlaps KernelSec by construction).
	EscalationSec float64 `json:"escalation_sec"`
	// VerifySec is measured host wall-clock spent verifying results
	// (Report.VerifySec).
	VerifySec float64 `json:"verify_sec"`
}

// batchOutcome is one executed micro-batch, ready for in-order delivery.
type batchOutcome struct {
	seq     int
	subs    []submission
	rep     *Report
	results []Result // submission order; exactly one per submission
	err     error
}

// Histogram bounds for the session's serving metrics.
var (
	latencyBuckets   = []float64{1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}
	occupancyBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// Session accepts pairs incrementally and streams results back in
// submission order. Submit never blocks on dispatch: a full queue is an
// ErrQueueFull reject, a full micro-batch is handed to a dispatch worker
// and admission continues. Close drains everything in flight.
type Session struct {
	cfg SessionConfig
	ctx context.Context

	results   chan Result
	batches   chan microBatch
	outcomes  chan batchOutcome
	lingerArm chan struct{}
	done      chan struct{}

	closeOnce sync.Once
	sendWG    sync.WaitGroup // flushes on their way into s.batches
	workerWG  sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inFlight int // admitted pairs not yet delivered (or dropped)
	cur      []submission
	nextSeq  int
	err      error
	rep      *Report
	stages   StageBreakdown // measured fields only; simulated fields filled by Stages
}

// NewSession validates the configuration and starts the session's
// dispatch workers. Cancelling ctx aborts the session: admission stops,
// queued micro-batches are skipped, and the Results channel closes.
func NewSession(ctx context.Context, cfg SessionConfig) (*Session, error) {
	if err := cfg.Host.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBatchPairs < 0 || cfg.QueueLimit < 0 || cfg.MaxConcurrentBatches < 0 || cfg.MaxLinger < 0 {
		return nil, fmt.Errorf("host: negative session parameters")
	}
	// Fail fast on a bad fault config; the per-micro-batch models built
	// later only reseed this one.
	if _, err := pim.NewFaultModel(cfg.Host.Faults); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Host.TraceID == "" {
		cfg.Host.TraceID = obs.TraceIDFrom(ctx)
	}
	s := &Session{
		cfg: cfg,
		ctx: ctx,
		// A micro-batch holds >= 1 in-flight pair, so undelivered batches
		// can never exceed the queue limit: with this capacity a dispatch
		// send never blocks, which keeps Submit wait-free and makes the
		// shutdown drain deadlock-free.
		batches:   make(chan microBatch, cfg.queueLimit()),
		outcomes:  make(chan batchOutcome, cfg.maxConcurrent()),
		results:   make(chan Result),
		lingerArm: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	for i := 0; i < cfg.maxConcurrent(); i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for mb := range s.batches {
				s.outcomes <- s.runMicroBatch(mb)
			}
		}()
	}
	go func() {
		s.workerWG.Wait()
		close(s.outcomes)
	}()
	go s.collect()
	go s.lingerLoop()
	go func() {
		select {
		case <-s.ctx.Done():
			s.shutdown(false)
		case <-s.done:
		}
	}()
	return s, nil
}

// Submit admits one pair. It returns ErrQueueFull when the bounded queue
// of undelivered pairs is full (backpressure — retry later), and
// ErrSessionClosed after Close or cancellation. Pair IDs are the
// caller's: they are carried through to the streamed Result verbatim and
// may repeat across submissions.
func (s *Session) Submit(p Pair) error {
	sub := submission{pair: p}
	if c := s.cfg.Cache; c != nil {
		// Key derivation and lookup run outside the session lock: the hot
		// path of a warm cache is two digests and a map probe, and a miss
		// costs the digests it would have needed at insert time anyway.
		sub.key = cacheKeyFor(&s.cfg.Host, p)
		if v, ok := c.Lookup(sub.key); ok {
			sub.hit = resultFromCache(p.ID, v)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.inFlight >= s.cfg.queueLimit() {
		s.mu.Unlock()
		obs.Default().Counter("session_admission_rejects_total").Add(1)
		obs.Flight().Record("reject", s.cfg.Host.TraceID, "session admission queue full")
		return ErrQueueFull
	}
	s.inFlight++
	sub.at = time.Now()
	s.cur = append(s.cur, sub)
	arm := len(s.cur) == 1
	var mb microBatch
	full := len(s.cur) >= s.cfg.maxBatchPairs()
	if full {
		mb = s.takeLocked()
		arm = false
	}
	depth := s.inFlight
	s.mu.Unlock()

	reg := obs.Default()
	reg.Counter("session_pairs_total").Add(1)
	reg.Gauge("session_queue_depth").Set(float64(depth))
	if arm {
		// Non-blocking: a pending arm already covers (or predates) this
		// batch's linger deadline.
		select {
		case s.lingerArm <- struct{}{}:
		default:
		}
	}
	if full {
		s.dispatch(mb, "size")
	}
	return nil
}

// takeLocked seals the accumulating pairs into the next micro-batch.
// Callers hold s.mu and must pass the batch to dispatch after unlocking.
func (s *Session) takeLocked() microBatch {
	now := time.Now()
	mb := microBatch{seq: s.nextSeq, subs: s.cur, flushedAt: now}
	for _, sub := range mb.subs {
		s.stages.LingerSec += now.Sub(sub.at).Seconds()
	}
	s.nextSeq++
	s.cur = nil
	s.sendWG.Add(1)
	return mb
}

// dispatch hands one sealed micro-batch to the workers. The batches
// channel is sized so this never blocks (see NewSession).
func (s *Session) dispatch(mb microBatch, reason string) {
	defer s.sendWG.Done()
	reg := obs.Default()
	reg.Counter("session_batches_total").Add(1)
	reg.Counter("session_flush_" + reason + "_total").Add(1)
	reg.Histogram("session_batch_pairs", occupancyBuckets).Observe(float64(len(mb.subs)))
	s.batches <- mb
}

// Flush forces the partial micro-batch out without waiting for the size
// or linger trigger.
func (s *Session) Flush() {
	s.mu.Lock()
	if s.closed || len(s.cur) == 0 {
		s.mu.Unlock()
		return
	}
	mb := s.takeLocked()
	s.mu.Unlock()
	s.dispatch(mb, "linger")
}

// lingerLoop bounds how long a partial micro-batch may wait for more
// traffic: armed when a pair lands in an empty accumulator, it flushes
// whatever has accumulated when the deadline passes.
func (s *Session) lingerLoop() {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	defer t.Stop()
	for {
		select {
		case <-s.lingerArm:
			t.Reset(s.cfg.maxLinger())
		case <-t.C:
			s.Flush()
		case <-s.done:
			return
		}
	}
}

// Results is the stream of completed alignments, in submission order.
// The channel closes once the session has drained (after Close or
// cancellation).
func (s *Session) Results() <-chan Result { return s.results }

// Close stops admission, flushes the partial micro-batch, waits until
// every in-flight batch has executed and streamed its results, then
// publishes the merged report's metrics. It returns the session's first
// error, if any. The caller must keep consuming Results while Close
// waits, or run Close from another goroutine.
func (s *Session) Close() error {
	s.shutdown(true)
	<-s.done
	return s.Err()
}

// shutdown transitions the session to draining exactly once. With flush
// set the partial batch is dispatched (graceful close); without, its
// pairs are dropped (cancellation).
func (s *Session) shutdown(flush bool) {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		var mb microBatch
		send := false
		if len(s.cur) > 0 {
			if flush {
				mb = s.takeLocked()
				send = true
			} else {
				s.inFlight -= len(s.cur)
				s.cur = nil
			}
		}
		s.mu.Unlock()
		if send {
			s.dispatch(mb, "close")
		}
		s.sendWG.Wait()
		close(s.batches)
	})
}

// Err returns the first pipeline error (a failed micro-batch or the
// context's cancellation cause); nil while everything is healthy.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Report returns the session's merged run report: micro-batch reports
// folded together in submission order, modelling the batches executing
// back-to-back on the shared fabric (the same convention the escalation
// ladder uses for its rounds). It blocks until the session has drained,
// so call it after Close or after Results closes.
func (s *Session) Report() *Report {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rep == nil {
		return &Report{UtilizationMin: 1}
	}
	return s.rep
}

// Stages returns the session's stage latency breakdown: the measured
// queue-wait and linger accumulated during admission plus the simulated
// kernel / wait / escalation decomposition and measured verify time from
// the merged report. Like Report, it blocks until the session has
// drained.
func (s *Session) Stages() StageBreakdown {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stages
	if s.rep != nil {
		st.KernelSec = s.rep.KernelSecSum
		st.WaitRetrySec = s.rep.WaitSec
		for _, er := range s.rep.Escalation {
			st.EscalationSec += er.EndSec - er.StartSec
		}
		st.VerifySec = s.rep.VerifySec
	}
	return st
}
