package host

import (
	"context"
	"sync"
	"testing"
	"time"

	"pimnw/internal/cache"
	"pimnw/internal/pim"
)

func openHostCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.Open(cache.Options{Dir: t.TempDir(), Fsync: cache.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// streamAll drives pairs through a fresh session and returns the merged
// report plus the streamed results in order.
func streamAll(t *testing.T, cfg SessionConfig, pairs []Pair) (*Report, []Result) {
	t.Helper()
	rep, results, err := AlignPairsStream(context.Background(), cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	return rep, results
}

// dupHeavyPairs builds an n-pair workload drawn from a small pool of
// unique pairs — the all-against-all / consensus-polishing access pattern
// the cache targets.
func dupHeavyPairs(n, unique, length int) []Pair {
	pool := makePairs(404, unique, length, 0.08)
	pairs := make([]Pair, n)
	for i := range pairs {
		p := pool[i%unique]
		pairs[i] = Pair{ID: i, A: p.A, B: p.B}
	}
	return pairs
}

// TestSessionCacheWarmSpeedup pins the acceptance criterion: a
// duplicate-heavy 10k-pair session against a warm cache must complete at
// least 5× faster end-to-end than the same session cold. The workload is
// sized so compute dominates by a wide margin (expected speedup is well
// above 20×), keeping the 5× floor far from scheduler noise.
func TestSessionCacheWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	pairs := dupHeavyPairs(10000, 250, 400)
	cfg := SessionConfig{
		Host:          testConfig(4, true),
		MaxBatchPairs: 1024,
		QueueLimit:    len(pairs),
	}
	// Escalation on: every pair resolves to a certified status, so every
	// unique pair becomes insertable and the warm run is all hits.
	cfg.Host.Escalate = true
	cfg.Cache = openHostCache(t)

	coldStart := time.Now()
	coldRep, coldResults := streamAll(t, cfg, pairs)
	cold := time.Since(coldStart)
	if coldRep.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", coldRep.CacheHits)
	}
	// The cold run itself dedups in-batch duplicates and hits on keys
	// inserted by earlier micro-batches, so only require that every unique
	// pair was actually computed and everything was delivered.
	if coldRep.Alignments != len(pairs) {
		t.Fatalf("cold run delivered %d alignments for %d pairs", coldRep.Alignments, len(pairs))
	}

	warmStart := time.Now()
	warmRep, warmResults := streamAll(t, cfg, pairs)
	warm := time.Since(warmStart)
	if warmRep.CacheHits != len(pairs) {
		t.Fatalf("warm run: %d hits for %d pairs", warmRep.CacheHits, len(pairs))
	}
	if warmRep.Batches != 0 || len(warmRep.Ranks) != 0 {
		t.Fatalf("warm run touched the fabric: %d batches, %d rank executions",
			warmRep.Batches, len(warmRep.Ranks))
	}
	for i := range warmResults {
		if !warmResults[i].Cached {
			t.Fatalf("warm result %d not marked cached", i)
		}
		if !sameAnswer(coldResults[i], warmResults[i]) {
			t.Fatalf("warm result %d differs from cold:\ncold %+v\nwarm %+v",
				i, coldResults[i], warmResults[i])
		}
	}
	if warm*5 > cold {
		t.Errorf("warm run %v is not 5x faster than cold %v", warm, cold)
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, cold.Seconds()/warm.Seconds())
}

// sameAnswer compares everything a client consumes except the pair ID
// (deduped siblings carry their own IDs), the Cached marker and the
// execution placement.
func sameAnswer(a, b Result) bool {
	return a.Score == b.Score && a.InBand == b.InBand &&
		string(a.Cigar) == string(b.Cigar) && a.Status == b.Status &&
		a.Provenance == b.Provenance
}

// TestSessionCacheBitIdentical is the differential test: over a corpus of
// varied pairs, results served from the cache must match recomputation
// (a cache-less session over the same workload) bit for bit — score,
// in-band flag, CIGAR, status and provenance.
func TestSessionCacheBitIdentical(t *testing.T) {
	pairs := makePairs(77, 120, 150, 0.10)
	base := SessionConfig{Host: testConfig(2, true), MaxBatchPairs: 32, QueueLimit: len(pairs)}

	_, oracle := streamAll(t, base, pairs) // no cache: pure recomputation

	cached := base
	cached.Cache = openHostCache(t)
	_, fill := streamAll(t, cached, pairs)
	filledRep, replay := streamAll(t, cached, pairs)
	if filledRep.CacheHits == 0 {
		t.Fatal("replay run hit nothing")
	}
	for i := range oracle {
		if !sameAnswer(oracle[i], fill[i]) {
			t.Errorf("fill result %d diverged from oracle:\noracle %+v\n  fill %+v",
				i, oracle[i], fill[i])
		}
		if !sameAnswer(oracle[i], replay[i]) {
			t.Errorf("replayed result %d diverged from oracle:\noracle %+v\nreplay %+v",
				i, oracle[i], replay[i])
		}
	}
}

// TestSessionCacheNeverStoresDegraded: a run whose pairs resolve through
// the degraded ladder rungs (score-only / CPU fallback) must insert
// nothing for them, and an untrusted stored status must never be served.
func TestSessionCacheNeverStoresDegraded(t *testing.T) {
	// A tiny band with escalation on and a tight MaxBand forces pairs
	// through clipped/out-of-band into the degraded rungs.
	cfg := SessionConfig{MaxBatchPairs: 64}
	cfg.Host = testConfig(1, true)
	cfg.Host.Kernel.Band = 16
	cfg.Host.Escalate = true
	cfg.Host.MaxBand = 32
	cfg.Cache = openHostCache(t)

	pairs := makePairs(9, 60, 300, 0.25) // high error rate: band 16 cannot hold these
	pairs = append(pairs, makePairs(10, 4, 60, 0.0)...)
	for i := range pairs {
		pairs[i].ID = i
	}
	rep, results := streamAll(t, cfg, pairs)
	if rep.DegradedScoreOnly+rep.DegradedCPU == 0 {
		t.Fatal("workload produced no degraded results; the test exercises nothing")
	}
	degraded := 0
	for _, r := range results {
		if r.Status == StatusDegradedScoreOnly || r.Status == StatusDegradedCPU {
			degraded++
		}
	}
	stats := cfg.Cache.Stats()
	if int(stats.Inserts) != len(pairs)-degraded {
		t.Errorf("%d inserts for %d pairs with %d degraded — degraded results were cached",
			stats.Inserts, len(pairs), degraded)
	}

	// Replay: only the non-degraded pairs may hit.
	rep2, results2 := streamAll(t, cfg, pairs)
	if rep2.CacheHits != len(pairs)-degraded {
		t.Errorf("replay: %d hits, want %d", rep2.CacheHits, len(pairs)-degraded)
	}
	for i, r := range results2 {
		if r.Cached && (r.Status == StatusDegradedScoreOnly || r.Status == StatusDegradedCPU) {
			t.Errorf("degraded result %d served from cache", i)
		}
		if !sameAnswer(results[i], r) {
			t.Errorf("replay result %d diverged:\nfirst  %+v\nreplay %+v", i, results[i], r)
		}
	}
}

// TestSessionCacheNoStore: CacheNoStore serves hits but never inserts —
// the shed-degraded serving mode.
func TestSessionCacheNoStore(t *testing.T) {
	pairs := makePairs(31, 40, 120, 0.05)
	cfg := SessionConfig{Host: testConfig(1, true), MaxBatchPairs: 16, QueueLimit: len(pairs)}
	cfg.Cache = openHostCache(t)
	cfg.CacheNoStore = true

	streamAll(t, cfg, pairs)
	if stats := cfg.Cache.Stats(); stats.Inserts != 0 {
		t.Fatalf("CacheNoStore session inserted %d records", stats.Inserts)
	}

	// Fill normally, then confirm a NoStore session still hits.
	store := cfg
	store.CacheNoStore = false
	streamAll(t, store, pairs)
	rep, _ := streamAll(t, cfg, pairs)
	if rep.CacheHits != len(pairs) {
		t.Fatalf("NoStore replay: %d hits for %d pairs", rep.CacheHits, len(pairs))
	}
}

// TestSessionCacheInBatchDedup: duplicate submissions inside one
// micro-batch share a single computation and all receive the answer.
func TestSessionCacheInBatchDedup(t *testing.T) {
	pairs := dupHeavyPairs(64, 4, 150) // one micro-batch, 16 copies of each
	cfg := SessionConfig{Host: testConfig(1, true), MaxBatchPairs: 64, QueueLimit: 64}
	cfg.Cache = openHostCache(t)

	rep, results := streamAll(t, cfg, pairs)
	if rep.DedupedPairs != 60 {
		t.Fatalf("DedupedPairs = %d, want 60 (64 submissions, 4 unique)", rep.DedupedPairs)
	}
	if rep.Alignments != 64 {
		t.Fatalf("Alignments = %d, want 64", rep.Alignments)
	}
	if stats := cfg.Cache.Stats(); stats.Inserts != 4 {
		t.Fatalf("%d inserts, want 4", stats.Inserts)
	}
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("result %d carries ID %d", i, r.ID)
		}
		if !sameAnswer(results[i%4], r) {
			t.Fatalf("deduped result %d diverged from its sibling %d", i, i%4)
		}
	}
}

// TestSessionCacheConcurrentSessions runs several streaming sessions
// sharing one cache at once; under -race this proves lookups, inserts and
// hot-tier promotion race-cleanly against live dispatch.
func TestSessionCacheConcurrentSessions(t *testing.T) {
	c := openHostCache(t)
	pool := makePairs(55, 30, 120, 0.06)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pairs := make([]Pair, 60)
			for i := range pairs {
				p := pool[(g*7+i)%len(pool)]
				pairs[i] = Pair{ID: i, A: p.A, B: p.B}
			}
			cfg := SessionConfig{
				Host:                 testConfig(1, true),
				MaxBatchPairs:        16,
				MaxConcurrentBatches: 2,
				QueueLimit:           len(pairs),
			}
			cfg.Cache = c
			_, results, err := AlignPairsStream(context.Background(), cfg, pairs)
			if err != nil {
				t.Error(err)
				return
			}
			if len(results) != len(pairs) {
				t.Errorf("session %d: %d results for %d pairs", g, len(results), len(pairs))
			}
		}(g)
	}
	wg.Wait()
	stats := c.Stats()
	if stats.Inserts == 0 || stats.Hits+stats.Misses == 0 {
		t.Fatalf("shared cache saw no traffic: %+v", stats)
	}
}

// TestSessionCacheSingleBatchMatchesOneShot: with a cache attached but
// cold and no duplicates, a single-micro-batch session must still be
// bit-identical to one-shot AlignPairs — the cache path must not perturb
// the compute path.
func TestSessionCacheSingleBatchMatchesOneShot(t *testing.T) {
	pairs := makePairs(21, 40, 150, 0.05)
	cfg := testConfig(2, true)
	cfg.Faults = pim.FaultConfig{} // keep the one-shot/stream fault seeds aligned
	_, oneShot, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	scfg := SessionConfig{Host: cfg, MaxBatchPairs: len(pairs), QueueLimit: len(pairs)}
	scfg.Cache = openHostCache(t)
	_, streamed := streamAll(t, scfg, pairs)
	oneShotByID := make(map[int]Result, len(oneShot))
	for _, r := range oneShot {
		oneShotByID[r.ID] = r
	}
	for _, r := range streamed {
		if !sameAnswer(oneShotByID[r.ID], r) {
			t.Fatalf("pair %d diverged from one-shot:\none-shot %+v\nstreamed %+v",
				r.ID, oneShotByID[r.ID], r)
		}
	}
}
