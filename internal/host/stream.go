package host

import (
	"context"
	"time"

	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// runMicroBatch executes one micro-batch through the one-shot pipeline
// (alignOnce: dispatch, recovery, escalation, annotation) and reorders
// the results into submission order, so the collector can stream them
// without any per-pair bookkeeping.
func (s *Session) runMicroBatch(mb microBatch) batchOutcome {
	pickup := time.Now()
	oc := batchOutcome{seq: mb.seq, subs: mb.subs}
	if err := s.ctx.Err(); err != nil {
		// Cancelled: skip the compute, the collector discards the batch.
		oc.err = err
		return oc
	}
	if !mb.flushedAt.IsZero() {
		s.mu.Lock()
		s.stages.QueueWaitSec += pickup.Sub(mb.flushedAt).Seconds() * float64(len(mb.subs))
		s.mu.Unlock()
	}
	cfg := s.cfg.Host
	// Decorrelate fault draws across micro-batches: batch coordinates
	// restart at 0 inside every micro-batch, so reusing the seed would
	// make the same faults chase every batch — the same trick the
	// escalation ladder plays for its rounds. Seq 0 keeps the base seed,
	// which makes a single-micro-batch session bit-identical to one-shot
	// AlignPairs, faults included.
	cfg.Faults.Seed += int64(mb.seq) * 999983
	model, err := pim.NewFaultModel(cfg.Faults)
	if err != nil {
		oc.err = err
		return oc
	}
	cfg.faults = model

	// The dispatch machinery and the escalation ladder need unique pair
	// IDs; streaming clients may reuse theirs across (or even within)
	// submissions, so the batch runs on dense internal IDs that are
	// mapped back to the caller's on the way out.
	pairs := make([]Pair, len(mb.subs))
	for i, sub := range mb.subs {
		pairs[i] = Pair{ID: i, A: sub.pair.A, B: sub.pair.B}
	}
	sp := obs.StartSpan("host.session_batch")
	sp.SetAttrInt("batch", int64(mb.seq))
	sp.SetAttrInt("pairs", int64(len(pairs)))
	if cfg.TraceID != "" {
		sp.SetAttr("trace_id", cfg.TraceID)
	}
	rep, results, err := alignOnce(cfg, pairs, sp)
	sp.End()
	if err != nil {
		oc.err = err
		return oc
	}

	ordered := make([]Result, len(pairs))
	have := make([]bool, len(pairs))
	for _, r := range results {
		i := r.ID
		r.PairResult.ID = mb.subs[i].pair.ID
		ordered[i] = r
		have[i] = true
	}
	for i := range ordered {
		if have[i] {
			continue
		}
		// Abandoned under faults with escalation off: the submission
		// still yields exactly one streamed result, carrying the terminal
		// status instead of silently vanishing from the stream.
		ordered[i] = Result{
			PairResult: kernel.PairResult{ID: mb.subs[i].pair.ID},
			Rank:       -1, DPU: -1,
			Status: StatusAbandoned,
		}
	}
	for i, id := range rep.AbandonedIDs {
		rep.AbandonedIDs[i] = mb.subs[id].pair.ID
	}
	for i := range rep.Issues {
		rep.Issues[i].ID = mb.subs[rep.Issues[i].ID].pair.ID
	}
	oc.rep, oc.results = rep, ordered
	return oc
}

// collect is the session's delivery loop: it re-sequences finished
// micro-batches (workers may complete out of order) and streams each
// batch's results in submission order, merging reports as it goes. It
// owns closing the Results channel and the done signal.
func (s *Session) collect() {
	defer close(s.done)
	defer close(s.results)
	next := 0
	hold := map[int]batchOutcome{}
	cancelled := false
	for oc := range s.outcomes {
		hold[oc.seq] = oc
		for {
			o, ok := hold[next]
			if !ok {
				break
			}
			delete(hold, next)
			next++
			if !s.deliver(o, cancelled) {
				cancelled = true
			}
		}
	}
	s.mu.Lock()
	rep := s.rep
	s.mu.Unlock()
	if rep != nil {
		rep.publishMetrics()
	}
}

// deliver streams one batch outcome and folds its report into the
// session's. It returns false once the context is cancelled, after which
// later outcomes are merged and accounted but no longer streamed.
func (s *Session) deliver(oc batchOutcome, cancelled bool) bool {
	defer func() {
		s.mu.Lock()
		s.inFlight -= len(oc.subs)
		depth := s.inFlight
		s.mu.Unlock()
		obs.Default().Gauge("session_queue_depth").Set(float64(depth))
	}()
	if oc.err != nil {
		s.fail(oc.err)
		return !cancelled
	}
	s.mu.Lock()
	if s.rep == nil {
		s.rep = oc.rep
	} else {
		mergeStreamReport(s.rep, oc.rep)
	}
	s.mu.Unlock()
	if cancelled {
		return false
	}
	reg := obs.Default()
	for i := range oc.results {
		select {
		case s.results <- oc.results[i]:
			reg.Histogram("session_pair_latency_seconds", latencyBuckets).
				Observe(time.Since(oc.subs[i].at).Seconds())
		case <-s.ctx.Done():
			s.fail(s.ctx.Err())
			return false
		}
	}
	return true
}

// mergeStreamReport folds one micro-batch's finished report onto the
// session's merged report, in submission order. mergeRound handles the
// timeline, recovery and transfer fields (micro-batches reuse the fabric
// sequentially, like escalation rounds); the outcome fields a round-merge
// deliberately leaves to its caller — abandonment, integrity tallies,
// provenance, issues — are merged here, because a micro-batch's report is
// already final when it arrives.
func mergeStreamReport(dst, src *Report) {
	offset := dst.MakespanSec
	mergeRound(dst, src)
	dst.Alignments += src.Alignments
	dst.AbandonedPairs += src.AbandonedPairs
	dst.AbandonedIDs = append(dst.AbandonedIDs, src.AbandonedIDs...)
	dst.OutOfBandPairs += src.OutOfBandPairs
	dst.ClippedPairs += src.ClippedPairs
	dst.Escalations += src.Escalations
	dst.EscalationRounds += src.EscalationRounds
	dst.DegradedScoreOnly += src.DegradedScoreOnly
	dst.DegradedCPU += src.DegradedCPU
	dst.CPUFallbackSec += src.CPUFallbackSec
	for _, er := range src.Escalation {
		er.StartSec += offset
		er.EndSec += offset
		dst.Escalation = append(dst.Escalation, er)
	}
	for p, n := range src.Provenance {
		if dst.Provenance == nil {
			dst.Provenance = make(map[string]int)
		}
		dst.Provenance[p] += n
	}
	for _, is := range src.Issues {
		dst.addIssue(is)
	}
}

// AlignPairsStream runs a one-shot workload through a streaming Session
// and collects the streamed results — the bridge the experiment harness
// uses to drive its batch experiments over the serving path. The queue
// limit is raised to the workload size so a batch run never self-rejects;
// with MaxBatchPairs >= len(pairs) the whole workload is one micro-batch
// and the report is bit-identical to AlignPairs.
func AlignPairsStream(ctx context.Context, cfg SessionConfig, pairs []Pair) (*Report, []Result, error) {
	if cfg.QueueLimit < len(pairs) {
		cfg.QueueLimit = len(pairs)
	}
	s, err := NewSession(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		for _, p := range pairs {
			if err := s.Submit(p); err != nil {
				s.fail(err)
				break
			}
		}
		s.Close()
	}()
	results := make([]Result, 0, len(pairs))
	for r := range s.Results() {
		results = append(results, r)
	}
	rep := s.Report()
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return rep, results, nil
}
