package host

import (
	"context"
	"time"

	"pimnw/internal/cache"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// runMicroBatch executes one micro-batch through the one-shot pipeline
// (alignOnce: dispatch, recovery, escalation, annotation) and reorders
// the results into submission order, so the collector can stream them
// without any per-pair bookkeeping.
func (s *Session) runMicroBatch(mb microBatch) batchOutcome {
	pickup := time.Now()
	oc := batchOutcome{seq: mb.seq, subs: mb.subs}
	if err := s.ctx.Err(); err != nil {
		// Cancelled: skip the compute, the collector discards the batch.
		oc.err = err
		return oc
	}
	if !mb.flushedAt.IsZero() {
		s.mu.Lock()
		s.stages.QueueWaitSec += pickup.Sub(mb.flushedAt).Seconds() * float64(len(mb.subs))
		s.mu.Unlock()
	}
	cfg := s.cfg.Host

	// The dispatch machinery and the escalation ladder need unique pair
	// IDs; streaming clients may reuse theirs across (or even within)
	// submissions, so the batch runs on dense internal IDs that are
	// mapped back to the caller's on the way out. With a cache attached,
	// two more classes of submission never reach the kernel at all:
	// admission-time hits (slot -1), and in-batch duplicates, which map
	// onto the dense ID of their first identical sibling and share its
	// computation.
	cch := s.cfg.Cache
	slot := make([]int, len(mb.subs)) // submission -> dense pair ID, -1 = hit
	var firstSub []int                // dense pair ID -> first submission index
	var pairs []Pair
	hits := 0
	var keyOf map[cache.Key]int
	if cch != nil {
		keyOf = make(map[cache.Key]int, len(mb.subs))
	}
	for i, sub := range mb.subs {
		if sub.hit != nil {
			slot[i] = -1
			hits++
			continue
		}
		if keyOf != nil {
			if id, dup := keyOf[sub.key]; dup {
				slot[i] = id
				continue
			}
		}
		id := len(pairs)
		pairs = append(pairs, Pair{ID: id, A: sub.pair.A, B: sub.pair.B})
		firstSub = append(firstSub, i)
		slot[i] = id
		if keyOf != nil {
			keyOf[sub.key] = id
		}
	}
	dups := len(mb.subs) - hits - len(pairs)

	var rep *Report
	var results []Result
	if len(pairs) > 0 {
		// Decorrelate fault draws across micro-batches: batch coordinates
		// restart at 0 inside every micro-batch, so reusing the seed would
		// make the same faults chase every batch — the same trick the
		// escalation ladder plays for its rounds. Seq 0 keeps the base seed,
		// which makes a single-micro-batch session bit-identical to one-shot
		// AlignPairs, faults included.
		cfg.Faults.Seed += int64(mb.seq) * 999983
		model, err := pim.NewFaultModel(cfg.Faults)
		if err != nil {
			oc.err = err
			return oc
		}
		cfg.faults = model
		sp := obs.StartSpan("host.session_batch")
		sp.SetAttrInt("batch", int64(mb.seq))
		sp.SetAttrInt("pairs", int64(len(pairs)))
		if cfg.TraceID != "" {
			sp.SetAttr("trace_id", cfg.TraceID)
		}
		rep, results, err = alignOnce(cfg, pairs, sp)
		sp.End()
		if err != nil {
			oc.err = err
			return oc
		}
	} else {
		// Every submission hit: nothing executed, the fabric was never
		// touched, and the report says so.
		rep = &Report{UtilizationMin: 1, UtilizationMean: 1, TraceID: cfg.TraceID}
	}

	dense := make([]Result, len(pairs))
	haveDense := make([]bool, len(pairs))
	for _, r := range results {
		dense[r.ID] = r
		haveDense[r.ID] = true
	}
	if cch != nil && !s.cfg.CacheNoStore {
		for id, r := range dense {
			if haveDense[id] && cacheInsertable(r.Status) {
				if err := cch.Insert(mb.subs[firstSub[id]].key, valueFromResult(r)); err != nil {
					obs.Flight().Recordf("cache", cfg.TraceID, "insert failed: %v", err)
				}
			}
		}
	}

	ordered := make([]Result, len(mb.subs))
	for i, sub := range mb.subs {
		if slot[i] < 0 {
			r := *sub.hit
			rep.countProvenance(r.Provenance)
			ordered[i] = r
			continue
		}
		if id := slot[i]; haveDense[id] {
			r := dense[id]
			r.PairResult.ID = sub.pair.ID
			if i != firstSub[id] {
				// A deduped sibling: same answer, counted once per delivery.
				rep.countProvenance(r.Provenance)
			}
			ordered[i] = r
			continue
		}
		// Abandoned under faults with escalation off: the submission
		// still yields exactly one streamed result, carrying the terminal
		// status instead of silently vanishing from the stream.
		ordered[i] = Result{
			PairResult: kernel.PairResult{ID: sub.pair.ID},
			Rank:       -1, DPU: -1,
			Status: StatusAbandoned,
		}
	}
	for i, id := range rep.AbandonedIDs {
		rep.AbandonedIDs[i] = mb.subs[firstSub[id]].pair.ID
	}
	for i := range rep.Issues {
		rep.Issues[i].ID = mb.subs[firstSub[rep.Issues[i].ID]].pair.ID
	}
	rep.CacheHits += hits
	if cch != nil {
		rep.CacheMisses += len(mb.subs) - hits
	}
	rep.DedupedPairs += dups
	// Every submission yields exactly one delivered result; hits and
	// deduped siblings count in Alignments just like computed pairs, so
	// Σ Provenance == Alignments holds with or without a cache.
	rep.Alignments += hits + dups
	oc.rep, oc.results = rep, ordered
	return oc
}

// collect is the session's delivery loop: it re-sequences finished
// micro-batches (workers may complete out of order) and streams each
// batch's results in submission order, merging reports as it goes. It
// owns closing the Results channel and the done signal.
func (s *Session) collect() {
	defer close(s.done)
	defer close(s.results)
	next := 0
	hold := map[int]batchOutcome{}
	cancelled := false
	for oc := range s.outcomes {
		hold[oc.seq] = oc
		for {
			o, ok := hold[next]
			if !ok {
				break
			}
			delete(hold, next)
			next++
			if !s.deliver(o, cancelled) {
				cancelled = true
			}
		}
	}
	s.mu.Lock()
	rep := s.rep
	s.mu.Unlock()
	if rep != nil {
		rep.publishMetrics()
	}
}

// deliver streams one batch outcome and folds its report into the
// session's. It returns false once the context is cancelled, after which
// later outcomes are merged and accounted but no longer streamed.
func (s *Session) deliver(oc batchOutcome, cancelled bool) bool {
	defer func() {
		s.mu.Lock()
		s.inFlight -= len(oc.subs)
		depth := s.inFlight
		s.mu.Unlock()
		obs.Default().Gauge("session_queue_depth").Set(float64(depth))
	}()
	if oc.err != nil {
		s.fail(oc.err)
		return !cancelled
	}
	s.mu.Lock()
	if s.rep == nil {
		s.rep = oc.rep
	} else {
		mergeStreamReport(s.rep, oc.rep)
	}
	s.mu.Unlock()
	if cancelled {
		return false
	}
	reg := obs.Default()
	for i := range oc.results {
		select {
		case s.results <- oc.results[i]:
			reg.Histogram("session_pair_latency_seconds", latencyBuckets).
				Observe(time.Since(oc.subs[i].at).Seconds())
		case <-s.ctx.Done():
			s.fail(s.ctx.Err())
			return false
		}
	}
	return true
}

// mergeStreamReport folds one micro-batch's finished report onto the
// session's merged report, in submission order. mergeRound handles the
// timeline, recovery and transfer fields (micro-batches reuse the fabric
// sequentially, like escalation rounds); the outcome fields a round-merge
// deliberately leaves to its caller — abandonment, integrity tallies,
// provenance, issues — are merged here, because a micro-batch's report is
// already final when it arrives.
func mergeStreamReport(dst, src *Report) {
	offset := dst.MakespanSec
	mergeRound(dst, src)
	dst.Alignments += src.Alignments
	dst.AbandonedPairs += src.AbandonedPairs
	dst.AbandonedIDs = append(dst.AbandonedIDs, src.AbandonedIDs...)
	dst.OutOfBandPairs += src.OutOfBandPairs
	dst.ClippedPairs += src.ClippedPairs
	dst.OverflowedPairs += src.OverflowedPairs
	dst.Escalations += src.Escalations
	dst.EscalationRounds += src.EscalationRounds
	dst.DegradedScoreOnly += src.DegradedScoreOnly
	dst.DegradedCPU += src.DegradedCPU
	dst.CPUFallbackSec += src.CPUFallbackSec
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.DedupedPairs += src.DedupedPairs
	for _, er := range src.Escalation {
		er.StartSec += offset
		er.EndSec += offset
		dst.Escalation = append(dst.Escalation, er)
	}
	for p, n := range src.Provenance {
		if dst.Provenance == nil {
			dst.Provenance = make(map[string]int)
		}
		dst.Provenance[p] += n
	}
	for _, is := range src.Issues {
		dst.addIssue(is)
	}
	// Fleet runs carry a per-backend breakdown in fleet order; fold the
	// micro-batch's slice into the session's pairwise. A server's
	// micro-batches reuse it sequentially, so its makespans add.
	switch {
	case dst.Backends == nil:
		dst.Backends = src.Backends
	case len(src.Backends) == len(dst.Backends):
		for i := range dst.Backends {
			d, s := &dst.Backends[i], &src.Backends[i]
			d.Pairs += s.Pairs
			d.Batches += s.Batches
			d.MakespanSec += s.MakespanSec
			d.KernelSecSum += s.KernelSecSum
			d.Redispatched += s.Redispatched
			d.Down = d.Down || s.Down
		}
	}
}

// AlignPairsStream runs a one-shot workload through a streaming Session
// and collects the streamed results — the bridge the experiment harness
// uses to drive its batch experiments over the serving path. The queue
// limit is raised to the workload size so a batch run never self-rejects;
// with MaxBatchPairs >= len(pairs) the whole workload is one micro-batch
// and the report is bit-identical to AlignPairs.
func AlignPairsStream(ctx context.Context, cfg SessionConfig, pairs []Pair) (*Report, []Result, error) {
	if cfg.QueueLimit < len(pairs) {
		cfg.QueueLimit = len(pairs)
	}
	s, err := NewSession(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		for _, p := range pairs {
			if err := s.Submit(p); err != nil {
				s.fail(err)
				break
			}
		}
		s.Close()
	}()
	results := make([]Result, 0, len(pairs))
	for r := range s.Results() {
		results = append(results, r)
	}
	rep := s.Report()
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return rep, results, nil
}
