package host

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
	"pimnw/internal/verify"
)

// maxBackoffShift caps the exponential backoff doubling so the modelled
// wait never overflows (2^20 base intervals is already hours).
const maxBackoffShift = 20

// dpuAttempt is the outcome of one DPU launch within a batch attempt.
type dpuAttempt struct {
	out     kernel.DPUOutcome
	bytesIn int64
	sec     float64 // modelled execution time of this launch
	dpu     int     // rank-relative DPU index
	used    bool
	fail    pim.FaultKind // FaultNone = accepted
	// Result-validation outcome (Config.Verify): checks performed, the
	// failures among them, the measured wall-clock the checks cost
	// (summed across DPU launches), and whether the launch must be
	// rejected for carrying invalid results (handled like a corrupted
	// transfer).
	verified   int
	badResults int
	verifySec  float64
	invalid    bool
}

// runBatch executes one rank-sized batch with the host's recovery
// protocol (the fault-tolerant extension of §4.1's dispatch loop):
//
//  1. Balance the pending pairs over the rank's surviving DPUs (LPT by
//     default) and launch the kernel on each loaded DPU.
//  2. Detect failures when the rank barrier resolves: crashed launches
//     (the SDK call errored), corrupted result transfers (per-batch
//     checksum mismatch), and DPUs still running at the batch deadline
//     (stalls and severe slowdowns).
//  3. Accept every healthy DPU's results; collect the failed DPUs' pairs
//     as residual work. Crashed and timed-out DPUs are taken out of
//     rotation for the rest of the batch; a corrupted transfer leaves the
//     DPU in play (the fault was on the bus, not the compute).
//  4. Back off (exponential, deterministic jitter), re-run the balance
//     over the residual pairs, and redispatch — up to cfg.MaxRetries
//     times, after which the remaining pairs are abandoned and reported.
//
// The batch's modelled busy window stretches accordingly: kernelSec
// accumulates every attempt's slowest DPU (capped at the deadline) —
// compute only — while the backoff waits between attempts and fail-fast
// fault detection accumulate in waitSec, so per-rank KernelSec,
// utilisation and the Perfetto kernel lanes reflect compute, not
// waiting. Because the kernel is deterministic,
// a pair redispatched onto any DPU reproduces the exact scores and
// CIGARs of a fault-free run — the invariant the recovery tests assert.
func runBatch(cfg Config, pairs []Pair, batch int, sp *obs.Span) (batchExec, error) {
	ex := batchExec{minDPUSec: math.Inf(1), utilMin: 1}
	deadline := cfg.BatchDeadlineSec
	if deadline <= 0 {
		deadline = math.Inf(1)
	}
	launch := cfg.PIM.RankLaunchOverheadUS * 1e-6

	pending := pairs
	alive := make([]int, pim.DPUsPerRank)
	for i := range alive {
		alive[i] = i
	}

	for attempt := 0; len(pending) > 0; attempt++ {
		ex.attempts++
		asp := sp.Child("host.attempt")
		asp.SetAttrInt("attempt", int64(attempt))
		asp.SetAttrInt("pairs", int64(len(pending)))

		// computeSec is DPU execution time this attempt; waitSec is time
		// the rank spent waiting (fault detection with nothing running).
		var computeSec, waitSec float64
		var failed []Pair
		if cfg.faults.DrawRankDrop(batch, attempt) {
			// The whole rank fell off the bus; the launch call fails
			// fast, so detection only costs the launch overhead — and no
			// kernel ever ran, so the cost is waiting, not compute.
			ex.faults = append(ex.faults, FaultEvent{
				Batch: batch, Attempt: attempt, DPU: -1,
				Kind: pim.FaultRankDrop.String(), AtSec: ex.kernelSec + ex.waitSec,
			})
			obs.Flight().Recordf("fault", cfg.TraceID,
				"batch %d attempt %d: rank dropped off the bus (%d pairs)",
				batch, attempt, len(pending))
			waitSec = launch
			failed = pending
			asp.SetAttr("outcome", "rank_drop")
		} else {
			var err error
			computeSec, failed, err = ex.runAttempt(cfg, pending, batch, attempt, deadline, &alive, asp)
			if err != nil {
				asp.End()
				return ex, err
			}
		}
		asp.End()

		ex.kernelSec += computeSec
		ex.waitSec += waitSec
		if attempt > 0 || len(failed) == len(pending) {
			// Time past the first launch window, or a first launch that
			// produced nothing, is recovery cost.
			ex.retrySec += computeSec + waitSec
		}
		pending = failed
		if len(pending) == 0 {
			break
		}
		if attempt >= cfg.MaxRetries || len(alive) == 0 {
			for _, p := range pending {
				ex.abandoned = append(ex.abandoned, p.ID)
			}
			obs.Info("abandoning pairs: retries exhausted",
				"trace_id", cfg.TraceID, "batch", batch,
				"pairs", len(pending), "attempts", ex.attempts,
				"surviving_dpus", len(alive))
			// Abandonment is the event the flight recorder exists for:
			// record it, then dump the whole ring to the log so the
			// faults and escalations leading up to it are preserved next
			// to the failure.
			obs.Flight().Recordf("abandon", cfg.TraceID,
				"batch %d: %d pairs abandoned after %d attempts (%d DPUs surviving)",
				batch, len(pending), ex.attempts, len(alive))
			obs.Flight().DumpToLog("abandonment")
			break
		}
		shift := attempt
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		backoff := cfg.RetryBackoffSec * float64(int64(1)<<shift) *
			(1 + 0.5*cfg.faults.Jitter(batch, attempt))
		// The backoff interval is pure waiting: charging it to kernelSec
		// would inflate reported kernel time with fault-rate-dependent
		// idle time and push HostOverheadFraction negative.
		ex.waitSec += backoff
		ex.retrySec += backoff
		ex.redispatches += len(pending)
	}
	if math.IsInf(ex.minDPUSec, 1) {
		ex.minDPUSec = 0
	}
	return ex, nil
}

// runAttempt stages and launches the pending pairs over the surviving
// DPUs, verifies what comes back, and returns the attempt's modelled
// compute time (slowest DPU, deadline-capped) plus the pairs that must be
// redispatched. Hard-failed DPUs
// (crash, timeout) are removed from alive in place.
func (ex *batchExec) runAttempt(cfg Config, pending []Pair, batch, attempt int,
	deadline float64, alive *[]int, sp *obs.Span) (float64, []Pair, error) {

	lsp := sp.Child("host.balance_rank")
	loads := make([]int64, len(pending))
	for i, p := range pending {
		loads[i] = p.Workload(cfg.Kernel.Band)
	}
	buckets := cfg.Balance.assign(loads, len(*alive), int64(len(pending)))
	lsp.End()

	outs := make([]dpuAttempt, len(*alive))
	err := parallelFor(cfg.workers(), len(*alive), func(ai int) error {
		if len(buckets[ai]) == 0 {
			return nil
		}
		di := (*alive)[ai]
		d := cfg.PIM.NewDPU(di)
		d.Fault = cfg.faults.Draw(batch, attempt, di)
		esp := sp.Child("host.encode")
		esp.SetAttrInt("dpu", int64(di))
		kp := make([]kernel.Pair, 0, len(buckets[ai]))
		var bytesIn int64
		for _, idx := range buckets[ai] {
			p := pending[idx]
			staged, err := kernel.StagePair(d, p.ID, p.A, p.B)
			if err != nil {
				return fmt.Errorf("host: staging pair %d on DPU %d: %w", p.ID, di, err)
			}
			bytesIn += int64((len(p.A)+3)/4+(len(p.B)+3)/4) + pairDescriptorBytes
			kp = append(kp, staged)
		}
		esp.End()
		ksp := sp.Child("host.kernel")
		ksp.SetAttrInt("dpu", int64(di))
		out, err := kernel.Run(d, cfg.Kernel, kp)
		ksp.End()
		if err != nil {
			var fe *pim.FaultError
			if errors.As(err, &fe) {
				// An injected crash: recoverable, handled by redispatch.
				outs[ai] = dpuAttempt{bytesIn: bytesIn, dpu: di, used: true, fail: fe.Kind}
				return nil
			}
			return fmt.Errorf("host: DPU %d: %w", di, err)
		}
		da := dpuAttempt{out: out, bytesIn: bytesIn, dpu: di, used: true,
			sec: cfg.PIM.CyclesToSeconds(out.Stats.Cycles)}
		if da.sec > deadline {
			da.fail = pim.FaultStall
		} else if kernel.ChecksumResults(out.Results) != out.Checksum {
			da.fail = pim.FaultCorrupt
		} else if cfg.Verify && cfg.Kernel.Traceback {
			// Defense in depth past the transfer checksum: re-derive every
			// in-band score from its CIGAR and the cost table. A launch
			// with any invalid result is rejected wholesale — detected
			// corruption, same handling as a checksum mismatch. The wall
			// clock it costs is measured (host-side work, like the CPU
			// rung) and reported as VerifySec.
			vStart := time.Now()
			da.verified, da.badResults = verifyOutcome(cfg, pending, buckets[ai], out.Results)
			da.verifySec = time.Since(vStart).Seconds()
			da.invalid = da.badResults > 0
		}
		outs[ai] = da
		return nil
	})
	if err != nil {
		return 0, nil, err
	}

	var attemptSec float64
	var failed []Pair
	survivors := (*alive)[:0]
	for ai := range outs {
		o := &outs[ai]
		if !o.used {
			survivors = append(survivors, (*alive)[ai])
			continue
		}
		ex.bytesIn += o.bytesIn // retransfers on retry attempts cost bus time too
		ex.verifyChecked += o.verified
		ex.verifyFailures += o.badResults
		ex.verifySec += o.verifySec
		sec := o.sec
		if sec > deadline {
			sec = deadline // the host gives up on the DPU at the deadline
		}
		if sec > attemptSec {
			attemptSec = sec
		}
		if o.fail == pim.FaultNone && !o.invalid {
			ex.accept(o)
			survivors = append(survivors, o.dpu)
			continue
		}
		// Detection moment: a crash surfaces when the launch call
		// returns, a timeout at the deadline, a corruption when the
		// checksum (or the per-result validation) is verified at
		// collection.
		kind := o.fail.String()
		if o.fail == pim.FaultNone {
			kind = "validation"
		}
		at := ex.kernelSec + ex.waitSec + sec
		ex.faults = append(ex.faults, FaultEvent{
			Batch: batch, Attempt: attempt, DPU: o.dpu,
			Kind: kind, AtSec: at,
		})
		obs.Flight().Recordf("fault", cfg.TraceID,
			"batch %d attempt %d dpu %d: %s", batch, attempt, o.dpu, kind)
		for _, idx := range buckets[ai] {
			failed = append(failed, pending[idx])
		}
		if o.fail == pim.FaultCorrupt || o.invalid {
			// Transient bus (or payload) fault: the DPU stays in rotation.
			survivors = append(survivors, o.dpu)
		}
	}
	*alive = survivors
	return attemptSec, failed, nil
}

// verifyOutcome re-derives every in-band result of one DPU launch from
// its CIGAR (internal/verify): structural validity, sequence consumption
// and score reconstruction under the run's cost table. It returns the
// number of results checked and how many of them failed. Out-of-band
// results carry the score sentinel and no path, so there is nothing to
// re-derive; a result whose ID matches no staged pair is itself a failure.
func verifyOutcome(cfg Config, pending []Pair, bucket []int, results []kernel.PairResult) (checked, bad int) {
	byID := make(map[int]Pair, len(bucket))
	for _, idx := range bucket {
		byID[pending[idx].ID] = pending[idx]
	}
	for _, r := range results {
		if !r.InBand {
			continue
		}
		p, ok := byID[r.ID]
		if !ok {
			bad++
			obs.Logf("verify: result for pair %d, which was never staged on this DPU", r.ID)
			continue
		}
		checked++
		if err := verify.CheckPair(p.A, p.B, cfg.Kernel.Params, r.Score, string(r.Cigar)); err != nil {
			bad++
			obs.Logf("verify: pair %d: %v", r.ID, err)
		}
	}
	return checked, bad
}

// accept merges one healthy DPU launch into the batch outcome.
func (ex *batchExec) accept(o *dpuAttempt) {
	ex.loadedDPUs++
	if o.sec < ex.minDPUSec {
		ex.minDPUSec = o.sec
	}
	u := o.out.Stats.Utilization()
	ex.utilSum += u
	if u < ex.utilMin {
		ex.utilMin = u
	}
	ex.stats.Add(o.out.Stats)
	for _, r := range o.out.Results {
		ex.bytesOut += resultHeaderBytes + int64(len(r.Cigar))
		ex.cells += r.Cells
		ex.results = append(ex.results, Result{PairResult: r, DPU: o.dpu})
	}
}
