package host

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
)

// Satellite regression for the all-cache-hit edge case: a fully-warm
// session executes nothing on the fabric, so its merged report is
// zero-duration (no batches, no ranks, zero makespan). Every derived
// metric and exporter must stay finite and valid on that report —
// HostOverheadFraction must not divide by the zero makespan, the stage
// breakdown must not go NaN, the ASCII timeline must render its empty
// form, and both the Chrome trace and JSON exporters must emit valid
// output (the stock JSON encoder errors outright on NaN/Inf, so a bad
// value here used to surface as a 500 from the serving endpoints).
func TestSessionAllHitsZeroDurationReport(t *testing.T) {
	pairs := makePairs(63, 48, 140, 0.06)
	cfg := SessionConfig{Host: testConfig(2, true), MaxBatchPairs: 16, QueueLimit: len(pairs)}
	cfg.Host.Escalate = true // certify every pair so the warm run is all hits
	cfg.Cache = openHostCache(t)

	streamAll(t, cfg, pairs) // fill

	// Warm run through an explicit Session so Stages() is reachable.
	s, err := NewSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range pairs {
			if err := s.Submit(p); err != nil {
				t.Error(err)
				break
			}
		}
		s.Close()
	}()
	n := 0
	for range s.Results() {
		n++
	}
	if n != len(pairs) {
		t.Fatalf("warm session streamed %d results for %d pairs", n, len(pairs))
	}
	rep := s.Report()
	if rep.CacheHits != len(pairs) {
		t.Fatalf("warm session: %d hits for %d pairs", rep.CacheHits, len(pairs))
	}
	if rep.Batches != 0 || len(rep.Ranks) != 0 || rep.MakespanSec != 0 {
		t.Fatalf("warm session touched the fabric: %d batches, %d ranks, makespan %v",
			rep.Batches, len(rep.Ranks), rep.MakespanSec)
	}

	finite := func(name string, v float64) {
		t.Helper()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on a zero-duration report", name, v)
		}
	}
	f := rep.HostOverheadFraction()
	finite("HostOverheadFraction", f)
	if f != 0 {
		t.Errorf("HostOverheadFraction = %v, want 0 when nothing executed", f)
	}
	finite("UtilizationMin", rep.UtilizationMin)
	finite("UtilizationMean", rep.UtilizationMean)

	st := s.Stages()
	finite("Stages.QueueWaitSec", st.QueueWaitSec)
	finite("Stages.LingerSec", st.LingerSec)
	finite("Stages.KernelSec", st.KernelSec)
	finite("Stages.WaitRetrySec", st.WaitRetrySec)
	finite("Stages.EscalationSec", st.EscalationSec)
	finite("Stages.VerifySec", st.VerifySec)

	if tl := rep.Timeline(80); tl != "(empty timeline)\n" {
		t.Errorf("Timeline on zero-duration report = %q", tl)
	}

	for _, ev := range rep.ChromeTraceEvents() {
		finite("trace event Ts", ev.Ts)
		finite("trace event Dur", ev.Dur)
	}
	var trace bytes.Buffer
	if err := rep.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace on zero-duration report: %v", err)
	}
	var traceDoc any
	if err := json.Unmarshal(trace.Bytes(), &traceDoc); err != nil {
		t.Fatalf("Chrome trace of zero-duration report is not valid JSON: %v", err)
	}

	var rj bytes.Buffer
	if err := rep.WriteJSON(&rj); err != nil {
		t.Fatalf("WriteJSON on zero-duration report: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(rj.Bytes(), &doc); err != nil {
		t.Fatalf("report JSON is not valid JSON: %v", err)
	}
	if hof, ok := doc["host_overhead_fraction"].(float64); !ok || hof != 0 {
		t.Errorf("report JSON host_overhead_fraction = %v, want 0", doc["host_overhead_fraction"])
	}
}
