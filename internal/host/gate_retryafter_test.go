package host

import (
	"context"
	"sync"
	"testing"
	"time"
)

// setGateClock pins the gate to a deterministic clock and returns an
// advance function.
func setGateClock(g *Gate, start time.Time) func(time.Duration) {
	now := start
	g.mu.Lock()
	g.now = func() time.Time { return now }
	g.winStart = now
	g.mu.Unlock()
	return func(d time.Duration) { now = now.Add(d) }
}

// TestGateRetryAfterSubSecondClampColdStart: a config with a positive
// but sub-second MaxRetryAfter used to pass through applyConfig
// untouched, so a cold gate (no drain observed yet) answered the raw
// sub-second ceiling — which the HTTP layer truncates to a Retry-After
// of 0 seconds, telling clients to hammer a server that just refused
// them. The clamp interval is [1s, MaxRetryAfter]; it can only be
// honoured if MaxRetryAfter itself is floored at 1s.
func TestGateRetryAfterSubSecondClampColdStart(t *testing.T) {
	g := NewGate(GateConfig{Slots: 1, BulkQueue: 4, MaxRetryAfter: 250 * time.Millisecond})
	if got := g.Config().MaxRetryAfter; got < time.Second {
		t.Errorf("applyConfig kept sub-second MaxRetryAfter %v", got)
	}
	if got := g.RetryAfter(); got < time.Second {
		t.Errorf("cold-start RetryAfter = %v, want >= 1s", got)
	}
}

// TestGateRetryAfterSubSecondClampStalled: the stalled-server path
// (drain windows aged out, rate 0) answers the ceiling — which must
// also be at least 1s when the ceiling arrived sub-second via a hot
// reload (/admin/config).
func TestGateRetryAfterSubSecondClampStalled(t *testing.T) {
	g := NewGate(GateConfig{Slots: 1, BulkQueue: 4, MaxRetryAfter: 30 * time.Second})
	advance := setGateClock(g, time.Unix(1000, 0))
	ctx := context.Background()

	// Establish a drain rate, then hot-reload a bogus sub-second ceiling.
	for i := 0; i < 4; i++ {
		if err := g.Acquire(ctx, ClassBulk); err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	advance(gateDrainWindow)
	g.SetConfig(GateConfig{Slots: 1, BulkQueue: 4, MaxRetryAfter: 100 * time.Millisecond})

	// Stall: both drain windows age out, the rate is 0, the answer is the
	// ceiling — floored at 1s, never the raw 100ms.
	advance(10 * gateDrainWindow)
	if got := g.RetryAfter(); got < time.Second {
		t.Errorf("stalled RetryAfter = %v, want >= 1s", got)
	}
}

// TestGateRetryAfterFreshAfterSlotShrink: the drain-rate estimate is a
// property of the gate's capacity. After a hot reload shrinks Slots,
// the completions counted under the old, larger capacity used to keep
// feeding the estimate, so a refused request got a Retry-After computed
// from a throughput the server can no longer sustain. A capacity change
// must reset the drain windows: with no drain observed under the new
// sizing, the honest answer is the ceiling.
func TestGateRetryAfterFreshAfterSlotShrink(t *testing.T) {
	const maxRA = 60 * time.Second
	g := NewGate(GateConfig{Slots: 8, BulkQueue: 16, MaxRetryAfter: maxRA})
	advance := setGateClock(g, time.Unix(2000, 0))
	ctx := context.Background()

	// 40 completions in the first window → 40/s once it rolls to "previous".
	for i := 0; i < 40; i++ {
		if err := g.Acquire(ctx, ClassBulk); err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	advance(gateDrainWindow)

	// Hot reload: shrink to one slot (the /admin/config path).
	g.SetConfig(GateConfig{Slots: 1, BulkQueue: 16, MaxRetryAfter: maxRA})

	// Fill the single slot and park three waiters: depth 4. At the stale
	// 40/s rate the hint would be the 1s floor — wildly optimistic for a
	// gate that now drains one request at a time.
	if err := g.Acquire(ctx, ClassBulk); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx, ClassBulk); err == nil {
				g.Release()
			}
		}()
	}
	waitForQueued(t, g, 3)
	if got := g.RetryAfter(); got != maxRA {
		t.Errorf("post-shrink RetryAfter = %v, want the %v ceiling (stale pre-shrink drain rate leaked)", got, maxRA)
	}

	// Unchanged sizing must NOT reset the windows: drain observed under
	// the current capacity keeps informing the hint. One release cascades
	// through all three parked waiters (each re-acquires and releases).
	g.Release()
	wg.Wait()
	advance(gateDrainWindow)
	g.SetConfig(GateConfig{Slots: 1, BulkQueue: 16, MaxRetryAfter: maxRA})
	if err := g.Acquire(ctx, ClassBulk); err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if got := g.RetryAfter(); got == maxRA {
		t.Errorf("same-sizing SetConfig wiped the drain windows: RetryAfter = %v", got)
	}
}
