package host

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{
		"": ClassBulk, "bulk": ClassBulk, "interactive": ClassInteractive,
	} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("urgent"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if ClassInteractive.String() != "interactive" || ClassBulk.String() != "bulk" {
		t.Error("class names diverge from the wire form")
	}
}

func TestGateImmediateAndQueueFull(t *testing.T) {
	g := NewGate(GateConfig{Slots: 2, InteractiveQueue: 0, BulkQueue: 1})
	ctx := context.Background()
	if err := g.Acquire(ctx, ClassBulk); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, ClassInteractive); err != nil {
		t.Fatal(err)
	}
	// Gate full; interactive queue cap 0 refuses immediately.
	if err := g.Acquire(ctx, ClassInteractive); err != ErrGateQueueFull {
		t.Fatalf("interactive beyond slots = %v, want ErrGateQueueFull", err)
	}
	// Bulk queue has one seat: a waiter parks, the next is refused.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, ClassBulk) }()
	waitForQueued(t, g, 1)
	if err := g.Acquire(ctx, ClassBulk); err != ErrGateQueueFull {
		t.Fatalf("bulk beyond queue cap = %v, want ErrGateQueueFull", err)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("parked bulk acquire = %v after a release", err)
	}
	st := g.Stats()
	if st.Inflight != 2 || st.QueuedBulk != 0 {
		t.Fatalf("stats after handoff = %+v", st)
	}
	g.Release()
	g.Release()
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight %d after all releases", st.Inflight)
	}
}

func waitForQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := g.Stats()
		if st.QueuedInteractive+st.QueuedBulk >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %+v", st)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGatePriority pins the scheduling property the shed ladder depends
// on: when both classes are waiting, every freed slot goes to an
// interactive request first.
func TestGatePriority(t *testing.T) {
	g := NewGate(GateConfig{Slots: 1, InteractiveQueue: 4, BulkQueue: 4})
	ctx := context.Background()
	if err := g.Acquire(ctx, ClassBulk); err != nil {
		t.Fatal(err)
	}
	var order []Class
	var mu sync.Mutex
	var wg sync.WaitGroup
	park := func(cls Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx, cls); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, cls)
			mu.Unlock()
			g.Release()
		}()
	}
	// Park bulk first so FIFO would serve it first; priority must not.
	park(ClassBulk)
	waitForQueued(t, g, 1)
	park(ClassInteractive)
	park(ClassInteractive)
	waitForQueued(t, g, 3)
	g.Release() // slot cascades through all three waiters
	wg.Wait()
	if len(order) != 3 || order[0] != ClassInteractive || order[1] != ClassInteractive || order[2] != ClassBulk {
		t.Fatalf("grant order %v, want both interactive requests before bulk", order)
	}
}

func TestGateAcquireCancel(t *testing.T) {
	g := NewGate(GateConfig{Slots: 1, BulkQueue: 2})
	if err := g.Acquire(context.Background(), ClassBulk); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, ClassBulk) }()
	waitForQueued(t, g, 1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.QueuedBulk != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	g.Release()
	// The slot freed by the release is usable despite the cancellation.
	if err := g.Acquire(context.Background(), ClassInteractive); err != nil {
		t.Fatal(err)
	}
	g.Release()
}

// TestGateRetryAfterBounds pins the computed Retry-After: depth divided
// by the observed drain rate, never below 1s, never above the
// configured clamp, and the clamp ceiling when no drain has been seen.
func TestGateRetryAfterBounds(t *testing.T) {
	g := NewGate(GateConfig{Slots: 2, InteractiveQueue: 8, BulkQueue: 8, MaxRetryAfter: 30 * time.Second})
	now := time.Unix(1000, 0)
	g.mu.Lock()
	g.now = func() time.Time { return now }
	g.winStart = now
	g.mu.Unlock()

	// Cold gate, no drain observed: the honest answer is the ceiling.
	if got := g.RetryAfter(); got != 30*time.Second {
		t.Fatalf("cold RetryAfter = %v, want the 30s clamp", got)
	}

	// Simulate 4 completions/sec of drain: acquire+release 4 slots in the
	// previous window, then step into the next one.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := g.Acquire(ctx, ClassBulk); err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	now = now.Add(gateDrainWindow) // the 4-completion window is now "previous"

	// Empty gate: depth 0 → floor of 1s.
	if got := g.RetryAfter(); got != time.Second {
		t.Fatalf("idle RetryAfter = %v, want the 1s floor", got)
	}

	// Load the gate: 2 inflight + 6 parked = depth 8 at 4/sec → 2s.
	var wg sync.WaitGroup
	var parked atomic.Int32
	g.Acquire(ctx, ClassBulk)
	g.Acquire(ctx, ClassBulk)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parked.Add(1)
			if err := g.Acquire(ctx, ClassBulk); err == nil {
				g.Release()
			}
		}()
	}
	waitForQueued(t, g, 6)
	if got := g.RetryAfter(); got != 2*time.Second {
		t.Fatalf("RetryAfter at depth 8, drain 4/s = %v, want 2s", got)
	}

	// A stalled drain (windows age out) returns to the ceiling.
	now = now.Add(10 * gateDrainWindow)
	if got := g.RetryAfter(); got != 30*time.Second {
		t.Fatalf("stalled RetryAfter = %v, want the 30s clamp", got)
	}
	g.Release()
	g.Release()
	wg.Wait()
	_ = parked.Load()
}

func TestGateSetConfigGrowGrantsWaiters(t *testing.T) {
	g := NewGate(GateConfig{Slots: 1, InteractiveQueue: 2, BulkQueue: 2})
	ctx := context.Background()
	g.Acquire(ctx, ClassBulk)
	granted := make(chan Class, 2)
	for _, cls := range []Class{ClassBulk, ClassInteractive} {
		cls := cls
		go func() {
			if err := g.Acquire(ctx, cls); err == nil {
				granted <- cls
			}
		}()
	}
	waitForQueued(t, g, 2)
	g.SetConfig(GateConfig{Slots: 3, InteractiveQueue: 2, BulkQueue: 2})
	got := map[Class]bool{}
	for i := 0; i < 2; i++ {
		select {
		case c := <-granted:
			got[c] = true
		case <-time.After(2 * time.Second):
			t.Fatal("grown gate never granted the parked waiters")
		}
	}
	if !got[ClassBulk] || !got[ClassInteractive] {
		t.Fatalf("granted classes %v, want both", got)
	}
	if st := g.Stats(); st.Inflight != 3 {
		t.Fatalf("inflight %d after grow, want 3", st.Inflight)
	}
	// Shrink: releases converge inflight down without going negative.
	g.SetConfig(GateConfig{Slots: 1, InteractiveQueue: 2, BulkQueue: 2})
	g.Release()
	g.Release()
	g.Release()
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight %d after shrink and drain, want 0", st.Inflight)
	}
}

func TestGateStatsLoad(t *testing.T) {
	g := NewGate(GateConfig{Slots: 2, InteractiveQueue: 2, BulkQueue: 2})
	if l := g.Stats().Load; l != 0 {
		t.Fatalf("idle load %v, want 0", l)
	}
	ctx := context.Background()
	g.Acquire(ctx, ClassBulk)
	if l := g.Stats().Load; l != 0.5 {
		t.Fatalf("half-full load %v, want 0.5", l)
	}
	g.Acquire(ctx, ClassBulk)
	done := make(chan struct{})
	go func() { g.Acquire(ctx, ClassBulk); close(done) }()
	waitForQueued(t, g, 1)
	st := g.Stats()
	if st.Load != 1 {
		t.Fatalf("slot-saturated load %v, want 1 (stats %+v)", st.Load, st)
	}
	g.Release()
	<-done
	g.Release()
	g.Release()
}

func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(GateConfig{Slots: 4, InteractiveQueue: 64, BulkQueue: 64})
	var wg sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cls := ClassBulk
			if w%2 == 0 {
				cls = ClassInteractive
			}
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				err := g.Acquire(ctx, cls)
				cancel()
				if err == nil {
					served.Add(1)
					g.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.Inflight != 0 || st.QueuedInteractive != 0 || st.QueuedBulk != 0 {
		t.Fatalf("gate not drained after stress: %+v", st)
	}
	if served.Load() == 0 {
		t.Fatal("stress served nothing")
	}
}
