package host

import (
	"encoding/json"
	"io"
)

// reportJSON is the machine-readable run report: every Report field plus
// the derived host-overhead fraction, so downstream tooling (dashboards,
// regression checks) never re-implements the derivation.
type reportJSON struct {
	MakespanSec          float64 `json:"makespan_sec"`
	HostOverheadFraction float64 `json:"host_overhead_fraction"`
	TransferInSec        float64 `json:"transfer_in_sec"`
	TransferOutSec       float64 `json:"transfer_out_sec"`
	KernelSecSum         float64 `json:"kernel_sec_sum"`
	BytesIn              int64   `json:"bytes_in"`
	BytesOut             int64   `json:"bytes_out"`
	TotalCells           int64   `json:"total_cells"`
	TotalInstr           int64   `json:"total_instr"`
	Alignments           int     `json:"alignments"`
	Batches              int     `json:"batches"`
	UtilizationMin       float64 `json:"utilization_min"`
	UtilizationMean      float64 `json:"utilization_mean"`
	Retries              int     `json:"retries"`
	Redispatches         int     `json:"redispatches"`
	FaultsDetected       int     `json:"faults_detected"`
	AbandonedPairs       int     `json:"abandoned_pairs"`
	AbandonedIDs         []int   `json:"abandoned_ids,omitempty"`
	WaitSec              float64 `json:"wait_sec"`
	RetrySec             float64 `json:"retry_sec"`
	OutOfBandPairs       int     `json:"out_of_band_pairs"`
	ClippedPairs         int     `json:"clipped_pairs"`
	OverflowedPairs      int     `json:"overflowed_pairs"`
	Escalations          int     `json:"escalations"`
	EscalationRounds     int     `json:"escalation_rounds"`
	DegradedScoreOnly    int     `json:"degraded_score_only"`
	DegradedCPU          int     `json:"degraded_cpu"`
	VerifyChecked        int     `json:"verify_checked"`
	VerifyFailures       int     `json:"verify_failures"`
	CPUFallbackSec       float64 `json:"cpu_fallback_sec"`
	VerifySec            float64 `json:"verify_sec"`
	TraceID              string  `json:"trace_id,omitempty"`

	Provenance map[string]int    `json:"provenance,omitempty"`
	Escalation []EscalationRound `json:"escalation,omitempty"`
	Issues     []PairIssue       `json:"issues,omitempty"`
	Backends   []BackendStats    `json:"backends,omitempty"`
	Ranks      []RankStats       `json:"ranks"`
}

// WriteJSON writes the run report as indented JSON (the -report-json flag
// of cmd/pimalign).
func (r *Report) WriteJSON(w io.Writer) error {
	out := reportJSON{
		MakespanSec:          r.MakespanSec,
		HostOverheadFraction: r.HostOverheadFraction(),
		TransferInSec:        r.TransferInSec,
		TransferOutSec:       r.TransferOutSec,
		KernelSecSum:         r.KernelSecSum,
		BytesIn:              r.BytesIn,
		BytesOut:             r.BytesOut,
		TotalCells:           r.TotalCells,
		TotalInstr:           r.TotalInstr,
		Alignments:           r.Alignments,
		Batches:              r.Batches,
		UtilizationMin:       r.UtilizationMin,
		UtilizationMean:      r.UtilizationMean,
		Retries:              r.Retries,
		Redispatches:         r.Redispatches,
		FaultsDetected:       r.FaultsDetected,
		AbandonedPairs:       r.AbandonedPairs,
		AbandonedIDs:         r.AbandonedIDs,
		WaitSec:              r.WaitSec,
		RetrySec:             r.RetrySec,
		OutOfBandPairs:       r.OutOfBandPairs,
		ClippedPairs:         r.ClippedPairs,
		OverflowedPairs:      r.OverflowedPairs,
		Escalations:          r.Escalations,
		EscalationRounds:     r.EscalationRounds,
		DegradedScoreOnly:    r.DegradedScoreOnly,
		DegradedCPU:          r.DegradedCPU,
		VerifyChecked:        r.VerifyChecked,
		VerifyFailures:       r.VerifyFailures,
		CPUFallbackSec:       r.CPUFallbackSec,
		VerifySec:            r.VerifySec,
		TraceID:              r.TraceID,
		Provenance:           r.Provenance,
		Escalation:           r.Escalation,
		Issues:               r.Issues,
		Backends:             r.Backends,
		Ranks:                r.Ranks,
	}
	if out.Ranks == nil {
		out.Ranks = []RankStats{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
