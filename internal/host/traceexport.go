package host

import (
	"io"
	"sort"
	"strconv"

	"pimnw/internal/obs"
)

// Trace-lane layout for the modelled timeline: every rank is a Chrome
// trace process (pid = rank + 1; pid 0 is reserved for the host's
// wall-clock spans), with three thread lanes showing the §4.1 pipeline —
// the input transfer serialising on the DDR bus, the rank-concurrent
// kernel execution, and the barrier-gated result collection.
// A fourth lane appears only on ranks that ran recovery: fault-detection
// instants (ph "i") and the stretch of the kernel window spent retrying.
// Above the rank processes, a run with band failures or a degradation
// ladder gets one extra "integrity" process (pid = max rank pid + 1): a
// slice per escalation round laid over the makespan, plus a summary
// instant carrying the run's integrity counters.
const (
	tidTransferIn  = 0
	tidKernel      = 1
	tidTransferOut = 2
	tidRecovery    = 3
	tidIntegrity   = 0 // only thread of the integrity process
)

// ChromeTraceEvents converts the simulated timeline into Chrome
// trace-event JSON events (ph "X" complete slices, microsecond
// timestamps), one slice per pipeline stage per rank batch, plus ph "M"
// metadata naming the tracks. The result loads directly in Perfetto or
// chrome://tracing and supersedes the ASCII Timeline for deep runs: kernel
// slices carry the rank-summed pim.DPUStats breakdown (instructions, DMA
// bytes/cycles, barrier-wait cycles, pipeline utilization) as args.
func (r *Report) ChromeTraceEvents() []obs.TraceEvent {
	var events []obs.TraceEvent
	// When the run carries a request trace ID, stamp it into every slice
	// and instant so a Perfetto query can pull one request's lanes out of
	// a multi-request capture.
	stamp := func(args map[string]any) map[string]any {
		if r.TraceID != "" {
			args["trace_id"] = r.TraceID
		}
		return args
	}
	seen := map[int]bool{}
	recoveryLanes := map[int]bool{}
	for _, rs := range r.Ranks {
		pid := rs.Rank + 1
		if !seen[pid] {
			seen[pid] = true
			proc := "rank " + strconv.Itoa(rs.Rank) + " (modelled)"
			if rs.Backend != "" {
				proc = rs.Backend + " " + proc
			}
			events = append(events,
				obs.ProcessName(pid, proc),
				obs.ThreadName(pid, tidTransferIn, "bus in"),
				obs.ThreadName(pid, tidKernel, "kernel"),
				obs.ThreadName(pid, tidTransferOut, "bus out"))
		}
		kStart := rs.StartSec + rs.TransferInSec
		events = append(events,
			obs.TraceEvent{
				Name: "xfer_in", Ph: "X",
				Ts: rs.StartSec * 1e6, Dur: rs.TransferInSec * 1e6,
				Pid: pid, Tid: tidTransferIn,
				Args: stamp(map[string]any{"batch": rs.Batch, "bytes": rs.BytesIn}),
			},
			obs.TraceEvent{
				Name: "kernel", Ph: "X",
				Ts: kStart * 1e6, Dur: rs.KernelSec * 1e6,
				Pid: pid, Tid: tidKernel,
				Args: stamp(map[string]any{
					"batch":          rs.Batch,
					"loaded_dpus":    rs.LoadedDPUs,
					"fastest_dpu_s":  rs.FastestDPUSec,
					"instructions":   rs.DPUStats.Instr,
					"dma_bytes":      rs.DPUStats.DMABytes,
					"dma_cycles":     rs.DPUStats.DMACycles,
					"issue_cycles":   rs.DPUStats.IssueCycles,
					"barrier_cycles": rs.DPUStats.BarrierCycles,
					"utilization":    rs.DPUStats.Utilization(),
				}),
			},
			obs.TraceEvent{
				Name: "xfer_out", Ph: "X",
				Ts: (rs.EndSec - rs.TransferOutSec) * 1e6, Dur: rs.TransferOutSec * 1e6,
				Pid: pid, Tid: tidTransferOut,
				Args: stamp(map[string]any{"batch": rs.Batch, "bytes": rs.BytesOut}),
			})
		if rs.RetrySec > 0 || len(rs.Faults) > 0 {
			if !recoveryLanes[pid] {
				recoveryLanes[pid] = true
				events = append(events, obs.ThreadName(pid, tidRecovery, "recovery"))
			}
			if rs.RetrySec > 0 {
				// Recovery time is the tail of the rank's busy window
				// (compute + waits): every attempt past the first, plus
				// the backoff waits.
				events = append(events, obs.TraceEvent{
					Name: "recovery", Ph: "X",
					Ts:  (kStart + rs.KernelSec + rs.WaitSec - rs.RetrySec) * 1e6,
					Dur: rs.RetrySec * 1e6,
					Pid: pid, Tid: tidRecovery,
					Args: stamp(map[string]any{
						"batch": rs.Batch, "attempts": rs.Attempts,
						"wait_sec": rs.WaitSec,
					}),
				})
			}
			for _, f := range rs.Faults {
				events = append(events, obs.Instant("fault:"+f.Kind, f.AtSec*1e6,
					pid, tidRecovery, stamp(map[string]any{
						"batch": f.Batch, "attempt": f.Attempt, "dpu": f.DPU,
					})))
			}
		}
	}
	if len(r.Escalation) > 0 || r.OutOfBandPairs > 0 || r.ClippedPairs > 0 ||
		r.DegradedScoreOnly > 0 || r.DegradedCPU > 0 || r.VerifyFailures > 0 {
		pid := 1 // above every rank lane, even when no rank produced stats
		for p := range seen {
			if p >= pid {
				pid = p + 1
			}
		}
		events = append(events,
			obs.ProcessName(pid, "integrity (modelled)"),
			obs.ThreadName(pid, tidIntegrity, "escalation"))
		for _, er := range r.Escalation {
			events = append(events, obs.TraceEvent{
				Name: er.Provenance, Ph: "X",
				Ts: er.StartSec * 1e6, Dur: (er.EndSec - er.StartSec) * 1e6,
				Pid: pid, Tid: tidIntegrity,
				Args: stamp(map[string]any{
					"round": er.Round, "band": er.Band, "pairs": er.Pairs,
				}),
			})
		}
		events = append(events, obs.Instant("integrity", r.MakespanSec*1e6,
			pid, tidIntegrity, stamp(map[string]any{
				"out_of_band_pairs":   r.OutOfBandPairs,
				"clipped_pairs":       r.ClippedPairs,
				"escalations":         r.Escalations,
				"escalation_rounds":   r.EscalationRounds,
				"degraded_score_only": r.DegradedScoreOnly,
				"degraded_cpu":        r.DegradedCPU,
				"verify_checked":      r.VerifyChecked,
				"verify_failures":     r.VerifyFailures,
				"cpu_fallback_sec":    r.CPUFallbackSec,
			})))
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		return events[i].Ts < events[j].Ts
	})
	return events
}

// WriteChromeTrace writes the modelled timeline as a Chrome trace-event
// JSON file. Callers that also want the host's wall-clock spans in the
// same file append obs.Tracer.Events(0) to ChromeTraceEvents and use
// obs.WriteTraceEvents directly (pid 0 is left free for them).
func (r *Report) WriteChromeTrace(w io.Writer) error {
	return obs.WriteTraceEvents(w, r.ChromeTraceEvents())
}
