package host

import (
	"math/rand"
	"strings"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/seq"
)

func TestGroupedDispatchMatchesUngrouped(t *testing.T) {
	// The read-group parameter (§4.1.2) changes batching and therefore the
	// timeline, but never the alignment results.
	pairs := makePairs(21, 60, 120, 0.1)
	cfgA := testConfig(2, true)
	cfgB := testConfig(2, true)
	cfgB.GroupPairs = 16

	_, ra, err := AlignPairs(cfgA, pairs)
	if err != nil {
		t.Fatal(err)
	}
	repB, rb, err := AlignPairs(cfgB, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Batches < 4 {
		t.Errorf("grouping produced only %d batches", repB.Batches)
	}
	scores := func(rs []Result) map[int]int32 {
		m := map[int]int32{}
		for _, r := range rs {
			m[r.ID] = r.Score
		}
		return m
	}
	sa, sb := scores(ra), scores(rb)
	for id, s := range sa {
		if sb[id] != s {
			t.Fatalf("pair %d: grouped score %d != ungrouped %d", id, sb[id], s)
		}
	}
}

func TestSinglePairSingleRank(t *testing.T) {
	cfg := testConfig(1, true)
	pairs := makePairs(22, 1, 200, 0.05)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || rep.Batches != 1 {
		t.Fatalf("%d results, %d batches", len(results), rep.Batches)
	}
	want := core.AdaptiveBandAlign(pairs[0].A, pairs[0].B, cfg.Kernel.Params, cfg.Kernel.Band)
	if results[0].Score != want.Score {
		t.Errorf("score %d, want %d", results[0].Score, want.Score)
	}
}

func TestSingleTaskletPoolGeometry(t *testing.T) {
	// T=1 pools have no barriers at all; the kernel must still work.
	cfg := testConfig(1, true)
	cfg.Kernel.Geometry = kernel.Geometry{Pools: 4, TaskletsPerPool: 1}
	pairs := makePairs(23, 8, 150, 0.08)
	_, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.InBand {
			t.Errorf("pair %d fell out of band", i)
		}
	}
}

func TestReportInvariants(t *testing.T) {
	cfg := testConfig(3, false)
	pairs := makePairs(24, 96, 120, 0.1)
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UtilizationMin < 0 || rep.UtilizationMin > 1 {
		t.Errorf("UtilizationMin = %v", rep.UtilizationMin)
	}
	if rep.UtilizationMean < rep.UtilizationMin-1e-9 || rep.UtilizationMean > 1 {
		t.Errorf("UtilizationMean = %v < min %v", rep.UtilizationMean, rep.UtilizationMin)
	}
	if rep.TotalCells <= 0 || rep.TotalInstr <= 0 {
		t.Errorf("counters: cells=%d instr=%d", rep.TotalCells, rep.TotalInstr)
	}
	var endMax float64
	for _, rs := range rep.Ranks {
		if rs.EndSec > endMax {
			endMax = rs.EndSec
		}
	}
	if rep.MakespanSec != endMax {
		t.Errorf("makespan %v != last rank end %v", rep.MakespanSec, endMax)
	}
}

func TestBroadcastUsesAllRanks(t *testing.T) {
	cfg := testConfig(2, false)
	rng := rand.New(rand.NewSource(25))
	root := seq.Random(rng, 250)
	seqs := make([]seq.Seq, 40) // 780 comparisons over 128 DPUs
	for i := range seqs {
		seqs[i] = seq.UniformErrors(0.04).Apply(rng, root)
	}
	rep, results, err := AlignAllPairs(cfg, seqs)
	if err != nil {
		t.Fatal(err)
	}
	ranksSeen := map[int]bool{}
	for _, r := range results {
		ranksSeen[r.Rank] = true
	}
	if len(ranksSeen) != cfg.PIM.Ranks {
		t.Errorf("only %d of %d ranks used", len(ranksSeen), cfg.PIM.Ranks)
	}
	// All-against-all is symmetric work: the static split should keep the
	// slowest/fastest DPU gap small (paper: ~5%).
	for _, rs := range rep.Ranks {
		if rs.LoadedDPUs < 2 {
			continue
		}
		if gap := (rs.KernelSec - rs.FastestDPUSec) / rs.KernelSec; gap > 0.5 {
			t.Errorf("rank %d: %.0f%% spread between fastest and slowest DPU", rs.Rank, 100*gap)
		}
	}
}

func TestProjectTimeline(t *testing.T) {
	cfg := testConfig(2, false)
	batches := []SyntheticBatch{
		{BytesIn: 1 << 20, BytesOut: 1 << 16, KernelSec: 0.5, LoadedDPUs: 64},
		{BytesIn: 1 << 20, BytesOut: 1 << 16, KernelSec: 0.5, LoadedDPUs: 64},
		{BytesIn: 1 << 20, BytesOut: 1 << 16, KernelSec: 0.5, LoadedDPUs: 64},
		{BytesIn: 1 << 20, BytesOut: 1 << 16, KernelSec: 0.5, LoadedDPUs: 64},
	}
	rep := Project(cfg, batches)
	// 4 equal batches over 2 ranks: two waves of 0.5s each.
	if rep.MakespanSec < 1.0 || rep.MakespanSec > 1.1 {
		t.Errorf("makespan = %v, want ~1.0", rep.MakespanSec)
	}
	if rep.Batches != 4 {
		t.Errorf("batches = %d", rep.Batches)
	}
	// Twice the ranks should halve it.
	cfg4 := testConfig(4, false)
	rep4 := Project(cfg4, batches)
	if rep4.MakespanSec > rep.MakespanSec*0.6 {
		t.Errorf("4-rank projection %v not ~half of %v", rep4.MakespanSec, rep.MakespanSec)
	}
}

func TestBalancePolicies(t *testing.T) {
	// Heterogeneous workloads (PacBio-like spread): the LPT policy must
	// give the tightest rank completion (smallest slowest-DPU time),
	// which is the §4.1.2 claim about the rank barrier.
	rng := rand.New(rand.NewSource(26))
	pairs := make([]Pair, 256)
	for i := range pairs {
		n := 50 + rng.Intn(800) // 16x length spread
		a := seq.Random(rng, n)
		pairs[i] = Pair{ID: i, A: a, B: seq.UniformErrors(0.08).Apply(rng, a)}
	}
	makespan := map[BalancePolicy]float64{}
	for _, pol := range []BalancePolicy{BalanceLPT, BalanceRoundRobin, BalanceRandom} {
		cfg := testConfig(1, false)
		cfg.Balance = pol
		rep, results, err := AlignPairs(cfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(pairs) {
			t.Fatalf("policy %d: %d results", pol, len(results))
		}
		makespan[pol] = rep.MakespanSec
	}
	if makespan[BalanceLPT] > makespan[BalanceRoundRobin]*1.001 {
		t.Errorf("LPT (%.4fs) worse than round robin (%.4fs)",
			makespan[BalanceLPT], makespan[BalanceRoundRobin])
	}
	if makespan[BalanceLPT] > makespan[BalanceRandom]*1.001 {
		t.Errorf("LPT (%.4fs) worse than random (%.4fs)",
			makespan[BalanceLPT], makespan[BalanceRandom])
	}
}

func TestAssignPoliciesCoverAllItems(t *testing.T) {
	loads := make([]int64, 100)
	for i := range loads {
		loads[i] = int64(i + 1)
	}
	for _, pol := range []BalancePolicy{BalanceLPT, BalanceRoundRobin, BalanceRandom} {
		buckets := pol.assign(loads, 7, 1)
		seen := map[int]bool{}
		for _, b := range buckets {
			for _, idx := range b {
				if seen[idx] {
					t.Fatalf("policy %d: item %d assigned twice", pol, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(loads) {
			t.Fatalf("policy %d: %d of %d items assigned", pol, len(seen), len(loads))
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	cfg := testConfig(2, true)
	pairs := makePairs(27, 512, 80, 0.08)
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline(60)
	if !strings.Contains(tl, "rank  0") || !strings.Contains(tl, "rank  1") {
		t.Errorf("timeline missing rank rows:\n%s", tl)
	}
	if !strings.Contains(tl, "#") {
		t.Errorf("timeline shows no kernel execution:\n%s", tl)
	}
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 1+cfg.PIM.Ranks {
		t.Errorf("%d lines, want header + %d ranks", len(lines), cfg.PIM.Ranks)
	}
	if empty := (&Report{}).Timeline(40); !strings.Contains(empty, "empty") {
		t.Errorf("empty report timeline: %q", empty)
	}
}
