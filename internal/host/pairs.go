package host

import (
	"fmt"
	"math"
	"sync"

	"pimnw/internal/kernel"
	"pimnw/internal/obs"
	"pimnw/internal/pim"
)

// pairDescriptorBytes models the per-pair metadata transferred alongside
// the packed sequences (offsets, lengths, identifiers).
const pairDescriptorBytes = 24

// resultHeaderBytes models the fixed part of one result record.
const resultHeaderBytes = 16

// batchExec is the outcome of executing one rank-sized batch, recovery
// included.
type batchExec struct {
	results    []Result
	bytesIn    int64
	bytesOut   int64
	kernelSec  float64 // kernel compute: every attempt's slowest DPU
	waitSec    float64 // waiting between attempts: backoffs, fault detection
	minDPUSec  float64 // fastest accepted DPU launch
	stats      pim.DPUStats
	loadedDPUs int
	utilMin    float64
	utilSum    float64
	cells      int64
	// Recovery outcome.
	attempts     int
	retrySec     float64
	redispatches int
	abandoned    []int // pair IDs dropped after retries were exhausted
	faults       []FaultEvent
	// Result-validation outcome (Config.Verify): CIGAR re-derivation
	// checks performed, the failures among them, and the measured host
	// wall-clock the checks cost (kept out of the modelled timeline).
	verifyChecked  int
	verifyFailures int
	verifySec      float64
}

// AlignPairs runs the paper's main-loop workflow (§4.1) over independent
// pairs: group, balance, dispatch, execute, collect. It returns the
// simulated timeline report and every alignment result. With
// Config.Escalate set, pairs whose banded result is out-of-band or
// clipped are walked down the degradation ladder (escalate.go) until
// every pair has a trusted answer; either way each result carries a
// typed Status and a Provenance label.
func AlignPairs(cfg Config, pairs []Pair) (*Report, []Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(pairs) == 0 {
		return &Report{UtilizationMin: 1}, nil, nil
	}
	model, err := pim.NewFaultModel(cfg.Faults)
	if err != nil {
		return nil, nil, err
	}
	cfg.faults = model
	sp := obs.StartSpan("host.align_pairs")
	sp.SetAttrInt("pairs", int64(len(pairs)))
	if cfg.TraceID != "" {
		sp.SetAttr("trace_id", cfg.TraceID)
	}
	defer sp.End()

	rep, results, err := alignOnce(cfg, pairs, sp)
	if err != nil {
		return nil, nil, err
	}
	rep.publishMetrics()
	return rep, results, nil
}

// alignOnce is the validated core of AlignPairs — one complete workload
// through dispatch plus (when configured) the escalation ladder, with
// results fully annotated. The streaming Session calls it once per
// micro-batch; metrics publication is left to the caller so a session can
// publish once over its merged report. With Config.Backends set the
// workload is sharded across the fleet (fleet.go); otherwise it runs on
// the single-fabric passthrough backend, byte-identical to the pre-fleet
// pipeline.
func alignOnce(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	if len(cfg.Backends) > 0 {
		return alignFleet(cfg, pairs, sp)
	}
	return alignOnceOn(fabricBackend{}, cfg, pairs, sp)
}

// alignOnceOn runs the complete pipeline — dispatch round, then
// escalation or terminal annotation — on one backend. Every fleet shard
// goes through here, so each server walks the same ladder the single
// fabric would.
func alignOnceOn(be Backend, cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	rep, results, err := be.Round(cfg, pairs, sp)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Escalate {
		results, err = escalate(be, cfg, pairs, rep, results, sp)
		if err != nil {
			return nil, nil, err
		}
	} else {
		annotateResults(cfg.Kernel, rep, results)
	}
	return rep, results, nil
}

// annotateResults stamps Status/Provenance on a round's raw results and
// folds the band-failure and provenance tallies into the report — the
// terminal classification when no escalation ladder runs.
func annotateResults(k kernel.Config, rep *Report, results []Result) {
	prov := kernelProvenance(k)
	for i := range results {
		r := &results[i]
		r.Provenance = prov
		switch {
		case r.Overflowed:
			r.Status = StatusOverflowed
			rep.OverflowedPairs++
		case !r.InBand:
			r.Status = StatusOutOfBand
			rep.OutOfBandPairs++
		case r.Clipped:
			r.Status = StatusClipped
			rep.ClippedPairs++
		default:
			r.Status = StatusOK
		}
		rep.countProvenance(prov)
		if r.Status != StatusOK {
			rep.addIssue(PairIssue{ID: r.ID, Status: r.Status, Provenance: prov})
		}
	}
	for _, id := range rep.AbandonedIDs {
		rep.addIssue(PairIssue{ID: id, Status: StatusAbandoned})
	}
}

// kernelProvenance names the engine a kernel config stands for.
func kernelProvenance(k kernel.Config) string {
	if k.Traceback {
		return fmt.Sprintf("dpu-banded@%d", k.Band)
	}
	if k.Lanes(k.Band, k.Traceback) == 16 {
		return fmt.Sprintf("dpu-narrow@%d", k.Band)
	}
	return fmt.Sprintf("dpu-score-only@%d", k.Band)
}

// alignPairsRound executes one dispatch round — the body shared by the
// plain run and every rung of the escalation ladder. The caller owns
// validation, fault-model construction and metrics publication.
func alignPairsRound(cfg Config, pairs []Pair, sp *obs.Span) (*Report, []Result, error) {
	rep := &Report{UtilizationMin: 1, TraceID: cfg.TraceID}
	if len(pairs) == 0 {
		return rep, nil, nil
	}

	// Group and split into rank-sized batches, balancing pair workloads
	// across the batches of a group (the host spreads work over ranks).
	bsp := sp.Child("host.balance")
	var batches [][]Pair
	for _, group := range splitGroups(pairs, cfg.GroupPairs) {
		nBatches := cfg.PIM.Ranks
		if nBatches > len(group) {
			nBatches = len(group)
		}
		loads := make([]int64, len(group))
		for i, p := range group {
			loads[i] = p.Workload(cfg.Kernel.Band)
		}
		buckets, _ := lpt(loads, nBatches)
		for _, bucket := range buckets {
			if len(bucket) == 0 {
				continue
			}
			b := make([]Pair, len(bucket))
			for i, idx := range bucket {
				b[i] = group[idx]
			}
			batches = append(batches, b)
		}
	}
	bsp.SetAttrInt("batches", int64(len(batches)))
	bsp.End()

	execs := make([]batchExec, len(batches))
	if err := parallelFor(cfg.workers(), len(batches), func(bi int) error {
		// Batch spans are roots so each concurrent batch gets its own
		// trace lane; encode/kernel sub-spans nest inside.
		bs := obs.StartSpan("host.batch")
		bs.SetAttrInt("batch", int64(bi))
		if cfg.TraceID != "" {
			bs.SetAttr("trace_id", cfg.TraceID)
		}
		defer bs.End()
		ex, err := runBatch(cfg, batches[bi], bi, bs)
		if err != nil {
			return err
		}
		execs[bi] = ex
		return nil
	}); err != nil {
		return nil, nil, err
	}

	dsp := sp.Child("host.dispatch")
	scheduleTimeline(cfg, execs, rep)
	dsp.End()

	csp := sp.Child("host.collect")
	var results []Result
	for bi := range execs {
		rank := rep.Ranks[bi].Rank
		for i := range execs[bi].results {
			execs[bi].results[i].Rank = rank
		}
		results = append(results, execs[bi].results...)
		rep.TotalCells += execs[bi].cells
		rep.TotalInstr += execs[bi].stats.Instr
	}
	csp.End()
	rep.Alignments = len(results)
	rep.Batches = len(batches)
	return rep, results, nil
}

// publishMetrics feeds the run-level outcome into the default metrics
// registry; a no-op when metrics are disabled.
func (r *Report) publishMetrics() {
	reg := obs.Default()
	if reg == nil {
		return
	}
	reg.Counter("host_batches_total").Add(int64(r.Batches))
	reg.Counter("host_alignments_total").Add(int64(r.Alignments))
	reg.Counter("host_bytes_in_total").Add(r.BytesIn)
	reg.Counter("host_bytes_out_total").Add(r.BytesOut)
	reg.Gauge("host_makespan_seconds").Set(r.MakespanSec)
	reg.Gauge("host_overhead_fraction").Set(r.HostOverheadFraction())
	reg.Gauge("host_utilization_min").Set(r.UtilizationMin)
	reg.Gauge("host_utilization_mean").Set(r.UtilizationMean)
	reg.Counter("host_retries_total").Add(int64(r.Retries))
	reg.Counter("host_redispatches_total").Add(int64(r.Redispatches))
	reg.Counter("host_faults_detected_total").Add(int64(r.FaultsDetected))
	reg.Counter("host_abandoned_pairs_total").Add(int64(r.AbandonedPairs))
	reg.Gauge("host_wait_seconds").Set(r.WaitSec)
	reg.Gauge("host_retry_seconds").Set(r.RetrySec)
	reg.Counter("host_out_of_band_pairs_total").Add(int64(r.OutOfBandPairs))
	reg.Counter("host_clipped_pairs_total").Add(int64(r.ClippedPairs))
	reg.Counter("host_overflowed_pairs_total").Add(int64(r.OverflowedPairs))
	reg.Counter("host_escalations_total").Add(int64(r.Escalations))
	reg.Counter("host_escalation_rounds_total").Add(int64(r.EscalationRounds))
	reg.Counter("host_degraded_score_only_total").Add(int64(r.DegradedScoreOnly))
	reg.Counter("host_degraded_cpu_total").Add(int64(r.DegradedCPU))
	reg.Counter("host_verify_checked_total").Add(int64(r.VerifyChecked))
	reg.Counter("host_verify_failures_total").Add(int64(r.VerifyFailures))
	reg.Gauge("host_cpu_fallback_seconds").Set(r.CPUFallbackSec)
	reg.Counter("host_cache_hits_total").Add(int64(r.CacheHits))
	reg.Counter("host_cache_misses_total").Add(int64(r.CacheMisses))
	reg.Counter("host_deduped_pairs_total").Add(int64(r.DedupedPairs))
	for _, bs := range r.Backends {
		reg.Counter("host_backend_" + bs.Name + "_pairs_total").Add(int64(bs.Pairs))
		reg.Counter("host_backend_" + bs.Name + "_batches_total").Add(int64(bs.Batches))
		reg.Counter("host_backend_" + bs.Name + "_redispatched_total").Add(int64(bs.Redispatched))
		reg.Gauge("host_backend_" + bs.Name + "_makespan_seconds").Set(bs.MakespanSec)
		down := 0.0
		if bs.Down {
			down = 1
		}
		reg.Gauge("host_backend_" + bs.Name + "_down").Set(down)
	}
}

// scheduleTimeline lays executed batches onto the simulated clock: a FIFO
// of batches over the ranks, transfers serialised on the shared DDR bus,
// kernels running rank-concurrently, collection gated by the rank barrier.
func scheduleTimeline(cfg Config, execs []batchExec, rep *Report) {
	rankFree := make([]float64, cfg.PIM.Ranks)
	// Input and output transfers each serialise among themselves on the
	// DDR bus; the SDK's threaded transfer engine overlaps the two
	// directions well enough that modelling them as separate channels
	// matches the measured behaviour better than one global bus lock.
	busInFree, busOutFree := 0.0, 0.0
	launch := cfg.PIM.RankLaunchOverheadUS * 1e-6
	var makespan float64
	for bi := range execs {
		ex := &execs[bi]
		r := 0
		for i := 1; i < len(rankFree); i++ {
			if rankFree[i] < rankFree[r] {
				r = i
			}
		}
		start := math.Max(rankFree[r], busInFree)
		inDur := cfg.PIM.HostTransferSeconds(ex.bytesIn)
		busInFree = start + inDur
		kStart := start + inDur + launch
		// The rank is busy for compute plus the recovery waits; only the
		// compute share is reported as KernelSec.
		kEnd := kStart + ex.kernelSec + ex.waitSec
		outStart := math.Max(kEnd, busOutFree)
		outDur := cfg.PIM.HostTransferSeconds(ex.bytesOut)
		busOutFree = outStart + outDur
		rankFree[r] = outStart + outDur
		if rankFree[r] > makespan {
			makespan = rankFree[r]
		}

		// Rebase the batch-relative fault timestamps onto the run
		// timeline now that the batch has a slot on it.
		var faults []FaultEvent
		if len(ex.faults) > 0 {
			faults = make([]FaultEvent, len(ex.faults))
			for i, f := range ex.faults {
				f.AtSec += kStart
				faults[i] = f
			}
		}
		rep.Ranks = append(rep.Ranks, RankStats{
			Rank: r, Batch: bi, StartSec: start,
			TransferInSec: inDur, KernelSec: ex.kernelSec,
			FastestDPUSec: ex.minDPUSec, TransferOutSec: outDur,
			EndSec: rankFree[r], BytesIn: ex.bytesIn, BytesOut: ex.bytesOut,
			DPUStats: ex.stats, LoadedDPUs: ex.loadedDPUs,
			Attempts: ex.attempts, WaitSec: ex.waitSec, RetrySec: ex.retrySec,
			Faults: faults,
		})
		rep.TransferInSec += inDur
		rep.TransferOutSec += outDur
		rep.KernelSecSum += ex.kernelSec
		rep.WaitSec += ex.waitSec
		rep.BytesIn += ex.bytesIn
		rep.BytesOut += ex.bytesOut
		rep.Retries += ex.attempts - 1
		rep.Redispatches += ex.redispatches
		rep.FaultsDetected += len(ex.faults)
		rep.RetrySec += ex.retrySec
		rep.VerifyChecked += ex.verifyChecked
		rep.VerifyFailures += ex.verifyFailures
		rep.VerifySec += ex.verifySec
		if len(ex.abandoned) > 0 {
			rep.AbandonedPairs += len(ex.abandoned)
			rep.AbandonedIDs = append(rep.AbandonedIDs, ex.abandoned...)
		}
		if ex.loadedDPUs > 0 {
			if ex.utilMin < rep.UtilizationMin {
				rep.UtilizationMin = ex.utilMin
			}
			rep.UtilizationMean += ex.utilSum / float64(ex.loadedDPUs)
		}
	}
	if len(execs) > 0 {
		rep.UtilizationMean /= float64(len(execs))
	}
	rep.MakespanSec = makespan
}

// parallelFor runs fn(0..n-1) on up to workers goroutines, returning the
// first error. A panicking worker is recovered into an error instead of
// tearing the process down, so one poisoned batch cannot kill a serving
// host.
func parallelFor(workers, n int, fn func(int) error) error {
	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("host: worker panic on item %d: %v", i, r)
			}
		}()
		return fn(i)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := grab()
				if i < 0 {
					return
				}
				if err := run(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
