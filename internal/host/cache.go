package host

import (
	"pimnw/internal/cache"
	"pimnw/internal/kernel"
	"pimnw/internal/seq"
)

// The session side of the persistent result cache: key derivation from a
// run configuration, replay of stored values as Results, and the
// certification filter deciding what may be inserted.

// cacheKeyFor derives the content-addressed cache key for one pair under
// one run configuration. The key carries everything that can change the
// answer: the operand digests, the scoring model, the band policy
// (initial band plus the escalation ceiling when the ladder is armed),
// the *effective* lane width — resolved through kernel.Config.Lanes so
// an explicit -lanes=16 and an auto pick that lands on 16 share entries,
// while runs the auto rule would execute differently do not — and the
// traceback/escalation mode flags.
func cacheKeyFor(cfg *Config, p Pair) cache.Key {
	k := cache.Key{
		A:      seq.DigestSeq(p.A),
		B:      seq.DigestSeq(p.B),
		Params: cfg.Kernel.Params,
		Band:   int32(cfg.Kernel.Band),
		Lanes:  int32(cfg.Kernel.Lanes(cfg.Kernel.Band, cfg.Kernel.Traceback)),
	}
	if cfg.Kernel.Traceback {
		k.Flags |= cache.FlagTraceback
	}
	if cfg.Escalate {
		k.Flags |= cache.FlagEscalate
		k.MaxBand = int32(cfg.maxBand())
	}
	return k
}

// resultFromCache replays one stored value as a streamed Result, or nil
// when the record cannot be trusted (unknown or untrusted status — both
// treated as a miss; the cache never gets to relabel or launder an
// answer). Rank/DPU are -1: nothing executed. The stored Cigar slice is
// shared with the cache's hot tier and must be treated as read-only.
func resultFromCache(id int, v cache.Value) *Result {
	st, ok := ParsePairStatus(v.Status)
	if !ok || !st.Trusted() {
		return nil
	}
	return &Result{
		PairResult: kernel.PairResult{
			ID:     id,
			Score:  v.Score,
			InBand: v.InBand,
			Cigar:  v.Cigar,
		},
		Rank: -1, DPU: -1,
		Status:     st,
		Provenance: v.Provenance,
		Cached:     true,
	}
}

// cacheInsertable reports whether a computed result may be inserted:
// only certified-optimal, non-degraded answers qualify. StatusOK and
// StatusEscalated are exact banded answers for the requested contract;
// the degraded statuses (score-only fallback, CPU fallback) and every
// failure status are excluded — a degraded answer served from the cache
// would silently downgrade future well-resourced requests, and PR-8's
// shed-degraded plans additionally set SessionConfig.CacheNoStore so
// even their OK results stay out.
func cacheInsertable(st PairStatus) bool {
	return st == StatusOK || st == StatusEscalated
}

// valueFromResult builds the stored form of one computed result.
func valueFromResult(r Result) cache.Value {
	return cache.Value{
		Score:      r.Score,
		InBand:     r.InBand,
		Status:     r.Status.String(),
		Provenance: r.Provenance,
		Cigar:      r.Cigar,
	}
}
