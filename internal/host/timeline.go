package host

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Timeline renders the run as a text Gantt chart, one row per rank:
// '>' host→PiM transfer, '#' DPU kernel execution, '<' result collection,
// '.' idle. It makes the §4.1 pipeline visible — transfers serialising on
// the bus while other ranks compute, and the tail effect of the last
// batches.
func (r *Report) Timeline(width int) string {
	if width <= 10 {
		width = 72
	}
	if r.MakespanSec <= 0 || len(r.Ranks) == 0 {
		return "(empty timeline)\n"
	}
	ranks := map[int][]RankStats{}
	var ids []int
	for _, rs := range r.Ranks {
		if _, ok := ranks[rs.Rank]; !ok {
			ids = append(ids, rs.Rank)
		}
		ranks[rs.Rank] = append(ranks[rs.Rank], rs)
	}
	sort.Ints(ids)

	scale := float64(width) / r.MakespanSec
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %.4fs total, %d batches ('>' in, '#' kernel, '<' out)\n",
		r.MakespanSec, r.Batches)
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		// A column belongs to the phase active at its start instant, so
		// phases are painted half-open [from, to): a zero-duration phase
		// (score-only runs transfer no CIGARs out) paints nothing instead
		// of a phantom full column, and a later phase never overwrites
		// the final column of the one before it.
		paint := func(from, to float64, ch byte) {
			if to <= from {
				return
			}
			lo := int(math.Ceil(from * scale))
			hi := int(math.Ceil(to*scale)) - 1
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				row[c] = ch
			}
		}
		for _, rs := range ranks[id] {
			inEnd := rs.StartSec + rs.TransferInSec
			kEnd := inEnd + rs.KernelSec + rs.WaitSec
			paint(rs.StartSec, inEnd, '>')
			paint(inEnd, kEnd, '#')
			paint(kEnd, rs.EndSec, '<')
		}
		fmt.Fprintf(&sb, "rank %2d |%s|\n", id, row)
	}
	return sb.String()
}
