package host

import (
	"strings"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/seq"
)

// narrowTestConfig forces the 16-bit kernel under a scoring model whose
// drift saturates on long pairs but not short ones (Match=127: the sticky
// fires once a path's score passes ~2^15−narrowCenter). -lanes=auto would
// refuse this model, which is exactly why the test pins LaneWidth — the
// saturation path must be reachable on demand.
func narrowTestConfig(escalate bool) Config {
	cfg := testConfig(2, false)
	cfg.Kernel.Band = 16
	cfg.Kernel.Params = core.Params{Match: 127, Mismatch: -4, GapOpen: 4, GapExt: 2}
	cfg.Kernel.LaneWidth = 16
	cfg.Escalate = escalate
	return cfg
}

// narrowMixedPairs builds the mixed batch: identical pairs, short ones
// (score 60·127, in-lane) interleaved with long ones (score 300·127,
// guaranteed past the saturation boundary). Identity keeps every pair
// in-band and unclipped at band 16, so saturation is the only failure the
// batch can produce.
func narrowMixedPairs() (pairs []Pair, long map[int]bool) {
	long = make(map[int]bool)
	for i := 0; i < 12; i++ {
		n := 60
		if i%3 == 0 {
			n = 300
			long[i] = true
		}
		s := make(seq.Seq, n)
		for j := range s {
			s[j] = seq.Base((i + j) & 3)
		}
		pairs = append(pairs, Pair{ID: i, A: s, B: s})
	}
	return pairs, long
}

// TestNarrowOverflowEscalatesToWideKernel is the host-level acceptance
// test of the overflow rung: in a mixed batch on the narrow kernel, the
// saturated pairs — and only those — must escalate to the same-band
// full-width kernel and come back with bit-identical scores, per-pair
// provenance separating the two engines.
func TestNarrowOverflowEscalatesToWideKernel(t *testing.T) {
	pairs, long := narrowMixedPairs()
	cfg := narrowTestConfig(true)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("got %d results for %d pairs", len(results), len(pairs))
	}
	if rep.OverflowedPairs != len(long) {
		t.Fatalf("OverflowedPairs = %d, want %d", rep.OverflowedPairs, len(long))
	}
	for i, r := range results {
		p := pairs[i]
		// Identity pairs at band 16: the wide banded kernel's answer equals
		// the exact full-matrix score, so bit-identical is checkable directly.
		want := core.AdaptiveBandScoreWide(p.A, p.B, cfg.Kernel.Params, cfg.Kernel.Band)
		if r.Score != want.Score {
			t.Errorf("pair %d (%s): score %d != wide kernel %d", r.ID, r.Provenance, r.Score, want.Score)
		}
		if long[r.ID] {
			if r.Status != StatusEscalated {
				t.Errorf("pair %d: status %v, want %v", r.ID, r.Status, StatusEscalated)
			}
			if r.Provenance != "dpu-score-only@16" {
				t.Errorf("pair %d: provenance %q, want the same-band wide rung", r.ID, r.Provenance)
			}
		} else {
			if r.Status != StatusOK {
				t.Errorf("pair %d: status %v, want %v", r.ID, r.Status, StatusOK)
			}
			if r.Provenance != "dpu-narrow@16" {
				t.Errorf("pair %d: provenance %q, want dpu-narrow@16", r.ID, r.Provenance)
			}
		}
	}
	// Saturation is a precision failure at an adequate band: nothing may
	// widen past the base band or fall through to the CPU.
	if rep.DegradedCPU != 0 || rep.DegradedScoreOnly != 0 {
		t.Errorf("overflow pairs left the same-band rung: %+v", rep)
	}
	if rep.Escalations != len(long) || rep.EscalationRounds != 1 {
		t.Errorf("escalations=%d rounds=%d, want %d pairs in 1 round", rep.Escalations, rep.EscalationRounds, len(long))
	}
	if n := rep.Provenance["dpu-narrow@16"]; n != len(pairs)-len(long) {
		t.Errorf("narrow provenance count %d, want %d (%v)", n, len(pairs)-len(long), rep.Provenance)
	}
	if n := rep.Provenance["dpu-score-only@16"]; n != len(long) {
		t.Errorf("wide-rung provenance count %d, want %d (%v)", n, len(long), rep.Provenance)
	}
}

// TestNarrowOverflowStatusWithoutEscalation: with the ladder off, a
// saturated pair surfaces as the typed StatusOverflowed — untrusted, NegInf
// score, listed as an issue — rather than being silently mis-scored.
func TestNarrowOverflowStatusWithoutEscalation(t *testing.T) {
	pairs, long := narrowMixedPairs()
	cfg := narrowTestConfig(false)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var overflowed int
	for _, r := range results {
		if r.Provenance != "dpu-narrow@16" {
			t.Errorf("pair %d: provenance %q, want dpu-narrow@16", r.ID, r.Provenance)
		}
		if long[r.ID] {
			overflowed++
			if r.Status != StatusOverflowed {
				t.Errorf("pair %d: status %v, want %v", r.ID, r.Status, StatusOverflowed)
			}
			if r.Status.Trusted() {
				t.Errorf("pair %d: StatusOverflowed must not be trusted", r.ID)
			}
			if r.Score != core.NegInf {
				t.Errorf("pair %d: overflowed result leaked score %d", r.ID, r.Score)
			}
		} else if r.Status != StatusOK {
			t.Errorf("pair %d: status %v, want OK", r.ID, r.Status)
		}
	}
	if overflowed != len(long) || rep.OverflowedPairs != len(long) {
		t.Errorf("overflowed: statuses=%d report=%d, want %d", overflowed, rep.OverflowedPairs, len(long))
	}
	if len(rep.Issues) != len(long) {
		t.Errorf("%d issues listed, want %d", len(rep.Issues), len(long))
	}
	if !strings.Contains(StatusOverflowed.String(), "overflow") {
		t.Errorf("StatusOverflowed renders as %q", StatusOverflowed)
	}
}

// TestNarrowLadderHasOverflowRung: a narrow base kernel prepends the
// same-band full-width rung to the ladder; a wide base kernel must not.
func TestNarrowLadderHasOverflowRung(t *testing.T) {
	cfg := narrowTestConfig(true)
	rungs := buildLadder(cfg)
	if len(rungs) == 0 || !rungs[0].overflowOnly || rungs[0].band != cfg.Kernel.Band {
		t.Fatalf("narrow ladder %+v lacks the same-band overflow rung", rungs)
	}
	for _, rg := range rungs[1:] {
		if rg.overflowOnly {
			t.Fatalf("ladder %+v has a widened overflow-only rung", rungs)
		}
	}
	cfg.Kernel.LaneWidth = 64
	for _, rg := range buildLadder(cfg) {
		if rg.overflowOnly {
			t.Fatalf("wide base kernel grew an overflow rung: %+v", rg)
		}
	}
}

// TestChecksumCoversOverflowFlag: the result checksum the recovery layer
// compares across retries must distinguish an overflowed result from a
// clean one, or a fault flipping the flag would go undetected.
func TestChecksumCoversOverflowFlag(t *testing.T) {
	a := []kernel.PairResult{{ID: 1, Score: 10, InBand: true}}
	b := []kernel.PairResult{{ID: 1, Score: 10, InBand: true, Overflowed: true}}
	if kernel.ChecksumResults(a) == kernel.ChecksumResults(b) {
		t.Fatal("checksum ignores the Overflowed flag")
	}
}
