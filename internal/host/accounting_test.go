package host

import (
	"testing"

	"pimnw/internal/pim"
)

// TestKernelSecFaultInvariant is the regression test for the recovery
// accounting bug: backoff waits and fail-fast fault detection used to be
// charged to kernelSec, so reported kernel time grew with the fault rate.
// Rank-drop faults fail at launch without running any kernel, and the
// redispatch covers the identical pair set on the identical DPU pool, so
// per-batch KernelSec must be bit-identical between the fault-free and
// the faulty run of the same deterministic workload — only WaitSec (and
// the makespan) may grow.
func TestKernelSecFaultInvariant(t *testing.T) {
	pairs := makePairs(31, 80, 150, 0.08)

	clean := testConfig(2, true)
	cleanRep, _, err := AlignPairs(clean, pairs)
	if err != nil {
		t.Fatal(err)
	}

	faulty := testConfig(2, true)
	faulty.Faults = pim.FaultConfig{RankDropRate: 0.4, Seed: 5}
	faulty.MaxRetries = 12
	faulty.RetryBackoffSec = 1e-3
	faultyRep, _, err := AlignPairs(faulty, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if faultyRep.FaultsDetected == 0 {
		t.Fatal("no rank drops at 40% rate — the test is not exercising recovery")
	}
	if faultyRep.AbandonedPairs != 0 {
		t.Fatalf("abandoned %d pairs; batch identity is lost", faultyRep.AbandonedPairs)
	}

	perBatch := func(rep *Report) map[int]RankStats {
		m := make(map[int]RankStats, len(rep.Ranks))
		for _, rs := range rep.Ranks {
			m[rs.Batch] = rs
		}
		return m
	}
	want, got := perBatch(cleanRep), perBatch(faultyRep)
	if len(want) != len(got) {
		t.Fatalf("%d batches clean, %d faulty", len(want), len(got))
	}
	for b, w := range want {
		g, ok := got[b]
		if !ok {
			t.Fatalf("batch %d missing from faulty run", b)
		}
		if g.KernelSec != w.KernelSec {
			t.Errorf("batch %d: KernelSec %.9f under faults, %.9f fault-free — kernel time is not fault-invariant",
				b, g.KernelSec, w.KernelSec)
		}
		if g.Attempts > 1 && g.WaitSec <= 0 {
			t.Errorf("batch %d: %d attempts but WaitSec %.9f — waits are unaccounted",
				b, g.Attempts, g.WaitSec)
		}
	}
	if faultyRep.KernelSecSum != cleanRep.KernelSecSum {
		t.Errorf("KernelSecSum %.9f under faults, %.9f fault-free",
			faultyRep.KernelSecSum, cleanRep.KernelSecSum)
	}
	if faultyRep.WaitSec <= 0 {
		t.Error("recovery ran but Report.WaitSec is zero")
	}
	if faultyRep.MakespanSec <= cleanRep.MakespanSec {
		t.Errorf("faulted makespan %.9f not above clean %.9f — waits no longer stretch the busy window",
			faultyRep.MakespanSec, cleanRep.MakespanSec)
	}
}

// TestHostOverheadFractionBounds pins the timeline-union derivation on
// hand-built reports, including the retry-heavy shape that used to drive
// the old per-rank average negative (where the clamp silently hid it).
func TestHostOverheadFractionBounds(t *testing.T) {
	cases := []struct {
		name string
		rep  Report
		want float64
	}{
		{
			name: "empty",
			rep:  Report{},
			want: 0,
		},
		{
			name: "single batch, waits excluded from kernel coverage",
			rep: Report{
				MakespanSec: 1,
				Ranks: []RankStats{{
					Rank: 0, StartSec: 0, TransferInSec: 0.1,
					KernelSec: 0.3, WaitSec: 0.4, TransferOutSec: 0.2, EndSec: 1,
				}},
			},
			want: 0.7,
		},
		{
			name: "overlapping ranks share coverage via the union",
			rep: Report{
				MakespanSec: 1,
				Ranks: []RankStats{
					{Rank: 0, StartSec: 0, TransferInSec: 0.1, KernelSec: 0.6, EndSec: 0.8},
					{Rank: 1, StartSec: 0.3, TransferInSec: 0.1, KernelSec: 0.6, EndSec: 1},
				},
			},
			// Union [0.1,0.7] ∪ [0.4,1.0] = 0.9 covered. The old per-rank
			// average 1.2/2·... summed to 1.2s of kernel over a 1s
			// makespan and clamped the negative result to 0.
			want: 0.1,
		},
		{
			name: "kernel span past the makespan is capped, not negative",
			rep: Report{
				MakespanSec: 1,
				Ranks: []RankStats{
					{Rank: 0, StartSec: 0, TransferInSec: 0, KernelSec: 5, EndSec: 1},
				},
			},
			want: 0,
		},
	}
	for _, tc := range cases {
		got := tc.rep.HostOverheadFraction()
		if got < 0 || got > 1 {
			t.Errorf("%s: fraction %.6f outside [0,1]", tc.name, got)
		}
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: fraction %.6f, want %.6f", tc.name, got, tc.want)
		}
	}
}

// TestHostOverheadFractionRetryHeavy runs a real retry-heavy workload and
// requires the reported fraction to be a meaningful in-range value: under
// the old accounting, backoff inflation either pushed it to the 0 clamp
// or polluted it with waiting time.
func TestHostOverheadFractionRetryHeavy(t *testing.T) {
	cfg := testConfig(2, true)
	cfg.Faults = pim.FaultConfig{Rate: 0.3, RankDropRate: 0.2, Seed: 99}
	cfg.MaxRetries = 10
	cfg.RetryBackoffSec = 1e-3
	rep, _, err := AlignPairs(cfg, makePairs(32, 60, 140, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("workload not retry-heavy; tune the fault config")
	}
	f := rep.HostOverheadFraction()
	if f < 0 || f > 1 {
		t.Fatalf("HostOverheadFraction %.6f outside [0,1]", f)
	}
	// The backoff waits dominate this run; with waiting correctly outside
	// the kernel coverage the overhead must be visibly non-zero.
	if f == 0 {
		t.Error("retry-heavy run reports zero host overhead — waits are being counted as kernel time")
	}
}
