package host

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/kernel"
	"pimnw/internal/pim"
	"pimnw/internal/seq"
)

// indelPairs builds the adversarial set for the escalation tests:
// indel-heavy mutations with occasional large gaps, so a narrow initial
// band reliably clips or misses the optimal path (the same generator the
// core clip-detection tests use).
func indelPairs(seed int64, n, length int) []Pair {
	rng := rand.New(rand.NewSource(seed))
	mut := seq.Mutator{
		SubRate: 0.02, InsRate: 0.03, DelRate: 0.03, IndelExt: 0.6,
		BigGapRate: 0.004, BigGapMin: 16, BigGapMax: 48,
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		a := seq.Random(rng, length)
		pairs[i] = Pair{ID: i, A: a, B: mut.Apply(rng, a)}
	}
	return pairs
}

// escalationConfig is the common ladder setup: a deliberately narrow
// initial band so the adversarial set escalates.
func escalationConfig(traceback bool) Config {
	cfg := testConfig(2, traceback)
	cfg.Kernel.Band = 16
	cfg.Escalate = true
	cfg.Verify = true
	return cfg
}

// checkConverged asserts the ladder's contract: every pair has a trusted
// status, a provenance label, and exactly the full-matrix score.
func checkConverged(t *testing.T, pairs []Pair, results []Result) {
	t.Helper()
	if len(results) != len(pairs) {
		t.Fatalf("got %d results for %d pairs", len(results), len(pairs))
	}
	p := core.DefaultParams()
	for i, r := range results {
		if r.ID != pairs[i].ID {
			t.Fatalf("result %d has ID %d, want input order (%d)", i, r.ID, pairs[i].ID)
		}
		if !r.Status.Trusted() {
			t.Errorf("pair %d: untrusted status %v", r.ID, r.Status)
		}
		if r.Provenance == "" {
			t.Errorf("pair %d: no provenance", r.ID)
		}
		exact := core.GotohScore(pairs[i].A, pairs[i].B, p)
		if r.Score != exact.Score {
			t.Errorf("pair %d (%s): score %d != exact %d", r.ID, r.Provenance, r.Score, exact.Score)
		}
	}
}

// TestEscalationConvergesToExact is the acceptance test of the
// degradation ladder: on an indel-heavy set where band 16 clips, every
// final score must equal the full-matrix answer, with provenance saying
// which rung produced it and zero validation failures.
func TestEscalationConvergesToExact(t *testing.T) {
	pairs := indelPairs(31, 30, 300)
	cfg := escalationConfig(true)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	checkConverged(t, pairs, results)

	if rep.ClippedPairs+rep.OutOfBandPairs == 0 {
		t.Fatal("adversarial set produced no band failures; the test exercises nothing")
	}
	if rep.Escalations == 0 || rep.EscalationRounds == 0 {
		t.Errorf("no escalations recorded (escalations=%d rounds=%d)", rep.Escalations, rep.EscalationRounds)
	}
	if rep.EscalationRounds != len(rep.Escalation) {
		t.Errorf("EscalationRounds %d != %d recorded rounds", rep.EscalationRounds, len(rep.Escalation))
	}
	if rep.VerifyChecked == 0 {
		t.Error("Verify was on but nothing was checked")
	}
	if rep.VerifyFailures != 0 {
		t.Errorf("%d verification failures on a healthy fabric", rep.VerifyFailures)
	}
	var provTotal int
	for _, n := range rep.Provenance {
		provTotal += n
	}
	if provTotal != len(pairs) {
		t.Errorf("provenance map covers %d of %d pairs: %v", provTotal, len(pairs), rep.Provenance)
	}
	if n := rep.Provenance[kernelProvenance(cfg.Kernel)]; n == len(pairs) {
		t.Error("every pair resolved on the first rung; the ladder never ran")
	}
	// Pairs answered by the CPU rung must carry the exact CIGAR too.
	for i, r := range results {
		if r.Status == StatusDegradedCPU {
			want := core.GotohAlign(pairs[i].A, pairs[i].B, core.DefaultParams()).Cigar.String()
			if string(r.Cigar) != want {
				t.Errorf("pair %d: cpu-exact CIGAR %q != full-matrix %q", r.ID, r.Cigar, want)
			}
		}
	}
	// The rounds occupy the simulated timeline after the first round.
	var prevEnd float64
	for _, er := range rep.Escalation {
		if er.StartSec < prevEnd || er.EndSec < er.StartSec {
			t.Errorf("round %d spans [%g,%g], before previous end %g", er.Round, er.StartSec, er.EndSec, prevEnd)
		}
		prevEnd = er.EndSec
	}
	if rep.MakespanSec < prevEnd {
		t.Errorf("makespan %g ends before the last escalation round %g", rep.MakespanSec, prevEnd)
	}
}

// TestEscalationUnderFaults composes the ladder with the recovery layer:
// at a 5 % injected fault rate the final answers must still converge to
// the full-matrix scores, and nothing may be abandoned — pairs the
// retries give up on are rescued by the CPU rung.
func TestEscalationUnderFaults(t *testing.T) {
	pairs := indelPairs(32, 30, 300)
	cfg := escalationConfig(true)
	cfg.Faults = pim.FaultConfig{Rate: 0.05, Seed: 7}
	cfg.MaxRetries = 8
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	checkConverged(t, pairs, results)
	if rep.AbandonedPairs != 0 || len(rep.AbandonedIDs) != 0 {
		t.Errorf("escalation left %d pairs abandoned: %v", rep.AbandonedPairs, rep.AbandonedIDs)
	}
	for _, r := range results {
		if r.Status == StatusAbandoned {
			t.Errorf("pair %d abandoned despite the ladder", r.ID)
		}
	}
}

// TestEscalationScoreOnlyMode runs the ladder under a score-only kernel:
// wider score-only rungs count as escalations (not degradations), and the
// scores still converge.
func TestEscalationScoreOnlyMode(t *testing.T) {
	pairs := indelPairs(33, 20, 300)
	cfg := escalationConfig(false)
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	checkConverged(t, pairs, results)
	if rep.DegradedScoreOnly != 0 {
		t.Errorf("score-only run recorded %d score-only degradations; wider score-only rungs are escalations here", rep.DegradedScoreOnly)
	}
	for _, r := range results {
		if r.Status == StatusEscalated && !strings.HasPrefix(r.Provenance, "dpu-score-only@") {
			t.Errorf("pair %d: escalated provenance %q, want a score-only rung", r.ID, r.Provenance)
		}
	}
}

// TestStatusesWithoutEscalation: with the ladder off, band failures stay
// in the output as typed statuses (not just a score sentinel) and are
// tallied and listed as issues.
func TestStatusesWithoutEscalation(t *testing.T) {
	pairs := indelPairs(34, 30, 300)
	cfg := escalationConfig(true)
	cfg.Escalate = false
	cfg.Verify = false
	rep, results, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var clipped, oob int
	prov := kernelProvenance(cfg.Kernel)
	for _, r := range results {
		switch r.Status {
		case StatusClipped:
			clipped++
		case StatusOutOfBand:
			oob++
		case StatusOK:
		default:
			t.Errorf("pair %d: unexpected status %v without escalation", r.ID, r.Status)
		}
		if r.Provenance != prov {
			t.Errorf("pair %d: provenance %q, want %q", r.ID, r.Provenance, prov)
		}
	}
	if clipped+oob == 0 {
		t.Fatal("adversarial set produced no flagged pairs")
	}
	if rep.ClippedPairs != clipped || rep.OutOfBandPairs != oob {
		t.Errorf("report counts (clipped=%d oob=%d) != result statuses (%d, %d)",
			rep.ClippedPairs, rep.OutOfBandPairs, clipped, oob)
	}
	if len(rep.Issues) != clipped+oob {
		t.Errorf("%d issues listed, want %d", len(rep.Issues), clipped+oob)
	}
	if rep.Escalations != 0 || rep.DegradedCPU != 0 {
		t.Errorf("ladder counters moved with escalation off: %+v", rep)
	}
}

// TestEscalationExportsIntegrity: the JSON report and the Chrome trace
// both carry the ladder — counters, rounds, and the integrity lane.
func TestEscalationExportsIntegrity(t *testing.T) {
	pairs := indelPairs(35, 16, 300)
	cfg := escalationConfig(true)
	rep, _, err := AlignPairs(cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"escalation_rounds"`, `"clipped_pairs"`, `"verify_checked"`, `"provenance"`, `"cpu_fallback_sec"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON report lacks %s", want)
		}
	}

	events := rep.ChromeTraceEvents()
	var lane, rounds, instant bool
	maxRankPid := 0
	for _, rs := range rep.Ranks {
		if rs.Rank+1 > maxRankPid {
			maxRankPid = rs.Rank + 1
		}
	}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.Pid > maxRankPid {
			lane = true
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "dpu-") && ev.Pid > maxRankPid {
			rounds = true
		}
		if ev.Ph == "i" && ev.Name == "integrity" {
			instant = true
		}
	}
	if !lane || !rounds || !instant {
		t.Errorf("integrity lane incomplete: lane=%v rounds=%v instant=%v", lane, rounds, instant)
	}
}

// TestBuildLadder pins the rung enumeration: doubled bands with pools
// traded away, monotone widths, capped at MaxBand, and — when the WRAM
// budget stops traceback kernels short of the cap — one strictly-wider
// score-only rung at the end.
func TestBuildLadder(t *testing.T) {
	cfg := testConfig(1, true)
	cfg.Kernel.Band = 64
	cfg.Escalate = true
	rungs := buildLadder(cfg)
	if len(rungs) == 0 {
		t.Fatal("no rungs below band 64")
	}
	prev := cfg.Kernel.Band
	for i, rg := range rungs {
		if rg.band <= prev {
			t.Errorf("rung %d band %d not above previous %d", i, rg.band, prev)
		}
		prev = rg.band
		if rg.band > DefaultMaxBand {
			t.Errorf("rung %d band %d above the cap %d", i, rg.band, DefaultMaxBand)
		}
		if !rg.traceback && i != len(rungs)-1 {
			t.Errorf("score-only rung %d is not last", i)
		}
	}
	// The 4-tasklet pools leave enough WRAM for traceback kernels all the
	// way to the cap, so the deepest rung keeps the requested mode.
	if last := rungs[len(rungs)-1]; last.band != DefaultMaxBand || !last.traceback {
		t.Errorf("deepest rung %+v, want traceback at the %d cap", last, DefaultMaxBand)
	}

	// Fatten the tasklet stacks (one 24-tasklet pool) so a 2048-band
	// traceback working set no longer fits: the ladder must top out with
	// the score-only kernel instead.
	tall := cfg
	tall.Kernel.Geometry = kernel.Geometry{Pools: 1, TaskletsPerPool: 24}
	rungs = buildLadder(tall)
	if len(rungs) == 0 {
		t.Fatal("no rungs for the tall geometry")
	}
	last := rungs[len(rungs)-1]
	if last.traceback {
		t.Errorf("deepest tall-geometry rung %+v is traceback; want the score-only fallback", last)
	}
	if len(rungs) > 1 && last.band <= rungs[len(rungs)-2].band {
		t.Errorf("score-only rung band %d not above the deepest traceback rung %d",
			last.band, rungs[len(rungs)-2].band)
	}

	// A cap at the base band leaves no DPU rungs: straight to the CPU.
	cfg.MaxBand = cfg.Kernel.Band
	if got := buildLadder(cfg); len(got) != 0 {
		t.Errorf("MaxBand == Band built %d rungs", len(got))
	}
}

// TestBroadcastRejectsIntegrityOptions mirrors the fault-config
// rejection: the all-against-all broadcast path supports neither the
// ladder nor result validation.
func TestBroadcastRejectsIntegrityOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seqs := []seq.Seq{seq.Random(rng, 80), seq.Random(rng, 80), seq.Random(rng, 80)}
	cfg := testConfig(1, false)
	cfg.Escalate = true
	if _, _, err := AlignAllPairs(cfg, seqs); err == nil {
		t.Error("Escalate accepted in broadcast mode")
	}
	cfg = testConfig(1, false)
	cfg.Verify = true
	if _, _, err := AlignAllPairs(cfg, seqs); err == nil {
		t.Error("Verify accepted in broadcast mode")
	}
}
