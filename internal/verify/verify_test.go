package verify

import (
	"math/rand"
	"strings"
	"testing"

	"pimnw/internal/core"
	"pimnw/internal/seq"
)

func TestCheckPairAcceptsAllAligners(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(5))
	mut := seq.UniformErrors(0.08)
	for i := 0; i < 25; i++ {
		a := seq.Random(rng, 150+rng.Intn(200))
		b := mut.Apply(rng, a)
		for name, res := range map[string]core.Result{
			"full":     core.GotohAlign(a, b, p),
			"static":   core.StaticBandAlign(a, b, p, 64),
			"adaptive": core.AdaptiveBandAlign(a, b, p, 64),
		} {
			if !res.InBand {
				continue
			}
			if err := CheckResult(a, b, p, res); err != nil {
				t.Fatalf("pair %d: %s result failed verification: %v", i, name, err)
			}
		}
	}
}

func TestCheckPairRejectsCorruption(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(9))
	a := seq.Random(rng, 300)
	b := seq.UniformErrors(0.05).Apply(rng, a)
	res := core.GotohAlign(a, b, p)
	text := res.Cigar.String()

	cases := map[string]struct {
		score int32
		text  string
	}{
		"wrong-score":   {res.Score + 1, text},
		"garbled-text":  {res.Score, "not-a-cigar"},
		"empty-text":    {res.Score, ""},
		"truncated":     {res.Score, text[:len(text)/2]},
		"flipped-op":    {res.Score, strings.Replace(text, "=", "X", 1)},
		"extended-text": {res.Score, text + "1="},
	}
	for name, tc := range cases {
		if err := CheckPair(a, b, p, tc.score, tc.text); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestCheckResultRequiresCigar(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	a := seq.Random(rng, 50)
	res := core.GotohScore(a, a, p)
	if err := CheckResult(a, a, p, res); err == nil {
		t.Fatal("score-only result accepted by CheckResult")
	}
}
