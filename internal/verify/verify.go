// Package verify is the result-validation stage of the host's
// result-integrity pipeline: it re-derives what a returned alignment
// *claims* from first principles and rejects anything that does not add
// up. The checks are the self-checking discipline PiM alignment frameworks
// apply to bound heuristic and transport error (cf. the WFA-on-PIM line of
// work): a CIGAR must parse, must consume exactly the query and target it
// aligns, every '='/'X' column must agree with the actual bases, and the
// affine-gap score the CIGAR implies must equal the score the kernel
// reported. A verification failure means the result was corrupted in
// flight, or the kernel mis-tracebacked — either way the host treats it as
// detected corruption and feeds the pair back into the recovery loop.
package verify

import (
	"fmt"

	"pimnw/internal/cigar"
	"pimnw/internal/core"
	"pimnw/internal/seq"
)

// CheckPair validates one traceback alignment result end to end: the CIGAR
// text parses, structurally consumes len(a) query and len(b) target bases,
// matches the concrete bases column by column, and re-derives the reported
// score under p. A nil error means the result is self-consistent (which
// says nothing about optimality — band clipping is tracked separately).
func CheckPair(a, b seq.Seq, p core.Params, score int32, cigarText string) error {
	c, err := cigar.Parse(cigarText)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	// Structural pass first (lengths only): cheap, and distinguishes a
	// truncated transfer from a content mismatch in the error text.
	if err := cigar.Validate(c, len(a), len(b)); err != nil {
		return fmt.Errorf("verify: structural: %w", err)
	}
	// Content pass: '='/'X' columns against the actual bases.
	if err := c.Validate(a, b); err != nil {
		return fmt.Errorf("verify: content: %w", err)
	}
	if got := core.ScoreFromCigar(c, p); got != score {
		return fmt.Errorf("verify: CIGAR implies score %d, result reports %d", got, score)
	}
	return nil
}

// CheckResult validates a core.Result produced with traceback against its
// input pair (test-harness convenience over CheckPair).
func CheckResult(a, b seq.Seq, p core.Params, res core.Result) error {
	if res.Cigar == nil {
		return fmt.Errorf("verify: result has no CIGAR to check")
	}
	return CheckPair(a, b, p, res.Score, res.Cigar.String())
}
