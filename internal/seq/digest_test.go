package seq

import (
	"math/rand"
	"testing"
)

// TestDigestGolden pins the digest values byte for byte: DigestSeq is
// part of the persistent result cache's on-disk contract, and a changed
// digest silently orphans every WAL ever written. If this test fails
// because the hash was changed deliberately, the cache WAL format
// version must be bumped alongside.
func TestDigestGolden(t *testing.T) {
	cases := []struct {
		in     string
		hi, lo uint64
	}{
		{"", 0x39f421a507a874b7, 0xb7df5bf757239840},
		{"A", 0xdb54688a64e5ce63, 0xf363fc697e644c92},
		{"ACGT", 0xb7cd806f9051cca3, 0xdd9f20404904dec5},
		{"ACGTACGTACGTACGTACGTACGTACGTACGTA", 0x1bb7bcc4073756a7, 0x326ffeb6317291},
	}
	for _, c := range cases {
		s, err := FromString(c.in, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := DigestSeq(s)
		if d.Hi != c.hi || d.Lo != c.lo {
			t.Errorf("DigestSeq(%q) = {%#x, %#x}, golden {%#x, %#x}",
				c.in, d.Hi, d.Lo, c.hi, c.lo)
		}
	}
}

// TestDigestContentAddressed: equal content hashes equal regardless of
// provenance; any single-base change, truncation or extension changes
// the digest.
func TestDigestContentAddressed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 31, 32, 33, 64, 100, 1000} {
		a := Random(rng, n)
		b := append(Seq(nil), a...)
		if DigestSeq(a) != DigestSeq(b) {
			t.Fatalf("len %d: equal content, different digests", n)
		}
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(n)
			mut := append(Seq(nil), a...)
			mut[i] = (mut[i] + 1 + Base(rng.Intn(3))) & 3
			if mut[i] == a[i] {
				continue
			}
			if DigestSeq(mut) == DigestSeq(a) {
				t.Fatalf("len %d: single-base change at %d collided", n, i)
			}
		}
		if n > 1 && DigestSeq(a[:n-1]) == DigestSeq(a) {
			t.Fatalf("len %d: truncation collided", n)
		}
		if DigestSeq(append(append(Seq(nil), a...), A)) == DigestSeq(a) {
			t.Fatalf("len %d: extension by 'A' collided", n)
		}
	}
	// Length must matter even when the packed words are identical: a run
	// of A (code 0) packs to all-zero words at every length.
	zeros := func(n int) Seq { return make(Seq, n) }
	seen := map[Digest]int{}
	for n := 0; n <= 70; n++ {
		d := DigestSeq(zeros(n))
		if prev, dup := seen[d]; dup {
			t.Fatalf("all-A sequences of length %d and %d collided", prev, n)
		}
		seen[d] = n
	}
}

// TestDigestZeroAlloc pins the hit path's allocation budget: the session
// computes two digests per Submit, so the digest must not allocate.
func TestDigestZeroAlloc(t *testing.T) {
	s := Random(rand.New(rand.NewSource(1)), 10000)
	var sink Digest
	allocs := testing.AllocsPerRun(100, func() {
		sink = DigestSeq(s)
	})
	if allocs != 0 {
		t.Fatalf("DigestSeq allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}
