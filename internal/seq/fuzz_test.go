package seq

import (
	"math/rand"
	"testing"
)

func FuzzFromStringPackRoundTrip(f *testing.F) {
	f.Add("ACGTacgtNNN")
	f.Add("")
	f.Add("A>CGT")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := FromString(in, rand.New(rand.NewSource(1)))
		if err != nil {
			return // invalid characters rejected: fine
		}
		if len(s) != len(in) {
			t.Fatalf("length changed: %d vs %d", len(s), len(in))
		}
		if !Pack(s).Unpack().Equal(s) {
			t.Fatal("pack/unpack round trip failed")
		}
	})
}
