package seq

// Digest is a 128-bit content digest of a DNA sequence, computed over the
// 2-bit packed representation (the same words the cmpb4-style comparator
// consumes). Two sequences with equal content — regardless of how they
// were built — have equal digests, which is what makes the result cache
// content-addressed: the digest pair stands in for the packed operands in
// the cache key. The hash is a non-cryptographic splitmix64-style mix
// (murmur-grade dispersion); at 128 bits, accidental collisions are
// negligible for dedup purposes, but it is NOT safe against adversarial
// collision construction.
//
// The function is part of the persistent cache's on-disk contract:
// changing it invalidates every WAL ever written. TestDigestGolden pins
// the exact values.
type Digest struct {
	Hi, Lo uint64
}

// Digest mixing constants (splitmix64 / murmur3 finalizer family).
const (
	digestSeedHi = 0x9e3779b97f4a7c15
	digestSeedLo = 0xc2b2ae3d27d4eb4f
	digestMulA   = 0xbf58476d1ce4e5b9
	digestMulB   = 0x94d049bb133111eb
)

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= digestMulA
	x ^= x >> 27
	x *= digestMulB
	x ^= x >> 31
	return x
}

// DigestSeq hashes a sequence's content. It allocates nothing: the packed
// words are assembled inline, 32 bases at a time, exactly as PackInto
// would lay them out, so no packing buffer is needed.
func DigestSeq(s Seq) Digest {
	h1 := uint64(digestSeedHi) ^ uint64(len(s))
	h2 := uint64(digestSeedLo) + uint64(len(s))*digestMulB
	for i := 0; i < len(s); i += 32 {
		n := len(s) - i
		if n > 32 {
			n = 32
		}
		var w uint64
		for k := 0; k < n; k++ {
			w |= uint64(s[i+k]&3) << uint(2*k)
		}
		// Two independent lanes so the digest is genuinely 128 bits wide,
		// not one 64-bit hash written twice.
		h1 = mix64(h1^w) + digestSeedLo
		h2 = mix64(h2^(w*digestMulA)) + digestSeedHi
	}
	return Digest{Hi: mix64(h1 ^ h2>>32), Lo: mix64(h2 ^ h1>>29)}
}
