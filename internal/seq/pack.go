package seq

import "fmt"

// Packed is a 2-bit packed DNA sequence: 4 bases per byte, base i occupying
// bits [2*(i%4), 2*(i%4)+2) of byte i/4. This is the wire format the host
// uses when transferring sequences to DPU MRAM (paper §4.1.1): it divides
// the host→PiM transfer volume by 4 relative to ASCII and lets the DPU
// extract nucleotides with cheap shift instructions.
type Packed struct {
	// Bytes holds the packed payload. len(Bytes) == ceil(N/4).
	Bytes []byte
	// N is the number of bases.
	N int
}

// PackedSize returns the number of bytes needed to pack n bases.
func PackedSize(n int) int { return (n + 3) / 4 }

// Pack converts an unpacked sequence into its 2-bit representation.
func Pack(s Seq) Packed {
	p := Packed{Bytes: make([]byte, PackedSize(len(s))), N: len(s)}
	for i, b := range s {
		p.Bytes[i>>2] |= byte(b&3) << uint((i&3)*2)
	}
	return p
}

// PackInto packs s into dst, which must have at least PackedSize(len(s))
// bytes; it returns the number of bytes written. Unlike Pack it performs no
// allocation, matching the host's on-the-fly encode-while-batching loop.
func PackInto(dst []byte, s Seq) int {
	n := PackedSize(len(s))
	for i := range dst[:n] {
		dst[i] = 0
	}
	for i, b := range s {
		dst[i>>2] |= byte(b&3) << uint((i&3)*2)
	}
	return n
}

// Base returns base i of the packed sequence.
func (p Packed) Base(i int) Base {
	return Base(p.Bytes[i>>2]>>uint((i&3)*2)) & 3
}

// Unpack expands the packed sequence back to one base per element.
func (p Packed) Unpack() Seq {
	s := make(Seq, p.N)
	for i := range s {
		s[i] = p.Base(i)
	}
	return s
}

// Validate checks the internal consistency of the packed buffer.
func (p Packed) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("seq: packed length %d is negative", p.N)
	}
	if want := PackedSize(p.N); len(p.Bytes) < want {
		return fmt.Errorf("seq: packed buffer has %d bytes, need %d for %d bases", len(p.Bytes), want, p.N)
	}
	return nil
}

// Word64 returns 32 consecutive bases starting at base index i (which must
// be a multiple of 32) as a single uint64, little-endian base order. The DPU
// kernel uses 64-bit WRAM loads plus shifts to stream nucleotides, and the
// cmpb4-style comparison operates on such words.
func (p Packed) Word64(i int) uint64 {
	byteOff := i >> 2
	var w uint64
	for k := 0; k < 8 && byteOff+k < len(p.Bytes); k++ {
		w |= uint64(p.Bytes[byteOff+k]) << uint(8*k)
	}
	return w
}
