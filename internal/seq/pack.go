package seq

import "fmt"

// Packed is a 2-bit packed DNA sequence: 4 bases per byte, base i occupying
// bits [2*(i%4), 2*(i%4)+2) of byte i/4. This is the wire format the host
// uses when transferring sequences to DPU MRAM (paper §4.1.1): it divides
// the host→PiM transfer volume by 4 relative to ASCII and lets the DPU
// extract nucleotides with cheap shift instructions.
type Packed struct {
	// Bytes holds the packed payload. len(Bytes) == ceil(N/4).
	Bytes []byte
	// N is the number of bases.
	N int
}

// PackedSize returns the number of bytes needed to pack n bases.
func PackedSize(n int) int { return (n + 3) / 4 }

// Pack converts an unpacked sequence into its 2-bit representation.
func Pack(s Seq) Packed {
	p := Packed{Bytes: make([]byte, PackedSize(len(s))), N: len(s)}
	for i, b := range s {
		p.Bytes[i>>2] |= byte(b&3) << uint((i&3)*2)
	}
	return p
}

// PackInto packs s into dst, which must have at least PackedSize(len(s))
// bytes; it returns the number of bytes written. Unlike Pack it performs no
// allocation, matching the host's on-the-fly encode-while-batching loop.
func PackInto(dst []byte, s Seq) int {
	n := PackedSize(len(s))
	for i := range dst[:n] {
		dst[i] = 0
	}
	for i, b := range s {
		dst[i>>2] |= byte(b&3) << uint((i&3)*2)
	}
	return n
}

// Base returns base i of the packed sequence.
func (p Packed) Base(i int) Base {
	return Base(p.Bytes[i>>2]>>uint((i&3)*2)) & 3
}

// Unpack expands the packed sequence back to one base per element.
func (p Packed) Unpack() Seq {
	s := make(Seq, p.N)
	for i := range s {
		s[i] = p.Base(i)
	}
	return s
}

// Validate checks the internal consistency of the packed buffer.
func (p Packed) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("seq: packed length %d is negative", p.N)
	}
	if want := PackedSize(p.N); len(p.Bytes) < want {
		return fmt.Errorf("seq: packed buffer has %d bytes, need %d for %d bases", len(p.Bytes), want, p.N)
	}
	return nil
}

// Word64 returns 32 consecutive bases starting at base index i (which must
// be a multiple of 32) as a single uint64, little-endian base order. The DPU
// kernel uses 64-bit WRAM loads plus shifts to stream nucleotides, and the
// cmpb4-style comparison operates on such words.
func (p Packed) Word64(i int) uint64 {
	byteOff := i >> 2
	var w uint64
	for k := 0; k < 8 && byteOff+k < len(p.Bytes); k++ {
		w |= uint64(p.Bytes[byteOff+k]) << uint(8*k)
	}
	return w
}

// WordPad is the zero tail (bytes) PackPadded appends past the payload so
// that WordAt can always issue two unconditional 64-bit loads. Buffers not
// produced by PackPadded/PackReversed still work — WordAt falls back to a
// byte loop near the end of an unpadded buffer.
const WordPad = 8

// PackPadded packs s into buf (grown as needed) with a WordPad zero tail
// and returns the grown buffer plus the Packed view. Like PackInto it
// performs no allocation once buf has reached capacity, which is what lets
// the aligners' scratch arenas re-pack operands for free on every call.
func PackPadded(buf []byte, s Seq) ([]byte, Packed) {
	return packPadded(buf, s, false)
}

// PackReversed is PackPadded with the bases stored in reverse order:
// base i of the view is s[len(s)-1-i]. Along an anti-diagonal the indices
// into the query ascend while the indices into the target descend, so
// packing the target reversed makes both comparator operands advance with
// the same +1 stride — the precondition for the word-parallel MatchMask.
func PackReversed(buf []byte, s Seq) ([]byte, Packed) {
	return packPadded(buf, s, true)
}

func packPadded(buf []byte, s Seq, reverse bool) ([]byte, Packed) {
	need := PackedSize(len(s)) + WordPad
	if cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
		clear(buf)
	}
	if reverse {
		n := len(s)
		for i, b := range s {
			r := n - 1 - i
			buf[r>>2] |= byte(b&3) << uint((r&3)*2)
		}
	} else {
		for i, b := range s {
			buf[i>>2] |= byte(b&3) << uint((i&3)*2)
		}
	}
	return buf, Packed{Bytes: buf, N: len(s)}
}

// WordAt returns 32 consecutive bases starting at any base index i ≥ 0 as a
// uint64 in little-endian base order, zero-filled (base A) past the end of
// the buffer. Unlike Word64 the start needs no alignment: on PackPadded
// buffers it compiles to two 64-bit loads and a funnel shift, the Go
// analogue of the DPU kernel's unaligned WRAM nucleotide streaming.
func (p Packed) WordAt(i int) uint64 {
	byteOff := i >> 2
	shift := uint(i&3) * 2
	if b := p.Bytes; byteOff+9 <= len(b) {
		_ = b[byteOff+8]
		lo := uint64(b[byteOff]) | uint64(b[byteOff+1])<<8 | uint64(b[byteOff+2])<<16 |
			uint64(b[byteOff+3])<<24 | uint64(b[byteOff+4])<<32 | uint64(b[byteOff+5])<<40 |
			uint64(b[byteOff+6])<<48 | uint64(b[byteOff+7])<<56
		return lo>>shift | uint64(b[byteOff+8])<<(64-shift)
	}
	// Unpadded tail: assemble base by base.
	var w uint64
	for k := 0; k < 32 && i+k < p.N; k++ {
		w |= uint64(p.Base(i+k)) << uint(2*k)
	}
	return w
}

// matchEven selects the low bit of every 2-bit group.
const matchEven = 0x5555555555555555

// MatchMask compares 32 bases of a starting at ai against 32 bases of b
// starting at bi in one word operation — the Go analogue of the paper's
// cmpb4 4-base comparator (§4.2.4), widened to 32 bases per uint64: XOR the
// packed words, OR each 2-bit group onto its low bit, invert and mask. In
// the result, bit 2k is set iff a[ai+k] == b[bi+k]; odd bits are zero.
// Positions past either sequence's end read as base A and may therefore
// report spurious matches — callers consume only in-range lanes.
func MatchMask(a, b Packed, ai, bi int) uint64 {
	x := a.WordAt(ai) ^ b.WordAt(bi)
	return ^(x | x>>1) & matchEven
}

// CompressMask compacts a MatchMask word — one result bit per 2-bit base
// lane, at the even positions — into its low 32 bits: bit k of the result
// is bit 2k of mask. The narrow-lane engine uses it to turn 32 comparator
// results into eight 4-bit substitution-LUT indices per mask word.
func CompressMask(mask uint64) uint32 {
	x := mask & matchEven
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}
