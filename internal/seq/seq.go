// Package seq provides DNA sequence primitives shared by the aligners, the
// PiM kernel, and the dataset generators: a 2-bit nucleotide code, packed
// sequence buffers (the host→DPU transfer format of §4.1.1 of the paper),
// ambiguous-base ("N") resolution, and FASTA I/O.
package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base is a nucleotide encoded on 2 bits: A=0, C=1, G=2, T=3.
// This is the code used both in host memory and inside the (simulated) DPU
// MRAM, where each byte of a packed sequence holds 4 bases.
type Base uint8

// The four nucleotide codes.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

// baseToChar maps a 2-bit code to its ASCII letter.
var baseToChar = [NumBases]byte{'A', 'C', 'G', 'T'}

// Char returns the ASCII letter for b.
func (b Base) Char() byte { return baseToChar[b&3] }

// String implements fmt.Stringer.
func (b Base) String() string { return string(baseToChar[b&3]) }

// BaseFromChar converts an ASCII nucleotide letter (upper or lower case) to
// its 2-bit code. It reports ok=false for any other character, including the
// ambiguity code 'N' (see ResolveN for the policy the paper applies to Ns).
func BaseFromChar(c byte) (b Base, ok bool) {
	switch c {
	case 'A', 'a':
		return A, true
	case 'C', 'c':
		return C, true
	case 'G', 'g':
		return G, true
	case 'T', 't':
		return T, true
	}
	return 0, false
}

// Seq is an unpacked DNA sequence, one base per element.
type Seq []Base

// FromString parses an ASCII DNA string. Ambiguous bases ('N'/'n') are
// substituted with a base drawn from rng, following the paper's §4.1.1
// policy (citing metaFlye and BWA: replacing N with a random nucleotide does
// not affect alignment results). rng may be nil if the input has no Ns, in
// which case an N is an error.
func FromString(s string, rng *rand.Rand) (Seq, error) {
	out := make(Seq, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if b, ok := BaseFromChar(c); ok {
			out = append(out, b)
			continue
		}
		if c == 'N' || c == 'n' {
			if rng == nil {
				return nil, fmt.Errorf("seq: ambiguous base N at position %d and no RNG to resolve it", i)
			}
			out = append(out, Base(rng.Intn(NumBases)))
			continue
		}
		return nil, fmt.Errorf("seq: invalid character %q at position %d", c, i)
	}
	return out, nil
}

// MustFromString is FromString for test and example literals; it panics on
// invalid input and resolves Ns deterministically with seed 1.
func MustFromString(s string) Seq {
	sq, err := FromString(s, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	return sq
}

// String renders the sequence as ASCII letters.
func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Char())
	}
	return sb.String()
}

// Clone returns a deep copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two sequences have identical length and content.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// GC returns the GC fraction of the sequence (0 for an empty sequence).
func (s Seq) GC() float64 {
	if len(s) == 0 {
		return 0
	}
	n := 0
	for _, b := range s {
		if b == G || b == C {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

// Random returns a uniformly random sequence of length n drawn from rng.
func Random(rng *rand.Rand, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = Base(rng.Intn(NumBases))
	}
	return s
}

// RandomGC returns a random sequence of length n with expected GC content gc.
func RandomGC(rng *rand.Rand, n int, gc float64) Seq {
	s := make(Seq, n)
	for i := range s {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				s[i] = G
			} else {
				s[i] = C
			}
		} else {
			if rng.Intn(2) == 0 {
				s[i] = A
			} else {
				s[i] = T
			}
		}
	}
	return s
}

// Complement returns the Watson-Crick complement of b.
func (b Base) Complement() Base { return b ^ 3 }

// ReverseComplement returns the reverse complement of s.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}
