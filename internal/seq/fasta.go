package seq

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Record is a named FASTA sequence.
type Record struct {
	Name string
	Seq  Seq
}

// ReadFASTA parses FASTA records from r. Ambiguous bases are resolved with
// rng (see FromString); pass a seeded rng for reproducible N substitution.
func ReadFASTA(r io.Reader, rng *rand.Rand) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var (
		recs []Record
		name string
		body strings.Builder
		open bool
	)
	flush := func() error {
		if !open {
			return nil
		}
		s, err := FromString(body.String(), rng)
		if err != nil {
			return fmt.Errorf("seq: record %q: %w", name, err)
		}
		recs = append(recs, Record{Name: name, Seq: s})
		body.Reset()
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(text[1:])
			open = true
			continue
		}
		if !open {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", line)
		}
		body.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at width columns
// (60 if width <= 0).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		for len(s) > 0 {
			n := width
			if n > len(s) {
				n = len(s)
			}
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}
