package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseChar(t *testing.T) {
	cases := []struct {
		b Base
		c byte
	}{{A, 'A'}, {C, 'C'}, {G, 'G'}, {T, 'T'}}
	for _, tc := range cases {
		if got := tc.b.Char(); got != tc.c {
			t.Errorf("Base(%d).Char() = %c, want %c", tc.b, got, tc.c)
		}
		if got := tc.b.String(); got != string(tc.c) {
			t.Errorf("Base(%d).String() = %q, want %q", tc.b, got, string(tc.c))
		}
	}
}

func TestBaseFromChar(t *testing.T) {
	for _, c := range []byte{'A', 'C', 'G', 'T', 'a', 'c', 'g', 't'} {
		b, ok := BaseFromChar(c)
		if !ok {
			t.Fatalf("BaseFromChar(%c) not ok", c)
		}
		upper := c &^ 0x20
		if b.Char() != upper {
			t.Errorf("BaseFromChar(%c) = %v, want %c", c, b, upper)
		}
	}
	for _, c := range []byte{'N', 'n', 'X', ' ', '>', 0} {
		if _, ok := BaseFromChar(c); ok {
			t.Errorf("BaseFromChar(%c) unexpectedly ok", c)
		}
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	const in = "ACGTACGTTTGGCCAA"
	s, err := FromString(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestFromStringLowercase(t *testing.T) {
	s, err := FromString("acgt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "ACGT" {
		t.Errorf("got %q, want ACGT", got)
	}
}

func TestFromStringNResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := FromString("ANNNT", rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	if s[0] != A || s[4] != T {
		t.Errorf("unambiguous bases altered: %v", s)
	}
	// Same seed, same resolution: the substitution must be deterministic.
	s2, err := FromString("ANNNT", rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(s2) {
		t.Errorf("N resolution not deterministic: %v vs %v", s, s2)
	}
}

func TestFromStringNWithoutRNG(t *testing.T) {
	if _, err := FromString("AN", nil); err == nil {
		t.Error("expected error for N without RNG")
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("ACGU", nil); err == nil {
		t.Error("expected error for invalid character U")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustFromString("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone shares storage with original")
	}
	if !s.Equal(s.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromString("ACGT")
	if !a.Equal(MustFromString("ACGT")) {
		t.Error("equal sequences reported unequal")
	}
	if a.Equal(MustFromString("ACGA")) {
		t.Error("different content reported equal")
	}
	if a.Equal(MustFromString("ACG")) {
		t.Error("different length reported equal")
	}
}

func TestGC(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"", 0}, {"AT", 0}, {"GC", 1}, {"ACGT", 0.5}, {"GGGA", 0.75},
	}
	for _, tc := range cases {
		if got := MustFromString(tc.in).GC(); got != tc.want {
			t.Errorf("GC(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRandomLengthAndAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	var counts [NumBases]int
	for _, b := range s {
		if b >= NumBases {
			t.Fatalf("base out of range: %d", b)
		}
		counts[b]++
	}
	for b, n := range counts {
		if n < 150 || n > 350 {
			t.Errorf("base %d count %d suspiciously far from uniform", b, n)
		}
	}
}

func TestRandomGCBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandomGC(rng, 20000, 0.7)
	if gc := s.GC(); gc < 0.67 || gc > 0.73 {
		t.Errorf("GC = %v, want ~0.7", gc)
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustFromString("AACGT")
	if got := s.ReverseComplement().String(); got != "ACGTT" {
		t.Errorf("revcomp = %q, want ACGTT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, r := range raw {
			s[i] = Base(r & 3)
		}
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, r := range raw {
			s[i] = Base(r & 3)
		}
		return Pack(s).Unpack().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackedSize(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3}}
	for _, tc := range cases {
		if got := PackedSize(tc.n); got != tc.want {
			t.Errorf("PackedSize(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestPackBaseAccess(t *testing.T) {
	s := MustFromString("ACGTTGCA")
	p := Pack(s)
	for i := range s {
		if got := p.Base(i); got != s[i] {
			t.Errorf("Base(%d) = %v, want %v", i, got, s[i])
		}
	}
}

func TestPackIntoMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 5, 63, 64, 65, 1000} {
		s := Random(rng, n)
		want := Pack(s)
		dst := make([]byte, PackedSize(n)+4)
		for i := range dst {
			dst[i] = 0xFF // PackInto must clear stale bits
		}
		wrote := PackInto(dst, s)
		if wrote != PackedSize(n) {
			t.Errorf("n=%d: wrote %d bytes, want %d", n, wrote, PackedSize(n))
		}
		for i := 0; i < wrote; i++ {
			if dst[i] != want.Bytes[i] {
				t.Errorf("n=%d: byte %d = %#x, want %#x", n, i, dst[i], want.Bytes[i])
			}
		}
	}
}

func TestPackedValidate(t *testing.T) {
	good := Pack(MustFromString("ACGTA"))
	if err := good.Validate(); err != nil {
		t.Errorf("valid packed rejected: %v", err)
	}
	bad := Packed{Bytes: []byte{0}, N: 5}
	if err := bad.Validate(); err == nil {
		t.Error("short buffer accepted")
	}
	neg := Packed{N: -1}
	if err := neg.Validate(); err == nil {
		t.Error("negative length accepted")
	}
}

func TestWord64(t *testing.T) {
	s := make(Seq, 32)
	for i := range s {
		s[i] = Base(i & 3)
	}
	p := Pack(s)
	w := p.Word64(0)
	for i := 0; i < 32; i++ {
		if got := Base(w >> uint(2*i) & 3); got != s[i] {
			t.Errorf("word base %d = %v, want %v", i, got, s[i])
		}
	}
	// Short tail: must not read out of bounds.
	short := Pack(MustFromString("ACG"))
	if w := short.Word64(0); Base(w&3) != A || Base(w>>2&3) != C || Base(w>>4&3) != G {
		t.Errorf("short word = %#x", w)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "read1 description", Seq: MustFromString("ACGTACGTACGT")},
		{Name: "read2", Seq: MustFromString(strings.Repeat("ACGT", 50))},
		{Name: "empty", Seq: Seq{}},
	}
	var sb strings.Builder
	if err := WriteFASTA(&sb, recs, 10); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name {
			t.Errorf("record %d name = %q, want %q", i, got[i].Name, recs[i].Name)
		}
		if !got[i].Seq.Equal(recs[i].Seq) {
			t.Errorf("record %d sequence mismatch", i)
		}
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n"), nil); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">r\nACGX\n"), nil); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestReadFASTAMultiline(t *testing.T) {
	in := ">r1\nACGT\nTTTT\n\n>r2\nGG\n"
	recs, err := ReadFASTA(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Seq.String() != "ACGTTTTT" {
		t.Errorf("r1 = %q", recs[0].Seq.String())
	}
	if recs[1].Seq.String() != "GG" {
		t.Errorf("r2 = %q", recs[1].Seq.String())
	}
}
