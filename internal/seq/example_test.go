package seq_test

import (
	"fmt"
	"math/rand"

	"pimnw/internal/seq"
)

func ExamplePack() {
	s := seq.MustFromString("ACGTACGT")
	p := seq.Pack(s)
	fmt.Println(len(p.Bytes), p.Unpack().String())
	// Output: 2 ACGTACGT
}

func ExampleFromString() {
	// Ambiguous bases resolve deterministically under a seeded RNG
	// (the paper's §4.1.1 policy).
	rng := rand.New(rand.NewSource(1))
	s, _ := seq.FromString("ACNNGT", rng)
	fmt.Println(len(s))
	// Output: 6
}

func ExampleMutator_Apply() {
	rng := rand.New(rand.NewSource(7))
	ref := seq.Random(rng, 30)
	read := seq.UniformErrors(0.1).Apply(rng, ref)
	fmt.Println(len(ref) > 0, len(read) > 0)
	// Output: true true
}

func ExampleSeq_ReverseComplement() {
	s := seq.MustFromString("AACGT")
	fmt.Println(s.ReverseComplement())
	// Output: ACGTT
}
