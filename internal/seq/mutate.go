package seq

import "math/rand"

// Mutator applies a sequencing-error / divergence model to sequences. It is
// the generator behind the synthetic datasets (the role the WFA paper's
// generator plays in §5) and behind the PacBio-like high-error reads: base
// substitutions, short indels with geometric lengths, and optional large
// structural gaps (the ">100 bp" gaps of the paper's PacBio dataset).
type Mutator struct {
	SubRate float64 // per-base substitution probability
	InsRate float64 // per-position insertion-start probability
	DelRate float64 // per-position deletion-start probability
	// IndelExt is the geometric continuation probability of an indel run;
	// 0 means all indels have length 1.
	IndelExt float64
	// BigGapRate is the per-position probability of a large structural gap
	// (insertion or deletion with equal probability).
	BigGapRate float64
	// BigGapMin/BigGapMax bound the structural gap length (inclusive).
	BigGapMin, BigGapMax int
}

// geomLen draws 1 + Geometric(1-ext) capped at 100 to keep short indels short.
func geomLen(rng *rand.Rand, ext float64) int {
	n := 1
	for n < 100 && ext > 0 && rng.Float64() < ext {
		n++
	}
	return n
}

func (m Mutator) bigGapLen(rng *rand.Rand) int {
	lo, hi := m.BigGapMin, m.BigGapMax
	if lo <= 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Apply mutates s according to the model, returning a new sequence. The
// original is never modified.
func (m Mutator) Apply(rng *rand.Rand, s Seq) Seq {
	out := make(Seq, 0, len(s)+len(s)/8)
	for i := 0; i < len(s); i++ {
		if m.BigGapRate > 0 && rng.Float64() < m.BigGapRate {
			n := m.bigGapLen(rng)
			if rng.Intn(2) == 0 {
				// structural insertion of random bases
				for k := 0; k < n; k++ {
					out = append(out, Base(rng.Intn(NumBases)))
				}
			} else {
				// structural deletion: skip n source bases
				i += n - 1
				continue
			}
		}
		if rng.Float64() < m.InsRate {
			for k, n := 0, geomLen(rng, m.IndelExt); k < n; k++ {
				out = append(out, Base(rng.Intn(NumBases)))
			}
		}
		if rng.Float64() < m.DelRate {
			n := geomLen(rng, m.IndelExt)
			i += n - 1
			continue
		}
		b := s[i]
		if rng.Float64() < m.SubRate {
			// substitute with one of the three other bases
			b = (b + Base(1+rng.Intn(NumBases-1))) & 3
		}
		out = append(out, b)
	}
	return out
}

// UniformErrors is a convenience mutator with equal substitution, insertion
// and deletion rates summing to errorRate, the error model of the synthetic
// S-datasets.
func UniformErrors(errorRate float64) Mutator {
	r := errorRate / 3
	return Mutator{SubRate: r, InsRate: r, DelRate: r, IndelExt: 0.3}
}
