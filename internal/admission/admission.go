package admission

import (
	"sync/atomic"
	"time"
)

// Tier names a rate-limit layer, outermost first. They appear as the
// {tier="..."} label on reject counters and in 429 bodies.
type Tier string

const (
	TierGlobal Tier = "global"
	TierClient Tier = "client"
	TierIP     Tier = "ip"
)

// Decision is one admission verdict. A refusal names the violated tier
// and carries the wait until that tier would admit again.
type Decision struct {
	OK         bool
	Tier       Tier          // violated tier when !OK
	RetryAfter time.Duration // time until the violated bucket refills one token
}

// tierCounters is one tier's accept/reject tallies.
type tierCounters struct {
	accepts atomic.Uint64
	rejects atomic.Uint64
}

// Controller is the layered rate limiter: one global bucket, then the
// per-client and per-IP keyed tiers, checked outermost first. Allow is
// allocation-free for keys the tiers have already seen.
type Controller struct {
	limits atomic.Pointer[Limits]

	global     tokenBucket
	client, ip *TierLimiter

	counters [3]tierCounters // indexed by tierIndex

	stop chan struct{}
	done chan struct{}
}

func tierIndex(t Tier) int {
	switch t {
	case TierGlobal:
		return 0
	case TierClient:
		return 1
	}
	return 2
}

// NewController validates the limits and builds the tiers.
func NewController(l Limits) (*Controller, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		client: NewTierLimiter(l.ClientQPS, l.ClientBurst, l.MaxClientEntries),
		ip:     NewTierLimiter(l.IPQPS, l.IPBurst, l.MaxIPEntries),
	}
	c.limits.Store(&l)
	c.global.tokens = l.GlobalBurst
	c.global.last = time.Now()
	return c, nil
}

// SetLimits hot-swaps the rates. Entry caps are fixed at construction
// (the maps never grow past the larger of old and new caps anyway, and
// keeping them immutable keeps eviction reasoning simple); rate changes
// take effect on the next request.
func (c *Controller) SetLimits(l Limits) error {
	if err := l.Validate(); err != nil {
		return err
	}
	c.limits.Store(&l)
	c.client.SetLimits(l.ClientQPS, l.ClientBurst)
	c.ip.SetLimits(l.IPQPS, l.IPBurst)
	return nil
}

// Limits returns the live rates.
func (c *Controller) Limits() Limits { return *c.limits.Load() }

// Allow runs one request through the tiers at time.Now.
func (c *Controller) Allow(clientKey, ip string) Decision {
	return c.AllowAt(time.Now(), clientKey, ip)
}

// AllowAt is Allow at an explicit instant (deterministic tests).
// Tiers are checked global → client → IP; the first refusal wins and
// inner tiers are not charged for refused requests.
func (c *Controller) AllowAt(now time.Time, clientKey, ip string) Decision {
	l := c.limits.Load()
	if l.GlobalQPS > 0 {
		if ok, wait := c.global.take(now, l.GlobalQPS, l.GlobalBurst); !ok {
			c.counters[tierIndex(TierGlobal)].rejects.Add(1)
			return Decision{Tier: TierGlobal, RetryAfter: wait}
		}
	}
	if ok, wait := c.client.Allow(clientKey, now); !ok {
		c.counters[tierIndex(TierClient)].rejects.Add(1)
		return Decision{Tier: TierClient, RetryAfter: wait}
	}
	if ok, wait := c.ip.Allow(ip, now); !ok {
		c.counters[tierIndex(TierIP)].rejects.Add(1)
		return Decision{Tier: TierIP, RetryAfter: wait}
	}
	for i := range c.counters {
		c.counters[i].accepts.Add(1)
	}
	return Decision{OK: true}
}

// TierStats is one tier's snapshot for the admin API.
type TierStats struct {
	Accepts   uint64 `json:"accepts"`
	Rejects   uint64 `json:"rejects"`
	Entries   int    `json:"entries,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// Stats is the controller snapshot, keyed by tier name.
type Stats struct {
	Global TierStats `json:"global"`
	Client TierStats `json:"client"`
	IP     TierStats `json:"ip"`
}

// Stats snapshots accepts/rejects and keyed-map occupancy.
func (c *Controller) Stats() Stats {
	tier := func(t Tier) TierStats {
		i := tierIndex(t)
		return TierStats{
			Accepts: c.counters[i].accepts.Load(),
			Rejects: c.counters[i].rejects.Load(),
		}
	}
	s := Stats{Global: tier(TierGlobal), Client: tier(TierClient), IP: tier(TierIP)}
	s.Client.Entries, s.Client.Evictions = c.client.Len(), c.client.Evictions()
	s.IP.Entries, s.IP.Evictions = c.ip.Len(), c.ip.Evictions()
	return s
}

// Start launches the periodic cleanup sweep that expires idle keyed
// entries. interval <= 0 disables it. Close stops the sweep.
func (c *Controller) Start(interval time.Duration) {
	if interval <= 0 || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				ttl := c.limits.Load().IdleTTL
				c.client.Cleanup(now, ttl)
				c.ip.Cleanup(now, ttl)
			case <-c.stop:
				return
			}
		}
	}()
}

// Close stops the cleanup sweep, if running.
func (c *Controller) Close() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}
