package admission

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// The shed ladder. Under sustained pressure the daemon degrades service
// in explicit rungs rather than falling over: first bulk requests lose
// their traceback (forced onto the 16-bit narrow score-only kernel —
// cheap, still exact for the score), then the host-side verify
// double-check is dropped, and only then are bulk requests refused
// outright with 429 and an honest Retry-After. Interactive requests are
// score-only by definition and are never degraded — the ladder exists
// to keep their latency bounded. Every rung a request is served under
// is surfaced as a typed degradation label on its results; nothing is
// silently downgraded.

// ShedLevel is the current rung of the load-shedding ladder.
type ShedLevel int32

const (
	// ShedNone: full service.
	ShedNone ShedLevel = iota
	// ShedScoreOnly: bulk requests are forced onto the 16-bit
	// narrow-lane score-only kernel; their results carry no CIGAR and
	// are labelled DegradedScoreOnly.
	ShedScoreOnly
	// ShedNoVerify: additionally, host-side CIGAR re-derivation
	// (verify) is disabled for newly admitted requests.
	ShedNoVerify
	// ShedRejectBulk: additionally, bulk requests are rejected with
	// 429 + Retry-After computed from the queue drain rate.
	ShedRejectBulk

	maxShedLevel = ShedRejectBulk
)

var shedLevelNames = [...]string{
	ShedNone:       "none",
	ShedScoreOnly:  "score-only",
	ShedNoVerify:   "no-verify",
	ShedRejectBulk: "reject-bulk",
}

func (l ShedLevel) String() string {
	if l < 0 || int(l) >= len(shedLevelNames) {
		return fmt.Sprintf("shed(%d)", int(l))
	}
	return shedLevelNames[l]
}

// ParseShedLevel inverts String (the admin API's override format);
// "auto" is not a level and is handled by the caller.
func ParseShedLevel(s string) (ShedLevel, error) {
	for i, name := range shedLevelNames {
		if s == name {
			return ShedLevel(i), nil
		}
	}
	return 0, fmt.Errorf("admission: unknown shed level %q (want none, score-only, no-verify or reject-bulk)", s)
}

// Degradation is one typed service downgrade applied to a request.
type Degradation string

const (
	// DegradedScoreOnly: the request asked for CIGARs but was served
	// score-only (narrow lanes) by the shed ladder.
	DegradedScoreOnly Degradation = "score-only"
	// DegradedNoVerify: host-side verify was configured but skipped for
	// this request by the shed ladder.
	DegradedNoVerify Degradation = "no-verify"
)

// Degradations lists the typed downgrades rung l applies to a bulk
// request that asked for traceback (wantTB) against a daemon configured
// to verify (wantVerify). Interactive requests pass wantTB=false and
// collect at most DegradedNoVerify — which is also vacuous for them, so
// in practice they return nil.
func (l ShedLevel) Degradations(wantTB, wantVerify bool) []Degradation {
	var d []Degradation
	if l >= ShedScoreOnly && wantTB {
		d = append(d, DegradedScoreOnly)
		wantVerify = false // verify re-derives CIGARs; score-only has none
	}
	if l >= ShedNoVerify && wantVerify {
		d = append(d, DegradedNoVerify)
	}
	return d
}

// PressureConfig tunes the controller's hysteresis. Load is a fraction
// in [0,1] — the max of inflight saturation and queue occupancy as
// sampled by the server.
type PressureConfig struct {
	// HighWater: load at or above this counts toward raising the level.
	HighWater float64 `json:"high_water"`
	// LowWater: load strictly below this counts toward releasing.
	LowWater float64 `json:"low_water"`
	// RaiseAfter consecutive high samples climb one rung.
	RaiseAfter int `json:"raise_after"`
	// ReleaseAfter consecutive low samples descend one rung.
	ReleaseAfter int `json:"release_after"`
}

// Validate rejects watermarks outside [0,1] or inverted, and
// non-positive sample counts.
func (c PressureConfig) Validate() error {
	if math.IsNaN(c.HighWater) || math.IsNaN(c.LowWater) ||
		c.LowWater < 0 || c.HighWater > 1 || c.LowWater >= c.HighWater {
		return fmt.Errorf("admission: watermarks must satisfy 0 <= low_water < high_water <= 1 (low %v, high %v)",
			c.LowWater, c.HighWater)
	}
	if c.RaiseAfter < 1 || c.ReleaseAfter < 1 {
		return fmt.Errorf("admission: raise_after and release_after must be >= 1 (raise %d, release %d)",
			c.RaiseAfter, c.ReleaseAfter)
	}
	return nil
}

// Pressure drives the shed ladder from periodic load samples, with
// hysteresis in both directions so a single spike neither engages nor a
// single quiet tick releases a rung. A manual override (admin API) pins
// the level until cleared; automatic tracking continues underneath so
// clearing the override lands on the level the load actually warrants.
type Pressure struct {
	cfg      atomic.Pointer[PressureConfig]
	level    atomic.Int32 // automatic level
	override atomic.Int32 // pinned level, or -1 for auto

	mu        sync.Mutex // sample bookkeeping
	hot, cool int

	// onChange observes effective-level transitions (both automatic and
	// override-driven) for metrics/flight wiring. Called outside locks.
	onChange func(from, to ShedLevel, reason string)

	transitions atomic.Uint64
}

// NewPressure builds a controller at ShedNone. onChange may be nil.
func NewPressure(cfg PressureConfig, onChange func(from, to ShedLevel, reason string)) (*Pressure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pressure{onChange: onChange}
	p.cfg.Store(&cfg)
	p.override.Store(-1)
	return p, nil
}

// SetConfig hot-swaps the thresholds; the consecutive-sample counters
// reset so stale streaks can't trip the new thresholds instantly.
func (p *Pressure) SetConfig(cfg PressureConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	p.hot, p.cool = 0, 0
	p.mu.Unlock()
	p.cfg.Store(&cfg)
	return nil
}

// Config returns the live thresholds.
func (p *Pressure) Config() PressureConfig { return *p.cfg.Load() }

// Level is the effective shed level: the override when pinned, the
// automatic level otherwise.
func (p *Pressure) Level() ShedLevel {
	if o := p.override.Load(); o >= 0 {
		return ShedLevel(o)
	}
	return ShedLevel(p.level.Load())
}

// AutoLevel is the automatic level regardless of override.
func (p *Pressure) AutoLevel() ShedLevel { return ShedLevel(p.level.Load()) }

// Override reports the pinned level, if any.
func (p *Pressure) Override() (ShedLevel, bool) {
	o := p.override.Load()
	return ShedLevel(o), o >= 0
}

// SetOverride pins the effective level (admin control).
func (p *Pressure) SetOverride(l ShedLevel) error {
	if l < ShedNone || l > maxShedLevel {
		return fmt.Errorf("admission: shed level %d out of range [0,%d]", l, maxShedLevel)
	}
	from := p.Level()
	p.override.Store(int32(l))
	p.noteChange(from, p.Level(), "override")
	return nil
}

// ClearOverride returns control to the automatic level.
func (p *Pressure) ClearOverride() {
	from := p.Level()
	p.override.Store(-1)
	p.noteChange(from, p.Level(), "override-cleared")
}

// Transitions counts effective-level changes since construction.
func (p *Pressure) Transitions() uint64 { return p.transitions.Load() }

// Sample feeds one load observation (max of inflight saturation and
// queue occupancy, in [0,1]) and returns the effective level after it.
func (p *Pressure) Sample(load float64) ShedLevel {
	cfg := p.cfg.Load()
	p.mu.Lock()
	from := ShedLevel(p.level.Load())
	to := from
	switch {
	case load >= cfg.HighWater:
		p.cool = 0
		p.hot++
		if p.hot >= cfg.RaiseAfter && to < maxShedLevel {
			to++
			p.hot = 0
		}
	case load < cfg.LowWater:
		p.hot = 0
		p.cool++
		if p.cool >= cfg.ReleaseAfter && to > ShedNone {
			to--
			p.cool = 0
		}
	default: // between the watermarks: hold, break both streaks
		p.hot, p.cool = 0, 0
	}
	if to != from {
		p.level.Store(int32(to))
	}
	overridden := p.override.Load() >= 0
	p.mu.Unlock()
	if to != from && !overridden {
		p.noteChange(from, to, "pressure")
	}
	return p.Level()
}

func (p *Pressure) noteChange(from, to ShedLevel, reason string) {
	if from == to {
		return
	}
	p.transitions.Add(1)
	if p.onChange != nil {
		p.onChange(from, to, reason)
	}
}
