package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testLimits() Limits {
	return Limits{
		GlobalQPS: 1000, GlobalBurst: 100,
		ClientQPS: 100, ClientBurst: 10,
		IPQPS: 50, IPBurst: 5,
		MaxClientEntries: 64,
		MaxIPEntries:     64,
		IdleTTL:          time.Minute,
	}
}

func TestLimitsValidate(t *testing.T) {
	if err := testLimits().Validate(); err != nil {
		t.Fatalf("valid limits rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Limits){
		"negative qps":        func(l *Limits) { l.IPQPS = -1 },
		"zero burst with qps": func(l *Limits) { l.ClientBurst = 0 },
		"zero entry cap":      func(l *Limits) { l.MaxIPEntries = 0 },
		"negative ttl":        func(l *Limits) { l.IdleTTL = -time.Second },
	} {
		l := testLimits()
		mutate(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, l)
		}
	}
}

// TestTierLimiterBurstAndRefill pins the token-bucket arithmetic: a
// fresh key admits exactly burst back-to-back requests, refuses the
// next with a wait consistent with the refill rate, and admits again
// after that wait.
func TestTierLimiterBurstAndRefill(t *testing.T) {
	tl := NewTierLimiter(10, 3, 16) // 10 QPS, burst 3
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := tl.Allow("k", now); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := tl.Allow("k", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("refusal wait = %v, want (0, 100ms] at 10 QPS", wait)
	}
	if ok, _ := tl.Allow("k", now.Add(wait)); !ok {
		t.Fatal("request after the advertised wait still refused")
	}
	// A disabled tier admits everything and keeps no state.
	off := NewTierLimiter(0, 0, 4)
	for i := 0; i < 100; i++ {
		if ok, _ := off.Allow(fmt.Sprintf("k%d", i), now); !ok {
			t.Fatal("disabled tier refused a request")
		}
	}
	if off.Len() != 0 {
		t.Fatalf("disabled tier grew %d entries", off.Len())
	}
}

// TestTierLimiterEvictionCap proves the keyed map never exceeds its
// configured entry cap, whatever the key churn, and that eviction
// prefers stale entries.
func TestTierLimiterEvictionCap(t *testing.T) {
	const cap = 32
	tl := NewTierLimiter(1000, 1000, cap)
	now := time.Unix(1000, 0)
	for i := 0; i < 10*cap; i++ {
		tl.Allow(fmt.Sprintf("key-%d", i), now.Add(time.Duration(i)*time.Millisecond))
		if n := tl.Len(); n > cap {
			t.Fatalf("after %d inserts the map holds %d entries, cap %d", i+1, n, cap)
		}
	}
	if tl.Len() != cap {
		t.Fatalf("map holds %d entries after churn, want the cap %d", tl.Len(), cap)
	}
	if tl.Evictions() == 0 {
		t.Fatal("churn past the cap recorded no evictions")
	}
	// A key kept hot survives the churn: refresh it between every insert.
	hot := "hot-key"
	tl2 := NewTierLimiter(1e6, 1e6, cap)
	tl2.Allow(hot, now)
	for i := 0; i < 10*cap; i++ {
		ts := now.Add(time.Duration(i+1) * time.Millisecond)
		tl2.Allow(hot, ts)
		tl2.Allow(fmt.Sprintf("cold-%d", i), ts)
		if n := tl2.Len(); n > cap {
			t.Fatalf("map exceeded cap: %d > %d", n, cap)
		}
	}
	tl2.mu.RLock()
	_, alive := tl2.entries[hot]
	tl2.mu.RUnlock()
	if !alive {
		t.Fatal("constantly-used key was evicted ahead of stale ones")
	}
}

func TestTierLimiterCleanup(t *testing.T) {
	tl := NewTierLimiter(100, 100, 64)
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		tl.Allow(fmt.Sprintf("k%d", i), now)
	}
	tl.Allow("fresh", now.Add(10*time.Second))
	if got := tl.Cleanup(now.Add(11*time.Second), 5*time.Second); got != 10 {
		t.Fatalf("Cleanup removed %d entries, want the 10 idle ones", got)
	}
	if tl.Len() != 1 {
		t.Fatalf("%d entries survive cleanup, want 1", tl.Len())
	}
	if got := tl.Cleanup(now, 0); got != 0 {
		t.Fatalf("ttl=0 cleanup removed %d entries, want disabled", got)
	}
}

// TestControllerTierOrder checks that the first violated tier names the
// refusal and that inner tiers are not charged for it.
func TestControllerTierOrder(t *testing.T) {
	l := testLimits()
	l.ClientQPS, l.ClientBurst = 1000, 2 // client trips before IP (burst 5)
	c, err := NewController(l)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if d := c.AllowAt(now, "alice", "10.0.0.1"); !d.OK {
			t.Fatalf("request %d refused at tier %s", i, d.Tier)
		}
	}
	d := c.AllowAt(now, "alice", "10.0.0.1")
	if d.OK || d.Tier != TierClient {
		t.Fatalf("decision = %+v, want a client-tier refusal", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatal("refusal carries no Retry-After wait")
	}
	s := c.Stats()
	if s.Client.Rejects != 1 || s.IP.Rejects != 0 || s.Global.Rejects != 0 {
		t.Fatalf("rejects global/client/ip = %d/%d/%d, want 0/1/0",
			s.Global.Rejects, s.Client.Rejects, s.IP.Rejects)
	}
	if s.Global.Accepts != 2 || s.Client.Accepts != 2 || s.IP.Accepts != 2 {
		t.Fatalf("accepts global/client/ip = %d/%d/%d, want 2/2/2",
			s.Global.Accepts, s.Client.Accepts, s.IP.Accepts)
	}
	// A different client is unaffected by alice's exhaustion.
	if d := c.AllowAt(now, "bob", "10.0.0.2"); !d.OK {
		t.Fatalf("unrelated client refused: %+v", d)
	}
}

func TestControllerSetLimits(t *testing.T) {
	c, err := NewController(testLimits())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	l := c.Limits()
	l.IPQPS, l.IPBurst = 1000, 1
	if err := c.SetLimits(l); err != nil {
		t.Fatal(err)
	}
	// The new burst applies to fresh keys immediately.
	if d := c.AllowAt(now, "", "10.9.9.9"); !d.OK {
		t.Fatalf("first request refused: %+v", d)
	}
	if d := c.AllowAt(now, "", "10.9.9.9"); d.OK || d.Tier != TierIP {
		t.Fatalf("decision = %+v, want an ip-tier refusal at burst 1", d)
	}
	l.GlobalBurst = 0 // invalid with qps set
	if err := c.SetLimits(l); err == nil {
		t.Fatal("SetLimits accepted an invalid config")
	}
}

// TestControllerAllowZeroAlloc pins the acceptance criterion: the
// accept fast path (every tier admits, keys already known) performs no
// heap allocations.
func TestControllerAllowZeroAlloc(t *testing.T) {
	l := testLimits()
	l.GlobalQPS, l.GlobalBurst = 1e9, 1e9
	l.ClientQPS, l.ClientBurst = 1e9, 1e9
	l.IPQPS, l.IPBurst = 1e9, 1e9
	c, err := NewController(l)
	if err != nil {
		t.Fatal(err)
	}
	c.Allow("alice", "10.0.0.1") // warm the keyed tiers
	allocs := testing.AllocsPerRun(1000, func() {
		if d := c.Allow("alice", "10.0.0.1"); !d.OK {
			t.Fatal("warm request refused")
		}
	})
	if allocs != 0 {
		t.Fatalf("accept fast path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestControllerConcurrentStress hammers every tier from many
// goroutines under -race: distinct clients and IPs (exercising insert
// and eviction), shared hot keys (exercising bucket contention), and a
// concurrent limit reload and cleanup sweep.
func TestControllerConcurrentStress(t *testing.T) {
	l := testLimits()
	l.MaxClientEntries, l.MaxIPEntries = 16, 16
	l.GlobalQPS, l.GlobalBurst = 1e6, 1e6
	c, err := NewController(l)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0: // churn: unique keys force insert+evict
					c.Allow(fmt.Sprintf("c%d-%d", g, i), fmt.Sprintf("10.%d.%d.%d", g, i/251, i%251))
				case 1: // hot shared keys
					c.Allow("shared", "10.0.0.1")
				default: // per-goroutine keys
					c.Allow(fmt.Sprintf("g%d", g), fmt.Sprintf("10.0.1.%d", g))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // concurrent reload + sweep, as the admin API would drive
		defer wg.Done()
		for i := 0; i < 100; i++ {
			nl := c.Limits()
			nl.ClientQPS = float64(50 + i)
			if err := c.SetLimits(nl); err != nil {
				t.Error(err)
				return
			}
			c.client.Cleanup(time.Now(), time.Nanosecond)
			c.ip.Cleanup(time.Now(), time.Nanosecond)
		}
	}()
	wg.Wait()
	if n := c.client.Len(); n > 16 {
		t.Fatalf("client map holds %d entries after stress, cap 16", n)
	}
	if n := c.ip.Len(); n > 16 {
		t.Fatalf("ip map holds %d entries after stress, cap 16", n)
	}
	s := c.Stats()
	if s.Global.Accepts == 0 {
		t.Fatal("stress admitted nothing")
	}
}

func TestControllerCleanupLoop(t *testing.T) {
	l := testLimits()
	l.IdleTTL = time.Nanosecond
	c, err := NewController(l)
	if err != nil {
		t.Fatal(err)
	}
	c.Allow("k", "10.0.0.1")
	c.Start(time.Millisecond)
	defer c.Close()
	deadline := time.After(2 * time.Second)
	for c.client.Len()+c.ip.Len() > 0 {
		select {
		case <-deadline:
			t.Fatalf("cleanup loop never swept the idle entries (client %d, ip %d)",
				c.client.Len(), c.ip.Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	c.Close() // idempotent
}
