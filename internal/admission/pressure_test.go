package admission

import (
	"sync"
	"testing"
)

func testPressureConfig() PressureConfig {
	return PressureConfig{HighWater: 0.9, LowWater: 0.5, RaiseAfter: 3, ReleaseAfter: 2}
}

func TestPressureConfigValidate(t *testing.T) {
	if err := testPressureConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]PressureConfig{
		"inverted watermarks": {HighWater: 0.4, LowWater: 0.5, RaiseAfter: 1, ReleaseAfter: 1},
		"high > 1":            {HighWater: 1.5, LowWater: 0.5, RaiseAfter: 1, ReleaseAfter: 1},
		"negative low":        {HighWater: 0.9, LowWater: -0.1, RaiseAfter: 1, ReleaseAfter: 1},
		"zero raise":          {HighWater: 0.9, LowWater: 0.5, RaiseAfter: 0, ReleaseAfter: 1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}

// TestPressureLadder walks the controller through the documented rungs:
// sustained saturation climbs score-only → no-verify → reject-bulk one
// rung per RaiseAfter streak, and sustained calm releases them one rung
// per ReleaseAfter streak, with mid-band samples breaking both streaks.
func TestPressureLadder(t *testing.T) {
	var transitions []ShedLevel
	p, err := NewPressure(testPressureConfig(), func(from, to ShedLevel, reason string) {
		transitions = append(transitions, to)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Level() != ShedNone {
		t.Fatalf("initial level %v, want none", p.Level())
	}
	// Two hot samples are not enough (RaiseAfter 3).
	p.Sample(1.0)
	p.Sample(1.0)
	if p.Level() != ShedNone {
		t.Fatalf("level %v after 2 hot samples, want none", p.Level())
	}
	// A mid-band sample breaks the streak: three more needed.
	p.Sample(0.7)
	p.Sample(1.0)
	p.Sample(1.0)
	if p.Level() != ShedNone {
		t.Fatalf("mid-band sample failed to break the raise streak (level %v)", p.Level())
	}
	climb := func(want ShedLevel) {
		t.Helper()
		for i := 0; i < 3; i++ {
			p.Sample(0.95)
		}
		if p.Level() != want {
			t.Fatalf("level %v, want %v", p.Level(), want)
		}
	}
	climb(ShedScoreOnly)
	climb(ShedNoVerify)
	climb(ShedRejectBulk)
	climb(ShedRejectBulk) // clamped at the top rung
	// Release needs ReleaseAfter (2) consecutive cool samples per rung.
	p.Sample(0.1)
	if p.Level() != ShedRejectBulk {
		t.Fatalf("one cool sample already released (level %v)", p.Level())
	}
	p.Sample(0.1)
	if p.Level() != ShedNoVerify {
		t.Fatalf("level %v after release streak, want no-verify", p.Level())
	}
	for i := 0; i < 4; i++ {
		p.Sample(0.0)
	}
	if p.Level() != ShedNone {
		t.Fatalf("level %v after sustained calm, want none", p.Level())
	}
	want := []ShedLevel{ShedScoreOnly, ShedNoVerify, ShedRejectBulk, ShedNoVerify, ShedScoreOnly, ShedNone}
	if len(transitions) != len(want) {
		t.Fatalf("observed transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
	if p.Transitions() != uint64(len(want)) {
		t.Fatalf("Transitions() = %d, want %d", p.Transitions(), len(want))
	}
}

func TestPressureOverride(t *testing.T) {
	p, err := NewPressure(testPressureConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetOverride(ShedRejectBulk); err != nil {
		t.Fatal(err)
	}
	if p.Level() != ShedRejectBulk {
		t.Fatalf("overridden level %v, want reject-bulk", p.Level())
	}
	// Automatic tracking continues under the override.
	for i := 0; i < 3; i++ {
		p.Sample(1.0)
	}
	if p.AutoLevel() != ShedScoreOnly {
		t.Fatalf("auto level %v under override, want score-only", p.AutoLevel())
	}
	if p.Level() != ShedRejectBulk {
		t.Fatalf("override not pinning the level (got %v)", p.Level())
	}
	p.ClearOverride()
	if p.Level() != ShedScoreOnly {
		t.Fatalf("level %v after clearing override, want the tracked score-only", p.Level())
	}
	if _, ok := p.Override(); ok {
		t.Fatal("Override() still pinned after ClearOverride")
	}
	if err := p.SetOverride(ShedLevel(99)); err == nil {
		t.Fatal("SetOverride accepted an out-of-range level")
	}
}

func TestPressureConcurrentSamples(t *testing.T) {
	p, err := NewPressure(PressureConfig{HighWater: 0.9, LowWater: 0.5, RaiseAfter: 1, ReleaseAfter: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if (g+i)%2 == 0 {
					p.Sample(1.0)
				} else {
					p.Sample(0.0)
				}
				p.Level()
			}
		}(g)
	}
	wg.Wait()
	if l := p.Level(); l < ShedNone || l > ShedRejectBulk {
		t.Fatalf("level %d out of range after concurrent sampling", l)
	}
}

func TestShedLevelStringsAndDegradations(t *testing.T) {
	for l, want := range map[ShedLevel]string{
		ShedNone: "none", ShedScoreOnly: "score-only",
		ShedNoVerify: "no-verify", ShedRejectBulk: "reject-bulk",
	} {
		if l.String() != want {
			t.Errorf("ShedLevel(%d).String() = %q, want %q", l, l.String(), want)
		}
		got, err := ParseShedLevel(want)
		if err != nil || got != l {
			t.Errorf("ParseShedLevel(%q) = %v, %v; want %v", want, got, err, l)
		}
	}
	if _, err := ParseShedLevel("bogus"); err == nil {
		t.Error("ParseShedLevel accepted a bogus level")
	}

	cases := []struct {
		level      ShedLevel
		tb, verify bool
		want       []Degradation
	}{
		{ShedNone, true, true, nil},
		{ShedScoreOnly, true, true, []Degradation{DegradedScoreOnly}},
		{ShedScoreOnly, false, true, nil},                            // interactive: nothing to degrade
		{ShedNoVerify, true, true, []Degradation{DegradedScoreOnly}}, // score-only subsumes verify
		{ShedNoVerify, true, false, []Degradation{DegradedScoreOnly}},
		{ShedNoVerify, false, true, []Degradation{DegradedNoVerify}},
		{ShedRejectBulk, true, true, []Degradation{DegradedScoreOnly}},
	}
	for _, tc := range cases {
		got := tc.level.Degradations(tc.tb, tc.verify)
		if len(got) != len(tc.want) {
			t.Errorf("%v.Degradations(tb=%v, verify=%v) = %v, want %v",
				tc.level, tc.tb, tc.verify, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v.Degradations(tb=%v, verify=%v) = %v, want %v",
					tc.level, tc.tb, tc.verify, got, tc.want)
			}
		}
	}
}
