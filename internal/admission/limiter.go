// Package admission implements layered admission control for the
// serving path: token-bucket rate limiting at global, per-client and
// per-IP tiers, typed priority classes, and a pressure controller that
// sheds load in explicit, labelled rungs under sustained saturation.
//
// The accept fast path — a request that every tier admits against
// already-known keys — performs no allocations: tier lookups are
// read-locked map hits and the token arithmetic runs under a small
// per-entry mutex. New keys take a write-locked slow path that creates
// the bucket and, at the configured entry cap, evicts the stalest of a
// small sample so the maps stay bounded no matter how many distinct
// clients or addresses show up.
package admission

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Limits is the tier configuration: refill rates and burst capacities
// per tier, and the bounds on the keyed entry maps. A tier with
// QPS <= 0 is disabled (admits everything and keeps no state).
type Limits struct {
	// GlobalQPS/GlobalBurst bound the whole daemon's admitted request
	// rate, regardless of origin.
	GlobalQPS   float64 `json:"global_qps"`
	GlobalBurst float64 `json:"global_burst"`
	// ClientQPS/ClientBurst bound each client key (API key header); all
	// requests without a key share the anonymous bucket.
	ClientQPS   float64 `json:"client_qps"`
	ClientBurst float64 `json:"client_burst"`
	// IPQPS/IPBurst bound each remote address.
	IPQPS   float64 `json:"ip_qps"`
	IPBurst float64 `json:"ip_burst"`
	// MaxClientEntries/MaxIPEntries cap the keyed maps; at the cap an
	// insert evicts the least-recently-used of a sampled handful.
	MaxClientEntries int `json:"max_client_entries"`
	MaxIPEntries     int `json:"max_ip_entries"`
	// IdleTTL is how long an unused entry survives periodic cleanup.
	IdleTTL time.Duration `json:"idle_ttl"`
}

// Validate rejects nonsensical limits. Zero rates (disabled tiers) are
// fine; negative anything is not.
func (l Limits) Validate() error {
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"global_qps", l.GlobalQPS}, {"global_burst", l.GlobalBurst},
		{"client_qps", l.ClientQPS}, {"client_burst", l.ClientBurst},
		{"ip_qps", l.IPQPS}, {"ip_burst", l.IPBurst},
	} {
		if v.v < 0 || math.IsNaN(v.v) || math.IsInf(v.v, 0) {
			return fmt.Errorf("admission: %s must be a finite non-negative number, got %v", v.name, v.v)
		}
	}
	if l.GlobalQPS > 0 && l.GlobalBurst < 1 {
		return fmt.Errorf("admission: global_burst must be >= 1 when global_qps is set")
	}
	if l.ClientQPS > 0 && l.ClientBurst < 1 {
		return fmt.Errorf("admission: client_burst must be >= 1 when client_qps is set")
	}
	if l.IPQPS > 0 && l.IPBurst < 1 {
		return fmt.Errorf("admission: ip_burst must be >= 1 when ip_qps is set")
	}
	if l.MaxClientEntries < 1 || l.MaxIPEntries < 1 {
		return fmt.Errorf("admission: entry caps must be >= 1 (client %d, ip %d)",
			l.MaxClientEntries, l.MaxIPEntries)
	}
	if l.IdleTTL < 0 {
		return fmt.Errorf("admission: negative idle_ttl %v", l.IdleTTL)
	}
	return nil
}

// tokenBucket is one refillable bucket. The mutex covers the token
// arithmetic only; map membership is the owning limiter's concern.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	// used is the last-use instant (unix nanos), read lock-free by the
	// evictor and the cleanup sweep.
	used atomic.Int64
}

// take refills the bucket to now and consumes one token if available.
// On refusal it also reports how long until a token accrues, which the
// caller turns into an honest Retry-After.
func (b *tokenBucket) take(now time.Time, qps, burst float64) (ok bool, wait time.Duration) {
	b.mu.Lock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * qps
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return true, 0
	}
	deficit := 1 - b.tokens
	b.mu.Unlock()
	return false, time.Duration(deficit / qps * float64(time.Second))
}

// tierLimits is the hot-reloadable rate pair, swapped atomically so the
// fast path never takes a config lock.
type tierLimits struct {
	qps, burst float64
}

// evictSample bounds the LRU scan on an at-cap insert: the stalest of
// this many sampled entries is evicted, O(1) regardless of map size.
const evictSample = 8

// TierLimiter is one keyed tier: a bounded map of token buckets with
// sampled-LRU eviction at the cap and TTL cleanup between requests.
type TierLimiter struct {
	limits     atomic.Pointer[tierLimits]
	maxEntries int

	mu      sync.RWMutex
	entries map[string]*tokenBucket

	evictions atomic.Uint64
}

// NewTierLimiter builds a tier admitting qps sustained with the given
// burst, holding at most maxEntries keyed buckets.
func NewTierLimiter(qps, burst float64, maxEntries int) *TierLimiter {
	if maxEntries < 1 {
		maxEntries = 1
	}
	t := &TierLimiter{
		maxEntries: maxEntries,
		entries:    make(map[string]*tokenBucket),
	}
	t.limits.Store(&tierLimits{qps: qps, burst: burst})
	return t
}

// SetLimits swaps the tier's rate without touching existing buckets —
// the hot-reload path. Disabling a tier (qps <= 0) stops state growth;
// existing entries age out via Cleanup.
func (t *TierLimiter) SetLimits(qps, burst float64) {
	t.limits.Store(&tierLimits{qps: qps, burst: burst})
}

// Allow admits or refuses one request for key at now. Disabled tiers
// admit everything. The refusal wait is the time until the key's bucket
// accrues one token.
func (t *TierLimiter) Allow(key string, now time.Time) (ok bool, wait time.Duration) {
	lim := t.limits.Load()
	if lim.qps <= 0 {
		return true, 0
	}
	t.mu.RLock()
	b := t.entries[key]
	t.mu.RUnlock()
	if b == nil {
		b = t.insert(key, now, lim)
	}
	b.used.Store(now.UnixNano())
	return b.take(now, lim.qps, lim.burst)
}

// insert is the new-key slow path: create the bucket (full burst minus
// nothing — take consumes the first token) and, at the cap, evict the
// least-recently-used of a small sample first.
func (t *TierLimiter) insert(key string, now time.Time, lim *tierLimits) *tokenBucket {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.entries[key]; b != nil { // raced with another insert
		return b
	}
	if len(t.entries) >= t.maxEntries {
		t.evictStalestLocked()
	}
	b := &tokenBucket{tokens: lim.burst, last: now}
	b.used.Store(now.UnixNano())
	t.entries[key] = b
	return b
}

// evictStalestLocked removes the least-recently-used entry of up to
// evictSample map-order samples. Map iteration order is randomized, so
// repeated at-cap inserts spread the sampling across the whole table.
func (t *TierLimiter) evictStalestLocked() {
	var (
		victim string
		oldest int64 = math.MaxInt64
		seen   int
	)
	for k, b := range t.entries {
		if u := b.used.Load(); u < oldest {
			oldest = u
			victim = k
		}
		if seen++; seen >= evictSample {
			break
		}
	}
	if seen > 0 {
		delete(t.entries, victim)
		t.evictions.Add(1)
	}
}

// Cleanup deletes entries idle longer than ttl and returns how many it
// removed. A ttl <= 0 disables the sweep.
func (t *TierLimiter) Cleanup(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-ttl).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for k, b := range t.entries {
		if b.used.Load() < cutoff {
			delete(t.entries, k)
			removed++
		}
	}
	return removed
}

// Len is the current entry count.
func (t *TierLimiter) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Evictions counts entries displaced by at-cap inserts (TTL cleanup not
// included).
func (t *TierLimiter) Evictions() uint64 { return t.evictions.Load() }
