package config

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultIsValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default() fails its own validation: %v", err)
	}
	if c.Queues.Slots != 4 {
		t.Errorf("default queues.slots = %d, want the former -max-requests default 4", c.Queues.Slots)
	}
	if c.Limits.GlobalQPS != 0 || c.Limits.ClientQPS != 0 || c.Limits.IPQPS != 0 {
		t.Error("rate limiting must default to disabled (all tier QPS zero)")
	}
	if c.Server.DrainWait <= 0 {
		t.Error("default drain_wait must give load balancers a draining window")
	}
}

func TestParseAppliesOnTopOfDefaults(t *testing.T) {
	c, err := Parse([]byte(`
# admission config
server:
  addr: "0.0.0.0:9000"
  drain_wait: 2s
  client_header: "X-Tenant"   # tenant key
limits:
  global_qps: 500.5
  global_burst: 100
  ip_qps: 25
  ip_burst: 5
  max_ip_entries: 1024
queues:
  slots: 2
  bulk: 8
shed:
  sample_interval: 20ms
  raise_after: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Server.Addr != "0.0.0.0:9000" || c.Server.DrainWait != 2*time.Second {
		t.Errorf("server section not applied: %+v", c.Server)
	}
	if c.Server.ClientHeader != "X-Tenant" {
		t.Errorf("quoted value with trailing comment parsed as %q", c.Server.ClientHeader)
	}
	if c.Limits.GlobalQPS != 500.5 || c.Limits.IPQPS != 25 || c.Limits.MaxIPEntries != 1024 {
		t.Errorf("limits section not applied: %+v", c.Limits)
	}
	if c.Queues.Slots != 2 || c.Queues.Bulk != 8 {
		t.Errorf("queues section not applied: %+v", c.Queues)
	}
	if c.Shed.SampleInterval != 20*time.Millisecond || c.Shed.RaiseAfter != 2 {
		t.Errorf("shed section not applied: %+v", c.Shed)
	}
	// Untouched keys keep their defaults.
	if c.Align.Band != 128 || c.Queues.Interactive != 16 {
		t.Errorf("defaults disturbed: band %d, interactive %d", c.Align.Band, c.Queues.Interactive)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejects(t *testing.T) {
	for name, body := range map[string]string{
		"unknown section":     "nonsense:\n  a: 1\n",
		"unknown key":         "limits:\n  global_rps: 5\n",
		"entry before header": "  global_qps: 5\n",
		"bad integer":         "queues:\n  slots: many\n",
		"bad bool":            "align:\n  verify: yes\n",
		"bad duration":        "shed:\n  sample_interval: fast\n",
		"empty value":         "limits:\n  global_qps:\n",
		"unterminated quote":  "server:\n  addr: \"127.0.0.1\n",
		"quote then junk":     "server:\n  addr: \"x\" y\n",
		"bare junk line":      "limits\n",
	} {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, body)
		}
	}
}

// TestWriteToRoundTrip pins the canonical-form contract the admin API
// relies on: Parse(WriteTo(c)) == c, byte-for-byte stable.
func TestWriteToRoundTrip(t *testing.T) {
	c := Default()
	c.Server.Addr = "0.0.0.0:0"
	c.Server.AdminToken = `sec "ret" # with\evils`
	c.Align.FaultRate = 0.05
	c.Limits.GlobalQPS = 12345.5
	c.Session.Linger = 3 * time.Millisecond
	c.Shed.HighWater = 0.75

	var a bytes.Buffer
	if _, err := c.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(a.Bytes())
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, a.String())
	}
	if *c2 != *c {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", *c2, *c)
	}
	var b bytes.Buffer
	c2.WriteTo(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestValidateRejects(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"odd band":            func(c *Config) { c.Align.Band = 65 },
		"zero ranks":          func(c *Config) { c.Align.Ranks = 0 },
		"bad lanes":           func(c *Config) { c.Align.Lanes = "32" },
		"fault rate > 1":      func(c *Config) { c.Align.FaultRate = 1.5 },
		"zero slots":          func(c *Config) { c.Queues.Slots = 0 },
		"tiny retry-after":    func(c *Config) { c.Queues.MaxRetryAfter = time.Millisecond },
		"zero sample":         func(c *Config) { c.Shed.SampleInterval = 0 },
		"inverted watermarks": func(c *Config) { c.Shed.LowWater, c.Shed.HighWater = 0.9, 0.5 },
		"burst without qps":   func(c *Config) { c.Limits.GlobalQPS, c.Limits.GlobalBurst = 10, 0 },
		"empty addr":          func(c *Config) { c.Server.Addr = "" },
		"negative linger":     func(c *Config) { c.Session.Linger = -time.Second },
	} {
		c := Default()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", name)
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "align.yaml")
	if err := os.WriteFile(path, []byte("queues:\n  slots: 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Queues.Slots != 7 {
		t.Fatalf("loaded slots = %d, want 7", c.Queues.Slots)
	}
	if _, err := Load(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Fatal("Load must fail on a missing file, not silently default")
	}
	bad := filepath.Join(dir, "bad.yaml")
	os.WriteFile(bad, []byte("queues:\n  slotz: 7\n"), 0o644)
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "bad.yaml") {
		t.Fatalf("Load error %v must name the file", err)
	}
}
