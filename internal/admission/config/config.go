// Package config is alignd's validated configuration surface: a small,
// strict YAML subset (two levels — section headers at column zero,
// indented "key: value" entries, '#' comments) chosen so the daemon
// needs no external parser dependency. Every key is known and typed;
// unknown sections or keys are errors, not silent no-ops, so a typo in
// a limits file cannot quietly disable admission control.
//
// WriteTo emits the canonical form of a Config, and Parse(WriteTo(c))
// reproduces c exactly — the admin API leans on this: GET /admin/config
// returns precisely the text POST /admin/config accepts.
package config

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"pimnw/internal/admission"
	"pimnw/internal/host"
	"pimnw/internal/kernel"
	"pimnw/internal/obs"
)

// Config is the daemon configuration. Sections Server, Align and
// Session are fixed at startup, as are the cache section's placement and
// durability fields; the cache size limits, Limits, Queues and Shed are
// dynamic and may be hot-reloaded through the admin API.
type Config struct {
	Server  ServerConfig
	Align   AlignConfig
	Session SessionConfig
	Cache   CacheConfig
	Fleet   FleetConfig
	Limits  LimitsConfig
	Queues  QueuesConfig
	Shed    ShedConfig
}

// ServerConfig is the HTTP face of the daemon.
type ServerConfig struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// DrainWait is how long /healthz advertises draining (503) after
	// SIGTERM before the listener closes — the window load balancers
	// get to route traffic away.
	DrainWait time.Duration
	// SlowRequest logs a stage breakdown for requests at/over this
	// duration (0 = every request, negative = never).
	SlowRequest time.Duration
	// FlightEvents is the flight-recorder ring capacity.
	FlightEvents int
	// LogJSON switches to structured JSON log lines.
	LogJSON bool
	// ClientHeader names the header carrying the per-client key for the
	// client rate-limit tier; requests without it share one anonymous
	// bucket.
	ClientHeader string
	// AdminToken, when set, is required (Authorization: Bearer or
	// X-Admin-Token) on every /admin request.
	AdminToken string
}

// AlignConfig is the alignment engine configuration (the former
// one-flag-per-knob surface).
type AlignConfig struct {
	Band          int
	Ranks         int
	ScoreOnly     bool
	Lanes         string // auto, 16 or 64
	Escalation    bool
	MaxBand       int
	Verify        bool
	FaultRate     float64
	FaultSeed     int64
	MaxRetries    int
	BatchDeadline float64 // modelled seconds; 0 = none
}

// SessionConfig tunes the per-request streaming session (zeros defer
// to the host package's defaults).
type SessionConfig struct {
	BatchPairs    int
	Linger        time.Duration
	QueueLimit    int
	MaxConcurrent int
}

// CacheConfig configures the persistent result cache. Dir, Fsync,
// FsyncInterval and CompactInterval are fixed at startup; MaxEntries and
// HotEntries are dynamic (hot-reloadable size limits).
type CacheConfig struct {
	// Dir is the cache directory; empty disables the cache entirely.
	Dir string
	// Fsync is the WAL durability policy: always, interval or never.
	Fsync string
	// FsyncInterval is the background sync period under the interval
	// policy.
	FsyncInterval time.Duration
	// MaxEntries bounds the in-memory index; HotEntries bounds the
	// in-process hot tier.
	MaxEntries int
	HotEntries int
	// CompactInterval enables background WAL compaction when positive.
	CompactInterval time.Duration
}

// FleetConfig configures multi-fabric scale-out (fixed at startup —
// backends hold placement state shared across every session).
type FleetConfig struct {
	// Backends is the fleet specification: a comma-separated backend
	// list, each entry "pim[:RANKS[@FREQMHZ]][~FAULTRATE]" (a simulated
	// PiM server) or "cpu[:THREADS]" (a CPU worker pool), e.g.
	// "pim:40,pim:20@300,cpu:16". Empty serves from the single default
	// fabric described by the align section.
	Backends string
}

// LimitsConfig is the rate-limit tier configuration (dynamic).
type LimitsConfig struct {
	GlobalQPS        float64
	GlobalBurst      float64
	ClientQPS        float64
	ClientBurst      float64
	IPQPS            float64
	IPBurst          float64
	MaxClientEntries int
	MaxIPEntries     int
	IdleTTL          time.Duration
	CleanupInterval  time.Duration
}

// QueuesConfig sizes the priority admission gate (dynamic).
type QueuesConfig struct {
	// Slots is how many align requests are served concurrently (the
	// former -max-requests).
	Slots int
	// Interactive/Bulk cap how many requests of each class may wait for
	// a slot; beyond the cap the class gets 429 + computed Retry-After.
	Interactive int
	Bulk        int
	// MaxRetryAfter clamps computed Retry-After values.
	MaxRetryAfter time.Duration
}

// ShedConfig tunes the pressure controller (dynamic).
type ShedConfig struct {
	// SampleInterval is how often gate load is sampled.
	SampleInterval time.Duration
	HighWater      float64
	LowWater       float64
	RaiseAfter     int
	ReleaseAfter   int
}

// Default is the configuration alignd runs with absent a -config file:
// the pre-admission-control daemon's flag defaults, rate limiting
// disabled, and a conservative shed ladder.
func Default() *Config {
	return &Config{
		Server: ServerConfig{
			Addr:         "127.0.0.1:7433",
			DrainWait:    500 * time.Millisecond,
			SlowRequest:  time.Second,
			FlightEvents: obs.DefaultFlightEvents,
			ClientHeader: "X-Api-Key",
		},
		Align: AlignConfig{
			Band:       128,
			Ranks:      40,
			Lanes:      "auto",
			FaultSeed:  1,
			MaxRetries: 3,
		},
		Cache: CacheConfig{
			Fsync:           "interval",
			FsyncInterval:   time.Second,
			MaxEntries:      1 << 20,
			HotEntries:      4096,
			CompactInterval: time.Minute,
		},
		Limits: LimitsConfig{
			MaxClientEntries: 4096,
			MaxIPEntries:     65536,
			IdleTTL:          5 * time.Minute,
			CleanupInterval:  time.Minute,
		},
		Queues: QueuesConfig{
			Slots:         4,
			Interactive:   16,
			Bulk:          64,
			MaxRetryAfter: 60 * time.Second,
		},
		Shed: ShedConfig{
			SampleInterval: 100 * time.Millisecond,
			HighWater:      0.9,
			LowWater:       0.5,
			RaiseAfter:     5,
			ReleaseAfter:   20,
		},
	}
}

// AdmissionLimits converts the dynamic limits section for the
// admission controller.
func (c *Config) AdmissionLimits() admission.Limits {
	return admission.Limits{
		GlobalQPS: c.Limits.GlobalQPS, GlobalBurst: c.Limits.GlobalBurst,
		ClientQPS: c.Limits.ClientQPS, ClientBurst: c.Limits.ClientBurst,
		IPQPS: c.Limits.IPQPS, IPBurst: c.Limits.IPBurst,
		MaxClientEntries: c.Limits.MaxClientEntries,
		MaxIPEntries:     c.Limits.MaxIPEntries,
		IdleTTL:          c.Limits.IdleTTL,
	}
}

// PressureConfig converts the shed section for the pressure controller.
func (c *Config) PressureConfig() admission.PressureConfig {
	return admission.PressureConfig{
		HighWater:    c.Shed.HighWater,
		LowWater:     c.Shed.LowWater,
		RaiseAfter:   c.Shed.RaiseAfter,
		ReleaseAfter: c.Shed.ReleaseAfter,
	}
}

// Validate checks every field's domain. It is the -check-config gate;
// host/kernel geometry feasibility is validated separately when the
// serving configuration is assembled.
func (c *Config) Validate() error {
	s := &c.Server
	if s.Addr == "" {
		return fmt.Errorf("config: server.addr must not be empty")
	}
	if s.DrainWait < 0 {
		return fmt.Errorf("config: negative server.drain_wait %v", s.DrainWait)
	}
	if s.FlightEvents < 0 {
		return fmt.Errorf("config: negative server.flight_events %d", s.FlightEvents)
	}
	if s.ClientHeader == "" {
		return fmt.Errorf("config: server.client_header must not be empty")
	}
	a := &c.Align
	if a.Band < 2 || a.Band%2 != 0 {
		return fmt.Errorf("config: align.band %d must be even and >= 2", a.Band)
	}
	if a.Ranks < 1 {
		return fmt.Errorf("config: align.ranks %d must be >= 1", a.Ranks)
	}
	if _, err := kernel.ParseLaneWidth(a.Lanes); err != nil {
		return fmt.Errorf("config: align.lanes: %w", err)
	}
	if a.MaxBand < 0 {
		return fmt.Errorf("config: negative align.max_band %d", a.MaxBand)
	}
	if a.FaultRate < 0 || a.FaultRate > 1 || a.FaultRate != a.FaultRate {
		return fmt.Errorf("config: align.fault_rate %v outside [0,1]", a.FaultRate)
	}
	if a.MaxRetries < 0 {
		return fmt.Errorf("config: negative align.max_retries %d", a.MaxRetries)
	}
	if a.BatchDeadline < 0 || a.BatchDeadline != a.BatchDeadline {
		return fmt.Errorf("config: negative align.batch_deadline %v", a.BatchDeadline)
	}
	se := &c.Session
	if se.BatchPairs < 0 || se.QueueLimit < 0 || se.MaxConcurrent < 0 || se.Linger < 0 {
		return fmt.Errorf("config: negative session parameters %+v", *se)
	}
	ca := &c.Cache
	switch ca.Fsync {
	case "always", "interval", "never":
	default:
		return fmt.Errorf("config: cache.fsync %q must be always, interval or never", ca.Fsync)
	}
	if ca.Fsync == "interval" && ca.FsyncInterval <= 0 {
		return fmt.Errorf("config: cache.fsync_interval %v must be positive", ca.FsyncInterval)
	}
	if ca.FsyncInterval < 0 || ca.CompactInterval < 0 {
		return fmt.Errorf("config: negative cache intervals %+v", *ca)
	}
	if ca.MaxEntries < 1 {
		return fmt.Errorf("config: cache.max_entries %d must be >= 1", ca.MaxEntries)
	}
	if ca.HotEntries < 0 {
		return fmt.Errorf("config: negative cache.hot_entries %d", ca.HotEntries)
	}
	if _, err := host.ParseFleet(c.Fleet.Backends); err != nil {
		return fmt.Errorf("config: fleet.backends: %w", err)
	}
	if err := c.AdmissionLimits().Validate(); err != nil {
		return fmt.Errorf("config: limits: %w", err)
	}
	if c.Limits.CleanupInterval < 0 {
		return fmt.Errorf("config: negative limits.cleanup_interval %v", c.Limits.CleanupInterval)
	}
	q := &c.Queues
	if q.Slots < 1 {
		return fmt.Errorf("config: queues.slots %d must be >= 1", q.Slots)
	}
	if q.Interactive < 0 || q.Bulk < 0 {
		return fmt.Errorf("config: negative queue caps (interactive %d, bulk %d)", q.Interactive, q.Bulk)
	}
	if q.MaxRetryAfter < time.Second {
		return fmt.Errorf("config: queues.max_retry_after %v must be >= 1s", q.MaxRetryAfter)
	}
	if c.Shed.SampleInterval <= 0 {
		return fmt.Errorf("config: shed.sample_interval %v must be positive", c.Shed.SampleInterval)
	}
	if err := c.PressureConfig().Validate(); err != nil {
		return fmt.Errorf("config: shed: %w", err)
	}
	return nil
}

// Load reads and parses path on top of the defaults. The file must
// exist: a daemon pointed at a missing config starting with silent
// defaults is an operational trap.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return c, nil
}

// Parse applies the file's entries on top of Default. It is strict:
// unknown sections or keys, malformed values and out-of-section entries
// are errors carrying their line number.
func Parse(data []byte) (*Config, error) {
	c := Default()
	section := ""
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indented := line[0] == ' ' || line[0] == '\t'
		if !indented {
			name, ok := strings.CutSuffix(trimmed, ":")
			if !ok || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("line %d: expected a section header like \"limits:\", got %q", lineNo+1, trimmed)
			}
			switch name {
			case "server", "align", "session", "cache", "fleet", "limits", "queues", "shed":
				section = name
			default:
				return nil, fmt.Errorf("line %d: unknown section %q", lineNo+1, name)
			}
			continue
		}
		if section == "" {
			return nil, fmt.Errorf("line %d: entry %q before any section header", lineNo+1, trimmed)
		}
		key, rest, ok := strings.Cut(trimmed, ":")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", lineNo+1, trimmed)
		}
		val, err := parseValue(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %s.%s: %w", lineNo+1, section, key, err)
		}
		if err := c.set(section, key, val); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return c, nil
}

// parseValue extracts one scalar: a Go-quoted string (comment allowed
// after the closing quote) or a bare token up to an optional
// whitespace-preceded '#' comment.
func parseValue(rest string) (string, error) {
	v := strings.TrimSpace(rest)
	if strings.HasPrefix(v, `"`) {
		end := -1
		for i := 1; i < len(v); i++ {
			if v[i] == '\\' {
				i++
				continue
			}
			if v[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", fmt.Errorf("unterminated quoted string %q", v)
		}
		tail := strings.TrimSpace(v[end+1:])
		if tail != "" && !strings.HasPrefix(tail, "#") {
			return "", fmt.Errorf("trailing content %q after quoted string", tail)
		}
		s, err := strconv.Unquote(v[:end+1])
		if err != nil {
			return "", fmt.Errorf("bad quoted string %q: %w", v[:end+1], err)
		}
		return s, nil
	}
	if i := strings.Index(v, " #"); i >= 0 {
		v = strings.TrimSpace(v[:i])
	} else if i := strings.Index(v, "\t#"); i >= 0 {
		v = strings.TrimSpace(v[:i])
	}
	if v == "" {
		return "", fmt.Errorf("empty value")
	}
	return v, nil
}

// set routes one parsed key/value into the config. Every key is
// enumerated; anything else is an error.
func (c *Config) set(section, key, val string) error {
	unknown := func() error {
		return fmt.Errorf("unknown key %s.%s", section, key)
	}
	var err error
	switch section {
	case "server":
		switch key {
		case "addr":
			c.Server.Addr = val
		case "drain_wait":
			c.Server.DrainWait, err = parseDur(val)
		case "slow_request":
			c.Server.SlowRequest, err = parseDur(val)
		case "flight_events":
			c.Server.FlightEvents, err = parseInt(val)
		case "log_json":
			c.Server.LogJSON, err = parseBool(val)
		case "client_header":
			c.Server.ClientHeader = val
		case "admin_token":
			c.Server.AdminToken = val
		default:
			return unknown()
		}
	case "align":
		switch key {
		case "band":
			c.Align.Band, err = parseInt(val)
		case "ranks":
			c.Align.Ranks, err = parseInt(val)
		case "score_only":
			c.Align.ScoreOnly, err = parseBool(val)
		case "lanes":
			c.Align.Lanes = val
		case "escalation":
			c.Align.Escalation, err = parseBool(val)
		case "max_band":
			c.Align.MaxBand, err = parseInt(val)
		case "verify":
			c.Align.Verify, err = parseBool(val)
		case "fault_rate":
			c.Align.FaultRate, err = parseFloat(val)
		case "fault_seed":
			c.Align.FaultSeed, err = parseInt64(val)
		case "max_retries":
			c.Align.MaxRetries, err = parseInt(val)
		case "batch_deadline":
			c.Align.BatchDeadline, err = parseFloat(val)
		default:
			return unknown()
		}
	case "session":
		switch key {
		case "batch_pairs":
			c.Session.BatchPairs, err = parseInt(val)
		case "linger":
			c.Session.Linger, err = parseDur(val)
		case "queue_limit":
			c.Session.QueueLimit, err = parseInt(val)
		case "max_concurrent":
			c.Session.MaxConcurrent, err = parseInt(val)
		default:
			return unknown()
		}
	case "cache":
		switch key {
		case "dir":
			c.Cache.Dir = val
		case "fsync":
			c.Cache.Fsync = val
		case "fsync_interval":
			c.Cache.FsyncInterval, err = parseDur(val)
		case "max_entries":
			c.Cache.MaxEntries, err = parseInt(val)
		case "hot_entries":
			c.Cache.HotEntries, err = parseInt(val)
		case "compact_interval":
			c.Cache.CompactInterval, err = parseDur(val)
		default:
			return unknown()
		}
	case "fleet":
		switch key {
		case "backends":
			c.Fleet.Backends = val
		default:
			return unknown()
		}
	case "limits":
		switch key {
		case "global_qps":
			c.Limits.GlobalQPS, err = parseFloat(val)
		case "global_burst":
			c.Limits.GlobalBurst, err = parseFloat(val)
		case "client_qps":
			c.Limits.ClientQPS, err = parseFloat(val)
		case "client_burst":
			c.Limits.ClientBurst, err = parseFloat(val)
		case "ip_qps":
			c.Limits.IPQPS, err = parseFloat(val)
		case "ip_burst":
			c.Limits.IPBurst, err = parseFloat(val)
		case "max_client_entries":
			c.Limits.MaxClientEntries, err = parseInt(val)
		case "max_ip_entries":
			c.Limits.MaxIPEntries, err = parseInt(val)
		case "idle_ttl":
			c.Limits.IdleTTL, err = parseDur(val)
		case "cleanup_interval":
			c.Limits.CleanupInterval, err = parseDur(val)
		default:
			return unknown()
		}
	case "queues":
		switch key {
		case "slots":
			c.Queues.Slots, err = parseInt(val)
		case "interactive":
			c.Queues.Interactive, err = parseInt(val)
		case "bulk":
			c.Queues.Bulk, err = parseInt(val)
		case "max_retry_after":
			c.Queues.MaxRetryAfter, err = parseDur(val)
		default:
			return unknown()
		}
	case "shed":
		switch key {
		case "sample_interval":
			c.Shed.SampleInterval, err = parseDur(val)
		case "high_water":
			c.Shed.HighWater, err = parseFloat(val)
		case "low_water":
			c.Shed.LowWater, err = parseFloat(val)
		case "raise_after":
			c.Shed.RaiseAfter, err = parseInt(val)
		case "release_after":
			c.Shed.ReleaseAfter, err = parseInt(val)
		default:
			return unknown()
		}
	default:
		return fmt.Errorf("unknown section %q", section)
	}
	if err != nil {
		return fmt.Errorf("%s.%s: %w", section, key, err)
	}
	return nil
}

func parseInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("want an integer, got %q", v)
	}
	return n, nil
}

func parseInt64(v string) (int64, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want an integer, got %q", v)
	}
	return n, nil
}

func parseFloat(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("want a finite number, got %q", v)
	}
	return f, nil
}

func parseBool(v string) (bool, error) {
	switch v {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("want true or false, got %q", v)
}

func parseDur(v string) (time.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("want a duration like 500ms or 1m, got %q", v)
	}
	return d, nil
}

// WriteTo emits the canonical file form; Parse(that) reproduces c
// exactly. The admin API serves this as the live config.
func (c *Config) WriteTo(w io.Writer) (int64, error) {
	var b bytes.Buffer
	sec := func(name string) { fmt.Fprintf(&b, "%s:\n", name) }
	str := func(k, v string) { fmt.Fprintf(&b, "  %s: %q\n", k, v) }
	num := func(k string, v float64) { fmt.Fprintf(&b, "  %s: %g\n", k, v) }
	inte := func(k string, v int64) { fmt.Fprintf(&b, "  %s: %d\n", k, v) }
	boo := func(k string, v bool) { fmt.Fprintf(&b, "  %s: %t\n", k, v) }
	dur := func(k string, v time.Duration) { fmt.Fprintf(&b, "  %s: %s\n", k, v) }

	sec("server")
	str("addr", c.Server.Addr)
	dur("drain_wait", c.Server.DrainWait)
	dur("slow_request", c.Server.SlowRequest)
	inte("flight_events", int64(c.Server.FlightEvents))
	boo("log_json", c.Server.LogJSON)
	str("client_header", c.Server.ClientHeader)
	str("admin_token", c.Server.AdminToken)
	sec("align")
	inte("band", int64(c.Align.Band))
	inte("ranks", int64(c.Align.Ranks))
	boo("score_only", c.Align.ScoreOnly)
	str("lanes", c.Align.Lanes)
	boo("escalation", c.Align.Escalation)
	inte("max_band", int64(c.Align.MaxBand))
	boo("verify", c.Align.Verify)
	num("fault_rate", c.Align.FaultRate)
	inte("fault_seed", c.Align.FaultSeed)
	inte("max_retries", int64(c.Align.MaxRetries))
	num("batch_deadline", c.Align.BatchDeadline)
	sec("session")
	inte("batch_pairs", int64(c.Session.BatchPairs))
	dur("linger", c.Session.Linger)
	inte("queue_limit", int64(c.Session.QueueLimit))
	inte("max_concurrent", int64(c.Session.MaxConcurrent))
	sec("cache")
	str("dir", c.Cache.Dir)
	str("fsync", c.Cache.Fsync)
	dur("fsync_interval", c.Cache.FsyncInterval)
	inte("max_entries", int64(c.Cache.MaxEntries))
	inte("hot_entries", int64(c.Cache.HotEntries))
	dur("compact_interval", c.Cache.CompactInterval)
	sec("fleet")
	str("backends", c.Fleet.Backends)
	sec("limits")
	num("global_qps", c.Limits.GlobalQPS)
	num("global_burst", c.Limits.GlobalBurst)
	num("client_qps", c.Limits.ClientQPS)
	num("client_burst", c.Limits.ClientBurst)
	num("ip_qps", c.Limits.IPQPS)
	num("ip_burst", c.Limits.IPBurst)
	inte("max_client_entries", int64(c.Limits.MaxClientEntries))
	inte("max_ip_entries", int64(c.Limits.MaxIPEntries))
	dur("idle_ttl", c.Limits.IdleTTL)
	dur("cleanup_interval", c.Limits.CleanupInterval)
	sec("queues")
	inte("slots", int64(c.Queues.Slots))
	inte("interactive", int64(c.Queues.Interactive))
	inte("bulk", int64(c.Queues.Bulk))
	dur("max_retry_after", c.Queues.MaxRetryAfter)
	sec("shed")
	dur("sample_interval", c.Shed.SampleInterval)
	num("high_water", c.Shed.HighWater)
	num("low_water", c.Shed.LowWater)
	inte("raise_after", int64(c.Shed.RaiseAfter))
	inte("release_after", int64(c.Shed.ReleaseAfter))

	n, err := w.Write(b.Bytes())
	return int64(n), err
}
