package config

import (
	"bytes"
	"testing"
)

// FuzzAdmissionConfig throws arbitrary bytes at the strict parser. The
// invariants: Parse never panics; when it accepts, Validate never
// panics, and the canonical WriteTo form re-parses to the identical
// config and is a byte-level fixed point — the contract the admin API's
// GET→edit→POST loop depends on.
func FuzzAdmissionConfig(f *testing.F) {
	var def bytes.Buffer
	Default().WriteTo(&def)
	f.Add(def.Bytes())
	f.Add([]byte("limits:\n  global_qps: 100\n  global_burst: 10\n"))
	f.Add([]byte("server:\n  addr: \"0.0.0.0:0\" # comment\n"))
	f.Add([]byte("shed:\n  high_water: 0.95\n  low_water: 0.2\n"))
	f.Add([]byte("queues:\n  slots: 1\njunk:\n"))
	f.Add([]byte("align:\n  fault_rate: 1e309\n"))
	f.Add([]byte("  orphan: 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		_ = c.Validate() // may refuse, must not panic
		var canon bytes.Buffer
		if _, err := c.WriteTo(&canon); err != nil {
			t.Fatalf("WriteTo failed on a parsed config: %v", err)
		}
		c2, err := Parse(canon.Bytes())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon.String())
		}
		if *c2 != *c {
			t.Fatalf("canonical round trip diverged:\n got %+v\nwant %+v\nform:\n%s", *c2, *c, canon.String())
		}
		var canon2 bytes.Buffer
		c2.WriteTo(&canon2)
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", canon.String(), canon2.String())
		}
	})
}
